file(REMOVE_RECURSE
  "CMakeFiles/linkbench_regions.dir/linkbench_regions.cpp.o"
  "CMakeFiles/linkbench_regions.dir/linkbench_regions.cpp.o.d"
  "linkbench_regions"
  "linkbench_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkbench_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
