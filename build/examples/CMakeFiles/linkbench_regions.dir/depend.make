# Empty dependencies file for linkbench_regions.
# This may be replaced when dependencies are built.
