# Empty compiler generated dependencies file for ipa_ipl.
# This may be replaced when dependencies are built.
