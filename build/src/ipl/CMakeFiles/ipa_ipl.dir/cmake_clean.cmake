file(REMOVE_RECURSE
  "CMakeFiles/ipa_ipl.dir/comparison.cc.o"
  "CMakeFiles/ipa_ipl.dir/comparison.cc.o.d"
  "CMakeFiles/ipa_ipl.dir/ipl_simulator.cc.o"
  "CMakeFiles/ipa_ipl.dir/ipl_simulator.cc.o.d"
  "libipa_ipl.a"
  "libipa_ipl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_ipl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
