file(REMOVE_RECURSE
  "libipa_ipl.a"
)
