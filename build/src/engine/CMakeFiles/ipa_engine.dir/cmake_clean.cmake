file(REMOVE_RECURSE
  "CMakeFiles/ipa_engine.dir/btree.cc.o"
  "CMakeFiles/ipa_engine.dir/btree.cc.o.d"
  "CMakeFiles/ipa_engine.dir/buffer_pool.cc.o"
  "CMakeFiles/ipa_engine.dir/buffer_pool.cc.o.d"
  "CMakeFiles/ipa_engine.dir/database.cc.o"
  "CMakeFiles/ipa_engine.dir/database.cc.o.d"
  "CMakeFiles/ipa_engine.dir/lock_manager.cc.o"
  "CMakeFiles/ipa_engine.dir/lock_manager.cc.o.d"
  "CMakeFiles/ipa_engine.dir/wal.cc.o"
  "CMakeFiles/ipa_engine.dir/wal.cc.o.d"
  "libipa_engine.a"
  "libipa_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
