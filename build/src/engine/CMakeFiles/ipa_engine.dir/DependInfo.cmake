
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/btree.cc" "src/engine/CMakeFiles/ipa_engine.dir/btree.cc.o" "gcc" "src/engine/CMakeFiles/ipa_engine.dir/btree.cc.o.d"
  "/root/repo/src/engine/buffer_pool.cc" "src/engine/CMakeFiles/ipa_engine.dir/buffer_pool.cc.o" "gcc" "src/engine/CMakeFiles/ipa_engine.dir/buffer_pool.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/ipa_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/ipa_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/lock_manager.cc" "src/engine/CMakeFiles/ipa_engine.dir/lock_manager.cc.o" "gcc" "src/engine/CMakeFiles/ipa_engine.dir/lock_manager.cc.o.d"
  "/root/repo/src/engine/wal.cc" "src/engine/CMakeFiles/ipa_engine.dir/wal.cc.o" "gcc" "src/engine/CMakeFiles/ipa_engine.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ipa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/ipa_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ipa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ipa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/ipa_flash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
