file(REMOVE_RECURSE
  "libipa_engine.a"
)
