file(REMOVE_RECURSE
  "libipa_storage.a"
)
