file(REMOVE_RECURSE
  "CMakeFiles/ipa_storage.dir/delta_record.cc.o"
  "CMakeFiles/ipa_storage.dir/delta_record.cc.o.d"
  "CMakeFiles/ipa_storage.dir/slotted_page.cc.o"
  "CMakeFiles/ipa_storage.dir/slotted_page.cc.o.d"
  "libipa_storage.a"
  "libipa_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
