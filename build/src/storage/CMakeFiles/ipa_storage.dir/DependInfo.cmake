
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/delta_record.cc" "src/storage/CMakeFiles/ipa_storage.dir/delta_record.cc.o" "gcc" "src/storage/CMakeFiles/ipa_storage.dir/delta_record.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/storage/CMakeFiles/ipa_storage.dir/slotted_page.cc.o" "gcc" "src/storage/CMakeFiles/ipa_storage.dir/slotted_page.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ipa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
