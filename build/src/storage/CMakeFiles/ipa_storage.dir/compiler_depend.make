# Empty compiler generated dependencies file for ipa_storage.
# This may be replaced when dependencies are built.
