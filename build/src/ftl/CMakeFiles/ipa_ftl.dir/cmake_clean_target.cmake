file(REMOVE_RECURSE
  "libipa_ftl.a"
)
