
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/blackbox_ssd.cc" "src/ftl/CMakeFiles/ipa_ftl.dir/blackbox_ssd.cc.o" "gcc" "src/ftl/CMakeFiles/ipa_ftl.dir/blackbox_ssd.cc.o.d"
  "/root/repo/src/ftl/noftl.cc" "src/ftl/CMakeFiles/ipa_ftl.dir/noftl.cc.o" "gcc" "src/ftl/CMakeFiles/ipa_ftl.dir/noftl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flash/CMakeFiles/ipa_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ipa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
