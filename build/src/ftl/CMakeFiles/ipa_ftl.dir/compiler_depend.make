# Empty compiler generated dependencies file for ipa_ftl.
# This may be replaced when dependencies are built.
