file(REMOVE_RECURSE
  "CMakeFiles/ipa_ftl.dir/blackbox_ssd.cc.o"
  "CMakeFiles/ipa_ftl.dir/blackbox_ssd.cc.o.d"
  "CMakeFiles/ipa_ftl.dir/noftl.cc.o"
  "CMakeFiles/ipa_ftl.dir/noftl.cc.o.d"
  "libipa_ftl.a"
  "libipa_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
