file(REMOVE_RECURSE
  "CMakeFiles/ipa_workload.dir/linkbench.cc.o"
  "CMakeFiles/ipa_workload.dir/linkbench.cc.o.d"
  "CMakeFiles/ipa_workload.dir/tatp.cc.o"
  "CMakeFiles/ipa_workload.dir/tatp.cc.o.d"
  "CMakeFiles/ipa_workload.dir/testbed.cc.o"
  "CMakeFiles/ipa_workload.dir/testbed.cc.o.d"
  "CMakeFiles/ipa_workload.dir/tpcb.cc.o"
  "CMakeFiles/ipa_workload.dir/tpcb.cc.o.d"
  "CMakeFiles/ipa_workload.dir/tpcc.cc.o"
  "CMakeFiles/ipa_workload.dir/tpcc.cc.o.d"
  "libipa_workload.a"
  "libipa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
