# Empty dependencies file for ipa_workload.
# This may be replaced when dependencies are built.
