file(REMOVE_RECURSE
  "libipa_workload.a"
)
