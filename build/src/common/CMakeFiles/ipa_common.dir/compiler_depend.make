# Empty compiler generated dependencies file for ipa_common.
# This may be replaced when dependencies are built.
