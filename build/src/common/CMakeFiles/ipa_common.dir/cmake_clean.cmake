file(REMOVE_RECURSE
  "CMakeFiles/ipa_common.dir/crc32.cc.o"
  "CMakeFiles/ipa_common.dir/crc32.cc.o.d"
  "CMakeFiles/ipa_common.dir/random.cc.o"
  "CMakeFiles/ipa_common.dir/random.cc.o.d"
  "CMakeFiles/ipa_common.dir/stats.cc.o"
  "CMakeFiles/ipa_common.dir/stats.cc.o.d"
  "CMakeFiles/ipa_common.dir/status.cc.o"
  "CMakeFiles/ipa_common.dir/status.cc.o.d"
  "libipa_common.a"
  "libipa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
