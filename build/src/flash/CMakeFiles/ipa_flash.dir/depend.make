# Empty dependencies file for ipa_flash.
# This may be replaced when dependencies are built.
