file(REMOVE_RECURSE
  "libipa_flash.a"
)
