file(REMOVE_RECURSE
  "CMakeFiles/ipa_flash.dir/ecc.cc.o"
  "CMakeFiles/ipa_flash.dir/ecc.cc.o.d"
  "CMakeFiles/ipa_flash.dir/flash_array.cc.o"
  "CMakeFiles/ipa_flash.dir/flash_array.cc.o.d"
  "CMakeFiles/ipa_flash.dir/geometry.cc.o"
  "CMakeFiles/ipa_flash.dir/geometry.cc.o.d"
  "libipa_flash.a"
  "libipa_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
