file(REMOVE_RECURSE
  "libipa_core.a"
)
