# Empty compiler generated dependencies file for ipa_core.
# This may be replaced when dependencies are built.
