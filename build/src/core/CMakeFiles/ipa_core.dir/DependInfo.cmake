
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/ipa_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/ipa_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/write_policy.cc" "src/core/CMakeFiles/ipa_core.dir/write_policy.cc.o" "gcc" "src/core/CMakeFiles/ipa_core.dir/write_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/ipa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/ipa_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ipa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
