file(REMOVE_RECURSE
  "CMakeFiles/ipa_core.dir/advisor.cc.o"
  "CMakeFiles/ipa_core.dir/advisor.cc.o.d"
  "CMakeFiles/ipa_core.dir/write_policy.cc.o"
  "CMakeFiles/ipa_core.dir/write_policy.cc.o.d"
  "libipa_core.a"
  "libipa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
