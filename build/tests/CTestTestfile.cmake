# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/flash_test[1]_include.cmake")
include("/root/repo/build/tests/ecc_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/ftl_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/ipl_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_pool_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_property_test[1]_include.cmake")
include("/root/repo/build/tests/ipa_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/blackbox_ssd_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/page_size_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/endurance_test[1]_include.cmake")
include("/root/repo/build/tests/workload_distribution_test[1]_include.cmake")
