
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/blackbox_ssd_test.cc" "tests/CMakeFiles/blackbox_ssd_test.dir/blackbox_ssd_test.cc.o" "gcc" "tests/CMakeFiles/blackbox_ssd_test.dir/blackbox_ssd_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ipl/CMakeFiles/ipa_ipl.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ipa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ipa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ipa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ipa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/ipa_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/ipa_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ipa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
