# Empty dependencies file for blackbox_ssd_test.
# This may be replaced when dependencies are built.
