file(REMOVE_RECURSE
  "CMakeFiles/blackbox_ssd_test.dir/blackbox_ssd_test.cc.o"
  "CMakeFiles/blackbox_ssd_test.dir/blackbox_ssd_test.cc.o.d"
  "blackbox_ssd_test"
  "blackbox_ssd_test.pdb"
  "blackbox_ssd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackbox_ssd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
