file(REMOVE_RECURSE
  "CMakeFiles/ipa_e2e_test.dir/ipa_e2e_test.cc.o"
  "CMakeFiles/ipa_e2e_test.dir/ipa_e2e_test.cc.o.d"
  "ipa_e2e_test"
  "ipa_e2e_test.pdb"
  "ipa_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
