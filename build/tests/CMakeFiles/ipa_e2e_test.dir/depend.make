# Empty dependencies file for ipa_e2e_test.
# This may be replaced when dependencies are built.
