# Empty compiler generated dependencies file for ipl_test.
# This may be replaced when dependencies are built.
