file(REMOVE_RECURSE
  "CMakeFiles/ipl_test.dir/ipl_test.cc.o"
  "CMakeFiles/ipl_test.dir/ipl_test.cc.o.d"
  "ipl_test"
  "ipl_test.pdb"
  "ipl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
