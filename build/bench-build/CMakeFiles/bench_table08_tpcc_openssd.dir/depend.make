# Empty dependencies file for bench_table08_tpcc_openssd.
# This may be replaced when dependencies are built.
