file(REMOVE_RECURSE
  "../bench/bench_ablation_deployments"
  "../bench/bench_ablation_deployments.pdb"
  "CMakeFiles/bench_ablation_deployments.dir/bench_ablation_deployments.cc.o"
  "CMakeFiles/bench_ablation_deployments.dir/bench_ablation_deployments.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_deployments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
