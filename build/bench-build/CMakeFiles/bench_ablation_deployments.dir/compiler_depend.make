# Empty compiler generated dependencies file for bench_ablation_deployments.
# This may be replaced when dependencies are built.
