file(REMOVE_RECURSE
  "CMakeFiles/ipa_bench_harness.dir/harness.cc.o"
  "CMakeFiles/ipa_bench_harness.dir/harness.cc.o.d"
  "libipa_bench_harness.a"
  "libipa_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
