# Empty compiler generated dependencies file for ipa_bench_harness.
# This may be replaced when dependencies are built.
