file(REMOVE_RECURSE
  "libipa_bench_harness.a"
)
