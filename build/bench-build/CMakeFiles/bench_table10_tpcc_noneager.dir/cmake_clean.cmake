file(REMOVE_RECURSE
  "../bench/bench_table10_tpcc_noneager"
  "../bench/bench_table10_tpcc_noneager.pdb"
  "CMakeFiles/bench_table10_tpcc_noneager.dir/bench_table10_tpcc_noneager.cc.o"
  "CMakeFiles/bench_table10_tpcc_noneager.dir/bench_table10_tpcc_noneager.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_tpcc_noneager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
