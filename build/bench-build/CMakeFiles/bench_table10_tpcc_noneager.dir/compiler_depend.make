# Empty compiler generated dependencies file for bench_table10_tpcc_noneager.
# This may be replaced when dependencies are built.
