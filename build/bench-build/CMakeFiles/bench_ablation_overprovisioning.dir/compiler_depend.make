# Empty compiler generated dependencies file for bench_ablation_overprovisioning.
# This may be replaced when dependencies are built.
