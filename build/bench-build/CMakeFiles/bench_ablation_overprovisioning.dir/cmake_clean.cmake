file(REMOVE_RECURSE
  "../bench/bench_ablation_overprovisioning"
  "../bench/bench_ablation_overprovisioning.pdb"
  "CMakeFiles/bench_ablation_overprovisioning.dir/bench_ablation_overprovisioning.cc.o"
  "CMakeFiles/bench_ablation_overprovisioning.dir/bench_ablation_overprovisioning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overprovisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
