file(REMOVE_RECURSE
  "../bench/bench_table07_tpcb_emulator"
  "../bench/bench_table07_tpcb_emulator.pdb"
  "CMakeFiles/bench_table07_tpcb_emulator.dir/bench_table07_tpcb_emulator.cc.o"
  "CMakeFiles/bench_table07_tpcb_emulator.dir/bench_table07_tpcb_emulator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_tpcb_emulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
