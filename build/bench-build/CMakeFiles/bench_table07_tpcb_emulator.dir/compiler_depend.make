# Empty compiler generated dependencies file for bench_table07_tpcb_emulator.
# This may be replaced when dependencies are built.
