file(REMOVE_RECURSE
  "../bench/bench_table05_linkbench_wa"
  "../bench/bench_table05_linkbench_wa.pdb"
  "CMakeFiles/bench_table05_linkbench_wa.dir/bench_table05_linkbench_wa.cc.o"
  "CMakeFiles/bench_table05_linkbench_wa.dir/bench_table05_linkbench_wa.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_linkbench_wa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
