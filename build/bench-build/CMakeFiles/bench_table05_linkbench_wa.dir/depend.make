# Empty dependencies file for bench_table05_linkbench_wa.
# This may be replaced when dependencies are built.
