# Empty compiler generated dependencies file for bench_figure01_amplification_cascade.
# This may be replaced when dependencies are built.
