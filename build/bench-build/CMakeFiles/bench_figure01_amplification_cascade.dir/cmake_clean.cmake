file(REMOVE_RECURSE
  "../bench/bench_figure01_amplification_cascade"
  "../bench/bench_figure01_amplification_cascade.pdb"
  "CMakeFiles/bench_figure01_amplification_cascade.dir/bench_figure01_amplification_cascade.cc.o"
  "CMakeFiles/bench_figure01_amplification_cascade.dir/bench_figure01_amplification_cascade.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure01_amplification_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
