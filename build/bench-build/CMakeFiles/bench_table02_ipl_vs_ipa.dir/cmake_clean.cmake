file(REMOVE_RECURSE
  "../bench/bench_table02_ipl_vs_ipa"
  "../bench/bench_table02_ipl_vs_ipa.pdb"
  "CMakeFiles/bench_table02_ipl_vs_ipa.dir/bench_table02_ipl_vs_ipa.cc.o"
  "CMakeFiles/bench_table02_ipl_vs_ipa.dir/bench_table02_ipl_vs_ipa.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table02_ipl_vs_ipa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
