# Empty compiler generated dependencies file for bench_table02_ipl_vs_ipa.
# This may be replaced when dependencies are built.
