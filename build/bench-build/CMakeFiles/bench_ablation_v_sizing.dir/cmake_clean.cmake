file(REMOVE_RECURSE
  "../bench/bench_ablation_v_sizing"
  "../bench/bench_ablation_v_sizing.pdb"
  "CMakeFiles/bench_ablation_v_sizing.dir/bench_ablation_v_sizing.cc.o"
  "CMakeFiles/bench_ablation_v_sizing.dir/bench_ablation_v_sizing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_v_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
