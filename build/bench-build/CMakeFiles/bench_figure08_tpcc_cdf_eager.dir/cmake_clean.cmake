file(REMOVE_RECURSE
  "../bench/bench_figure08_tpcc_cdf_eager"
  "../bench/bench_figure08_tpcc_cdf_eager.pdb"
  "CMakeFiles/bench_figure08_tpcc_cdf_eager.dir/bench_figure08_tpcc_cdf_eager.cc.o"
  "CMakeFiles/bench_figure08_tpcc_cdf_eager.dir/bench_figure08_tpcc_cdf_eager.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure08_tpcc_cdf_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
