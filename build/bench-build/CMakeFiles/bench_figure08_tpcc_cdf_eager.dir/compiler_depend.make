# Empty compiler generated dependencies file for bench_figure08_tpcc_cdf_eager.
# This may be replaced when dependencies are built.
