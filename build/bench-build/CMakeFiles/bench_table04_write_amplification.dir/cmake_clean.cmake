file(REMOVE_RECURSE
  "../bench/bench_table04_write_amplification"
  "../bench/bench_table04_write_amplification.pdb"
  "CMakeFiles/bench_table04_write_amplification.dir/bench_table04_write_amplification.cc.o"
  "CMakeFiles/bench_table04_write_amplification.dir/bench_table04_write_amplification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_write_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
