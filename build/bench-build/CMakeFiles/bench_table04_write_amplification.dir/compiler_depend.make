# Empty compiler generated dependencies file for bench_table04_write_amplification.
# This may be replaced when dependencies are built.
