# Empty compiler generated dependencies file for bench_figure10_linkbench_cdf.
# This may be replaced when dependencies are built.
