file(REMOVE_RECURSE
  "../bench/bench_figure10_linkbench_cdf"
  "../bench/bench_figure10_linkbench_cdf.pdb"
  "CMakeFiles/bench_figure10_linkbench_cdf.dir/bench_figure10_linkbench_cdf.cc.o"
  "CMakeFiles/bench_figure10_linkbench_cdf.dir/bench_figure10_linkbench_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure10_linkbench_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
