file(REMOVE_RECURSE
  "../bench/bench_table09_tpcc_buffers_eager"
  "../bench/bench_table09_tpcc_buffers_eager.pdb"
  "CMakeFiles/bench_table09_tpcc_buffers_eager.dir/bench_table09_tpcc_buffers_eager.cc.o"
  "CMakeFiles/bench_table09_tpcc_buffers_eager.dir/bench_table09_tpcc_buffers_eager.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table09_tpcc_buffers_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
