# Empty compiler generated dependencies file for bench_table09_tpcc_buffers_eager.
# This may be replaced when dependencies are built.
