file(REMOVE_RECURSE
  "../bench/bench_figure07_tpcb_cdf"
  "../bench/bench_figure07_tpcb_cdf.pdb"
  "CMakeFiles/bench_figure07_tpcb_cdf.dir/bench_figure07_tpcb_cdf.cc.o"
  "CMakeFiles/bench_figure07_tpcb_cdf.dir/bench_figure07_tpcb_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure07_tpcb_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
