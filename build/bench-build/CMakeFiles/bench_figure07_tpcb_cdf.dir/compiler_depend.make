# Empty compiler generated dependencies file for bench_figure07_tpcb_cdf.
# This may be replaced when dependencies are built.
