# Empty compiler generated dependencies file for bench_table11_update_sizes_noneager.
# This may be replaced when dependencies are built.
