file(REMOVE_RECURSE
  "../bench/bench_table11_update_sizes_noneager"
  "../bench/bench_table11_update_sizes_noneager.pdb"
  "CMakeFiles/bench_table11_update_sizes_noneager.dir/bench_table11_update_sizes_noneager.cc.o"
  "CMakeFiles/bench_table11_update_sizes_noneager.dir/bench_table11_update_sizes_noneager.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_update_sizes_noneager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
