file(REMOVE_RECURSE
  "../bench/bench_figure06_linkbench_ipa_fraction"
  "../bench/bench_figure06_linkbench_ipa_fraction.pdb"
  "CMakeFiles/bench_figure06_linkbench_ipa_fraction.dir/bench_figure06_linkbench_ipa_fraction.cc.o"
  "CMakeFiles/bench_figure06_linkbench_ipa_fraction.dir/bench_figure06_linkbench_ipa_fraction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure06_linkbench_ipa_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
