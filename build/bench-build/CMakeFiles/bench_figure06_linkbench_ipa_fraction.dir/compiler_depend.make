# Empty compiler generated dependencies file for bench_figure06_linkbench_ipa_fraction.
# This may be replaced when dependencies are built.
