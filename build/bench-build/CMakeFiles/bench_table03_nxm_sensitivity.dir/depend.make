# Empty dependencies file for bench_table03_nxm_sensitivity.
# This may be replaced when dependencies are built.
