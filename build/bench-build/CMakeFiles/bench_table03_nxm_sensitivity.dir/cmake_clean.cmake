file(REMOVE_RECURSE
  "../bench/bench_table03_nxm_sensitivity"
  "../bench/bench_table03_nxm_sensitivity.pdb"
  "CMakeFiles/bench_table03_nxm_sensitivity.dir/bench_table03_nxm_sensitivity.cc.o"
  "CMakeFiles/bench_table03_nxm_sensitivity.dir/bench_table03_nxm_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_nxm_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
