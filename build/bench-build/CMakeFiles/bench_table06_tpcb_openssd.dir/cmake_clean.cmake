file(REMOVE_RECURSE
  "../bench/bench_table06_tpcb_openssd"
  "../bench/bench_table06_tpcb_openssd.pdb"
  "CMakeFiles/bench_table06_tpcb_openssd.dir/bench_table06_tpcb_openssd.cc.o"
  "CMakeFiles/bench_table06_tpcb_openssd.dir/bench_table06_tpcb_openssd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_tpcb_openssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
