# Empty dependencies file for bench_table06_tpcb_openssd.
# This may be replaced when dependencies are built.
