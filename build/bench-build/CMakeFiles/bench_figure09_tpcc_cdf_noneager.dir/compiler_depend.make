# Empty compiler generated dependencies file for bench_figure09_tpcc_cdf_noneager.
# This may be replaced when dependencies are built.
