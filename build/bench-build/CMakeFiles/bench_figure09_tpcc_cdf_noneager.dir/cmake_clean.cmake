file(REMOVE_RECURSE
  "../bench/bench_figure09_tpcc_cdf_noneager"
  "../bench/bench_figure09_tpcc_cdf_noneager.pdb"
  "CMakeFiles/bench_figure09_tpcc_cdf_noneager.dir/bench_figure09_tpcc_cdf_noneager.cc.o"
  "CMakeFiles/bench_figure09_tpcc_cdf_noneager.dir/bench_figure09_tpcc_cdf_noneager.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure09_tpcc_cdf_noneager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
