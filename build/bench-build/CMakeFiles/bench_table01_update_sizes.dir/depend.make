# Empty dependencies file for bench_table01_update_sizes.
# This may be replaced when dependencies are built.
