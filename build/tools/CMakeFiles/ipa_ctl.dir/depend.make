# Empty dependencies file for ipa_ctl.
# This may be replaced when dependencies are built.
