file(REMOVE_RECURSE
  "CMakeFiles/ipa_ctl.dir/ipa_ctl.cc.o"
  "CMakeFiles/ipa_ctl.dir/ipa_ctl.cc.o.d"
  "ipa_ctl"
  "ipa_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
