#!/usr/bin/env bash
# Formatting gate for the CI `format` job (and local pre-commit use).
#
# With clang-format on PATH: `clang-format -n -Werror` over every tracked
# C++ source against the checked-in .clang-format. Without it (e.g. a
# minimal container), degrades to the always-on hygiene checks below so the
# script still catches tabs, trailing whitespace, CRLF and missing final
# newlines locally.
#
# Usage: scripts/check_format.sh [--fix]
set -u
cd "$(dirname "$0")/.."

FIX=0
[ "${1:-}" = "--fix" ] && FIX=1

mapfile -t FILES < <(git ls-files '*.cc' '*.h')
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "check_format: no C++ sources tracked" >&2
  exit 2
fi

fail=0

if command -v clang-format > /dev/null 2>&1; then
  if [ "$FIX" -eq 1 ]; then
    clang-format -i "${FILES[@]}"
  elif ! clang-format -n -Werror "${FILES[@]}"; then
    echo "check_format: run scripts/check_format.sh --fix" >&2
    fail=1
  fi
else
  echo "check_format: clang-format not found; running hygiene checks only" >&2
fi

# Hygiene checks (always on; these hold regardless of clang-format version).
if grep -n -P '\t' "${FILES[@]}"; then
  echo "check_format: tabs found in C++ sources" >&2
  fail=1
fi
if grep -n -P ' +$' "${FILES[@]}"; then
  echo "check_format: trailing whitespace found" >&2
  fail=1
fi
if grep -l -P '\r$' "${FILES[@]}"; then
  echo "check_format: CRLF line endings found" >&2
  fail=1
fi
for f in "${FILES[@]}"; do
  if [ -s "$f" ] && [ -n "$(tail -c 1 "$f")" ]; then
    echo "$f: missing final newline" >&2
    fail=1
  fi
done

exit $fail
