#!/usr/bin/env bash
# Regenerate the CI perf-gate baselines under bench/baselines/.
#
# Run after a change that intentionally shifts the simulated I/O profile,
# commit the result, and explain the shift in the PR. The snapshots are
# deterministic (bit-identical for any IPA_JOBS), so a diff here is a real
# behavior change, never thread-scheduling noise.
#
# Usage: scripts/update_baselines.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."

BUILD=${1:-build}
for bin in bench/bench_table02_ipl_vs_ipa bench/bench_table07_tpcb_emulator \
           bench/bench_table12_backend_compare bench/bench_scaleup \
           bench/bench_serve bench/bench_replication \
           bench/bench_delta_compression tools/crash_sweep; do
  if [ ! -x "$BUILD/$bin" ]; then
    echo "update_baselines: missing $BUILD/$bin (build it first)" >&2
    exit 2
  fi
done

mkdir -p bench/baselines
export IPA_SCALE=0.1 IPA_JOBS=4

echo "== table02_ipl_vs_ipa"
"$BUILD/bench/bench_table02_ipl_vs_ipa" \
  --metrics-json bench/baselines/table02_ipl_vs_ipa.json > /dev/null
echo "== table07_tpcb_emulator"
"$BUILD/bench/bench_table07_tpcb_emulator" \
  --metrics-json bench/baselines/table07_tpcb_emulator.json > /dev/null
echo "== table12_backend_compare"
"$BUILD/bench/bench_table12_backend_compare" \
  --metrics-json bench/baselines/table12_backend_compare.json > /dev/null
echo "== bench_scaleup"
"$BUILD/bench/bench_scaleup" --workers 1,4 --min-speedup 3 \
  --metrics-json bench/baselines/bench_scaleup.json > /dev/null
echo "== bench_serve"
"$BUILD/bench/bench_serve" --seed 7 \
  --metrics-json bench/baselines/bench_serve.json > /dev/null
echo "== bench_replication"
"$BUILD/bench/bench_replication" \
  --metrics-json bench/baselines/bench_replication.json > /dev/null
echo "== bench_delta_compression"
"$BUILD/bench/bench_delta_compression" \
  --metrics-json bench/baselines/bench_delta_compression.json > /dev/null
echo "== crash_sweep"
"$BUILD/tools/crash_sweep" --points 300 \
  --metrics-json bench/baselines/crash_sweep.json > /dev/null

git status --short bench/baselines/
