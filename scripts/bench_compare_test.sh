#!/usr/bin/env bash
# Exit-code contract test for tools/bench_compare: 0 on a matching snapshot,
# 1 on an injected regression, 2 on unreadable input. Registered as a ctest
# (see tools/CMakeLists.txt); usage: bench_compare_test.sh /path/to/bench_compare
set -u

BIN=${1:?usage: bench_compare_test.sh /path/to/bench_compare}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

cat > "$TMP/baseline.json" <<'EOF'
{
  "schema": "ipa-metrics-v1",
  "metrics": [
    {"name": "flash.page_programs.lsb", "type": "counter", "value": 1200},
    {"name": "ftl.gc.page_migrations", "type": "counter", "value": 34},
    {"name": "crash_sweep.fingerprint", "type": "gauge", "value": 3817851012},
    {"name": "ftl.write_latency_us", "type": "histogram", "count": 100, "sum": 40000, "max": 900, "buckets": [[9, 60], [10, 40]]}
  ]
}
EOF

fail=0
check() {
  local want=$1 got=$2 what=$3
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $what: expected exit $want, got $got" >&2
    fail=1
  else
    echo "ok: $what (exit $got)"
  fi
}

# Identical snapshots match.
cp "$TMP/baseline.json" "$TMP/same.json"
"$BIN" "$TMP/baseline.json" "$TMP/same.json" > /dev/null
check 0 $? "identical snapshots"

# An injected counter regression fails loudly.
sed 's/"value": 1200/"value": 1300/' "$TMP/baseline.json" > "$TMP/regressed.json"
out=$("$BIN" "$TMP/baseline.json" "$TMP/regressed.json" 2>&1)
check 1 $? "injected counter regression"
case "$out" in
  *flash.page_programs.lsb*) echo "ok: diff names the regressed counter" ;;
  *) echo "FAIL: diff output does not name the counter: $out" >&2; fail=1 ;;
esac

# Histogram drift within tolerance passes; beyond it fails.
sed 's/"sum": 40000/"sum": 40800/' "$TMP/baseline.json" > "$TMP/drift.json"
"$BIN" "$TMP/baseline.json" "$TMP/drift.json" > /dev/null
check 0 $? "2% histogram drift within default tolerance"
"$BIN" --tolerance 0.01 "$TMP/baseline.json" "$TMP/drift.json" > /dev/null 2>&1
check 1 $? "2% histogram drift beyond --tolerance 0.01"

# --ignore suppresses a prefixed diff.
"$BIN" --ignore flash. "$TMP/baseline.json" "$TMP/regressed.json" > /dev/null
check 0 $? "--ignore flash. suppresses the diff"

# Unreadable input is a usage/I-O error.
"$BIN" "$TMP/baseline.json" "$TMP/missing.json" > /dev/null 2>&1
check 2 $? "missing input file"

exit $fail
