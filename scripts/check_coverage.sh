#!/usr/bin/env bash
# Line-coverage gate for src/ (docs/TESTING.md).
#
# Usage: scripts/check_coverage.sh [build-dir] [floor-file]
#
# The build directory must have been configured with the "coverage" preset
# (gcc --coverage) and the test suite run, so .gcda files exist. Computes the
# line coverage of everything under src/ and fails when it drops below the
# floor recorded in scripts/coverage_floor.txt (a percentage; raise it as
# coverage improves, lower it only with justification in the PR).
#
# Uses gcovr when available; otherwise falls back to gcov --json-format plus
# a small python aggregator, so the gate runs on bare toolchains too.
# A per-file breakdown is written to <build-dir>/coverage_report.txt.
set -u

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build-coverage"}
FLOOR_FILE=${2:-"$ROOT/scripts/coverage_floor.txt"}
REPORT="$BUILD_DIR/coverage_report.txt"

if [ ! -d "$BUILD_DIR" ]; then
  echo "check_coverage: build dir '$BUILD_DIR' not found" >&2
  echo "  configure with: cmake --preset coverage && cmake --build --preset coverage" >&2
  exit 2
fi
floor=$(tr -d '[:space:]' < "$FLOOR_FILE")
if [ -z "$floor" ]; then
  echo "check_coverage: empty floor file $FLOOR_FILE" >&2
  exit 2
fi

gcda_count=$(find "$BUILD_DIR" -name '*.gcda' | wc -l)
if [ "$gcda_count" -eq 0 ]; then
  echo "check_coverage: no .gcda files under $BUILD_DIR — run the tests first" >&2
  echo "  ctest --preset coverage -j \$(nproc)" >&2
  exit 2
fi

if command -v gcovr >/dev/null 2>&1; then
  gcovr --root "$ROOT" --filter "$ROOT/src/" "$BUILD_DIR" -o "$REPORT" || exit 2
  pct=$(gcovr --root "$ROOT" --filter "$ROOT/src/" "$BUILD_DIR" --print-summary 2>/dev/null |
        awk '/^lines:/ { sub(/%.*/, "", $2); print $2 }')
else
  # Fallback: gcov --json-format on every .gcda, aggregated in python. Lines
  # are keyed (file, line) and a line counts as covered when any object file
  # executed it — the same union gcovr computes.
  workdir=$(mktemp -d)
  trap 'rm -rf "$workdir"' EXIT
  find "$BUILD_DIR" -name '*.gcda' -print0 |
    (cd "$workdir" && xargs -0 gcov --json-format --preserve-paths >/dev/null 2>&1)
  pct=$(GCOV_DIR="$workdir" SRC_PREFIX="$ROOT/src/" REPORT="$REPORT" python3 - <<'EOF'
import glob, gzip, json, os, sys

src_prefix = os.environ["SRC_PREFIX"]
lines = {}  # (file, line) -> max count
for path in glob.glob(os.path.join(os.environ["GCOV_DIR"], "*.gcov.json.gz")):
    with gzip.open(path, "rt") as f:
        doc = json.load(f)
    for fentry in doc.get("files", []):
        name = os.path.normpath(os.path.join(doc.get("current_working_directory", ""),
                                             fentry["file"]))
        if not name.startswith(src_prefix):
            continue
        for ln in fentry.get("lines", []):
            key = (name, ln["line_number"])
            lines[key] = max(lines.get(key, 0), ln["count"])

per_file = {}
for (name, _), count in lines.items():
    total, covered = per_file.get(name, (0, 0))
    per_file[name] = (total + 1, covered + (1 if count > 0 else 0))

total = sum(t for t, _ in per_file.values())
covered = sum(c for _, c in per_file.values())
if total == 0:
    print("no src/ lines found in gcov output", file=sys.stderr)
    sys.exit(2)
with open(os.environ["REPORT"], "w") as rep:
    for name in sorted(per_file):
        t, c = per_file[name]
        rep.write("%6.1f%%  %5d/%-5d  %s\n" % (100.0 * c / t, c, t,
                                               os.path.relpath(name, src_prefix)))
print("%.1f" % (100.0 * covered / total))
EOF
) || exit 2
fi

if [ -z "${pct:-}" ]; then
  echo "check_coverage: could not compute a coverage percentage" >&2
  exit 2
fi

echo "src/ line coverage: ${pct}% (floor ${floor}%), report: $REPORT"
awk -v pct="$pct" -v floor="$floor" 'BEGIN {
  if (pct + 0 < floor + 0) {
    printf "FAIL: coverage %.1f%% is below the floor %.1f%%\n", pct, floor
    exit 1
  }
  printf "OK: coverage %.1f%% >= floor %.1f%%\n", pct, floor
}'
