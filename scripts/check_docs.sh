#!/usr/bin/env bash
# Verify that every intra-repo markdown link and #anchor in the repo's
# documentation resolves, and that every docs/*.md page is referenced from
# README.md's documentation index (so new pages can't go unlinked). No
# network access: http(s)/mailto links are ignored. Scanned: *.md at the
# repo root and under docs/.
#
# Usage: scripts/check_docs.sh
# Exit: 0 all checks pass, 1 broken links / unindexed pages (each printed),
#       2 setup error.
set -u
cd "$(dirname "$0")/.." || exit 2

python3 - <<'PY'
import os, re, sys

# PAPERS.md / SNIPPETS.md are generated reference dumps, not docs we own.
SKIP = {"PAPERS.md", "SNIPPETS.md"}

files = sorted(
    [f for f in os.listdir(".") if f.endswith(".md") and f not in SKIP]
    + ["docs/" + f for f in os.listdir("docs") if f.endswith(".md")]
)

def strip_code(text):
    """Remove fenced code blocks and inline code spans."""
    text = re.sub(r"^```.*?^```", "", text, flags=re.S | re.M)
    return re.sub(r"`[^`\n]*`", "", text)

def anchors_of(text):
    """GitHub-style anchor slugs for every heading."""
    slugs, seen = set(), {}
    for line in strip_code(text).splitlines():
        m = re.match(r"#{1,6}\s+(.*)", line)
        if not m:
            continue
        h = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", m.group(1))  # unlink
        h = re.sub(r"[`*_]", "", h).strip().lower()
        slug = re.sub(r"[ ]", "-", re.sub(r"[^\w\- ]", "", h))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs

contents = {f: open(f, encoding="utf-8").read() for f in files}
anchor_cache = {f: anchors_of(t) for f, t in contents.items()}

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
errors = []
for f, text in contents.items():
    base = os.path.dirname(f)
    for target in LINK.findall(strip_code(text)):
        if re.match(r"(https?|mailto):", target):
            continue
        path, _, frag = target.partition("#")
        if path:
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                errors.append(f"{f}: broken link -> {target}")
                continue
        else:
            resolved = f
        if frag:
            if not resolved.endswith(".md"):
                continue  # anchors into source files are line refs, skip
            if resolved not in anchor_cache:
                if not os.path.exists(resolved):
                    errors.append(f"{f}: broken link -> {target}")
                    continue
                anchor_cache[resolved] = anchors_of(
                    open(resolved, encoding="utf-8").read())
            if frag.lower() not in anchor_cache[resolved]:
                errors.append(f"{f}: missing anchor -> {target}")

# Index coverage: every docs/*.md page must be linked from README.md (the
# documentation index), so a new page cannot land unreferenced.
readme_targets = set()
for target in LINK.findall(strip_code(contents["README.md"])):
    if re.match(r"(https?|mailto):", target):
        continue
    path = target.partition("#")[0]
    if path:
        readme_targets.add(os.path.normpath(path))
for page in sorted(f for f in files if f.startswith("docs/")):
    if page not in readme_targets:
        errors.append(f"README.md: docs page not in the documentation index -> {page}")

for e in errors:
    print(e)
print(f"check_docs: {len(files)} files scanned, {len(errors)} problems")
sys.exit(1 if errors else 0)
PY
