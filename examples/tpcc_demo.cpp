// TPC-C demo: the paper's headline experiment in miniature.
//
// Runs the same TPC-C workload twice on identical emulated flash devices —
// once with traditional out-of-place page writes, once with the [2x3] IPA
// scheme — and prints the side-by-side reductions in GC work, erases and
// I/O latency (the Table 9 effect).
//
//   $ ./build/examples/tpcc_demo

#include <cstdio>

#include "workload/testbed.h"
#include "workload/tpcc.h"

using namespace ipa;
using namespace ipa::workload;

namespace {

struct Outcome {
  ftl::RegionStats region;
  double tps = 0;
};

Result<Outcome> RunOnce(storage::Scheme scheme, uint64_t txns) {
  TpccConfig wc;
  wc.items = 4000;
  wc.customers_per_district = 120;
  Tpcc sizing(nullptr, wc, SingleTablespace(0));

  TestbedConfig tc;
  tc.db_pages = sizing.EstimatedPages(4096);
  tc.scheme = scheme;
  tc.buffer_fraction = 0.20;
  IPA_ASSIGN_OR_RETURN(std::unique_ptr<Testbed> bed, MakeTestbed(tc));

  Tpcc tpcc(bed->db.get(), wc, bed->ts_map());
  IPA_RETURN_NOT_OK(tpcc.Load());
  IPA_RETURN_NOT_OK(bed->db->Checkpoint());
  bed->noftl->ResetStats(bed->region);
  bed->db->ResetTxnStats();

  SimTime t0 = bed->noftl->clock().Now();
  for (uint64_t i = 0; i < txns; i++) {
    auto r = tpcc.RunTransaction();
    IPA_RETURN_NOT_OK(r.status());
    bed->noftl->clock().Advance(400);  // per-txn CPU cost
  }
  SimTime span = bed->noftl->clock().Now() - t0;

  Outcome out;
  out.region = bed->region_stats();
  out.tps = static_cast<double>(bed->db->txn_stats().commits) /
            (static_cast<double>(span) / 1e6);
  return out;
}

}  // namespace

int main() {
  const uint64_t kTxns = 5000;
  std::printf("TPC-C, 20%% buffer: traditional [0x0] vs IPA [2x3]...\n\n");

  auto base = RunOnce({}, kTxns);
  auto ipa_run = RunOnce({.n = 2, .m = 3, .v = 12}, kTxns);
  if (!base.ok() || !ipa_run.ok()) {
    std::fprintf(stderr, "run failed: %s %s\n",
                 base.status().ToString().c_str(),
                 ipa_run.status().ToString().c_str());
    return 1;
  }
  const auto& b = base.value();
  const auto& p = ipa_run.value();

  auto line = [](const char* name, double v0, double v1, const char* unit) {
    std::printf("  %-28s %12.2f -> %12.2f %-5s (%+.0f%%)\n", name, v0, v1, unit,
                v0 ? 100.0 * (v1 - v0) / v0 : 0.0);
  };
  std::printf("metric                        traditional          IPA [2x3]\n");
  line("in-place appends share", 0.0, p.region.IpaSharePercent(), "%");
  line("GC page migr. / host write", b.region.MigrationsPerHostWrite(),
       p.region.MigrationsPerHostWrite(), "");
  line("GC erases / host write", b.region.ErasesPerHostWrite(),
       p.region.ErasesPerHostWrite(), "");
  line("read latency", b.region.read_latency.MeanMillis(),
       p.region.read_latency.MeanMillis(), "ms");
  line("throughput", b.tps, p.tps, "tps");
  std::printf(
      "\nFewer out-of-place writes -> fewer invalid pages -> less GC -> the\n"
      "device erases less and answers reads faster (paper Tables 8/9).\n");
  return 0;
}
