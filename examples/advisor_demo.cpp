// IPA advisor demo (Section 8.4): profile a live workload's update sizes
// per DB object, then ask the advisor for [NxM] schemes under the three
// optimization goals (performance / longevity / space).
//
//   $ ./build/examples/advisor_demo

#include <cstdio>

#include "core/advisor.h"
#include "workload/testbed.h"
#include "workload/tpcc.h"

using namespace ipa;
using namespace ipa::workload;

int main() {
  // Run TPC-C with update-size recording (the advisor's profiling input —
  // the paper derives the same data from the DB log).
  TpccConfig wc;
  wc.items = 4000;
  wc.customers_per_district = 120;
  Tpcc sizing(nullptr, wc, SingleTablespace(0));
  TestbedConfig tc;
  tc.db_pages = sizing.EstimatedPages(4096);
  tc.buffer_fraction = 0.30;
  tc.record_update_sizes = true;
  auto bed = MakeTestbed(tc);
  if (!bed.ok()) return 1;
  Tpcc tpcc(bed.value()->db.get(), wc, bed.value()->ts_map());
  if (!tpcc.Load().ok()) return 1;
  (void)bed.value()->db->Checkpoint();
  bed.value()->db->buffer_pool().mutable_update_traces().clear();

  std::printf("profiling 4000 TPC-C transactions...\n\n");
  for (int i = 0; i < 4000; i++) {
    if (!tpcc.RunTransaction().ok()) return 1;
  }
  (void)bed.value()->db->Checkpoint();

  const auto& traces = bed.value()->db->buffer_pool().update_traces();
  for (auto goal : {core::AdvisorGoal::kPerformance, core::AdvisorGoal::kLongevity,
                    core::AdvisorGoal::kSpace}) {
    std::printf("== goal: %s ==\n", core::AdvisorGoalName(goal));
    for (const auto& [table, trace] : traces) {
      if (trace.net.total() < 50) continue;  // too few samples to advise on
      core::ObjectProfile profile;
      profile.name = bed.value()->db->table_name(table);
      profile.net_update_sizes = trace.net;
      profile.meta_update_sizes = trace.meta;
      core::Advice advice =
          core::Recommend(profile, flash::CellType::kMlc, 4096, goal);
      std::printf("  %-14s -> [%ux%u] V=%u  (est. IPA share %2.0f%%, space %.1f%%)\n",
                  profile.name.c_str(), advice.scheme.n, advice.scheme.m,
                  advice.scheme.v, 100 * advice.expected_ipa_fraction,
                  100 * advice.space_overhead);
      if (goal == core::AdvisorGoal::kPerformance) {
        std::printf("      %s\n", advice.rationale.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf(
      "NoFTL regions let each object adopt its own scheme: e.g. place STOCK\n"
      "in an IPA pSLC region and the read-mostly ITEM table in a plain one.\n");
  return 0;
}
