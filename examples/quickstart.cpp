// Quickstart: the whole IPA stack in ~100 lines.
//
// Builds an emulated SLC flash device, puts a NoFTL region with IPA on it,
// creates a table with a [2x4] delta scheme, runs small transactional
// updates, and shows how they reach flash as in-place appends instead of
// out-of-place page writes.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "common/bytes.h"
#include "engine/database.h"
#include "flash/flash_array.h"
#include "ftl/noftl.h"

using namespace ipa;

int main() {
  // 1. An emulated flash device: 4 channels x 4 SLC chips, 4KB pages.
  flash::Geometry geo = flash::EmulatorSlcGeometry(/*capacity_mb=*/64);
  flash::FlashArray device(geo, flash::SlcTiming());
  std::printf("device: %s\n", geo.ToString().c_str());

  // 2. A NoFTL region with IPA enabled. The [2x4] scheme reserves
  //    N * (1 + 3M + 3V) = 2 * (1 + 12 + 36) = 98 bytes per 4KB page.
  storage::Scheme scheme{.n = 2, .m = 4, .v = 12};
  ftl::NoFtl noftl(&device);
  ftl::RegionConfig region_cfg;
  region_cfg.name = "rgIPA";
  region_cfg.logical_pages = 4096;
  region_cfg.ipa_mode = ftl::IpaMode::kSlc;
  region_cfg.delta_area_offset = 4096 - scheme.AreaBytes();
  auto region = noftl.CreateRegion(region_cfg);
  if (!region.ok()) {
    std::fprintf(stderr, "region: %s\n", region.status().ToString().c_str());
    return 1;
  }

  // 3. The engine on top: CREATE TABLESPACE tsIPA (REGION=rgIPA); CREATE
  //    TABLE accounts (...) TABLESPACE tsIPA;  (Figure 3 of the paper.)
  engine::EngineConfig ec;
  ec.buffer_pages = 256;
  engine::Database db(&noftl, ec);
  auto ts = db.CreateTablespace("tsIPA", region.value(), scheme);
  auto table = db.CreateTable("accounts", ts.value());

  // 4. Insert a few account rows (id u64 | balance i32 | padding).
  std::vector<engine::Rid> rids;
  engine::TxnId load = db.Begin();
  for (uint64_t id = 0; id < 64; id++) {
    std::vector<uint8_t> row(100, 0);
    EncodeU64(row.data(), id);
    EncodeU32(row.data() + 8, 1000);
    auto rid = db.Insert(load, table.value(), row);
    if (!rid.ok()) return 1;
    rids.push_back(rid.value());
  }
  (void)db.Commit(load);
  (void)db.Checkpoint();  // settle pages onto flash

  // 5. Small updates: each transaction changes one 4-byte balance. On
  //    eviction these become write_delta appends to the same physical page.
  for (int round = 0; round < 3; round++) {
    engine::TxnId txn = db.Begin();
    for (size_t i = 0; i < rids.size(); i += 8) {
      auto row = db.Read(txn, rids[i], /*for_update=*/true);
      int32_t bal = static_cast<int32_t>(DecodeU32(row.value().data() + 8));
      uint8_t nb[4];
      EncodeU32(nb, static_cast<uint32_t>(bal + 1 + round));
      (void)db.Update(txn, rids[i], 8, nb);
    }
    (void)db.Commit(txn);
    (void)db.Checkpoint();  // force the flush so we can watch the write path
  }

  // 6. What happened on flash?
  const auto& rs = noftl.region_stats(region.value());
  const auto& bs = db.buffer_pool().stats();
  std::printf("\nhost page writes (out-of-place): %llu\n",
              static_cast<unsigned long long>(rs.host_page_writes));
  std::printf("host delta writes (in-place appends): %llu (%.0f%% of writes)\n",
              static_cast<unsigned long long>(rs.host_delta_writes),
              rs.IpaSharePercent());
  std::printf("delta bytes written: %llu (vs %llu if each flush wrote 4KB)\n",
              static_cast<unsigned long long>(rs.delta_bytes_written),
              static_cast<unsigned long long>(rs.host_delta_writes * 4096));
  std::printf("GC erases: %llu\n", static_cast<unsigned long long>(rs.gc_erases));
  std::printf("buffer flushes: %llu ipa, %llu out-of-place, %llu clean-skips\n",
              static_cast<unsigned long long>(bs.ipa_flushes),
              static_cast<unsigned long long>(bs.oop_flushes),
              static_cast<unsigned long long>(bs.clean_diff_skips));

  // 7. Verify durability: drop the buffer, read back through flash.
  db.buffer_pool().DropAllNoFlush();
  engine::TxnId check = db.Begin();
  auto row = db.Read(check, rids[0]);
  std::printf("\naccount 0 balance after re-fetch from flash: %d (expect 1006)\n",
              static_cast<int32_t>(DecodeU32(row.value().data() + 8)));
  (void)db.Commit(check);
  return 0;
}
