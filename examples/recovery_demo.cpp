// Recovery demo: IPA pages and ARIES restart recovery coexist (the paper's
// Section 6.2 "Remaining DBMS functionality" walkthrough).
//
// A committed transaction and an in-flight (loser) transaction both have
// dirty pages flushed to flash — some as in-place appends. The process then
// "crashes" (buffer + unflushed log discarded) and restart recovery replays
// history: committed work survives, the loser's changes are rolled back,
// and the delta-records on flash replay correctly on fetch.
//
//   $ ./build/examples/recovery_demo

#include <cstdio>

#include "common/bytes.h"
#include "workload/testbed.h"

using namespace ipa;
using namespace ipa::workload;

int main() {
  TestbedConfig tc;
  tc.db_pages = 512;
  tc.scheme = {.n = 2, .m = 4, .v = 12};
  tc.buffer_fraction = 0.5;
  auto bed_or = MakeTestbed(tc);
  if (!bed_or.ok()) return 1;
  Testbed& bed = *bed_or.value();
  engine::Database& db = *bed.db;

  auto table = db.CreateTable("accounts", bed.ts);

  // Committed setup: 20 accounts with balance 100.
  engine::TxnId setup = db.Begin();
  std::vector<engine::Rid> rids;
  for (uint64_t id = 0; id < 20; id++) {
    std::vector<uint8_t> row(80, 0);
    EncodeU64(row.data(), id);
    EncodeU32(row.data() + 8, 100);
    auto rid = db.Insert(setup, table.value(), row);
    if (!rid.ok()) return 1;
    rids.push_back(rid.value());
  }
  (void)db.Commit(setup);
  (void)db.Checkpoint();

  // Committed small update -> flushed as an in-place append.
  engine::TxnId good = db.Begin();
  uint8_t v150[4];
  EncodeU32(v150, 150);
  (void)db.Update(good, rids[0], 8, v150);
  (void)db.Commit(good);
  (void)db.buffer_pool().FlushAll();

  // Loser: updates account 1 but never commits; steal flushes its dirty
  // page to flash (possibly as a delta) before the crash.
  engine::TxnId loser = db.Begin();
  uint8_t v999[4];
  EncodeU32(v999, 999);
  (void)db.Update(loser, rids[1], 8, v999);
  (void)db.buffer_pool().FlushAll();

  std::printf("before crash: IPA flushes=%llu, out-of-place=%llu\n",
              static_cast<unsigned long long>(db.buffer_pool().stats().ipa_flushes),
              static_cast<unsigned long long>(db.buffer_pool().stats().oop_flushes));

  // CRASH. The flash device and the durable log prefix survive; buffer
  // contents and unflushed log records do not.
  db.SimulateCrash();
  std::printf("crash!  running ARIES restart (analysis/redo/undo)...\n");
  if (!db.Recover().ok()) {
    std::fprintf(stderr, "recovery failed\n");
    return 1;
  }

  engine::TxnId check = db.Begin();
  auto a0 = db.Read(check, rids[0]);
  auto a1 = db.Read(check, rids[1]);
  (void)db.Commit(check);
  uint32_t b0 = DecodeU32(a0.value().data() + 8);
  uint32_t b1 = DecodeU32(a1.value().data() + 8);
  std::printf("after recovery: account0=%u (expect 150, committed update kept)\n",
              b0);
  std::printf("                account1=%u (expect 100, loser rolled back)\n", b1);
  return (b0 == 150 && b1 == 100) ? 0 : 1;
}
