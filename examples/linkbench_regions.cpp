// Selective IPA with NoFTL regions (Section 5): LinkBench with write-hot
// tables (NODE/COUNT, dominated by small numeric updates) placed in an IPA
// region and the LINK table plus indexes in a plain region.
//
//   $ ./build/examples/linkbench_regions

#include <cstdio>

#include "workload/linkbench.h"
#include "workload/testbed.h"

using namespace ipa;
using namespace ipa::workload;

int main() {
  // Device large enough for two regions.
  flash::Geometry geo = flash::EmulatorSlcGeometry(192);
  geo.page_size = 8192;
  geo.blocks_per_chip = geo.blocks_per_chip / 2;  // capacity_mb was for 4KB pages
  flash::FlashArray device(geo, flash::SlcTiming());
  ftl::NoFtl noftl(&device);

  storage::Scheme hot_scheme{.n = 2, .m = 100, .v = 14};

  ftl::RegionConfig hot;
  hot.name = "rgIPA";
  hot.logical_pages = 3000;
  hot.ipa_mode = ftl::IpaMode::kSlc;
  hot.delta_area_offset = 8192 - hot_scheme.AreaBytes();
  auto hot_region = noftl.CreateRegion(hot);

  ftl::RegionConfig cold;
  cold.name = "rgPlain";
  cold.logical_pages = 4000;
  auto cold_region = noftl.CreateRegion(cold);
  if (!hot_region.ok() || !cold_region.ok()) return 1;

  engine::EngineConfig ec;
  ec.page_size = 8192;
  ec.buffer_pages = 700;
  engine::Database db(&noftl, ec);
  auto hot_ts = db.CreateTablespace("tsIPA", hot_region.value(), hot_scheme);
  auto cold_ts = db.CreateTablespace("tsPlain", cold_region.value(), {});
  if (!hot_ts.ok() || !cold_ts.ok()) return 1;

  // Per-object placement: the selective-IPA map.
  TablespaceMap ts_of = [&](const std::string& table) {
    if (table == "NODE" || table == "COUNT") return hot_ts.value();
    return cold_ts.value();
  };

  LinkbenchConfig wc;
  wc.nodes = 8000;
  Linkbench lb(&db, wc, ts_of);
  if (!lb.Load().ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  (void)db.Checkpoint();
  noftl.ResetStats(hot_region.value());
  noftl.ResetStats(cold_region.value());

  std::printf("running 6000 LinkBench operations...\n\n");
  for (int i = 0; i < 6000; i++) {
    if (!lb.RunTransaction().ok()) return 1;
  }
  (void)db.Checkpoint();

  auto show = [&](const char* name, ftl::RegionId r) {
    const auto& st = noftl.region_stats(r);
    std::printf("%-8s  writes=%6llu  in-place appends=%6llu (%3.0f%%)  "
                "gc erases=%4llu\n",
                name, static_cast<unsigned long long>(st.HostWrites()),
                static_cast<unsigned long long>(st.host_delta_writes),
                st.IpaSharePercent(),
                static_cast<unsigned long long>(st.gc_erases));
  };
  show("rgIPA", hot_region.value());
  show("rgPlain", cold_region.value());
  std::printf(
      "\nOnly the objects that benefit pay the delta-area space overhead;\n"
      "the rest of the database is untouched (paper contribution II).\n");
  return 0;
}
