// Parallel experiment runner.
//
// Every RunConfig describes a fully self-contained, deterministic testbed
// (its own FlashArray, SimClock, Rng and statistics objects — nothing in the
// simulated stack is shared between runs), so independent configurations can
// execute concurrently. RunMany() schedules a batch of configs on a small
// self-scheduling thread pool and returns the results in submission order:
// table output assembled from RunMany results is byte-identical to a serial
// RunWorkload loop.
//
// Knobs (environment):
//   IPA_JOBS        process-wide thread budget (default:
//                   hardware_concurrency). Shared by every concurrent and
//                   nested ParallelFor/RunMany call: the runner never has
//                   more than IPA_JOBS spawned worker threads alive at once,
//                   no matter how calls nest (e.g. a bench arm that itself
//                   fans out per-partition work). A call that finds the
//                   budget exhausted runs inline on its calling thread.
//   IPA_BENCH_JSON  path; when set, per-run and total wall-clock timings are
//                   appended as machine-readable JSON at process exit (the
//                   perf-trajectory baseline for future PRs)

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace ipa::bench {

/// The process-wide thread budget: the IPA_JOBS environment variable when it
/// parses to >= 1, otherwise std::thread::hardware_concurrency() (min 1).
/// ParallelFor never has more than this many spawned workers alive at once,
/// summed across all concurrent calls.
unsigned Jobs();

/// Run fn(0), ..., fn(n-1) on a self-scheduling pool: workers claim the next
/// unclaimed index, so one slow iteration does not serialize the rest. Every
/// index completes before the call returns; completion order is unspecified,
/// so callers wanting ordered results write into per-index slots.
///
/// The calling thread always participates; extra threads (up to `jobs` - 1)
/// are drawn from the shared Jobs() budget, so concurrent or nested calls
/// split the budget instead of multiplying it, and a call that gets nothing
/// degenerates to an in-thread serial loop. `jobs` == 0 means "use Jobs()".
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 unsigned jobs = 0);

/// Execute every config concurrently and return results in submission order.
/// `jobs` == 0 means "use Jobs()"; `jobs` == 1 degenerates to a serial
/// in-thread loop. Each batch is also recorded for the IPA_BENCH_JSON report.
std::vector<Result<RunResult>> RunMany(const std::vector<RunConfig>& configs,
                                       unsigned jobs = 0);

/// One timed run, as recorded for the JSON report.
struct RunTiming {
  RunConfig config;
  double wall_ms = 0;
  bool ok = true;
};

/// All runs timed so far in this process (submission order across batches).
const std::vector<RunTiming>& BenchTimings();

/// Write the timing report for every RunMany batch so far to `path`. Returns
/// false on I/O failure. Called automatically at process exit with the
/// IPA_BENCH_JSON path when that variable is set.
bool WriteBenchJson(const std::string& path);

}  // namespace ipa::bench
