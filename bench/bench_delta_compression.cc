// Delta-record codec sweep (docs/DELTA_COMPRESSION.md).
//
// Three deterministic arms over the DeltaCodec knob:
//
//  * codec x budget: TPC-B under every codec at two delta-area budgets.
//    Reports in-place appends per page writeback (how many folds the area
//    absorbs before the page goes out of place), device write amplification,
//    encoded bytes per append and the IPA share of host writes. The headline
//    self-check pins the tentpole claim: at the default [2x4] budget,
//    delta+compress takes STRICTLY more appends per writeback AND STRICTLY
//    less device WA than the fixed-slot raw format, or the bench exits 2.
//
//  * scan mix, larger than RAM: the TPC-H-lite scan/analytics mix with the
//    dataset grown 8x past the buffer pool (RunConfig::dataset_multiplier).
//    Reports throughput, read p99 and WA for raw vs delta+compress — the
//    regime where eviction pressure makes every absorbed writeback count.
//
//  * wire: the replicated TPC-B pair with changeset wire compression off vs
//    on (ReplConfig::compress_wire). Reports wire bytes per committed
//    logical byte and verifies byte-exact convergence under both settings.
//
// All counters are bit-identical for a fixed seed at any IPA_JOBS, so the
// metrics snapshot is gated against bench/baselines/bench_delta_compression.json.
//
// Usage: bench_delta_compression [--txns N] [--seed N] [--metrics-json PATH]
// IPA_SCALE scales transaction counts; IPA_DATASET further multiplies the
// scan-mix dataset (composes with the built-in 8x).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/metrics.h"
#include "common/random.h"
#include "engine/database.h"
#include "flash/timing.h"
#include "repl/node.h"
#include "storage/page_format.h"
#include "workload/testbed.h"

namespace ipa::bench {
namespace {

constexpr storage::DeltaCodec kCodecs[] = {storage::DeltaCodec::kRaw,
                                           storage::DeltaCodec::kDelta,
                                           storage::DeltaCodec::kDeltaCompress};

/// Stable gauge-name fragment per codec ("raw" / "delta" / "compress").
const char* CodecKey(storage::DeltaCodec c) {
  switch (c) {
    case storage::DeltaCodec::kRaw: return "raw";
    case storage::DeltaCodec::kDelta: return "delta";
    case storage::DeltaCodec::kDeltaCompress: return "compress";
  }
  return "?";
}

int64_t Milli(double v) { return static_cast<int64_t>(v * 1000.0); }

struct CodecPoint {
  double appends_per_wb = 0;  ///< host delta writes per host page write
  double wa = 0;              ///< device write amplification
  double bytes_per_append = 0;
  RunResult r;
};

Result<CodecPoint> RunCodecPoint(const storage::Scheme& scheme,
                                 storage::DeltaCodec codec, Wl wl,
                                 double dataset, uint64_t txns, uint64_t seed) {
  RunConfig cfg;
  cfg.workload = wl;
  cfg.scheme = scheme;
  cfg.scheme.codec = static_cast<uint8_t>(codec);
  cfg.txns = txns;
  cfg.seed = seed;
  cfg.dataset_multiplier = dataset;
  cfg.record_update_sizes = true;  // WA needs net-changed-bytes tracking
  IPA_ASSIGN_OR_RETURN(RunResult r, RunWorkload(cfg));
  CodecPoint p;
  p.r = r;
  // A run that absorbs EVERY writeback has zero page writes; clamp the
  // denominator so the ratio stays finite (and still strictly ordered).
  p.appends_per_wb = static_cast<double>(r.host_delta_writes) /
                     static_cast<double>(std::max<uint64_t>(
                         r.host_page_writes, 1));
  p.wa = r.WriteAmplification();
  p.bytes_per_append = r.host_delta_writes == 0
                           ? 0.0
                           : static_cast<double>(r.delta_bytes_written) /
                                 static_cast<double>(r.host_delta_writes);
  return p;
}

void EmitPointGauges(const std::string& prefix, const CodecPoint& p) {
  metrics::Gauge(prefix + ".appends_per_wb_x1000").Set(Milli(p.appends_per_wb));
  metrics::Gauge(prefix + ".wa_x1000").Set(Milli(p.wa));
  metrics::Gauge(prefix + ".bytes_per_append_x1000")
      .Set(Milli(p.bytes_per_append));
  metrics::Gauge(prefix + ".host_page_writes")
      .Set(static_cast<int64_t>(p.r.host_page_writes));
  metrics::Gauge(prefix + ".host_delta_writes")
      .Set(static_cast<int64_t>(p.r.host_delta_writes));
  metrics::Gauge(prefix + ".delta_bytes")
      .Set(static_cast<int64_t>(p.r.delta_bytes_written));
  metrics::Gauge(prefix + ".gc_erases")
      .Set(static_cast<int64_t>(p.r.gc_erases));
}

// ---------------------------------------------------------------------------
// Wire arm: a replicated pair per compression setting (the same mini TPC-B
// as bench_replication's steady arm, shortened).
// ---------------------------------------------------------------------------

constexpr uint32_t kAccountBytes = 100;
constexpr uint32_t kBalanceOffset = 12;
constexpr uint32_t kHistoryBytes = 20;

struct Node {
  flash::FlashArray dev;
  ftl::NoFtl noftl;
  std::unique_ptr<engine::Database> db;
  engine::TablespaceId ts = 0;
  engine::TableId accounts_tbl = 0;
  engine::TableId history_tbl = 0;
  std::unique_ptr<repl::ReplNode> repl;  // after db: hooks detach first

  static flash::Geometry Geo() {
    flash::Geometry g;
    g.channels = 2;
    g.chips_per_channel = 2;
    g.blocks_per_chip = 48;
    g.pages_per_block = 16;
    g.page_size = 2048;
    return g;
  }

  Node() : dev(Geo(), flash::SlcTiming()), noftl(&dev) {}

  Status Open(repl::WriterId writer, bool writable, bool compress_wire) {
    engine::EngineConfig ec;
    ec.page_size = Geo().page_size;
    ec.buffer_pages = 12;
    ec.log_capacity_bytes = 1 << 20;
    ec.log_reclaim_threshold = 0.375;
    storage::Scheme scheme{.n = 2, .m = 4, .v = 12};
    ftl::RegionConfig rc;
    rc.name = "wirebench";
    rc.logical_pages = 256;
    rc.ipa_mode = ftl::IpaMode::kSlc;
    rc.delta_area_offset = Geo().page_size - scheme.AreaBytes();
    rc.manage_ecc = true;
    IPA_ASSIGN_OR_RETURN(ftl::RegionId r, noftl.CreateRegion(rc));
    db = std::make_unique<engine::Database>(&noftl, ec);
    IPA_ASSIGN_OR_RETURN(ts, db->CreateTablespace("wirebench", r, scheme));
    IPA_ASSIGN_OR_RETURN(accounts_tbl, db->CreateTable("account", ts));
    IPA_ASSIGN_OR_RETURN(history_tbl, db->CreateTable("history", ts));
    IPA_ASSIGN_OR_RETURN(
        repl, repl::ReplNode::Attach(db.get(), ts, {accounts_tbl, history_tbl},
                                     repl::ReplConfig{
                                         .writer = writer,
                                         .writable = writable,
                                         .compress_wire = compress_wire,
                                     }));
    return Status::OK();
  }
};

struct WireOutcome {
  uint64_t commits = 0;
  uint64_t logical_bytes = 0;
  uint64_t wire_bytes = 0;
  uint64_t frames = 0;
};

Status RunWirePair(bool compress, uint64_t txns, uint32_t accounts,
                   uint64_t seed, WireOutcome* out) {
  Node p, r;
  IPA_RETURN_NOT_OK(p.Open(1, true, compress));
  IPA_RETURN_NOT_OK(r.Open(2, false, compress));
  Rng rng(seed);
  std::vector<uint64_t> rids;

  auto drain = [&]() -> Status {
    for (;;) {
      std::vector<uint8_t> w = p.repl->PopOutbound();
      if (w.empty()) return Status::OK();
      out->wire_bytes += w.size();
      out->frames++;
      auto a = r.repl->ApplyFrame(w);
      IPA_RETURN_NOT_OK(a.status());
      if (a.value() != repl::ReplNode::Apply::kApplied) {
        return Status::Corruption("wire arm frame not applied");
      }
    }
  };

  for (uint32_t i = 0; i < accounts; i++) {
    engine::TxnId txn = p.db->Begin();
    // Realistic record shape: a few live fields up front, zero padding
    // behind (TPC-B's 100-byte account row is mostly filler) — this is what
    // the wire LZ pass earns its keep on.
    std::vector<uint8_t> t(kAccountBytes, 0);
    for (uint32_t j = 0; j < 12; j++) {
      t[j] = static_cast<uint8_t>(i * 7u + j * 13u + 1u);
    }
    IPA_ASSIGN_OR_RETURN(engine::Rid rid, p.db->Insert(txn, p.accounts_tbl, t));
    rids.push_back(rid.Pack());
    out->logical_bytes += kAccountBytes;
    IPA_RETURN_NOT_OK(p.db->Commit(txn));
    IPA_RETURN_NOT_OK(drain());
  }
  for (uint64_t t = 0; t < txns; t++) {
    engine::TxnId txn = p.db->Begin();
    for (int u = 0; u < 3; u++) {
      uint64_t key = rids[rng.Uniform(rids.size())];
      uint8_t patch[4];
      for (uint8_t& b : patch) b = static_cast<uint8_t>(rng.Next());
      IPA_RETURN_NOT_OK(
          p.db->Update(txn, engine::Rid::Unpack(key), kBalanceOffset, patch));
    }
    std::vector<uint8_t> h(kHistoryBytes, 0);
    for (uint32_t j = 0; j < 8; j++) h[j] = static_cast<uint8_t>(rng.Next());
    IPA_RETURN_NOT_OK(p.db->Insert(txn, p.history_tbl, h).status());
    IPA_RETURN_NOT_OK(p.db->Commit(txn));
    out->commits++;
    out->logical_bytes += kHistoryBytes + 3 * 4;
    IPA_RETURN_NOT_OK(drain());
    if ((t + 1) % 16 == 0) IPA_RETURN_NOT_OK(p.db->Checkpoint());
  }
  IPA_RETURN_NOT_OK(drain());

  // Convergence oracle: compression must be invisible to the applied state.
  repl::ReplNode::LogicalMap pm, rm;
  IPA_RETURN_NOT_OK(p.repl->ScanLogical(&pm));
  IPA_RETURN_NOT_OK(r.repl->ScanLogical(&rm));
  if (pm != rm) return Status::Corruption("wire arm diverged");
  return Status::OK();
}

int Run(uint64_t txns, uint64_t seed) {
  // -- Arm 1: codec x budget on TPC-B.
  const storage::Scheme kBudgets[] = {{.n = 2, .m = 4, .v = 12},
                                      {.n = 2, .m = 8, .v = 16}};
  TablePrinter sweep({"scheme", "codec", "appends/wb", "WA", "B/append",
                      "IPA %", "page wr", "delta wr"});
  CodecPoint def_raw, def_compress;  // self-check inputs: default budget
  for (const storage::Scheme& scheme : kBudgets) {
    for (storage::DeltaCodec codec : kCodecs) {
      auto p = RunCodecPoint(scheme, codec, Wl::kTpcb, 1.0, txns, seed);
      if (!p.ok()) {
        std::fprintf(stderr, "bench_delta_compression: tpcb [%ux%u] %s: %s\n",
                     scheme.n, scheme.m, storage::DeltaCodecName(codec),
                     p.status().ToString().c_str());
        return 2;
      }
      std::string name = "[" + std::to_string(scheme.n) + "x" +
                         std::to_string(scheme.m) + "]";
      sweep.AddRow({name, storage::DeltaCodecName(codec),
                    Fmt(p.value().appends_per_wb), Fmt(p.value().wa),
                    Fmt(p.value().bytes_per_append),
                    Fmt(p.value().r.ipa_share_pct, 1),
                    std::to_string(p.value().r.host_page_writes),
                    std::to_string(p.value().r.host_delta_writes)});
      EmitPointGauges("delta_bench.tpcb." + std::to_string(scheme.n) + "x" +
                          std::to_string(scheme.m) + "." + CodecKey(codec),
                      p.value());
      if (&scheme == &kBudgets[0]) {
        if (codec == storage::DeltaCodec::kRaw) def_raw = p.value();
        if (codec == storage::DeltaCodec::kDeltaCompress) {
          def_compress = p.value();
        }
      }
    }
  }
  sweep.Print();

  // -- Arm 2: scan mix, dataset 8x the buffer pool.
  TablePrinter scan({"codec", "tps", "read p99 ms", "WA", "appends/wb"});
  for (storage::DeltaCodec codec :
       {storage::DeltaCodec::kRaw, storage::DeltaCodec::kDeltaCompress}) {
    auto p = RunCodecPoint(kBudgets[0], codec, Wl::kScanMix, 8.0,
                           std::max<uint64_t>(txns / 2, 8), seed);
    if (!p.ok()) {
      std::fprintf(stderr, "bench_delta_compression: scanmix %s: %s\n",
                   storage::DeltaCodecName(codec),
                   p.status().ToString().c_str());
      return 2;
    }
    scan.AddRow({storage::DeltaCodecName(codec), Fmt(p.value().r.throughput_tps),
                 Fmt(p.value().r.read_p99_ms), Fmt(p.value().wa),
                 Fmt(p.value().appends_per_wb)});
    std::string prefix = std::string("delta_bench.scanmix.") + CodecKey(codec);
    EmitPointGauges(prefix, p.value());
    metrics::Gauge(prefix + ".read_p99_us")
        .Set(static_cast<int64_t>(p.value().r.read_p99_ms * 1000.0));
    metrics::Gauge(prefix + ".commits")
        .Set(static_cast<int64_t>(p.value().r.commits));
  }
  scan.Print();

  // -- Arm 3: changeset wire compression off vs on.
  TablePrinter wire({"wire", "commits", "frames", "wire B", "wire amp"});
  uint64_t plain_bytes = 0, lz_bytes = 0;
  for (bool compress : {false, true}) {
    WireOutcome w;
    Status s = RunWirePair(compress, std::max<uint64_t>(txns / 16, 8), 64,
                           seed, &w);
    if (!s.ok()) {
      std::fprintf(stderr, "bench_delta_compression: wire(%d): %s\n",
                   compress ? 1 : 0, s.ToString().c_str());
      return 2;
    }
    (compress ? lz_bytes : plain_bytes) = w.wire_bytes;
    wire.AddRow({compress ? "compressed" : "plain", std::to_string(w.commits),
                 std::to_string(w.frames), std::to_string(w.wire_bytes),
                 Fmt(w.logical_bytes == 0
                         ? 0.0
                         : static_cast<double>(w.wire_bytes) /
                               static_cast<double>(w.logical_bytes))});
    std::string prefix =
        std::string("delta_bench.wire.") + (compress ? "lz" : "plain");
    metrics::Gauge(prefix + ".bytes").Set(static_cast<int64_t>(w.wire_bytes));
    metrics::Gauge(prefix + ".frames").Set(static_cast<int64_t>(w.frames));
  }
  wire.Print();

  // -- Self-checks: the tentpole claims, enforced on every run.
  int rc = 0;
  if (def_compress.appends_per_wb <= def_raw.appends_per_wb) {
    std::fprintf(stderr,
                 "SELF-CHECK FAIL: delta+compress appends/wb %.3f <= raw "
                 "%.3f at [2x4]\n",
                 def_compress.appends_per_wb, def_raw.appends_per_wb);
    rc = 2;
  }
  if (def_compress.wa >= def_raw.wa) {
    std::fprintf(stderr,
                 "SELF-CHECK FAIL: delta+compress WA %.3f >= raw %.3f at "
                 "[2x4]\n",
                 def_compress.wa, def_raw.wa);
    rc = 2;
  }
  if (lz_bytes >= plain_bytes) {
    std::fprintf(stderr,
                 "SELF-CHECK FAIL: compressed wire %llu B >= plain %llu B\n",
                 static_cast<unsigned long long>(lz_bytes),
                 static_cast<unsigned long long>(plain_bytes));
    rc = 2;
  }
  if (rc == 0) {
    std::printf("self-check OK: appends/wb %.2f -> %.2f, WA %.2f -> %.2f, "
                "wire %llu -> %llu B\n",
                def_raw.appends_per_wb, def_compress.appends_per_wb,
                def_raw.wa, def_compress.wa,
                static_cast<unsigned long long>(plain_bytes),
                static_cast<unsigned long long>(lz_bytes));
  }
  return rc;
}

}  // namespace
}  // namespace ipa::bench

namespace {

uint64_t ArgU64(int argc, char** argv, const char* flag, uint64_t fallback) {
  for (int i = 1; i + 1 < argc; i++) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  ipa::bench::WarnIfDebugBuild();
  uint64_t txns = ArgU64(argc, argv, "--txns", 0);
  if (txns == 0) txns = ipa::bench::DefaultTxns(ipa::bench::Wl::kTpcb) / 4;
  uint64_t seed = ArgU64(argc, argv, "--seed", 42);
  return ipa::bench::Run(txns, seed);
}
