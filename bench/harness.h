// Shared experiment harness for the per-table/figure benchmark binaries.
//
// RunWorkload() assembles a testbed (device profile + NoFTL region + engine),
// loads the selected workload, clears all statistics, runs the measurement
// phase and returns every metric the paper's tables report. All runs are
// deterministic for a fixed seed; sizes scale with the IPA_SCALE env var.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "engine/buffer_pool.h"
#include "ftl/noftl.h"
#include "workload/testbed.h"
#include "workload/workload.h"

namespace ipa::bench {

enum class Wl { kTpcb, kTpcc, kTatp, kLinkbench, kScanMix };

const char* WlName(Wl w);

struct RunConfig {
  Wl workload = Wl::kTpcb;
  storage::Scheme scheme = {};  // [0x0] = IPA off
  workload::Profile profile = workload::Profile::kEmulatorSlc;
  /// FTL backend under the tablespace; page-FTL backends force scheme = {}
  /// (see docs/FTL_BACKENDS.md).
  workload::Backend backend = workload::Backend::kNoFtl;
  double buffer_fraction = 0.5;
  uint32_t page_size = 4096;
  /// Eager Shore-MT policies (cleaner at 12.5% dirty, log reclaim at 37.5%)
  /// vs the paper's "non-eager" configuration (75% / ~100%).
  bool eager = true;
  uint64_t txns = 20000;
  bool record_update_sizes = false;
  bool record_io_trace = false;
  /// Workload size multiplier on top of IPA_SCALE.
  double scale = 1.0;
  /// Dataset multiplier (composes with the IPA_DATASET env var): grows the
  /// workload's dataset WITHOUT growing the buffer pool, which stays sized
  /// for the unmultiplied dataset. At 8.0 the heap is ~8x the buffer —
  /// the larger-than-RAM regime (eviction/scrub/GC under memory pressure).
  double dataset_multiplier = 1.0;
  uint64_t seed = 42;
  /// Region over-provisioning fraction (paper: 10% throughout).
  double over_provisioning = 0.10;
  /// When set, the measurement phase runs until this much *simulated* time
  /// has elapsed (like the paper's fixed 2-hour intervals) instead of a
  /// fixed transaction count; faster configurations then perform more host
  /// I/O, as in Tables 6-10. `txns` becomes a safety cap (x50).
  uint64_t sim_time_us = 0;
  /// Simulated CPU time consumed per transaction (advances the clock between
  /// transactions): with large buffers transactions become CPU-bound and
  /// IPA's relative throughput gain fades, as in Table 9. UINT32_MAX = pick
  /// a per-workload default; 0 = pure-I/O model.
  uint32_t cpu_us_per_txn = UINT32_MAX;
};

/// Default per-transaction CPU cost for the simulated host.
uint32_t DefaultCpuUs(Wl w);

struct RunResult {
  // Host I/O (measurement phase only).
  uint64_t host_reads = 0;
  uint64_t host_page_writes = 0;
  uint64_t host_delta_writes = 0;
  uint64_t host_writes = 0;  ///< page + delta writes
  double ipa_share_pct = 0;  ///< % of host writes served as in-place appends
  uint64_t delta_bytes_written = 0;
  uint64_t ipa_fallbacks = 0;

  // Garbage collection.
  uint64_t gc_migrations = 0;
  uint64_t gc_erases = 0;
  double migrations_per_host_write = 0;
  double erases_per_host_write = 0;

  // Latency / throughput (simulated time).
  double read_latency_ms = 0;
  double write_latency_ms = 0;  ///< out-of-place page writes
  // Latency CDF points (simulated ms) for the backend-comparison tables.
  double read_p50_ms = 0, read_p95_ms = 0, read_p99_ms = 0;
  double write_p50_ms = 0, write_p95_ms = 0, write_p99_ms = 0;
  double txn_latency_ms = 0;
  double throughput_tps = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t sim_us = 0;

  // DB I/O write amplification inputs (Section 8.4).
  uint64_t gross_written_bytes = 0;   ///< page writes * page_size + delta bytes
  uint64_t net_changed_bytes = 0;     ///< sum of byte-diffs at flush time
  double WriteAmplification() const {
    return net_changed_bytes == 0
               ? 0.0
               : static_cast<double>(gross_written_bytes) /
                     static_cast<double>(net_changed_bytes);
  }

  // Distributions / traces (populated on request).
  std::map<engine::TableId, engine::UpdateSizeTrace> traces;
  std::map<std::string, engine::UpdateSizeTrace> traces_by_name;
  std::vector<engine::IoEvent> io_trace;

  double space_overhead_pct = 0;  ///< delta-area share of the page
};

Result<RunResult> RunWorkload(const RunConfig& config);

/// Print a loud one-time stderr warning when the bench harness was compiled
/// without optimization (Debug build): timings would be meaningless.
void WarnIfDebugBuild();

/// Default measurement-phase transaction counts per workload, scaled by
/// IPA_SCALE (kept small enough that every bench binary finishes quickly).
uint64_t DefaultTxns(Wl w);

// ---------------------------------------------------------------------------
// Table formatting
// ---------------------------------------------------------------------------

/// Fixed-width text table, matching the paper's presentation style.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string Fmt(double v, int decimals = 2);
std::string Pct(double v, int decimals = 0);  ///< signed percent, e.g. "-54"

/// Tables 6 / 8: OpenSSD profile — baseline MLC without IPA vs the [NxM]
/// scheme in pSLC and odd-MLC modes; absolute + relative columns.
int PrintOpenSsdTable(Wl workload, storage::Scheme scheme);

/// Tables 7 / 9 / 10: buffer-size sweep on the flash emulator — [0x0]
/// absolute vs scheme-relative columns for each buffer fraction.
struct SweepPoint {
  double buffer_fraction;
  std::vector<storage::Scheme> schemes;  ///< relative columns per buffer
};
int PrintBufferSweepTable(Wl workload, const std::vector<SweepPoint>& points,
                          bool eager);

}  // namespace ipa::bench
