// Figure 10: CDF of update-sizes in LinkBench (gross data: header + body on
// 8KB pages). The paper: ~47-76% of updates change < 125 bytes gross.

#include <cstdio>

#include "bench/cdf_common.h"
#include "common/metrics.h"

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  using namespace ipa::bench;
  std::printf(
      "Figure 10: CDF of update-sizes in LinkBench (gross: header and body,\n"
      "8KB pages) [%%].\n\n");
  return PrintUpdateSizeCdf(Wl::kLinkbench, {0.20, 0.50, 0.75, 0.90},
                            /*eager=*/true, /*gross=*/true, 8192,
                            {.n = 2, .m = 100, .v = 14});
}
