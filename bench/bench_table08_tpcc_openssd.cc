// Table 8: TPC-C on the OpenSSD profile — traditional approach (no IPA,
// [0x0]) vs the [2x3] scheme in pSLC and odd-MLC modes.

#include <cstdio>

#include "bench/harness.h"
#include "common/metrics.h"

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  std::printf(
      "Table 8: TPC-C on OpenSSD: no IPA [0x0] vs [2x3] in pSLC and\n"
      "odd-MLC modes.\n\n");
  return ipa::bench::PrintOpenSsdTable(ipa::bench::Wl::kTpcc,
                                       {.n = 2, .m = 3, .v = 12});
}
