// Shared-nothing scale-up: aggregate throughput and write amplification of
// the partitioned engine at 1/2/4/8 workers on TPC-B and LinkBench
// (docs/SHARDING.md).
//
// Every worker owns a partition — its chips, FlashLane, WAL, buffer pool and
// indexes — and runs 1/N of the transaction stream; simulated time advances
// per worker between epoch barriers, so sync I/O waits of different workers
// overlap like independent hosts on one array. Total work (rows and
// transactions) is held constant across worker counts: the speedup column is
// the classic scale-up curve, gated in CI at the 1-vs-4 smoke arm.
//
// Output and metrics snapshots are bit-identical across runs and across
// sequential/threaded execution (--sequential switches the driver; simulated
// results do not change).
//
// Usage: bench_scaleup [--workers 1,2,4,8] [--min-speedup X] [--sequential]
//   --min-speedup fails the process (exit 1) when TPC-B's 4-worker speedup
//   falls short — CI's scale-up assertion.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/metrics.h"
#include "workload/linkbench.h"
#include "workload/tpcb.h"

namespace ipa::bench {
namespace {

struct ArmResult {
  uint32_t workers = 0;
  uint64_t commits = 0;
  uint64_t sim_us = 0;
  double tps = 0;
  double wa = 0;
  double ipa_share_pct = 0;
  uint64_t host_writes = 0;
};

std::unique_ptr<workload::Workload> MakePartWorkload(Wl w,
                                                     engine::Database* db,
                                                     workload::TablespaceMap ts,
                                                     double scale,
                                                     uint64_t seed) {
  if (w == Wl::kTpcb) {
    workload::TpcbConfig c;
    c.accounts_per_branch = static_cast<uint32_t>(60000 * scale);
    c.seed = seed;
    return std::make_unique<workload::Tpcb>(db, c, ts);
  }
  workload::LinkbenchConfig c;
  c.nodes = static_cast<uint64_t>(20000 * scale);
  c.seed = seed;
  return std::make_unique<workload::Linkbench>(db, c, ts);
}

Result<ArmResult> RunArm(Wl wl, uint32_t workers, bool threaded) {
  double scale = workload::BenchScale();
  double part_scale = scale / workers;  // total rows constant across arms

  // Sizing pass: one partition's footprint, times the partition count.
  auto sizing =
      MakePartWorkload(wl, nullptr, workload::SingleTablespace(0), part_scale, 1);
  uint64_t db_pages = sizing->EstimatedPages(4096) * workers;

  workload::ShardedTestbedConfig sc;
  sc.workers = workers;
  sc.threaded = threaded;
  sc.base.db_pages = db_pages;
  sc.base.scheme = wl == Wl::kTpcb
                       ? storage::Scheme{.n = 2, .m = 4, .v = 12}
                       : storage::Scheme{.n = 2, .m = 100, .v = 12};
  sc.base.buffer_fraction = 0.5;
  sc.base.record_update_sizes = true;
  // Group commit: batch up to 8 commits / 1ms per worker so the per-commit
  // log force (100us) amortizes — the satellite the WAL sharding pays for.
  sc.group_commit_ops = 8;
  sc.group_commit_window_us = 1000;
  sc.log_force_us = 100;
  IPA_ASSIGN_OR_RETURN(std::unique_ptr<workload::ShardedTestbed> bed,
                       MakeShardedTestbed(sc));

  // Per-partition workload instances: derived seeds, each confined to its
  // worker. Loads run on the workers too (they are partition-local work).
  std::vector<std::unique_ptr<workload::Workload>> wls;
  std::vector<Status> status(workers, Status::OK());
  for (uint32_t p = 0; p < workers; ++p) {
    wls.push_back(MakePartWorkload(wl, bed->parts[p].db.get(),
                                   workload::SingleTablespace(bed->parts[p].ts),
                                   part_scale, 42 + 7919 * p));
    workload::Workload* w = wls.back().get();
    Status* st = &status[p];
    bed->sharded->Submit(p, [w, st] { *st = w->Load(); });
  }
  bed->sharded->EpochBarrier();
  for (const Status& st : status) IPA_RETURN_NOT_OK(st);
  // Settle to a steady on-flash state, then measure from a clean slate.
  IPA_RETURN_NOT_OK(bed->sharded->Checkpoint());
  SimTime t0 = bed->sharded->EpochBarrier();
  for (uint32_t p = 0; p < workers; ++p) {
    bed->noftl->ResetStats(bed->parts[p].region);
    bed->parts[p].db->buffer_pool().ResetStats();
    bed->parts[p].db->buffer_pool().mutable_update_traces().clear();
    bed->parts[p].db->ResetTxnStats();
  }

  uint64_t total_txns = DefaultTxns(wl);
  uint64_t per_worker = total_txns / workers;
  uint32_t cpu = DefaultCpuUs(wl);
  for (uint32_t p = 0; p < workers; ++p) {
    workload::Workload* w = wls[p].get();
    engine::Database* db = bed->parts[p].db.get();
    Status* st = &status[p];
    bed->sharded->Submit(p, [w, db, st, per_worker, cpu] {
      for (uint64_t i = 0; i < per_worker; ++i) {
        auto r = w->RunTransaction();
        if (!r.ok()) {
          *st = r.status();
          return;
        }
        db->sim_clock().Advance(cpu);
      }
      *st = db->buffer_pool().FlushAll();
    });
  }
  SimTime t1 = bed->sharded->EpochBarrier();
  for (const Status& st : status) IPA_RETURN_NOT_OK(st);

  ArmResult out;
  out.workers = workers;
  out.sim_us = t1 - t0;
  uint64_t gross = 0, net = 0;
  for (uint32_t p = 0; p < workers; ++p) {
    const ftl::RegionStats& rs = bed->region_stats(p);
    out.commits += bed->parts[p].db->txn_stats().commits;
    out.host_writes += rs.HostWrites();
    gross += rs.host_page_writes * 4096 + rs.delta_bytes_written;
    for (const auto& [table, trace] :
         bed->parts[p].db->buffer_pool().update_traces()) {
      for (const auto& [v, c] : trace.gross.Points()) {
        net += static_cast<uint64_t>(v) * c;
      }
    }
    out.ipa_share_pct += rs.IpaSharePercent() / workers;
  }
  out.tps = out.sim_us == 0 ? 0.0
                            : static_cast<double>(out.commits) /
                                  (static_cast<double>(out.sim_us) / 1e6);
  out.wa = net == 0 ? 0.0
                    : static_cast<double>(gross) / static_cast<double>(net);
  return out;
}

int Main(int argc, char** argv) {
  std::vector<uint32_t> workers = {1, 2, 4, 8};
  double min_speedup = 0.0;
  bool threaded = true;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) != 0) return nullptr;
      if (arg.size() > n && arg[n] == '=') return arg.c_str() + n + 1;
      if (arg.size() == n && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--workers")) {
      workers.clear();
      for (const char* s = v; *s;) {
        workers.push_back(static_cast<uint32_t>(std::strtoul(s, nullptr, 10)));
        s = std::strchr(s, ',');
        if (!s) break;
        s++;
      }
    } else if (const char* v = value("--min-speedup")) {
      min_speedup = std::atof(v);
    } else if (arg == "--sequential") {
      threaded = false;
    }
  }

  WarnIfDebugBuild();
  std::printf(
      "Scale-up: shared-nothing partitioned engine on one 16-chip SLC\n"
      "emulator array; total rows and transactions held constant per\n"
      "workload while the worker count grows (docs/SHARDING.md).\n\n");

  double tpcb_speedup_at4 = 0.0;
  for (Wl wl : {Wl::kTpcb, Wl::kLinkbench}) {
    TablePrinter table({"workers", "commits", "sim s", "agg tps", "speedup",
                        "WA", "IPA %", "host writes"});
    double base_tps = 0.0;
    for (uint32_t w : workers) {
      auto r = RunArm(wl, w, threaded);
      if (!r.ok()) {
        std::fprintf(stderr, "bench_scaleup: %s w=%u: %s\n", WlName(wl), w,
                     r.status().ToString().c_str());
        return 1;
      }
      const ArmResult& a = r.value();
      if (base_tps == 0.0) base_tps = a.tps;
      double speedup = base_tps == 0.0 ? 0.0 : a.tps / base_tps;
      if (wl == Wl::kTpcb && w == 4) tpcb_speedup_at4 = speedup;
      table.AddRow({std::to_string(a.workers), std::to_string(a.commits),
                    Fmt(static_cast<double>(a.sim_us) / 1e6),
                    Fmt(a.tps, 0), Fmt(speedup) + "x", Fmt(a.wa),
                    Fmt(a.ipa_share_pct, 1), std::to_string(a.host_writes)});
      std::string prefix = std::string("scaleup.") +
                           (wl == Wl::kTpcb ? "tpcb" : "linkbench") + ".w" +
                           std::to_string(w);
      metrics::Gauge(prefix + ".tps").Set(static_cast<int64_t>(a.tps));
      metrics::Gauge(prefix + ".commits").Set(static_cast<int64_t>(a.commits));
      metrics::Gauge(prefix + ".sim_us").Set(static_cast<int64_t>(a.sim_us));
      metrics::Gauge(prefix + ".speedup_x100")
          .Set(static_cast<int64_t>(speedup * 100));
      metrics::Gauge(prefix + ".wa_x100").Set(static_cast<int64_t>(a.wa * 100));
    }
    std::printf("%s:\n", WlName(wl));
    table.Print();
    std::printf("\n");
  }

  if (min_speedup > 0.0 && tpcb_speedup_at4 < min_speedup) {
    std::fprintf(stderr,
                 "bench_scaleup: TPC-B speedup at 4 workers is %.2fx, "
                 "below the required %.2fx\n",
                 tpcb_speedup_at4, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Main(argc, argv);
}
