// Table 9: TPC-C on the flash emulator — [0x0] vs [2x3] with buffer pools
// from 10% to 90% of the DB size, eager eviction (Shore-MT defaults).
//
// The paper's observations reproduced here: relative throughput gains shrink
// as the buffer grows, but the write-amplification/longevity benefits
// (GC migrations and erases per host write) persist even at 90%.

#include <cstdio>

#include "bench/harness.h"
#include "common/metrics.h"

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  using namespace ipa::bench;
  std::printf(
      "Table 9: TPC-C, no IPA [0x0] vs [2x3], buffers 10-90%%, eager\n"
      "eviction.\n\n");
  ipa::storage::Scheme s23{.n = 2, .m = 3, .v = 12};
  return PrintBufferSweepTable(Wl::kTpcc,
                               {{0.10, {s23}},
                                {0.20, {s23}},
                                {0.50, {s23}},
                                {0.75, {s23}},
                                {0.90, {s23}}},
                               /*eager=*/true);
}
