// Table 5: LinkBench — delta-area space overhead and the reduction of the
// DBMS write amplification (x times) for NxM schemes (N in 1..3, M in
// {100,125}) across buffer sizes 20% - 90%.

#include <cstdio>
#include <iterator>

#include "bench/harness.h"
#include "bench/parallel_runner.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

int Run() {
  std::printf(
      "Table 5: space overhead and reduction of DBMS write amplification in\n"
      "LinkBench (8KB pages).\n\n");

  const std::pair<uint8_t, uint8_t> schemes[] = {
      {1, 100}, {1, 125}, {2, 100}, {2, 125}, {3, 100}, {3, 125}};
  const double buffers[] = {0.20, 0.50, 0.75, 0.90};

  std::vector<std::string> header{"Row"};
  for (auto [n, m] : schemes) {
    header.push_back(std::to_string(n) + "x" + std::to_string(m));
  }
  TablePrinter table(header);

  // Space overhead row (analytic).
  std::vector<std::string> space{"Space overhead [%]"};
  for (auto [n, m] : schemes) {
    storage::Scheme s{.n = n, .m = m, .v = 14};
    space.push_back(Fmt(100.0 * s.SpaceOverhead(8192), 2));
  }
  table.AddRow(space);

  // Per-buffer WA-reduction rows: one parallel batch of baseline + schemes
  // per buffer point.
  std::vector<RunConfig> configs;
  for (double buf : buffers) {
    RunConfig base;
    base.workload = Wl::kLinkbench;
    base.page_size = 8192;
    base.buffer_fraction = buf;
    base.record_update_sizes = true;
    base.txns = DefaultTxns(Wl::kLinkbench);
    configs.push_back(base);
    for (auto [n, m] : schemes) {
      RunConfig rc = base;
      rc.scheme = {.n = n, .m = m, .v = 14};
      configs.push_back(rc);
    }
  }
  auto results = RunMany(configs);

  size_t idx = 0;
  for (double buf : buffers) {
    if (!results[idx].ok()) {
      std::fprintf(stderr, "baseline %.0f%%: %s\n", 100 * buf,
                   results[idx].status().ToString().c_str());
      return 1;
    }
    double wa0 = results[idx++].value().WriteAmplification();

    std::vector<std::string> row{"WA reduction, buffer " +
                                 Fmt(100 * buf, 0) + "% [x]"};
    for (size_t k = 0; k < std::size(schemes); k++) {
      const auto& r = results[idx++];
      if (!r.ok()) {
        row.push_back("err");
        continue;
      }
      double wan = r.value().WriteAmplification();
      row.push_back(wan > 0 ? Fmt(wa0 / wan, 2) : "n/a");
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nPaper: 1.35x - 2.65x, increasing with N and M, decreasing\n"
              "with buffer size.\n");
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
