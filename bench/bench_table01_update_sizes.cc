// Table 1: update-size percentiles in TPC-B, TPC-C (net data) and LinkBench
// (gross data) at 75% buffer with the eager eviction strategy.
//
// For each threshold of changed bytes the table reports the percentile rank:
// the share of all update I/Os (page flushes) changing at most that many
// bytes. The paper's headline claim — 70%+ of updates change < 10 bytes in
// TPC workloads — is reproduced by the first rows.

#include <cstdio>

#include "bench/harness.h"
#include "bench/parallel_runner.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

SampleDistribution Aggregate(const RunResult& r, bool gross) {
  SampleDistribution agg;
  for (const auto& [table, trace] : r.traces) {
    agg.Merge(gross ? trace.gross : trace.net);
  }
  return agg;
}

int Run() {
  std::printf(
      "Table 1: Update-sizes in TPC-B/-C and LinkBench "
      "(Buffer 75%%, eager eviction strategy).\n"
      "Cells: percentile rank of update I/Os changing <= N bytes "
      "(1=net data, 2=gross data).\n\n");

  RunConfig tpcb;
  tpcb.workload = Wl::kTpcb;
  tpcb.scheme = {.n = 2, .m = 4, .v = 12};
  tpcb.buffer_fraction = 0.75;
  tpcb.record_update_sizes = true;
  tpcb.txns = DefaultTxns(Wl::kTpcb);

  RunConfig tpcc = tpcb;
  tpcc.workload = Wl::kTpcc;
  tpcc.scheme = {.n = 2, .m = 3, .v = 12};
  tpcc.txns = DefaultTxns(Wl::kTpcc);

  RunConfig lb = tpcb;
  lb.workload = Wl::kLinkbench;
  lb.page_size = 8192;
  lb.scheme = {.n = 2, .m = 100, .v = 14};
  lb.txns = DefaultTxns(Wl::kLinkbench);

  auto results = RunMany({tpcb, tpcc, lb});
  for (const auto& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
  }

  SampleDistribution db = Aggregate(results[0].value(), /*gross=*/false);
  SampleDistribution dc = Aggregate(results[1].value(), /*gross=*/false);
  SampleDistribution dl = Aggregate(results[2].value(), /*gross=*/true);

  TablePrinter table({"Number of changed bytes", "TPC-B(1)", "TPC-C(1)",
                      "LinkBench(2)"});
  for (uint32_t bytes : {3u, 7u, 20u, 100u, 125u}) {
    table.AddRow({"<= " + std::to_string(bytes),
                  Fmt(db.PercentileOf(bytes), 0) + "-th",
                  Fmt(dc.PercentileOf(bytes), 0) + "-th",
                  Fmt(dl.PercentileOf(bytes), 0) + "-th"});
  }
  table.Print();
  std::printf(
      "\nSamples: TPC-B %llu, TPC-C %llu, LinkBench %llu flushed-page diffs.\n",
      static_cast<unsigned long long>(db.total()),
      static_cast<unsigned long long>(dc.total()),
      static_cast<unsigned long long>(dl.total()));
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
