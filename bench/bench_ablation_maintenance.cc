// Ablation: the maintenance extensions — Correct-and-Refresh scrubbing
// (Section 2.3) and static wear leveling — exercised at the FTL level.
//
// (a) Scrubbing: pages age (retention bit leakage on every read); without
//     scrubbing, errors accumulate until segments become uncorrectable;
//     periodic Correct-and-Refresh keeps stored images clean.
// (b) Wear leveling: skewed update churn concentrates erases on few blocks;
//     static WL swaps cold data onto worn blocks, shrinking the erase-count
//     spread that determines device lifetime.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/harness.h"
#include "ftl/noftl.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

flash::Geometry Geo() {
  flash::Geometry g;
  g.channels = 2;
  g.chips_per_channel = 2;
  g.blocks_per_chip = 24;
  g.pages_per_block = 32;
  g.page_size = 2048;
  g.oob_size = 64;
  return g;
}

void RunScrubArm(bool scrub, uint64_t* uncorrectable, uint64_t* refreshes) {
  flash::ErrorModel e;
  e.retention_flip_per_read = 0.02;
  e.seed = 99;
  flash::FlashArray dev(Geo(), flash::SlcTiming(), e);
  ftl::NoFtl ftl(&dev);
  ftl::RegionConfig rc;
  rc.name = "age";
  rc.logical_pages = 256;
  rc.ipa_mode = ftl::IpaMode::kSlc;
  rc.delta_area_offset = 2048 - 96;
  rc.manage_ecc = true;
  auto r = ftl.CreateRegion(rc);
  std::vector<uint8_t> page(2048, 0x55);
  std::memset(page.data() + rc.delta_area_offset, 0xFF, 96);
  for (ftl::Lba lba = 0; lba < 128; lba++) {
    (void)ftl.WritePage(r.value(), lba, page.data());
  }
  std::vector<uint8_t> buf(2048);
  for (int round = 0; round < 60; round++) {
    for (ftl::Lba lba = 0; lba < 128; lba++) {
      (void)ftl.ReadPage(r.value(), lba, buf.data());
    }
    if (scrub && round % 5 == 4) {
      (void)ftl.ScrubRegion(r.value());
    }
  }
  *uncorrectable = ftl.region_stats(r.value()).ecc_uncorrectable;
  *refreshes = ftl.region_stats(r.value()).scrub_refreshes;
}

void RunWearArm(bool wl, uint32_t* spread, uint32_t* max_erase) {
  flash::FlashArray dev(Geo(), flash::SlcTiming());
  ftl::NoFtl ftl(&dev);
  ftl::RegionConfig rc;
  rc.name = "wear";
  rc.logical_pages = 512;
  auto r = ftl.CreateRegion(rc);
  std::vector<uint8_t> page(2048, 0xAB);
  // Cold majority...
  for (ftl::Lba lba = 64; lba < 512; lba++) {
    (void)ftl.WritePage(r.value(), lba, page.data());
  }
  // ...hot minority churned hard.
  for (int round = 0; round < 400; round++) {
    for (ftl::Lba lba = 0; lba < 16; lba++) {
      page[0] = static_cast<uint8_t>(round);
      (void)ftl.WritePage(r.value(), lba, page.data());
    }
    if (wl && round % 20 == 19) {
      (void)ftl.WearLevelRegion(r.value(), /*max_spread=*/4);
    }
  }
  *spread = ftl.EraseSpread(r.value());
  *max_erase = dev.MaxEraseCount();
}

int Run() {
  std::printf("Ablation: maintenance extensions.\n\n");

  uint64_t unc_off, unc_on, ref_off, ref_on;
  RunScrubArm(false, &unc_off, &ref_off);
  RunScrubArm(true, &unc_on, &ref_on);
  TablePrinter scrub({"Correct-and-Refresh", "uncorrectable reads",
                      "scrub refreshes"});
  scrub.AddRow({"off", FormatThousands(unc_off), "0"});
  scrub.AddRow({"every 5 rounds", FormatThousands(unc_on),
                FormatThousands(ref_on)});
  scrub.Print();
  std::printf("\n");

  uint32_t spread_off, spread_on, max_off, max_on;
  RunWearArm(false, &spread_off, &max_off);
  RunWearArm(true, &spread_on, &max_on);
  TablePrinter wear({"Static wear leveling", "erase spread (max-min)",
                     "max erase count"});
  wear.AddRow({"off", std::to_string(spread_off), std::to_string(max_off)});
  wear.AddRow({"on", std::to_string(spread_on), std::to_string(max_on)});
  wear.Print();
  std::printf(
      "\nExpected shape: scrubbing keeps accumulated retention errors from\n"
      "crossing the ECC correction limit; wear leveling shrinks the erase\n"
      "spread so no block wears out far ahead of the rest.\n");
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
