// Table 12 (repo extension, not in the paper): the NoFTL/IPA stack vs a
// conventional black-box page-mapping FTL on identical workloads.
//
// The paper argues (Sections 2, 5) that out-of-place updates behind a cooked
// device force every small update through a full page program plus later GC
// migration, while NoFTL regions with IPA absorb most of them as in-place
// appends. This table quantifies that gap: five arms per workload —
//
//   NoFTL [0x0]       raw-flash region, IPA off (out-of-place page writes);
//   NoFTL+IPA [NxM]   raw-flash region with the paper's delta scheme;
//   Page-FTL greedy   conventional page-mapping FTL, greedy victim choice;
//   Page-FTL c-b      same FTL with cost-benefit (age-weighted) victims;
//   StreamFTL         stream-aware page-mapping FTL (per-stream frontiers,
//                     warm/cold cost-benefit GC — docs/FTL_BACKENDS.md);
//
// and reports device write amplification (every flash page program, host or
// GC, over net changed bytes), GC work, latency CDF points and throughput.
// The run self-checks the paper's headline claim: the page-FTL arms must show
// strictly higher device WA than NoFTL+IPA on these update-heavy mixes — and
// the repo extension's claim that stream segregation pays: StreamFTL's device
// WA must be strictly lower than Page-FTL c-b's on the TPC-B mix.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/parallel_runner.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

struct Arm {
  const char* name;   ///< table column header
  const char* slug;   ///< metric-name component
  workload::Backend backend;
  bool ipa;           ///< apply the workload's [NxM] scheme (NoFtl only)
};

struct WlSpec {
  const char* name;
  const char* slug;
  Wl workload;
  storage::Scheme scheme;
  uint32_t page_size;
};

/// Device-level write amplification: every flash page program (host
/// out-of-place writes + GC migrations) plus appended delta bytes, over the
/// net bytes the workload actually changed.
double DeviceWa(const RunResult& r, uint32_t page_size) {
  if (r.net_changed_bytes == 0) return 0.0;
  uint64_t gross = (r.host_page_writes + r.gc_migrations) *
                       static_cast<uint64_t>(page_size) +
                   r.delta_bytes_written;
  return static_cast<double>(gross) / static_cast<double>(r.net_changed_bytes);
}

int Run() {
  std::printf(
      "Table 12: NoFTL/IPA vs cooked-device FTLs (greedy and cost-benefit\n"
      "page mapping, plus the stream-aware StreamFTL) on update-heavy\n"
      "workloads. Device WA counts every flash page program (host + GC\n"
      "migration) plus delta bytes.\n\n");

  const Arm arms[] = {
      {"NoFTL 0x0", "noftl", workload::Backend::kNoFtl, false},
      {"NoFTL+IPA", "noftl_ipa", workload::Backend::kNoFtl, true},
      {"PageFTL greedy", "pageftl_greedy", workload::Backend::kPageFtlGreedy,
       false},
      {"PageFTL c-b", "pageftl_cb", workload::Backend::kPageFtlCostBenefit,
       false},
      {"StreamFTL", "streamftl", workload::Backend::kStreamFtl, false},
  };
  const WlSpec wls[] = {
      {"TPC-B [2x4]", "tpcb", Wl::kTpcb, {.n = 2, .m = 4, .v = 12}, 4096},
      {"LinkBench [2x125]", "linkbench", Wl::kLinkbench,
       {.n = 2, .m = 125, .v = 14}, 8192},
  };

  std::vector<RunConfig> configs;
  for (const WlSpec& wl : wls) {
    for (const Arm& arm : arms) {
      RunConfig rc;
      rc.workload = wl.workload;
      rc.backend = arm.backend;
      rc.scheme = arm.ipa ? wl.scheme : storage::Scheme{};
      rc.page_size = wl.page_size;
      rc.buffer_fraction = 0.30;  // I/O-bound: plenty of dirty evictions
      rc.record_update_sizes = true;
      rc.txns = DefaultTxns(wl.workload);
      configs.push_back(rc);
    }
  }
  auto results = RunMany(configs);

  bool self_check_ok = true;
  size_t idx = 0;
  for (const WlSpec& wl : wls) {
    std::vector<RunResult> res;
    for (const Arm& arm : arms) {
      if (!results[idx].ok()) {
        std::fprintf(stderr, "%s / %s: %s\n", wl.name, arm.name,
                     results[idx].status().ToString().c_str());
        return 1;
      }
      res.push_back(std::move(results[idx++]).value());
    }

    std::printf("%s (page size %u):\n", wl.name, wl.page_size);
    std::vector<std::string> header{"Metric"};
    for (const Arm& arm : arms) header.push_back(arm.name);
    TablePrinter t(header);
    auto add = [&](const char* name, auto get, int dec = 2,
                   bool thousands = false) {
      std::vector<std::string> row{name};
      for (const RunResult& r : res) {
        double v = get(r);
        row.push_back(thousands ? FormatThousands(static_cast<uint64_t>(v))
                                : Fmt(v, dec));
      }
      t.AddRow(row);
    };
    add("Host Writes (page+delta)",
        [](const RunResult& r) { return double(r.host_writes); }, 0, true);
    add("IPA Share [%]",
        [](const RunResult& r) { return r.ipa_share_pct; }, 0);
    add("Flash Pages Programmed",
        [](const RunResult& r) {
          return double(r.host_page_writes + r.gc_migrations);
        },
        0, true);
    add("GC Page Migrations",
        [](const RunResult& r) { return double(r.gc_migrations); }, 0, true);
    add("GC Erases", [](const RunResult& r) { return double(r.gc_erases); },
        0, true);
    add("Device Write Amplification",
        [&](const RunResult& r) { return DeviceWa(r, wl.page_size); });
    add("Read p50/p95/p99 [ms]", [](const RunResult& r) { return r.read_p50_ms; },
        3);
    add("  p95", [](const RunResult& r) { return r.read_p95_ms; }, 3);
    add("  p99", [](const RunResult& r) { return r.read_p99_ms; }, 3);
    add("Write p50/p95/p99 [ms]",
        [](const RunResult& r) { return r.write_p50_ms; }, 3);
    add("  p95", [](const RunResult& r) { return r.write_p95_ms; }, 3);
    add("  p99", [](const RunResult& r) { return r.write_p99_ms; }, 3);
    add("Transactional Throughput",
        [](const RunResult& r) { return r.throughput_tps; }, 0);
    t.Print();
    std::printf("\n");

    // Perf-gate snapshot: the comparison itself is the regression surface.
    for (size_t a = 0; a < res.size(); a++) {
      std::string prefix =
          std::string("table12.") + wl.slug + "." + arms[a].slug;
      metrics::Gauge(prefix + ".wa_x1000")
          .Set(static_cast<int64_t>(DeviceWa(res[a], wl.page_size) * 1000.0));
      metrics::Gauge(prefix + ".host_writes")
          .Set(static_cast<int64_t>(res[a].host_writes));
      metrics::Gauge(prefix + ".gc_erases")
          .Set(static_cast<int64_t>(res[a].gc_erases));
    }

    // Self-check: a cooked page-mapping device must amplify update-heavy
    // writes more than the NoFTL+IPA region (that asymmetry is the table's
    // whole point — losing it silently would mean a modeling regression).
    double wa_ipa = DeviceWa(res[1], wl.page_size);
    for (size_t a = 2; a < res.size(); a++) {
      double wa = DeviceWa(res[a], wl.page_size);
      if (wa <= wa_ipa) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: %s %s device WA %.3f <= NoFTL+IPA "
                     "%.3f\n",
                     wl.name, arms[a].name, wa, wa_ipa);
        self_check_ok = false;
      }
    }

    // Self-check: stream segregation must pay on TPC-B — WAL-less heavy
    // update traffic separated by object class gives GC purer victims, so
    // StreamFTL's device WA must come in strictly below PageFTL c-b's.
    if (std::string(wl.slug) == "tpcb") {
      double wa_cb = DeviceWa(res[3], wl.page_size);
      double wa_stream = DeviceWa(res[4], wl.page_size);
      // At degenerate scales (IPA_SCALE small enough that GC never fires)
      // every cooked arm programs the same pages and the WAs tie; stream
      // segregation only has something to improve once GC migrates pages.
      bool gc_ran = res[3].gc_migrations > 0 || res[4].gc_migrations > 0;
      if (gc_ran ? wa_stream >= wa_cb : wa_stream > wa_cb) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: %s StreamFTL device WA %.3f >= "
                     "PageFTL c-b %.3f\n",
                     wl.name, wa_stream, wa_cb);
        self_check_ok = false;
      }
    }
  }

  if (!self_check_ok) return 1;
  std::printf(
      "Self-check passed: page-FTL device WA exceeds NoFTL+IPA on every\n"
      "update-heavy mix above, and StreamFTL undercuts PageFTL c-b on TPC-B.\n");
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
