// Ablation: the V knob (tracked metadata bytes per delta-record).
//
// V too small: page-metadata changes (PageLSN, slot table) overflow the
// record and force out-of-place writes. V too large: delta-area space is
// wasted. The paper reports V <= 12 suffices for Shore-MT under OLTP; this
// sweep shows where the cliff sits for our engine.

#include <cstdio>

#include "bench/harness.h"
#include "bench/parallel_runner.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

int Run() {
  std::printf("Ablation: metadata budget V under TPC-C [2x3] (20%% buffer).\n\n");
  std::vector<RunConfig> configs;
  for (uint8_t v : {2, 4, 8, 12, 20, 30}) {
    RunConfig rc;
    rc.workload = Wl::kTpcc;
    rc.buffer_fraction = 0.20;
    rc.scheme = {.n = 2, .m = 3, .v = v};
    rc.txns = DefaultTxns(Wl::kTpcc);
    configs.push_back(rc);
  }
  auto results = RunMany(configs);

  TablePrinter t({"V", "IPA share [%]", "space overhead [%]",
                  "erases/host-write", "record bytes"});
  for (size_t i = 0; i < results.size(); i++) {
    const auto& r = results[i];
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    const storage::Scheme& s = configs[i].scheme;
    t.AddRow({std::to_string(s.v), Fmt(r.value().ipa_share_pct, 1),
              Fmt(r.value().space_overhead_pct, 2),
              Fmt(r.value().erases_per_host_write, 4),
              std::to_string(s.RecordBytes())});
  }
  t.Print();
  std::printf(
      "\nExpected shape: IPA share collapses for V below the engine's\n"
      "typical metadata footprint (PageLSN byte + slot-table bytes),\n"
      "plateaus by V~12 (the paper's choice), then only costs space.\n");
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
