#include "bench/harness.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>

#include "bench/parallel_runner.h"
#include "workload/linkbench.h"
#include "workload/tatp.h"
#include "workload/tpcb.h"
#include "workload/tpcc.h"
#include "workload/tpch_lite.h"

namespace ipa::bench {

const char* WlName(Wl w) {
  switch (w) {
    case Wl::kTpcb: return "TPC-B";
    case Wl::kTpcc: return "TPC-C";
    case Wl::kTatp: return "TATP";
    case Wl::kLinkbench: return "LinkBench";
    case Wl::kScanMix: return "ScanMix";
  }
  return "?";
}

uint64_t DefaultTxns(Wl w) {
  double scale = workload::BenchScale();
  uint64_t base;
  switch (w) {
    case Wl::kTpcb: base = 20000; break;
    case Wl::kTpcc: base = 6000; break;
    case Wl::kTatp: base = 30000; break;
    case Wl::kLinkbench: base = 12000; break;
    case Wl::kScanMix: base = 8000; break;
    default: base = 10000; break;
  }
  return static_cast<uint64_t>(static_cast<double>(base) * scale);
}

uint32_t DefaultCpuUs(Wl w) {
  switch (w) {
    case Wl::kTpcb: return 150;
    case Wl::kTpcc: return 400;  // NewOrder touches ~10 items
    case Wl::kTatp: return 40;
    case Wl::kLinkbench: return 120;
    case Wl::kScanMix: return 250;  // analytics scans dominate CPU
  }
  return 100;
}

namespace {

std::unique_ptr<workload::Workload> MakeWorkload(
    Wl w, engine::Database* db, const workload::TablespaceMap& ts_map,
    double scale, uint64_t seed) {
  switch (w) {
    case Wl::kTpcb: {
      workload::TpcbConfig c;
      c.accounts_per_branch =
          static_cast<uint32_t>(60000 * scale);
      c.seed = seed;
      return std::make_unique<workload::Tpcb>(db, c, ts_map);
    }
    case Wl::kTpcc: {
      workload::TpccConfig c;
      c.items = static_cast<uint32_t>(8000 * scale);
      c.customers_per_district = static_cast<uint32_t>(240 * scale);
      c.seed = seed;
      return std::make_unique<workload::Tpcc>(db, c, ts_map);
    }
    case Wl::kTatp: {
      workload::TatpConfig c;
      c.subscribers = static_cast<uint32_t>(30000 * scale);
      c.seed = seed;
      return std::make_unique<workload::Tatp>(db, c, ts_map);
    }
    case Wl::kLinkbench: {
      workload::LinkbenchConfig c;
      c.nodes = static_cast<uint64_t>(20000 * scale);
      c.seed = seed;
      return std::make_unique<workload::Linkbench>(db, c, ts_map);
    }
    case Wl::kScanMix: {
      workload::TpchLiteConfig c;
      c.rows = static_cast<uint64_t>(40000 * scale);
      c.seed = static_cast<uint32_t>(seed);
      return std::make_unique<workload::TpchLite>(db, c, ts_map);
    }
  }
  return nullptr;
}

}  // namespace

void WarnIfDebugBuild() {
  static std::once_flag once;
  std::call_once(once, [] {
#ifndef NDEBUG
    std::fprintf(stderr,
                 "*** WARNING: this bench binary was built without "
                 "optimization (Debug build).\n"
                 "*** Wall-clock numbers are meaningless; configure with "
                 "-DCMAKE_BUILD_TYPE=Release.\n");
#endif
  });
}

Result<RunResult> RunWorkload(const RunConfig& config) {
  WarnIfDebugBuild();
  // The dataset multiplier (RunConfig field x IPA_DATASET env) grows the
  // heap only: workload row counts scale by it, the buffer pool does not —
  // buffer_fraction is divided back down so buffer_pages stays what the
  // unmultiplied dataset would get. dataset > 1 therefore puts the run in
  // the larger-than-RAM regime.
  double dataset = config.dataset_multiplier * workload::DatasetScale();
  if (dataset < 1.0) dataset = 1.0;
  double scale = config.scale * workload::BenchScale();
  double data_scale = scale * dataset;

  // Sizing pass: a throwaway workload instance estimates the DB footprint.
  auto sizing =
      MakeWorkload(config.workload, nullptr, workload::SingleTablespace(0),
                   data_scale, config.seed);
  uint64_t db_pages = sizing->EstimatedPages(config.page_size);

  workload::TestbedConfig tc;
  tc.profile = config.profile;
  tc.backend = config.backend;
  tc.page_size = config.page_size;
  tc.scheme = config.scheme;
  tc.db_pages = db_pages;
  tc.buffer_fraction = config.buffer_fraction / dataset;
  tc.record_update_sizes = config.record_update_sizes;
  tc.record_io_trace = config.record_io_trace;
  tc.over_provisioning = config.over_provisioning;
  if (!config.eager) {
    tc.dirty_flush_threshold = 0.75;
    tc.log_reclaim_threshold = 0.98;
  }
  // TPC-C grows its ORDER/ORDER_LINE/HISTORY tables throughout the run;
  // fixed-interval measurements need generous append headroom.
  if (config.workload == Wl::kTpcc) tc.growth_headroom = 5.0;
  IPA_ASSIGN_OR_RETURN(std::unique_ptr<workload::Testbed> bed, MakeTestbed(tc));

  auto wl = MakeWorkload(config.workload, bed->db.get(), bed->ts_map(),
                         data_scale, config.seed);
  IPA_RETURN_NOT_OK(wl->Load());
  // Settle: push the loaded database to flash so the measurement phase
  // starts from a steady on-flash state.
  IPA_RETURN_NOT_OK(bed->db->Checkpoint());

  // Reset all statistics for the measurement phase.
  bed->ResetBackendStats();
  bed->db->buffer_pool().ResetStats();
  bed->db->buffer_pool().mutable_update_traces().clear();
  bed->db->ResetTxnStats();
  bed->db->ClearIoTrace();
  SimTime t0 = bed->clock().Now();

  uint32_t cpu = config.cpu_us_per_txn == UINT32_MAX
                     ? DefaultCpuUs(config.workload)
                     : config.cpu_us_per_txn;
  if (config.sim_time_us > 0) {
    SimTime deadline = t0 + config.sim_time_us;
    uint64_t cap = config.txns * 50;
    for (uint64_t i = 0; i < cap && bed->clock().Now() < deadline; i++) {
      auto r = wl->RunTransaction();
      IPA_RETURN_NOT_OK(r.status());
      bed->clock().Advance(cpu);
    }
  } else {
    for (uint64_t i = 0; i < config.txns; i++) {
      auto r = wl->RunTransaction();
      IPA_RETURN_NOT_OK(r.status());
      bed->clock().Advance(cpu);
    }
  }
  // Drain dirty state so flush-path counters reflect the whole phase.
  IPA_RETURN_NOT_OK(bed->db->buffer_pool().FlushAll());

  SimTime t1 = bed->clock().Now();
  const ftl::RegionStats& rs = bed->backend_stats();
  const engine::BufferStats& bs = bed->db->buffer_pool().stats();

  RunResult out;
  out.host_reads = rs.host_reads;
  out.host_page_writes = rs.host_page_writes;
  out.host_delta_writes = rs.host_delta_writes;
  out.host_writes = rs.HostWrites();
  out.ipa_share_pct = rs.IpaSharePercent();
  out.delta_bytes_written = rs.delta_bytes_written;
  out.ipa_fallbacks = bs.ipa_fallbacks;
  out.gc_migrations = rs.gc_page_migrations;
  out.gc_erases = rs.gc_erases;
  out.migrations_per_host_write = rs.MigrationsPerHostWrite();
  out.erases_per_host_write = rs.ErasesPerHostWrite();
  out.read_latency_ms = rs.read_latency.MeanMillis();
  out.write_latency_ms = rs.write_latency.MeanMillis();
  out.read_p50_ms = rs.read_latency.PercentileMicros(50) / 1000.0;
  out.read_p95_ms = rs.read_latency.PercentileMicros(95) / 1000.0;
  out.read_p99_ms = rs.read_latency.PercentileMicros(99) / 1000.0;
  out.write_p50_ms = rs.write_latency.PercentileMicros(50) / 1000.0;
  out.write_p95_ms = rs.write_latency.PercentileMicros(95) / 1000.0;
  out.write_p99_ms = rs.write_latency.PercentileMicros(99) / 1000.0;
  out.txn_latency_ms = bed->db->txn_stats().txn_latency.MeanMillis();
  out.commits = bed->db->txn_stats().commits;
  out.aborts = bed->db->txn_stats().aborts;
  out.sim_us = t1 - t0;
  out.throughput_tps = out.sim_us == 0
                           ? 0.0
                           : static_cast<double>(out.commits) /
                                 (static_cast<double>(out.sim_us) / 1e6);

  out.gross_written_bytes =
      rs.host_page_writes * static_cast<uint64_t>(config.page_size) +
      rs.delta_bytes_written;
  if (config.record_update_sizes) {
    for (const auto& [table, trace] : bed->db->buffer_pool().update_traces()) {
      uint64_t sum = 0;
      for (const auto& [v, c] : trace.gross.Points()) {
        sum += static_cast<uint64_t>(v) * c;
      }
      out.net_changed_bytes += sum;
      out.traces[table] = trace;
      out.traces_by_name[bed->db->table_name(table)] = trace;
    }
  }
  if (config.record_io_trace) out.io_trace = bed->db->io_trace();
  out.space_overhead_pct = 100.0 * config.scheme.SpaceOverhead(config.page_size);
  return out;
}

// ---------------------------------------------------------------------------

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> width(headers_.size());
  for (size_t i = 0; i < headers_.size(); i++) width[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < width.size(); i++) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t i = 0; i < width.size(); i++) {
      const std::string& cell = i < row.size() ? row[i] : "";
      std::printf(" %-*s |", static_cast<int>(width[i]), cell.c_str());
    }
    std::printf("\n");
  };
  auto print_sep = [&] {
    std::printf("+");
    for (size_t i = 0; i < width.size(); i++) {
      for (size_t k = 0; k < width[i] + 2; k++) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string Pct(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f", decimals, v);
  return buf;
}

namespace {

std::string SchemeName(const storage::Scheme& s) {
  return std::to_string(s.n) + "x" + std::to_string(s.m);
}

std::string OopVsIpa(const RunResult& r) {
  return Fmt(100.0 - r.ipa_share_pct, 0) + "/" + Fmt(r.ipa_share_pct, 0);
}

}  // namespace

int PrintOpenSsdTable(Wl workload, storage::Scheme scheme) {
  RunConfig base;
  base.workload = workload;
  base.profile = workload::Profile::kOpenSsdNoIpa;
  base.buffer_fraction = 0.05;  // the board host had a ~1.5% DB buffer
  base.txns = DefaultTxns(workload);
  // Fixed measurement interval (simulated): faster configurations execute
  // more transactions and thus more host I/O, as in the paper's runs.
  base.sim_time_us = static_cast<uint64_t>(20e6 * workload::BenchScale());
  RunConfig pslc = base;
  pslc.profile = workload::Profile::kOpenSsdPSlc;
  pslc.scheme = scheme;
  RunConfig odd = base;
  odd.profile = workload::Profile::kOpenSsdOddMlc;
  odd.scheme = scheme;
  auto results = RunMany({base, pslc, odd});
  const char* arm_names[] = {"baseline", "pSLC", "odd-MLC"};
  for (size_t i = 0; i < results.size(); i++) {
    if (!results[i].ok()) {
      std::fprintf(stderr, "%s: %s\n", arm_names[i],
                   results[i].status().ToString().c_str());
      return 1;
    }
  }
  const RunResult& b = results[0].value();
  const RunResult& p = results[1].value();
  const RunResult& o = results[2].value();

  std::string nm = SchemeName(scheme);
  TablePrinter t({"Metric", "0x0 Absolute", nm + " Abs pSLC",
                  nm + " Rel pSLC [%]", nm + " Abs odd-MLC",
                  nm + " Rel odd-MLC [%]"});
  t.AddRow({"Out-of-Place Writes vs IPAs", "", OopVsIpa(p), "", OopVsIpa(o), ""});
  auto add = [&](const char* name, auto get, int dec = 0, bool thousands = true) {
    double vb = get(b), vp = get(p), vo = get(o);
    auto render = [&](double v) {
      return thousands ? FormatThousands(static_cast<uint64_t>(v)) : Fmt(v, dec);
    };
    t.AddRow({name, render(vb), render(vp),
              Pct(RelPercent(vb, vp)), render(vo), Pct(RelPercent(vb, vo))});
  };
  add("Host Reads", [](const RunResult& r) { return double(r.host_reads); });
  add("Host Writes", [](const RunResult& r) { return double(r.host_writes); });
  add("GC Page Migrations",
      [](const RunResult& r) { return double(r.gc_migrations); });
  add("GC Erases", [](const RunResult& r) { return double(r.gc_erases); });
  add("Page Migrations per Host Write",
      [](const RunResult& r) { return r.migrations_per_host_write; }, 4, false);
  add("GC Erases per Host Write",
      [](const RunResult& r) { return r.erases_per_host_write; }, 4, false);
  add("Transactional Throughput",
      [](const RunResult& r) { return r.throughput_tps; }, 0, false);
  t.Print();
  return 0;
}

int PrintBufferSweepTable(Wl workload, const std::vector<SweepPoint>& points,
                          bool eager) {
  // Column layout: per buffer point, one absolute column + one relative
  // column per scheme.
  std::vector<std::string> header{"Metric"};
  for (const SweepPoint& pt : points) {
    std::string buf = Fmt(100 * pt.buffer_fraction, 0) + "%";
    header.push_back("B" + buf + " 0x0 Abs");
    for (const auto& s : pt.schemes) {
      header.push_back("B" + buf + " " + SchemeName(s) + " Rel[%]");
    }
  }
  TablePrinter t(header);

  // Collect the whole sweep (baseline + every scheme per buffer point) as
  // one batch of independent configs, run it on the pool, then slice the
  // ordered results back into cells.
  std::vector<RunConfig> configs;
  for (const SweepPoint& pt : points) {
    RunConfig rc;
    rc.workload = workload;
    rc.buffer_fraction = pt.buffer_fraction;
    rc.eager = eager;
    rc.txns = DefaultTxns(workload);
    rc.sim_time_us = static_cast<uint64_t>(10e6 * workload::BenchScale());
    configs.push_back(rc);
    for (const auto& s : pt.schemes) {
      RunConfig rs = rc;
      rs.scheme = s;
      configs.push_back(rs);
    }
  }
  auto results = RunMany(configs);

  struct Cell {
    RunResult base;
    std::vector<RunResult> schemes;
  };
  std::vector<Cell> cells;
  size_t idx = 0;
  for (const SweepPoint& pt : points) {
    if (!results[idx].ok()) {
      std::fprintf(stderr, "baseline %.0f%%: %s\n", 100 * pt.buffer_fraction,
                   results[idx].status().ToString().c_str());
      return 1;
    }
    Cell cell;
    cell.base = std::move(results[idx++]).value();
    for (size_t k = 0; k < pt.schemes.size(); k++) {
      if (!results[idx].ok()) {
        std::fprintf(stderr, "scheme: %s\n",
                     results[idx].status().ToString().c_str());
        return 1;
      }
      cell.schemes.push_back(std::move(results[idx++]).value());
    }
    cells.push_back(std::move(cell));
  }

  {
    std::vector<std::string> row{"Out-of-Place Writes vs IPAs"};
    for (const Cell& c : cells) {
      row.push_back("");
      for (const RunResult& r : c.schemes) row.push_back(OopVsIpa(r));
    }
    t.AddRow(row);
  }
  auto add = [&](const char* name, auto get, int dec = 0, bool thousands = true) {
    std::vector<std::string> row{name};
    for (const Cell& c : cells) {
      double vb = get(c.base);
      row.push_back(thousands ? FormatThousands(static_cast<uint64_t>(vb))
                              : Fmt(vb, dec));
      for (const RunResult& r : c.schemes) {
        row.push_back(Pct(RelPercent(vb, get(r)), 2));
      }
    }
    t.AddRow(row);
  };
  add("Host Read I/Os", [](const RunResult& r) { return double(r.host_reads); });
  add("Host Write I/Os", [](const RunResult& r) { return double(r.host_writes); });
  add("GC Page Migrations",
      [](const RunResult& r) { return double(r.gc_migrations); });
  add("GC Erases", [](const RunResult& r) { return double(r.gc_erases); });
  add("GC Page Migr. per Host Write",
      [](const RunResult& r) { return r.migrations_per_host_write; }, 4, false);
  add("GC Erases per Host Write",
      [](const RunResult& r) { return r.erases_per_host_write; }, 4, false);
  add("READ I/O resp. time [ms]",
      [](const RunResult& r) { return r.read_latency_ms; }, 3, false);
  add("WRITE I/O resp. time [ms]",
      [](const RunResult& r) { return r.write_latency_ms; }, 3, false);
  add("Transactional Throughput",
      [](const RunResult& r) { return r.throughput_tps; }, 0, false);
  t.Print();
  return 0;
}

}  // namespace ipa::bench
