// Figure 7: CDF of update-sizes in TPC-B (net data) per buffer size.
// The paper: 50-90% of update I/Os change only 4 bytes of net data.

#include <cstdio>

#include "bench/cdf_common.h"
#include "common/metrics.h"

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  using namespace ipa::bench;
  std::printf("Figure 7: CDF of update-sizes in TPC-B in net data [%%].\n\n");
  return PrintUpdateSizeCdf(Wl::kTpcb, {0.10, 0.20, 0.50, 0.75, 0.90},
                            /*eager=*/true, /*gross=*/false, 4096,
                            {.n = 2, .m = 4, .v = 12});
}
