// Table 4: reduction of the DBMS I/O write amplification (x times) under
// TPC-B (M=4), TPC-C (M=3) and LinkBench (M=125), buffers 75% and 90%:
// traditional full-page writes ([0x0]) vs [2xM] and [3xM] schemes.
//
// WriteAmplification = Gross_Written_Data / Net_Changed_Data, where gross is
// (out-of-place writes * page size) + (delta writes * delta bytes), exactly
// the Section 8.4 formula.

#include <cstdio>

#include "bench/harness.h"
#include "bench/parallel_runner.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

struct Col {
  const char* name;
  Wl workload;
  uint8_t m;
  uint8_t v;
  uint32_t page_size;
};

int Run() {
  std::printf(
      "Table 4: write-amplification reduction (x times): [0x0] vs [2xM] and\n"
      "[3xM] schemes.\n\n");

  const Col cols[] = {
      {"TPC-B (M=4)", Wl::kTpcb, 4, 12, 4096},
      {"TPC-C (M=3)", Wl::kTpcc, 3, 12, 4096},
      {"LinkBench (M=125)", Wl::kLinkbench, 125, 14, 8192},
  };
  const double buffers[] = {0.75, 0.90};

  TablePrinter table({"Scheme", "TPC-B 75%", "TPC-B 90%", "TPC-C 75%",
                      "TPC-C 90%", "LinkBench 75%", "LinkBench 90%"});
  std::vector<std::string> row2{"IPA [2xM]"}, row3{"IPA [3xM]"};

  // One batch: per (workload, buffer) cell a baseline plus [2xM] and [3xM].
  std::vector<RunConfig> configs;
  for (const Col& col : cols) {
    for (double buf : buffers) {
      RunConfig base;
      base.workload = col.workload;
      base.page_size = col.page_size;
      base.buffer_fraction = buf;
      base.record_update_sizes = true;
      base.txns = DefaultTxns(col.workload);
      configs.push_back(base);
      for (uint8_t n : {2, 3}) {
        RunConfig rc = base;
        rc.scheme = {.n = n, .m = col.m, .v = col.v};
        configs.push_back(rc);
      }
    }
  }
  auto results = RunMany(configs);

  size_t idx = 0;
  for (const Col& col : cols) {
    for (double buf : buffers) {
      (void)buf;
      for (int k = 0; k < 3; k++) {
        if (!results[idx + k].ok()) {
          std::fprintf(stderr, "%s: %s\n", col.name,
                       results[idx + k].status().ToString().c_str());
          return 1;
        }
      }
      double wa0 = results[idx++].value().WriteAmplification();
      for (uint8_t n : {2, 3}) {
        double wan = results[idx++].value().WriteAmplification();
        std::string cell = wan > 0 ? Fmt(wa0 / wan, 2) : "n/a";
        (n == 2 ? row2 : row3).push_back(cell);
      }
    }
  }
  table.AddRow(row2);
  table.AddRow(row3);
  table.Print();
  std::printf("\nPaper: 1.66x - 2.83x reduction across these cells.\n");
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
