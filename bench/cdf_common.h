// Shared CDF-figure printer for Figures 7-10: update-size cumulative
// distributions per buffer size, rendered as aligned text series.

#pragma once

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "bench/parallel_runner.h"

namespace ipa::bench {

/// Run `workload` at each buffer fraction (concurrently), aggregate
/// per-flush update sizes (net or gross) across tables, and print CDF rows
/// at log-spaced byte thresholds.
inline int PrintUpdateSizeCdf(Wl workload, const std::vector<double>& buffers,
                              bool eager, bool gross, uint32_t page_size,
                              storage::Scheme scheme) {
  std::vector<RunConfig> configs;
  for (double buf : buffers) {
    RunConfig rc;
    rc.workload = workload;
    rc.page_size = page_size;
    rc.buffer_fraction = buf;
    rc.eager = eager;
    rc.scheme = scheme;
    rc.record_update_sizes = true;
    rc.txns = DefaultTxns(workload);
    configs.push_back(rc);
  }
  auto results = RunMany(configs);

  std::vector<SampleDistribution> dists;
  for (size_t i = 0; i < results.size(); i++) {
    if (!results[i].ok()) {
      std::fprintf(stderr, "buffer %.0f%%: %s\n", 100 * buffers[i],
                   results[i].status().ToString().c_str());
      return 1;
    }
    SampleDistribution agg;
    for (const auto& [table, trace] : results[i].value().traces) {
      agg.Merge(gross ? trace.gross : trace.net);
    }
    dists.push_back(std::move(agg));
  }

  std::vector<std::string> header{"Changed bytes (log scale)"};
  for (double buf : buffers) header.push_back("Buffer " + Fmt(100 * buf, 0) + "%");
  TablePrinter t(header);
  for (uint32_t bytes :
       {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u, 64u, 96u, 128u, 192u,
        256u, 384u, 512u}) {
    std::vector<std::string> row{"<= " + std::to_string(bytes)};
    for (const auto& d : dists) row.push_back(Fmt(d.PercentileOf(bytes), 1));
    t.AddRow(row);
  }
  t.Print();
  return 0;
}

}  // namespace ipa::bench
