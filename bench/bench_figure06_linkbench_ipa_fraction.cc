// Figure 6: fraction of update I/Os performed as in-place appends in
// LinkBench, across buffer sizes 20% - 90% for N in 1..3 and M in {100,125}.

#include <cstdio>
#include <iterator>

#include "bench/harness.h"
#include "bench/parallel_runner.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

int Run() {
  std::printf(
      "Figure 6: fraction of update IOs performed as in-place appends in\n"
      "LinkBench (8KB pages) [%%].\n\n");

  const std::pair<uint8_t, uint8_t> schemes[] = {
      {1, 100}, {1, 125}, {2, 100}, {2, 125}, {3, 100}, {3, 125}};
  const double buffers[] = {0.20, 0.50, 0.75, 0.90};

  std::vector<std::string> header{"Buffer"};
  for (auto [n, m] : schemes) {
    header.push_back(std::to_string(n) + "x" + std::to_string(m));
  }
  std::vector<RunConfig> configs;
  for (double buf : buffers) {
    for (auto [n, m] : schemes) {
      RunConfig rc;
      rc.workload = Wl::kLinkbench;
      rc.page_size = 8192;
      rc.buffer_fraction = buf;
      rc.scheme = {.n = n, .m = m, .v = 14};
      rc.txns = DefaultTxns(Wl::kLinkbench);
      configs.push_back(rc);
    }
  }
  auto results = RunMany(configs);

  TablePrinter t(header);
  size_t idx = 0;
  for (double buf : buffers) {
    std::vector<std::string> row{Fmt(100 * buf, 0) + "%"};
    for (size_t k = 0; k < std::size(schemes); k++) {
      const auto& r = results[idx++];
      row.push_back(r.ok() ? Fmt(r.value().ipa_share_pct, 1) : "err");
    }
    t.AddRow(row);
  }
  t.Print();
  std::printf("\nPaper: 28%% - 48%%, increasing with N and M.\n");
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
