// Deterministic crash sweep over the replication stream (docs/REPLICATION.md).
//
// Same record-and-replay idea as bench/crash_sweep.h, extended to the
// primary→replica pair: one crash-free trace run of a replicated TPC-B-style
// workload records (a) how many mutating flash operations the REPLICA issues
// while applying the stream and (b) how many shipments the primary emits.
// Then one replay per point:
//
//   - Replica points: a power loss armed at exactly that apply-side flash
//     operation. The half-applied frame must roll back at recovery
//     (RecoverAfterPowerLoss + RecoverReplState) and re-applying the same
//     frame must succeed (kApplied or kDuplicate — idempotence).
//   - Shipment points: at that shipment boundary the frame is first
//     delivered torn (must be rejected with no state change), then the
//     PRIMARY loses power at the boundary — in-flight frames are lost, the
//     primary recovers, and the replica heals through snapshot catch-up.
//
// Every point ends with full convergence verification: the primary's scan
// must equal the reference committed state byte-for-byte, and the replica's
// logical content (origin identity → bytes) must equal it too.
//
// Every point builds its own fully private pair of stacks, so points execute
// concurrently (ParallelFor) with bit-identical results at any IPA_JOBS.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ipa::bench {

struct ReplSweepConfig {
  uint64_t txns = 120;       ///< TPC-B transactions after the load phase.
  uint32_t accounts = 64;    ///< Account tuples loaded up front.
  uint64_t seed = 42;        ///< Workload RNG + torn-state shape seed.
  uint64_t max_points = 0;   ///< Cap on sweep points (0 = every point).
  unsigned jobs = 0;         ///< Worker threads (0 = Jobs()).
  bool scale_with_env = true;  ///< Apply IPA_SCALE to `txns`.
};

/// Outcome of one sweep point.
struct ReplSweepPoint {
  bool shipment = false;   ///< false: replica power cut; true: shipment drill.
  uint64_t index = 0;      ///< Replica flash-op index, or shipment ordinal.
  bool fired = false;      ///< The cut fired / the drill boundary was reached.
  bool ok = false;         ///< Both nodes verified byte-exact at the end.
  uint64_t commits = 0;    ///< Transactions the primary committed.
  uint64_t frames = 0;     ///< Frames the replica accepted.
  std::string error;       ///< First failure (empty when ok).
};

struct ReplSweepReport {
  uint64_t apply_ops = 0;  ///< Replica mutating flash ops in the trace run.
  uint64_t shipments = 0;  ///< Frames shipped in the trace run.
  uint64_t fired = 0;      ///< Points whose cut/drill actually engaged.
  uint64_t failures = 0;   ///< Points failing verification.
  std::vector<ReplSweepPoint> points;  ///< In point order.

  /// CRC32C over every point's outcome fields in order — identical across
  /// worker counts iff the sweep is deterministic.
  uint32_t Fingerprint() const;
};

/// Run the sweep: one crash-free trace run, then one replay per point.
/// Non-OK only for harness-level errors; per-point failures are in `points`.
Result<ReplSweepReport> RunReplCrashSweep(const ReplSweepConfig& config);

}  // namespace ipa::bench
