// Table 6: TPC-B on the OpenSSD profile — traditional approach (no IPA,
// [0x0]) vs the [2x4] scheme in pSLC and odd-MLC modes.
//
// The OpenSSD Jasmine profile (Appendix D): MLC flash, effective host-level
// parallelism of one request (no NCQ) and a small DB buffer, which makes the
// system I/O bound and the effect of IPA most pronounced.

#include <cstdio>

#include "bench/harness.h"
#include "common/metrics.h"

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  std::printf(
      "Table 6: TPC-B on OpenSSD: no IPA [0x0] vs [2x4] in pSLC and\n"
      "odd-MLC modes.\n\n");
  return ipa::bench::PrintOpenSsdTable(ipa::bench::Wl::kTpcb,
                                       {.n = 2, .m = 4, .v = 12});
}
