// Table 10: TPC-C with the non-eager eviction/log-reclamation policy —
// [0x0] vs [2xM] schemes with M grown to absorb update accumulation
// (Section 8.4: larger buffers accumulate more changes per page, so larger
// M keeps a useful share of host writes on the append path).

#include <cstdio>

#include "bench/harness.h"
#include "common/metrics.h"

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  using namespace ipa::bench;
  std::printf(
      "Table 10: TPC-C, no IPA [0x0] vs [2xM], buffers 10-90%%, non-eager\n"
      "eviction (cleaner at 75%% dirty, log reclamation off).\n\n");
  return PrintBufferSweepTable(
      Wl::kTpcc,
      {{0.10, {{.n = 2, .m = 10, .v = 12}}},
       {0.20, {{.n = 2, .m = 10, .v = 12}}},
       {0.50, {{.n = 2, .m = 30, .v = 12}}},
       {0.75, {{.n = 2, .m = 40, .v = 12}}},
       {0.90, {{.n = 2, .m = 40, .v = 12}}}},
      /*eager=*/false);
}
