// Table 7: TPC-B on the 16-chip SLC flash emulator — [0x0] vs [2x4] and
// [3x4] schemes at buffer sizes 10% and 20%, including I/O response times.

#include <cstdio>

#include "bench/harness.h"
#include "common/metrics.h"

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  using namespace ipa::bench;
  std::printf(
      "Table 7: TPC-B on the flash emulator: no IPA [0x0] vs [2x4] and\n"
      "[3x4] schemes (buffers 10%% and 20%%, eager eviction).\n\n");
  ipa::storage::Scheme s24{.n = 2, .m = 4, .v = 12};
  ipa::storage::Scheme s34{.n = 3, .m = 4, .v = 12};
  return PrintBufferSweepTable(
      Wl::kTpcb,
      {{0.10, {s24, s34}}, {0.20, {s24, s34}}},
      /*eager=*/true);
}
