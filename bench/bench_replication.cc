// Replication cost benchmark (docs/REPLICATION.md).
//
// Three deterministic arms over the primary→replica changeset stream:
//
//  * steady: replicated TPC-B with per-commit shipping. Reports the frame
//    mix (delta ops vs full images vs foldbacks), wire bytes per committed
//    logical byte, and the replica's apply write amplification next to the
//    primary's — the paper's WA story extended across the wire: a delta
//    record that fit the IPA budget ships small AND applies small.
//
//  * ship lag: ship every K commits for K in {1, 4, 16, 64}. Reports the
//    maximum outbound queue depth and outstanding wire bytes — the
//    durability exposure window a deployment buys when it batches shipments.
//
//  * catch-up: a cold replica heals either by replaying the full retained
//    frame tail or by one snapshot ship. Reports frames, wire bytes and
//    simulated apply time for both paths (tail replay scales with history,
//    snapshot with live data).
//
// All counters are bit-identical for a fixed seed at any IPA_JOBS, so the
// metrics snapshot is gated against bench/baselines/bench_replication.json.
//
// Usage: bench_replication [--txns N] [--accounts N] [--seed N]
//                          [--metrics-json PATH]
// IPA_SCALE scales --txns.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/metrics.h"
#include "common/random.h"
#include "engine/database.h"
#include "flash/timing.h"
#include "repl/node.h"
#include "workload/testbed.h"

namespace ipa::bench {
namespace {

constexpr uint32_t kAccountBytes = 100;
constexpr uint32_t kBalanceOffset = 12;
constexpr uint32_t kHistoryBytes = 20;
constexpr uint32_t kLoadBatch = 8;
constexpr uint64_t kCheckpointEvery = 16;

/// One node: private simulated flash + NoFtl + engine + ReplNode.
struct Node {
  flash::FlashArray dev;
  ftl::NoFtl noftl;
  ftl::FtlBackend* backend = nullptr;
  std::unique_ptr<engine::Database> db;
  engine::TablespaceId ts = 0;
  engine::TableId accounts_tbl = 0;
  engine::TableId history_tbl = 0;
  std::unique_ptr<repl::ReplNode> repl;  // after db: hooks detach first

  static flash::Geometry Geo() {
    flash::Geometry g;
    g.channels = 2;
    g.chips_per_channel = 2;
    g.blocks_per_chip = 48;
    g.pages_per_block = 16;
    g.page_size = 2048;
    return g;
  }

  Node() : dev(Geo(), flash::SlcTiming()), noftl(&dev) {}

  Status Open(repl::WriterId writer, bool writable) {
    engine::EngineConfig ec;
    ec.page_size = Geo().page_size;
    ec.buffer_pages = 12;
    ec.log_capacity_bytes = 1 << 20;
    ec.log_reclaim_threshold = 0.375;
    storage::Scheme scheme{.n = 2, .m = 4, .v = 12};
    ftl::RegionConfig rc;
    rc.name = "replbench";
    rc.logical_pages = 256;
    rc.ipa_mode = ftl::IpaMode::kSlc;
    rc.delta_area_offset = Geo().page_size - scheme.AreaBytes();
    rc.manage_ecc = true;
    auto r = noftl.CreateRegion(rc);
    IPA_RETURN_NOT_OK(r.status());
    backend = noftl.region_device(r.value());
    db = std::make_unique<engine::Database>(&noftl, ec);
    auto t = db->CreateTablespace("replbench", r.value(), scheme);
    IPA_RETURN_NOT_OK(t.status());
    ts = t.value();
    auto a = db->CreateTable("account", ts);
    IPA_RETURN_NOT_OK(a.status());
    accounts_tbl = a.value();
    auto h = db->CreateTable("history", ts);
    IPA_RETURN_NOT_OK(h.status());
    history_tbl = h.value();
    auto n = repl::ReplNode::Attach(
        db.get(), ts, {accounts_tbl, history_tbl},
        repl::ReplConfig{.writer = writer, .writable = writable});
    IPA_RETURN_NOT_OK(n.status());
    repl = std::move(n).value();
    return Status::OK();
  }

  uint64_t ProgrammedBytes() const {
    return dev.stats().bytes_programmed + dev.stats().delta_bytes_programmed;
  }
};

std::vector<uint8_t> AccountTuple(uint32_t id) {
  std::vector<uint8_t> t(kAccountBytes);
  for (uint32_t j = 0; j < kAccountBytes; j++) {
    t[j] = static_cast<uint8_t>(id * 7u + j * 13u + 1u);
  }
  return t;
}

struct WorkloadStats {
  uint64_t commits = 0;
  uint64_t logical_bytes = 0;  ///< Committed payload: inserts + patch bytes.
  uint64_t max_queue_frames = 0;
  uint64_t max_queue_bytes = 0;
};

/// Replicated TPC-B on `p`, shipping the outbound queue to `r` (when given)
/// every `ship_every` transactions. Frames can also be captured into `sink`
/// (the catch-up arm records the retained tail instead of a live replica).
Status RunWorkload(Node& p, Node* r, uint64_t ship_every, uint64_t txns,
                   uint32_t accounts, uint64_t seed, WorkloadStats* out,
                   std::vector<std::vector<uint8_t>>* sink) {
  Rng rng(seed);
  std::vector<uint64_t> rids;

  auto drain = [&]() -> Status {
    for (;;) {
      std::vector<uint8_t> w = p.repl->PopOutbound();
      if (w.empty()) return Status::OK();
      if (sink != nullptr) sink->push_back(w);
      if (r != nullptr) {
        auto a = r->repl->ApplyFrame(w);
        IPA_RETURN_NOT_OK(a.status());
        if (a.value() != repl::ReplNode::Apply::kApplied) {
          return Status::Corruption("live stream frame not applied");
        }
      }
    }
  };
  uint64_t emitted_before_queue = 0;
  auto note_lag = [&]() {
    out->max_queue_frames =
        std::max(out->max_queue_frames, p.repl->outbound_frames());
    out->max_queue_bytes =
        std::max(out->max_queue_bytes,
                 p.repl->stats().bytes_emitted - emitted_before_queue);
  };
  auto after_drain = [&]() { emitted_before_queue = p.repl->stats().bytes_emitted; };

  for (uint32_t base = 0; base < accounts; base += kLoadBatch) {
    engine::TxnId txn = p.db->Begin();
    for (uint32_t i = base; i < std::min(accounts, base + kLoadBatch); i++) {
      std::vector<uint8_t> t = AccountTuple(i);
      auto rid = p.db->Insert(txn, p.accounts_tbl, t);
      IPA_RETURN_NOT_OK(rid.status());
      rids.push_back(rid.value().Pack());
      out->logical_bytes += kAccountBytes;
    }
    IPA_RETURN_NOT_OK(p.db->Commit(txn));
    IPA_RETURN_NOT_OK(drain());
    after_drain();
  }

  for (uint64_t t = 0; t < txns; t++) {
    engine::TxnId txn = p.db->Begin();
    Status s = Status::OK();
    for (int u = 0; u < 3 && s.ok(); u++) {
      uint64_t key = rids[rng.Uniform(rids.size())];
      uint8_t patch[4];
      for (uint8_t& b : patch) b = static_cast<uint8_t>(rng.Next());
      s = p.db->Update(txn, engine::Rid::Unpack(key), kBalanceOffset, patch);
    }
    IPA_RETURN_NOT_OK(s);
    std::vector<uint8_t> h(kHistoryBytes);
    for (uint8_t& b : h) b = static_cast<uint8_t>(rng.Next());
    auto rid = p.db->Insert(txn, p.history_tbl, h);
    IPA_RETURN_NOT_OK(rid.status());
    bool abort = rng.Chance(0.1);
    if (abort) {
      IPA_RETURN_NOT_OK(p.db->Abort(txn));
    } else {
      IPA_RETURN_NOT_OK(p.db->Commit(txn));
      out->commits++;
      out->logical_bytes += kHistoryBytes + 3 * 4;
    }
    note_lag();
    if ((t + 1) % ship_every == 0) {
      IPA_RETURN_NOT_OK(drain());
      after_drain();
    }
    if ((t + 1) % kCheckpointEvery == 0) {
      IPA_RETURN_NOT_OK(p.db->Checkpoint());
    }
  }
  IPA_RETURN_NOT_OK(drain());
  return Status::OK();
}

int Run(uint64_t txns, uint32_t accounts, uint64_t seed) {
  double scale = workload::BenchScale();
  txns = std::max<uint64_t>(
      8, static_cast<uint64_t>(static_cast<double>(txns) * scale));

  // -- Steady arm: per-commit shipping, live replica.
  Node p, r;
  WorkloadStats w;
  Status s = p.Open(1, true);
  if (s.ok()) s = r.Open(2, false);
  if (s.ok()) s = RunWorkload(p, &r, 1, txns, accounts, seed, &w, nullptr);
  if (s.ok()) {
    repl::ReplNode::LogicalMap pm, rm;
    s = p.repl->ScanLogical(&pm);
    if (s.ok()) s = r.repl->ScanLogical(&rm);
    if (s.ok() && pm != rm) s = Status::Corruption("steady arm diverged");
  }
  if (!s.ok()) {
    std::fprintf(stderr, "bench_replication: steady: %s\n",
                 s.ToString().c_str());
    return 2;
  }
  const repl::ReplStats& ps = p.repl->stats();
  const repl::ReplStats& rs = r.repl->stats();
  uint64_t p_prog = p.ProgrammedBytes();
  uint64_t r_prog = r.ProgrammedBytes();

  TablePrinter steady({"arm", "commits", "frames", "wire B", "delta", "full",
                       "foldback", "primary WA", "replica WA", "wire amp"});
  auto wa = [&](uint64_t prog) {
    return w.logical_bytes == 0 ? 0.0
                                : static_cast<double>(prog) /
                                      static_cast<double>(w.logical_bytes);
  };
  steady.AddRow({"steady", std::to_string(w.commits),
                 std::to_string(ps.frames_emitted),
                 std::to_string(ps.bytes_emitted),
                 std::to_string(ps.delta_ops), std::to_string(ps.full_ops),
                 std::to_string(ps.foldbacks), Fmt(wa(p_prog)),
                 Fmt(wa(r_prog)),
                 Fmt(w.logical_bytes == 0
                         ? 0.0
                         : static_cast<double>(ps.bytes_emitted) /
                               static_cast<double>(w.logical_bytes))});
  steady.Print();

  metrics::Gauge("repl_bench.steady.commits").Set(static_cast<int64_t>(w.commits));
  metrics::Gauge("repl_bench.steady.frames")
      .Set(static_cast<int64_t>(ps.frames_emitted));
  metrics::Gauge("repl_bench.steady.wire_bytes")
      .Set(static_cast<int64_t>(ps.bytes_emitted));
  metrics::Gauge("repl_bench.steady.delta_ops")
      .Set(static_cast<int64_t>(ps.delta_ops));
  metrics::Gauge("repl_bench.steady.full_ops")
      .Set(static_cast<int64_t>(ps.full_ops));
  metrics::Gauge("repl_bench.steady.foldbacks")
      .Set(static_cast<int64_t>(ps.foldbacks));
  metrics::Gauge("repl_bench.steady.frames_applied")
      .Set(static_cast<int64_t>(rs.frames_applied));
  metrics::Gauge("repl_bench.steady.logical_bytes")
      .Set(static_cast<int64_t>(w.logical_bytes));
  metrics::Gauge("repl_bench.steady.primary_prog_bytes")
      .Set(static_cast<int64_t>(p_prog));
  metrics::Gauge("repl_bench.steady.replica_prog_bytes")
      .Set(static_cast<int64_t>(r_prog));

  // -- Ship-lag arm: batch shipments, report the exposure window.
  TablePrinter lag({"ship every", "max queue frames", "max queue bytes"});
  for (uint64_t every : {1ull, 4ull, 16ull, 64ull}) {
    Node bp, br;
    WorkloadStats bw;
    s = bp.Open(1, true);
    if (s.ok()) s = br.Open(2, false);
    if (s.ok()) s = RunWorkload(bp, &br, every, txns, accounts, seed, &bw,
                                nullptr);
    if (!s.ok()) {
      std::fprintf(stderr, "bench_replication: lag(%llu): %s\n",
                   static_cast<unsigned long long>(every),
                   s.ToString().c_str());
      return 2;
    }
    lag.AddRow({std::to_string(every), std::to_string(bw.max_queue_frames),
                std::to_string(bw.max_queue_bytes)});
    std::string prefix = "repl_bench.lag." + std::to_string(every);
    metrics::Gauge(prefix + ".max_queue_frames")
        .Set(static_cast<int64_t>(bw.max_queue_frames));
    metrics::Gauge(prefix + ".max_queue_bytes")
        .Set(static_cast<int64_t>(bw.max_queue_bytes));
  }
  lag.Print();

  // -- Catch-up arm: retained tail replay vs one snapshot ship.
  Node cp;
  std::vector<std::vector<uint8_t>> tail;
  WorkloadStats cw;
  s = cp.Open(1, true);
  if (s.ok()) s = RunWorkload(cp, nullptr, 1, txns, accounts, seed, &cw, &tail);
  if (!s.ok()) {
    std::fprintf(stderr, "bench_replication: catchup primary: %s\n",
                 s.ToString().c_str());
    return 2;
  }
  uint64_t tail_bytes = 0;
  for (const auto& f : tail) tail_bytes += f.size();

  Node tr;  // tail-replay replica
  s = tr.Open(2, false);
  SimTime tail_us = 0;
  if (s.ok()) {
    SimTime start = tr.dev.clock().Now();
    for (const auto& f : tail) {
      auto a = tr.repl->ApplyFrame(f);
      if (!a.ok()) {
        s = a.status();
        break;
      }
      if (a.value() != repl::ReplNode::Apply::kApplied) {
        s = Status::Corruption("tail frame not applied");
        break;
      }
    }
    tail_us = tr.dev.clock().Now() - start;
  }
  if (!s.ok()) {
    std::fprintf(stderr, "bench_replication: tail replay: %s\n",
                 s.ToString().c_str());
    return 2;
  }

  Node sr;  // snapshot replica
  s = sr.Open(3, false);
  SimTime snap_us = 0;
  uint64_t snap_frames = 0, snap_bytes = 0;
  if (s.ok()) {
    auto snap = cp.repl->BuildSnapshot();
    if (!snap.ok()) {
      s = snap.status();
    } else {
      snap_frames = snap.value().size();
      for (const auto& f : snap.value()) snap_bytes += f.size();
      SimTime start = sr.dev.clock().Now();
      s = sr.repl->ApplySnapshot(snap.value());
      snap_us = sr.dev.clock().Now() - start;
    }
  }
  if (!s.ok()) {
    std::fprintf(stderr, "bench_replication: snapshot: %s\n",
                 s.ToString().c_str());
    return 2;
  }

  // Both catch-up paths must land on the same logical content.
  {
    repl::ReplNode::LogicalMap a, b, c;
    s = cp.repl->ScanLogical(&a);
    if (s.ok()) s = tr.repl->ScanLogical(&b);
    if (s.ok()) s = sr.repl->ScanLogical(&c);
    if (s.ok() && (a != b || a != c)) {
      s = Status::Corruption("catch-up paths diverged");
    }
    if (!s.ok()) {
      std::fprintf(stderr, "bench_replication: catchup verify: %s\n",
                   s.ToString().c_str());
      return 2;
    }
  }

  TablePrinter cu({"catch-up path", "frames", "wire B", "apply sim-us"});
  cu.AddRow({"tail replay", std::to_string(tail.size()),
             std::to_string(tail_bytes), std::to_string(tail_us)});
  cu.AddRow({"snapshot", std::to_string(snap_frames),
             std::to_string(snap_bytes), std::to_string(snap_us)});
  cu.Print();

  metrics::Gauge("repl_bench.catchup.tail_frames")
      .Set(static_cast<int64_t>(tail.size()));
  metrics::Gauge("repl_bench.catchup.tail_bytes")
      .Set(static_cast<int64_t>(tail_bytes));
  metrics::Gauge("repl_bench.catchup.tail_sim_us")
      .Set(static_cast<int64_t>(tail_us));
  metrics::Gauge("repl_bench.catchup.snap_frames")
      .Set(static_cast<int64_t>(snap_frames));
  metrics::Gauge("repl_bench.catchup.snap_bytes")
      .Set(static_cast<int64_t>(snap_bytes));
  metrics::Gauge("repl_bench.catchup.snap_sim_us")
      .Set(static_cast<int64_t>(snap_us));
  return 0;
}

}  // namespace
}  // namespace ipa::bench

namespace {

uint64_t ArgU64(int argc, char** argv, const char* flag, uint64_t fallback) {
  for (int i = 1; i + 1 < argc; i++) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  ipa::bench::WarnIfDebugBuild();
  uint64_t txns = ArgU64(argc, argv, "--txns", 120);
  uint32_t accounts =
      static_cast<uint32_t>(ArgU64(argc, argv, "--accounts", 64));
  uint64_t seed = ArgU64(argc, argv, "--seed", 42);
  return ipa::bench::Run(txns, accounts, seed);
}
