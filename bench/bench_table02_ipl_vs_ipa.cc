// Table 2: comparison of IPA to In-Page Logging (Lee & Moon) on TPC-B,
// TPC-C and TATP traces (Section 8.3, Appendix B).
//
// Setup mirrors the original IPL paper: 8KB logical DB pages, SLC flash with
// 2KB physical pages, 64 pages per erase unit, 512B partial writes, one
// 512B in-memory log sector per buffered page, an 8KB log region per erase
// unit. Each workload runs once under IPA (recording the logical I/O
// trace); the identical trace is replayed through the IPL simulator.

#include <cstdio>

#include "bench/harness.h"
#include "bench/parallel_runner.h"
#include "ipl/comparison.h"
#include "ipl/ipl_simulator.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

struct Row {
  const char* name;
  Wl workload;
  storage::Scheme scheme;
};

int Run() {
  std::printf("Table 2: Comparison of IPA to IPL (8KB DB pages, SLC flash,\n"
              "2KB physical pages, 64 pages/erase unit, 8KB IPL log region).\n\n");

  const Row rows[] = {
      {"TPC-B", Wl::kTpcb, {.n = 2, .m = 4, .v = 12}},
      {"TPC-C", Wl::kTpcc, {.n = 2, .m = 3, .v = 12}},
      {"TATP", Wl::kTatp, {.n = 2, .m = 4, .v = 12}},
  };

  TablePrinter table({"Metric", "TPC-B IPA", "TPC-B IPL", "TPC-C IPA",
                      "TPC-C IPL", "TATP IPA", "TATP IPL"});
  std::vector<std::string> wa{"I/O Write Amplific."}, ra{"I/O Read Amplific."},
      er{"Erases"};
  std::vector<double> ipa_wa, ipl_wa, ipa_ra, ipl_ra;
  std::vector<uint64_t> ipa_er, ipl_er;

  std::vector<RunConfig> configs;
  for (const Row& row : rows) {
    RunConfig rc;
    rc.workload = row.workload;
    rc.scheme = row.scheme;
    rc.page_size = 8192;
    rc.buffer_fraction = 0.30;  // I/O-bound: plenty of fetches + evictions
    rc.record_io_trace = true;
    rc.txns = DefaultTxns(row.workload);
    configs.push_back(rc);
  }
  auto results = RunMany(configs);

  for (size_t i = 0; i < results.size(); i++) {
    const Row& row = rows[i];
    if (!results[i].ok()) {
      std::fprintf(stderr, "%s: %s\n", row.name,
                   results[i].status().ToString().c_str());
      return 1;
    }
    const RunResult& res = results[i].value();

    // IPA side, Appendix B accounting. The region stats cover the same
    // measurement phase that produced the trace.
    ftl::RegionStats region;
    region.gc_page_migrations = res.gc_migrations;
    region.gc_erases = res.gc_erases;
    ipl::IpaAccounting ipa = ipl::AccountIpa(res.io_trace, region, 4);

    // IPL side: replay the identical trace.
    ipl::IplSimulator sim;
    sim.Replay(res.io_trace);
    sim.FlushAll();

    wa.push_back(Fmt(ipa.WriteAmplification(), 2));
    wa.push_back(Fmt(sim.WriteAmplification(), 2));
    ra.push_back(Fmt(ipa.ReadAmplification(), 2));
    ra.push_back(Fmt(sim.ReadAmplification(), 2));
    er.push_back(FormatThousands(ipa.gc_erases));
    er.push_back(FormatThousands(sim.stats().erases));
    ipa_wa.push_back(ipa.WriteAmplification());
    ipl_wa.push_back(sim.WriteAmplification());
    ipa_ra.push_back(ipa.ReadAmplification());
    ipl_ra.push_back(sim.ReadAmplification());
    ipa_er.push_back(ipa.gc_erases);
    ipl_er.push_back(sim.stats().erases);
  }

  table.AddRow(wa);
  table.AddRow(ra);
  table.AddRow(er);
  table.Print();

  std::printf("\nIPA vs IPL (negative = IPA does less):\n");
  const char* names[] = {"TPC-B", "TPC-C", "TATP"};
  for (int i = 0; i < 3; i++) {
    std::printf("  %-6s reads %s%%  writes %s%%  erases %s%%\n", names[i],
                Pct(RelPercent(ipl_ra[i], ipa_ra[i])).c_str(),
                Pct(RelPercent(ipl_wa[i], ipa_wa[i])).c_str(),
                ipl_er[i] ? Pct(RelPercent(static_cast<double>(ipl_er[i]),
                                           static_cast<double>(ipa_er[i])))
                                .c_str()
                          : "n/a");
  }
  std::printf(
      "\nPaper: IPA performs 51-62%% fewer reads, 23-62%% fewer writes and\n"
      "29-74%% fewer erases across these workloads.\n");
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
