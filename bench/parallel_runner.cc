#include "bench/parallel_runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <thread>

#if defined(__GLIBC__)
#include <errno.h>  // program_invocation_short_name
#endif

namespace ipa::bench {

namespace {

// Timing registry for the IPA_BENCH_JSON report. This is the only mutable
// process-global state in the bench stack; it lives outside the simulated
// system and is only touched under g_timing_mu (see the shared-nothing audit
// note in docs/ARCHITECTURE.md).
std::mutex g_timing_mu;
std::vector<RunTiming>& TimingStore() {
  // Intentionally leaked: the store must outlive the atexit JSON writer,
  // which runs after function-local statics are destroyed.
  static auto* store = new std::vector<RunTiming>();
  return *store;
}
double g_total_wall_ms = 0;
unsigned g_last_jobs = 1;

const char* BenchBinaryName() {
#if defined(__GLIBC__)
  return program_invocation_short_name;
#else
  return "bench";
#endif
}

const char* ProfileName(workload::Profile p) {
  switch (p) {
    case workload::Profile::kEmulatorSlc: return "emulator-slc";
    case workload::Profile::kOpenSsdPSlc: return "openssd-pslc";
    case workload::Profile::kOpenSsdOddMlc: return "openssd-odd-mlc";
    case workload::Profile::kOpenSsdNoIpa: return "openssd-no-ipa";
  }
  return "?";
}

void WriteBenchJsonAtExit() {
  const char* path = std::getenv("IPA_BENCH_JSON");
  if (!path || !*path) return;
  if (!WriteBenchJson(path)) {
    std::fprintf(stderr, "IPA_BENCH_JSON: cannot write %s\n", path);
  }
}

void RegisterJsonAtExit() {
  static std::once_flag once;
  std::call_once(once, [] {
    // Fail fast on an unwritable path: a CI job that silently drops its
    // timing report looks identical to one that never produced it.
    if (const char* path = std::getenv("IPA_BENCH_JSON"); path && *path) {
      std::FILE* f = std::fopen(path, "ab");
      if (!f) {
        std::fprintf(stderr, "IPA_BENCH_JSON: cannot open '%s' for writing\n",
                     path);
        std::exit(2);
      }
      std::fclose(f);
    }
    std::atexit(WriteBenchJsonAtExit);
  });
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Process-wide worker budget. Threads spawned by ParallelFor — across every
// concurrent and nested call in the process — never exceed Jobs(). A call
// that finds the budget exhausted runs its loop on the calling thread, so
// nesting degrades to serial execution instead of multiplying thread counts
// (the pre-budget failure mode: a ParallelFor inside a ParallelFor worker
// spawned jobs*jobs threads).
std::atomic<unsigned> g_live_workers{0};

unsigned ClaimWorkers(unsigned want) {
  const unsigned budget = Jobs();
  unsigned live = g_live_workers.load(std::memory_order_relaxed);
  unsigned take;
  do {
    take = live < budget ? std::min(want, budget - live) : 0;
    if (take == 0) return 0;
  } while (!g_live_workers.compare_exchange_weak(live, live + take,
                                                 std::memory_order_relaxed));
  return take;
}

void ReleaseWorkers(unsigned n) {
  g_live_workers.fetch_sub(n, std::memory_order_relaxed);
}

}  // namespace

unsigned Jobs() {
  if (const char* s = std::getenv("IPA_JOBS")) {
    long v = std::strtol(s, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 unsigned jobs) {
  if (jobs == 0) jobs = Jobs();
  unsigned workers =
      static_cast<unsigned>(std::min<size_t>(jobs, n == 0 ? 1 : n));
  // The calling thread always participates; only the extra threads draw from
  // the process-wide budget. An exhausted budget (this call is nested inside
  // another ParallelFor's worker) claims nothing and the loop runs inline.
  unsigned extra = workers <= 1 ? 0 : ClaimWorkers(workers - 1);
  if (extra == 0) {
    for (size_t i = 0; i < n; i++) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto work = [&] {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
  };
  std::vector<std::thread> pool;
  pool.reserve(extra);
  for (unsigned w = 0; w < extra; w++) pool.emplace_back(work);
  work();
  for (auto& t : pool) t.join();
  ReleaseWorkers(extra);
}

std::vector<Result<RunResult>> RunMany(const std::vector<RunConfig>& configs,
                                       unsigned jobs) {
  RegisterJsonAtExit();
  const size_t n = configs.size();
  if (jobs == 0) jobs = Jobs();
  unsigned workers =
      static_cast<unsigned>(std::min<size_t>(jobs, n == 0 ? 1 : n));

  std::vector<std::optional<Result<RunResult>>> slots(n);
  std::vector<double> wall(n, 0.0);
  auto run_one = [&](size_t i) {
    auto t0 = std::chrono::steady_clock::now();
    slots[i].emplace(RunWorkload(configs[i]));
    wall[i] = MillisSince(t0);
  };

  auto batch_t0 = std::chrono::steady_clock::now();
  // Results land in per-index slots, keeping submission order independent of
  // completion order.
  ParallelFor(n, run_one, workers);
  double batch_ms = MillisSince(batch_t0);

  {
    std::lock_guard<std::mutex> lock(g_timing_mu);
    for (size_t i = 0; i < n; i++) {
      TimingStore().push_back(
          {configs[i], wall[i], slots[i].has_value() && (*slots[i]).ok()});
    }
    g_total_wall_ms += batch_ms;
    g_last_jobs = workers;
  }

  std::vector<Result<RunResult>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; i++) {
    out.push_back(slots[i].has_value()
                      ? std::move(*slots[i])
                      : Result<RunResult>(Status::Internal("run not executed")));
  }
  return out;
}

const std::vector<RunTiming>& BenchTimings() { return TimingStore(); }

bool WriteBenchJson(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_timing_mu);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", BenchBinaryName());
  std::fprintf(f, "  \"jobs\": %u,\n", g_last_jobs);
  std::fprintf(f, "  \"total_wall_ms\": %.3f,\n", g_total_wall_ms);
  std::fprintf(f, "  \"runs\": [\n");
  const std::vector<RunTiming>& runs = TimingStore();
  for (size_t i = 0; i < runs.size(); i++) {
    const RunConfig& c = runs[i].config;
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"scheme\": \"%ux%u\", \"profile\": "
        "\"%s\", \"buffer_fraction\": %.4f, \"page_size\": %u, \"eager\": "
        "%s, \"txns\": %llu, \"sim_time_us\": %llu, \"seed\": %llu, "
        "\"over_provisioning\": %.4f, \"wall_ms\": %.3f, \"ok\": %s}%s\n",
        WlName(c.workload), c.scheme.n, c.scheme.m, ProfileName(c.profile),
        c.buffer_fraction, c.page_size, c.eager ? "true" : "false",
        static_cast<unsigned long long>(c.txns),
        static_cast<unsigned long long>(c.sim_time_us),
        static_cast<unsigned long long>(c.seed), c.over_provisioning,
        runs[i].wall_ms, runs[i].ok ? "true" : "false",
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace ipa::bench
