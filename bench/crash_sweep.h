// Deterministic power-loss crash sweep (docs/CRASH_TESTING.md).
//
// Record-and-replay fault injection in the style of ALICE/OptFS crash
// testing: run a TPC-B-style workload once to record how many mutating flash
// operations (ProgramPage / ProgramDelta / EraseBlock) it issues, then
// re-execute the identical workload once per operation index with a power
// loss injected at exactly that operation. After each crash the testbed is
// power-cycled and restarted (mount-time torn-write scan + ARIES recovery),
// and the surviving database is checked against a reference model:
// committed transactions must survive byte-exactly, uncommitted ones must
// vanish, and no torn delta may ever be served to a reader.
//
// Every sweep point builds its own fully private simulated stack, so points
// execute concurrently (ParallelFor) with bit-identical results at any
// IPA_JOBS setting.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/testbed.h"

namespace ipa::bench {

struct CrashSweepConfig {
  uint64_t txns = 200;       ///< TPC-B transactions after the load phase.
  uint32_t accounts = 96;    ///< Account tuples loaded up front.
  uint64_t seed = 42;        ///< Workload RNG + torn-state shape seed.
  uint64_t max_points = 0;   ///< Cap on injection points (0 = every op index).
  unsigned jobs = 0;         ///< Worker threads (0 = Jobs()).
  bool scale_with_env = true;  ///< Apply IPA_SCALE to `txns`.
  /// FTL stack under test. Page-FTL backends tear GC migrations, lazy block
  /// erases and OOB reverse-map programs instead of delta appends.
  workload::Backend backend = workload::Backend::kNoFtl;
  /// Delta-record codec for the NoFTL scheme (docs/DELTA_COMPRESSION.md):
  /// byte codecs put multi-byte variable-length records under the injector,
  /// so torn COMPRESSED appends hit the quarantine path. Ignored by page-FTL
  /// backends (no delta area behind a cooked device).
  storage::DeltaCodec codec = storage::DeltaCodec::kRaw;
};

/// Outcome of one injection point.
struct CrashSweepPoint {
  uint64_t inject_at = 0;   ///< Mutating-op index the loss was armed for.
  bool crashed = false;     ///< Power actually died (armed op passed validation).
  bool ok = false;          ///< Post-recovery verification passed.
  uint64_t commits = 0;     ///< Transactions committed before the crash.
  uint64_t torn_bytes = 0;  ///< Torn delta bytes detected and dropped.
  uint64_t quarantined = 0; ///< Pages the mount scan rewrote clean.
  std::string error;        ///< First failure (empty when ok).
};

struct CrashSweepReport {
  uint64_t total_ops = 0;   ///< Mutating flash ops in the crash-free run.
  uint64_t crashes = 0;     ///< Points where the loss actually fired.
  uint64_t failures = 0;    ///< Points failing verification.
  std::vector<CrashSweepPoint> points;  ///< In injection-index order.

  /// CRC32C over every point's outcome fields in index order — identical
  /// across worker counts iff the sweep is deterministic.
  uint32_t Fingerprint() const;
};

/// Run the sweep: one crash-free trace run, then one replay per injection
/// point. Returns a non-OK status only for harness-level errors (e.g. the
/// trace run itself failing); per-point verification failures are reported
/// in the point list and `failures`.
Result<CrashSweepReport> RunCrashSweep(const CrashSweepConfig& config);

}  // namespace ipa::bench
