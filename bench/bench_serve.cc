// Serving-layer load generator and gate (docs/SERVING.md).
//
// Three modes:
//
//  * Default (simulation): drives the full serving stack in-process on the
//    simulated clock via net::ServeSim — closed-loop capacity calibration,
//    then open-loop Poisson phases at 0.5x ("steady") and 2x ("burst") the
//    measured capacity, with Zipfian keys, variable payloads, connection
//    churn and slow-client injection. Reports p50/p99/p999 and goodput per
//    phase through ipa-metrics-v1, and (unless --no-gates) enforces the
//    overload contract: the burst MUST shed (RETRY count > 0) while the p99
//    of accepted requests stays within --slo-mult of the steady phase.
//    Bit-identical across runs, IPA_JOBS, and --sequential vs threaded.
//
//  * --soak: time-budgeted power-cut soak (sequential engine). Each
//    iteration builds a fresh testbed, runs acknowledged traffic (ack =
//    group-commit force), cuts power mid-request via PowerLossPolicy,
//    recovers (SimulateCrash -> PowerCycle -> RecoverAfterPowerLoss ->
//    RebuildIndexes) and verifies that no acknowledged commit was lost and
//    every surviving value is byte-exact. Exits 1 on any violation or if no
//    cut ever triggered.
//
//  * --connect HOST:PORT: a real TCP client for CI's serve-smoke job:
//    closed-loop mix, an interactive transaction, a pipelined overload burst
//    (expects RETRY responses with --expect-shed), and a poisoned-frame
//    probe that must draw one kError frame followed by a clean close.
//
// Usage: bench_serve [--workers N] [--sequential] [--seed N] [--keys N]
//   [--clients N] [--zipf T] [--write-frac F] [--delete-frac F]
//   [--value-min N] [--value-max N] [--cpu-us N] [--inflight-budget N]
//   [--batch N] [--retry-hint-us N] [--closed-target N] [--steady-ms N]
//   [--burst-ms N] [--slo-mult X] [--no-gates]
//   [--soak --time-budget-s N --soak-ops N]
//   [--connect H:P --conns N --requests N --burst N --expect-shed]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench/harness.h"
#include "common/metrics.h"
#include "common/random.h"
#include "net/kv_service.h"
#include "net/loadgen.h"
#include "net/protocol.h"
#include "workload/testbed.h"

namespace ipa::bench {
namespace {

using net::kAutoCommit;
using net::RStatus;

struct ServeBed {
  std::unique_ptr<workload::ShardedTestbed> bed;
  std::unique_ptr<net::KvService> kv;
};

Result<ServeBed> BuildBed(uint32_t workers, bool threaded, uint64_t keys,
                          uint32_t value_avg) {
  workload::ShardedTestbedConfig sc;
  sc.workers = workers;
  sc.threaded = threaded;
  sc.base.db_pages =
      std::max<uint64_t>(512, keys * (value_avg + 40) / 4096 * 3);
  sc.base.scheme = storage::Scheme{.n = 2, .m = 4, .v = 12};
  sc.base.buffer_fraction = 0.5;
  sc.group_commit_ops = 8;
  sc.group_commit_window_us = 1000;
  sc.log_force_us = 100;
  ServeBed out;
  IPA_ASSIGN_OR_RETURN(out.bed, MakeShardedTestbed(sc));
  std::vector<net::KvService::PartitionConfig> pcs;
  for (auto& p : out.bed->parts) pcs.push_back({p.db.get(), p.ts});
  IPA_ASSIGN_OR_RETURN(out.kv, net::KvService::Create(pcs));
  return out;
}

// ---------------------------------------------------------------------------
// Simulation mode
// ---------------------------------------------------------------------------

struct SimOptions {
  uint32_t workers = 4;
  bool threaded = true;
  net::LoadgenConfig lc;
  uint64_t closed_target = 0;
  uint64_t steady_us = 0;
  uint64_t burst_us = 0;
  double slo_mult = 25.0;
  bool gates = true;
};

void ReportPhase(TablePrinter* table, const net::PhaseResult& r,
                 uint64_t* fingerprint) {
  uint64_t p50 = r.lat.PercentileMicros(50);
  uint64_t p99 = r.lat.PercentileMicros(99);
  uint64_t p999 = r.lat.PercentileMicros(99.9);
  table->AddRow({r.name, Fmt(r.offered_tps, 0), std::to_string(r.issued),
                 std::to_string(r.completed), std::to_string(r.shed),
                 std::to_string(r.errors), std::to_string(p50),
                 std::to_string(p99), std::to_string(p999),
                 Fmt(r.goodput_tps(), 0),
                 Fmt(static_cast<double>(r.bytes_in + r.bytes_out) / 1e6),
                 std::to_string(r.conn_drops)});

  std::string prefix = "serve." + r.name;
  metrics::Gauge(prefix + ".offered_tps")
      .Set(static_cast<int64_t>(r.offered_tps));
  metrics::Gauge(prefix + ".issued").Set(static_cast<int64_t>(r.issued));
  metrics::Gauge(prefix + ".completed").Set(static_cast<int64_t>(r.completed));
  metrics::Gauge(prefix + ".shed").Set(static_cast<int64_t>(r.shed));
  metrics::Gauge(prefix + ".errors").Set(static_cast<int64_t>(r.errors));
  metrics::Gauge(prefix + ".p50_us").Set(static_cast<int64_t>(p50));
  metrics::Gauge(prefix + ".p99_us").Set(static_cast<int64_t>(p99));
  metrics::Gauge(prefix + ".p999_us").Set(static_cast<int64_t>(p999));
  metrics::Gauge(prefix + ".goodput_tps")
      .Set(static_cast<int64_t>(r.goodput_tps()));
  metrics::Gauge(prefix + ".sim_us").Set(static_cast<int64_t>(r.sim_us));
  metrics::Gauge(prefix + ".conn_drops")
      .Set(static_cast<int64_t>(r.conn_drops));
  metrics::Gauge(prefix + ".bytes_in").Set(static_cast<int64_t>(r.bytes_in));
  metrics::Gauge(prefix + ".bytes_out").Set(static_cast<int64_t>(r.bytes_out));

  // FNV-1a over the phase's observable numbers: one scalar that differs if
  // ANY result drifts — the cheap cross-run/IPA_JOBS determinism witness.
  for (uint64_t v : {r.issued, r.completed, r.shed, r.errors, r.bytes_in,
                     r.bytes_out, r.sim_us, p50, p99, p999, r.conn_drops,
                     r.dropped_arrivals}) {
    *fingerprint ^= v;
    *fingerprint *= 0x100000001B3ull;
  }
}

int RunSim(const SimOptions& opt) {
  auto bed_or = BuildBed(opt.workers, opt.threaded, opt.lc.keys,
                         (opt.lc.value_min + opt.lc.value_max) / 2);
  if (!bed_or.ok()) {
    std::fprintf(stderr, "bench_serve: testbed: %s\n",
                 bed_or.status().ToString().c_str());
    return 1;
  }
  ServeBed sb = std::move(bed_or.value());
  net::AdmissionController ac(
      opt.workers, {.inflight_budget = opt.lc.inflight_budget,
                    .base_retry_hint_us = opt.lc.base_retry_hint_us});
  net::ServeSim sim(sb.bed->sharded.get(), sb.kv.get(), &ac, opt.lc);

  if (Status s = sim.Preload(); !s.ok()) {
    std::fprintf(stderr, "bench_serve: preload: %s\n", s.ToString().c_str());
    return 1;
  }

  auto closed = sim.RunClosedLoop("closed", opt.closed_target);
  if (!closed.ok()) {
    std::fprintf(stderr, "bench_serve: closed loop: %s\n",
                 closed.status().ToString().c_str());
    return 1;
  }
  double capacity = closed.value().goodput_tps();
  if (capacity <= 0) {
    std::fprintf(stderr, "bench_serve: measured zero capacity\n");
    return 1;
  }

  auto steady = sim.RunOpenLoop("steady", 0.5 * capacity, opt.steady_us);
  if (!steady.ok()) {
    std::fprintf(stderr, "bench_serve: steady phase: %s\n",
                 steady.status().ToString().c_str());
    return 1;
  }
  auto burst = sim.RunOpenLoop("burst", 2.0 * capacity, opt.burst_us);
  if (!burst.ok()) {
    std::fprintf(stderr, "bench_serve: burst phase: %s\n",
                 burst.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Serving: %u partition(s), %llu keys, zipf %.2f, budget %u/part,\n"
      "batch %u; closed-loop capacity calibration, then open-loop Poisson\n"
      "at 0.5x and 2x capacity (docs/SERVING.md).\n\n",
      opt.workers, static_cast<unsigned long long>(opt.lc.keys),
      opt.lc.zipf_theta, opt.lc.inflight_budget, opt.lc.batch_ops);

  TablePrinter table({"phase", "offered tps", "issued", "done", "shed", "err",
                      "p50 us", "p99 us", "p999 us", "goodput", "wire MB",
                      "drops"});
  uint64_t fingerprint = 0xCBF29CE484222325ull;
  ReportPhase(&table, closed.value(), &fingerprint);
  ReportPhase(&table, steady.value(), &fingerprint);
  ReportPhase(&table, burst.value(), &fingerprint);
  table.Print();

  metrics::Gauge("serve.capacity_tps").Set(static_cast<int64_t>(capacity));
  metrics::Gauge("serve.fingerprint")
      .Set(static_cast<int64_t>(fingerprint >> 1));
  std::printf("\ncapacity %s tps, fingerprint %016llx\n", Fmt(capacity, 0).c_str(),
              static_cast<unsigned long long>(fingerprint));
  for (const net::PhaseResult* r :
       {&closed.value(), &steady.value(), &burst.value()}) {
    if (r->truncated) {
      std::printf("note: phase %s hit the %llu-arrival cap; offered load was "
                  "truncated\n",
                  r->name.c_str(),
                  static_cast<unsigned long long>(opt.lc.max_open_arrivals));
    }
  }

  if (!opt.gates) return 0;
  int rc = 0;
  uint64_t total_errors = closed.value().errors + steady.value().errors +
                          burst.value().errors;
  if (total_errors != 0) {
    std::fprintf(stderr, "bench_serve: GATE: %llu request errors\n",
                 static_cast<unsigned long long>(total_errors));
    rc = 1;
  }
  if (burst.value().shed == 0) {
    std::fprintf(stderr,
                 "bench_serve: GATE: 2x-capacity burst shed nothing — "
                 "admission control is not engaging\n");
    rc = 1;
  }
  uint64_t steady_p99 = std::max<uint64_t>(steady.value().lat.PercentileMicros(99), 100);
  uint64_t burst_p99 = burst.value().lat.PercentileMicros(99);
  if (static_cast<double>(burst_p99) >
      opt.slo_mult * static_cast<double>(steady_p99)) {
    std::fprintf(stderr,
                 "bench_serve: GATE: burst p99 %llu us exceeds %.1fx steady "
                 "p99 %llu us — accepted-request SLO violated under overload\n",
                 static_cast<unsigned long long>(burst_p99), opt.slo_mult,
                 static_cast<unsigned long long>(steady_p99));
    rc = 1;
  }
  return rc;
}

// ---------------------------------------------------------------------------
// Power-cut soak mode
// ---------------------------------------------------------------------------

struct SoakOptions {
  uint32_t workers = 4;
  uint64_t keys = 2000;
  uint64_t ops = 20000;
  uint64_t seed = 1;
  uint64_t time_budget_s = 20;
};

Status SoakIteration(const SoakOptions& opt, uint64_t seed, uint64_t* crashes,
                     uint64_t* keys_verified, uint64_t* acked_commits) {
  IPA_ASSIGN_OR_RETURN(ServeBed sb,
                       BuildBed(opt.workers, /*threaded=*/false, opt.keys, 160));
  engine::ShardedDatabase& sdb = *sb.bed->sharded;
  net::KvService& kv = *sb.kv;

  // Preload; everything forced + checkpointed counts as acknowledged.
  for (uint64_t k = 0; k < opt.keys; ++k) {
    uint32_t p = kv.PartitionOfKey(k);
    if (kv.Put(p, kAutoCommit, k, net::ValueBytes(k, 0, 64 + k % 193)) !=
        RStatus::kOk) {
      return Status::Internal("soak preload PUT failed");
    }
  }
  for (uint32_t p = 0; p < opt.workers; ++p) kv.ForceLog(p);
  sdb.EpochBarrier();
  IPA_RETURN_NOT_OK(sdb.Checkpoint());
  sdb.EpochBarrier();

  std::unordered_map<uint64_t, uint64_t> acked, committed;
  for (uint64_t k = 0; k < opt.keys; ++k) acked[k] = committed[k] = 0;

  // Arm the probabilistic power cut: some flash program/erase mid-soak will
  // tear, and every op after it fails Unavailable until the power cycle.
  flash::PowerLossPolicy pol;
  pol.per_op_probability = 0.001;
  pol.seed = seed * 0x9E3779B97F4A7C15ull + 1;
  sb.bed->dev->SetPowerLossPolicy(pol);

  Rng rng(seed);
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> pending(opt.workers);
  std::vector<uint32_t> batch(opt.workers, 0);
  uint64_t next_seq = 1;
  bool crashed = false;
  for (uint64_t i = 0; i < opt.ops; ++i) {
    uint64_t k = rng.Uniform(opt.keys);
    uint32_t p = kv.PartitionOfKey(k);
    RStatus rs;
    if (rng.Chance(0.7)) {
      uint64_t s = next_seq++;
      rs = kv.Put(p, kAutoCommit, k,
                  net::ValueBytes(k, s, 64 + static_cast<uint32_t>(rng.Uniform(192))));
      if (rs == RStatus::kOk) {
        committed[k] = s;
        pending[p].push_back({k, s});
      } else if (rs == RStatus::kUnavailable) {
        // The cut landed inside this PUT. Its commit record may or may not
        // have reached the durable WAL prefix (group commit can auto-force
        // mid-op), so the outcome is legitimately in doubt: admit the
        // attempted sequence as a legal post-recovery state for this key.
        committed[k] = std::max(committed[k], s);
      }
    } else {
      std::vector<uint8_t> got;
      rs = kv.Get(p, kAutoCommit, k, &got);
      if (rs == RStatus::kOk) {
        if (got != net::ValueBytes(k, committed[k],
                                   static_cast<uint32_t>(got.size()))) {
          return Status::Corruption("soak GET mismatch vs last committed PUT");
        }
      } else if (rs == RStatus::kNotFound) {
        return Status::Corruption("soak GET lost a preloaded key");
      }
    }
    if (rs == RStatus::kUnavailable) {
      crashed = true;  // the power cut landed mid-request
      break;
    }
    if (rs != RStatus::kOk) {
      return Status::Internal(std::string("soak op failed: ") +
                              net::StatusName(rs));
    }
    if (++batch[p] >= 8) {
      // Group-commit force = the acknowledgement point: only now do the
      // batch's commits count as promised to clients.
      kv.ForceLog(p);
      batch[p] = 0;
      for (auto& [kk, ss] : pending[p]) acked[kk] = std::max(acked[kk], ss);
      pending[p].clear();
      (*acked_commits)++;
    }
  }

  if (crashed) {
    (*crashes)++;
    sdb.SimulateCrash();
    sb.bed->dev->PowerCycle();
    sb.bed->dev->SetPowerLossPolicy(flash::PowerLossPolicy{});
    IPA_RETURN_NOT_OK(sdb.RecoverAfterPowerLoss());
    IPA_RETURN_NOT_OK(kv.RebuildIndexes());
  } else {
    sb.bed->dev->SetPowerLossPolicy(flash::PowerLossPolicy{});
    for (uint32_t p = 0; p < opt.workers; ++p) kv.ForceLog(p);
    sdb.EpochBarrier();
    acked = committed;  // everything forced: all commits are acknowledged
  }

  // No acknowledged commit may be lost; no phantom state may appear; every
  // surviving value must be byte-exact for its embedded sequence number.
  for (uint64_t k = 0; k < opt.keys; ++k) {
    uint32_t p = kv.PartitionOfKey(k);
    std::vector<uint8_t> got;
    RStatus rs = kv.Get(p, kAutoCommit, k, &got);
    if (rs != RStatus::kOk || got.size() < 8) {
      return Status::Corruption("soak: key missing after recovery");
    }
    uint64_t s = net::GetU64(got.data());
    if (s < acked[k]) {
      return Status::Corruption("soak: acknowledged commit lost by recovery");
    }
    if (s > committed[k]) {
      return Status::Corruption("soak: phantom write sequence after recovery");
    }
    if (got != net::ValueBytes(k, s, static_cast<uint32_t>(got.size()))) {
      return Status::Corruption("soak: value bytes corrupt after recovery");
    }
    (*keys_verified)++;
  }
  uint64_t indexed = 0;
  for (uint32_t p = 0; p < opt.workers; ++p) {
    IPA_ASSIGN_OR_RETURN(uint64_t n, kv.KeyCount(p));
    indexed += n;
  }
  if (indexed != opt.keys) {
    return Status::Corruption("soak: rebuilt index key count mismatch");
  }
  return Status::OK();
}

int RunSoak(const SoakOptions& opt) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(opt.time_budget_s);
  uint64_t iterations = 0, crashes = 0, keys_verified = 0, acked_commits = 0;
  uint64_t seed = opt.seed;
  while (iterations < 2 || (std::chrono::steady_clock::now() < deadline &&
                            iterations < 256)) {
    Status s = SoakIteration(opt, seed++, &crashes, &keys_verified,
                             &acked_commits);
    if (!s.ok()) {
      std::fprintf(stderr, "bench_serve: soak iteration %llu (seed %llu): %s\n",
                   static_cast<unsigned long long>(iterations),
                   static_cast<unsigned long long>(seed - 1),
                   s.ToString().c_str());
      return 1;
    }
    iterations++;
  }
  metrics::Gauge("serve.soak.iterations").Set(static_cast<int64_t>(iterations));
  metrics::Gauge("serve.soak.crashes").Set(static_cast<int64_t>(crashes));
  metrics::Gauge("serve.soak.keys_verified")
      .Set(static_cast<int64_t>(keys_verified));
  metrics::Gauge("serve.soak.acked_batches")
      .Set(static_cast<int64_t>(acked_commits));
  std::printf(
      "soak: %llu iterations, %llu power cuts survived, %llu keys verified, "
      "%llu acked batches\n",
      static_cast<unsigned long long>(iterations),
      static_cast<unsigned long long>(crashes),
      static_cast<unsigned long long>(keys_verified),
      static_cast<unsigned long long>(acked_commits));
  if (crashes == 0) {
    std::fprintf(stderr,
                 "bench_serve: soak never triggered a power cut — raise "
                 "--soak-ops\n");
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// TCP client mode (CI serve-smoke)
// ---------------------------------------------------------------------------

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t conns = 8;
  uint64_t requests = 2000;
  uint32_t burst = 256;  ///< Pipelined requests per connection.
  bool expect_shed = false;
};

int Dial(const std::string& host, uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{.tv_sec = 30, .tv_usec = 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

bool WriteAll(int fd, const std::vector<uint8_t>& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

struct ClientConn {
  int fd = -1;
  net::FrameDecoder dec;
};

/// Read one frame; false on timeout/EOF/poison.
bool ReadFrame(ClientConn& c, net::Frame* out) {
  while (true) {
    switch (c.dec.Poll(out)) {
      case net::FrameDecoder::Next::kFrame:
        return true;
      case net::FrameDecoder::Next::kFatal:
        return false;
      case net::FrameDecoder::Next::kNeedMore:
        break;
    }
    uint8_t buf[16384];
    ssize_t n = read(c.fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    c.dec.Feed(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
  }
}

bool SendRequest(ClientConn& c, uint8_t op, uint64_t id,
                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> wire;
  net::EncodeFrame(op, id, payload, &wire);
  return WriteAll(c.fd, wire);
}

int RunClient(const ClientOptions& opt) {
  std::vector<ClientConn> conns(opt.conns);
  for (auto& c : conns) {
    c.fd = Dial(opt.host, opt.port);
    if (c.fd < 0) {
      std::fprintf(stderr, "bench_serve: connect %s:%u failed\n",
                   opt.host.c_str(), opt.port);
      return 1;
    }
  }

  uint64_t ok = 0, not_found = 0, retry = 0, other = 0;
  uint64_t id = 1;

  // Closed-loop mix: alternate PUT/GET round-robin across connections.
  for (uint64_t i = 0; i < opt.requests; ++i) {
    ClientConn& c = conns[i % conns.size()];
    uint64_t key = i % 1000;
    uint64_t rid = id++;
    bool put = (i & 1) != 0;
    std::vector<uint8_t> payload;
    if (put) {
      payload = net::PutPayload(kAutoCommit, key,
                                net::ValueBytes(key, i, 64 + key % 129));
    } else {
      payload = net::GetPayload(kAutoCommit, key);
    }
    if (!SendRequest(c, static_cast<uint8_t>(put ? net::Op::kPut : net::Op::kGet),
                     rid, payload)) {
      std::fprintf(stderr, "bench_serve: send failed at request %llu\n",
                   static_cast<unsigned long long>(i));
      return 1;
    }
    net::Frame f;
    if (!ReadFrame(c, &f) || f.request_id != rid) {
      std::fprintf(stderr, "bench_serve: bad/missing response at request %llu\n",
                   static_cast<unsigned long long>(i));
      return 1;
    }
    switch (static_cast<RStatus>(f.op)) {
      case RStatus::kOk: ok++; break;
      case RStatus::kNotFound: not_found++; break;
      case RStatus::kRetry: retry++; break;
      default: other++; break;
    }
  }

  // One interactive transaction end to end.
  {
    ClientConn& c = conns[0];
    uint64_t key = 5;
    uint64_t rid = id++;
    if (!SendRequest(c, static_cast<uint8_t>(net::Op::kBegin), rid,
                     net::BeginPayload(key))) {
      return 1;
    }
    net::Frame f;
    if (!ReadFrame(c, &f) || f.request_id != rid ||
        f.op != static_cast<uint8_t>(RStatus::kOk) || f.payload.size() != 8) {
      std::fprintf(stderr, "bench_serve: BEGIN failed\n");
      return 1;
    }
    uint64_t txn = net::GetU64(f.payload.data());
    rid = id++;
    if (!SendRequest(c, static_cast<uint8_t>(net::Op::kPut), rid,
                     net::PutPayload(txn, key, net::ValueBytes(key, 1, 64))) ||
        !ReadFrame(c, &f) || f.request_id != rid ||
        f.op != static_cast<uint8_t>(RStatus::kOk)) {
      std::fprintf(stderr, "bench_serve: txn PUT failed\n");
      return 1;
    }
    rid = id++;
    if (!SendRequest(c, static_cast<uint8_t>(net::Op::kCommit), rid,
                     net::TxnPayload(txn)) ||
        !ReadFrame(c, &f) || f.request_id != rid ||
        f.op != static_cast<uint8_t>(RStatus::kOk)) {
      std::fprintf(stderr, "bench_serve: COMMIT failed\n");
      return 1;
    }
  }

  // Overload burst: pipeline `burst` PUTs per connection, then drain. The
  // server must answer every request — most beyond the inflight budget with
  // RETRY — and stay in sync.
  uint64_t burst_retry = 0;
  for (auto& c : conns) {
    std::vector<uint8_t> wire;
    std::unordered_set<uint64_t> want;
    for (uint32_t i = 0; i < opt.burst; ++i) {
      uint64_t key = 1000 + i;
      uint64_t rid = id++;
      want.insert(rid);
      net::EncodeFrame(
          static_cast<uint8_t>(net::Op::kPut), rid,
          net::PutPayload(kAutoCommit, key, net::ValueBytes(key, i, 64)),
          &wire);
    }
    if (!WriteAll(c.fd, wire)) {
      std::fprintf(stderr, "bench_serve: burst send failed\n");
      return 1;
    }
    while (!want.empty()) {
      net::Frame f;
      if (!ReadFrame(c, &f)) {
        std::fprintf(stderr,
                     "bench_serve: burst: %zu responses missing on a conn\n",
                     want.size());
        return 1;
      }
      if (want.erase(f.request_id) != 1) {
        std::fprintf(stderr, "bench_serve: burst: unexpected request_id\n");
        return 1;
      }
      if (f.op == static_cast<uint8_t>(RStatus::kRetry)) burst_retry++;
    }
  }

  // Poisoned frame: garbage bytes must draw exactly one kError frame and a
  // server-side close — and must not have desynced anything else.
  {
    ClientConn c;
    c.fd = Dial(opt.host, opt.port);
    if (c.fd < 0) return 1;
    std::vector<uint8_t> garbage(24, 0xA5);
    if (!WriteAll(c.fd, garbage)) return 1;
    net::Frame f;
    if (!ReadFrame(c, &f) || f.op != static_cast<uint8_t>(RStatus::kError)) {
      std::fprintf(stderr, "bench_serve: poison probe: no kError frame\n");
      return 1;
    }
    uint8_t b;
    if (read(c.fd, &b, 1) != 0) {
      std::fprintf(stderr, "bench_serve: poison probe: server kept the "
                           "connection open\n");
      return 1;
    }
    close(c.fd);
  }

  for (auto& c : conns) close(c.fd);

  std::printf(
      "client: %llu requests ok=%llu notfound=%llu retry=%llu other=%llu; "
      "burst retries=%llu\n",
      static_cast<unsigned long long>(opt.requests),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(not_found),
      static_cast<unsigned long long>(retry),
      static_cast<unsigned long long>(other),
      static_cast<unsigned long long>(burst_retry));
  metrics::Gauge("client.ok").Set(static_cast<int64_t>(ok));
  metrics::Gauge("client.retry")
      .Set(static_cast<int64_t>(retry + burst_retry));
  if (other != 0) {
    std::fprintf(stderr, "bench_serve: %llu unexpected response statuses\n",
                 static_cast<unsigned long long>(other));
    return 1;
  }
  if (opt.expect_shed && burst_retry == 0) {
    std::fprintf(stderr,
                 "bench_serve: expected the burst to be shed, saw 0 RETRY\n");
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------

int Main(int argc, char** argv) {
  double scale = workload::BenchScale();
  SimOptions sim;
  sim.lc.keys = std::max<uint64_t>(2000, static_cast<uint64_t>(20000 * scale));
  sim.closed_target =
      std::max<uint64_t>(1000, static_cast<uint64_t>(12000 * scale));
  sim.steady_us =
      std::max<uint64_t>(50000, static_cast<uint64_t>(400000 * scale));
  sim.burst_us =
      std::max<uint64_t>(25000, static_cast<uint64_t>(200000 * scale));

  SoakOptions soak;
  soak.keys = std::max<uint64_t>(500, static_cast<uint64_t>(2000 * scale));
  soak.ops = std::max<uint64_t>(4000, static_cast<uint64_t>(20000 * scale));

  ClientOptions client;
  bool soak_mode = false, client_mode = false;

  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) != 0) return nullptr;
      if (arg.size() > n && arg[n] == '=') return arg.c_str() + n + 1;
      if (arg.size() == n && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--workers")) {
      sim.workers = soak.workers = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--sequential") {
      sim.threaded = false;
    } else if (const char* v = value("--seed")) {
      sim.lc.seed = soak.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--keys")) {
      sim.lc.keys = soak.keys = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--clients")) {
      sim.lc.clients = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--zipf")) {
      sim.lc.zipf_theta = std::atof(v);
    } else if (const char* v = value("--write-frac")) {
      sim.lc.write_fraction = std::atof(v);
    } else if (const char* v = value("--delete-frac")) {
      sim.lc.delete_fraction = std::atof(v);
    } else if (const char* v = value("--value-min")) {
      sim.lc.value_min = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--value-max")) {
      sim.lc.value_max = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--cpu-us")) {
      sim.lc.cpu_us_per_request = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--inflight-budget")) {
      sim.lc.inflight_budget = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--batch")) {
      sim.lc.batch_ops = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--retry-hint-us")) {
      sim.lc.base_retry_hint_us = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--closed-target")) {
      sim.closed_target = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--steady-ms")) {
      sim.steady_us = std::strtoull(v, nullptr, 10) * 1000;
    } else if (const char* v = value("--burst-ms")) {
      sim.burst_us = std::strtoull(v, nullptr, 10) * 1000;
    } else if (const char* v = value("--slo-mult")) {
      sim.slo_mult = std::atof(v);
    } else if (arg == "--no-gates") {
      sim.gates = false;
    } else if (arg == "--soak") {
      soak_mode = true;
    } else if (const char* v = value("--time-budget-s")) {
      soak.time_budget_s = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--soak-ops")) {
      soak.ops = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--connect")) {
      client_mode = true;
      std::string hp = v;
      size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "bench_serve: --connect needs HOST:PORT\n");
        return 2;
      }
      client.host = hp.substr(0, colon);
      client.port = static_cast<uint16_t>(std::atoi(hp.c_str() + colon + 1));
    } else if (const char* v = value("--conns")) {
      client.conns = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--requests")) {
      client.requests = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--burst")) {
      client.burst = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--expect-shed") {
      client.expect_shed = true;
    }
  }

  if (client_mode) return RunClient(client);
  WarnIfDebugBuild();
  if (soak_mode) return RunSoak(soak);
  return RunSim(sim);
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Main(argc, argv);
}
