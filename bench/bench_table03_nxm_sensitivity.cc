// Table 3: [NxM]-scheme sensitivity — fraction of update I/Os performed as
// in-place appends (%), delta-area space overhead (%), and reduction in
// erases-per-host-write (%) vs the no-IPA baseline; TPC-C (75% buffer, 4KB
// pages, M over net data) and LinkBench (75% buffer, 8KB pages, M over the
// whole page).
//
// Footer reproduces the Section 8.4 observation that byte-level metadata
// tracking shrinks the delta area by ~49% for a [2x3] scheme versus storing
// the complete page metadata in every record.

#include <cstdio>

#include "bench/harness.h"
#include "bench/parallel_runner.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

int Run() {
  std::printf(
      "Table 3: fraction of update IOs performed as IPA [%%], space overhead\n"
      "[%%], and reduction in erases per host write [%%] for NxM schemes.\n\n");

  // Collect the whole grid (both baselines + every scheme cell) as one
  // parallel batch; cells are consumed in submission order below.
  RunConfig base_c;
  base_c.workload = Wl::kTpcc;
  base_c.buffer_fraction = 0.75;
  base_c.txns = DefaultTxns(Wl::kTpcc);

  RunConfig base_l;
  base_l.workload = Wl::kLinkbench;
  base_l.page_size = 8192;
  base_l.buffer_fraction = 0.75;
  base_l.txns = DefaultTxns(Wl::kLinkbench);

  std::vector<RunConfig> configs{base_c, base_l};
  for (uint8_t n : {1, 2, 3, 4}) {
    for (uint8_t m : {3, 4, 6, 10, 15, 20}) {
      RunConfig rc = base_c;
      rc.scheme = {.n = n, .m = m, .v = 12};
      configs.push_back(rc);
    }
  }
  for (uint8_t n : {1, 2, 3}) {
    for (uint8_t m : {100, 125}) {
      RunConfig rc = base_l;
      rc.scheme = {.n = n, .m = m, .v = 14};
      configs.push_back(rc);
    }
  }
  auto results = RunMany(configs);

  if (!results[0].ok()) {
    std::fprintf(stderr, "baseline: %s\n",
                 results[0].status().ToString().c_str());
    return 1;
  }
  if (!results[1].ok()) {
    std::fprintf(stderr, "lb baseline: %s\n",
                 results[1].status().ToString().c_str());
    return 1;
  }
  double base_ephw_c = results[0].value().erases_per_host_write;
  double base_ephw_l = results[1].value().erases_per_host_write;
  size_t idx = 2;

  auto cell = [&](double base_ephw) {
    const auto& r = results[idx++];
    if (!r.ok()) return std::string("err");
    double red = RelPercent(base_ephw, r.value().erases_per_host_write);
    return Fmt(r.value().ipa_share_pct, 1) + " | " +
           Fmt(r.value().space_overhead_pct, 1) + " | " + Pct(red, 0);
  };

  std::printf("TPC-C (75%% buffer, 4KB pages, M = updated bytes in net data)\n");
  std::printf("cells: IPA share %% | space %% | erase/hw reduction %%\n");
  TablePrinter tc({"N\\M", "M=3", "M=4", "M=6", "M=10", "M=15", "M=20"});
  for (uint8_t n : {1, 2, 3, 4}) {
    std::vector<std::string> row{"N=" + std::to_string(n)};
    for (int m = 0; m < 6; m++) row.push_back(cell(base_ephw_c));
    tc.AddRow(row);
  }
  tc.Print();

  std::printf(
      "\nLinkBench (75%% buffer, 8KB pages, M = updated bytes in whole page)\n");
  TablePrinter tl({"N\\M", "M=100", "M=125"});
  for (uint8_t n : {1, 2, 3}) {
    std::vector<std::string> row{"N=" + std::to_string(n)};
    for (int m = 0; m < 2; m++) row.push_back(cell(base_ephw_l));
    tl.AddRow(row);
  }
  tl.Print();

  // Section 8.4: byte-level metadata tracking vs full-metadata records.
  storage::Scheme s23{.n = 2, .m = 3, .v = 12};
  uint32_t byte_level = s23.AreaBytes();
  // Alternative: each record carries the complete page metadata (header +
  // typical slot-table tail) instead of V tracked bytes.
  uint32_t full_meta_record = 1 + 3 * 3 + 80;
  uint32_t full_meta_area = 2 * full_meta_record;
  std::printf(
      "\nByte-level metadata tracking: delta area %uB vs %uB with full page\n"
      "metadata per record -> %.0f%% smaller (paper: 49%% for [2x3]).\n",
      byte_level, full_meta_area,
      100.0 * (1.0 - static_cast<double>(byte_level) / full_meta_area));
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
