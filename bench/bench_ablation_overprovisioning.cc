// Ablation: over-provisioning vs IPA (Section 8.4, "IPA allows decreasing
// the size of the over-provisioning area without a loss of performance").
//
// TPC-C at 5% / 10% / 20% OP, with and without the [2x3] scheme. IPA slows
// the consumption of the OP area, so an IPA region with small OP behaves
// like a traditional region with a much larger one.

#include <cstdio>

#include "bench/harness.h"
#include "bench/parallel_runner.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

int Run() {
  std::printf(
      "Ablation: over-provisioning sensitivity (TPC-C, 20%% buffer).\n\n");

  std::vector<RunConfig> configs;
  for (double op : {0.05, 0.10, 0.20}) {
    for (bool ipa : {false, true}) {
      RunConfig rc;
      rc.workload = Wl::kTpcc;
      rc.buffer_fraction = 0.20;
      rc.over_provisioning = op;
      if (ipa) rc.scheme = {.n = 2, .m = 3, .v = 12};
      rc.txns = DefaultTxns(Wl::kTpcc);
      configs.push_back(rc);
    }
  }
  auto results = RunMany(configs);

  TablePrinter t({"Config", "erases/host-write", "migr/host-write",
                  "read lat [ms]", "IPA share [%]"});
  size_t idx = 0;
  for (double op : {0.05, 0.10, 0.20}) {
    for (bool ipa : {false, true}) {
      const auto& r = results[idx++];
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      t.AddRow({"OP " + Fmt(100 * op, 0) + "% " + (ipa ? "[2x3]" : "[0x0]"),
                Fmt(r.value().erases_per_host_write, 4),
                Fmt(r.value().migrations_per_host_write, 4),
                Fmt(r.value().read_latency_ms, 3),
                Fmt(r.value().ipa_share_pct, 0)});
    }
  }
  t.Print();
  std::printf(
      "\nExpected shape: [2x3] at 5%% OP beats [0x0] at 10-20%% OP on\n"
      "erases per host write — the delta-area space cost can be paid for\n"
      "by shrinking OP (paper Section 8.4).\n");
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
