// Ablation: deployment models (paper conclusions, point 6).
//
//   1. NoFTL region with IPA        — the paper's primary architecture;
//   2. conventional SSD + write_delta extension — IPA behind a block-device
//      interface with per-command host-interface latency;
//   3. conventional SSD, unmodified — the traditional baseline.
//
// Expected shape: (2) keeps most of (1)'s erase/GC savings but pays
// interface latency ("at the cost of lower performance compared to IPA
// under NoFTL"); (3) shows neither benefit.

#include <cstdio>

#include "bench/harness.h"
#include "ftl/blackbox_ssd.h"
#include "workload/tpcb.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

struct Arm {
  double erases_per_hw = 0;
  double ipa_share = 0;
  double read_lat_ms = 0;
  double tps = 0;
};

Result<Arm> RunOnSsd(bool extension, uint64_t txns) {
  workload::TpcbConfig wc;
  wc.accounts_per_branch = 20000;
  workload::Tpcb sizing(nullptr, wc, workload::SingleTablespace(0));
  uint64_t db_pages = sizing.EstimatedPages(4096);

  storage::Scheme scheme{.n = 2, .m = 4, .v = 12};
  ftl::BlackboxSsdConfig sc;
  sc.logical_pages = db_pages * 2;
  sc.write_delta_extension = extension;
  ftl::BlackboxSsd ssd(sc);
  if (extension) {
    IPA_RETURN_NOT_OK(ssd.SetSchemeHint(4096 - scheme.AreaBytes()));
  }

  engine::EngineConfig ec;
  ec.buffer_pages = static_cast<uint32_t>(db_pages / 4);
  ec.log_capacity_bytes = 24u << 20;
  engine::Database db(nullptr, ec, &ssd.clock());
  IPA_ASSIGN_OR_RETURN(
      engine::TablespaceId ts,
      db.CreateTablespaceOn("ssd", &ssd, extension ? scheme : storage::Scheme{}));
  workload::Tpcb tpcb(&db, wc, workload::SingleTablespace(ts));
  IPA_RETURN_NOT_OK(tpcb.Load());
  IPA_RETURN_NOT_OK(db.Checkpoint());
  ssd.ResetStats();
  db.ResetTxnStats();

  SimTime t0 = ssd.clock().Now();
  for (uint64_t i = 0; i < txns; i++) {
    auto r = tpcb.RunTransaction();
    IPA_RETURN_NOT_OK(r.status());
    ssd.clock().Advance(DefaultCpuUs(Wl::kTpcb));
  }
  SimTime span = ssd.clock().Now() - t0;

  Arm arm;
  arm.erases_per_hw = ssd.stats().ErasesPerHostWrite();
  arm.ipa_share = ssd.stats().IpaSharePercent();
  arm.read_lat_ms = ssd.stats().read_latency.MeanMillis();
  arm.tps = span == 0 ? 0
                      : static_cast<double>(db.txn_stats().commits) /
                            (static_cast<double>(span) / 1e6);
  return arm;
}

int Run() {
  std::printf("Ablation: IPA deployment models (TPC-B, 25%% buffer).\n\n");
  uint64_t txns = DefaultTxns(Wl::kTpcb) / 2;

  RunConfig noftl_rc;
  noftl_rc.workload = Wl::kTpcb;
  noftl_rc.scheme = {.n = 2, .m = 4, .v = 12};
  noftl_rc.buffer_fraction = 0.25;
  noftl_rc.scale = 20000.0 / 60000.0;  // match the SSD arms' DB size
  noftl_rc.txns = txns;
  auto noftl = RunWorkload(noftl_rc);
  auto ssd_ipa = RunOnSsd(true, txns);
  auto ssd_plain = RunOnSsd(false, txns);
  if (!noftl.ok() || !ssd_ipa.ok() || !ssd_plain.ok()) {
    std::fprintf(stderr, "runs failed: %s / %s / %s\n",
                 noftl.status().ToString().c_str(),
                 ssd_ipa.status().ToString().c_str(),
                 ssd_plain.status().ToString().c_str());
    return 1;
  }

  TablePrinter t({"Deployment", "IPA share [%]", "erases/host-write",
                  "read latency [ms]", "throughput [tps]"});
  t.AddRow({"NoFTL region + IPA [2x4]", Fmt(noftl.value().ipa_share_pct, 0),
            Fmt(noftl.value().erases_per_host_write, 4),
            Fmt(noftl.value().read_latency_ms, 3),
            Fmt(noftl.value().throughput_tps, 0)});
  t.AddRow({"SSD + write_delta ext. [2x4]", Fmt(ssd_ipa.value().ipa_share, 0),
            Fmt(ssd_ipa.value().erases_per_hw, 4),
            Fmt(ssd_ipa.value().read_lat_ms, 3),
            Fmt(ssd_ipa.value().tps, 0)});
  t.AddRow({"conventional SSD [0x0]", Fmt(ssd_plain.value().ipa_share, 0),
            Fmt(ssd_plain.value().erases_per_hw, 4),
            Fmt(ssd_plain.value().read_lat_ms, 3),
            Fmt(ssd_plain.value().tps, 0)});
  t.Print();
  std::printf(
      "\nExpected shape: the SSD extension preserves most of IPA's erase\n"
      "savings over the plain SSD, but NoFTL is faster (no host-interface\n"
      "latency, DBMS-controlled placement) — the paper's conclusion 6.\n");
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
