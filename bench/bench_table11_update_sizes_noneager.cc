// Table 11: TPC-C update-size percentiles under the non-eager eviction
// strategy across buffer sizes 10% - 90% (net data).
//
// Larger buffers accumulate more updates per page before eviction, shifting
// the distribution right — the effect motivating Table 10's larger M values.

#include <cstdio>

#include "bench/harness.h"
#include "bench/parallel_runner.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

int Run() {
  std::printf(
      "Table 11: TPC-C update-sizes (net data, non-eager eviction).\n"
      "Cells: percentile rank of update I/Os changing <= N bytes.\n\n");

  const double buffers[] = {0.10, 0.20, 0.50, 0.75, 0.90};
  std::vector<RunConfig> configs;
  for (double buf : buffers) {
    RunConfig rc;
    rc.workload = Wl::kTpcc;
    rc.buffer_fraction = buf;
    rc.eager = false;
    rc.record_update_sizes = true;
    rc.txns = DefaultTxns(Wl::kTpcc);
    configs.push_back(rc);
  }
  auto results = RunMany(configs);

  std::vector<SampleDistribution> dists;
  for (size_t i = 0; i < results.size(); i++) {
    if (!results[i].ok()) {
      std::fprintf(stderr, "buffer %.0f%%: %s\n", 100 * buffers[i],
                   results[i].status().ToString().c_str());
      return 1;
    }
    SampleDistribution agg;
    for (const auto& [table, trace] : results[i].value().traces) {
      agg.Merge(trace.net);
    }
    dists.push_back(std::move(agg));
  }

  TablePrinter table({"Changed bytes", "Buffer 10%", "Buffer 20%",
                      "Buffer 50%", "Buffer 75%", "Buffer 90%"});
  for (uint32_t bytes : {3u, 6u, 10u, 30u, 40u}) {
    std::vector<std::string> row{"<= " + std::to_string(bytes)};
    for (const auto& d : dists) {
      row.push_back(Fmt(d.PercentileOf(bytes), 0) + "-th");
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nPaper: with Buffer 10%% ~80%% of updates change <= 6 bytes; with\n"
      "Buffer 90%% only ~4%% do (accumulation shifts the CDF right).\n");
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
