#include "bench/crash_sweep.h"

#include <algorithm>
#include <map>
#include <memory>

#include "bench/parallel_runner.h"
#include "common/crc32.h"
#include "common/random.h"
#include "engine/database.h"
#include "flash/timing.h"
#include "workload/testbed.h"

namespace ipa::bench {

namespace {

// TPC-B-style rows: fixed-size account tuples whose balance field takes the
// per-transaction 4-byte in-place updates (the IPA-friendly write pattern),
// plus append-only history tuples.
constexpr uint32_t kAccountBytes = 100;
constexpr uint32_t kBalanceOffset = 12;
constexpr uint32_t kHistoryBytes = 20;
constexpr uint32_t kLoadBatch = 8;
constexpr uint64_t kCheckpointEvery = 16;

/// Committed database content: rid.Pack() -> tuple bytes (both tables share
/// the tablespace, so packed rids are unique across them).
using Reference = std::map<uint64_t, std::vector<uint8_t>>;

/// One fully private simulated stack per sweep point.
struct Testbed {
  flash::FlashArray dev;
  ftl::NoFtl noftl;                       // kNoFtl stacks only
  std::unique_ptr<ftl::PageFtl> pageftl;  // page-FTL stacks only
  std::unique_ptr<ftl::StreamFtl> streamftl;  // kStreamFtl stacks only
  /// The tablespace's backend, whichever stack is active.
  ftl::FtlBackend* backend = nullptr;
  std::unique_ptr<engine::Database> db;
  ftl::RegionId region = 0;
  engine::TablespaceId ts = 0;
  engine::TableId accounts_tbl = 0;
  engine::TableId history_tbl = 0;

  static flash::Geometry Geo() {
    flash::Geometry g;
    g.channels = 2;
    g.chips_per_channel = 2;
    g.blocks_per_chip = 48;
    g.pages_per_block = 16;
    g.page_size = 2048;
    return g;
  }

  Testbed() : dev(Geo(), flash::SlcTiming()), noftl(&dev) {}

  Status Open(workload::Backend kind, storage::DeltaCodec codec) {
    engine::EngineConfig ec;
    ec.page_size = Geo().page_size;
    ec.buffer_pages = 12;  // tiny pool: constant steal under the workload
    ec.log_capacity_bytes = 1 << 20;
    ec.log_reclaim_threshold = 0.375;

    if (kind == workload::Backend::kNoFtl) {
      storage::Scheme scheme{.n = 2, .m = 4, .v = 12};
      scheme.codec = static_cast<uint8_t>(codec);
      ftl::RegionConfig rc;
      rc.name = "sweep";
      rc.logical_pages = 256;
      rc.ipa_mode = ftl::IpaMode::kSlc;
      rc.delta_area_offset = Geo().page_size - scheme.AreaBytes();
      rc.manage_ecc = true;
      auto r = noftl.CreateRegion(rc);
      IPA_RETURN_NOT_OK(r.status());
      region = r.value();
      backend = noftl.region_device(region);
      db = std::make_unique<engine::Database>(&noftl, ec);
      auto t = db->CreateTablespace("sweep", region, scheme);
      IPA_RETURN_NOT_OK(t.status());
      ts = t.value();
    } else {
      if (kind == workload::Backend::kStreamFtl) {
        ftl::StreamFtlConfig sc;
        sc.name = "sweep";
        sc.logical_pages = 256;
        auto sf = ftl::StreamFtl::Create(&dev, sc);
        IPA_RETURN_NOT_OK(sf.status());
        streamftl = std::move(sf).value();
        backend = streamftl.get();
      } else {
        ftl::PageFtlConfig pc;
        pc.name = "sweep";
        pc.logical_pages = 256;
        pc.gc_policy = kind == workload::Backend::kPageFtlGreedy
                           ? ftl::GcPolicy::kGreedy
                           : ftl::GcPolicy::kCostBenefit;
        auto pf = ftl::PageFtl::Create(&dev, pc);
        IPA_RETURN_NOT_OK(pf.status());
        pageftl = std::move(pf).value();
        backend = pageftl.get();
      }
      db = std::make_unique<engine::Database>(nullptr, ec, &dev.clock());
      auto t = db->CreateTablespaceOn("sweep", backend, {});
      IPA_RETURN_NOT_OK(t.status());
      ts = t.value();
    }
    auto a = db->CreateTable("account", ts);
    IPA_RETURN_NOT_OK(a.status());
    accounts_tbl = a.value();
    auto h = db->CreateTable("history", ts);
    IPA_RETURN_NOT_OK(h.status());
    history_tbl = h.value();
    return Status::OK();
  }
};

struct WorkloadOutcome {
  Reference committed;
  uint64_t commits = 0;
  bool crashed = false;  ///< Workload ended in a power loss.
};

std::vector<uint8_t> AccountTuple(uint32_t id) {
  std::vector<uint8_t> t(kAccountBytes);
  for (uint32_t j = 0; j < kAccountBytes; j++) {
    t[j] = static_cast<uint8_t>(id * 7u + j * 13u + 1u);
  }
  return t;
}

/// Run the deterministic TPC-B-style workload to completion or until the
/// first power loss. The returned reference holds exactly the content a
/// correct post-recovery database must serve.
///
/// Commit protocol vs power loss: the commit record is forced to the (RAM-
/// modeled, write-atomic) log *before* Commit() issues any cleaner /
/// checkpoint flash I/O, so a Commit() that returns Unavailable is already
/// durable — the reference promotes it. A loss inside any other operation
/// leaves the transaction uncommitted and the reference unchanged.
Result<WorkloadOutcome> RunTpcb(Testbed& tb, uint32_t accounts, uint64_t txns,
                                uint64_t seed) {
  WorkloadOutcome w;
  Rng rng(seed);
  std::vector<uint64_t> rids;  // packed rids of committed accounts

  // -- Load phase: accounts in small committed batches.
  for (uint32_t base = 0; base < accounts; base += kLoadBatch) {
    engine::TxnId txn = tb.db->Begin();
    Reference local = w.committed;
    std::vector<uint64_t> batch;
    Status s = Status::OK();
    for (uint32_t i = base; i < std::min(accounts, base + kLoadBatch); i++) {
      std::vector<uint8_t> t = AccountTuple(i);
      auto rid = tb.db->Insert(txn, tb.accounts_tbl, t);
      if (!rid.ok()) {
        s = rid.status();
        break;
      }
      local[rid.value().Pack()] = std::move(t);
      batch.push_back(rid.value().Pack());
    }
    if (s.ok()) {
      Status cs = tb.db->Commit(txn);
      if (cs.ok() || cs.IsUnavailable()) {
        w.committed = std::move(local);
        w.commits++;
        rids.insert(rids.end(), batch.begin(), batch.end());
      }
      s = cs;
    }
    if (!s.ok()) {
      if (s.IsUnavailable()) {
        w.crashed = true;
        return w;
      }
      return s;
    }
  }

  // -- Transaction phase: 3 balance updates + 1 history insert per txn.
  for (uint64_t t = 0; t < txns; t++) {
    engine::TxnId txn = tb.db->Begin();
    Reference local = w.committed;
    Status s = Status::OK();
    for (int u = 0; u < 3 && s.ok(); u++) {
      uint64_t key = rids[rng.Uniform(rids.size())];
      uint8_t patch[4];
      for (uint8_t& b : patch) b = static_cast<uint8_t>(rng.Next());
      s = tb.db->Update(txn, engine::Rid::Unpack(key), kBalanceOffset, patch);
      if (s.ok()) {
        std::copy(patch, patch + sizeof(patch),
                  local[key].begin() + kBalanceOffset);
      }
    }
    if (s.ok()) {
      std::vector<uint8_t> h(kHistoryBytes);
      for (uint8_t& b : h) b = static_cast<uint8_t>(rng.Next());
      auto rid = tb.db->Insert(txn, tb.history_tbl, h);
      if (rid.ok()) {
        local[rid.value().Pack()] = std::move(h);
      } else {
        s = rid.status();
      }
    }
    bool abort = rng.Chance(0.1);  // drawn even on failure: keeps rng aligned
    if (s.ok()) {
      if (abort) {
        s = tb.db->Abort(txn);  // local discarded
      } else {
        Status cs = tb.db->Commit(txn);
        if (cs.ok() || cs.IsUnavailable()) {
          w.committed = std::move(local);
          w.commits++;
        }
        s = cs;
      }
    }
    if (s.ok() && (t + 1) % kCheckpointEvery == 0) {
      s = tb.db->Checkpoint();
    }
    if (!s.ok()) {
      if (s.IsUnavailable()) {
        w.crashed = true;
        return w;
      }
      return s;
    }
  }
  return w;
}

/// Scan both tables and compare against the reference byte-for-byte.
Status VerifyReference(Testbed& tb, const Reference& ref) {
  Reference found;
  for (engine::TableId tbl : {tb.accounts_tbl, tb.history_tbl}) {
    IPA_RETURN_NOT_OK(
        tb.db->Scan(tbl, [&](engine::Rid rid, std::span<const uint8_t> t) {
          found[rid.Pack()] = {t.begin(), t.end()};
          return true;
        }));
  }
  if (found.size() != ref.size()) {
    return Status::Corruption(
        "tuple count mismatch: scanned " + std::to_string(found.size()) +
        ", committed " + std::to_string(ref.size()));
  }
  for (const auto& [key, bytes] : ref) {
    auto it = found.find(key);
    if (it == found.end()) {
      return Status::Corruption("committed rid " + std::to_string(key) +
                                " lost");
    }
    if (it->second != bytes) {
      return Status::Corruption("content mismatch at rid " +
                                std::to_string(key));
    }
  }
  return Status::OK();
}

CrashSweepPoint RunPoint(const CrashSweepConfig& cfg, uint32_t accounts,
                         uint64_t txns, uint64_t inject_at) {
  CrashSweepPoint p;
  p.inject_at = inject_at;
  Testbed tb;
  Status open = tb.Open(cfg.backend, cfg.codec);
  if (!open.ok()) {
    p.error = "open: " + open.ToString();
    return p;
  }
  flash::PowerLossPolicy policy;
  policy.inject_at_op = inject_at;
  // Distinct torn-state shapes per point, reproducible from the sweep seed.
  policy.seed = cfg.seed ^ (0x9E3779B97F4A7C15ull * (inject_at + 1));
  tb.dev.SetPowerLossPolicy(policy);

  auto wr = RunTpcb(tb, accounts, txns, cfg.seed);
  if (!wr.ok()) {
    p.error = "workload: " + wr.status().ToString();
    return p;
  }
  const WorkloadOutcome& w = wr.value();
  p.crashed = w.crashed;
  p.commits = w.commits;

  // Crash, power-cycle, restart. Crash-free points (the armed op was
  // rejected by validation and never drew current) still go through a final
  // crash + restart, exercising plain volatile-state recovery.
  tb.db->SimulateCrash();
  tb.dev.PowerCycle();
  Status rs = tb.db->RecoverAfterPowerLoss();
  if (!rs.ok()) {
    p.error = "recover: " + rs.ToString();
    return p;
  }
  const ftl::RegionStats& st = tb.backend->stats();
  p.torn_bytes = st.torn_delta_bytes_dropped;
  p.quarantined = st.torn_pages_quarantined;
  if (st.ecc_uncorrectable != 0) {
    p.error = "uncorrectable ECC after recovery";
    return p;
  }
  Status v = VerifyReference(tb, w.committed);
  if (!v.ok()) {
    p.error = v.ToString();
    return p;
  }
  p.ok = true;
  return p;
}

void Append64(std::vector<uint8_t>& buf, uint64_t v) {
  for (int i = 0; i < 8; i++) buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

}  // namespace

uint32_t CrashSweepReport::Fingerprint() const {
  std::vector<uint8_t> buf;
  buf.reserve(points.size() * 34 + 8);
  Append64(buf, total_ops);
  for (const CrashSweepPoint& p : points) {
    Append64(buf, p.inject_at);
    buf.push_back(p.crashed ? 1 : 0);
    buf.push_back(p.ok ? 1 : 0);
    Append64(buf, p.commits);
    Append64(buf, p.torn_bytes);
    Append64(buf, p.quarantined);
  }
  return Crc32c(buf.data(), buf.size());
}

Result<CrashSweepReport> RunCrashSweep(const CrashSweepConfig& config) {
  CrashSweepConfig cfg = config;
  if (cfg.scale_with_env) {
    double scale = workload::BenchScale();
    cfg.txns = std::max<uint64_t>(
        8, static_cast<uint64_t>(static_cast<double>(cfg.txns) * scale));
  }

  // -- Trace run: count the mutating flash ops of the crash-free workload.
  CrashSweepReport report;
  {
    Testbed tb;
    IPA_RETURN_NOT_OK(tb.Open(cfg.backend, cfg.codec));
    tb.dev.SetPowerLossPolicy(flash::PowerLossPolicy{});  // armed never: counts ops
    auto wr = RunTpcb(tb, cfg.accounts, cfg.txns, cfg.seed);
    IPA_RETURN_NOT_OK(wr.status());
    if (wr.value().crashed) {
      return Status::Internal("trace run lost power without injection");
    }
    report.total_ops = tb.dev.mutation_ops();
  }
  if (report.total_ops == 0) {
    return Status::Internal("workload issued no mutating flash ops");
  }

  // -- Injection points: every op index, or an even subsample when capped.
  std::vector<uint64_t> points;
  if (cfg.max_points == 0 || cfg.max_points >= report.total_ops) {
    points.resize(report.total_ops);
    for (uint64_t i = 0; i < report.total_ops; i++) points[i] = i;
  } else {
    points.resize(cfg.max_points);
    for (uint64_t i = 0; i < cfg.max_points; i++) {
      points[i] = i * report.total_ops / cfg.max_points;
    }
  }

  // -- Replay: each point is a private stack; order-independent by design.
  report.points.resize(points.size());
  ParallelFor(
      points.size(),
      [&](size_t i) {
        report.points[i] = RunPoint(cfg, cfg.accounts, cfg.txns, points[i]);
      },
      cfg.jobs);

  for (const CrashSweepPoint& p : report.points) {
    if (p.crashed) report.crashes++;
    if (!p.ok) report.failures++;
  }
  return report;
}

}  // namespace ipa::bench
