// Figure 1: the write-amplification cascade of one small update.
//
// A ~10-byte tuple change (a) dirties the whole tuple on an NSM page (b,c),
// plus header/footer bytes (c), is written back as a whole 4KB page (d),
// multiplied by the file system (e; ext3 factor 3.4 from [24]), and finally
// by on-device GC/WL (f; measured on the emulator under random-update
// churn). The bench measures each stage on the real stack and prints the
// end-to-end amplification — then the same update under IPA.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/harness.h"
#include "core/write_policy.h"
#include "ftl/noftl.h"
#include "storage/delta_record.h"
#include "storage/slotted_page.h"
#include "workload/testbed.h"
#include "common/metrics.h"

namespace ipa::bench {
namespace {

constexpr uint32_t kPageSize = 4096;

/// Measure on-device write amplification (physical bytes programmed per host
/// byte written) under sustained random page updates, no IPA.
double MeasureDeviceAmplification() {
  workload::TestbedConfig tc;
  tc.db_pages = 2048;
  tc.buffer_fraction = 0.1;
  auto bed = workload::MakeTestbed(tc);
  if (!bed.ok()) return 0.0;
  auto& b = *bed.value();
  Rng rng(3);
  std::vector<uint8_t> page(kPageSize, 0);
  // Fill the logical space, then random-update far past capacity.
  for (ftl::Lba lba = 0; lba < 2048; lba++) {
    page[0] = static_cast<uint8_t>(lba);
    (void)b.noftl->WritePage(b.region, lba, page.data());
  }
  b.dev->ResetStats();
  uint64_t host_writes = 6000;
  for (uint64_t i = 0; i < host_writes; i++) {
    page[1] = static_cast<uint8_t>(i);
    (void)b.noftl->WritePage(b.region, rng.Uniform(2048), page.data());
  }
  const auto& ds = b.dev->stats();
  return static_cast<double>(ds.bytes_programmed) /
         static_cast<double>(host_writes * kPageSize);
}

int Run() {
  std::printf("Figure 1: write amplification caused by one small update.\n\n");

  // (a)-(c): the on-page footprint of a 10-byte tuple update.
  storage::Scheme scheme{};  // traditional NSM page, no delta area
  std::vector<uint8_t> base(kPageSize), cur;
  storage::SlottedPage page(base.data(), kPageSize);
  page.Initialize(4711, 1, scheme);
  std::vector<uint8_t> tuple(120, 0x20);
  auto slot = page.Insert(tuple);
  cur = base;
  storage::SlottedPage work(cur.data(), kPageSize);
  uint8_t patch[10];
  std::memset(patch, 0xAB, sizeof(patch));
  (void)work.UpdateInPlace(slot.value(), 16, patch);
  work.set_page_lsn(0x1234);  // metadata follows every update
  storage::PageDiff diff =
      storage::DiffPages(base.data(), cur.data(), kPageSize, kPageSize, kPageSize);

  double fs_factor = 3.4;  // ext3 measurement from [24] (Lu et al., FAST'13)
  double device_wa = MeasureDeviceAmplification();

  double net = static_cast<double>(diff.TotalBytes());
  TablePrinter t({"Stage", "Bytes / factor", "Cumulative amplification"});
  t.AddRow({"(a) net change (10B value + metadata)", Fmt(net, 0) + " B", "1x"});
  t.AddRow({"(b,c) tuple + header rewritten on page",
            std::to_string(tuple.size()) + " B tuple",
            Fmt(static_cast<double>(tuple.size()) / net, 1) + "x"});
  t.AddRow({"(d) whole DB page written", "4096 B",
            Fmt(4096.0 / net, 0) + "x"});
  t.AddRow({"(e) file-system writes (ext3, x3.4 [24])",
            Fmt(4096 * fs_factor, 0) + " B",
            Fmt(4096.0 * fs_factor / net, 0) + "x"});
  t.AddRow({"(f) flash GC/WL (measured on emulator)",
            "x" + Fmt(device_wa, 2) + " on-device",
            Fmt(4096.0 * fs_factor * device_wa / net, 0) + "x"});
  t.Print();

  // The same update under IPA.
  storage::Scheme ipa_scheme{.n = 2, .m = 10, .v = 12};
  std::vector<uint8_t> ibase(kPageSize);
  storage::SlottedPage ipage(ibase.data(), kPageSize);
  ipage.Initialize(4711, 1, ipa_scheme);
  auto islot = ipage.Insert(tuple);
  std::vector<uint8_t> icur = ibase;
  storage::SlottedPage iwork(icur.data(), kPageSize);
  (void)iwork.UpdateInPlace(islot.value(), 16, patch);
  iwork.set_page_lsn(0x1234);
  auto d = core::PlanEviction(ibase.data(), icur.data(), kPageSize, true, true);
  std::printf(
      "\nUnder IPA [2x10]: the same update becomes a %u-byte write_delta\n"
      "(%s), no file-system block rewrite, no page invalidation -> an\n"
      "amplification of %.1fx instead of %.0fx.\n",
      d.plan.write_len, core::WritePathName(d.path),
      static_cast<double>(d.plan.write_len) / net,
      4096.0 * fs_factor * device_wa / net);
  std::printf("\nPaper: a 10-byte update entails a 4-8KB in-place page write,\n"
              "causing a write amplification of 400-800x end to end.\n");
  return 0;
}

}  // namespace
}  // namespace ipa::bench

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  return ipa::bench::Run();
}
