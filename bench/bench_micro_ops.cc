// Micro-benchmarks (google-benchmark) for the core operations on the IPA
// hot paths: page diffing, delta-record encode/apply, slotted-page ops,
// ECC, emulated flash commands and B+tree point operations.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "core/write_policy.h"
#include "engine/btree.h"
#include "flash/ecc.h"
#include "flash/flash_array.h"
#include "storage/delta_record.h"
#include "storage/slotted_page.h"

namespace ipa {
namespace {

constexpr uint32_t kPageSize = 4096;

std::vector<uint8_t> PreparedPage(storage::Scheme s) {
  std::vector<uint8_t> buf(kPageSize);
  storage::SlottedPage page(buf.data(), kPageSize);
  page.Initialize(1, 1, s);
  std::vector<uint8_t> tuple(100, 0x20);
  while (page.HasRoomFor(100)) (void)page.Insert(tuple);
  return buf;
}

void BM_PageDiff_SmallChange(benchmark::State& state) {
  auto base = PreparedPage({.n = 2, .m = 3, .v = 12});
  auto cur = base;
  storage::SlottedPage page(cur.data(), kPageSize);
  uint8_t v = 0x42;
  (void)page.UpdateInPlace(3, 8, {&v, 1});
  for (auto _ : state) {
    auto diff = storage::DiffPages(base.data(), cur.data(), kPageSize, 16, 16);
    benchmark::DoNotOptimize(diff);
  }
}
BENCHMARK(BM_PageDiff_SmallChange);

// Guard benchmarks for the word-wise DiffPages scan: a clean page, a
// sparse-dirty page (the dominant flush shape per Table 1) and a dense-dirty
// page diffed exactly (the record_update_sizes path).

void BM_PageDiff_Clean(benchmark::State& state) {
  auto base = PreparedPage({.n = 2, .m = 3, .v = 12});
  auto cur = base;
  for (auto _ : state) {
    auto diff = storage::DiffPages(base.data(), cur.data(), kPageSize, 16, 16);
    benchmark::DoNotOptimize(diff);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_PageDiff_Clean);

void BM_PageDiff_SparseDirty(benchmark::State& state) {
  auto base = PreparedPage({.n = 4, .m = 10, .v = 12});
  auto cur = base;
  storage::SlottedPage page(cur.data(), kPageSize);
  // 8 single-byte tuple updates scattered across the page.
  for (uint16_t slot = 0; slot < 32; slot += 4) {
    uint8_t v = static_cast<uint8_t>(0x80 + slot);
    (void)page.UpdateInPlace(slot, 50, {&v, 1});
  }
  page.set_page_lsn(0x77);
  for (auto _ : state) {
    auto diff =
        storage::DiffPages(base.data(), cur.data(), kPageSize, 64, 64);
    benchmark::DoNotOptimize(diff);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_PageDiff_SparseDirty);

void BM_PageDiff_DenseDirty(benchmark::State& state) {
  auto base = PreparedPage({.n = 2, .m = 3, .v = 12});
  auto cur = base;
  storage::SlottedPage page(cur.data(), kPageSize);
  // Rewrite every fourth tuple wholesale: ~25% of the body differs. Exact
  // caps, as used by the update-size tracing path.
  std::vector<uint8_t> blob(100, 0xEE);
  for (uint16_t slot = 0; slot < page.slot_count(); slot += 4) {
    (void)page.UpdateInPlace(slot, 0, blob);
  }
  for (auto _ : state) {
    auto diff = storage::DiffPages(base.data(), cur.data(), kPageSize,
                                   kPageSize, kPageSize);
    benchmark::DoNotOptimize(diff);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_PageDiff_DenseDirty);

void BM_PlanEviction_CleanPage(benchmark::State& state) {
  auto base = PreparedPage({.n = 2, .m = 3, .v = 12});
  auto cur = base;
  for (auto _ : state) {
    auto d = core::PlanEviction(base.data(), cur.data(), kPageSize, true, true);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_PlanEviction_CleanPage);

void BM_PlanEviction_Append(benchmark::State& state) {
  auto base = PreparedPage({.n = 2, .m = 3, .v = 12});
  for (auto _ : state) {
    state.PauseTiming();
    auto cur = base;
    storage::SlottedPage page(cur.data(), kPageSize);
    uint8_t v = 0x42;
    (void)page.UpdateInPlace(3, 8, {&v, 1});
    page.set_page_lsn(7);
    state.ResumeTiming();
    auto d = core::PlanEviction(base.data(), cur.data(), kPageSize, true, true);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_PlanEviction_Append);

void BM_ApplyDeltaRecords(benchmark::State& state) {
  auto base = PreparedPage({.n = 3, .m = 10, .v = 12});
  auto cur = base;
  storage::SlottedPage page(cur.data(), kPageSize);
  uint8_t patch[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  (void)page.UpdateInPlace(0, 0, patch);
  auto diff = storage::DiffPages(base.data(), cur.data(), kPageSize, 64, 64);
  (void)storage::EncodeDeltaRecords(cur.data(), kPageSize, diff);
  for (auto _ : state) {
    auto replay = cur;
    uint32_t n = storage::ApplyDeltaRecords(replay.data(), kPageSize);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_ApplyDeltaRecords);

void BM_SlottedPageInsert(benchmark::State& state) {
  std::vector<uint8_t> buf(kPageSize);
  std::vector<uint8_t> tuple(64, 0x11);
  for (auto _ : state) {
    storage::SlottedPage page(buf.data(), kPageSize);
    page.Initialize(1, 1, {});
    for (int i = 0; i < 16; i++) {
      benchmark::DoNotOptimize(page.Insert(tuple));
    }
  }
}
BENCHMARK(BM_SlottedPageInsert);

void BM_EccEncodePage(benchmark::State& state) {
  std::vector<uint8_t> page(kPageSize);
  Rng rng(1);
  for (auto& b : page) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    auto ecc = flash::EccEncodeRegion(page.data(), page.size());
    benchmark::DoNotOptimize(ecc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_EccEncodePage);

void BM_FlashProgramRead(benchmark::State& state) {
  flash::Geometry g;
  g.page_size = kPageSize;
  g.blocks_per_chip = 64;
  flash::FlashArray dev(g, flash::SlcTiming());
  std::vector<uint8_t> page(kPageSize, 0x00);
  std::vector<uint8_t> out(kPageSize);
  uint64_t i = 0;
  uint64_t npages = g.total_pages();
  for (auto _ : state) {
    flash::Ppn ppn = i++ % npages;
    if (dev.page_state(ppn).program_count > 0) {
      (void)dev.EraseBlock(flash::BlockOf(g, ppn));
    }
    (void)dev.ProgramPage(ppn, page.data());
    (void)dev.ReadPage(ppn, out.data());
  }
}
BENCHMARK(BM_FlashProgramRead);

void BM_WriteDelta(benchmark::State& state) {
  flash::Geometry g;
  g.page_size = kPageSize;
  g.blocks_per_chip = 64;
  g.max_programs_per_page = 255;
  flash::FlashArray dev(g, flash::SlcTiming());
  std::vector<uint8_t> page(kPageSize, 0x00);
  std::memset(page.data() + 2048, 0xFF, 2048);
  (void)dev.ProgramPage(0, page.data());
  uint8_t delta[46];
  std::memset(delta, 0xA5, sizeof(delta));
  uint32_t off = 2048;
  for (auto _ : state) {
    if (off + sizeof(delta) > kPageSize) {
      (void)dev.EraseBlock(0);
      (void)dev.ProgramPage(0, page.data());
      off = 2048;
    }
    benchmark::DoNotOptimize(dev.ProgramDelta(0, off, delta, sizeof(delta)));
    off += sizeof(delta);
  }
}
BENCHMARK(BM_WriteDelta);

void BM_BtreeLookup(benchmark::State& state) {
  flash::Geometry g;
  g.page_size = kPageSize;
  g.blocks_per_chip = 256;
  flash::FlashArray dev(g, flash::SlcTiming());
  ftl::NoFtl noftl(&dev);
  ftl::RegionConfig rc;
  rc.logical_pages = 4096;
  auto region = noftl.CreateRegion(rc);
  engine::EngineConfig ec;
  ec.buffer_pages = 1024;
  engine::Database db(&noftl, ec);
  auto ts = db.CreateTablespace("t", region.value(), {});
  auto tree = engine::Btree::Create(&db, "idx", ts.value());
  for (uint64_t k = 0; k < 20000; k++) (void)tree.value().Insert(k, k);
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.value().Lookup(k++ % 20000));
  }
}
BENCHMARK(BM_BtreeLookup);

}  // namespace
}  // namespace ipa

BENCHMARK_MAIN();
