// Figure 9: CDF of update-sizes in TPC-C (net data), non-eager eviction.
// Update accumulation in large buffers shifts the distribution right.

#include <cstdio>

#include "bench/cdf_common.h"
#include "common/metrics.h"

int main(int argc, char** argv) {
  ipa::metrics::InitFromArgs(argc, argv);
  using namespace ipa::bench;
  std::printf(
      "Figure 9: CDF of update-sizes in TPC-C in net data "
      "(non-eager eviction) [%%].\n\n");
  return PrintUpdateSizeCdf(Wl::kTpcc, {0.10, 0.20, 0.50, 0.75, 0.90},
                            /*eager=*/false, /*gross=*/false, 4096,
                            {.n = 2, .m = 3, .v = 12});
}
