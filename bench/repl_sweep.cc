#include "bench/repl_sweep.h"

#include <algorithm>
#include <map>
#include <memory>
#include <span>

#include "bench/parallel_runner.h"
#include "common/crc32.h"
#include "common/random.h"
#include "engine/database.h"
#include "flash/timing.h"
#include "repl/node.h"
#include "workload/testbed.h"

namespace ipa::bench {

namespace {

// Same TPC-B-style shape as bench/crash_sweep.cc: fixed-size account tuples
// taking 4-byte balance patches (delta-record shipments), append-only
// history tuples (full-image shipments), ~10% aborts (abort-mark frames).
constexpr uint32_t kAccountBytes = 100;
constexpr uint32_t kBalanceOffset = 12;
constexpr uint32_t kHistoryBytes = 20;
constexpr uint32_t kLoadBatch = 8;
constexpr uint64_t kCheckpointEvery = 16;

/// Committed primary content: rid.Pack() -> tuple bytes.
using Reference = std::map<uint64_t, std::vector<uint8_t>>;

/// What a replay injects. Exactly one of the two drills is active.
struct Drill {
  bool ship = false;      ///< true: shipment drill at `at`; false: replica cut.
  uint64_t at = 0;        ///< Shipment ordinal, or replica mutating-op index.
  uint64_t torn_seed = 0; ///< Shapes the torn prefix length (ship drills).
  bool armed = true;      ///< false for the trace run (no injection at all).
};

/// One node: private simulated flash + NoFtl + engine + ReplNode.
struct Node {
  flash::FlashArray dev;
  ftl::NoFtl noftl;
  ftl::FtlBackend* backend = nullptr;
  std::unique_ptr<engine::Database> db;
  ftl::RegionId region = 0;
  engine::TablespaceId ts = 0;
  engine::TableId accounts_tbl = 0;
  engine::TableId history_tbl = 0;
  std::unique_ptr<repl::ReplNode> repl;  // after db: hooks detach first

  static flash::Geometry Geo() {
    flash::Geometry g;
    g.channels = 2;
    g.chips_per_channel = 2;
    g.blocks_per_chip = 48;
    g.pages_per_block = 16;
    g.page_size = 2048;
    return g;
  }

  Node() : dev(Geo(), flash::SlcTiming()), noftl(&dev) {}

  Status Open(repl::WriterId writer, bool writable) {
    engine::EngineConfig ec;
    ec.page_size = Geo().page_size;
    ec.buffer_pages = 12;
    ec.log_capacity_bytes = 1 << 20;
    ec.log_reclaim_threshold = 0.375;

    storage::Scheme scheme{.n = 2, .m = 4, .v = 12};
    ftl::RegionConfig rc;
    rc.name = "replsweep";
    rc.logical_pages = 256;
    rc.ipa_mode = ftl::IpaMode::kSlc;
    rc.delta_area_offset = Geo().page_size - scheme.AreaBytes();
    rc.manage_ecc = true;
    auto r = noftl.CreateRegion(rc);
    IPA_RETURN_NOT_OK(r.status());
    region = r.value();
    backend = noftl.region_device(region);
    db = std::make_unique<engine::Database>(&noftl, ec);
    auto t = db->CreateTablespace("replsweep", region, scheme);
    IPA_RETURN_NOT_OK(t.status());
    ts = t.value();
    auto a = db->CreateTable("account", ts);
    IPA_RETURN_NOT_OK(a.status());
    accounts_tbl = a.value();
    auto h = db->CreateTable("history", ts);
    IPA_RETURN_NOT_OK(h.status());
    history_tbl = h.value();
    auto n = repl::ReplNode::Attach(
        db.get(), ts, {accounts_tbl, history_tbl},
        repl::ReplConfig{.writer = writer, .writable = writable});
    IPA_RETURN_NOT_OK(n.status());
    repl = std::move(n).value();
    return Status::OK();
  }
};

/// The replicated pair plus the "network": shipping state shared between the
/// workload loop and the drill machinery.
struct Pair {
  Node primary;
  Node replica;
  uint64_t shipments = 0;       ///< Next shipment ordinal.
  uint64_t frames_accepted = 0; ///< Frames the replica took (incl. dups).
  bool ship_fired = false;      ///< The shipment drill engaged.
  bool replica_cut_fired = false;
  bool need_catchup = false;    ///< Primary crashed; in-flight frames lost.

  Status Open() {
    IPA_RETURN_NOT_OK(primary.Open(1, /*writable=*/true));
    return replica.Open(2, /*writable=*/false);
  }
};

std::vector<uint8_t> AccountTuple(uint32_t id) {
  std::vector<uint8_t> t(kAccountBytes);
  for (uint32_t j = 0; j < kAccountBytes; j++) {
    t[j] = static_cast<uint8_t>(id * 7u + j * 13u + 1u);
  }
  return t;
}

/// Replica crash protocol: power-cycle, engine recovery, then rebuild the
/// replication state from the durable meta/map tables. Disarms the policy so
/// the sweep's single cut cannot re-fire during the remainder of the replay.
Status RecoverReplica(Pair& pr) {
  pr.replica_cut_fired = true;
  pr.replica.db->SimulateCrash();
  pr.replica.dev.PowerCycle();
  pr.replica.dev.SetPowerLossPolicy(flash::PowerLossPolicy{});
  IPA_RETURN_NOT_OK(pr.replica.db->RecoverAfterPowerLoss());
  return pr.replica.repl->RecoverReplState();
}

/// Snapshot catch-up: ship the primary's full state. The replica may lose
/// power mid-snapshot (the armed cut can land inside the big apply
/// transaction) — recover and re-apply; the whole stream is one transaction,
/// so the retry starts from nothing.
Status RunCatchup(Pair& pr) {
  auto snap = pr.primary.repl->BuildSnapshot();
  IPA_RETURN_NOT_OK(snap.status());
  for (int attempt = 0; attempt < 4; attempt++) {
    Status s = pr.replica.repl->ApplySnapshot(snap.value());
    if (s.IsUnavailable() && !pr.replica.dev.powered_on()) {
      IPA_RETURN_NOT_OK(RecoverReplica(pr));
      continue;
    }
    if (s.IsOutOfSpace()) {
      IPA_RETURN_NOT_OK(pr.replica.db->Checkpoint());
      continue;
    }
    IPA_RETURN_NOT_OK(s);
    pr.need_catchup = false;
    return Status::OK();
  }
  return Status::Internal("snapshot catch-up did not settle");
}

/// Deliver one frame, running the drill when its ordinal comes up.
///
/// Shipment drill: the frame first arrives torn (any proper prefix must be
/// rejected with zero state change), then the PRIMARY loses power at the
/// boundary — this frame and everything still queued is lost in flight; the
/// primary recovers and the replica heals later via snapshot catch-up.
///
/// Replica cut: the armed power loss fires inside ApplyFrame's transaction;
/// the engine reports Unavailable, recovery rolls the half-applied frame
/// back, and re-delivering the SAME frame must succeed (idempotence).
Status ShipFrame(Pair& pr, const std::vector<uint8_t>& wire,
                 const Drill& drill) {
  uint64_t ordinal = pr.shipments++;
  if (drill.armed && drill.ship && !pr.ship_fired && ordinal == drill.at) {
    pr.ship_fired = true;
    Rng rng(drill.torn_seed);
    size_t len = 1 + rng.Next() % (wire.size() - 1);
    auto torn = pr.replica.repl->ApplyFrame(std::span(wire.data(), len));
    IPA_RETURN_NOT_OK(torn.status());
    if (torn.value() != repl::ReplNode::Apply::kRejectedTorn) {
      return Status::Corruption("torn shipment was not rejected");
    }
    pr.primary.db->SimulateCrash();
    pr.primary.dev.PowerCycle();
    IPA_RETURN_NOT_OK(pr.primary.db->RecoverAfterPowerLoss());
    IPA_RETURN_NOT_OK(pr.primary.repl->RecoverReplState());
    pr.need_catchup = true;
    return Status::OK();  // outbound was cleared; the drain loop ends
  }
  for (int attempt = 0; attempt < 6; attempt++) {
    auto r = pr.replica.repl->ApplyFrame(wire);
    if (!r.ok()) {
      if (r.status().IsUnavailable() && !pr.replica.dev.powered_on()) {
        IPA_RETURN_NOT_OK(RecoverReplica(pr));
        continue;
      }
      if (r.status().IsOutOfSpace()) {
        IPA_RETURN_NOT_OK(pr.replica.db->Checkpoint());
        continue;
      }
      return r.status();
    }
    switch (r.value()) {
      case repl::ReplNode::Apply::kApplied:
      case repl::ReplNode::Apply::kDuplicate:
        pr.frames_accepted++;
        return Status::OK();
      case repl::ReplNode::Apply::kEcho:
        return Status::Corruption("replica saw its own frame echoed");
      case repl::ReplNode::Apply::kNeedCatchup:
        IPA_RETURN_NOT_OK(RunCatchup(pr));
        continue;  // retry: the snapshot covers it, expect kDuplicate
      case repl::ReplNode::Apply::kRejectedTorn:
        return Status::Corruption("intact frame rejected as torn");
    }
  }
  return Status::Internal("frame delivery did not settle");
}

/// Drain the primary's outbound queue through ShipFrame.
Status ShipAll(Pair& pr, const Drill& drill) {
  for (;;) {
    std::vector<uint8_t> w = pr.primary.repl->PopOutbound();
    if (w.empty()) return Status::OK();
    IPA_RETURN_NOT_OK(ShipFrame(pr, w, drill));
  }
}

struct WorkloadOutcome {
  Reference committed;
  uint64_t commits = 0;
};

/// The replicated TPC-B workload: every commit/abort boundary immediately
/// ships the queued frames. The primary only loses power when the shipment
/// drill says so (handled inside ShipFrame, between transactions), so the
/// reference is exact: every commit that returned OK (or Unavailable — the
/// commit record is forced before maintenance I/O) is in it.
Result<WorkloadOutcome> RunReplTpcb(Pair& pr, uint32_t accounts,
                                    uint64_t txns, uint64_t seed,
                                    const Drill& drill) {
  WorkloadOutcome w;
  Rng rng(seed);
  std::vector<uint64_t> rids;

  engine::Database& db = *pr.primary.db;

  // -- Load phase.
  for (uint32_t base = 0; base < accounts; base += kLoadBatch) {
    engine::TxnId txn = db.Begin();
    Reference local = w.committed;
    std::vector<uint64_t> batch;
    Status s = Status::OK();
    for (uint32_t i = base; i < std::min(accounts, base + kLoadBatch); i++) {
      std::vector<uint8_t> t = AccountTuple(i);
      auto rid = db.Insert(txn, pr.primary.accounts_tbl, t);
      if (!rid.ok()) {
        s = rid.status();
        break;
      }
      local[rid.value().Pack()] = std::move(t);
      batch.push_back(rid.value().Pack());
    }
    if (s.ok()) {
      s = db.Commit(txn);
      if (s.ok() || s.IsUnavailable()) {
        w.committed = std::move(local);
        w.commits++;
        rids.insert(rids.end(), batch.begin(), batch.end());
        s = Status::OK();
      }
    }
    IPA_RETURN_NOT_OK(s);
    IPA_RETURN_NOT_OK(ShipAll(pr, drill));
  }

  // -- Transaction phase.
  for (uint64_t t = 0; t < txns; t++) {
    engine::TxnId txn = db.Begin();
    Reference local = w.committed;
    Status s = Status::OK();
    for (int u = 0; u < 3 && s.ok(); u++) {
      uint64_t key = rids[rng.Uniform(rids.size())];
      uint8_t patch[4];
      for (uint8_t& b : patch) b = static_cast<uint8_t>(rng.Next());
      s = db.Update(txn, engine::Rid::Unpack(key), kBalanceOffset, patch);
      if (s.ok()) {
        std::copy(patch, patch + sizeof(patch),
                  local[key].begin() + kBalanceOffset);
      }
    }
    if (s.ok()) {
      std::vector<uint8_t> h(kHistoryBytes);
      for (uint8_t& b : h) b = static_cast<uint8_t>(rng.Next());
      auto rid = db.Insert(txn, pr.primary.history_tbl, h);
      if (rid.ok()) {
        local[rid.value().Pack()] = std::move(h);
      } else {
        s = rid.status();
      }
    }
    bool abort = rng.Chance(0.1);  // drawn even on failure: keeps rng aligned
    if (s.ok()) {
      if (abort) {
        s = db.Abort(txn);  // ships an abort-mark frame
      } else {
        s = db.Commit(txn);
        if (s.ok() || s.IsUnavailable()) {
          w.committed = std::move(local);
          w.commits++;
          s = Status::OK();
        }
      }
    }
    IPA_RETURN_NOT_OK(s);
    IPA_RETURN_NOT_OK(ShipAll(pr, drill));
    if ((t + 1) % kCheckpointEvery == 0) {
      IPA_RETURN_NOT_OK(db.Checkpoint());
    }
  }
  return w;
}

/// Primary scan must equal the reference byte-for-byte.
Status VerifyPrimary(Pair& pr, const Reference& ref) {
  Reference found;
  for (engine::TableId tbl :
       {pr.primary.accounts_tbl, pr.primary.history_tbl}) {
    IPA_RETURN_NOT_OK(pr.primary.db->Scan(
        tbl, [&](engine::Rid rid, std::span<const uint8_t> t) {
          found[rid.Pack()] = {t.begin(), t.end()};
          return true;
        }));
  }
  if (found != ref) {
    return Status::Corruption("primary diverged from reference: scanned " +
                              std::to_string(found.size()) + " tuples vs " +
                              std::to_string(ref.size()) + " committed");
  }
  return Status::OK();
}

/// Replica convergence oracle: logical content (origin identity -> bytes)
/// must be byte-identical on both nodes, and the replica's view re-keyed by
/// origin rid must equal the reference.
Status VerifyConverged(Pair& pr, const Reference& ref) {
  repl::ReplNode::LogicalMap pm, rm;
  IPA_RETURN_NOT_OK(pr.primary.repl->ScanLogical(&pm));
  IPA_RETURN_NOT_OK(pr.replica.repl->ScanLogical(&rm));
  if (pm != rm) {
    return Status::Corruption(
        "replica diverged: primary has " + std::to_string(pm.size()) +
        " logical tuples, replica has " + std::to_string(rm.size()));
  }
  Reference rebuilt;
  for (const auto& [key, bytes] : rm) {
    if (key.first != 1) {
      return Status::Corruption("replica holds tuple from unknown writer " +
                                std::to_string(key.first));
    }
    rebuilt[key.second] = bytes;
  }
  if (rebuilt != ref) {
    return Status::Corruption("replica logical content != reference (" +
                              std::to_string(rebuilt.size()) + " vs " +
                              std::to_string(ref.size()) + " tuples)");
  }
  return Status::OK();
}

/// One end-to-end pass: open the pair, optionally arm the drill, run the
/// workload, final-sync, verify both nodes.
Status RunPass(const ReplSweepConfig& cfg, const Drill& drill, Pair& pr,
               WorkloadOutcome* out) {
  IPA_RETURN_NOT_OK(pr.Open());
  flash::PowerLossPolicy policy;  // default: disarmed, but resets op counter
  if (drill.armed && !drill.ship) {
    policy.inject_at_op = drill.at;
    // Distinct torn-state shapes per point, reproducible from the seed.
    policy.seed = cfg.seed ^ (0x9E3779B97F4A7C15ull * (drill.at + 1));
  }
  pr.replica.dev.SetPowerLossPolicy(policy);

  auto wr = RunReplTpcb(pr, cfg.accounts, cfg.txns, cfg.seed, drill);
  IPA_RETURN_NOT_OK(wr.status());
  *out = std::move(wr).value();

  // Final sync: drain stragglers; if the primary crashed at the drill
  // boundary the lost tail heals through one snapshot catch-up.
  IPA_RETURN_NOT_OK(ShipAll(pr, drill));
  if (pr.need_catchup) IPA_RETURN_NOT_OK(RunCatchup(pr));

  IPA_RETURN_NOT_OK(VerifyPrimary(pr, out->committed));
  return VerifyConverged(pr, out->committed);
}

ReplSweepPoint RunPoint(const ReplSweepConfig& cfg, const Drill& drill) {
  ReplSweepPoint p;
  p.shipment = drill.ship;
  p.index = drill.at;
  Pair pr;
  WorkloadOutcome w;
  Status s = RunPass(cfg, drill, pr, &w);
  p.fired = drill.ship ? pr.ship_fired : pr.replica_cut_fired;
  p.commits = w.commits;
  p.frames = pr.frames_accepted;
  if (!s.ok()) {
    p.error = s.ToString();
    return p;
  }
  p.ok = true;
  return p;
}

void Append64(std::vector<uint8_t>& buf, uint64_t v) {
  for (int i = 0; i < 8; i++) buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

}  // namespace

uint32_t ReplSweepReport::Fingerprint() const {
  std::vector<uint8_t> buf;
  buf.reserve(points.size() * 26 + 16);
  Append64(buf, apply_ops);
  Append64(buf, shipments);
  for (const ReplSweepPoint& p : points) {
    buf.push_back(p.shipment ? 1 : 0);
    Append64(buf, p.index);
    buf.push_back(p.fired ? 1 : 0);
    buf.push_back(p.ok ? 1 : 0);
    Append64(buf, p.commits);
    Append64(buf, p.frames);
  }
  return Crc32c(buf.data(), buf.size());
}

Result<ReplSweepReport> RunReplCrashSweep(const ReplSweepConfig& config) {
  ReplSweepConfig cfg = config;
  if (cfg.scale_with_env) {
    double scale = workload::BenchScale();
    cfg.txns = std::max<uint64_t>(
        8, static_cast<uint64_t>(static_cast<double>(cfg.txns) * scale));
  }

  // -- Trace run: count the replica's mutating flash ops and the shipments.
  ReplSweepReport report;
  {
    Pair pr;
    WorkloadOutcome w;
    Drill none;
    none.armed = false;
    Status s = RunPass(cfg, none, pr, &w);
    if (!s.ok()) {
      return Status::Internal("trace run failed: " + s.ToString());
    }
    report.apply_ops = pr.replica.dev.mutation_ops();
    report.shipments = pr.shipments;
  }
  if (report.apply_ops == 0 || report.shipments == 0) {
    return Status::Internal("trace run shipped nothing");
  }

  // -- Point list: every replica apply op, then every shipment boundary;
  // evenly subsampled (preserving the mix) when capped.
  std::vector<Drill> drills;
  uint64_t total = report.apply_ops + report.shipments;
  uint64_t want = (cfg.max_points == 0 || cfg.max_points >= total)
                      ? total
                      : cfg.max_points;
  drills.reserve(want);
  for (uint64_t i = 0; i < want; i++) {
    uint64_t pick = i * total / want;
    Drill d;
    if (pick < report.apply_ops) {
      d.ship = false;
      d.at = pick;
    } else {
      d.ship = true;
      d.at = pick - report.apply_ops;
      d.torn_seed = cfg.seed ^ (0xC2B2AE3D27D4EB4Full * (d.at + 1));
    }
    drills.push_back(d);
  }

  // -- Replay: each point is a fully private pair; order-independent.
  report.points.resize(drills.size());
  ParallelFor(
      drills.size(),
      [&](size_t i) { report.points[i] = RunPoint(cfg, drills[i]); },
      cfg.jobs);

  for (const ReplSweepPoint& p : report.points) {
    if (p.fired) report.fired++;
    if (!p.ok) report.failures++;
  }
  return report;
}

}  // namespace ipa::bench
