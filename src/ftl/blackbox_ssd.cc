#include "ftl/blackbox_ssd.h"

namespace ipa::ftl {

BlackboxSsd::BlackboxSsd(const BlackboxSsdConfig& config) : config_(config) {
  flash::Geometry g;
  g.cell_type = config_.cell_type;
  g.page_size = config_.page_size;
  g.oob_size = 128;
  g.channels = 2;
  g.chips_per_channel = 4;
  g.pages_per_block = 64;
  g.max_programs_per_page =
      config_.cell_type == flash::CellType::kMlc ? 4 : 8;
  uint64_t physical_pages = static_cast<uint64_t>(
      static_cast<double>(config_.logical_pages) *
      (1.0 + config_.over_provisioning) * 1.05);
  g.blocks_per_chip = static_cast<uint32_t>(
      physical_pages / g.pages_per_block / g.total_chips() +
      config_.capacity_slack_blocks);
  dev_ = std::make_unique<flash::FlashArray>(g, flash::TimingFor(g.cell_type));
  ftl_ = std::make_unique<NoFtl>(dev_.get());

  // The internal region is formatted immediately for plain SSDs; devices
  // with the write_delta extension defer until the scheme hint arrives (the
  // controller's ECC layout depends on it).
  if (!config_.write_delta_extension) {
    RegionConfig rc;
    rc.name = "ssd-internal";
    rc.logical_pages = config_.logical_pages;
    rc.over_provisioning = config_.over_provisioning;
    rc.manage_ecc = true;  // controller-side ECC
    auto r = ftl_->CreateRegion(rc);
    region_ = r.ok() ? r.value() : 0;
    hint_set_ = true;  // nothing more to configure
  }
}

Status BlackboxSsd::SetSchemeHint(uint32_t delta_area_offset) {
  if (!config_.write_delta_extension) {
    return Status::NotSupported("device has no write_delta extension");
  }
  if (any_write_) {
    return Status::InvalidArgument(
        "scheme hint must precede all writes (ECC layout is format-time)");
  }
  if (hint_set_) {
    return Status::InvalidArgument("scheme hint already set");
  }
  if (delta_area_offset == 0 || delta_area_offset >= config_.page_size) {
    return Status::InvalidArgument("bad delta_area_offset");
  }
  RegionConfig rc;
  rc.name = "ssd-internal";
  rc.logical_pages = config_.logical_pages;
  rc.over_provisioning = config_.over_provisioning;
  rc.manage_ecc = true;  // controller splits ECC_initial / ECC_delta_i
  rc.ipa_mode = config_.cell_type == flash::CellType::kMlc ? IpaMode::kOddMlc
                                                           : IpaMode::kSlc;
  rc.delta_area_offset = delta_area_offset;
  IPA_ASSIGN_OR_RETURN(region_, ftl_->CreateRegion(rc));
  delta_area_offset_ = delta_area_offset;
  hint_set_ = true;
  return Status::OK();
}

void BlackboxSsd::InterfaceDelay(bool sync) {
  // Fixed per-command host-interface cost. Background (async) submissions
  // are pipelined by the host and amortize the link latency.
  if (sync) dev_->clock().Advance(config_.interface_latency_us);
}

Status BlackboxSsd::ReadPage(Lba lba, uint8_t* out) {
  if (!hint_set_) {
    return Status::InvalidArgument("device not formatted (scheme hint pending)");
  }
  InterfaceDelay(true);
  return ftl_->ReadPage(region_, lba, out);
}

Status BlackboxSsd::WritePage(Lba lba, const uint8_t* data, bool sync) {
  if (!hint_set_) {
    return Status::InvalidArgument("device not formatted (scheme hint pending)");
  }
  any_write_ = true;
  InterfaceDelay(sync);
  return ftl_->WritePage(region_, lba, data, sync);
}

Status BlackboxSsd::WriteDelta(Lba lba, uint32_t offset, const uint8_t* bytes,
                               uint32_t len, bool sync) {
  if (!config_.write_delta_extension) {
    return Status::NotSupported("device has no write_delta extension");
  }
  if (!hint_set_) {
    return Status::NotSupported("write_delta before scheme hint");
  }
  if (offset < delta_area_offset_) {
    // The controller protects the ECC_initial-covered body region.
    return Status::InvalidArgument("delta write into the ECC-covered body");
  }
  any_write_ = true;
  InterfaceDelay(sync);
  return ftl_->WriteDelta(region_, lba, offset, bytes, len, sync);
}

bool BlackboxSsd::DeltaWritePossible(Lba lba) const {
  if (!config_.write_delta_extension || !hint_set_) return false;
  return ftl_->DeltaWritePossible(region_, lba);
}

bool BlackboxSsd::IsMapped(Lba lba) const {
  return hint_set_ && ftl_->IsMapped(region_, lba);
}

Status BlackboxSsd::Trim(Lba lba) {
  if (!hint_set_) {
    return Status::InvalidArgument("device not formatted (scheme hint pending)");
  }
  InterfaceDelay(true);
  return ftl_->Trim(region_, lba);
}

Status BlackboxSsd::Mount(MountScanReport* report) {
  if (!hint_set_) {
    // A never-formatted device has nothing to scan.
    if (report) *report = MountScanReport{};
    return Status::OK();
  }
  InterfaceDelay(true);
  return ftl_->MountScan(region_, report);
}

}  // namespace ipa::ftl
