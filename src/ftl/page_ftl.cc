#include "ftl/page_ftl.h"

#include <algorithm>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/metrics.h"

namespace ipa::ftl {

namespace {
/// OOB reverse-map entry layout (little-endian):
///   [0,2)   magic 0x50F7 ("PF")
///   [2,10)  lba
///   [10,18) sequence number (monotonic per FTL instance and across mounts)
///   [18,22) CRC32-C of the page body as written
///   [22,26) CRC32-C of bytes [0,22) — rejects torn / erased entries
constexpr uint16_t kOobMagic = 0x50F7;
constexpr uint32_t kEntryCrcOffset = 22;

/// Process-wide page-FTL counters, summed over every PageFtl instance
/// (per-instance splits stay in RegionStats).
struct PageFtlCounters {
  metrics::Counter host_reads{"pageftl.host_reads"};
  metrics::Counter host_page_writes{"pageftl.host_page_writes"};
  metrics::Counter gc_page_migrations{"pageftl.gc.page_migrations"};
  metrics::Counter gc_erases{"pageftl.gc.erases"};
  metrics::Counter trims{"pageftl.trims"};
  metrics::Counter map_updates{"pageftl.map_updates"};
  metrics::Counter mount_pages_scanned{"pageftl.mount.pages_scanned"};
  metrics::Counter mount_torn_quarantined{
      "pageftl.mount.torn_pages_quarantined"};
  metrics::Histogram read_latency{"pageftl.read_latency_us"};
  metrics::Histogram write_latency{"pageftl.write_latency_us"};
};

PageFtlCounters& Pm() {
  static PageFtlCounters counters;
  return counters;
}
}  // namespace

const char* GcPolicyName(GcPolicy p) {
  switch (p) {
    case GcPolicy::kGreedy: return "greedy";
    case GcPolicy::kCostBenefit: return "cost-benefit";
  }
  return "?";
}

PageFtl::PageFtl(flash::FlashArray* device, const PageFtlConfig& config)
    : device_(device), config_(config) {}

Result<std::unique_ptr<PageFtl>> PageFtl::Create(flash::FlashArray* device,
                                                 const PageFtlConfig& config) {
  const auto& g = device->geometry();
  if (config.logical_pages == 0) {
    return Status::InvalidArgument("page FTL needs logical_pages > 0");
  }
  if (g.oob_size < kOobEntryBytes) {
    return Status::InvalidArgument("OOB too small for a reverse-map entry");
  }
  if (config.gc_free_block_threshold == 0) {
    return Status::InvalidArgument("gc_free_block_threshold must be >= 1");
  }
  std::unique_ptr<PageFtl> ftl(new PageFtl(device, config));
  IPA_RETURN_NOT_OK(ftl->ClaimBlocks());
  return ftl;
}

Status PageFtl::ClaimBlocks() {
  const auto& g = device_->geometry();
  uint64_t physical_pages_needed = static_cast<uint64_t>(
      static_cast<double>(config_.logical_pages) *
      (1.0 + config_.over_provisioning));
  uint64_t blocks_needed =
      (physical_pages_needed + g.pages_per_block - 1) / g.pages_per_block +
      config_.gc_free_block_threshold + 1;
  // Small FTLs striped over many chips need enough blocks that GC always has
  // both victims and migration headroom.
  blocks_needed = std::max<uint64_t>(
      blocks_needed, 2ull * g.total_chips() + config_.gc_free_block_threshold);
  uint64_t per_chip = (blocks_needed + g.total_chips() - 1) / g.total_chips();
  if (per_chip > g.blocks_per_chip) {
    return Status::OutOfSpace("device too small for page FTL '" +
                              config_.name + "'");
  }

  // Claim the first `per_chip` blocks of every chip (the FTL owns the whole
  // logical address space; striping keeps chip parallelism).
  pbn_to_idx_.assign(g.total_blocks(), UINT32_MAX);
  for (uint32_t chip = 0; chip < g.total_chips(); chip++) {
    for (uint64_t b = 0; b < per_chip; b++) {
      BlockInfo bi;
      bi.pbn = static_cast<flash::Pbn>(chip) * g.blocks_per_chip + b;
      uint32_t idx = static_cast<uint32_t>(blocks_.size());
      pbn_to_idx_[bi.pbn] = idx;
      blocks_.push_back(bi);
      free_blocks_.push_back(idx);
    }
  }
  active_by_chip_.assign(g.total_chips(), -1);
  map_.assign(config_.logical_pages, flash::kInvalidPpn);
  rmap_.assign(blocks_.size() * static_cast<size_t>(g.pages_per_block),
               kInvalidLba);
  return Status::OK();
}

uint32_t PageFtl::BlockIndexOf(flash::Ppn ppn) const {
  flash::Pbn pbn = flash::BlockOf(device_->geometry(), ppn);
  return pbn < pbn_to_idx_.size() ? pbn_to_idx_[pbn] : UINT32_MAX;
}

void PageFtl::Invalidate(flash::Ppn ppn) {
  const auto& g = device_->geometry();
  uint32_t bidx = BlockIndexOf(ppn);
  if (bidx == UINT32_MAX) return;
  uint32_t page = static_cast<uint32_t>(ppn % g.pages_per_block);
  size_t ridx = static_cast<size_t>(bidx) * g.pages_per_block + page;
  if (rmap_[ridx] != kInvalidLba) {
    rmap_[ridx] = kInvalidLba;
    if (blocks_[bidx].valid > 0) blocks_[bidx].valid--;
  }
}

Status PageFtl::AllocatePage(flash::Ppn* ppn, uint32_t* block_idx,
                             bool for_gc) {
  const auto& g = device_->geometry();
  for (uint32_t attempt = 0; attempt < g.total_chips(); attempt++) {
    uint32_t chip = rr_cursor_ % g.total_chips();
    rr_cursor_++;
    int32_t active = active_by_chip_[chip];
    if (active < 0 || blocks_[active].next_page >= g.pages_per_block) {
      if (active >= 0) blocks_[active].is_active = false;
      // Promote the least-worn free block on this chip to active. Host
      // allocations must leave at least one free block for GC migrations.
      if (!for_gc && free_blocks_.size() <= 1) {
        active_by_chip_[chip] = -1;
        continue;
      }
      int best = -1;
      uint32_t best_wear = UINT32_MAX;
      for (size_t i = 0; i < free_blocks_.size(); i++) {
        uint32_t bi = free_blocks_[i];
        if (blocks_[bi].pbn / g.blocks_per_chip != chip) continue;
        uint32_t wear = device_->EraseCount(blocks_[bi].pbn);
        if (wear < best_wear) {
          best_wear = wear;
          best = static_cast<int>(i);
        }
      }
      if (best < 0) {
        active_by_chip_[chip] = -1;
        continue;  // no free block on this chip; try the next chip
      }
      uint32_t bi = free_blocks_[best];
      if (blocks_[bi].needs_erase) {
        // Post-mount block of unknown physical state (a torn program can
        // leave charge on content-erased cells): erase before first use. A
        // power loss here leaves the block free and the erase re-runs after
        // the next Mount().
        IPA_RETURN_NOT_OK(device_->EraseBlock(blocks_[bi].pbn, nullptr, false));
        blocks_[bi].needs_erase = false;
        stats_.gc_erases++;
        Pm().gc_erases.Inc();
      }
      free_blocks_.erase(free_blocks_.begin() + best);
      blocks_[bi].is_free = false;
      blocks_[bi].is_active = true;
      blocks_[bi].next_page = 0;
      active_by_chip_[chip] = static_cast<int32_t>(bi);
      active = static_cast<int32_t>(bi);
    }
    BlockInfo& blk = blocks_[active];
    *ppn = blk.pbn * g.pages_per_block + blk.next_page;
    blk.next_page++;
    *block_idx = static_cast<uint32_t>(active);
    return Status::OK();
  }
  return Status::OutOfSpace("page FTL '" + config_.name +
                            "' has no free pages");
}

int PageFtl::PickVictim() const {
  const auto& g = device_->geometry();
  int victim = -1;
  uint32_t max_reclaim = 0;
  double best_score = 0.0;
  SimTime now = device_->clock().Now();
  for (uint32_t i = 0; i < blocks_.size(); i++) {
    const BlockInfo& b = blocks_[i];
    if (b.is_free || b.is_active) continue;
    uint32_t written = std::min(b.next_page, g.pages_per_block);
    uint32_t reclaim = written - b.valid;
    if (reclaim == 0) continue;  // erasing gains nothing
    if (config_.gc_policy == GcPolicy::kGreedy) {
      if (reclaim > max_reclaim) {
        max_reclaim = reclaim;
        victim = static_cast<int>(i);
      }
    } else {
      // Cost-benefit (Dayan & Bonnet): utilization u weighs the migration
      // cost, age rewards cold blocks whose valid pages are unlikely to be
      // invalidated for free soon. +1 keeps brand-new blocks eligible.
      double u = static_cast<double>(b.valid) / g.pages_per_block;
      double age = static_cast<double>(now - b.last_write) + 1.0;
      double score = (1.0 - u) / (1.0 + u) * age;
      if (victim < 0 || score > best_score) {
        best_score = score;
        victim = static_cast<int>(i);
      }
    }
  }
  return victim;
}

Status PageFtl::RunGcIfNeeded() {
  while (free_blocks_.size() < config_.gc_free_block_threshold) {
    Status s = GarbageCollect();
    if (!s.ok()) return s.IsNotFound() ? Status::OK() : s;
  }
  return Status::OK();
}

Status PageFtl::CollectOnce() {
  Status s = GarbageCollect();
  return s.IsNotFound() ? Status::OK() : s;
}

Status PageFtl::GarbageCollect() {
  IPA_TRACE_SPAN("pageftl.gc", &device_->clock());
  const auto& g = device_->geometry();
  int victim = PickVictim();
  if (victim < 0) return Status::NotFound("no GC victim available");
  BlockInfo& vb = blocks_[victim];

  // Migrate valid pages (device-internal I/O: no host transfer, async).
  // Migrated copies get fresh sequence numbers, so a mount that sees both
  // the old and the new physical page resolves to the migrated one.
  std::vector<uint8_t> buf(g.page_size);
  for (uint32_t page = 0; page < g.pages_per_block; page++) {
    size_t ridx = static_cast<size_t>(victim) * g.pages_per_block + page;
    Lba lba = rmap_[ridx];
    if (lba == kInvalidLba) continue;
    flash::Ppn old_ppn = vb.pbn * g.pages_per_block + page;
    IPA_RETURN_NOT_OK(device_->ReadPage(old_ppn, buf.data(), nullptr, false));

    flash::Ppn new_ppn;
    uint32_t new_bidx;
    IPA_RETURN_NOT_OK(AllocatePage(&new_ppn, &new_bidx, /*for_gc=*/true));
    IPA_RETURN_NOT_OK(
        ProgramMapped(new_ppn, new_bidx, lba, buf.data(), nullptr, false));
    rmap_[ridx] = kInvalidLba;
    vb.valid--;
    size_t nidx = static_cast<size_t>(new_bidx) * g.pages_per_block +
                  (new_ppn % g.pages_per_block);
    rmap_[nidx] = lba;
    blocks_[new_bidx].valid++;
    map_[lba] = new_ppn;
    stats_.gc_page_migrations++;
    Pm().gc_page_migrations.Inc();
    Pm().map_updates.Inc();
  }

  IPA_RETURN_NOT_OK(device_->EraseBlock(vb.pbn, nullptr, false));
  vb.is_free = true;
  vb.next_page = 0;
  vb.valid = 0;
  vb.needs_erase = false;
  free_blocks_.push_back(static_cast<uint32_t>(victim));
  stats_.gc_erases++;
  Pm().gc_erases.Inc();
  return Status::OK();
}

void PageFtl::EncodeOobEntry(uint8_t* entry, Lba lba, uint64_t seq,
                             uint32_t data_crc) const {
  EncodeU16(entry, kOobMagic);
  EncodeU64(entry + 2, lba);
  EncodeU64(entry + 10, seq);
  EncodeU32(entry + 18, data_crc);
  EncodeU32(entry + kEntryCrcOffset, Crc32c(entry, kEntryCrcOffset));
}

bool PageFtl::DecodeOobEntry(const uint8_t* entry, Lba* lba, uint64_t* seq,
                             uint32_t* data_crc) const {
  if (DecodeU16(entry) != kOobMagic) return false;
  if (DecodeU32(entry + kEntryCrcOffset) != Crc32c(entry, kEntryCrcOffset)) {
    return false;
  }
  *lba = DecodeU64(entry + 2);
  *seq = DecodeU64(entry + 10);
  *data_crc = DecodeU32(entry + 18);
  return true;
}

Status PageFtl::ProgramMapped(flash::Ppn ppn, uint32_t block_idx, Lba lba,
                              const uint8_t* data, flash::IoTiming* t,
                              bool sync) {
  const auto& g = device_->geometry();
  uint8_t entry[kOobEntryBytes];
  // The sequence number is consumed even when the program tears: a retry
  // after recovery must outrank whatever the torn attempt left on media.
  EncodeOobEntry(entry, lba, write_seq_++, Crc32c(data, g.page_size));
  IPA_RETURN_NOT_OK(
      device_->ProgramPage(ppn, data, entry, kOobEntryBytes, t, sync));
  blocks_[block_idx].last_write = device_->clock().Now();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Host commands
// ---------------------------------------------------------------------------

Status PageFtl::ReadPage(Lba lba, uint8_t* out) {
  const auto& g = device_->geometry();
  if (lba >= map_.size()) return Status::InvalidArgument("lba out of range");
  stats_.host_reads++;
  flash::Ppn ppn = map_[lba];
  if (ppn == flash::kInvalidPpn) {
    std::memset(out, 0xFF, g.page_size);
    return Status::OK();
  }
  flash::IoTiming t;
  IPA_RETURN_NOT_OK(device_->ReadPage(ppn, out, &t, true));
  stats_.read_latency.Add(t.LatencyUs());
  Pm().host_reads.Inc();
  Pm().read_latency.Record(t.LatencyUs());
  return Status::OK();
}

Status PageFtl::WritePage(Lba lba, const uint8_t* data, bool sync) {
  const auto& g = device_->geometry();
  if (lba >= map_.size()) return Status::InvalidArgument("lba out of range");
  IPA_RETURN_NOT_OK(RunGcIfNeeded());

  flash::Ppn ppn;
  uint32_t bidx;
  IPA_RETURN_NOT_OK(AllocatePage(&ppn, &bidx, /*for_gc=*/false));
  flash::IoTiming t;
  IPA_RETURN_NOT_OK(ProgramMapped(ppn, bidx, lba, data, &t, sync));

  flash::Ppn old = map_[lba];
  if (old != flash::kInvalidPpn) Invalidate(old);
  map_[lba] = ppn;
  size_t ridx = static_cast<size_t>(bidx) * g.pages_per_block +
                (ppn % g.pages_per_block);
  rmap_[ridx] = lba;
  blocks_[bidx].valid++;

  stats_.host_page_writes++;
  stats_.write_latency.Add(t.LatencyUs());
  Pm().host_page_writes.Inc();
  Pm().map_updates.Inc();
  Pm().write_latency.Record(t.LatencyUs());
  return Status::OK();
}

Status PageFtl::WriteDelta(Lba, uint32_t, const uint8_t*, uint32_t, bool) {
  return Status::NotSupported(
      "page-mapping FTL relocates on every write; no in-place appends");
}

bool PageFtl::DeltaWritePossible(Lba) const { return false; }

bool PageFtl::IsMapped(Lba lba) const {
  return lba < map_.size() && map_[lba] != flash::kInvalidPpn;
}

flash::Ppn PageFtl::PhysicalOf(Lba lba) const {
  return lba < map_.size() ? map_[lba] : flash::kInvalidPpn;
}

Status PageFtl::Trim(Lba lba) {
  if (lba >= map_.size()) return Status::InvalidArgument("lba out of range");
  flash::Ppn old = map_[lba];
  if (old != flash::kInvalidPpn) {
    Invalidate(old);
    map_[lba] = flash::kInvalidPpn;
    Pm().trims.Inc();
    Pm().map_updates.Inc();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Mount: rebuild the L2P map from the on-media reverse map
// ---------------------------------------------------------------------------

Status PageFtl::Mount(MountScanReport* report) {
  IPA_TRACE_SPAN("pageftl.mount", &device_->clock());
  const auto& g = device_->geometry();
  MountScanReport rep;

  // Discard all RAM mapping state; media is the only source of truth.
  map_.assign(config_.logical_pages, flash::kInvalidPpn);
  rmap_.assign(rmap_.size(), kInvalidLba);
  free_blocks_.clear();
  active_by_chip_.assign(g.total_chips(), -1);
  SimTime now = device_->clock().Now();

  // Latest-wins winner per lba, resolved by on-media sequence number.
  std::vector<uint64_t> win_seq(config_.logical_pages, 0);
  uint64_t max_seq = 0;
  std::vector<uint8_t> oob(g.oob_size);
  std::vector<uint8_t> buf(g.page_size);

  for (uint32_t b = 0; b < blocks_.size(); b++) {
    BlockInfo& blk = blocks_[b];
    bool has_content = false;
    for (uint32_t page = 0; page < g.pages_per_block; page++) {
      flash::Ppn ppn = blk.pbn * g.pages_per_block + page;
      rep.pages_scanned++;
      Pm().mount_pages_scanned.Inc();
      IPA_RETURN_NOT_OK(device_->ReadOob(ppn, oob.data(), kOobEntryBytes));

      Lba lba;
      uint64_t seq;
      uint32_t data_crc;
      if (DecodeOobEntry(oob.data(), &lba, &seq, &data_crc)) {
        has_content = true;
        if (lba >= config_.logical_pages) continue;  // foreign/garbage entry
        // A torn program can commit the OOB entry before the data: the body
        // CRC is the arbiter. A mismatching page is stale garbage that GC
        // reclaims with its block; the mapping entry is simply not believed.
        IPA_RETURN_NOT_OK(device_->ReadPage(ppn, buf.data(), nullptr, false));
        if (Crc32c(buf.data(), g.page_size) != data_crc) {
          rep.torn_pages_quarantined++;
          stats_.torn_pages_quarantined++;
          Pm().mount_torn_quarantined.Inc();
          continue;
        }
        max_seq = std::max(max_seq, seq);
        if (map_[lba] != flash::kInvalidPpn && win_seq[lba] >= seq) continue;
        map_[lba] = ppn;
        win_seq[lba] = seq;
      } else {
        // No verifiable entry. The page may still hold torn content —
        // detectable by a non-erased OOB prefix or data byte.
        bool oob_blank = true;
        for (uint32_t i = 0; i < kOobEntryBytes; i++) {
          if (oob[i] != 0xFF) {
            oob_blank = false;
            break;
          }
        }
        if (!oob_blank) {
          has_content = true;
        } else {
          IPA_RETURN_NOT_OK(device_->ReadPage(ppn, buf.data(), nullptr, false));
          for (uint32_t i = 0; i < g.page_size; i++) {
            if (buf[i] != 0xFF) {
              has_content = true;
              break;
            }
          }
        }
      }
    }
    // Content-bearing blocks are closed for writing (full frontier) until GC
    // reclaims them; content-erased blocks may still carry charge from a
    // torn program, so they are re-erased lazily before first use.
    blk.is_active = false;
    blk.valid = 0;  // recomputed from the winners below
    blk.last_write = now;
    if (has_content) {
      blk.is_free = false;
      blk.needs_erase = false;
      blk.next_page = g.pages_per_block;
    } else {
      blk.is_free = true;
      blk.needs_erase = true;
      blk.next_page = 0;
      free_blocks_.push_back(b);
    }
  }

  for (Lba lba = 0; lba < map_.size(); lba++) {
    flash::Ppn ppn = map_[lba];
    if (ppn == flash::kInvalidPpn) continue;
    uint32_t bidx = BlockIndexOf(ppn);
    size_t ridx = static_cast<size_t>(bidx) * g.pages_per_block +
                  (ppn % g.pages_per_block);
    rmap_[ridx] = lba;
    blocks_[bidx].valid++;
  }
  write_seq_ = max_seq + 1;

  if (report) *report = rep;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Audit (differential-checker oracle)
// ---------------------------------------------------------------------------

Status PageFtl::Audit() const {
  const auto& g = device_->geometry();
  const uint32_t ppb = g.pages_per_block;
  auto fail = [&](const std::string& what) {
    return Status::Corruption("page FTL '" + config_.name + "' audit: " + what);
  };

  // Forward map: every mapped lba must land on programmed media inside a
  // non-free owned block, below the write frontier, with a matching
  // reverse-map entry and a verifiable OOB entry naming this lba.
  std::vector<uint8_t> oob(g.oob_size);
  for (Lba lba = 0; lba < map_.size(); lba++) {
    flash::Ppn ppn = map_[lba];
    if (ppn == flash::kInvalidPpn) continue;
    std::string at = "lba " + std::to_string(lba);
    uint32_t bidx = BlockIndexOf(ppn);
    if (bidx == UINT32_MAX) return fail(at + " maps outside the FTL's blocks");
    const BlockInfo& blk = blocks_[bidx];
    if (blk.is_free) return fail(at + " maps into a free block");
    uint32_t page = static_cast<uint32_t>(ppn % ppb);
    if (page >= blk.next_page) {
      return fail(at + " maps beyond the write frontier");
    }
    if (rmap_[static_cast<size_t>(bidx) * ppb + page] != lba) {
      return fail(at + " has no matching reverse-map entry");
    }
    const flash::PageState& ps = device_->page_state(ppn);
    if (ps.IsErased()) return fail(at + " maps to erased media");
    if (ps.oob.size() < kOobEntryBytes) {
      return fail(at + " has no OOB reverse-map entry");
    }
    Lba oob_lba;
    uint64_t oob_seq;
    uint32_t data_crc;
    if (!DecodeOobEntry(ps.oob.data(), &oob_lba, &oob_seq, &data_crc)) {
      return fail(at + " has a torn OOB reverse-map entry");
    }
    if (oob_lba != lba) {
      return fail(at + " OOB entry names lba " + std::to_string(oob_lba));
    }
    if (oob_seq >= write_seq_) {
      return fail(at + " OOB sequence number is ahead of the allocator");
    }
  }

  // Reverse map and per-block counters.
  for (uint32_t b = 0; b < blocks_.size(); b++) {
    const BlockInfo& blk = blocks_[b];
    std::string at = "block " + std::to_string(b);
    if (blk.next_page > ppb) return fail(at + " frontier beyond the block");
    uint32_t rmap_valid = 0;
    for (uint32_t p = 0; p < ppb; p++) {
      Lba lba = rmap_[static_cast<size_t>(b) * ppb + p];
      if (lba == kInvalidLba) continue;
      rmap_valid++;
      if (lba >= map_.size() || map_[lba] != blk.pbn * ppb + p) {
        return fail(at + " reverse-map entry is not mirrored in the map");
      }
    }
    if (rmap_valid != blk.valid) {
      return fail(at + " valid counter " + std::to_string(blk.valid) +
                  " != reverse-map population " + std::to_string(rmap_valid));
    }
    if (blk.is_free) {
      if (blk.valid != 0) return fail(at + " is free but holds valid pages");
      if (blk.next_page != 0) {
        return fail(at + " is free with a nonzero frontier");
      }
      if (blk.is_active) return fail(at + " is free and active");
      // Blocks awaiting their lazy post-mount erase may hold torn remnants.
      if (!blk.needs_erase) {
        for (uint32_t p = 0; p < ppb; p++) {
          if (!device_->page_state(blk.pbn * ppb + p).IsErased()) {
            return fail(at + " is free but page " + std::to_string(p) +
                        " is programmed");
          }
        }
      }
    } else if (blk.needs_erase) {
      return fail(at + " is in use but still flagged for a lazy erase");
    }
  }

  // Free list <-> free flag, exactly.
  std::vector<bool> listed(blocks_.size(), false);
  for (uint32_t idx : free_blocks_) {
    if (idx >= blocks_.size()) return fail("free list entry out of range");
    if (listed[idx]) return fail("block listed twice in the free list");
    listed[idx] = true;
    if (!blocks_[idx].is_free) {
      return fail("free list references non-free block " + std::to_string(idx));
    }
  }
  for (uint32_t b = 0; b < blocks_.size(); b++) {
    if (blocks_[b].is_free && !listed[b]) {
      return fail("free block " + std::to_string(b) +
                  " is missing from the free list");
    }
  }

  // Active blocks <-> active_by_chip.
  std::vector<bool> active_listed(blocks_.size(), false);
  for (int32_t a : active_by_chip_) {
    if (a < 0) continue;
    if (static_cast<size_t>(a) >= blocks_.size()) {
      return fail("active_by_chip entry out of range");
    }
    active_listed[a] = true;
    if (!blocks_[a].is_active) {
      return fail("active_by_chip references non-active block " +
                  std::to_string(a));
    }
  }
  for (uint32_t b = 0; b < blocks_.size(); b++) {
    if (blocks_[b].is_active && !active_listed[b]) {
      return fail("active block " + std::to_string(b) +
                  " is not registered in active_by_chip");
    }
  }
  return Status::OK();
}

}  // namespace ipa::ftl
