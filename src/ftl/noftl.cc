#include "ftl/noftl.h"

#include <algorithm>
#include <cstring>

#include "common/bytes.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "flash/ecc.h"

namespace ipa::ftl {

namespace {
/// OOB slot entry for one appended delta: offset(2) + len(2) + ECC(6).
constexpr uint32_t kSlotBytes = 10;
constexpr uint32_t kSlotEccBytes = 6;  // covers deltas up to 512 bytes

/// Process-wide FTL counters, summed over every region of every NoFtl in the
/// process (per-region splits stay in RegionStats).
struct FtlCounters {
  metrics::Counter gc_page_migrations{"ftl.gc.page_migrations"};
  metrics::Counter gc_erases{"ftl.gc.erases"};
  metrics::Counter scrub_refreshes{"ftl.scrub.refreshes"};
  metrics::Counter wear_level_migrations{"ftl.wear_level.migrations"};
  metrics::Counter wear_level_swaps{"ftl.wear_level.swaps"};
  metrics::Counter mount_pages_scanned{"ftl.mount_scan.pages_scanned"};
  metrics::Counter mount_torn_quarantined{"ftl.mount_scan.torn_pages_quarantined"};
  metrics::Counter mount_torn_bytes{"ftl.mount_scan.torn_bytes_dropped"};
  metrics::Counter mount_uncorrectable{"ftl.mount_scan.uncorrectable_pages"};
  metrics::Counter host_reads{"ftl.host_reads"};
  metrics::Counter host_page_writes{"ftl.host_page_writes"};
  metrics::Counter host_delta_writes{"ftl.host_delta_writes"};
  metrics::Counter delta_bytes_written{"ftl.delta_bytes_written"};
  metrics::Counter delta_fallbacks{"ftl.delta_fallbacks"};
  metrics::Counter map_updates{"ftl.map_updates"};
  metrics::Counter trims{"ftl.trims"};
  metrics::Histogram read_latency{"ftl.read_latency_us"};
  metrics::Histogram write_latency{"ftl.write_latency_us"};
  metrics::Histogram delta_write_latency{"ftl.delta_write_latency_us"};
};

FtlCounters& Fm() {
  static FtlCounters counters;
  return counters;
}
}  // namespace

const char* IpaModeName(IpaMode m) {
  switch (m) {
    case IpaMode::kOff: return "off";
    case IpaMode::kSlc: return "SLC";
    case IpaMode::kPSlc: return "pSLC";
    case IpaMode::kOddMlc: return "odd-MLC";
  }
  return "?";
}

NoFtl::NoFtl(flash::FlashArray* device) : device_(device) {
  const auto& g = device_->geometry();
  device_free_.resize(g.total_chips());
  for (flash::Pbn b = 0; b < g.total_blocks(); b++) {
    device_free_[b / g.blocks_per_chip].push_back(b);
  }
}

uint32_t NoFtl::UsablePagesPerBlock(const Region& reg) const {
  const auto& g = device_->geometry();
  if (reg.config.ipa_mode == IpaMode::kPSlc &&
      g.cell_type == flash::CellType::kMlc) {
    return g.pages_per_block / 2;  // LSB pages only
  }
  return g.pages_per_block;
}

uint32_t NoFtl::UsablePage(const Region& reg, uint32_t i) const {
  const auto& g = device_->geometry();
  if (reg.config.ipa_mode == IpaMode::kPSlc &&
      g.cell_type == flash::CellType::kMlc) {
    return 2 * i;  // even in-block indices are LSB pages
  }
  return i;
}

Result<RegionId> NoFtl::CreateRegion(const RegionConfig& config) {
  const auto& g = device_->geometry();
  if (config.logical_pages == 0) {
    return Status::InvalidArgument("region needs logical_pages > 0");
  }
  if (config.ipa_mode != IpaMode::kOff) {
    if (config.delta_area_offset == 0 || config.delta_area_offset >= g.page_size) {
      return Status::InvalidArgument(
          "IPA region needs delta_area_offset in (0, page_size)");
    }
    if (config.ipa_mode == IpaMode::kSlc && g.cell_type != flash::CellType::kSlc &&
        g.cell_type != flash::CellType::kTlc3d) {
      return Status::InvalidArgument("IpaMode::kSlc requires SLC/3D flash");
    }
    if ((config.ipa_mode == IpaMode::kPSlc || config.ipa_mode == IpaMode::kOddMlc) &&
        g.cell_type != flash::CellType::kMlc) {
      return Status::InvalidArgument("pSLC/odd-MLC modes require MLC flash");
    }
  }
  if (config.manage_ecc) {
    uint32_t body = config.delta_area_offset ? config.delta_area_offset : g.page_size;
    uint32_t initial = static_cast<uint32_t>(flash::EccRegionBytes(body));
    if (initial + kSlotBytes > g.oob_size && config.ipa_mode != IpaMode::kOff) {
      return Status::InvalidArgument("OOB too small for managed ECC + delta slots");
    }
  }

  Region reg;
  reg.config = config;
  reg.chips = config.chips;
  if (reg.chips.empty()) {
    for (uint32_t c = 0; c < g.total_chips(); c++) reg.chips.push_back(c);
  }
  for (uint32_t c : reg.chips) {
    if (c >= g.total_chips()) return Status::InvalidArgument("chip id out of range");
  }

  uint32_t usable = 0;
  {
    // UsablePagesPerBlock needs the config already in place.
    usable = g.pages_per_block;
    if (config.ipa_mode == IpaMode::kPSlc && g.cell_type == flash::CellType::kMlc) {
      usable = g.pages_per_block / 2;
    }
  }
  uint64_t physical_pages_needed = static_cast<uint64_t>(
      static_cast<double>(config.logical_pages) * (1.0 + config.over_provisioning));
  uint64_t blocks_needed =
      (physical_pages_needed + usable - 1) / usable + config.gc_free_block_threshold + 1;
  // Small regions striped over many chips need enough blocks that GC always
  // has both victims and migration headroom.
  uint64_t chip_count =
      config.chips.empty() ? g.total_chips() : config.chips.size();
  blocks_needed = std::max(blocks_needed,
                           2 * chip_count + config.gc_free_block_threshold);

  // Claim blocks round-robin over the region's chips.
  std::vector<flash::Pbn> claimed;
  uint32_t cursor = 0;
  uint32_t empty_chips = 0;
  while (claimed.size() < blocks_needed && empty_chips < reg.chips.size()) {
    uint32_t chip = reg.chips[cursor % reg.chips.size()];
    cursor++;
    auto& pool = device_free_[chip];
    if (pool.empty()) {
      empty_chips++;
      continue;
    }
    empty_chips = 0;
    claimed.push_back(pool.front());
    pool.pop_front();
  }
  if (claimed.size() < blocks_needed) {
    // Return what we took.
    for (flash::Pbn b : claimed) device_free_[b / g.blocks_per_chip].push_back(b);
    return Status::OutOfSpace("not enough free device blocks for region '" +
                              config.name + "'");
  }

  reg.blocks.reserve(claimed.size());
  for (uint32_t i = 0; i < claimed.size(); i++) {
    BlockInfo bi;
    bi.pbn = claimed[i];
    reg.blocks.push_back(bi);
    reg.free_blocks.push_back(i);
    reg.pbn_to_idx[claimed[i]] = i;
  }
  reg.active_by_chip.assign(reg.chips.size(), -1);
  reg.map.assign(config.logical_pages, flash::kInvalidPpn);
  reg.rmap.assign(reg.blocks.size() * static_cast<size_t>(g.pages_per_block),
                  kInvalidLba);

  regions_.push_back(std::move(reg));
  RegionId id = static_cast<RegionId>(regions_.size() - 1);
  region_devices_.emplace_back(this, id);
  return id;
}

FtlBackend* NoFtl::region_device(RegionId r) { return &region_devices_[r]; }

uint32_t NoFtl::BlockIndexOf(const Region& reg, flash::Ppn ppn) const {
  flash::Pbn pbn = flash::BlockOf(device_->geometry(), ppn);
  auto it = reg.pbn_to_idx.find(pbn);
  return it == reg.pbn_to_idx.end() ? UINT32_MAX : it->second;
}

void NoFtl::Invalidate(Region& reg, flash::Ppn ppn) {
  const auto& g = device_->geometry();
  uint32_t bidx = BlockIndexOf(reg, ppn);
  if (bidx == UINT32_MAX) return;
  uint32_t page = static_cast<uint32_t>(ppn % g.pages_per_block);
  size_t ridx = static_cast<size_t>(bidx) * g.pages_per_block + page;
  if (reg.rmap[ridx] != kInvalidLba) {
    reg.rmap[ridx] = kInvalidLba;
    if (reg.blocks[bidx].valid > 0) reg.blocks[bidx].valid--;
  }
}

Status NoFtl::AllocatePage(Region& reg, flash::Ppn* ppn, uint32_t* block_idx,
                           bool for_gc) {
  const auto& g = device_->geometry();
  uint32_t usable = UsablePagesPerBlock(reg);
  for (uint32_t attempt = 0; attempt < reg.chips.size(); attempt++) {
    uint32_t pos = reg.rr_cursor % reg.chips.size();
    reg.rr_cursor++;
    int32_t active = reg.active_by_chip[pos];
    if (active < 0 || reg.blocks[active].next_page >= usable) {
      if (active >= 0) reg.blocks[active].is_active = false;
      // Promote the least-worn free block on this chip to active. Host
      // allocations must leave at least one free block for GC migrations.
      if (!for_gc && reg.free_blocks.size() <= 1) {
        reg.active_by_chip[pos] = -1;
        continue;
      }
      uint32_t chip = reg.chips[pos];
      int best = -1;
      uint32_t best_wear = UINT32_MAX;
      for (size_t i = 0; i < reg.free_blocks.size(); i++) {
        uint32_t bi = reg.free_blocks[i];
        if (reg.blocks[bi].pbn / g.blocks_per_chip != chip) continue;
        uint32_t wear = device_->EraseCount(reg.blocks[bi].pbn);
        if (wear < best_wear) {
          best_wear = wear;
          best = static_cast<int>(i);
        }
      }
      if (best < 0) {
        reg.active_by_chip[pos] = -1;
        continue;  // no free block on this chip; try the next chip
      }
      uint32_t bi = reg.free_blocks[best];
      reg.free_blocks.erase(reg.free_blocks.begin() + best);
      reg.blocks[bi].is_free = false;
      reg.blocks[bi].is_active = true;
      reg.blocks[bi].next_page = 0;
      reg.active_by_chip[pos] = static_cast<int32_t>(bi);
      active = static_cast<int32_t>(bi);
    }
    BlockInfo& blk = reg.blocks[active];
    uint32_t page_in_block = UsablePage(reg, blk.next_page);
    blk.next_page++;
    *ppn = blk.pbn * g.pages_per_block + page_in_block;
    *block_idx = static_cast<uint32_t>(active);
    return Status::OK();
  }
  return Status::OutOfSpace("region '" + reg.config.name + "' has no free pages");
}

Status NoFtl::RunGcIfNeeded(Region& reg) {
  while (reg.free_blocks.size() < reg.config.gc_free_block_threshold) {
    Status s = GarbageCollect(reg);
    if (!s.ok()) return s.IsNotFound() ? Status::OK() : s;
  }
  return Status::OK();
}

Status NoFtl::GarbageCollect(Region& reg) {
  IPA_TRACE_SPAN("ftl.gc", &device_->clock());
  const auto& g = device_->geometry();
  uint32_t usable = UsablePagesPerBlock(reg);
  // Greedy victim selection: the non-active block with the most reclaimable
  // (written-but-invalid) pages. Partially-written blocks qualify too —
  // required when a small region's blocks all fill in lockstep.
  int victim = -1;
  uint32_t max_reclaim = 0;
  for (uint32_t i = 0; i < reg.blocks.size(); i++) {
    const BlockInfo& b = reg.blocks[i];
    if (b.is_free || b.is_active) continue;
    uint32_t written = std::min(b.next_page, usable);
    uint32_t reclaim = written - b.valid;
    if (reclaim > max_reclaim) {
      max_reclaim = reclaim;
      victim = static_cast<int>(i);
    }
  }
  if (victim < 0) {
    return Status::NotFound("no GC victim available");
  }
  BlockInfo& vb = reg.blocks[victim];

  // Migrate valid pages (device-internal I/O: no host transfer, async).
  std::vector<uint8_t> buf(g.page_size);
  std::vector<uint8_t> oob(g.oob_size);
  for (uint32_t i = 0; i < usable; i++) {
    uint32_t page = UsablePage(reg, i);
    size_t ridx = static_cast<size_t>(victim) * g.pages_per_block + page;
    Lba lba = reg.rmap[ridx];
    if (lba == kInvalidLba) continue;
    flash::Ppn old_ppn = vb.pbn * g.pages_per_block + page;
    IPA_RETURN_NOT_OK(device_->ReadPage(old_ppn, buf.data(), nullptr, false));
    IPA_RETURN_NOT_OK(device_->ReadOob(old_ppn, oob.data(), g.oob_size));

    flash::Ppn new_ppn;
    uint32_t new_bidx;
    IPA_RETURN_NOT_OK(AllocatePage(reg, &new_ppn, &new_bidx, /*for_gc=*/true));
    const uint8_t* oob_src = reg.config.manage_ecc ? oob.data() : nullptr;
    IPA_RETURN_NOT_OK(device_->ProgramPage(new_ppn, buf.data(), oob_src,
                                           oob_src ? g.oob_size : 0, nullptr,
                                           false));
    reg.rmap[ridx] = kInvalidLba;
    vb.valid--;
    size_t nidx = static_cast<size_t>(new_bidx) * g.pages_per_block +
                  (new_ppn % g.pages_per_block);
    reg.rmap[nidx] = lba;
    reg.blocks[new_bidx].valid++;
    reg.map[lba] = new_ppn;
    reg.stats.gc_page_migrations++;
    Fm().gc_page_migrations.Inc();
    Fm().map_updates.Inc();
  }

  IPA_RETURN_NOT_OK(device_->EraseBlock(vb.pbn, nullptr, false));
  vb.is_free = true;
  vb.next_page = 0;
  vb.valid = 0;
  reg.free_blocks.push_back(static_cast<uint32_t>(victim));
  reg.stats.gc_erases++;
  Fm().gc_erases.Inc();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Maintenance: Correct-and-Refresh scrubbing + static wear leveling
// ---------------------------------------------------------------------------

Status NoFtl::ScrubRegion(RegionId r, bool refresh_all) {
  IPA_TRACE_SPAN("ftl.scrub", &device_->clock());
  Region& reg = regions_[r];
  const auto& g = device_->geometry();
  std::vector<uint8_t> buf(g.page_size);
  for (Lba lba = 0; lba < reg.map.size(); lba++) {
    flash::Ppn ppn = reg.map[lba];
    if (ppn == flash::kInvalidPpn) continue;
    IPA_RETURN_NOT_OK(device_->ReadPage(ppn, buf.data(), nullptr, false));
    bool corrected = false;
    if (reg.config.manage_ecc) {
      uint64_t before = reg.stats.ecc_corrected_bits;
      Status s = VerifyEcc(reg, ppn, buf.data());
      if (s.IsCorruption()) continue;  // beyond repair; GC/rewrite will fix
      IPA_RETURN_NOT_OK(s);
      corrected = reg.stats.ecc_corrected_bits > before;
    }
    if (corrected || refresh_all) {
      Status s = device_->RefreshPage(ppn, buf.data(), nullptr, false);
      if (s.IsNotSupported()) continue;  // interference-cleared bit: skip
      IPA_RETURN_NOT_OK(s);
      reg.stats.scrub_refreshes++;
      Fm().scrub_refreshes.Inc();
    }
  }
  return Status::OK();
}

uint32_t NoFtl::EraseSpread(RegionId r) const {
  const Region& reg = regions_[r];
  uint32_t min = UINT32_MAX, max = 0;
  for (const BlockInfo& b : reg.blocks) {
    uint32_t e = device_->EraseCount(b.pbn);
    min = std::min(min, e);
    max = std::max(max, e);
  }
  return min == UINT32_MAX ? 0 : max - min;
}

Status NoFtl::WearLevelRegion(RegionId r, uint32_t max_spread) {
  IPA_TRACE_SPAN("ftl.wear_level", &device_->clock());
  Region& reg = regions_[r];
  const auto& g = device_->geometry();
  if (EraseSpread(r) <= max_spread) return Status::OK();

  // Coldest data-bearing block and the most-worn free block.
  int cold = -1, worn_free = -1;
  uint32_t cold_erases = UINT32_MAX, worn_erases = 0;
  for (uint32_t i = 0; i < reg.blocks.size(); i++) {
    const BlockInfo& b = reg.blocks[i];
    uint32_t e = device_->EraseCount(b.pbn);
    if (b.is_free) {
      if (e >= worn_erases) {
        worn_erases = e;
        worn_free = static_cast<int>(i);
      }
    } else if (!b.is_active && e < cold_erases) {
      cold_erases = e;
      cold = static_cast<int>(i);
    }
  }
  if (cold < 0 || worn_free < 0 || worn_erases <= cold_erases) {
    return Status::OK();  // nothing useful to swap
  }

  BlockInfo& cb = reg.blocks[cold];
  BlockInfo& wb = reg.blocks[worn_free];
  // Claim the worn block *before* programming into it, and transfer the
  // valid counters page by page. A power loss can interrupt the swap after
  // any program; bulk bookkeeping at the end used to leave programmed pages
  // inside a block still on the free list (so the allocator would hand it
  // out and fail) and a stale valid counter on the cold block — the
  // differential checker's region audit flags both.
  for (size_t i = 0; i < reg.free_blocks.size(); i++) {
    if (reg.free_blocks[i] == static_cast<uint32_t>(worn_free)) {
      reg.free_blocks.erase(reg.free_blocks.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  wb.is_free = false;
  wb.next_page = cb.next_page;
  // Move the cold block's valid pages to the same in-block positions of the
  // worn block (ascending order satisfies MLC in-order programming).
  std::vector<uint8_t> buf(g.page_size);
  std::vector<uint8_t> oob(g.oob_size);
  uint32_t usable = UsablePagesPerBlock(reg);
  for (uint32_t i = 0; i < usable; i++) {
    uint32_t page = UsablePage(reg, i);
    size_t cidx = static_cast<size_t>(cold) * g.pages_per_block + page;
    Lba lba = reg.rmap[cidx];
    if (lba == kInvalidLba) continue;
    flash::Ppn src = cb.pbn * g.pages_per_block + page;
    flash::Ppn dst = wb.pbn * g.pages_per_block + page;
    IPA_RETURN_NOT_OK(device_->ReadPage(src, buf.data(), nullptr, false));
    IPA_RETURN_NOT_OK(device_->ReadOob(src, oob.data(), g.oob_size));
    const uint8_t* oob_src = reg.config.manage_ecc ? oob.data() : nullptr;
    IPA_RETURN_NOT_OK(device_->ProgramPage(dst, buf.data(), oob_src,
                                           oob_src ? g.oob_size : 0, nullptr,
                                           false));
    size_t widx = static_cast<size_t>(worn_free) * g.pages_per_block + page;
    reg.rmap[widx] = lba;
    reg.rmap[cidx] = kInvalidLba;
    wb.valid++;
    cb.valid--;
    reg.map[lba] = dst;
    reg.stats.wear_level_migrations++;
    Fm().wear_level_migrations.Inc();
    Fm().map_updates.Inc();
  }
  IPA_RETURN_NOT_OK(device_->EraseBlock(cb.pbn, nullptr, false));
  cb.is_free = true;
  cb.valid = 0;
  cb.next_page = 0;
  reg.free_blocks.push_back(static_cast<uint32_t>(cold));
  reg.stats.wear_level_swaps++;
  Fm().wear_level_swaps.Inc();
  return Status::OK();
}

Status NoFtl::AuditRegion(RegionId r) const {
  const Region& reg = regions_[r];
  const auto& g = device_->geometry();
  const uint32_t ppb = g.pages_per_block;
  const uint32_t usable = UsablePagesPerBlock(reg);
  auto fail = [&](const std::string& what) {
    return Status::Corruption("region '" + reg.config.name + "' audit: " + what);
  };

  // Forward map: every mapped lba must land on programmed media, inside a
  // non-free block of this region, on a usable page index below the block's
  // write frontier, with a matching reverse-map entry.
  for (Lba lba = 0; lba < reg.map.size(); lba++) {
    flash::Ppn ppn = reg.map[lba];
    if (ppn == flash::kInvalidPpn) continue;
    std::string at = "lba " + std::to_string(lba);
    uint32_t bidx = BlockIndexOf(reg, ppn);
    if (bidx == UINT32_MAX) return fail(at + " maps outside the region");
    const BlockInfo& blk = reg.blocks[bidx];
    if (blk.is_free) return fail(at + " maps into a free block");
    uint32_t page = static_cast<uint32_t>(ppn % ppb);
    bool usable_page = false;
    for (uint32_t i = 0; i < blk.next_page && i < usable; i++) {
      if (UsablePage(reg, i) == page) {
        usable_page = true;
        break;
      }
    }
    if (!usable_page) {
      return fail(at + " maps beyond the write frontier or to an unusable page");
    }
    if (reg.rmap[static_cast<size_t>(bidx) * ppb + page] != lba) {
      return fail(at + " has no matching reverse-map entry");
    }
    if (device_->page_state(ppn).IsErased()) {
      return fail(at + " maps to erased media");
    }
  }

  // Reverse map and per-block counters.
  for (uint32_t b = 0; b < reg.blocks.size(); b++) {
    const BlockInfo& blk = reg.blocks[b];
    std::string at = "block " + std::to_string(b);
    if (blk.next_page > usable) return fail(at + " frontier beyond usable pages");
    uint32_t rmap_valid = 0;
    for (uint32_t p = 0; p < ppb; p++) {
      Lba lba = reg.rmap[static_cast<size_t>(b) * ppb + p];
      if (lba == kInvalidLba) continue;
      rmap_valid++;
      if (lba >= reg.map.size() ||
          reg.map[lba] != blk.pbn * ppb + p) {
        return fail(at + " reverse-map entry is not mirrored in the map");
      }
    }
    if (rmap_valid != blk.valid) {
      return fail(at + " valid counter " + std::to_string(blk.valid) +
                  " != reverse-map population " + std::to_string(rmap_valid));
    }
    if (blk.is_free) {
      if (blk.valid != 0) return fail(at + " is free but holds valid pages");
      if (blk.next_page != 0) return fail(at + " is free with a nonzero frontier");
      if (blk.is_active) return fail(at + " is free and active");
      for (uint32_t p = 0; p < ppb; p++) {
        if (!device_->page_state(blk.pbn * ppb + p).IsErased()) {
          return fail(at + " is free but page " + std::to_string(p) +
                      " is programmed");
        }
      }
    }
  }

  // Free list <-> free flag, exactly.
  std::vector<bool> listed(reg.blocks.size(), false);
  for (uint32_t idx : reg.free_blocks) {
    if (idx >= reg.blocks.size()) return fail("free list entry out of range");
    if (listed[idx]) return fail("block listed twice in the free list");
    listed[idx] = true;
    if (!reg.blocks[idx].is_free) {
      return fail("free list references non-free block " + std::to_string(idx));
    }
  }
  for (uint32_t b = 0; b < reg.blocks.size(); b++) {
    if (reg.blocks[b].is_free && !listed[b]) {
      return fail("free block " + std::to_string(b) +
                  " is missing from the free list");
    }
  }

  // Active blocks <-> active_by_chip.
  std::vector<bool> active_listed(reg.blocks.size(), false);
  for (int32_t a : reg.active_by_chip) {
    if (a < 0) continue;
    if (static_cast<size_t>(a) >= reg.blocks.size()) {
      return fail("active_by_chip entry out of range");
    }
    active_listed[a] = true;
    if (!reg.blocks[a].is_active) {
      return fail("active_by_chip references non-active block " +
                  std::to_string(a));
    }
  }
  for (uint32_t b = 0; b < reg.blocks.size(); b++) {
    if (reg.blocks[b].is_active && !active_listed[b]) {
      return fail("active block " + std::to_string(b) +
                  " is not registered in active_by_chip");
    }
  }

  // OOB slot coverage (managed ECC): every legitimate delta-area byte was
  // appended under an OOB slot; uncovered non-erased bytes are torn remnants
  // that MountScan / the read path must have scrubbed away.
  uint32_t delta_off = reg.config.delta_area_offset;
  if (reg.config.manage_ecc && reg.config.ipa_mode != IpaMode::kOff &&
      delta_off > 0 && delta_off < g.page_size) {
    uint32_t initial_bytes = static_cast<uint32_t>(flash::EccRegionBytes(delta_off));
    for (Lba lba = 0; lba < reg.map.size(); lba++) {
      flash::Ppn ppn = reg.map[lba];
      if (ppn == flash::kInvalidPpn) continue;
      const flash::PageState& ps = device_->page_state(ppn);
      if (ps.data.empty()) continue;  // flagged by the forward-map pass
      std::vector<bool> covered(g.page_size - delta_off, false);
      if (!ps.oob.empty()) {
        for (uint32_t base = initial_bytes; base + kSlotBytes <= g.oob_size;
             base += kSlotBytes) {
          uint16_t offset = DecodeU16(&ps.oob[base]);
          uint16_t len = DecodeU16(&ps.oob[base + 2]);
          if (offset == 0xFFFF && len == 0xFFFF) break;
          if (offset + len > g.page_size || len == 0) {
            return fail("lba " + std::to_string(lba) + " has a damaged OOB slot");
          }
          for (uint32_t i = std::max(static_cast<uint32_t>(offset), delta_off);
               i < static_cast<uint32_t>(offset) + len; i++) {
            covered[i - delta_off] = true;
          }
        }
      }
      for (uint32_t i = delta_off; i < g.page_size; i++) {
        if (ps.data[i] != 0xFF && !covered[i - delta_off]) {
          return fail("lba " + std::to_string(lba) +
                      " serves an uncovered delta byte at offset " +
                      std::to_string(i) + " (torn append not scrubbed)");
        }
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Managed ECC (OOB layout: [ECC_initial][slot 0][slot 1]...)
// ---------------------------------------------------------------------------

Status NoFtl::WriteInitialEcc(Region& reg, flash::Ppn ppn, const uint8_t* data) {
  const auto& g = device_->geometry();
  uint32_t body = reg.config.delta_area_offset ? reg.config.delta_area_offset
                                               : g.page_size;
  std::vector<uint8_t> ecc = flash::EccEncodeRegion(data, body);
  return device_->ProgramOob(ppn, 0, ecc.data(), static_cast<uint32_t>(ecc.size()));
}

Status NoFtl::AppendDeltaEcc(Region& reg, flash::Ppn ppn, uint32_t slot,
                             uint32_t offset, const uint8_t* bytes, uint32_t len) {
  const auto& g = device_->geometry();
  uint32_t body = reg.config.delta_area_offset ? reg.config.delta_area_offset
                                               : g.page_size;
  uint32_t base = static_cast<uint32_t>(flash::EccRegionBytes(body)) +
                  slot * kSlotBytes;
  if (base + kSlotBytes > g.oob_size) {
    return Status::OutOfSpace("no free OOB ECC slot");
  }
  uint8_t entry[kSlotBytes];
  EncodeU16(entry, static_cast<uint16_t>(offset));
  EncodeU16(entry + 2, static_cast<uint16_t>(len));
  std::vector<uint8_t> ecc = flash::EccEncodeRegion(bytes, len);
  ecc.resize(kSlotEccBytes, 0xFF);  // pad unused ECC bytes as erased
  std::memcpy(entry + 4, ecc.data(), kSlotEccBytes);
  return device_->ProgramOob(ppn, base, entry, kSlotBytes);
}

Status NoFtl::VerifyEcc(Region& reg, flash::Ppn ppn, uint8_t* data) {
  const auto& g = device_->geometry();
  uint32_t body = reg.config.delta_area_offset ? reg.config.delta_area_offset
                                               : g.page_size;
  std::vector<uint8_t> oob(g.oob_size);
  IPA_RETURN_NOT_OK(device_->ReadOob(ppn, oob.data(), g.oob_size));
  uint32_t initial_bytes = static_cast<uint32_t>(flash::EccRegionBytes(body));

  uint64_t corrected = 0;
  flash::EccResult r = flash::EccCheckRegion(data, body, oob.data(), initial_bytes,
                                             &corrected);
  if (r == flash::EccResult::kUncorrectable) {
    reg.stats.ecc_uncorrectable++;
    return Status::Corruption("uncorrectable ECC error in page body");
  }
  // Verify every appended delta slot.
  for (uint32_t base = initial_bytes; base + kSlotBytes <= g.oob_size;
       base += kSlotBytes) {
    uint16_t offset = DecodeU16(&oob[base]);
    uint16_t len = DecodeU16(&oob[base + 2]);
    if (offset == 0xFFFF && len == 0xFFFF) break;  // erased slot: no more deltas
    if (offset + len > g.page_size || len == 0) {
      reg.stats.ecc_uncorrectable++;
      return Status::Corruption("damaged delta ECC slot");
    }
    flash::EccResult dr = flash::EccCheckRegion(
        data + offset, len, &oob[base + 4],
        flash::EccRegionBytes(len), &corrected);
    if (dr == flash::EccResult::kUncorrectable) {
      reg.stats.ecc_uncorrectable++;
      return Status::Corruption("uncorrectable ECC error in delta record");
    }
  }
  reg.stats.ecc_corrected_bits += corrected;
  return Status::OK();
}

uint32_t NoFtl::ScrubUncoveredDeltaBytes(Region& reg, flash::Ppn ppn,
                                         uint8_t* data) {
  const auto& g = device_->geometry();
  if (!reg.config.manage_ecc || reg.config.ipa_mode == IpaMode::kOff) return 0;
  uint32_t delta_off = reg.config.delta_area_offset;
  if (delta_off == 0 || delta_off >= g.page_size) return 0;
  // Deliberate-bug gate for the differential checker: with the fault armed,
  // torn delta bytes are served to the host and survive MountScan
  // (tests/differential_test.cc proves the checker catches this).
  if (fault::Enabled(fault::Point::kSkipTornByteScrub)) return 0;
  std::vector<uint8_t> oob(g.oob_size);
  if (!device_->ReadOob(ppn, oob.data(), g.oob_size).ok()) return 0;

  // A delta's OOB slot is appended only after its payload landed completely,
  // so every legitimate non-erased delta-area byte is covered by some slot —
  // uncovered non-0xFF bytes are torn remnants of an interrupted append.
  std::vector<bool> covered(g.page_size - delta_off, false);
  uint32_t initial_bytes = static_cast<uint32_t>(flash::EccRegionBytes(delta_off));
  for (uint32_t base = initial_bytes; base + kSlotBytes <= g.oob_size;
       base += kSlotBytes) {
    uint16_t offset = DecodeU16(&oob[base]);
    uint16_t len = DecodeU16(&oob[base + 2]);
    if (offset == 0xFFFF && len == 0xFFFF) break;  // erased slot: no more deltas
    if (offset + len > g.page_size || len == 0) break;  // damaged: VerifyEcc reports
    for (uint32_t i = std::max(static_cast<uint32_t>(offset), delta_off);
         i < static_cast<uint32_t>(offset) + len; i++) {
      covered[i - delta_off] = true;
    }
  }
  uint32_t dropped = 0;
  for (uint32_t i = delta_off; i < g.page_size; i++) {
    if (!covered[i - delta_off] && data[i] != 0xFF) {
      data[i] = 0xFF;
      dropped++;
    }
  }
  reg.stats.torn_delta_bytes_dropped += dropped;
  return dropped;
}

Status NoFtl::MountScan(RegionId r, MountScanReport* report) {
  IPA_TRACE_SPAN("ftl.mount_scan", &device_->clock());
  Region& reg = regions_[r];
  const auto& g = device_->geometry();
  MountScanReport rep;
  if (reg.config.manage_ecc) {
    std::vector<uint8_t> buf(g.page_size);
    std::vector<uint8_t> oob(g.oob_size);
    for (Lba lba = 0; lba < reg.map.size(); lba++) {
      flash::Ppn ppn = reg.map[lba];
      if (ppn == flash::kInvalidPpn) continue;
      rep.pages_scanned++;
      Fm().mount_pages_scanned.Inc();
      IPA_RETURN_NOT_OK(device_->ReadPage(ppn, buf.data(), nullptr, false));
      Status s = VerifyEcc(reg, ppn, buf.data());
      if (s.IsCorruption()) {
        rep.uncorrectable_pages++;  // beyond DBMS-side repair; WAL redo rewrites
        Fm().mount_uncorrectable.Inc();
        continue;
      }
      IPA_RETURN_NOT_OK(s);
      uint32_t dropped = ScrubUncoveredDeltaBytes(reg, ppn, buf.data());
      if (dropped == 0) continue;
      rep.torn_bytes_dropped += dropped;
      Fm().mount_torn_bytes.Add(dropped);
      // Quarantine: the torn bytes sit in flash cells that already took
      // charge, so the page can never absorb a clean append there again.
      // Rewrite the scrubbed image (with its OOB, preserving valid delta
      // slots) onto a fresh page and invalidate the torn one for GC.
      IPA_RETURN_NOT_OK(device_->ReadOob(ppn, oob.data(), g.oob_size));
      flash::Ppn new_ppn;
      uint32_t new_bidx;
      IPA_RETURN_NOT_OK(AllocatePage(reg, &new_ppn, &new_bidx, /*for_gc=*/true));
      IPA_RETURN_NOT_OK(device_->ProgramPage(new_ppn, buf.data(), oob.data(),
                                             g.oob_size, nullptr, false));
      Invalidate(reg, ppn);
      reg.map[lba] = new_ppn;
      size_t nidx = static_cast<size_t>(new_bidx) * g.pages_per_block +
                    (new_ppn % g.pages_per_block);
      reg.rmap[nidx] = lba;
      reg.blocks[new_bidx].valid++;
      reg.stats.torn_pages_quarantined++;
      rep.torn_pages_quarantined++;
      Fm().mount_torn_quarantined.Inc();
      Fm().map_updates.Inc();
    }
  }
  if (report) *report = rep;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Host commands
// ---------------------------------------------------------------------------

Status NoFtl::ReadPage(RegionId r, Lba lba, uint8_t* out) {
  Region& reg = regions_[r];
  const auto& g = device_->geometry();
  if (lba >= reg.map.size()) return Status::InvalidArgument("lba out of range");
  reg.stats.host_reads++;
  flash::Ppn ppn = reg.map[lba];
  if (ppn == flash::kInvalidPpn) {
    std::memset(out, 0xFF, g.page_size);
    return Status::OK();
  }
  flash::IoTiming t;
  IPA_RETURN_NOT_OK(device_->ReadPage(ppn, out, &t, true));
  reg.stats.read_latency.Add(t.LatencyUs());
  Fm().host_reads.Inc();
  Fm().read_latency.Record(t.LatencyUs());
  if (reg.config.manage_ecc) {
    IPA_RETURN_NOT_OK(VerifyEcc(reg, ppn, out));
    // Never serve torn (power-loss-interrupted) delta bytes to the host.
    ScrubUncoveredDeltaBytes(reg, ppn, out);
  }
  return Status::OK();
}

Status NoFtl::WritePage(RegionId r, Lba lba, const uint8_t* data, bool sync) {
  Region& reg = regions_[r];
  const auto& g = device_->geometry();
  if (lba >= reg.map.size()) return Status::InvalidArgument("lba out of range");
  IPA_RETURN_NOT_OK(RunGcIfNeeded(reg));

  flash::Ppn ppn;
  uint32_t bidx;
  IPA_RETURN_NOT_OK(AllocatePage(reg, &ppn, &bidx));
  flash::IoTiming t;
  IPA_RETURN_NOT_OK(device_->ProgramPage(ppn, data, nullptr, 0, &t, sync));
  if (reg.config.manage_ecc) {
    IPA_RETURN_NOT_OK(WriteInitialEcc(reg, ppn, data));
  }

  flash::Ppn old = reg.map[lba];
  if (old != flash::kInvalidPpn) Invalidate(reg, old);
  reg.map[lba] = ppn;
  size_t ridx = static_cast<size_t>(bidx) * g.pages_per_block +
                (ppn % g.pages_per_block);
  reg.rmap[ridx] = lba;
  reg.blocks[bidx].valid++;

  reg.stats.host_page_writes++;
  reg.stats.write_latency.Add(t.LatencyUs());
  Fm().host_page_writes.Inc();
  Fm().map_updates.Inc();
  Fm().write_latency.Record(t.LatencyUs());
  return Status::OK();
}

Status NoFtl::WriteDelta(RegionId r, Lba lba, uint32_t offset, const uint8_t* bytes,
                         uint32_t len, bool sync) {
  Region& reg = regions_[r];
  if (lba >= reg.map.size()) return Status::InvalidArgument("lba out of range");
  if (reg.config.ipa_mode == IpaMode::kOff) {
    return Status::NotSupported("region has IPA disabled");
  }
  flash::Ppn ppn = reg.map[lba];
  if (ppn == flash::kInvalidPpn) {
    return Status::InvalidArgument("write_delta on unwritten logical page");
  }
  const auto& g = device_->geometry();
  uint32_t page_in_block = static_cast<uint32_t>(ppn % g.pages_per_block);
  if (reg.config.ipa_mode == IpaMode::kOddMlc &&
      !flash::IsLsbPage(g, page_in_block)) {
    reg.stats.delta_fallbacks++;
    Fm().delta_fallbacks.Inc();
    return Status::NotSupported("logical page resides on an MSB flash page");
  }
  uint32_t slot = 0;
  if (reg.config.manage_ecc) {
    // Find the first erased slot (survives GC migrations, which copy OOB).
    uint32_t body = reg.config.delta_area_offset;
    uint32_t initial_bytes = static_cast<uint32_t>(flash::EccRegionBytes(body));
    std::vector<uint8_t> oob(g.oob_size);
    IPA_RETURN_NOT_OK(device_->ReadOob(ppn, oob.data(), g.oob_size));
    bool found = false;
    for (uint32_t base = initial_bytes; base + kSlotBytes <= g.oob_size;
         base += kSlotBytes, slot++) {
      if (DecodeU16(&oob[base]) == 0xFFFF && DecodeU16(&oob[base + 2]) == 0xFFFF) {
        found = true;
        break;
      }
    }
    if (!found) {
      reg.stats.delta_fallbacks++;
      Fm().delta_fallbacks.Inc();
      return Status::NotSupported("no free OOB ECC slot for delta");
    }
  }

  flash::IoTiming t;
  Status s = device_->ProgramDelta(ppn, offset, bytes, len, &t, sync);
  if (!s.ok()) {
    if (s.IsNotSupported()) {
      reg.stats.delta_fallbacks++;
      Fm().delta_fallbacks.Inc();
    }
    return s;
  }
  if (reg.config.manage_ecc) {
    IPA_RETURN_NOT_OK(AppendDeltaEcc(reg, ppn, slot, offset, bytes, len));
  }
  reg.stats.host_delta_writes++;
  reg.stats.delta_bytes_written += len;
  reg.stats.delta_write_latency.Add(t.LatencyUs());
  Fm().host_delta_writes.Inc();
  Fm().delta_bytes_written.Add(len);
  Fm().delta_write_latency.Record(t.LatencyUs());
  return Status::OK();
}

bool NoFtl::DeltaWritePossible(RegionId r, Lba lba) const {
  const Region& reg = regions_[r];
  if (reg.config.ipa_mode == IpaMode::kOff) return false;
  if (lba >= reg.map.size()) return false;
  flash::Ppn ppn = reg.map[lba];
  if (ppn == flash::kInvalidPpn) return false;
  const auto& g = device_->geometry();
  uint32_t page_in_block = static_cast<uint32_t>(ppn % g.pages_per_block);
  if (reg.config.ipa_mode == IpaMode::kOddMlc &&
      !flash::IsLsbPage(g, page_in_block)) {
    return false;
  }
  const flash::PageState& ps = device_->page_state(ppn);
  return ps.program_count >= 1 && ps.program_count < g.max_programs_per_page;
}

uint32_t NoFtl::DeltaAppendsRemaining(RegionId r, Lba lba) const {
  if (!DeltaWritePossible(r, lba)) return 0;
  const Region& reg = regions_[r];
  const auto& g = device_->geometry();
  const flash::PageState& ps = device_->page_state(reg.map[lba]);
  return g.max_programs_per_page - ps.program_count;
}

Status NoFtl::Trim(RegionId r, Lba lba) {
  Region& reg = regions_[r];
  if (lba >= reg.map.size()) return Status::InvalidArgument("lba out of range");
  flash::Ppn old = reg.map[lba];
  if (old != flash::kInvalidPpn) {
    Invalidate(reg, old);
    reg.map[lba] = flash::kInvalidPpn;
    Fm().trims.Inc();
    Fm().map_updates.Inc();
  }
  return Status::OK();
}

bool NoFtl::IsMapped(RegionId r, Lba lba) const {
  const Region& reg = regions_[r];
  return lba < reg.map.size() && reg.map[lba] != flash::kInvalidPpn;
}

flash::Ppn NoFtl::PhysicalOf(RegionId r, Lba lba) const {
  const Region& reg = regions_[r];
  if (lba >= reg.map.size()) return flash::kInvalidPpn;
  return reg.map[lba];
}

}  // namespace ipa::ftl
