// StreamFtl: a stream-aware page-mapping FTL with warm/cold GC.
//
// PageFtl (page_ftl.h) interleaves every host write onto one frontier per
// chip, so WAL, heap, index and writeback pages of wildly different update
// temperatures end up in the same blocks and GC must copy hot and cold data
// together — the bulk of the ~3x write-amplification gap Table 12 measures
// against NoFTL+IPA. StreamFtl closes part of that gap from the FTL side,
// after "Enlightening Flash Storage to Stream Writes by Objects" (multi-
// stream write segregation) and the warm/cold victim selection from Dayan &
// Bonnet's page-mapping-FTL GC survey:
//
//  * Per-stream frontiers. WriteTagged(lba, data, sync, tag) routes the
//    write to one log-structured frontier per StreamTag per chip, opened
//    lazily on first use. Pages that die together (same object, similar
//    update rate) stay in the same blocks, so victims are mostly-invalid.
//    Untagged WritePage is WriteTagged(kUntagged): a StreamFtl driven by a
//    tag-oblivious engine degenerates to exactly a PageFtl.
//  * GC relocation stream. Migration copies carry kGcRelocation: data that
//    survived one collection is demonstrably cold and is never re-mixed
//    with fresh host writes.
//  * Warm/cold victim selection. Every block tracks an age-weighted
//    invalidation rate (its temperature): invalidation count over the time
//    since the mean invalidation instant. The victim score divides the
//    cost-benefit score (1-u)/(1+u)*age by (1 + temperature*age), so warm
//    blocks — whose remaining valid pages will likely self-invalidate for
//    free — are passed over and cold mostly-invalid blocks are reclaimed
//    first.
//  * Pressure spill. When no free block is available for a stream's
//    frontier, the write spills into another stream's open frontier
//    (counted in streamftl.stream_spills) instead of failing: liveness
//    equals PageFtl's at the same over-provisioning.
//
// Mapping persistence follows PageFtl: a 27-byte OOB reverse-map entry per
// program (magic, lba, sequence number, data CRC, stream tag, entry CRC)
// rebuilt by Mount() with latest-wins-by-sequence semantics, data-CRC
// torn-program quarantine, and lazy re-erase of content-erased blocks.
// write_delta stays structurally impossible (whole-page ECC, relocation on
// every write): DeltaWritePossible is always false. See
// docs/FTL_BACKENDS.md.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "flash/flash_array.h"
#include "ftl/ftl_backend.h"

namespace ipa::ftl {

struct StreamFtlConfig {
  std::string name = "streamftl";
  /// Host-visible capacity in logical pages.
  uint64_t logical_pages = 0;
  /// Fraction of extra physical space beyond logical capacity.
  double over_provisioning = 0.10;
  /// Run the garbage collector when free blocks drop below this count.
  uint32_t gc_free_block_threshold = 3;
};

class StreamFtl : public FtlBackend {
 public:
  /// Bytes of one OOB reverse-map entry (must fit the geometry's oob_size):
  /// the PageFtl layout plus one stream-tag byte.
  static constexpr uint32_t kOobEntryBytes = 27;

  /// Claims physical blocks from the front of every chip. Fails when the
  /// device is too small for logical_pages * (1 + over_provisioning) plus GC
  /// headroom, or its OOB area cannot hold a reverse-map entry. The device
  /// must outlive the StreamFtl and must not be shared with another FTL.
  static Result<std::unique_ptr<StreamFtl>> Create(
      flash::FlashArray* device, const StreamFtlConfig& config);

  // -- PageDevice -------------------------------------------------------------
  Status ReadPage(Lba lba, uint8_t* out) override;
  Status WritePage(Lba lba, const uint8_t* data, bool sync) override;
  Status WriteTagged(Lba lba, const uint8_t* data, bool sync,
                     StreamTag tag) override;
  Status WriteDelta(Lba lba, uint32_t offset, const uint8_t* bytes,
                    uint32_t len, bool sync) override;
  bool DeltaWritePossible(Lba lba) const override;
  bool IsMapped(Lba lba) const override;
  uint32_t page_size() const override { return device_->geometry().page_size; }
  uint64_t capacity_pages() const override { return config_.logical_pages; }

  // -- FtlBackend management plane --------------------------------------------
  const char* backend_name() const override { return "streamftl"; }
  Status Trim(Lba lba) override;
  /// Discard all RAM state and rebuild the L2P map from the OOB reverse-map
  /// entries (latest wins by sequence number; data-CRC mismatches are
  /// quarantined). Idempotent; also legal on a freshly created FTL. All
  /// frontiers die with power: every content-bearing block closes, every
  /// temperature resets.
  Status Mount(MountScanReport* report = nullptr) override;
  Status Audit() const override;
  const RegionStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = RegionStats{}; }

  // -- Maintenance / introspection --------------------------------------------
  /// Run one GC pass unconditionally (fuzzer maintenance op). OK when no
  /// victim qualifies.
  Status CollectOnce();

  const StreamFtlConfig& config() const { return config_; }
  flash::FlashArray& device() { return *device_; }
  SimClock& clock() { return device_->clock(); }
  /// Physical page currently backing `lba` (tests / introspection).
  flash::Ppn PhysicalOf(Lba lba) const;
  /// Stream whose frontier opened the block currently backing `lba`
  /// (kUntagged when unmapped). Tests use this to prove segregation — e.g.
  /// that GC-migrated pages live in kGcRelocation blocks.
  StreamTag StreamOf(Lba lba) const;
  size_t free_block_count() const { return free_blocks_.size(); }
  /// Writes that had to borrow another stream's frontier under space
  /// pressure (this instance).
  uint64_t stream_spills() const { return stream_spills_; }

 private:
  struct BlockInfo {
    flash::Pbn pbn = 0;
    uint32_t valid = 0;      ///< Valid (mapped) pages in this block.
    uint32_t next_page = 0;  ///< Write frontier (page index within block).
    bool is_free = true;
    bool is_active = false;
    /// A free block whose physical erase state is unknown (after Mount):
    /// erased lazily when promoted to active.
    bool needs_erase = false;
    /// Stream whose frontier opened this block (RAM-only; forensic).
    StreamTag stream = StreamTag::kUntagged;
    /// Last program into this block (victim-selection age); RAM-only.
    SimTime last_write = 0;
    /// Temperature inputs: invalidations since the block was (re)opened and
    /// the sum of their timestamps, so the age-weighted invalidation rate is
    /// inv_count / (now - mean invalidation time + 1). RAM-only.
    uint32_t inv_count = 0;
    uint64_t inv_time_sum = 0;
  };

  StreamFtl(flash::FlashArray* device, const StreamFtlConfig& config);

  Status ClaimBlocks();
  /// Allocate the next frontier page of `stream`, promoting (and lazily
  /// erasing) free blocks as needed. Host allocations keep one free block in
  /// reserve for GC migration headroom; under pressure the write spills into
  /// another stream's open frontier rather than failing.
  Status AllocatePage(StreamTag stream, flash::Ppn* ppn, uint32_t* block_idx,
                      bool for_gc);
  /// Promote the least-worn free block on `chip` to `stream`'s frontier;
  /// false when the chip has no eligible free block.
  bool OpenFrontier(StreamTag stream, uint32_t chip, bool for_gc, Status* st);
  Status RunGcIfNeeded();
  Status GarbageCollect();
  /// Victim block index for the warm/cold policy; -1 when none qualifies.
  int PickVictim() const;
  void Invalidate(flash::Ppn ppn);
  uint32_t BlockIndexOf(flash::Ppn ppn) const;
  int32_t& ActiveSlot(StreamTag stream, uint32_t chip);
  int32_t ActiveSlot(StreamTag stream, uint32_t chip) const;

  /// Program `data` to `ppn` with a fresh reverse-map OOB entry for `lba`.
  Status ProgramMapped(flash::Ppn ppn, uint32_t block_idx, Lba lba,
                       StreamTag stream, const uint8_t* data,
                       flash::IoTiming* t, bool sync);
  void EncodeOobEntry(uint8_t* entry, Lba lba, uint64_t seq, uint32_t data_crc,
                      StreamTag stream) const;
  /// Decode + verify the entry CRC; false for erased/torn/foreign OOB.
  bool DecodeOobEntry(const uint8_t* entry, Lba* lba, uint64_t* seq,
                      uint32_t* data_crc, StreamTag* stream) const;

  flash::FlashArray* device_;
  StreamFtlConfig config_;
  std::vector<BlockInfo> blocks_;      // all blocks owned by the FTL
  std::vector<uint32_t> free_blocks_;  // indices into `blocks_`
  /// Device pbn -> index into `blocks_`; UINT32_MAX for unowned blocks.
  std::vector<uint32_t> pbn_to_idx_;
  /// Active (frontier) block index per (stream, chip); -1 if none. Flat:
  /// stream * total_chips + chip.
  std::vector<int32_t> active_;
  /// Round-robin chip cursor per stream (keeps chip parallelism per stream
  /// without coupling streams' placement).
  std::vector<uint32_t> rr_cursor_;
  std::vector<flash::Ppn> map_;  // lba -> ppn
  /// Reverse map: block_idx * pages_per_block + page -> lba.
  std::vector<Lba> rmap_;
  uint64_t write_seq_ = 0;  ///< Monotonic, consumed per program attempt.
  uint64_t stream_spills_ = 0;
  RegionStats stats_;
};

}  // namespace ipa::ftl
