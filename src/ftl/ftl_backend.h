// FtlBackend: the common contract of every flash-translation backend.
//
// The engine programs against PageDevice (page_device.h) — the data path.
// FtlBackend extends it with the management plane every backend shares:
// trim, the mount-time scan recovery runs before ARIES redo, a structural
// audit for the differential checker, and the statistics the evaluation
// tables are built from. Four backends implement it:
//
//  * NoFtl regions (noftl.h)     — DBMS-managed raw flash (Section 5); the
//    region device returned by NoFtl::region_device() is an FtlBackend;
//  * PageFtl (page_ftl.h)        — a conventional page-mapping FTL with a
//    log-structured frontier and greedy / cost-benefit GC, the paper's
//    implicit "cooked device" baseline;
//  * StreamFtl (stream_ftl.h)    — the page-mapping FTL extended with
//    multi-stream write segregation (one frontier per StreamTag per chip)
//    and warm/cold temperature-driven GC victim selection;
//  * BlackboxSsd (blackbox_ssd.h) — a conventional SSD with the write_delta
//    interface extension (Section 7 / conclusions).
//
// Database::RecoverAfterPowerLoss() mounts every distinct FtlBackend bound
// to a tablespace, so crash recovery works identically across backends. See
// docs/FTL_BACKENDS.md for the full contract and per-backend semantics.

#pragma once

#include <cstdint>

#include "common/stats.h"
#include "ftl/page_device.h"

namespace ipa::ftl {

/// Logical page address within one backend (see page_device.h).
constexpr Lba kInvalidLba = ~0ull;

/// Per-backend I/O statistics; the raw material for the paper's tables.
/// Delta/scrub/wear fields stay zero on backends without those mechanisms
/// (PageFtl never appends in place; see docs/FTL_BACKENDS.md).
struct RegionStats {
  uint64_t host_reads = 0;         ///< read_page commands.
  uint64_t host_page_writes = 0;   ///< Out-of-place page writes.
  uint64_t host_delta_writes = 0;  ///< In-place appends (write_delta).
  uint64_t delta_bytes_written = 0;
  uint64_t delta_fallbacks = 0;    ///< write_delta rejected -> caller wrote page.
  uint64_t gc_page_migrations = 0;
  uint64_t gc_erases = 0;
  uint64_t ecc_corrected_bits = 0;
  uint64_t ecc_uncorrectable = 0;
  /// Torn-write detection (power loss mid-append, docs/CRASH_TESTING.md).
  /// PageFtl counts CRC-rejected map entries under torn_pages_quarantined:
  /// the torn page is neutralized at mount (left unmapped), not rewritten.
  uint64_t torn_delta_bytes_dropped = 0;  ///< Uncovered delta bytes scrubbed on read.
  uint64_t torn_pages_quarantined = 0;    ///< Pages neutralized by the mount scan.
  uint64_t scrub_refreshes = 0;         ///< Correct-and-Refresh reprograms.
  uint64_t wear_level_migrations = 0;   ///< Static wear-leveling page moves.
  uint64_t wear_level_swaps = 0;        ///< Cold-block/worn-block exchanges.
  LatencyStats read_latency;
  LatencyStats write_latency;        ///< Out-of-place page writes.
  LatencyStats delta_write_latency;  ///< write_delta appends.

  uint64_t HostWrites() const { return host_page_writes + host_delta_writes; }
  double MigrationsPerHostWrite() const {
    return HostWrites() == 0 ? 0.0
                             : static_cast<double>(gc_page_migrations) /
                                   static_cast<double>(HostWrites());
  }
  double ErasesPerHostWrite() const {
    return HostWrites() == 0 ? 0.0
                             : static_cast<double>(gc_erases) /
                                   static_cast<double>(HostWrites());
  }
  /// Share of host writes served as in-place appends, in percent.
  double IpaSharePercent() const {
    return HostWrites() == 0 ? 0.0
                             : 100.0 * static_cast<double>(host_delta_writes) /
                                   static_cast<double>(HostWrites());
  }
};

/// Result of a mount-time scan after power loss (FtlBackend::Mount).
struct MountScanReport {
  uint64_t pages_scanned = 0;
  uint64_t torn_pages_quarantined = 0;
  uint64_t torn_bytes_dropped = 0;
  uint64_t uncorrectable_pages = 0;
};

/// The pluggable backend contract: data path (PageDevice) + management
/// plane. All methods must keep the backend's structural invariants intact
/// across power loss — Audit() must pass after every host command and after
/// every completed Mount(), including ones interrupted mid-way.
class FtlBackend : public PageDevice {
 public:
  /// Stable identifier for tables / logs ("noftl", "pageftl", "streamftl",
  /// "blackbox").
  virtual const char* backend_name() const = 0;

  /// Drop the mapping of a logical page (e.g. file truncation). Backends
  /// whose mapping persists only via on-media metadata may resurrect a
  /// trimmed page at the next Mount() — trim is advisory across power loss.
  virtual Status Trim(Lba lba) = 0;

  /// Mount-time scan after a power loss: neutralize torn on-media state so
  /// engine-level (WAL) recovery never observes it. Called by
  /// Database::RecoverAfterPowerLoss() before ARIES redo.
  virtual Status Mount(MountScanReport* report = nullptr) = 0;

  /// Structural audit (differential-checker oracle). Returns Corruption
  /// describing the first violation.
  virtual Status Audit() const = 0;

  virtual const RegionStats& stats() const = 0;
  virtual void ResetStats() = 0;
};

}  // namespace ipa::ftl
