// BlackboxSsd: a conventional SSD with the write_delta extension.
//
// The paper's conclusions: "IPA can be realized on traditional SSDs, by
// extending the block-device interface and the on-board controller
// functionality at the cost of lower performance compared to IPA under
// NoFTL." This class models exactly that deployment:
//
//  * the device owns its flash (chips, FTL, GC, over-provisioning) — the
//    host sees only a logical block space;
//  * every command crosses a host interface (SATA-class) that adds fixed
//    latency and serializes at the configured queue depth — the
//    "lower performance" part relative to NoFTL's direct access;
//  * ECC runs on the on-board controller (the *second* ECC alternative of
//    Section 6.2): the controller must be told the page's [NxM] layout via
//    a vendor-specific scheme-hint control command before write_delta is
//    accepted, so it can split ECC into ECC_initial + per-delta parts;
//  * the DBMS gets none of NoFTL's placement/region control; selective IPA
//    per object is impossible — the hint applies device-wide. The same
//    opacity rules out per-object write streams: the block interface
//    carries no StreamTag, so WAL/heap/index writes all land on the
//    device's internal frontiers interleaved. Stream segregation requires
//    either NoFTL regions or the host-visible stream-aware FTL
//    (ftl::StreamFtl, docs/FTL_BACKENDS.md).
//
// Internally the FTL is the same page-mapping machinery as a one-region
// NoFtl (an SSD *is* an FTL in a box); what differs is the interface.

#pragma once

#include <memory>

#include "ftl/ftl_backend.h"
#include "ftl/noftl.h"

namespace ipa::ftl {

struct BlackboxSsdConfig {
  /// Host-visible capacity in logical pages.
  uint64_t logical_pages = 0;
  uint32_t page_size = 4096;
  flash::CellType cell_type = flash::CellType::kSlc;
  double over_provisioning = 0.10;
  /// Fixed host-interface latency added to every command (SATA link +
  /// protocol + firmware dispatch), in simulated microseconds.
  uint64_t interface_latency_us = 25;
  /// Enable the write_delta command extension (off = a plain SSD).
  bool write_delta_extension = false;
  uint64_t capacity_slack_blocks = 8;
};

class BlackboxSsd : public FtlBackend {
 public:
  explicit BlackboxSsd(const BlackboxSsdConfig& config);

  /// Vendor control command: tell the controller where the delta-record
  /// area begins on every page so the on-board ECC can cover the body and
  /// each appended delta separately. Must precede any WriteDelta; applies
  /// device-wide (no per-object regions on a black-box SSD, and likewise no
  /// per-object streams — WriteTagged's StreamTag is dropped at this
  /// interface; see ftl::StreamFtl for the stream-aware deployment). May
  /// only be issued while the device is empty (ECC layout is fixed at
  /// format time).
  Status SetSchemeHint(uint32_t delta_area_offset);

  // -- PageDevice -------------------------------------------------------------
  Status ReadPage(Lba lba, uint8_t* out) override;
  Status WritePage(Lba lba, const uint8_t* data, bool sync) override;
  Status WriteDelta(Lba lba, uint32_t offset, const uint8_t* bytes,
                    uint32_t len, bool sync) override;
  bool DeltaWritePossible(Lba lba) const override;
  bool IsMapped(Lba lba) const override;
  uint32_t page_size() const override { return config_.page_size; }
  uint64_t capacity_pages() const override { return config_.logical_pages; }

  // -- FtlBackend management plane (cross the host interface too) -------------
  const char* backend_name() const override { return "blackbox"; }
  Status Trim(Lba lba) override;
  Status Mount(MountScanReport* report = nullptr) override;
  Status Audit() const override { return ftl_->AuditRegion(region_); }

  // -- Introspection ------------------------------------------------------------
  const RegionStats& stats() const override { return ftl_->region_stats(region_); }
  void ResetStats() override { ftl_->ResetStats(region_); }
  flash::FlashArray& flash() { return *dev_; }
  SimClock& clock() { return dev_->clock(); }
  bool hint_set() const { return hint_set_; }

 private:
  /// Charge the host-interface cost of one command.
  void InterfaceDelay(bool sync);

  BlackboxSsdConfig config_;
  std::unique_ptr<flash::FlashArray> dev_;
  std::unique_ptr<NoFtl> ftl_;
  RegionId region_ = 0;
  bool hint_set_ = false;
  bool any_write_ = false;
  uint32_t delta_area_offset_ = 0;
};

}  // namespace ipa::ftl
