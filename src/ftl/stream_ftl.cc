#include "ftl/stream_ftl.h"

#include <algorithm>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/metrics.h"

namespace ipa::ftl {

namespace {
/// OOB reverse-map entry layout (little-endian) — PageFtl's layout plus the
/// stream tag, under a distinct magic so the two FTLs' media are never
/// confused:
///   [0,2)   magic 0x51F7 ("SF")
///   [2,10)  lba
///   [10,18) sequence number (monotonic per FTL instance and across mounts)
///   [18,22) CRC32-C of the page body as written
///   [22]    stream tag (StreamTag) of the frontier that took the write
///   [23,27) CRC32-C of bytes [0,23) — rejects torn / erased entries
constexpr uint16_t kOobMagic = 0x51F7;
constexpr uint32_t kStreamOffset = 22;
constexpr uint32_t kEntryCrcOffset = 23;

/// Time window (simulated us) over which a block's invalidation rate counts
/// as "warm" in victim selection. Fixed (not age-proportional) so the
/// penalty of long-past invalidations fades to nothing instead of
/// saturating.
constexpr double kTemperatureWindowUs = 10000.0;

/// Process-wide stream-FTL counters, summed over every StreamFtl instance
/// (per-instance splits stay in RegionStats).
struct StreamFtlCounters {
  metrics::Counter host_reads{"streamftl.host_reads"};
  metrics::Counter host_page_writes{"streamftl.host_page_writes"};
  metrics::Counter gc_page_migrations{"streamftl.gc.page_migrations"};
  metrics::Counter gc_erases{"streamftl.gc.erases"};
  metrics::Counter trims{"streamftl.trims"};
  metrics::Counter map_updates{"streamftl.map_updates"};
  metrics::Counter mount_pages_scanned{"streamftl.mount.pages_scanned"};
  metrics::Counter mount_torn_quarantined{
      "streamftl.mount.torn_pages_quarantined"};
  metrics::Counter stream_spills{"streamftl.stream_spills"};
  metrics::Counter stream_writes[kNumStreams] = {
      metrics::Counter{"streamftl.writes.untagged"},
      metrics::Counter{"streamftl.writes.wal"},
      metrics::Counter{"streamftl.writes.heap"},
      metrics::Counter{"streamftl.writes.index"},
      metrics::Counter{"streamftl.writes.delta_writeback"},
      metrics::Counter{"streamftl.writes.gc_relocation"},
  };
  metrics::Histogram read_latency{"streamftl.read_latency_us"};
  metrics::Histogram write_latency{"streamftl.write_latency_us"};
};

StreamFtlCounters& Sm() {
  static StreamFtlCounters counters;
  return counters;
}
}  // namespace

StreamFtl::StreamFtl(flash::FlashArray* device, const StreamFtlConfig& config)
    : device_(device), config_(config) {}

Result<std::unique_ptr<StreamFtl>> StreamFtl::Create(
    flash::FlashArray* device, const StreamFtlConfig& config) {
  const auto& g = device->geometry();
  if (config.logical_pages == 0) {
    return Status::InvalidArgument("stream FTL needs logical_pages > 0");
  }
  if (g.oob_size < kOobEntryBytes) {
    return Status::InvalidArgument("OOB too small for a reverse-map entry");
  }
  if (config.gc_free_block_threshold == 0) {
    return Status::InvalidArgument("gc_free_block_threshold must be >= 1");
  }
  std::unique_ptr<StreamFtl> ftl(new StreamFtl(device, config));
  IPA_RETURN_NOT_OK(ftl->ClaimBlocks());
  return ftl;
}

Status StreamFtl::ClaimBlocks() {
  const auto& g = device_->geometry();
  uint64_t physical_pages_needed = static_cast<uint64_t>(
      static_cast<double>(config_.logical_pages) *
      (1.0 + config_.over_provisioning));
  uint64_t blocks_needed =
      (physical_pages_needed + g.pages_per_block - 1) / g.pages_per_block +
      config_.gc_free_block_threshold + 1;
  // Same floor as PageFtl: GC always needs victims and migration headroom.
  // Per-stream frontiers need no extra claim — under pressure a write spills
  // into another stream's frontier instead of pinning a block per stream.
  blocks_needed = std::max<uint64_t>(
      blocks_needed, 2ull * g.total_chips() + config_.gc_free_block_threshold);
  uint64_t per_chip = (blocks_needed + g.total_chips() - 1) / g.total_chips();
  if (per_chip > g.blocks_per_chip) {
    return Status::OutOfSpace("stream FTL '" + config_.name +
                              "' needs a larger device");
  }

  pbn_to_idx_.assign(g.total_blocks(), UINT32_MAX);
  for (uint32_t chip = 0; chip < g.total_chips(); chip++) {
    for (uint64_t b = 0; b < per_chip; b++) {
      BlockInfo bi;
      bi.pbn = static_cast<flash::Pbn>(chip) * g.blocks_per_chip + b;
      uint32_t idx = static_cast<uint32_t>(blocks_.size());
      pbn_to_idx_[bi.pbn] = idx;
      blocks_.push_back(bi);
      free_blocks_.push_back(idx);
    }
  }
  active_.assign(static_cast<size_t>(kNumStreams) * g.total_chips(), -1);
  rr_cursor_.assign(kNumStreams, 0);
  map_.assign(config_.logical_pages, flash::kInvalidPpn);
  rmap_.assign(blocks_.size() * static_cast<size_t>(g.pages_per_block),
               kInvalidLba);
  return Status::OK();
}

int32_t& StreamFtl::ActiveSlot(StreamTag stream, uint32_t chip) {
  return active_[static_cast<size_t>(stream) * device_->geometry().total_chips() +
                 chip];
}

int32_t StreamFtl::ActiveSlot(StreamTag stream, uint32_t chip) const {
  return active_[static_cast<size_t>(stream) * device_->geometry().total_chips() +
                 chip];
}

uint32_t StreamFtl::BlockIndexOf(flash::Ppn ppn) const {
  flash::Pbn pbn = flash::BlockOf(device_->geometry(), ppn);
  return pbn < pbn_to_idx_.size() ? pbn_to_idx_[pbn] : UINT32_MAX;
}

void StreamFtl::Invalidate(flash::Ppn ppn) {
  const auto& g = device_->geometry();
  uint32_t bidx = BlockIndexOf(ppn);
  if (bidx == UINT32_MAX) return;
  uint32_t page = static_cast<uint32_t>(ppn % g.pages_per_block);
  size_t ridx = static_cast<size_t>(bidx) * g.pages_per_block + page;
  if (rmap_[ridx] != kInvalidLba) {
    rmap_[ridx] = kInvalidLba;
    BlockInfo& b = blocks_[bidx];
    if (b.valid > 0) b.valid--;
    // Temperature input: when and how often this block loses valid pages.
    b.inv_count++;
    b.inv_time_sum += device_->clock().Now();
  }
}

bool StreamFtl::OpenFrontier(StreamTag stream, uint32_t chip, bool for_gc,
                             Status* st) {
  *st = Status::OK();
  const auto& g = device_->geometry();
  // Host allocations must leave at least one free block for GC migrations.
  if (!for_gc && free_blocks_.size() <= 1) return false;
  int best = -1;
  uint32_t best_wear = UINT32_MAX;
  for (size_t i = 0; i < free_blocks_.size(); i++) {
    uint32_t bi = free_blocks_[i];
    if (blocks_[bi].pbn / g.blocks_per_chip != chip) continue;
    uint32_t wear = device_->EraseCount(blocks_[bi].pbn);
    if (wear < best_wear) {
      best_wear = wear;
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return false;
  uint32_t bi = free_blocks_[best];
  if (blocks_[bi].needs_erase) {
    // Post-mount block of unknown physical state (a torn program can leave
    // charge on content-erased cells): erase before first use. A power loss
    // here leaves the block free and the erase re-runs after the next
    // Mount().
    Status s = device_->EraseBlock(blocks_[bi].pbn, nullptr, false);
    if (!s.ok()) {
      *st = s;
      return false;
    }
    blocks_[bi].needs_erase = false;
    stats_.gc_erases++;
    Sm().gc_erases.Inc();
  }
  free_blocks_.erase(free_blocks_.begin() + best);
  BlockInfo& blk = blocks_[bi];
  blk.is_free = false;
  blk.is_active = true;
  blk.next_page = 0;
  blk.stream = stream;
  blk.inv_count = 0;
  blk.inv_time_sum = 0;
  ActiveSlot(stream, chip) = static_cast<int32_t>(bi);
  return true;
}

Status StreamFtl::AllocatePage(StreamTag stream, flash::Ppn* ppn,
                               uint32_t* block_idx, bool for_gc) {
  const auto& g = device_->geometry();
  uint32_t s = static_cast<uint32_t>(stream);
  // Per-chip fan-out is a luxury: it buys chip parallelism but pins one
  // partially-filled block per open frontier. Only fan out while the free
  // pool comfortably exceeds the GC trigger plus one block per stream —
  // otherwise each stream keeps a single frontier (rotating chips as blocks
  // fill), so segregation never starves GC into high-utilization victims.
  bool ample = free_blocks_.size() >
               config_.gc_free_block_threshold + kNumStreams;
  for (uint32_t attempt = 0; attempt < g.total_chips(); attempt++) {
    uint32_t chip = rr_cursor_[s] % g.total_chips();
    rr_cursor_[s]++;
    int32_t& active = ActiveSlot(stream, chip);
    if (active >= 0 && blocks_[active].next_page >= g.pages_per_block) {
      blocks_[active].is_active = false;
      active = -1;
    }
    if (active < 0) {
      if (!ample) continue;  // reuse an open frontier on a later chip
      Status st;
      if (!OpenFrontier(stream, chip, for_gc, &st)) {
        IPA_RETURN_NOT_OK(st);
        continue;  // no free block on this chip; try the next chip
      }
    }
    BlockInfo& blk = blocks_[ActiveSlot(stream, chip)];
    *ppn = blk.pbn * g.pages_per_block + blk.next_page;
    blk.next_page++;
    *block_idx = static_cast<uint32_t>(ActiveSlot(stream, chip));
    return Status::OK();
  }
  // No open frontier anywhere for this stream: open exactly one, on the
  // first chip (from the cursor) that still has a free block.
  for (uint32_t attempt = 0; attempt < g.total_chips(); attempt++) {
    uint32_t chip = rr_cursor_[s] % g.total_chips();
    rr_cursor_[s]++;
    Status st;
    if (!OpenFrontier(stream, chip, for_gc, &st)) {
      IPA_RETURN_NOT_OK(st);
      continue;
    }
    BlockInfo& blk = blocks_[ActiveSlot(stream, chip)];
    *ppn = blk.pbn * g.pages_per_block + blk.next_page;
    blk.next_page++;
    *block_idx = static_cast<uint32_t>(ActiveSlot(stream, chip));
    return Status::OK();
  }
  // Pressure spill: no free block anywhere for this stream's frontier, and
  // every frontier it already owns is full. Borrow any other stream's open
  // frontier (deterministic stream/chip scan order) so liveness matches
  // PageFtl at the same over-provisioning; segregation degrades gracefully
  // instead of the write failing.
  for (uint32_t s2 = 0; s2 < kNumStreams; s2++) {
    if (s2 == s) continue;
    for (uint32_t chip = 0; chip < g.total_chips(); chip++) {
      int32_t slot = ActiveSlot(static_cast<StreamTag>(s2), chip);
      if (slot < 0 || blocks_[slot].next_page >= g.pages_per_block) continue;
      BlockInfo& blk = blocks_[slot];
      *ppn = blk.pbn * g.pages_per_block + blk.next_page;
      blk.next_page++;
      *block_idx = static_cast<uint32_t>(slot);
      stream_spills_++;
      Sm().stream_spills.Inc();
      return Status::OK();
    }
  }
  return Status::OutOfSpace("stream FTL '" + config_.name +
                            "' has no free pages");
}

int StreamFtl::PickVictim() const {
  const auto& g = device_->geometry();
  int victim = -1;
  double best_score = 0.0;
  SimTime now = device_->clock().Now();
  for (uint32_t i = 0; i < blocks_.size(); i++) {
    const BlockInfo& b = blocks_[i];
    if (b.is_free || b.is_active) continue;
    uint32_t written = std::min(b.next_page, g.pages_per_block);
    uint32_t reclaim = written - b.valid;
    if (reclaim == 0) continue;  // erasing gains nothing
    // Warm/cold cost-benefit (Dayan & Bonnet): start from the classic
    // (1-u)/(1+u) * age, then divide by the block's temperature — its
    // age-weighted invalidation rate (invalidations per us, measured
    // against the mean invalidation instant) scaled by a fixed window. A
    // warm block (recent, frequent invalidations) scores low: its remaining
    // valid pages will likely self-invalidate for free, so GC waits. A cold
    // block's penalty fades as its invalidations recede into the past.
    double u = static_cast<double>(b.valid) / g.pages_per_block;
    double age = static_cast<double>(now - b.last_write) + 1.0;
    double score = (1.0 - u) / (1.0 + u) * age;
    if (b.inv_count > 0) {
      double mean_inv = static_cast<double>(b.inv_time_sum) /
                        static_cast<double>(b.inv_count);
      double temperature = static_cast<double>(b.inv_count) /
                           (static_cast<double>(now) - mean_inv + 1.0);
      score /= 1.0 + temperature * kTemperatureWindowUs;
    }
    if (victim < 0 || score > best_score) {
      best_score = score;
      victim = static_cast<int>(i);
    }
  }
  return victim;
}

Status StreamFtl::RunGcIfNeeded() {
  while (free_blocks_.size() < config_.gc_free_block_threshold) {
    Status s = GarbageCollect();
    if (!s.ok()) return s.IsNotFound() ? Status::OK() : s;
  }
  return Status::OK();
}

Status StreamFtl::CollectOnce() {
  Status s = GarbageCollect();
  return s.IsNotFound() ? Status::OK() : s;
}

Status StreamFtl::GarbageCollect() {
  IPA_TRACE_SPAN("streamftl.gc", &device_->clock());
  const auto& g = device_->geometry();
  int victim = PickVictim();
  if (victim < 0) return Status::NotFound("no GC victim available");
  BlockInfo& vb = blocks_[victim];

  // Migrate valid pages (device-internal I/O: no host transfer, async) onto
  // the dedicated GC-relocation frontier: data that survived a collection is
  // demonstrably cold and never re-mixes with fresh host writes. Migrated
  // copies get fresh sequence numbers, so a mount that sees both the old and
  // the new physical page resolves to the migrated one.
  std::vector<uint8_t> buf(g.page_size);
  for (uint32_t page = 0; page < g.pages_per_block; page++) {
    size_t ridx = static_cast<size_t>(victim) * g.pages_per_block + page;
    Lba lba = rmap_[ridx];
    if (lba == kInvalidLba) continue;
    flash::Ppn old_ppn = vb.pbn * g.pages_per_block + page;
    IPA_RETURN_NOT_OK(device_->ReadPage(old_ppn, buf.data(), nullptr, false));

    flash::Ppn new_ppn;
    uint32_t new_bidx;
    IPA_RETURN_NOT_OK(AllocatePage(StreamTag::kGcRelocation, &new_ppn,
                                   &new_bidx, /*for_gc=*/true));
    IPA_RETURN_NOT_OK(ProgramMapped(new_ppn, new_bidx, lba,
                                    StreamTag::kGcRelocation, buf.data(),
                                    nullptr, false));
    rmap_[ridx] = kInvalidLba;
    vb.valid--;
    size_t nidx = static_cast<size_t>(new_bidx) * g.pages_per_block +
                  (new_ppn % g.pages_per_block);
    rmap_[nidx] = lba;
    blocks_[new_bidx].valid++;
    map_[lba] = new_ppn;
    stats_.gc_page_migrations++;
    Sm().gc_page_migrations.Inc();
    Sm().map_updates.Inc();
  }

  IPA_RETURN_NOT_OK(device_->EraseBlock(vb.pbn, nullptr, false));
  vb.is_free = true;
  vb.next_page = 0;
  vb.valid = 0;
  vb.needs_erase = false;
  vb.stream = StreamTag::kUntagged;
  vb.inv_count = 0;
  vb.inv_time_sum = 0;
  free_blocks_.push_back(static_cast<uint32_t>(victim));
  stats_.gc_erases++;
  Sm().gc_erases.Inc();
  return Status::OK();
}

void StreamFtl::EncodeOobEntry(uint8_t* entry, Lba lba, uint64_t seq,
                               uint32_t data_crc, StreamTag stream) const {
  EncodeU16(entry, kOobMagic);
  EncodeU64(entry + 2, lba);
  EncodeU64(entry + 10, seq);
  EncodeU32(entry + 18, data_crc);
  entry[kStreamOffset] = static_cast<uint8_t>(stream);
  EncodeU32(entry + kEntryCrcOffset, Crc32c(entry, kEntryCrcOffset));
}

bool StreamFtl::DecodeOobEntry(const uint8_t* entry, Lba* lba, uint64_t* seq,
                               uint32_t* data_crc, StreamTag* stream) const {
  if (DecodeU16(entry) != kOobMagic) return false;
  if (DecodeU32(entry + kEntryCrcOffset) != Crc32c(entry, kEntryCrcOffset)) {
    return false;
  }
  if (entry[kStreamOffset] >= kNumStreams) return false;
  *lba = DecodeU64(entry + 2);
  *seq = DecodeU64(entry + 10);
  *data_crc = DecodeU32(entry + 18);
  *stream = static_cast<StreamTag>(entry[kStreamOffset]);
  return true;
}

Status StreamFtl::ProgramMapped(flash::Ppn ppn, uint32_t block_idx, Lba lba,
                                StreamTag stream, const uint8_t* data,
                                flash::IoTiming* t, bool sync) {
  const auto& g = device_->geometry();
  uint8_t entry[kOobEntryBytes];
  // The sequence number is consumed even when the program tears: a retry
  // after recovery must outrank whatever the torn attempt left on media.
  EncodeOobEntry(entry, lba, write_seq_++, Crc32c(data, g.page_size), stream);
  IPA_RETURN_NOT_OK(
      device_->ProgramPage(ppn, data, entry, kOobEntryBytes, t, sync));
  blocks_[block_idx].last_write = device_->clock().Now();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Host commands
// ---------------------------------------------------------------------------

Status StreamFtl::ReadPage(Lba lba, uint8_t* out) {
  const auto& g = device_->geometry();
  if (lba >= map_.size()) return Status::InvalidArgument("lba out of range");
  stats_.host_reads++;
  flash::Ppn ppn = map_[lba];
  if (ppn == flash::kInvalidPpn) {
    std::memset(out, 0xFF, g.page_size);
    return Status::OK();
  }
  flash::IoTiming t;
  IPA_RETURN_NOT_OK(device_->ReadPage(ppn, out, &t, true));
  stats_.read_latency.Add(t.LatencyUs());
  Sm().host_reads.Inc();
  Sm().read_latency.Record(t.LatencyUs());
  return Status::OK();
}

Status StreamFtl::WritePage(Lba lba, const uint8_t* data, bool sync) {
  return WriteTagged(lba, data, sync, StreamTag::kUntagged);
}

Status StreamFtl::WriteTagged(Lba lba, const uint8_t* data, bool sync,
                              StreamTag tag) {
  const auto& g = device_->geometry();
  if (lba >= map_.size()) return Status::InvalidArgument("lba out of range");
  if (static_cast<uint8_t>(tag) >= kNumStreams) {
    return Status::InvalidArgument("unknown stream tag");
  }
  IPA_RETURN_NOT_OK(RunGcIfNeeded());

  flash::Ppn ppn;
  uint32_t bidx;
  IPA_RETURN_NOT_OK(AllocatePage(tag, &ppn, &bidx, /*for_gc=*/false));
  flash::IoTiming t;
  IPA_RETURN_NOT_OK(ProgramMapped(ppn, bidx, lba, tag, data, &t, sync));

  flash::Ppn old = map_[lba];
  if (old != flash::kInvalidPpn) Invalidate(old);
  map_[lba] = ppn;
  size_t ridx = static_cast<size_t>(bidx) * g.pages_per_block +
                (ppn % g.pages_per_block);
  rmap_[ridx] = lba;
  blocks_[bidx].valid++;

  stats_.host_page_writes++;
  stats_.write_latency.Add(t.LatencyUs());
  Sm().host_page_writes.Inc();
  Sm().stream_writes[static_cast<uint8_t>(tag)].Inc();
  Sm().map_updates.Inc();
  Sm().write_latency.Record(t.LatencyUs());
  return Status::OK();
}

Status StreamFtl::WriteDelta(Lba, uint32_t, const uint8_t*, uint32_t, bool) {
  return Status::NotSupported(
      "stream FTL relocates on every write; no in-place appends");
}

bool StreamFtl::DeltaWritePossible(Lba) const { return false; }

bool StreamFtl::IsMapped(Lba lba) const {
  return lba < map_.size() && map_[lba] != flash::kInvalidPpn;
}

flash::Ppn StreamFtl::PhysicalOf(Lba lba) const {
  return lba < map_.size() ? map_[lba] : flash::kInvalidPpn;
}

StreamTag StreamFtl::StreamOf(Lba lba) const {
  flash::Ppn ppn = PhysicalOf(lba);
  if (ppn == flash::kInvalidPpn) return StreamTag::kUntagged;
  uint32_t bidx = BlockIndexOf(ppn);
  return bidx == UINT32_MAX ? StreamTag::kUntagged : blocks_[bidx].stream;
}

Status StreamFtl::Trim(Lba lba) {
  if (lba >= map_.size()) return Status::InvalidArgument("lba out of range");
  flash::Ppn old = map_[lba];
  if (old != flash::kInvalidPpn) {
    Invalidate(old);
    map_[lba] = flash::kInvalidPpn;
    Sm().trims.Inc();
    Sm().map_updates.Inc();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Mount: rebuild the L2P map from the on-media reverse map
// ---------------------------------------------------------------------------

Status StreamFtl::Mount(MountScanReport* report) {
  IPA_TRACE_SPAN("streamftl.mount", &device_->clock());
  const auto& g = device_->geometry();
  MountScanReport rep;

  // Discard all RAM mapping state; media is the only source of truth. Every
  // frontier and every temperature died with power.
  map_.assign(config_.logical_pages, flash::kInvalidPpn);
  rmap_.assign(rmap_.size(), kInvalidLba);
  free_blocks_.clear();
  active_.assign(static_cast<size_t>(kNumStreams) * g.total_chips(), -1);
  SimTime now = device_->clock().Now();

  // Latest-wins winner per lba, resolved by on-media sequence number.
  std::vector<uint64_t> win_seq(config_.logical_pages, 0);
  uint64_t max_seq = 0;
  std::vector<uint8_t> oob(g.oob_size);
  std::vector<uint8_t> buf(g.page_size);

  for (uint32_t b = 0; b < blocks_.size(); b++) {
    BlockInfo& blk = blocks_[b];
    bool has_content = false;
    StreamTag block_stream = StreamTag::kUntagged;
    uint64_t block_stream_seq = 0;
    for (uint32_t page = 0; page < g.pages_per_block; page++) {
      flash::Ppn ppn = blk.pbn * g.pages_per_block + page;
      rep.pages_scanned++;
      Sm().mount_pages_scanned.Inc();
      IPA_RETURN_NOT_OK(device_->ReadOob(ppn, oob.data(), kOobEntryBytes));

      Lba lba;
      uint64_t seq;
      uint32_t data_crc;
      StreamTag stream;
      if (DecodeOobEntry(oob.data(), &lba, &seq, &data_crc, &stream)) {
        has_content = true;
        // Forensic only: label the block with its latest writer's stream.
        if (seq >= block_stream_seq) {
          block_stream_seq = seq;
          block_stream = stream;
        }
        if (lba >= config_.logical_pages) continue;  // foreign/garbage entry
        // A torn program can commit the OOB entry before the data: the body
        // CRC is the arbiter. A mismatching page is stale garbage that GC
        // reclaims with its block; the mapping entry is simply not believed.
        IPA_RETURN_NOT_OK(device_->ReadPage(ppn, buf.data(), nullptr, false));
        if (Crc32c(buf.data(), g.page_size) != data_crc) {
          rep.torn_pages_quarantined++;
          stats_.torn_pages_quarantined++;
          Sm().mount_torn_quarantined.Inc();
          continue;
        }
        max_seq = std::max(max_seq, seq);
        if (map_[lba] != flash::kInvalidPpn && win_seq[lba] >= seq) continue;
        map_[lba] = ppn;
        win_seq[lba] = seq;
      } else {
        // No verifiable entry. The page may still hold torn content —
        // detectable by a non-erased OOB prefix or data byte.
        bool oob_blank = true;
        for (uint32_t i = 0; i < kOobEntryBytes; i++) {
          if (oob[i] != 0xFF) {
            oob_blank = false;
            break;
          }
        }
        if (!oob_blank) {
          has_content = true;
        } else {
          IPA_RETURN_NOT_OK(device_->ReadPage(ppn, buf.data(), nullptr, false));
          for (uint32_t i = 0; i < g.page_size; i++) {
            if (buf[i] != 0xFF) {
              has_content = true;
              break;
            }
          }
        }
      }
    }
    // Content-bearing blocks are closed for writing (full frontier) until GC
    // reclaims them; content-erased blocks may still carry charge from a
    // torn program, so they are re-erased lazily before first use.
    blk.is_active = false;
    blk.valid = 0;  // recomputed from the winners below
    blk.last_write = now;
    blk.stream = block_stream;
    blk.inv_count = 0;
    blk.inv_time_sum = 0;
    if (has_content) {
      blk.is_free = false;
      blk.needs_erase = false;
      blk.next_page = g.pages_per_block;
    } else {
      blk.is_free = true;
      blk.needs_erase = true;
      blk.next_page = 0;
      blk.stream = StreamTag::kUntagged;
      free_blocks_.push_back(b);
    }
  }

  for (Lba lba = 0; lba < map_.size(); lba++) {
    flash::Ppn ppn = map_[lba];
    if (ppn == flash::kInvalidPpn) continue;
    uint32_t bidx = BlockIndexOf(ppn);
    size_t ridx = static_cast<size_t>(bidx) * g.pages_per_block +
                  (ppn % g.pages_per_block);
    rmap_[ridx] = lba;
    blocks_[bidx].valid++;
  }
  write_seq_ = max_seq + 1;

  if (report) *report = rep;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Audit (differential-checker oracle)
// ---------------------------------------------------------------------------

Status StreamFtl::Audit() const {
  const auto& g = device_->geometry();
  const uint32_t ppb = g.pages_per_block;
  auto fail = [&](const std::string& what) {
    return Status::Corruption("stream FTL '" + config_.name +
                              "' audit: " + what);
  };

  // Forward map: every mapped lba must land on programmed media inside a
  // non-free owned block, below the write frontier, with a matching
  // reverse-map entry and a verifiable OOB entry naming this lba.
  for (Lba lba = 0; lba < map_.size(); lba++) {
    flash::Ppn ppn = map_[lba];
    if (ppn == flash::kInvalidPpn) continue;
    std::string at = "lba " + std::to_string(lba);
    uint32_t bidx = BlockIndexOf(ppn);
    if (bidx == UINT32_MAX) return fail(at + " maps outside the FTL's blocks");
    const BlockInfo& blk = blocks_[bidx];
    if (blk.is_free) return fail(at + " maps into a free block");
    uint32_t page = static_cast<uint32_t>(ppn % ppb);
    if (page >= blk.next_page) {
      return fail(at + " maps beyond the write frontier");
    }
    if (rmap_[static_cast<size_t>(bidx) * ppb + page] != lba) {
      return fail(at + " has no matching reverse-map entry");
    }
    const flash::PageState& ps = device_->page_state(ppn);
    if (ps.IsErased()) return fail(at + " maps to erased media");
    if (ps.oob.size() < kOobEntryBytes) {
      return fail(at + " has no OOB reverse-map entry");
    }
    Lba oob_lba;
    uint64_t oob_seq;
    uint32_t data_crc;
    StreamTag oob_stream;
    if (!DecodeOobEntry(ps.oob.data(), &oob_lba, &oob_seq, &data_crc,
                        &oob_stream)) {
      return fail(at + " has a torn OOB reverse-map entry");
    }
    if (oob_lba != lba) {
      return fail(at + " OOB entry names lba " + std::to_string(oob_lba));
    }
    if (oob_seq >= write_seq_) {
      return fail(at + " OOB sequence number is ahead of the allocator");
    }
  }

  // Reverse map and per-block counters.
  for (uint32_t b = 0; b < blocks_.size(); b++) {
    const BlockInfo& blk = blocks_[b];
    std::string at = "block " + std::to_string(b);
    if (blk.next_page > ppb) return fail(at + " frontier beyond the block");
    uint32_t rmap_valid = 0;
    for (uint32_t p = 0; p < ppb; p++) {
      Lba lba = rmap_[static_cast<size_t>(b) * ppb + p];
      if (lba == kInvalidLba) continue;
      rmap_valid++;
      if (lba >= map_.size() || map_[lba] != blk.pbn * ppb + p) {
        return fail(at + " reverse-map entry is not mirrored in the map");
      }
    }
    if (rmap_valid != blk.valid) {
      return fail(at + " valid counter " + std::to_string(blk.valid) +
                  " != reverse-map population " + std::to_string(rmap_valid));
    }
    if (blk.is_free) {
      if (blk.valid != 0) return fail(at + " is free but holds valid pages");
      if (blk.next_page != 0) {
        return fail(at + " is free with a nonzero frontier");
      }
      if (blk.is_active) return fail(at + " is free and active");
      // Blocks awaiting their lazy post-mount erase may hold torn remnants.
      if (!blk.needs_erase) {
        for (uint32_t p = 0; p < ppb; p++) {
          if (!device_->page_state(blk.pbn * ppb + p).IsErased()) {
            return fail(at + " is free but page " + std::to_string(p) +
                        " is programmed");
          }
        }
      }
    } else if (blk.needs_erase) {
      return fail(at + " is in use but still flagged for a lazy erase");
    }
  }

  // Free list <-> free flag, exactly.
  std::vector<bool> listed(blocks_.size(), false);
  for (uint32_t idx : free_blocks_) {
    if (idx >= blocks_.size()) return fail("free list entry out of range");
    if (listed[idx]) return fail("block listed twice in the free list");
    listed[idx] = true;
    if (!blocks_[idx].is_free) {
      return fail("free list references non-free block " + std::to_string(idx));
    }
  }
  for (uint32_t b = 0; b < blocks_.size(); b++) {
    if (blocks_[b].is_free && !listed[b]) {
      return fail("free block " + std::to_string(b) +
                  " is missing from the free list");
    }
  }

  // Frontier table <-> active blocks: every slot names an active block of
  // its own stream on its own chip; every active block sits in exactly one
  // slot.
  std::vector<bool> active_listed(blocks_.size(), false);
  for (uint32_t s = 0; s < kNumStreams; s++) {
    for (uint32_t chip = 0; chip < g.total_chips(); chip++) {
      int32_t a = ActiveSlot(static_cast<StreamTag>(s), chip);
      if (a < 0) continue;
      if (static_cast<size_t>(a) >= blocks_.size()) {
        return fail("frontier table entry out of range");
      }
      if (active_listed[a]) {
        return fail("block " + std::to_string(a) +
                    " is the frontier of two streams");
      }
      active_listed[a] = true;
      const BlockInfo& blk = blocks_[a];
      if (!blk.is_active) {
        return fail("frontier table references non-active block " +
                    std::to_string(a));
      }
      if (blk.stream != static_cast<StreamTag>(s)) {
        return fail("block " + std::to_string(a) +
                    " is the frontier of a stream it does not belong to");
      }
      if (blk.pbn / g.blocks_per_chip != chip) {
        return fail("block " + std::to_string(a) +
                    " is the frontier of the wrong chip");
      }
    }
  }
  for (uint32_t b = 0; b < blocks_.size(); b++) {
    if (blocks_[b].is_active && !active_listed[b]) {
      return fail("active block " + std::to_string(b) +
                  " is not registered in the frontier table");
    }
  }
  return Status::OK();
}

}  // namespace ipa::ftl
