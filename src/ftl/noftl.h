// NoFTL: DBMS-integrated management of raw flash (Section 5).
//
// Instead of hiding flash behind a black-box FTL, NoFTL gives the DBMS
// direct control over the device through *Regions*. A region owns a set of
// physical blocks, carries its own logical-page address space, mapping
// table, garbage collector and over-provisioning, and is configured with an
// IPA mode:
//
//   kOff     traditional out-of-place page writes only;
//   kSlc     write_delta allowed on every page (SLC flash);
//   kPSlc    MLC used in pseudo-SLC mode: only LSB pages are allocated
//            (half capacity, faster programs), write_delta on all of them;
//   kOddMlc  full MLC capacity; write_delta only on LSB pages, MSB-mapped
//            logical pages silently fall back to out-of-place writes.
//
// The host interface is the paper's Section 7 command set: read_page,
// write_page (always out-of-place), write_delta (in-place append via ISPP)
// and trim, plus statistics the evaluation tables are built from.
//
// ECC (Section 6.2, first alternative): when a region is created with
// `manage_ecc`, the FTL computes a SmartMedia-Hamming ECC over the page body
// on every out-of-place write (ECC_initial) and over every appended delta
// (ECC_delta_i), stores them in the page's OOB area via ISPP appends, and
// verifies/corrects on every read.

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_clock.h"
#include "common/stats.h"
#include "common/status.h"
#include "flash/flash_array.h"
#include "ftl/ftl_backend.h"

namespace ipa::ftl {

/// IPA capability of a region (see file header).
enum class IpaMode { kOff, kSlc, kPSlc, kOddMlc };

const char* IpaModeName(IpaMode m);

/// CREATE REGION ... parameters (Figure 3).
struct RegionConfig {
  std::string name = "default";
  /// Host-visible capacity in logical pages.
  uint64_t logical_pages = 0;
  /// Fraction of extra physical space for out-of-place writes / GC headroom.
  double over_provisioning = 0.10;
  IpaMode ipa_mode = IpaMode::kOff;
  /// Byte offset where the delta-record area starts on every page of this
  /// region; ECC_initial covers [0, delta_area_offset). Use page_size when
  /// IPA is off.
  uint32_t delta_area_offset = 0;
  /// Chips this region may allocate from (MAX_CHIPS / MAX_CHANNELS in the
  /// DDL). Empty = all chips.
  std::vector<uint32_t> chips;
  /// Run the garbage collector when free blocks drop below this count.
  uint32_t gc_free_block_threshold = 3;
  /// Compute/verify DBMS-side ECC in the OOB area.
  bool manage_ecc = false;
};

// RegionStats and MountScanReport live in ftl_backend.h — they are shared by
// every backend (NoFtl regions, PageFtl, BlackboxSsd).

/// Handle to a created region.
using RegionId = uint32_t;

class NoFtl {
 public:
  /// The device must outlive the NoFtl instance.
  explicit NoFtl(flash::FlashArray* device);

  /// Create a region; claims physical blocks from the device pool.
  Result<RegionId> CreateRegion(const RegionConfig& config);

  const RegionConfig& region_config(RegionId r) const { return regions_[r].config; }
  const RegionStats& region_stats(RegionId r) const { return regions_[r].stats; }
  void ResetStats(RegionId r) { regions_[r].stats = RegionStats{}; }
  size_t region_count() const { return regions_.size(); }

  flash::FlashArray& device() { return *device_; }
  SimClock& clock() { return device_->clock(); }

  // -- Host command set (Section 7) ----------------------------------------

  /// Read a logical page into `out` (page_size bytes). Pages never written
  /// read as 0xFF. Runs ECC verify/correct when the region manages ECC.
  Status ReadPage(RegionId r, Lba lba, uint8_t* out);

  /// Out-of-place write of a full logical page: allocates a fresh physical
  /// page, programs it, invalidates the previous version, may trigger GC.
  /// `sync=false` models background (cleaner) writes that reserve device
  /// time without blocking the simulated host.
  Status WritePage(RegionId r, Lba lba, const uint8_t* data, bool sync = true);

  /// write_delta(LBA, offset, delta_length, delta_bytes[]) — append a
  /// delta-record in place on the physical page currently holding `lba`.
  /// Returns NotSupported when the region/page cannot take the append (IPA
  /// off, MSB page in odd-MLC mode, program budget exhausted, ISPP
  /// violation); the caller is expected to fall back to WritePage.
  Status WriteDelta(RegionId r, Lba lba, uint32_t offset, const uint8_t* bytes,
                    uint32_t len, bool sync = true);

  /// Whether write_delta can currently succeed on this logical page (mode,
  /// page type and remaining program budget). Lets the buffer manager decide
  /// the write path before serializing delta-records.
  bool DeltaWritePossible(RegionId r, Lba lba) const;

  /// Number of delta appends still available on the physical page currently
  /// backing `lba` (0 when IPA is impossible there).
  uint32_t DeltaAppendsRemaining(RegionId r, Lba lba) const;

  /// Drop the mapping of a logical page (e.g. file truncation).
  Status Trim(RegionId r, Lba lba);

  /// Mount-time scan after a power loss: read every mapped page, scrub
  /// delta-area bytes not covered by any OOB ECC slot (a torn write_delta
  /// programs data before its slot, so uncovered non-erased bytes are
  /// exactly the torn ones) and quarantine affected pages by rewriting the
  /// cleaned image out-of-place. Uncorrectable pages are counted and left
  /// for engine-level (WAL) recovery. No-op for regions without managed ECC.
  Status MountScan(RegionId r, MountScanReport* report = nullptr);

  // -- Maintenance (background) ----------------------------------------------

  /// Correct-and-Refresh scrub (paper Section 2.3): read every mapped page,
  /// ECC-correct it (regions with manage_ecc), and — when bits had leaked —
  /// re-program the corrected image onto the *same* physical page with ISPP,
  /// restoring cell charge without an erase. With `refresh_all` every page
  /// is refreshed even if currently clean (periodic-scrub mode for regions
  /// without managed ECC).
  Status ScrubRegion(RegionId r, bool refresh_all = false);

  /// Static wear leveling: when the erase-count spread across the region's
  /// blocks exceeds `max_spread`, migrate the content of the coldest
  /// (least-erased, data-bearing) block into the most-worn free block so
  /// future erases land on rested cells. One swap per call.
  Status WearLevelRegion(RegionId r, uint32_t max_spread = 8);

  /// Erase-count spread (max - min) across the region's blocks.
  uint32_t EraseSpread(RegionId r) const;

  /// Structural audit of a region (differential-checker oracle): the lba->ppn
  /// map and the reverse map must be mutually consistent, per-block valid
  /// counters must equal the reverse-map population, mapped pages must sit on
  /// programmed media inside their block's write frontier (on usable page
  /// indices for the region's IPA mode), the free list must exactly mirror
  /// the free flag, and — for regions with managed ECC — every non-erased
  /// delta-area byte of every mapped page must be covered by an OOB ECC slot.
  /// Returns Corruption describing the first violation. These invariants hold
  /// after every host command, maintenance call and completed recovery,
  /// including ones interrupted by a power loss.
  Status AuditRegion(RegionId r) const;

  /// True if the logical page has ever been written.
  bool IsMapped(RegionId r, Lba lba) const;

  /// Physical page currently backing `lba` (tests / introspection).
  flash::Ppn PhysicalOf(RegionId r, Lba lba) const;

  /// FtlBackend view of one region (what the engine programs against and
  /// what recovery mounts). The returned pointer is owned by the NoFtl and
  /// valid for its lifetime.
  FtlBackend* region_device(RegionId r);

 private:
  /// Adapts (NoFtl, RegionId) to the FtlBackend interface.
  class RegionDevice : public FtlBackend {
   public:
    RegionDevice(NoFtl* ftl, RegionId region) : ftl_(ftl), region_(region) {}
    Status ReadPage(Lba lba, uint8_t* out) override {
      return ftl_->ReadPage(region_, lba, out);
    }
    Status WritePage(Lba lba, const uint8_t* data, bool sync) override {
      return ftl_->WritePage(region_, lba, data, sync);
    }
    Status WriteDelta(Lba lba, uint32_t offset, const uint8_t* bytes,
                      uint32_t len, bool sync) override {
      return ftl_->WriteDelta(region_, lba, offset, bytes, len, sync);
    }
    bool DeltaWritePossible(Lba lba) const override {
      return ftl_->DeltaWritePossible(region_, lba);
    }
    bool IsMapped(Lba lba) const override {
      return ftl_->IsMapped(region_, lba);
    }
    uint32_t page_size() const override {
      return ftl_->device().geometry().page_size;
    }
    uint64_t capacity_pages() const override {
      return ftl_->region_config(region_).logical_pages;
    }
    const char* backend_name() const override { return "noftl"; }
    Status Trim(Lba lba) override { return ftl_->Trim(region_, lba); }
    Status Mount(MountScanReport* report) override {
      return ftl_->MountScan(region_, report);
    }
    Status Audit() const override { return ftl_->AuditRegion(region_); }
    const RegionStats& stats() const override {
      return ftl_->region_stats(region_);
    }
    void ResetStats() override { ftl_->ResetStats(region_); }

   private:
    NoFtl* ftl_;
    RegionId region_;
  };
  struct BlockInfo {
    flash::Pbn pbn = 0;
    uint32_t valid = 0;        ///< Valid (mapped) pages in this block.
    uint32_t next_page = 0;    ///< Write frontier (page index within block).
    bool is_free = true;
    bool is_active = false;
  };

  struct Region {
    RegionConfig config;
    std::vector<BlockInfo> blocks;          // all blocks owned by the region
    std::vector<uint32_t> free_blocks;      // indices into `blocks`
    /// Active (frontier) block index per owned chip; -1 if none.
    std::vector<int32_t> active_by_chip;
    std::vector<uint32_t> chips;            // chips in use
    uint32_t rr_cursor = 0;                 // round-robin chip cursor
    std::vector<flash::Ppn> map;            // lba -> ppn
    /// Reverse map: index within region's physical page space -> lba.
    std::vector<Lba> rmap;                  // indexed by (block_idx*pages_per_block+page)
    std::unordered_map<flash::Pbn, uint32_t> pbn_to_idx;
    RegionStats stats;
  };

  /// Pages usable per block given the region's IPA mode (pSLC halves it).
  uint32_t UsablePagesPerBlock(const Region& reg) const;
  /// i-th usable page index within a block for this region's mode.
  uint32_t UsablePage(const Region& reg, uint32_t i) const;

  /// Allocate the next free physical page. Host allocations keep a small
  /// free-block reserve untouched so the garbage collector always has
  /// migration headroom; GC allocations (`for_gc`) may dip into it.
  Status AllocatePage(Region& reg, flash::Ppn* ppn, uint32_t* block_idx,
                      bool for_gc = false);
  Status RunGcIfNeeded(Region& reg);
  Status GarbageCollect(Region& reg);
  void Invalidate(Region& reg, flash::Ppn ppn);
  uint32_t BlockIndexOf(const Region& reg, flash::Ppn ppn) const;

  /// OOB layout helpers for managed ECC.
  Status WriteInitialEcc(Region& reg, flash::Ppn ppn, const uint8_t* data);
  Status AppendDeltaEcc(Region& reg, flash::Ppn ppn, uint32_t slot,
                        uint32_t offset, const uint8_t* bytes, uint32_t len);
  Status VerifyEcc(Region& reg, flash::Ppn ppn, uint8_t* data);

  /// Reset delta-area bytes of `data` that no OOB slot covers back to 0xFF
  /// (buffer only, media untouched); returns the number of bytes dropped.
  uint32_t ScrubUncoveredDeltaBytes(Region& reg, flash::Ppn ppn, uint8_t* data);

  flash::FlashArray* device_;
  std::vector<Region> regions_;
  std::deque<RegionDevice> region_devices_;  // stable addresses
  flash::Pbn next_unclaimed_block_ = 0;  // simple bump allocator over device blocks
  std::vector<std::deque<flash::Pbn>> device_free_;  // per-chip unclaimed blocks
};

}  // namespace ipa::ftl
