// PageDevice: the storage interface the engine programs against.
//
// Two implementations exist, mirroring the paper's two deployment models:
//  * NoFTL regions (Section 5)  — the DBMS controls raw flash directly;
//    NoFtl::region_device() adapts a region to this interface;
//  * BlackboxSsd (Section 7 / conclusions) — a conventional SSD whose
//    block-device interface is extended with the write_delta command and a
//    scheme-hint control command for on-controller ECC, "at the cost of
//    lower performance compared to IPA under NoFTL".

#pragma once

#include <cstdint>

#include "common/status.h"

namespace ipa::ftl {

using Lba = uint64_t;

class PageDevice {
 public:
  virtual ~PageDevice() = default;

  /// Read a logical page (page_size bytes; unwritten pages read as 0xFF).
  virtual Status ReadPage(Lba lba, uint8_t* out) = 0;

  /// Out-of-place write of a full logical page.
  virtual Status WritePage(Lba lba, const uint8_t* data, bool sync) = 0;

  /// write_delta(LBA, offset, delta_length, delta_bytes[]). NotSupported
  /// when the device/page cannot take the append (caller falls back).
  virtual Status WriteDelta(Lba lba, uint32_t offset, const uint8_t* bytes,
                            uint32_t len, bool sync) = 0;

  /// Whether write_delta can currently succeed on this logical page.
  virtual bool DeltaWritePossible(Lba lba) const = 0;

  /// True if the logical page has ever been written.
  virtual bool IsMapped(Lba lba) const = 0;

  virtual uint32_t page_size() const = 0;

  /// Host-visible capacity in logical pages.
  virtual uint64_t capacity_pages() const = 0;
};

}  // namespace ipa::ftl
