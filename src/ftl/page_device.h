// PageDevice: the storage interface the engine programs against.
//
// Implementations mirror the paper's deployment models plus one extension:
//  * NoFTL regions (Section 5)  — the DBMS controls raw flash directly;
//    NoFtl::region_device() adapts a region to this interface;
//  * BlackboxSsd (Section 7 / conclusions) — a conventional SSD whose
//    block-device interface is extended with the write_delta command and a
//    scheme-hint control command for on-controller ECC, "at the cost of
//    lower performance compared to IPA under NoFTL";
//  * PageFtl / StreamFtl (src/ftl/page_ftl.h, src/ftl/stream_ftl.h) — the
//    cooked-device baselines bench_table12_backend_compare measures the
//    paper's system against.

#pragma once

#include <cstdint>

#include "common/status.h"

namespace ipa::ftl {

using Lba = uint64_t;

/// Logical write stream of a page write (multi-stream SSD style): names the
/// engine object the page belongs to so a stream-aware device can segregate
/// data of different update temperatures onto separate write frontiers.
/// Purely advisory — a device may ignore it (the WriteTagged default does),
/// and ignoring it must be behavior-identical to WritePage.
enum class StreamTag : uint8_t {
  kUntagged = 0,        ///< No classification (legacy WritePage path).
  kWal = 1,             ///< Write-ahead-log appends (sequential, short-lived).
  kHeap = 2,            ///< Heap (table) page writeback.
  kIndex = 3,           ///< B+-tree node writeback.
  kDeltaWriteback = 4,  ///< Hot pages folded back after small-delta updates.
  kGcRelocation = 5,    ///< Device-internal GC migration copies (cold).
};

/// Number of distinct StreamTag values (frontier array bound).
inline constexpr uint32_t kNumStreams = 6;

inline const char* StreamTagName(StreamTag t) {
  switch (t) {
    case StreamTag::kUntagged: return "untagged";
    case StreamTag::kWal: return "wal";
    case StreamTag::kHeap: return "heap";
    case StreamTag::kIndex: return "index";
    case StreamTag::kDeltaWriteback: return "delta-writeback";
    case StreamTag::kGcRelocation: return "gc-relocation";
  }
  return "?";
}

class PageDevice {
 public:
  virtual ~PageDevice() = default;

  /// Read a logical page (page_size bytes; unwritten pages read as 0xFF).
  virtual Status ReadPage(Lba lba, uint8_t* out) = 0;

  /// Out-of-place write of a full logical page.
  virtual Status WritePage(Lba lba, const uint8_t* data, bool sync) = 0;

  /// WritePage with a stream hint. The default implementation drops the tag
  /// and delegates to WritePage, so devices without per-stream placement
  /// (NoFtl regions, PageFtl, BlackboxSsd) stay bit-identical to the
  /// untagged path. StreamFtl overrides this to route the write to the
  /// tag's log-structured frontier.
  virtual Status WriteTagged(Lba lba, const uint8_t* data, bool sync,
                             StreamTag tag) {
    (void)tag;
    return WritePage(lba, data, sync);
  }

  /// write_delta(LBA, offset, delta_length, delta_bytes[]). NotSupported
  /// when the device/page cannot take the append (caller falls back).
  virtual Status WriteDelta(Lba lba, uint32_t offset, const uint8_t* bytes,
                            uint32_t len, bool sync) = 0;

  /// Whether write_delta can currently succeed on this logical page.
  virtual bool DeltaWritePossible(Lba lba) const = 0;

  /// True if the logical page has ever been written.
  virtual bool IsMapped(Lba lba) const = 0;

  virtual uint32_t page_size() const = 0;

  /// Host-visible capacity in logical pages.
  virtual uint64_t capacity_pages() const = 0;
};

}  // namespace ipa::ftl
