// PageFtl: a conventional page-mapping FTL — the paper's implicit baseline.
//
// The paper argues IPA-over-NoFTL against the "cooked device" status quo:
// a black-box FTL that maps every logical page independently, writes
// strictly out-of-place at a log-structured frontier, and pays write
// amplification through garbage collection. This class implements that
// baseline over the same FlashArray so bench_table12_backend_compare can
// measure the comparison instead of asserting it.
//
// Mechanics (Dayan & Bonnet's page-mapping FTL survey):
//  * in-RAM L2P map (lba -> ppn) plus a reverse map for GC;
//  * per-chip active blocks; host writes round-robin across chips;
//  * every program carries a 26-byte OOB reverse-map entry
//    (magic, lba, monotonic sequence number, CRC of the page body, CRC of
//    the entry itself), so Mount() can rebuild the whole L2P map from media
//    with latest-wins-by-sequence semantics after a power loss;
//  * configurable over-provisioning and two GC victim-selection policies:
//    greedy (most reclaimable pages) and cost-benefit ((1-u)/(1+u) * age).
//
// write_delta is structurally impossible here — the FTL relocates pages on
// every write and its ECC covers whole pages — so WriteDelta returns
// NotSupported and DeltaWritePossible is always false. That asymmetry IS the
// measurement: see docs/FTL_BACKENDS.md.
//
// Crash semantics: RAM state dies with power; Mount() trusts only OOB
// entries whose entry CRC verifies and whose data CRC matches the page body
// (a torn program that committed its OOB before its data is detected and
// quarantined). Blocks whose content survived are closed for writing until
// GC reclaims them; content-erased blocks are lazily re-erased before first
// use, because a torn program can leave invisible charge on erased-looking
// cells. Trim() only drops the RAM mapping — the OOB entry stays on media,
// so a trimmed page may resurrect at the next Mount() (trim is advisory
// across power loss, as the FtlBackend contract allows).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "flash/flash_array.h"
#include "ftl/ftl_backend.h"

namespace ipa::ftl {

/// GC victim selection policy (Dayan & Bonnet).
enum class GcPolicy {
  kGreedy,       ///< Most reclaimable (written-but-invalid) pages.
  kCostBenefit,  ///< max (1-u)/(1+u) * age; favors cold, mostly-invalid blocks.
};

const char* GcPolicyName(GcPolicy p);

struct PageFtlConfig {
  std::string name = "pageftl";
  /// Host-visible capacity in logical pages.
  uint64_t logical_pages = 0;
  /// Fraction of extra physical space beyond logical capacity.
  double over_provisioning = 0.10;
  GcPolicy gc_policy = GcPolicy::kGreedy;
  /// Run the garbage collector when free blocks drop below this count.
  uint32_t gc_free_block_threshold = 3;
};

class PageFtl : public FtlBackend {
 public:
  /// Bytes of one OOB reverse-map entry (must fit the geometry's oob_size).
  static constexpr uint32_t kOobEntryBytes = 26;

  /// Claims physical blocks from the front of every chip. Fails when the
  /// device is too small for logical_pages * (1 + over_provisioning) plus GC
  /// headroom, or its OOB area cannot hold a reverse-map entry. The device
  /// must outlive the PageFtl and must not be shared with another FTL.
  static Result<std::unique_ptr<PageFtl>> Create(flash::FlashArray* device,
                                                 const PageFtlConfig& config);

  // -- PageDevice -------------------------------------------------------------
  Status ReadPage(Lba lba, uint8_t* out) override;
  Status WritePage(Lba lba, const uint8_t* data, bool sync) override;
  Status WriteDelta(Lba lba, uint32_t offset, const uint8_t* bytes,
                    uint32_t len, bool sync) override;
  bool DeltaWritePossible(Lba lba) const override;
  bool IsMapped(Lba lba) const override;
  uint32_t page_size() const override { return device_->geometry().page_size; }
  uint64_t capacity_pages() const override { return config_.logical_pages; }

  // -- FtlBackend management plane --------------------------------------------
  const char* backend_name() const override { return "pageftl"; }
  Status Trim(Lba lba) override;
  /// Discard all RAM state and rebuild the L2P map from the OOB reverse-map
  /// entries (latest wins by sequence number; data-CRC mismatches are
  /// quarantined). Idempotent; also legal on a freshly created FTL.
  Status Mount(MountScanReport* report = nullptr) override;
  Status Audit() const override;
  const RegionStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = RegionStats{}; }

  // -- Maintenance / introspection --------------------------------------------
  /// Run one GC pass unconditionally (fuzzer maintenance op). OK when no
  /// victim qualifies.
  Status CollectOnce();

  const PageFtlConfig& config() const { return config_; }
  flash::FlashArray& device() { return *device_; }
  SimClock& clock() { return device_->clock(); }
  /// Physical page currently backing `lba` (tests / introspection).
  flash::Ppn PhysicalOf(Lba lba) const;
  size_t free_block_count() const { return free_blocks_.size(); }

 private:
  struct BlockInfo {
    flash::Pbn pbn = 0;
    uint32_t valid = 0;      ///< Valid (mapped) pages in this block.
    uint32_t next_page = 0;  ///< Write frontier (page index within block).
    bool is_free = true;
    bool is_active = false;
    /// A free block whose physical erase state is unknown (after Mount):
    /// erased lazily when promoted to active.
    bool needs_erase = false;
    /// Last program into this block (cost-benefit GC age); RAM-only.
    SimTime last_write = 0;
  };

  PageFtl(flash::FlashArray* device, const PageFtlConfig& config);

  Status ClaimBlocks();
  /// Allocate the next frontier page, promoting (and lazily erasing) free
  /// blocks as needed. Host allocations keep one free block in reserve for
  /// GC migration headroom.
  Status AllocatePage(flash::Ppn* ppn, uint32_t* block_idx, bool for_gc);
  Status RunGcIfNeeded();
  Status GarbageCollect();
  /// Victim block index for the configured policy; -1 when none qualifies.
  int PickVictim() const;
  void Invalidate(flash::Ppn ppn);
  uint32_t BlockIndexOf(flash::Ppn ppn) const;

  /// Program `data` to `ppn` with a fresh reverse-map OOB entry for `lba`.
  Status ProgramMapped(flash::Ppn ppn, uint32_t block_idx, Lba lba,
                       const uint8_t* data, flash::IoTiming* t, bool sync);
  void EncodeOobEntry(uint8_t* entry, Lba lba, uint64_t seq,
                      uint32_t data_crc) const;
  /// Decode + verify the entry CRC; false for erased/torn/foreign OOB.
  bool DecodeOobEntry(const uint8_t* entry, Lba* lba, uint64_t* seq,
                      uint32_t* data_crc) const;

  flash::FlashArray* device_;
  PageFtlConfig config_;
  std::vector<BlockInfo> blocks_;      // all blocks owned by the FTL
  std::vector<uint32_t> free_blocks_;  // indices into `blocks_`
  /// Device pbn -> index into `blocks_`; UINT32_MAX for unowned blocks.
  std::vector<uint32_t> pbn_to_idx_;
  /// Active (frontier) block index per chip; -1 if none.
  std::vector<int32_t> active_by_chip_;
  uint32_t rr_cursor_ = 0;  // round-robin chip cursor
  std::vector<flash::Ppn> map_;  // lba -> ppn
  /// Reverse map: block_idx * pages_per_block + page -> lba.
  std::vector<Lba> rmap_;
  uint64_t write_seq_ = 0;  ///< Monotonic, consumed per program attempt.
  RegionStats stats_;
};

}  // namespace ipa::ftl
