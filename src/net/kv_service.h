// KV request execution over the partitioned engine (docs/SERVING.md).
//
// KvService maps the wire protocol's GET/PUT/DELETE/BEGIN/COMMIT/ABORT onto
// one table + B+-tree index ("KV" / "KV_IDX", key -> packed Rid) per
// partition Database. It is transport-agnostic: the epoll server, the
// deterministic serving simulation and the power-cut soak all execute
// through it, on an engine::ShardedDatabase's partitions or on a plain
// single Database.
//
// Threading contract: every call for partition p must run on p's owning
// thread (the partition worker in threaded mode); the server routes BEGIN by
// key hint and COMMIT/ABORT by the handle's partition tag to satisfy this.
// The wire-handle table is the one piece of cross-partition state and is
// guarded by its own mutex; everything else is partition-confined, and
// isolation between interleaved transactions comes from the engine.
//
// Transaction model (v1): interactive transactions are partition-homed —
// BEGIN's key hint picks the partition, and ops on keys homed elsewhere get
// kBadRequest. Autocommit ops run on the shared-nothing no-lock fast path
// while no interactive transaction is open on their partition; when one is,
// both sides go through the lock manager, and lock conflicts surface as
// kRetry (the lock table returns Busy rather than blocking). Cross-partition
// transactions exist in the engine (ShardedDatabase::CrossTxn) but are not
// yet exposed over the wire.
//
// Index consistency under abort: the B+-tree is not WAL-logged, so the
// engine's undo never sees index mutations. Each interactive transaction
// therefore records, per touched key, the committed index state at its
// first index mutation and replays it on Abort (and on AbortAll). DELETE
// does not remove the index entry eagerly: the entry keeps pointing at the
// transaction's exclusively locked dead slot — so concurrent writers of the
// key conflict (kRetry) instead of inserting a duplicate tuple — and the
// removal is deferred to Commit; the transaction's own reads treat such
// keys as deleted via a tombstone set. Eagerly visible index entries
// (inserts, move re-points) always point at slots the transaction holds
// exclusive locks on, which is what makes the recorded undo state safe to
// replay: no concurrent operation can re-point the entry in between.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "engine/btree.h"
#include "engine/database.h"
#include "net/protocol.h"

namespace ipa::net {

class KvService {
 public:
  struct PartitionConfig {
    engine::Database* db = nullptr;
    engine::TablespaceId ts = 0;
  };

  /// Creates the KV table and index in every partition.
  static Result<std::unique_ptr<KvService>> Create(
      std::vector<PartitionConfig> parts);

  uint32_t partitions() const { return static_cast<uint32_t>(parts_.size()); }
  engine::Database& db(uint32_t p) { return *parts_[p].db; }

  /// Home partition of a key — the same SplitMix64 hash the sharded engine
  /// uses, so striding keys spread evenly.
  uint32_t PartitionOfKey(uint64_t key) const;

  // -- Data ops (run on partition p's thread) --------------------------------
  // Each returns the wire status; `value` is filled on kOk GETs. Autocommit
  // unless `txn` names an open interactive transaction on this partition.

  RStatus Get(uint32_t p, uint64_t txn, uint64_t key,
              std::vector<uint8_t>* value);
  RStatus Put(uint32_t p, uint64_t txn, uint64_t key,
              std::span<const uint8_t> value);
  RStatus Delete(uint32_t p, uint64_t txn, uint64_t key);

  // -- Interactive transactions ----------------------------------------------

  /// Open a transaction homed on PartitionOfKey(key_hint). The returned wire
  /// handle encodes the partition (top 16 bits) over the engine TxnId.
  /// `owner` tags the handle with the opening connection (0 = unowned) so
  /// the transport can abort a dead client's transactions; see
  /// HandlesOwnedBy.
  Result<uint64_t> Begin(uint64_t key_hint, uint64_t owner = 0);
  static uint32_t PartitionOfHandle(uint64_t handle) {
    return static_cast<uint32_t>(handle >> 48);
  }
  RStatus Commit(uint64_t handle);
  RStatus Abort(uint64_t handle);

  /// Abort every open interactive transaction (server shutdown; partitions
  /// must be quiesced — call after ShardedDatabase::Barrier).
  void AbortAll();
  size_t open_txns() const {
    std::lock_guard<std::mutex> l(txn_mu_);
    return open_txns_.size();
  }
  /// Handles opened with `owner` that are still live. Safe from any thread;
  /// the caller routes each Abort to the handle's home partition.
  std::vector<uint64_t> HandlesOwnedBy(uint64_t owner) const;

  // -- Durability / recovery -------------------------------------------------

  /// Close partition p's group-commit batch: after this returns, every
  /// commit acknowledged so far is durable. The server calls this per batch
  /// BEFORE emitting responses (ack-after-force).
  void ForceLog(uint32_t p) { parts_[p].db->ForceLog(); }

  /// Rebuild the per-partition key indexes from heap scans — required after
  /// crash recovery, since index pages are not WAL-logged (engine/btree.h).
  /// Open interactive transactions are forgotten (the crash killed them).
  Status RebuildIndexes();

  /// Keys currently indexed in partition p (tests / sizing).
  Result<uint64_t> KeyCount(uint32_t p);

 private:
  struct Part {
    engine::Database* db = nullptr;
    engine::TablespaceId ts = 0;
    engine::TableId table = 0;
    std::unique_ptr<engine::Btree> index;
    uint32_t open_txns = 0;      ///< Interactive txns homed here.
    uint32_t index_rebuilds = 0;
  };

  /// Per interactive transaction. The map slot is guarded by txn_mu_; the
  /// fields are touched only on the home partition's thread (plus AbortAll
  /// after quiesce), so they need no lock of their own.
  struct TxnState {
    engine::TxnId txn = 0;
    uint64_t owner = 0;  ///< Connection id from Begin (0 = unowned).
    /// Committed index state of a key at the txn's first index mutation of
    /// it; replayed verbatim on abort (header comment explains why that is
    /// race-free).
    struct KeyUndo {
      bool present = false;
      uint64_t packed = 0;
    };
    std::unordered_map<uint64_t, KeyUndo> undo;
    /// Keys this txn deleted: hidden from its reads, index entry kept until
    /// Commit removes it (or Abort forgets it).
    std::unordered_set<uint64_t> tombstones;
  };

  explicit KvService(std::vector<Part> parts) : parts_(std::move(parts)) {}

  /// Map an engine status onto the wire: Busy/Aborted -> kRetry (caller
  /// should back off and retry), NotFound -> kNotFound, Unavailable ->
  /// kUnavailable (device powered off), anything else -> kError.
  static RStatus WireStatus(const Status& s);

  /// Begin/Commit wrapper for autocommit ops: opens a no-lock fast-path txn
  /// unless an interactive txn is open on the partition.
  engine::TxnId BeginAuto(Part& part);

  /// Resolve a live handle homed on `expected_part`, else nullptr. The
  /// returned state stays valid until Commit/Abort on the same thread
  /// (unordered_map references survive rehash).
  TxnState* StateOfTxn(uint64_t handle, uint32_t expected_part);
  /// Remove the handle from the table and take ownership of its state.
  std::unique_ptr<TxnState> TakeTxn(uint64_t handle);
  /// Replay the recorded committed index state of every key `ts` mutated.
  void RestoreIndex(Part& part, const TxnState& ts);

  std::vector<Part> parts_;
  /// Wire handle -> transaction state (all handles are partition-tagged).
  /// Guarded by txn_mu_: partition workers resolve handles concurrently.
  mutable std::mutex txn_mu_;
  std::unordered_map<uint64_t, std::unique_ptr<TxnState>> open_txns_;
  uint64_t next_handle_ = 1;
};

}  // namespace ipa::net
