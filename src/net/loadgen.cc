#include "net/loadgen.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/sim_clock.h"

namespace ipa::net {

namespace {

/// Ack-time placeholder for admitted requests whose batch has not forced yet:
/// never <= any arrival time, so the request stays counted as inflight.
constexpr SimTime kUnforced = ~0ull;

metrics::Histogram& RequestHist() {
  static metrics::Histogram h("serve.request_us");
  return h;
}

/// Partition-count-independent preload value length (SplitMix64 of the key),
/// so every sharding layout preloads byte-identical tuples.
uint32_t PreloadLen(const LoadgenConfig& cfg, uint64_t key) {
  uint64_t h = key;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return cfg.value_min +
         static_cast<uint32_t>(h % (cfg.value_max - cfg.value_min + 1));
}

}  // namespace

std::vector<uint8_t> ValueBytes(uint64_t key, uint64_t seq, uint32_t len) {
  if (len < 8) len = 8;
  std::vector<uint8_t> v;
  v.reserve(len);
  PutU64(&v, seq);
  Rng fill((key + 1) * 0x9E3779B97F4A7C15ull ^ (seq + 1));
  while (v.size() < len) {
    uint64_t x = fill.Next();
    for (int i = 0; i < 8 && v.size() < len; ++i) {
      v.push_back(static_cast<uint8_t>(x >> (8 * i)));
    }
  }
  return v;
}

ServeSim::ServeSim(engine::ShardedDatabase* sdb, KvService* kv,
                   AdmissionController* ac, const LoadgenConfig& cfg)
    : sdb_(sdb), kv_(kv), ac_(ac), cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.value_min < 8) cfg_.value_min = 8;
  if (cfg_.value_max < cfg_.value_min) cfg_.value_max = cfg_.value_min;
  if (cfg_.batch_ops == 0) cfg_.batch_ops = 1;
  if (cfg_.clients == 0) cfg_.clients = 1;
  zipf_ = std::make_unique<ZipfianGenerator>(cfg_.keys, cfg_.zipf_theta);
  parts_.resize(kv_->partitions());
}

Status ServeSim::Preload() {
  std::vector<std::vector<uint64_t>> keys_of(parts_.size());
  for (uint64_t k = 0; k < cfg_.keys; ++k) {
    keys_of[kv_->PartitionOfKey(k)].push_back(k);
  }
  std::vector<Status> st(parts_.size(), Status::OK());
  for (uint32_t p = 0; p < parts_.size(); ++p) {
    sdb_->Submit(p, [this, p, &keys_of, &st] {
      PartState& ps = parts_[p];
      for (uint64_t k : keys_of[p]) {
        RStatus rs =
            kv_->Put(p, kAutoCommit, k, ValueBytes(k, 0, PreloadLen(cfg_, k)));
        if (rs != RStatus::kOk) {
          st[p] = Status::Internal(std::string("preload PUT failed: ") +
                                   StatusName(rs));
          return;
        }
        ps.expected[k] = 0;
      }
      kv_->ForceLog(p);
    });
  }
  sdb_->EpochBarrier();
  for (const Status& s : st) IPA_RETURN_NOT_OK(s);
  IPA_RETURN_NOT_OK(sdb_->Checkpoint());
  sdb_->EpochBarrier();
  return Status::OK();
}

ServeSim::Arrival ServeSim::DrawRequest(Rng& rng) {
  Arrival a;
  a.key = zipf_->Next(rng);
  if (!rng.Chance(cfg_.write_fraction)) {
    a.op = static_cast<uint8_t>(Op::kGet);
  } else if (rng.Chance(cfg_.delete_fraction)) {
    a.op = static_cast<uint8_t>(Op::kDelete);
  } else {
    a.op = static_cast<uint8_t>(Op::kPut);
    a.seq = ++next_seq_[a.key];
    a.vlen = cfg_.value_min + static_cast<uint32_t>(rng.Uniform(
                                  cfg_.value_max - cfg_.value_min + 1));
  }
  return a;
}

Status ServeSim::ProcessStream(uint32_t p, const std::vector<Arrival>& arr,
                               std::vector<Outcome>* out) {
  PartState& ps = parts_[p];
  SimClock& clock = kv_->db(p).sim_clock();
  FrameDecoder dec;
  std::vector<uint64_t> batch;  // outcome indices awaiting the batch's ack

  auto force = [&] {
    if (batch.empty()) return;
    kv_->ForceLog(p);  // ack-after-force: no response before durability
    SimTime ft = clock.Now();
    for (uint64_t oi : batch) (*out)[oi].resp = ft;
    for (size_t i = ps.inflight.size() - batch.size(); i < ps.inflight.size();
         ++i) {
      ps.inflight[i] = ft;
    }
    batch.clear();
  };

  std::vector<uint8_t> wire;
  std::vector<uint8_t> got;
  for (const Arrival& a : arr) {
    // The server went idle before this arrival: flush the open batch the way
    // the epoll loop forces at the end of an event-drain iteration.
    if (a.at > clock.Now()) force();
    while (!ps.inflight.empty() && ps.inflight.front() <= a.at) {
      ps.inflight.pop_front();
      ac_->Complete(p);
    }

    Outcome& o = (*out)[a.idx];
    o.at = a.at;

    // The real protocol runs on the hot path: encode the request frame,
    // stream it through a FrameDecoder, parse the payload.
    Op op = static_cast<Op>(a.op);
    std::vector<uint8_t> payload =
        op == Op::kGet    ? GetPayload(kAutoCommit, a.key)
        : op == Op::kPut  ? PutPayload(kAutoCommit, a.key,
                                       ValueBytes(a.key, a.seq, a.vlen))
                          : DeletePayload(kAutoCommit, a.key);
    wire.clear();
    EncodeFrame(a.op, /*request_id=*/a.idx, payload, &wire);
    o.req_bytes = static_cast<uint32_t>(wire.size());

    if (!ac_->TryAdmit(p)) {
      o.status = static_cast<uint8_t>(RStatus::kRetry);
      o.resp = a.at;  // shed replies come straight off the transport thread
      o.hint_us = ac_->RetryHintUs(p);
      o.resp_bytes = static_cast<uint32_t>(FrameBytes(4));
      continue;
    }

    clock.AdvanceTo(a.at);
    dec.Feed(wire);
    Frame f;
    if (dec.Poll(&f) != FrameDecoder::Next::kFrame) {
      return Status::Internal("loadgen emitted an undecodable frame");
    }
    Request req;
    if (!ParseRequest(f, &req)) {
      return Status::Internal("loadgen emitted an unparseable request");
    }

    RStatus rs;
    uint64_t resp_payload = 0;
    if (req.op == Op::kGet) {
      got.clear();
      rs = kv_->Get(p, kAutoCommit, req.key, &got);
      if (rs == RStatus::kOk) {
        resp_payload = got.size();
        auto it = ps.expected.find(req.key);
        if (it == ps.expected.end()) {
          return Status::Corruption("GET returned a value for an unwritten key");
        }
        if (got != ValueBytes(req.key, it->second,
                              static_cast<uint32_t>(got.size()))) {
          return Status::Corruption("GET value mismatch vs last committed write");
        }
      } else if (rs == RStatus::kNotFound && ps.expected.count(req.key)) {
        return Status::Corruption("GET lost a committed key");
      }
    } else if (req.op == Op::kPut) {
      rs = kv_->Put(p, kAutoCommit, req.key, req.value);
      if (rs == RStatus::kOk) ps.expected[req.key] = a.seq;
    } else {
      rs = kv_->Delete(p, kAutoCommit, req.key);
      if (rs == RStatus::kOk) {
        ps.expected.erase(req.key);
      } else if (rs == RStatus::kNotFound && ps.expected.count(req.key)) {
        return Status::Corruption("DELETE missed a committed key");
      }
    }
    clock.Advance(cfg_.cpu_us_per_request);

    o.status = static_cast<uint8_t>(rs);
    o.resp_bytes = static_cast<uint32_t>(FrameBytes(resp_payload));
    ps.inflight.push_back(kUnforced);
    batch.push_back(a.idx);
    if (batch.size() >= cfg_.batch_ops) force();
  }
  force();
  return Status::OK();
}

void ServeSim::Accumulate(const std::vector<Outcome>& outcomes,
                          PhaseResult* r) {
  for (const Outcome& o : outcomes) {
    r->issued++;
    r->bytes_in += o.req_bytes;
    r->bytes_out += o.resp_bytes;
    switch (static_cast<RStatus>(o.status)) {
      case RStatus::kOk:
      case RStatus::kNotFound: {
        uint64_t lat = o.resp - o.at;
        r->completed++;
        r->lat.Add(lat);
        RequestHist().Record(lat);
        break;
      }
      case RStatus::kRetry:
        r->shed++;
        break;
      default:
        r->errors++;
        break;
    }
  }
}

Result<PhaseResult> ServeSim::RunClosedLoop(const std::string& name,
                                            uint64_t target_completed) {
  PhaseResult r;
  r.name = name;
  SimTime t0 = sdb_->EpochBarrier();

  struct Client {
    SimTime next = 0;
    bool retry = false;
    Arrival pending;
  };
  std::vector<Client> clients(cfg_.clients);
  for (Client& c : clients) c.next = t0;

  uint64_t rounds = 0;
  while (r.completed < target_completed) {
    std::vector<Arrival> arrivals;
    arrivals.reserve(clients.size());
    for (uint32_t ci = 0; ci < clients.size(); ++ci) {
      Client& c = clients[ci];
      Arrival a = c.retry ? c.pending : DrawRequest(rng_);
      a.at = c.next;
      a.idx = ci;
      arrivals.push_back(a);
    }

    std::vector<Outcome> outcomes(arrivals.size());
    std::vector<std::vector<Arrival>> per_part(parts_.size());
    for (const Arrival& a : arrivals) {
      per_part[kv_->PartitionOfKey(a.key)].push_back(a);
    }
    for (auto& stream : per_part) {
      std::stable_sort(stream.begin(), stream.end(),
                       [](const Arrival& x, const Arrival& y) {
                         return x.at < y.at;
                       });
    }
    std::vector<Status> st(parts_.size(), Status::OK());
    for (uint32_t p = 0; p < parts_.size(); ++p) {
      if (per_part[p].empty()) continue;
      sdb_->Submit(p, [this, p, &per_part, &outcomes, &st] {
        st[p] = ProcessStream(p, per_part[p], &outcomes);
      });
    }
    sdb_->Barrier();
    for (const Status& s : st) IPA_RETURN_NOT_OK(s);
    Accumulate(outcomes, &r);

    for (uint32_t ci = 0; ci < clients.size(); ++ci) {
      Client& c = clients[ci];
      const Outcome& o = outcomes[ci];
      if (o.status == static_cast<uint8_t>(RStatus::kRetry)) {
        c.retry = true;
        c.pending = arrivals[ci];
        c.next = o.at + o.hint_us;
      } else {
        c.retry = false;
        c.next = o.resp + cfg_.think_us;
      }
    }
    if (++rounds % 16 == 0) sdb_->EpochBarrier();
  }

  SimTime t1 = sdb_->EpochBarrier();
  r.sim_us = t1 - t0;
  r.offered_tps = r.sim_us == 0 ? 0.0
                                : static_cast<double>(r.issued) /
                                      (static_cast<double>(r.sim_us) / 1e6);
  return r;
}

Result<PhaseResult> ServeSim::RunOpenLoop(const std::string& name,
                                          double rate_tps,
                                          uint64_t duration_us) {
  if (rate_tps <= 0) {
    return Status::InvalidArgument("open-loop rate must be positive");
  }
  PhaseResult r;
  r.name = name;
  SimTime t0 = sdb_->EpochBarrier();

  struct Conn {
    bool slow = false;
    SimTime slow_until = 0;
    uint32_t backlog = 0;  ///< Responses queued while the peer isn't reading.
  };
  std::vector<Conn> active;
  auto fresh_conn = [&](SimTime now) {
    Conn c;
    if (rng_.Chance(cfg_.slow_fraction)) {
      c.slow = true;
      c.slow_until = now + cfg_.slow_window_us;
    }
    r.conn_opens++;
    return c;
  };
  for (uint32_t i = 0; i < cfg_.clients; ++i) active.push_back(fresh_conn(t0));

  // Generate the full Poisson arrival schedule up front (driver-side, one
  // Rng), modelling churn, slow windows and output-cap connection drops.
  std::vector<Arrival> arrivals;
  double t_rel = 0;
  while (true) {
    t_rel += -std::log(1.0 - rng_.NextDouble()) / rate_tps * 1e6;
    if (t_rel >= static_cast<double>(duration_us)) break;
    if (arrivals.size() >= cfg_.max_open_arrivals) {
      r.truncated = true;
      break;
    }
    SimTime at = t0 + static_cast<SimTime>(t_rel);

    uint32_t slot = static_cast<uint32_t>(rng_.Uniform(active.size()));
    if (rng_.Chance(cfg_.churn_per_arrival)) {
      r.conn_closes++;
      active[slot] = fresh_conn(at);
    }
    Conn& c = active[slot];
    if (c.slow && at >= c.slow_until) {
      c.slow = false;
      c.backlog = 0;
    }
    if (c.slow && ++c.backlog > cfg_.conn_response_cap) {
      // The server's per-connection output buffer cap fired: the connection
      // is dropped (the peer reconnects) and this request dies with it.
      r.conn_drops++;
      r.conn_closes++;
      r.dropped_arrivals++;
      active[slot] = fresh_conn(at);
      continue;
    }

    Arrival a = DrawRequest(rng_);
    a.at = at;
    a.idx = arrivals.size();
    arrivals.push_back(a);
  }

  std::vector<Outcome> outcomes(arrivals.size());
  std::vector<std::vector<Arrival>> per_part(parts_.size());
  for (const Arrival& a : arrivals) {
    per_part[kv_->PartitionOfKey(a.key)].push_back(a);
  }
  std::vector<Status> st(parts_.size(), Status::OK());
  for (uint32_t p = 0; p < parts_.size(); ++p) {
    if (per_part[p].empty()) continue;
    sdb_->Submit(p, [this, p, &per_part, &outcomes, &st] {
      st[p] = ProcessStream(p, per_part[p], &outcomes);
    });
  }
  sdb_->Barrier();
  for (const Status& s : st) IPA_RETURN_NOT_OK(s);
  Accumulate(outcomes, &r);

  SimTime t1 = sdb_->EpochBarrier();
  // Underload leaves the servers idle before the phase deadline; overload
  // drains the backlog past it. Goodput divides by the later of the two.
  r.sim_us = std::max<uint64_t>(t1 - t0, duration_us);
  r.offered_tps = static_cast<double>(arrivals.size() + r.dropped_arrivals) /
                  (static_cast<double>(duration_us) / 1e6);
  return r;
}

}  // namespace ipa::net
