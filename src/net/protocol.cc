#include "net/protocol.h"

#include <cstring>

#include "common/crc32.h"

namespace ipa::net {

const char* OpName(Op op) {
  switch (op) {
    case Op::kPing: return "PING";
    case Op::kGet: return "GET";
    case Op::kPut: return "PUT";
    case Op::kDelete: return "DELETE";
    case Op::kBegin: return "BEGIN";
    case Op::kCommit: return "COMMIT";
    case Op::kAbort: return "ABORT";
  }
  return "?";
}

const char* StatusName(RStatus s) {
  switch (s) {
    case RStatus::kOk: return "OK";
    case RStatus::kNotFound: return "NOT_FOUND";
    case RStatus::kRetry: return "RETRY";
    case RStatus::kBadRequest: return "BAD_REQUEST";
    case RStatus::kError: return "ERROR";
    case RStatus::kUnavailable: return "UNAVAILABLE";
  }
  return "?";
}

bool IsKnownRequestOp(uint8_t op) {
  return op >= static_cast<uint8_t>(Op::kPing) &&
         op <= static_cast<uint8_t>(Op::kAbort);
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; i++) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; i++) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; i--) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; i--) v = (v << 8) | p[i];
  return v;
}

void EncodeFrame(uint8_t op, uint64_t request_id,
                 std::span<const uint8_t> payload, std::vector<uint8_t>* out) {
  size_t base = out->size();
  out->push_back(static_cast<uint8_t>(kMagic & 0xFF));
  out->push_back(static_cast<uint8_t>(kMagic >> 8));
  out->push_back(kProtocolVersion);
  out->push_back(op);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU64(out, request_id);
  uint32_t crc = Crc32c(out->data() + base, 16);
  if (!payload.empty()) crc = Crc32c(payload.data(), payload.size(), crc);
  PutU32(out, crc);
  out->insert(out->end(), payload.begin(), payload.end());
}

void FrameDecoder::Feed(std::span<const uint8_t> bytes) {
  if (fatal_) return;  // stream is poisoned; don't grow the buffer
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void FrameDecoder::Compact() {
  // Reclaim consumed bytes once they dominate the buffer, keeping Feed/Poll
  // amortized O(1) per byte.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

FrameDecoder::Next FrameDecoder::Poll(Frame* out, std::string* error) {
  auto fail = [&](const char* why) {
    fatal_ = true;
    buf_.clear();
    pos_ = 0;
    if (error) *error = why;
    return Next::kFatal;
  };
  if (fatal_) return fail("connection poisoned by earlier framing error");
  if (size() < kHeaderBytes) return Next::kNeedMore;

  const uint8_t* h = buf_.data() + pos_;
  uint16_t magic = static_cast<uint16_t>(h[0] | (h[1] << 8));
  if (magic != kMagic) return fail("bad frame magic");
  if (h[2] != kProtocolVersion) return fail("unsupported protocol version");
  uint32_t payload_len = GetU32(h + 4);
  if (payload_len > kMaxPayload) return fail("frame payload too large");
  if (size() < FrameBytes(payload_len)) return Next::kNeedMore;

  uint32_t want = GetU32(h + 16);
  uint32_t got = Crc32c(h, 16);
  got = Crc32c(h + kHeaderBytes, payload_len, got);
  if (want != got) return fail("frame CRC mismatch");

  out->op = h[3];
  out->request_id = GetU64(h + 8);
  out->payload.assign(h + kHeaderBytes, h + kHeaderBytes + payload_len);
  pos_ += FrameBytes(payload_len);
  if (size() == 0) {
    buf_.clear();
    pos_ = 0;
  } else {
    Compact();
  }
  return Next::kFrame;
}

bool ParseRequest(const Frame& frame, Request* out) {
  if (!IsKnownRequestOp(frame.op)) return false;
  out->op = static_cast<Op>(frame.op);
  out->txn = kAutoCommit;
  out->key = 0;
  out->value = {};
  const std::vector<uint8_t>& p = frame.payload;
  switch (out->op) {
    case Op::kPing:
      return p.empty();
    case Op::kGet:
    case Op::kDelete:
      if (p.size() != 16) return false;
      out->txn = GetU64(p.data());
      out->key = GetU64(p.data() + 8);
      return true;
    case Op::kPut:
      if (p.size() < 16) return false;
      out->txn = GetU64(p.data());
      out->key = GetU64(p.data() + 8);
      out->value = std::span<const uint8_t>(p).subspan(16);
      return true;
    case Op::kBegin:
      if (p.size() != 8) return false;
      out->key = GetU64(p.data());
      return true;
    case Op::kCommit:
    case Op::kAbort:
      if (p.size() != 8) return false;
      out->txn = GetU64(p.data());
      return true;
  }
  return false;
}

std::vector<uint8_t> GetPayload(uint64_t txn, uint64_t key) {
  std::vector<uint8_t> p;
  PutU64(&p, txn);
  PutU64(&p, key);
  return p;
}

std::vector<uint8_t> PutPayload(uint64_t txn, uint64_t key,
                                std::span<const uint8_t> value) {
  std::vector<uint8_t> p;
  p.reserve(16 + value.size());
  PutU64(&p, txn);
  PutU64(&p, key);
  p.insert(p.end(), value.begin(), value.end());
  return p;
}

std::vector<uint8_t> DeletePayload(uint64_t txn, uint64_t key) {
  return GetPayload(txn, key);
}

std::vector<uint8_t> BeginPayload(uint64_t key_hint) {
  std::vector<uint8_t> p;
  PutU64(&p, key_hint);
  return p;
}

std::vector<uint8_t> TxnPayload(uint64_t txn) {
  std::vector<uint8_t> p;
  PutU64(&p, txn);
  return p;
}

std::vector<uint8_t> RetryPayload(uint32_t hint_us) {
  std::vector<uint8_t> p;
  PutU32(&p, hint_us);
  return p;
}

}  // namespace ipa::net
