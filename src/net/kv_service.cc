#include "net/kv_service.h"

#include <string>

namespace ipa::net {

namespace {

/// Tuple layout: [key u64][value bytes].
constexpr size_t kTupleHeader = 8;

std::vector<uint8_t> MakeTuple(uint64_t key, std::span<const uint8_t> value) {
  std::vector<uint8_t> t;
  t.reserve(kTupleHeader + value.size());
  PutU64(&t, key);
  t.insert(t.end(), value.begin(), value.end());
  return t;
}

}  // namespace

Result<std::unique_ptr<KvService>> KvService::Create(
    std::vector<PartitionConfig> parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("KvService needs at least one partition");
  }
  std::vector<Part> built;
  for (const PartitionConfig& pc : parts) {
    Part p;
    p.db = pc.db;
    p.ts = pc.ts;
    IPA_ASSIGN_OR_RETURN(p.table, pc.db->CreateTable("KV", pc.ts));
    IPA_ASSIGN_OR_RETURN(engine::Btree idx,
                         engine::Btree::Create(pc.db, "KV_IDX", pc.ts));
    p.index = std::make_unique<engine::Btree>(std::move(idx));
    built.push_back(std::move(p));
  }
  return std::unique_ptr<KvService>(new KvService(std::move(built)));
}

uint32_t KvService::PartitionOfKey(uint64_t key) const {
  // Same SplitMix64 finalizer as ShardedDatabase::PartitionOfKey, so the
  // router and the engine agree on key homes.
  uint64_t h = key;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return static_cast<uint32_t>(h % parts_.size());
}

RStatus KvService::WireStatus(const Status& s) {
  if (s.ok()) return RStatus::kOk;
  if (s.IsNotFound()) return RStatus::kNotFound;
  if (s.IsBusy() || s.IsAborted()) return RStatus::kRetry;
  if (s.IsUnavailable()) return RStatus::kUnavailable;
  return RStatus::kError;
}

engine::TxnId KvService::BeginAuto(Part& part) {
  // The no-lock fast path is safe only while the partition is truly
  // shared-nothing; an open interactive transaction interleaves with
  // autocommit ops across requests, so both sides must take locks then.
  return part.db->Begin(/*use_locks=*/part.open_txns > 0);
}

KvService::TxnState* KvService::StateOfTxn(uint64_t handle,
                                           uint32_t expected_part) {
  if (PartitionOfHandle(handle) != expected_part) return nullptr;
  std::lock_guard<std::mutex> l(txn_mu_);
  auto it = open_txns_.find(handle);
  return it == open_txns_.end() ? nullptr : it->second.get();
}

std::unique_ptr<KvService::TxnState> KvService::TakeTxn(uint64_t handle) {
  std::lock_guard<std::mutex> l(txn_mu_);
  auto it = open_txns_.find(handle);
  if (it == open_txns_.end()) return nullptr;
  std::unique_ptr<TxnState> ts = std::move(it->second);
  open_txns_.erase(it);
  return ts;
}

void KvService::RestoreIndex(Part& part, const TxnState& ts) {
  // Best effort even when the engine abort itself failed (device power cut):
  // the post-crash RebuildIndexes pass supersedes anything left here.
  for (const auto& [key, u] : ts.undo) {
    if (u.present) {
      (void)part.index->Insert(key, u.packed);
    } else {
      (void)part.index->Remove(key);
    }
  }
}

RStatus KvService::Get(uint32_t p, uint64_t txn, uint64_t key,
                       std::vector<uint8_t>* value) {
  Part& part = parts_[p];
  engine::TxnId t;
  bool autocommit = txn == kAutoCommit;
  if (autocommit) {
    t = BeginAuto(part);
  } else {
    TxnState* ts = StateOfTxn(txn, p);
    if (ts == nullptr || PartitionOfKey(key) != p) {
      // Unknown/foreign handle, or a key homed on another partition: honoring
      // it would file the tuple under the wrong partition's index.
      return RStatus::kBadRequest;
    }
    // The txn deleted this key; the index entry still points at the dead
    // slot until commit (header comment), so hide it here.
    if (ts->tombstones.count(key) > 0) return RStatus::kNotFound;
    t = ts->txn;
  }

  auto finish = [&](const Status& s) {
    if (autocommit) {
      if (s.ok()) {
        Status c = part.db->Commit(t);
        return WireStatus(c);
      }
      (void)part.db->Abort(t);
    }
    return WireStatus(s);
  };

  auto packed = part.index->Lookup(key);
  if (!packed.ok()) return finish(packed.status());
  auto row = part.db->Read(t, engine::Rid::Unpack(packed.value()));
  if (!row.ok()) return finish(row.status());
  if (row.value().size() < kTupleHeader ||
      GetU64(row.value().data()) != key) {
    // Truncated tuple or an index entry resolving to some other key's slot:
    // never slice past the end, and never serve another key's bytes.
    return finish(Status::Corruption("KV tuple does not match its index entry"));
  }
  value->assign(row.value().begin() + kTupleHeader, row.value().end());
  return finish(Status::OK());
}

RStatus KvService::Put(uint32_t p, uint64_t txn, uint64_t key,
                       std::span<const uint8_t> value) {
  Part& part = parts_[p];
  engine::TxnId t;
  TxnState* ts = nullptr;
  bool autocommit = txn == kAutoCommit;
  if (autocommit) {
    t = BeginAuto(part);
  } else {
    ts = StateOfTxn(txn, p);
    if (ts == nullptr || PartitionOfKey(key) != p) {
      // Unknown/foreign handle, or a key homed on another partition: honoring
      // it would file the tuple under the wrong partition's index.
      return RStatus::kBadRequest;
    }
    t = ts->txn;
  }

  // Index changes made before a failure are rolled back by hand — the
  // B+-tree is not WAL-logged, so engine undo never sees them. For
  // interactive transactions, `capture` additionally snapshots the key's
  // committed index state at the txn's first mutation of it, so Abort can
  // roll back index changes from earlier, already-successful requests too.
  bool index_inserted = false;
  uint64_t index_old = 0;
  bool index_had_old = false;
  auto finish = [&](const Status& s) {
    if (s.ok() && autocommit) return WireStatus(part.db->Commit(t));
    if (!s.ok()) {
      if (index_inserted) {
        if (index_had_old) {
          (void)part.index->Insert(key, index_old);
        } else {
          (void)part.index->Remove(key);
        }
      }
      if (autocommit) (void)part.db->Abort(t);
    }
    return WireStatus(s);
  };
  auto capture = [&](bool present, uint64_t packed) {
    if (ts != nullptr) {
      ts->undo.emplace(key, TxnState::KeyUndo{present, packed});
    }
  };

  auto packed = part.index->Lookup(key);
  bool own_deleted = ts != nullptr && ts->tombstones.count(key) > 0;
  if (packed.ok() && !own_deleted) {
    engine::Rid rid = engine::Rid::Unpack(packed.value());
    auto row = part.db->Read(t, rid, /*for_update=*/true);
    if (!row.ok()) return finish(row.status());
    if (row.value().size() == kTupleHeader + value.size()) {
      // Same-size overwrite: the fixed-length in-place update — the
      // IPA-friendly small write the whole stack is built around.
      return finish(part.db->Update(t, rid, kTupleHeader, value));
    }
    std::vector<uint8_t> tuple = MakeTuple(key, value);
    Status s = part.db->UpdateResize(t, rid, tuple);
    if (s.IsOutOfSpace()) {
      auto moved = part.db->Move(t, rid, tuple);
      if (!moved.ok()) return finish(moved.status());
      capture(true, packed.value());
      index_old = packed.value();
      index_had_old = true;
      index_inserted = true;
      return finish(part.index->Insert(key, moved.value().Pack()));
    }
    return finish(s);
  }
  if (!packed.ok() && !packed.status().IsNotFound()) {
    return finish(packed.status());
  }

  // New key — or a re-insert over this transaction's own delete, in which
  // case the index entry still points at the dead slot and is re-pointed.
  auto rid = part.db->Insert(t, part.table, MakeTuple(key, value));
  if (!rid.ok()) return finish(rid.status());
  if (own_deleted && packed.ok()) {
    // First-touch undo state was captured by the delete; the per-request
    // rollback only needs to re-point the entry back at the dead slot.
    index_old = packed.value();
    index_had_old = true;
  } else {
    capture(false, 0);
    index_had_old = false;
  }
  index_inserted = true;
  Status is = part.index->Insert(key, rid.value().Pack());
  if (is.ok() && ts != nullptr) ts->tombstones.erase(key);
  return finish(is);
}

RStatus KvService::Delete(uint32_t p, uint64_t txn, uint64_t key) {
  Part& part = parts_[p];
  engine::TxnId t;
  TxnState* ts = nullptr;
  bool autocommit = txn == kAutoCommit;
  if (autocommit) {
    t = BeginAuto(part);
  } else {
    ts = StateOfTxn(txn, p);
    if (ts == nullptr || PartitionOfKey(key) != p) {
      // Unknown/foreign handle, or a key homed on another partition: honoring
      // it would file the tuple under the wrong partition's index.
      return RStatus::kBadRequest;
    }
    if (ts->tombstones.count(key) > 0) return RStatus::kNotFound;
    t = ts->txn;
  }

  bool index_removed = false;
  uint64_t index_old = 0;
  auto finish = [&](const Status& s) {
    if (s.ok() && autocommit) return WireStatus(part.db->Commit(t));
    if (!s.ok()) {
      if (index_removed) (void)part.index->Insert(key, index_old);
      if (autocommit) (void)part.db->Abort(t);
    }
    return WireStatus(s);
  };

  auto packed = part.index->Lookup(key);
  if (!packed.ok()) return finish(packed.status());
  Status s = part.db->Delete(t, engine::Rid::Unpack(packed.value()));
  if (!s.ok()) return finish(s);
  if (ts != nullptr) {
    // Interactive: keep the entry pointing at the exclusively locked dead
    // slot so concurrent writers of the key conflict instead of inserting a
    // duplicate; Commit removes it, Abort restores the first-touch state.
    ts->undo.emplace(key, TxnState::KeyUndo{true, packed.value()});
    ts->tombstones.insert(key);
    return finish(Status::OK());
  }
  index_old = packed.value();
  index_removed = true;
  return finish(part.index->Remove(key));
}

Result<uint64_t> KvService::Begin(uint64_t key_hint, uint64_t owner) {
  uint32_t p = PartitionOfKey(key_hint);
  Part& part = parts_[p];
  auto ts = std::make_unique<TxnState>();
  ts->txn = part.db->Begin(/*use_locks=*/true);
  ts->owner = owner;
  part.open_txns++;
  std::lock_guard<std::mutex> l(txn_mu_);
  uint64_t handle = (static_cast<uint64_t>(p) << 48) |
                    (next_handle_++ & 0xFFFFFFFFFFFFull);
  open_txns_[handle] = std::move(ts);
  return handle;
}

RStatus KvService::Commit(uint64_t handle) {
  std::unique_ptr<TxnState> ts = TakeTxn(handle);
  if (ts == nullptr) return RStatus::kBadRequest;
  Part& part = parts_[PartitionOfHandle(handle)];
  // Split commit: the deferred index removals for deleted keys apply only
  // once the commit record is in. CommitRecord fails only for a transaction
  // the engine no longer knows (crash recovery owns that state), in which
  // case the index is left alone for RebuildIndexes.
  Status s = part.db->CommitRecord(ts->txn);
  if (s.ok()) {
    for (uint64_t key : ts->tombstones) (void)part.index->Remove(key);
    s = part.db->RunCommitMaintenance();
  }
  part.open_txns--;
  return WireStatus(s);
}

RStatus KvService::Abort(uint64_t handle) {
  std::unique_ptr<TxnState> ts = TakeTxn(handle);
  if (ts == nullptr) return RStatus::kBadRequest;
  Part& part = parts_[PartitionOfHandle(handle)];
  Status s = part.db->Abort(ts->txn);
  RestoreIndex(part, *ts);
  part.open_txns--;
  return WireStatus(s);
}

void KvService::AbortAll() {
  std::unordered_map<uint64_t, std::unique_ptr<TxnState>> taken;
  {
    std::lock_guard<std::mutex> l(txn_mu_);
    taken.swap(open_txns_);
  }
  for (const auto& [handle, ts] : taken) {
    Part& part = parts_[PartitionOfHandle(handle)];
    (void)part.db->Abort(ts->txn);
    RestoreIndex(part, *ts);
    part.open_txns--;
  }
}

std::vector<uint64_t> KvService::HandlesOwnedBy(uint64_t owner) const {
  std::vector<uint64_t> out;
  if (owner == 0) return out;  // 0 marks unowned handles, never a connection
  std::lock_guard<std::mutex> l(txn_mu_);
  for (const auto& [handle, ts] : open_txns_) {
    if (ts->owner == owner) out.push_back(handle);
  }
  return out;
}

Status KvService::RebuildIndexes() {
  // Crash recovery killed every open transaction with the engine state.
  {
    std::lock_guard<std::mutex> l(txn_mu_);
    open_txns_.clear();
  }
  for (Part& part : parts_) {
    part.open_txns = 0;
    std::string name = "KV_IDX_R" + std::to_string(++part.index_rebuilds);
    IPA_ASSIGN_OR_RETURN(engine::Btree idx,
                         engine::Btree::Create(part.db, name, part.ts));
    part.index = std::make_unique<engine::Btree>(std::move(idx));
    Status st = Status::OK();
    IPA_RETURN_NOT_OK(part.db->Scan(
        part.table, [&](engine::Rid rid, std::span<const uint8_t> tuple) {
          if (tuple.size() < kTupleHeader) {
            st = Status::Corruption("KV tuple shorter than its key");
            return false;
          }
          st = part.index->Insert(GetU64(tuple.data()), rid.Pack());
          return st.ok();
        }));
    IPA_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Result<uint64_t> KvService::KeyCount(uint32_t p) {
  uint64_t n = 0;
  IPA_RETURN_NOT_OK(parts_[p].index->Scan(
      0, ~0ull, [&](uint64_t, uint64_t) {
        n++;
        return true;
      }));
  return n;
}

}  // namespace ipa::net
