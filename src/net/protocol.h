// Wire protocol of the IPA serving layer (docs/SERVING.md).
//
// Every message — request or response — is one length-prefixed binary frame
// with a fixed 20-byte header and a CRC32-C over header and payload:
//
//   offset  size  field
//        0     2  magic        0x4950 ("IP", little-endian)
//        2     1  version      kProtocolVersion (1)
//        3     1  op           request opcode, or response status
//        4     4  payload_len  bytes following the header (<= kMaxPayload)
//        8     8  request_id   echoed verbatim in the response
//       16     4  crc          CRC32-C over bytes [0,16) then the payload
//
// Error containment contract (exercised by tests/net_protocol_test.cc):
//  * A structurally valid frame with an unknown opcode or a malformed
//    payload is a PER-REQUEST error: the server answers kBadRequest and the
//    connection stays in sync (the frame length was trusted, correctly).
//  * Bad magic, unsupported version, an oversized payload_len or a CRC
//    mismatch poison the byte stream — the frame extent cannot be trusted —
//    so they are CONNECTION-FATAL: the decoder reports kFatal, the server
//    sends one final error frame and closes. Closing never desyncs.
//  * Truncated frames simply wait for more bytes (kNeedMore); a connection
//    that closes mid-frame is dropped without a response.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ipa::net {

inline constexpr uint16_t kMagic = 0x4950;
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr uint32_t kHeaderBytes = 20;
inline constexpr uint32_t kMaxPayload = 1u << 20;

/// Request opcodes. GET/PUT/DELETE carry a transaction handle; handle 0
/// (kAutoCommit) executes the op as its own transaction.
enum class Op : uint8_t {
  kPing = 1,
  kGet = 2,     ///< payload: txn u64 | key u64
  kPut = 3,     ///< payload: txn u64 | key u64 | value bytes
  kDelete = 4,  ///< payload: txn u64 | key u64
  kBegin = 5,   ///< payload: key_hint u64 (homes the txn's partition)
  kCommit = 6,  ///< payload: txn u64
  kAbort = 7,   ///< payload: txn u64
};

/// Response status, carried in the header's op byte (high bit set).
enum class RStatus : uint8_t {
  kOk = 0x80,          ///< GET: value bytes; BEGIN: txn handle u64.
  kNotFound = 0x81,
  kRetry = 0x82,       ///< Shed by admission control; payload: hint_us u32.
  kBadRequest = 0x83,  ///< payload: human-readable reason.
  kError = 0x84,       ///< Engine error; payload: status string.
  kUnavailable = 0x85, ///< Device powered off / server shutting down.
};

inline constexpr uint64_t kAutoCommit = 0;

const char* OpName(Op op);
const char* StatusName(RStatus s);
inline bool IsResponseOp(uint8_t op) { return (op & 0x80) != 0; }
bool IsKnownRequestOp(uint8_t op);

/// One decoded frame. `op` is an Op for requests, an RStatus for responses.
struct Frame {
  uint8_t op = 0;
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;
};

/// Append one encoded frame to `out`. Payload length must be <= kMaxPayload.
void EncodeFrame(uint8_t op, uint64_t request_id,
                 std::span<const uint8_t> payload, std::vector<uint8_t>* out);

/// Encoded size of a frame with `payload_len` payload bytes.
inline uint64_t FrameBytes(uint64_t payload_len) {
  return kHeaderBytes + payload_len;
}

// Little-endian scalar helpers shared by payload builders and the server.
void PutU32(std::vector<uint8_t>* out, uint32_t v);
void PutU64(std::vector<uint8_t>* out, uint64_t v);
uint32_t GetU32(const uint8_t* p);
uint64_t GetU64(const uint8_t* p);

/// Incremental frame parser for one connection's byte stream.
class FrameDecoder {
 public:
  enum class Next {
    kFrame,     ///< *out holds a complete, CRC-verified frame.
    kNeedMore,  ///< No complete frame buffered yet.
    kFatal,     ///< Stream poisoned (see header comment); close the
                ///< connection after sending one error frame.
  };

  /// Buffer `bytes` arriving from the peer.
  void Feed(std::span<const uint8_t> bytes);

  /// Extract the next frame. After kFatal every further Poll returns kFatal.
  Next Poll(Frame* out, std::string* error = nullptr);

  /// True when a partial frame is buffered (EOF now = truncated frame).
  bool mid_frame() const { return !fatal_ && size() > 0; }
  size_t buffered_bytes() const { return size(); }

 private:
  size_t size() const { return buf_.size() - pos_; }
  void Compact();

  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
  bool fatal_ = false;
};

// ---------------------------------------------------------------------------
// Typed request payloads
// ---------------------------------------------------------------------------

/// A parsed GET/PUT/DELETE/BEGIN/COMMIT/ABORT request body.
struct Request {
  Op op = Op::kPing;
  uint64_t txn = kAutoCommit;  ///< Handle (GET/PUT/DELETE/COMMIT/ABORT).
  uint64_t key = 0;            ///< Key (GET/PUT/DELETE) or hint (BEGIN).
  std::span<const uint8_t> value;  ///< PUT only; aliases the frame payload.
};

/// Parse `frame` into a typed request. False on unknown opcode or malformed
/// payload (a per-request kBadRequest, never connection-fatal).
bool ParseRequest(const Frame& frame, Request* out);

// Request payload builders (compose with EncodeFrame).
std::vector<uint8_t> GetPayload(uint64_t txn, uint64_t key);
std::vector<uint8_t> PutPayload(uint64_t txn, uint64_t key,
                                std::span<const uint8_t> value);
std::vector<uint8_t> DeletePayload(uint64_t txn, uint64_t key);
std::vector<uint8_t> BeginPayload(uint64_t key_hint);
std::vector<uint8_t> TxnPayload(uint64_t txn);
std::vector<uint8_t> RetryPayload(uint32_t hint_us);

}  // namespace ipa::net
