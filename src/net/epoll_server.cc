#include "net/epoll_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace ipa::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EpollServer::EpollServer(engine::ShardedDatabase* sdb, KvService* kv,
                         AdmissionController* ac, Config cfg)
    : sdb_(sdb), kv_(kv), ac_(ac), cfg_(cfg), staged_(kv->partitions()) {}

EpollServer::~EpollServer() {
  for (auto& [id, c] : conns_) {
    if (c.fd >= 0) close(c.fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
}

Status EpollServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (inet_pton(AF_INET, cfg_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " + cfg_.bind_addr);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (listen(listen_fd_, 128) != 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) return Errno("pipe2");

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.data.fd = wake_pipe_[0];
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev) != 0) {
    return Errno("epoll_ctl(wake)");
  }
  return Status::OK();
}

void EpollServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  char b = 0;
  // Best effort: the loop also checks stop_ on every wakeup.
  [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &b, 1);
}

Status EpollServer::Run() {
  constexpr int kMaxEvents = 64;
  epoll_event evs[kMaxEvents];
  while (!stop_.load(std::memory_order_relaxed)) {
    int n = epoll_wait(epoll_fd_, evs, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      int fd = evs[i].data.fd;
      if (fd == listen_fd_) {
        AcceptAll();
        continue;
      }
      if (fd == wake_pipe_[0]) {
        char buf[64];
        while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      auto idit = fd_to_id_.find(fd);
      if (idit == fd_to_id_.end()) continue;
      uint64_t id = idit->second;
      if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(id);
        continue;
      }
      if (evs[i].events & EPOLLIN) {
        auto it = conns_.find(id);
        if (it != conns_.end()) HandleReadable(it->second);
      }
      if (evs[i].events & EPOLLOUT) {
        auto it = conns_.find(id);
        if (it != conns_.end()) TryFlush(it->second);
      }
    }
    if (submitted_) {
      submitted_ = false;
      // Ack-after-force: close every partition's group-commit batch and
      // merge the flash lanes before any staged response leaves the process.
      sdb_->EpochBarrier();
      FlushStaged();
    }
  }

  // Clean shutdown: quiesce workers, kill interactive transactions, close
  // the group-commit batches so nothing acknowledged is left unforced.
  sdb_->Barrier();
  kv_->AbortAll();
  for (uint32_t p = 0; p < kv_->partitions(); ++p) kv_->ForceLog(p);
  sdb_->EpochBarrier();
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, c] : conns_) ids.push_back(id);
  for (uint64_t id : ids) CloseConn(id);
  return Status::OK();
}

void EpollServer::AcceptAll() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; epoll will re-notify
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    uint64_t id = next_conn_++;
    Conn c;
    c.fd = fd;
    c.id = id;
    conns_.emplace(id, std::move(c));
    fd_to_id_[fd] = id;
    stats_.accepted++;
  }
}

void EpollServer::HandleReadable(Conn& c) {
  uint8_t buf[64 * 1024];
  uint64_t id = c.id;
  // Bounded read: at most conn_read_budget bytes per iteration, not "drain
  // to EAGAIN" — level-triggered epoll re-notifies for the remainder, after
  // other connections (and the staged-ack flush) have had their turn.
  size_t budget = cfg_.conn_read_budget;
  while (budget > 0) {
    ssize_t n = read(c.fd, buf, std::min<size_t>(sizeof(buf), budget));
    if (n > 0) {
      c.dec.Feed(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
      budget -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error. A close mid-frame is a truncated frame: no reply.
    CloseConn(id);
    return;
  }

  Frame f;
  std::string err;
  while (!c.closing) {
    FrameDecoder::Next next = c.dec.Poll(&f, &err);
    if (next == FrameDecoder::Next::kNeedMore) break;
    if (next == FrameDecoder::Next::kFatal) {
      stats_.protocol_fatal++;
      // Set closing first: SendNow's flush closes the connection once the
      // error frame drains, which may invalidate `c` before we return.
      c.closing = true;
      std::vector<uint8_t> reason(err.begin(), err.end());
      SendNow(c, static_cast<uint8_t>(RStatus::kError), 0, reason);
      return;
    }
    OnFrame(c, f);
    if (conns_.find(id) == conns_.end()) return;  // dropped while replying
  }
  if (!c.closing && c.dec.buffered_bytes() > cfg_.conn_in_cap) {
    // All complete frames were consumed above, so buffered bytes are one
    // partial frame — beyond the cap the peer is flooding, not mid-frame.
    stats_.dropped_flooded++;
    CloseConn(id);
  }
}

void EpollServer::OnFrame(Conn& c, const Frame& f) {
  stats_.requests++;
  Request req;
  if (!ParseRequest(f, &req)) {
    stats_.bad_requests++;
    static constexpr char kMsg[] = "bad request";
    SendNow(c, static_cast<uint8_t>(RStatus::kBadRequest), f.request_id,
            std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(kMsg), sizeof(kMsg) - 1));
    return;
  }

  uint64_t conn_id = c.id;
  uint64_t request_id = f.request_id;
  switch (req.op) {
    case Op::kPing:
      SendNow(c, static_cast<uint8_t>(RStatus::kOk), request_id, {});
      return;

    case Op::kBegin: {
      uint32_t p = kv_->PartitionOfKey(req.key);
      // BEGIN pays admission like a data op, and the server-wide open-txn
      // cap bounds handle-table growth from clients that never COMMIT.
      if (kv_->open_txns() >= cfg_.max_open_txns || !ac_->TryAdmit(p)) {
        stats_.shed++;
        SendNow(c, static_cast<uint8_t>(RStatus::kRetry), request_id,
                RetryPayload(ac_->RetryHintUs(p)));
        return;
      }
      sdb_->Submit(p, [this, p, conn_id, request_id, hint = req.key] {
        auto h = kv_->Begin(hint, conn_id);
        std::vector<uint8_t> payload;
        uint8_t st = static_cast<uint8_t>(RStatus::kError);
        if (h.ok()) {
          st = static_cast<uint8_t>(RStatus::kOk);
          PutU64(&payload, h.value());
        }
        StageResponse(p, conn_id, st, request_id, payload);
        ac_->Complete(p);
      });
      submitted_ = true;
      return;
    }

    case Op::kCommit:
    case Op::kAbort: {
      uint32_t p = KvService::PartitionOfHandle(req.txn);
      if (p >= kv_->partitions()) {
        stats_.bad_requests++;
        SendNow(c, static_cast<uint8_t>(RStatus::kBadRequest), request_id, {});
        return;
      }
      bool commit = req.op == Op::kCommit;
      sdb_->Submit(p, [this, p, conn_id, request_id, commit, txn = req.txn] {
        RStatus rs = commit ? kv_->Commit(txn) : kv_->Abort(txn);
        StageResponse(p, conn_id, static_cast<uint8_t>(rs), request_id, {});
      });
      submitted_ = true;
      return;
    }

    case Op::kGet:
    case Op::kPut:
    case Op::kDelete: {
      uint32_t p = req.txn != kAutoCommit
                       ? KvService::PartitionOfHandle(req.txn)
                       : kv_->PartitionOfKey(req.key);
      if (p >= kv_->partitions()) {
        stats_.bad_requests++;
        SendNow(c, static_cast<uint8_t>(RStatus::kBadRequest), request_id, {});
        return;
      }
      if (!ac_->TryAdmit(p)) {
        stats_.shed++;
        SendNow(c, static_cast<uint8_t>(RStatus::kRetry), request_id,
                RetryPayload(ac_->RetryHintUs(p)));
        return;
      }
      Op op = req.op;
      std::vector<uint8_t> value(req.value.begin(), req.value.end());
      sdb_->Submit(p, [this, p, conn_id, request_id, op, txn = req.txn,
                       key = req.key, value = std::move(value)] {
        RStatus rs;
        std::vector<uint8_t> payload;
        if (op == Op::kGet) {
          rs = kv_->Get(p, txn, key, &payload);
          if (rs != RStatus::kOk) payload.clear();
        } else if (op == Op::kPut) {
          rs = kv_->Put(p, txn, key, value);
        } else {
          rs = kv_->Delete(p, txn, key);
        }
        StageResponse(p, conn_id, static_cast<uint8_t>(rs), request_id,
                      payload);
        ac_->Complete(p);
      });
      submitted_ = true;
      return;
    }
  }
  // Unreachable: ParseRequest rejects unknown opcodes.
  stats_.bad_requests++;
  SendNow(c, static_cast<uint8_t>(RStatus::kBadRequest), request_id, {});
}

void EpollServer::SendNow(Conn& c, uint8_t status, uint64_t request_id,
                          std::span<const uint8_t> payload) {
  EncodeFrame(status, request_id, payload, &c.out);
  stats_.responses++;
  TryFlush(c);
}

void EpollServer::StageResponse(uint32_t p, uint64_t conn_id, uint8_t status,
                                uint64_t request_id,
                                std::span<const uint8_t> payload) {
  Staged s;
  s.conn_id = conn_id;
  EncodeFrame(status, request_id, payload, &s.bytes);
  staged_[p].push_back(std::move(s));
}

void EpollServer::FlushStaged() {
  for (auto& lane : staged_) {
    for (Staged& s : lane) {
      auto it = conns_.find(s.conn_id);
      if (it == conns_.end()) continue;  // connection died before the ack
      Conn& c = it->second;
      c.out.insert(c.out.end(), s.bytes.begin(), s.bytes.end());
      stats_.responses++;
      TryFlush(c);
    }
    lane.clear();
  }
}

void EpollServer::TryFlush(Conn& c) {
  uint64_t id = c.id;
  while (c.out_off < c.out.size()) {
    ssize_t n = write(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off);
    if (n > 0) {
      c.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(id);
    return;
  }
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
    if (c.closing) {
      CloseConn(id);
      return;
    }
  } else if (c.out.size() - c.out_off > cfg_.conn_out_cap) {
    // Slow client: it stopped draining responses and the buffer blew past
    // the cap. Dropping it is the backpressure of last resort.
    stats_.dropped_slow++;
    CloseConn(id);
    return;
  }
  RearmEpoll(c);
}

void EpollServer::RearmEpoll(Conn& c) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (c.out_off < c.out.size()) ev.events |= EPOLLOUT;
  ev.data.fd = c.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void EpollServer::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  int fd = it->second.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  close(fd);
  fd_to_id_.erase(fd);
  conns_.erase(it);
  stats_.closed++;
  // A dying client's open transactions would otherwise hold their locks and
  // handle-table slots forever. Abort them on their home partitions; the
  // per-partition FIFO puts the abort behind any requests the connection
  // already submitted.
  for (uint64_t h : kv_->HandlesOwnedBy(id)) {
    stats_.txn_aborted_on_close++;
    sdb_->Submit(KvService::PartitionOfHandle(h),
                 [this, h] { (void)kv_->Abort(h); });
    submitted_ = true;
  }
}

}  // namespace ipa::net
