// Closed- and open-loop load generation against the serving stack, on the
// simulated clock (docs/SERVING.md).
//
// ServeSim drives a KvService over an engine::ShardedDatabase the way the
// epoll server does — per-partition request streams, admission control with
// RETRY shedding, batched execution with one group-commit log force per
// batch, responses acknowledged only after the force — but entirely
// in-process and in simulated time, so every run is bit-identical for a
// fixed seed: across repeats, across IPA_JOBS, and across threaded vs
// sequential partition drivers.
//
// The wire protocol runs on the hot path: each simulated request is encoded
// into a real frame, parsed by a FrameDecoder, and answered with an encoded
// response, so reported goodput bytes are true wire bytes.
//
// Closed loop: `clients` virtual clients each keep one request outstanding
// (plus think time); shed requests are retried after the server's hint.
// Open loop: Poisson arrivals at a configured rate over a churning
// connection pool with Zipfian key popularity and variable payload sizes —
// the production-traffic model. Slow clients stop draining responses for a
// window; connections whose response backlog passes the cap are dropped.
//
// Built-in oracle: every partition worker tracks the last acknowledged write
// per key and verifies GET payloads byte-for-byte, so a serving-layer run is
// also a correctness check of the engine underneath.

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "engine/sharded_database.h"
#include "net/admission.h"
#include "net/kv_service.h"

namespace ipa::net {

struct LoadgenConfig {
  uint64_t seed = 42;
  uint32_t clients = 64;
  uint64_t keys = 20000;
  double zipf_theta = 0.8;
  uint32_t value_min = 64;   ///< Clamped to >= 8 (values embed a write seq).
  uint32_t value_max = 1024;
  double write_fraction = 0.5;
  double delete_fraction = 0.05;  ///< Of writes.
  uint64_t think_us = 0;          ///< Closed-loop client think time.
  uint32_t cpu_us_per_request = 20;

  // Open-loop connection churn and slow-client injection.
  double churn_per_arrival = 0.002;  ///< P(replace the drawn connection).
  double slow_fraction = 0.02;       ///< P(a new connection is slow).
  uint64_t slow_window_us = 200000;  ///< How long a slow client stops reading.
  uint32_t conn_response_cap = 128;  ///< Undrained responses before drop.

  // Server-side knobs mirrored from the epoll server.
  uint32_t inflight_budget = 32;  ///< Per-partition admitted-request budget.
  uint32_t batch_ops = 8;         ///< Requests per group-commit force.
  uint32_t base_retry_hint_us = 200;

  /// Hard cap on generated open-loop arrivals per phase; hitting it is
  /// reported in PhaseResult::truncated (never silent).
  uint64_t max_open_arrivals = 500000;
};

struct PhaseResult {
  std::string name;
  double offered_tps = 0;
  uint64_t issued = 0;      ///< Requests put on the wire (incl. retries).
  uint64_t completed = 0;   ///< kOk + kNotFound responses.
  uint64_t shed = 0;        ///< kRetry responses from admission control.
  uint64_t errors = 0;      ///< kError / kUnavailable responses.
  uint64_t conn_opens = 0, conn_closes = 0;
  uint64_t conn_drops = 0;          ///< Slow connections dropped.
  uint64_t dropped_arrivals = 0;    ///< Arrivals discarded with their conn.
  uint64_t bytes_in = 0, bytes_out = 0;
  uint64_t sim_us = 0;
  bool truncated = false;
  LatencyStats lat;  ///< Accepted (completed) requests only.

  double goodput_tps() const {
    return sim_us == 0 ? 0.0
                       : static_cast<double>(completed) /
                             (static_cast<double>(sim_us) / 1e6);
  }
};

/// Deterministic value bytes for (key, seq): [seq u64][pseudo-random fill].
/// `len` is clamped to >= 8. Shared with the soak driver's oracle.
std::vector<uint8_t> ValueBytes(uint64_t key, uint64_t seq, uint32_t len);

class ServeSim {
 public:
  /// `sdb`, `kv` and `ac` are borrowed; `ac` must cover kv->partitions().
  ServeSim(engine::ShardedDatabase* sdb, KvService* kv,
           AdmissionController* ac, const LoadgenConfig& cfg);

  /// Write the initial `cfg.keys` keys (seq 0) and checkpoint to a steady
  /// on-flash state. Call once before the first phase.
  Status Preload();

  /// Closed loop: run until ~`target_completed` requests finished.
  Result<PhaseResult> RunClosedLoop(const std::string& name,
                                    uint64_t target_completed);

  /// Open loop: Poisson arrivals at `rate_tps` for `duration_us` simulated
  /// time. The phase processes every generated arrival even if that takes
  /// longer than `duration_us` on the servers' clocks (overload backlog).
  Result<PhaseResult> RunOpenLoop(const std::string& name, double rate_tps,
                                  uint64_t duration_us);

 private:
  struct Arrival {
    SimTime at = 0;
    uint8_t op = 0;  ///< Op::kGet / kPut / kDelete.
    uint64_t key = 0;
    uint32_t vlen = 0;
    uint64_t seq = 0;    ///< Per-key write sequence (writes only).
    uint64_t idx = 0;    ///< Index into the phase's outcome array.
  };

  struct Outcome {
    SimTime at = 0;
    SimTime resp = 0;
    uint8_t status = 0;  ///< RStatus byte.
    uint32_t req_bytes = 0;
    uint32_t resp_bytes = 0;
    uint32_t hint_us = 0;  ///< Backoff hint on kRetry outcomes.
  };

  struct PartState {
    /// Ack times of admitted-but-unretired requests (the queue-depth model
    /// admission control runs against). ~0 until the batch's log force.
    std::deque<SimTime> inflight;
    /// Oracle: last acknowledged write seq per key.
    std::unordered_map<uint64_t, uint64_t> expected;
  };

  Arrival DrawRequest(Rng& rng);
  /// Run one partition's arrival stream: admission, execution, group-commit
  /// forces, oracle checks. Runs on partition p's worker thread.
  Status ProcessStream(uint32_t p, const std::vector<Arrival>& arr,
                       std::vector<Outcome>* out);
  void Accumulate(const std::vector<Outcome>& outcomes, PhaseResult* r);

  engine::ShardedDatabase* sdb_;
  KvService* kv_;
  AdmissionController* ac_;
  LoadgenConfig cfg_;
  std::unique_ptr<ZipfianGenerator> zipf_;
  Rng rng_;
  std::unordered_map<uint64_t, uint64_t> next_seq_;
  std::vector<PartState> parts_;
};

}  // namespace ipa::net
