#include "net/admission.h"

#include <algorithm>

#include "common/metrics.h"

namespace ipa::net {

namespace {
metrics::Counter& AdmittedCounter() {
  static metrics::Counter c("serve.admitted");
  return c;
}
metrics::Counter& ShedCounter() {
  static metrics::Counter c("serve.shed");
  return c;
}
}  // namespace

AdmissionController::AdmissionController(uint32_t partitions, Config cfg)
    : cfg_(cfg), depth_(partitions) {
  if (cfg_.inflight_budget == 0) cfg_.inflight_budget = 1;
}

bool AdmissionController::TryAdmit(uint32_t part) {
  std::atomic<uint32_t>& d = depth_[part].v;
  // The transport thread is the only admitter per partition stream, so a
  // load+store (rather than a CAS loop) cannot overshoot the budget.
  if (d.load(std::memory_order_relaxed) >= cfg_.inflight_budget) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    ShedCounter().Inc();
    return false;
  }
  d.fetch_add(1, std::memory_order_relaxed);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  AdmittedCounter().Inc();
  return true;
}

void AdmissionController::Complete(uint32_t part) {
  depth_[part].v.fetch_sub(1, std::memory_order_relaxed);
}

uint32_t AdmissionController::RetryHintUs(uint32_t part) const {
  uint32_t d = std::max(depth(part), cfg_.inflight_budget);
  uint64_t hint = static_cast<uint64_t>(cfg_.base_retry_hint_us) * d /
                  cfg_.inflight_budget;
  return static_cast<uint32_t>(std::min<uint64_t>(hint, 10'000'000));
}

}  // namespace ipa::net
