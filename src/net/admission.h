// Admission control and backpressure for the serving layer
// (docs/SERVING.md).
//
// Each partition gets a bounded budget of admitted-but-unfinished requests.
// When the emulated flash device saturates, the partition's worker drains
// more slowly than requests arrive, the inflight count hits the budget, and
// further requests are shed immediately with RStatus::kRetry plus a backoff
// hint — so overload degrades into bounded queueing delay for the admitted
// requests instead of a collapsing tail.
//
// Thread contract: TryAdmit may be called from the transport thread while
// Complete runs on partition workers; counters are atomics. The deterministic
// bench (ServeSim) calls both from the owning partition's stream processor.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace ipa::net {

class AdmissionController {
 public:
  struct Config {
    /// Max admitted-but-unfinished requests per partition.
    uint32_t inflight_budget = 64;
    /// Backoff hint returned with RETRY, scaled by how far past the budget
    /// the queue is (hint = base * depth / budget).
    uint32_t base_retry_hint_us = 200;
  };

  AdmissionController(uint32_t partitions, Config cfg);

  uint32_t partitions() const { return static_cast<uint32_t>(depth_.size()); }
  const Config& config() const { return cfg_; }

  /// Reserve an inflight slot on `part`. False = shed (slot not taken).
  bool TryAdmit(uint32_t part);

  /// Release a slot taken by TryAdmit (request finished or dropped).
  void Complete(uint32_t part);

  uint32_t depth(uint32_t part) const {
    return depth_[part].v.load(std::memory_order_relaxed);
  }

  /// Suggested client backoff for a request shed on `part` right now.
  uint32_t RetryHintUs(uint32_t part) const;

  uint64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

 private:
  struct alignas(64) Cell {
    std::atomic<uint32_t> v{0};
  };

  Config cfg_;
  std::vector<Cell> depth_;
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
};

}  // namespace ipa::net
