// Epoll-based TCP front end for the sharded engine (docs/SERVING.md).
//
// One transport thread owns the listening socket, every connection and the
// epoll loop; request execution runs on the engine's partition workers via
// ShardedDatabase::Submit. Per event-loop iteration the server:
//
//   1. drains readable sockets through per-connection FrameDecoders,
//   2. routes each request to its home partition — after an admission check
//      that sheds with RETRY + backoff hint when the partition's inflight
//      budget is exhausted (net/admission.h),
//   3. runs one EpochBarrier, which quiesces the workers, closes every
//      partition's group-commit batch and merges the flash lanes — so every
//      staged response is durable before step 4 (ack-after-force),
//   4. flushes the staged responses to the sockets.
//
// Per-request protocol errors answer kBadRequest and keep the connection;
// stream-poisoning errors (bad magic/version/oversize/CRC) get one kError
// frame and a close (net/protocol.h). Both directions are bounded: a
// connection whose output buffer exceeds Config::conn_out_cap (a slow
// client that stopped reading) or whose decoder buffer exceeds
// Config::conn_in_cap is dropped, and reads are limited to
// Config::conn_read_budget per iteration so one pipeliner cannot starve the
// rest. BEGIN passes admission control like a data op and is additionally
// capped by Config::max_open_txns; a connection that dies with transactions
// open gets them aborted on their home partitions (CloseConn), so no client
// can leak locks or handle-table entries. Stop() is async-signal-safe:
// SIGTERM handlers call it to trigger the clean-shutdown path (abort open
// txns, force logs, close sockets).

#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/sharded_database.h"
#include "net/admission.h"
#include "net/kv_service.h"
#include "net/protocol.h"

namespace ipa::net {

class EpollServer {
 public:
  struct Config {
    std::string bind_addr = "127.0.0.1";
    uint16_t port = 0;  ///< 0 picks an ephemeral port; see port().
    /// Output-buffer cap per connection; beyond it the peer is dropped.
    uint32_t conn_out_cap = 1u << 20;
    /// Bytes read per connection per event-loop iteration, so one heavy
    /// pipeliner cannot monopolize the transport thread; level-triggered
    /// epoll re-notifies for whatever is left in the socket buffer.
    uint32_t conn_read_budget = 256u << 10;
    /// Decoder-buffer cap per connection; beyond it the peer is dropped
    /// (must exceed one max frame, kHeaderBytes + kMaxPayload).
    uint32_t conn_in_cap = 2u << 20;
    /// Server-wide cap on open interactive transactions; BEGIN beyond it is
    /// shed with RETRY so clients that never COMMIT cannot grow the handle
    /// table (and lock footprint) without bound.
    uint32_t max_open_txns = 1024;
  };

  struct Stats {
    uint64_t accepted = 0;
    uint64_t closed = 0;
    uint64_t dropped_slow = 0;
    uint64_t dropped_flooded = 0;  ///< Closed for input-buffer overrun.
    uint64_t protocol_fatal = 0;  ///< Connections closed for stream poison.
    uint64_t requests = 0;
    uint64_t responses = 0;
    uint64_t shed = 0;
    uint64_t bad_requests = 0;
    uint64_t txn_aborted_on_close = 0;  ///< Txns a dead client left open.
  };

  /// All three collaborators are borrowed and must outlive the server.
  EpollServer(engine::ShardedDatabase* sdb, KvService* kv,
              AdmissionController* ac, Config cfg);
  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  /// Bind + listen + create the epoll instance. port() is valid after this.
  Status Start();
  uint16_t port() const { return port_; }

  /// Serve until Stop(). Runs the transport loop on the calling thread and
  /// performs the clean shutdown (abort txns, force logs) before returning.
  Status Run();

  /// Request shutdown. Async-signal-safe (flag + self-pipe write).
  void Stop();

  const Stats& stats() const { return stats_; }

 private:
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    FrameDecoder dec;
    std::vector<uint8_t> out;
    size_t out_off = 0;
    bool closing = false;  ///< Flush remaining output, then close.
  };
  /// A response produced on a partition worker, flushed after the barrier.
  struct Staged {
    uint64_t conn_id = 0;
    std::vector<uint8_t> bytes;
  };

  void AcceptAll();
  void HandleReadable(Conn& c);
  void OnFrame(Conn& c, const Frame& f);
  /// Append an encoded response and try to flush (transport-thread sends:
  /// PING, shed RETRY, kBadRequest, fatal kError).
  void SendNow(Conn& c, uint8_t status, uint64_t request_id,
               std::span<const uint8_t> payload);
  /// Encode + stage a response on partition p's worker thread.
  void StageResponse(uint32_t p, uint64_t conn_id, uint8_t status,
                     uint64_t request_id, std::span<const uint8_t> payload);
  void FlushStaged();
  /// Write as much of c.out as the socket accepts; closes on error, on
  /// completed `closing` flush, and on output-cap breach.
  void TryFlush(Conn& c);
  void CloseConn(uint64_t id);
  void RearmEpoll(Conn& c);

  engine::ShardedDatabase* sdb_;
  KvService* kv_;
  AdmissionController* ac_;
  Config cfg_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  uint64_t next_conn_ = 1;
  std::unordered_map<uint64_t, Conn> conns_;
  std::unordered_map<int, uint64_t> fd_to_id_;
  std::vector<std::vector<Staged>> staged_;  ///< One lane per partition.
  bool submitted_ = false;  ///< Work handed to partition workers this round.
  Stats stats_;
};

}  // namespace ipa::net
