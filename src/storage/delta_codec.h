// Shared primitives for the byte-oriented delta-record codecs
// (docs/DELTA_COMPRESSION.md): LEB128 varints, a 16-bit payload checksum and
// a small deterministic LZ pass. No external dependencies, no heap churn on
// the hot path beyond the caller-provided vectors, and bit-for-bit
// deterministic output for a given input — the fuzzer fingerprints depend on
// it. The same helpers back the replication wire compression
// (src/repl/changeset.cc), so frames and pages share one format.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipa::storage {

/// Append `v` to `out` as a LEB128 varint (7 bits per byte, high bit =
/// continuation). Values < 128 cost one byte — the common case for
/// offset gaps within a page.
void PutVarint(std::vector<uint8_t>& out, uint32_t v);

/// Decode a varint at data[*pos]; advances *pos. Returns false on truncation
/// or a varint longer than 5 bytes (fail closed — torn records must never
/// decode as garbage).
bool GetVarint(const uint8_t* data, uint32_t len, uint32_t* pos, uint32_t* v);

/// 16-bit payload checksum: the low half of CRC32C. Used by the byte-codec
/// record header; 16 bits keep the per-record overhead at 5 bytes while the
/// structural decode check catches what a truncated CRC might miss.
uint16_t Crc16(const uint8_t* data, size_t len);

/// Deterministic greedy LZ compressor (token stream):
///   token 0x00..0x7F: literal run of (token + 1) bytes follows;
///   token 0x80..0xFF: match of length (token - 0x80 + 3), followed by a
///                     varint distance (>= 1) back into the output produced
///                     so far.
/// Matches are at least 3 and at most 130 bytes; the search window is
/// bounded so compression cost stays linear for page-sized inputs. Returns
/// the compressed bytes; output may be larger than the input (callers keep
/// the raw form when that happens).
std::vector<uint8_t> LzCompress(const uint8_t* data, size_t len);

/// Inverse of LzCompress. Appends to `out`; every read and copy is bounds
/// checked and output is capped at `max_out` bytes. Returns false on any
/// malformed token, truncated run, bad distance or cap overflow — torn
/// compressed records fail closed.
bool LzDecompress(const uint8_t* data, uint32_t len, uint32_t max_out,
                  std::vector<uint8_t>& out);

}  // namespace ipa::storage
