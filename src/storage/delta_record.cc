#include "storage/delta_record.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "storage/delta_codec.h"
#include "storage/slotted_page.h"

namespace ipa::storage {

namespace {

/// Torn delta records rejected by the read/apply paths. Every rejection is
/// one scan hitting a record whose ctrl byte is programmed but whose body
/// fails validation (a torn in-place append); the same physical record counts
/// once per scan until a scrub or quarantine clears it. Exported so the
/// replication convergence oracle can assert that torn-record drops are
/// observable, not silent.
metrics::Counter& RejectedTorn() {
  static metrics::Counter c{"storage.delta.rejected_torn"};
  return c;
}

/// Delta-area tails quarantined because of a torn record: once a scan
/// rejects a record, everything from it to the end of the area is treated as
/// never written. Incremented in lockstep with RejectedTorn() — one rejected
/// record quarantines exactly one tail — and the fuzzer's conservation
/// oracle asserts the two counters stay equal.
metrics::Counter& QuarantinedTails() {
  static metrics::Counter c{"storage.delta.quarantined_tails"};
  return c;
}

/// Single choke point for torn-record rejection so the two counters above
/// cannot drift apart.
void NoteTornRejected() {
  RejectedTorn().Inc();
  QuarantinedTails().Inc();
}

struct AreaView {
  uint32_t delta_off;
  Scheme scheme;
  uint32_t record_bytes;
};

AreaView ViewOf(const uint8_t* page, uint32_t page_size) {
  SlottedPage view(const_cast<uint8_t*>(page), page_size);
  AreaView v;
  v.delta_off = view.delta_off();
  v.scheme = view.scheme();
  v.record_bytes = v.scheme.RecordBytes();
  return v;
}

/// Encode one (value, offset) pair at `dst`.
void PutPair(uint8_t* dst, ByteChange c) {
  dst[0] = c.value;
  EncodeU16(dst + 1, c.offset);
}

/// True iff the record at `rec` is a completely-programmed delta record. A
/// power loss mid-append can only clear bits (ISPP), so a torn ctrl byte is a
/// strict superset of kCtrlPresent's zero bits — never equal unless the ctrl
/// byte finished — and a torn pair can leave an offset pointing into the
/// delta area. Either way the record (and everything after it) must read as
/// never written. The kSkipDeltaRecordValidation fault point degrades this to
/// "ctrl byte not erased", letting torn records through — the deliberate bug
/// the differential checker must catch (tests/differential_test.cc).
bool ValidRecord(const uint8_t* rec, const AreaView& v) {
  if (fault::Enabled(fault::Point::kSkipDeltaRecordValidation)) {
    return rec[0] != 0xFF;
  }
  return RecordWellFormed(rec, v.delta_off, v.scheme);
}

// ---------------------------------------------------------------------------
// Byte codecs (kDelta, kDeltaCompress).

/// Decode a kDelta payload (varint offset-gaps + absolute values, strictly
/// ascending, fully consumed) into `out` (when non-null). Fails closed on
/// any structural violation.
bool DecodeGapPayload(const uint8_t* data, uint32_t len, uint32_t delta_off,
                      std::vector<ByteChange>* out) {
  uint32_t pos = 0;
  uint32_t next_min = 0;  // first offset = gap; later: prev + 1 + gap
  bool first = true;
  if (len == 0) return false;
  while (pos < len) {
    uint32_t gap = 0;
    if (!GetVarint(data, len, &pos, &gap)) return false;
    if (pos >= len) return false;  // value byte missing
    uint8_t value = data[pos++];
    uint64_t offset = static_cast<uint64_t>(next_min) + gap;
    if (offset >= delta_off) return false;
    if (out != nullptr) {
      out->push_back(ByteChange{static_cast<uint16_t>(offset), value});
    }
    next_min = static_cast<uint32_t>(offset) + 1;
    first = false;
  }
  return !first;
}

/// Decode the payload of a byte-codec record into `out` (when non-null),
/// handling the kDeltaCompress method byte. `scratch` holds decompressed
/// bytes so the caller controls allocation.
bool DecodeBytePayload(const uint8_t* payload, uint32_t len, const AreaView& v,
                       std::vector<ByteChange>* out,
                       std::vector<uint8_t>& scratch) {
  if (v.scheme.delta_codec() == DeltaCodec::kDelta) {
    return DecodeGapPayload(payload, len, v.delta_off, out);
  }
  if (len < 2) return false;  // method byte + at least one payload byte
  uint8_t method = payload[0];
  if (method == 0) {  // stored
    return DecodeGapPayload(payload + 1, len - 1, v.delta_off, out);
  }
  if (method != 1) return false;
  scratch.clear();
  // Each change costs >= 2 payload bytes and covers an offset < delta_off,
  // so a well-formed decompressed payload can never exceed 4 bytes/change.
  uint32_t max_out = 4u * v.delta_off;
  if (!LzDecompress(payload + 1, len - 1, max_out, scratch)) return false;
  return DecodeGapPayload(scratch.data(), static_cast<uint32_t>(scratch.size()),
                          v.delta_off, out);
}

/// Full validation of the byte-codec record at page offset `pos`:
/// header bounds, ctrl byte, payload checksum, structural decode. On success
/// sets *rec_len to the total record length (header + payload). Under
/// kSkipDeltaRecordValidation the checksum and decode checks are skipped
/// (the differential checker's deliberate bug); the header bounds are not —
/// they keep the scan itself memory-safe.
bool ValidByteRecord(const uint8_t* page, uint32_t page_size, uint32_t pos,
                     const AreaView& v, bool strict, uint32_t* rec_len,
                     std::vector<uint8_t>& scratch) {
  if (pos + kByteRecordHeader > page_size) return false;
  const uint8_t* rec = page + pos;
  uint16_t len = DecodeU16(rec + 1);
  if (len == 0 || pos + kByteRecordHeader + len > page_size) return false;
  *rec_len = kByteRecordHeader + len;
  if (!strict && fault::Enabled(fault::Point::kSkipDeltaRecordValidation)) {
    return rec[0] != 0xFF;
  }
  if (rec[0] != kCtrlPresent) return false;
  if (DecodeU16(rec + 3) != Crc16(rec + kByteRecordHeader, len)) return false;
  return DecodeBytePayload(rec + kByteRecordHeader, len, v, nullptr, scratch);
}

struct ByteScan {
  uint32_t count = 0;  ///< Valid records in the prefix.
  uint32_t end = 0;    ///< Page offset one past the last valid record.
  bool torn = false;   ///< Scan stopped at a programmed-but-invalid record.
};

/// Walk the byte-codec records from delta_off: a contiguous prefix of valid
/// records, terminated by an erased ctrl byte (clean end) or anything
/// invalid (torn tail). `strict` bypasses the fault-injection override —
/// the audit oracle must keep rejecting what the (deliberately) broken read
/// path lets through.
ByteScan ScanByteRecords(const uint8_t* page, uint32_t page_size,
                         const AreaView& v, bool strict = false) {
  ByteScan scan;
  scan.end = v.delta_off;
  std::vector<uint8_t> scratch;
  while (scan.end < page_size && page[scan.end] != 0xFF) {
    uint32_t rec_len = 0;
    if (!ValidByteRecord(page, page_size, scan.end, v, strict, &rec_len,
                         scratch)) {
      scan.torn = true;
      break;
    }
    scan.end += rec_len;
    scan.count++;
  }
  return scan;
}

bool IsByteCodec(const AreaView& v) {
  return v.scheme.delta_codec() != DeltaCodec::kRaw;
}

}  // namespace

bool RecordWellFormed(const uint8_t* rec, uint32_t delta_off, Scheme scheme) {
  if (rec[0] != kCtrlPresent) return false;
  uint32_t pairs = static_cast<uint32_t>(scheme.m) + scheme.v;
  for (uint32_t p = 0; p < pairs; p++) {
    const uint8_t* pair = rec + 1 + 3 * p;
    uint16_t offset = DecodeU16(pair + 1);
    if (offset == 0xFFFF) {
      // Unused pair: EncodeDeltaRecords leaves all three bytes erased. A
      // programmed value under an erased offset is a torn append.
      if (pair[0] != 0xFF) return false;
      continue;
    }
    if (offset >= delta_off) return false;
  }
  return true;
}

Status AuditDeltaArea(const uint8_t* page, uint32_t page_size) {
  AreaView v = ViewOf(page, page_size);
  if (v.scheme.enabled() && IsByteCodec(v)) {
    ByteScan scan = ScanByteRecords(page, page_size, v, /*strict=*/true);
    if (scan.torn) {
      return Status::Corruption("byte-codec delta record " +
                                std::to_string(scan.count) +
                                " is torn or malformed");
    }
    for (uint32_t i = scan.end; i < page_size; i++) {
      if (page[i] != 0xFF) {
        return Status::Corruption(
            "non-erased byte at page offset " + std::to_string(i) +
            " past byte-codec delta record " + std::to_string(scan.count));
      }
    }
    return Status::OK();
  }
  uint32_t present = 0;
  if (v.scheme.enabled()) {
    for (; present < v.scheme.n; present++) {
      uint32_t base = v.delta_off + present * v.record_bytes;
      if (base + v.record_bytes > page_size) break;
      if (page[base] == 0xFF) break;
      if (!RecordWellFormed(page + base, v.delta_off, v.scheme)) {
        return Status::Corruption("delta slot " + std::to_string(present) +
                                  " is torn or malformed");
      }
    }
  }
  // Everything past the present prefix — trailing slots and slack — must
  // still be erased; stray programmed bytes there are torn remnants.
  uint32_t tail = v.scheme.enabled()
                      ? v.delta_off + present * v.record_bytes
                      : v.delta_off;
  for (uint32_t i = tail; i < page_size; i++) {
    if (page[i] != 0xFF) {
      return Status::Corruption(
          "non-erased byte at page offset " + std::to_string(i) +
          " past delta record " + std::to_string(present));
    }
  }
  return Status::OK();
}

uint32_t CountDeltaRecords(const uint8_t* page, uint32_t page_size) {
  AreaView v = ViewOf(page, page_size);
  if (!v.scheme.enabled()) return 0;
  if (IsByteCodec(v)) {
    ByteScan scan = ScanByteRecords(page, page_size, v);
    if (scan.torn) NoteTornRejected();
    return scan.count;
  }
  uint32_t count = 0;
  for (uint32_t r = 0; r < v.scheme.n; r++) {
    uint32_t base = v.delta_off + r * v.record_bytes;
    if (base + v.record_bytes > page_size) break;
    if (page[base] == 0xFF) break;  // erased ctrl byte: no further records
    if (!ValidRecord(page + base, v)) {  // torn record: never written
      NoteTornRejected();
      break;
    }
    count++;
  }
  return count;
}

uint32_t ApplyDeltaRecords(uint8_t* page, uint32_t page_size) {
  AreaView v = ViewOf(page, page_size);
  if (!v.scheme.enabled()) return 0;
  if (IsByteCodec(v)) {
    uint32_t applied = 0;
    uint32_t pos = v.delta_off;
    std::vector<uint8_t> scratch;
    std::vector<ByteChange> changes;
    while (pos < page_size && page[pos] != 0xFF) {
      uint32_t rec_len = 0;
      if (!ValidByteRecord(page, page_size, pos, v, /*strict=*/false,
                           &rec_len, scratch)) {
        NoteTornRejected();  // torn record: never written
        break;
      }
      uint16_t len = DecodeU16(page + pos + 1);
      changes.clear();
      // Decode can only fail under kSkipDeltaRecordValidation (the read
      // path's deliberate bug); apply whatever decoded before the failure —
      // exactly the garbage the differential checker must catch.
      DecodeBytePayload(page + pos + kByteRecordHeader, len, v, &changes,
                        scratch);
      for (const ByteChange& c : changes) page[c.offset] = c.value;
      pos += rec_len;
      applied++;
    }
    return applied;
  }
  uint32_t applied = 0;
  uint32_t pairs = static_cast<uint32_t>(v.scheme.m) + v.scheme.v;
  for (uint32_t r = 0; r < v.scheme.n; r++) {
    uint32_t base = v.delta_off + r * v.record_bytes;
    if (base + v.record_bytes > page_size) break;
    if (page[base] == 0xFF) break;
    if (!ValidRecord(page + base, v)) {  // torn record: never written
      NoteTornRejected();
      break;
    }
    for (uint32_t p = 0; p < pairs; p++) {
      const uint8_t* pair = page + base + 1 + 3 * p;
      uint16_t offset = DecodeU16(pair + 1);
      if (offset == 0xFFFF) continue;
      if (offset < v.delta_off) page[offset] = pair[0];
    }
    applied++;
  }
  return applied;
}

uint32_t DeltaBudgetRemaining(const uint8_t* page, uint32_t page_size) {
  AreaView v = ViewOf(page, page_size);
  if (!v.scheme.enabled()) return 0;
  if (IsByteCodec(v)) {
    ByteScan scan = ScanByteRecords(page, page_size, v);
    if (scan.torn) return 0;  // cannot append past torn bytes
    uint32_t remaining = page_size - scan.end;
    bool compress = v.scheme.delta_codec() == DeltaCodec::kDeltaCompress;
    uint32_t header = kByteRecordHeader + (compress ? 1 : 0);
    if (remaining <= header + 1) return 0;
    uint32_t usable = remaining - header;
    // kDelta: worst case 2 bytes per change. kDeltaCompress: optimistic
    // ~1 byte per change best case; EncodeDeltaRecords does the exact check.
    return compress ? usable : usable / 2;
  }
  uint32_t existing = CountDeltaRecords(page, page_size);
  return (v.scheme.n - existing) * v.scheme.m;
}

PageDiff DiffPages(const uint8_t* base, const uint8_t* cur, uint32_t page_size,
                   uint32_t body_cap, uint32_t meta_cap) {
  SlottedPage view(const_cast<uint8_t*>(cur), page_size);
  uint32_t delta_off = view.delta_off();
  uint16_t meta_begin = view.free_end();

  PageDiff diff;
  // Classify changed byte `i`; false once a cap is hit (diff.overflow set).
  auto record = [&](uint32_t i) {
    ByteChange c{static_cast<uint16_t>(i), cur[i]};
    bool is_meta = i < kPageHeaderSize || (i >= meta_begin && i < delta_off);
    if (is_meta) {
      if (diff.meta.size() >= meta_cap) {
        diff.overflow = true;
        return false;
      }
      diff.meta.push_back(c);
    } else {
      if (diff.body.size() >= body_cap) {
        diff.overflow = true;
        return false;
      }
      diff.body.push_back(c);
    }
    return true;
  };

  // Word-wise scan: most of the page is unchanged on a typical flush, so
  // compare 8 bytes at a time and only drop to byte granularity inside a
  // differing word. Bytes are still visited in ascending offset order, so
  // the produced diff (including truncation on overflow) is identical to a
  // plain byte loop.
  uint32_t i = 0;
  const uint32_t word_end = delta_off & ~7u;
  for (; i < word_end; i += 8) {
    uint64_t a, b;
    std::memcpy(&a, base + i, 8);
    std::memcpy(&b, cur + i, 8);
    if (a == b) continue;
    for (uint32_t k = i; k < i + 8; k++) {
      if (base[k] != cur[k] && !record(k)) return diff;
    }
  }
  for (; i < delta_off; i++) {
    if (base[i] != cur[i] && !record(i)) return diff;
  }
  return diff;
}

Result<AppendPlan> EncodeDeltaRecords(uint8_t* cur, uint32_t page_size,
                                      const PageDiff& diff) {
  AreaView v = ViewOf(cur, page_size);
  if (!v.scheme.enabled()) {
    return Status::NotSupported("page has no delta area");
  }
  if (diff.overflow) {
    return Status::OutOfSpace("diff exceeds tracking caps");
  }
  if (diff.Empty()) {
    return AppendPlan{};  // nothing to write
  }
  if (IsByteCodec(v)) {
    ByteScan scan = ScanByteRecords(cur, page_size, v);
    if (scan.torn) {
      return Status::OutOfSpace("delta area has a torn tail");
    }
    // Merge body and meta changes into one ascending-offset stream (both
    // vectors come from DiffPages's ascending scan).
    std::vector<ByteChange> merged;
    merged.resize(diff.body.size() + diff.meta.size());
    std::merge(diff.body.begin(), diff.body.end(), diff.meta.begin(),
               diff.meta.end(), merged.begin(),
               [](ByteChange a, ByteChange b) { return a.offset < b.offset; });
    std::vector<uint8_t> payload;
    payload.reserve(2 * merged.size() + 4);
    uint32_t next_min = 0;
    for (const ByteChange& c : merged) {
      PutVarint(payload, c.offset - next_min);
      payload.push_back(c.value);
      next_min = static_cast<uint32_t>(c.offset) + 1;
    }
    if (v.scheme.delta_codec() == DeltaCodec::kDeltaCompress) {
      std::vector<uint8_t> lz = LzCompress(payload.data(), payload.size());
      std::vector<uint8_t> framed;
      framed.reserve(1 + std::min(lz.size(), payload.size()));
      if (lz.size() < payload.size()) {
        framed.push_back(1);  // method: LZ
        framed.insert(framed.end(), lz.begin(), lz.end());
      } else {
        framed.push_back(0);  // method: stored
        framed.insert(framed.end(), payload.begin(), payload.end());
      }
      payload = std::move(framed);
    }
    uint32_t total = kByteRecordHeader + static_cast<uint32_t>(payload.size());
    if (scan.end + total > page_size) {
      return Status::OutOfSpace("byte-codec delta area exhausted");
    }
    uint8_t* rec = cur + scan.end;
    rec[0] = kCtrlPresent;
    EncodeU16(rec + 1, static_cast<uint16_t>(payload.size()));
    EncodeU16(rec + 3, Crc16(payload.data(), payload.size()));
    std::memcpy(rec + kByteRecordHeader, payload.data(), payload.size());
    AppendPlan plan;
    plan.write_offset = scan.end;
    plan.write_len = total;
    plan.records = 1;
    return plan;
  }
  if (diff.meta.size() > v.scheme.v) {
    return Status::OutOfSpace("metadata changes exceed V");
  }
  uint32_t existing = CountDeltaRecords(cur, page_size);
  uint32_t avail = v.scheme.n - existing;
  uint32_t body = static_cast<uint32_t>(diff.body.size());
  uint32_t needed = body == 0 ? 1 : (body + v.scheme.m - 1) / v.scheme.m;
  if (needed > avail) {
    return Status::OutOfSpace("delta-record slots exhausted");
  }

  uint32_t first = v.delta_off + existing * v.record_bytes;
  size_t body_idx = 0;
  for (uint32_t k = 0; k < needed; k++) {
    uint8_t* rec = cur + first + k * v.record_bytes;
    // The buffer's delta slots must still be erased; fill explicitly so the
    // encoded bytes are exactly what write_delta programs.
    std::memset(rec, 0xFF, v.record_bytes);
    rec[0] = kCtrlPresent;
    for (uint32_t p = 0; p < v.scheme.m && body_idx < diff.body.size(); p++) {
      PutPair(rec + 1 + 3 * p, diff.body[body_idx++]);
    }
    if (k == needed - 1) {
      for (size_t j = 0; j < diff.meta.size(); j++) {
        PutPair(rec + 1 + 3 * v.scheme.m + 3 * static_cast<uint32_t>(j),
                diff.meta[j]);
      }
    }
  }

  AppendPlan plan;
  plan.write_offset = first;
  plan.write_len = needed * v.record_bytes;
  plan.records = needed;
  return plan;
}

}  // namespace ipa::storage
