#include "storage/delta_record.h"

#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "storage/slotted_page.h"

namespace ipa::storage {

namespace {

/// Torn delta records rejected by the read/apply paths. Every rejection is
/// one scan hitting a record whose ctrl byte is programmed but whose body
/// fails validation (a torn in-place append); the same physical record counts
/// once per scan until a scrub or quarantine clears it. Exported so the
/// replication convergence oracle can assert that torn-record drops are
/// observable, not silent.
metrics::Counter& RejectedTorn() {
  static metrics::Counter c{"storage.delta.rejected_torn"};
  return c;
}

struct AreaView {
  uint32_t delta_off;
  Scheme scheme;
  uint32_t record_bytes;
};

AreaView ViewOf(const uint8_t* page, uint32_t page_size) {
  SlottedPage view(const_cast<uint8_t*>(page), page_size);
  AreaView v;
  v.delta_off = view.delta_off();
  v.scheme = view.scheme();
  v.record_bytes = v.scheme.RecordBytes();
  return v;
}

/// Encode one (value, offset) pair at `dst`.
void PutPair(uint8_t* dst, ByteChange c) {
  dst[0] = c.value;
  EncodeU16(dst + 1, c.offset);
}

/// True iff the record at `rec` is a completely-programmed delta record. A
/// power loss mid-append can only clear bits (ISPP), so a torn ctrl byte is a
/// strict superset of kCtrlPresent's zero bits — never equal unless the ctrl
/// byte finished — and a torn pair can leave an offset pointing into the
/// delta area. Either way the record (and everything after it) must read as
/// never written. The kSkipDeltaRecordValidation fault point degrades this to
/// "ctrl byte not erased", letting torn records through — the deliberate bug
/// the differential checker must catch (tests/differential_test.cc).
bool ValidRecord(const uint8_t* rec, const AreaView& v) {
  if (fault::Enabled(fault::Point::kSkipDeltaRecordValidation)) {
    return rec[0] != 0xFF;
  }
  return RecordWellFormed(rec, v.delta_off, v.scheme);
}

}  // namespace

bool RecordWellFormed(const uint8_t* rec, uint32_t delta_off, Scheme scheme) {
  if (rec[0] != kCtrlPresent) return false;
  uint32_t pairs = static_cast<uint32_t>(scheme.m) + scheme.v;
  for (uint32_t p = 0; p < pairs; p++) {
    const uint8_t* pair = rec + 1 + 3 * p;
    uint16_t offset = DecodeU16(pair + 1);
    if (offset == 0xFFFF) {
      // Unused pair: EncodeDeltaRecords leaves all three bytes erased. A
      // programmed value under an erased offset is a torn append.
      if (pair[0] != 0xFF) return false;
      continue;
    }
    if (offset >= delta_off) return false;
  }
  return true;
}

Status AuditDeltaArea(const uint8_t* page, uint32_t page_size) {
  AreaView v = ViewOf(page, page_size);
  uint32_t present = 0;
  if (v.scheme.enabled()) {
    for (; present < v.scheme.n; present++) {
      uint32_t base = v.delta_off + present * v.record_bytes;
      if (base + v.record_bytes > page_size) break;
      if (page[base] == 0xFF) break;
      if (!RecordWellFormed(page + base, v.delta_off, v.scheme)) {
        return Status::Corruption("delta slot " + std::to_string(present) +
                                  " is torn or malformed");
      }
    }
  }
  // Everything past the present prefix — trailing slots and slack — must
  // still be erased; stray programmed bytes there are torn remnants.
  uint32_t tail = v.scheme.enabled()
                      ? v.delta_off + present * v.record_bytes
                      : v.delta_off;
  for (uint32_t i = tail; i < page_size; i++) {
    if (page[i] != 0xFF) {
      return Status::Corruption(
          "non-erased byte at page offset " + std::to_string(i) +
          " past delta record " + std::to_string(present));
    }
  }
  return Status::OK();
}

uint32_t CountDeltaRecords(const uint8_t* page, uint32_t page_size) {
  AreaView v = ViewOf(page, page_size);
  if (!v.scheme.enabled()) return 0;
  uint32_t count = 0;
  for (uint32_t r = 0; r < v.scheme.n; r++) {
    uint32_t base = v.delta_off + r * v.record_bytes;
    if (base + v.record_bytes > page_size) break;
    if (page[base] == 0xFF) break;  // erased ctrl byte: no further records
    if (!ValidRecord(page + base, v)) {  // torn record: never written
      RejectedTorn().Inc();
      break;
    }
    count++;
  }
  return count;
}

uint32_t ApplyDeltaRecords(uint8_t* page, uint32_t page_size) {
  AreaView v = ViewOf(page, page_size);
  if (!v.scheme.enabled()) return 0;
  uint32_t applied = 0;
  uint32_t pairs = static_cast<uint32_t>(v.scheme.m) + v.scheme.v;
  for (uint32_t r = 0; r < v.scheme.n; r++) {
    uint32_t base = v.delta_off + r * v.record_bytes;
    if (base + v.record_bytes > page_size) break;
    if (page[base] == 0xFF) break;
    if (!ValidRecord(page + base, v)) {  // torn record: never written
      RejectedTorn().Inc();
      break;
    }
    for (uint32_t p = 0; p < pairs; p++) {
      const uint8_t* pair = page + base + 1 + 3 * p;
      uint16_t offset = DecodeU16(pair + 1);
      if (offset == 0xFFFF) continue;
      if (offset < v.delta_off) page[offset] = pair[0];
    }
    applied++;
  }
  return applied;
}

uint32_t DeltaBudgetRemaining(const uint8_t* page, uint32_t page_size) {
  AreaView v = ViewOf(page, page_size);
  if (!v.scheme.enabled()) return 0;
  uint32_t existing = CountDeltaRecords(page, page_size);
  return (v.scheme.n - existing) * v.scheme.m;
}

PageDiff DiffPages(const uint8_t* base, const uint8_t* cur, uint32_t page_size,
                   uint32_t body_cap, uint32_t meta_cap) {
  SlottedPage view(const_cast<uint8_t*>(cur), page_size);
  uint32_t delta_off = view.delta_off();
  uint16_t meta_begin = view.free_end();

  PageDiff diff;
  // Classify changed byte `i`; false once a cap is hit (diff.overflow set).
  auto record = [&](uint32_t i) {
    ByteChange c{static_cast<uint16_t>(i), cur[i]};
    bool is_meta = i < kPageHeaderSize || (i >= meta_begin && i < delta_off);
    if (is_meta) {
      if (diff.meta.size() >= meta_cap) {
        diff.overflow = true;
        return false;
      }
      diff.meta.push_back(c);
    } else {
      if (diff.body.size() >= body_cap) {
        diff.overflow = true;
        return false;
      }
      diff.body.push_back(c);
    }
    return true;
  };

  // Word-wise scan: most of the page is unchanged on a typical flush, so
  // compare 8 bytes at a time and only drop to byte granularity inside a
  // differing word. Bytes are still visited in ascending offset order, so
  // the produced diff (including truncation on overflow) is identical to a
  // plain byte loop.
  uint32_t i = 0;
  const uint32_t word_end = delta_off & ~7u;
  for (; i < word_end; i += 8) {
    uint64_t a, b;
    std::memcpy(&a, base + i, 8);
    std::memcpy(&b, cur + i, 8);
    if (a == b) continue;
    for (uint32_t k = i; k < i + 8; k++) {
      if (base[k] != cur[k] && !record(k)) return diff;
    }
  }
  for (; i < delta_off; i++) {
    if (base[i] != cur[i] && !record(i)) return diff;
  }
  return diff;
}

Result<AppendPlan> EncodeDeltaRecords(uint8_t* cur, uint32_t page_size,
                                      const PageDiff& diff) {
  AreaView v = ViewOf(cur, page_size);
  if (!v.scheme.enabled()) {
    return Status::NotSupported("page has no delta area");
  }
  if (diff.overflow) {
    return Status::OutOfSpace("diff exceeds tracking caps");
  }
  if (diff.Empty()) {
    return AppendPlan{};  // nothing to write
  }
  if (diff.meta.size() > v.scheme.v) {
    return Status::OutOfSpace("metadata changes exceed V");
  }
  uint32_t existing = CountDeltaRecords(cur, page_size);
  uint32_t avail = v.scheme.n - existing;
  uint32_t body = static_cast<uint32_t>(diff.body.size());
  uint32_t needed = body == 0 ? 1 : (body + v.scheme.m - 1) / v.scheme.m;
  if (needed > avail) {
    return Status::OutOfSpace("delta-record slots exhausted");
  }

  uint32_t first = v.delta_off + existing * v.record_bytes;
  size_t body_idx = 0;
  for (uint32_t k = 0; k < needed; k++) {
    uint8_t* rec = cur + first + k * v.record_bytes;
    // The buffer's delta slots must still be erased; fill explicitly so the
    // encoded bytes are exactly what write_delta programs.
    std::memset(rec, 0xFF, v.record_bytes);
    rec[0] = kCtrlPresent;
    for (uint32_t p = 0; p < v.scheme.m && body_idx < diff.body.size(); p++) {
      PutPair(rec + 1 + 3 * p, diff.body[body_idx++]);
    }
    if (k == needed - 1) {
      for (size_t j = 0; j < diff.meta.size(); j++) {
        PutPair(rec + 1 + 3 * v.scheme.m + 3 * static_cast<uint32_t>(j),
                diff.meta[j]);
      }
    }
  }

  AppendPlan plan;
  plan.write_offset = first;
  plan.write_len = needed * v.record_bytes;
  plan.records = needed;
  return plan;
}

}  // namespace ipa::storage
