#include "storage/delta_codec.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "storage/page_format.h"

namespace ipa::storage {

const char* DeltaCodecName(DeltaCodec codec) {
  switch (codec) {
    case DeltaCodec::kRaw:
      return "raw";
    case DeltaCodec::kDelta:
      return "delta";
    case DeltaCodec::kDeltaCompress:
      return "delta+compress";
  }
  return "unknown";
}

bool ParseDeltaCodec(const char* name, DeltaCodec* out) {
  if (std::strcmp(name, "raw") == 0) {
    *out = DeltaCodec::kRaw;
  } else if (std::strcmp(name, "delta") == 0) {
    *out = DeltaCodec::kDelta;
  } else if (std::strcmp(name, "delta+compress") == 0 ||
             std::strcmp(name, "deltacompress") == 0 ||
             std::strcmp(name, "compress") == 0) {
    *out = DeltaCodec::kDeltaCompress;
  } else {
    return false;
  }
  return true;
}

void PutVarint(std::vector<uint8_t>& out, uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const uint8_t* data, uint32_t len, uint32_t* pos, uint32_t* v) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift < 35; shift += 7) {
    if (*pos >= len) return false;
    uint8_t byte = data[(*pos)++];
    result |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;  // > 5 bytes: malformed
}

uint16_t Crc16(const uint8_t* data, size_t len) {
  return static_cast<uint16_t>(Crc32c(data, len) & 0xFFFF);
}

namespace {
constexpr uint32_t kMinMatch = 3;
constexpr uint32_t kMaxMatch = 130;  // token - 0x80 + 3 with token <= 0xFF
constexpr uint32_t kMaxLiteralRun = 128;
constexpr uint32_t kWindow = 1024;  // page-sized inputs; linear-cost search
}  // namespace

std::vector<uint8_t> LzCompress(const uint8_t* data, size_t len) {
  std::vector<uint8_t> out;
  out.reserve(len / 2 + 8);
  std::vector<uint8_t> literals;
  literals.reserve(64);

  auto flush_literals = [&] {
    size_t i = 0;
    while (i < literals.size()) {
      uint32_t run = static_cast<uint32_t>(
          std::min<size_t>(literals.size() - i, kMaxLiteralRun));
      out.push_back(static_cast<uint8_t>(run - 1));
      out.insert(out.end(), literals.begin() + i, literals.begin() + i + run);
      i += run;
    }
    literals.clear();
  };

  size_t pos = 0;
  while (pos < len) {
    uint32_t best_len = 0;
    uint32_t best_dist = 0;
    size_t window_begin = pos > kWindow ? pos - kWindow : 0;
    for (size_t cand = window_begin; cand < pos; cand++) {
      uint32_t match = 0;
      uint32_t cap = static_cast<uint32_t>(
          std::min<size_t>(len - pos, kMaxMatch));
      while (match < cap && data[cand + match] == data[pos + match]) match++;
      if (match > best_len) {
        best_len = match;
        best_dist = static_cast<uint32_t>(pos - cand);
        if (match == cap) break;
      }
    }
    if (best_len >= kMinMatch) {
      flush_literals();
      out.push_back(static_cast<uint8_t>(0x80 + (best_len - kMinMatch)));
      PutVarint(out, best_dist);
      pos += best_len;
    } else {
      literals.push_back(data[pos++]);
    }
  }
  flush_literals();
  return out;
}

bool LzDecompress(const uint8_t* data, uint32_t len, uint32_t max_out,
                  std::vector<uint8_t>& out) {
  uint32_t pos = 0;
  while (pos < len) {
    uint8_t token = data[pos++];
    if (token < 0x80) {
      uint32_t run = static_cast<uint32_t>(token) + 1;
      if (pos + run > len) return false;
      if (out.size() + run > max_out) return false;
      out.insert(out.end(), data + pos, data + pos + run);
      pos += run;
    } else {
      uint32_t match = static_cast<uint32_t>(token - 0x80) + kMinMatch;
      uint32_t dist = 0;
      if (!GetVarint(data, len, &pos, &dist)) return false;
      if (dist == 0 || dist > out.size()) return false;
      if (out.size() + match > max_out) return false;
      // Byte-at-a-time copy: overlapping matches (dist < match) replicate
      // the most recent bytes, RLE-style.
      size_t src = out.size() - dist;
      for (uint32_t i = 0; i < match; i++) out.push_back(out[src + i]);
    }
  }
  return true;
}

}  // namespace ipa::storage
