// On-page format: NSM slotted page extended with a delta-record area
// (paper Section 6.1, Figure 4).
//
// Layout of a page of size P with an [NxM] scheme whose delta area occupies
// D = N * (1 + 3M + 3V) bytes:
//
//   +-----------+---------------------+---------+-------------+------------+
//   | header 40 | tuple data  ------> |  free   | <- slot arr | delta area |
//   +-----------+---------------------+---------+-------------+------------+
//   0          40                 free_begin  free_end    delta_off        P
//
// The slot array grows downwards from delta_off. Page metadata in the
// paper's sense (header + footer/slot table) is [0,40) plus
// [free_end, delta_off). ECC_initial covers [0, delta_off); the delta area
// is written erased (0xFF) on every out-of-place write so that delta-records
// can later be ISPP-appended to the same physical flash page.
//
// Note: the paper draws the footer at the physical end of the page with the
// delta area inside the free space; we place the delta area last so that the
// ECC_initial region is contiguous. The two layouts are isomorphic.

#pragma once

#include <cstdint>

namespace ipa::storage {

/// Fixed page-header size in bytes.
constexpr uint32_t kPageHeaderSize = 40;
/// Bytes per slot-array entry (u16 offset + u16 length).
constexpr uint32_t kSlotEntrySize = 4;
/// Slot length marker for deleted tuples.
constexpr uint16_t kDeadSlotLen = 0xFFFF;

// Header field offsets. PageLSN sits at offset 0 and is little-endian, so
// its most frequently changing least-significant byte is page offset 0 —
// the property the paper's byte-granularity metadata tracking exploits.
constexpr uint32_t kOffPageLsn = 0;     // u64
constexpr uint32_t kOffPageId = 8;      // u64
constexpr uint32_t kOffSlotCount = 16;  // u16
constexpr uint32_t kOffFreeBegin = 18;  // u16
constexpr uint32_t kOffFreeEnd = 20;    // u16
constexpr uint32_t kOffDeltaOff = 22;   // u16
constexpr uint32_t kOffN = 24;          // u8
constexpr uint32_t kOffM = 25;          // u8
constexpr uint32_t kOffV = 26;          // u8
constexpr uint32_t kOffFlags = 27;      // u8
constexpr uint32_t kOffTableId = 28;    // u32
constexpr uint32_t kOffCodec = 32;      // u8 (DeltaCodec; 0 on legacy pages)
// [33,40) reserved.

/// How delta records in a page's delta area are packed. Negotiated per page:
/// the codec byte lives in the page header (kOffCodec), is written at
/// Initialize() time and travels with every page image, so mixed-codec delta
/// areas mount, scrub and replay correctly. Legacy pages carry 0 there
/// (header bytes [32,40) were zeroed), which decodes as kRaw — the seed
/// format — keeping old images readable.
enum class DeltaCodec : uint8_t {
  kRaw = 0,            ///< Fixed [NxM] slots: ctrl + 3 bytes per pair.
  kDelta = 1,          ///< Variable records: varint offset-gaps + values.
  kDeltaCompress = 2,  ///< kDelta payload behind a deterministic LZ pass.
};

/// Human-readable codec name (used by benches, tools and docs).
const char* DeltaCodecName(DeltaCodec codec);

/// Parse a codec name ("raw", "delta", "delta+compress"); false on unknown.
bool ParseDeltaCodec(const char* name, DeltaCodec* out);

/// The [NxM] scheme (Section 6): at most `n` delta-records per page, each
/// covering at most `m` changed body bytes and `v` changed metadata bytes.
/// n == 0 disables IPA for the page.
struct Scheme {
  uint8_t n = 0;
  uint8_t m = 0;
  uint8_t v = 12;
  /// Delta-area packing (DeltaCodec). The area *reservation* below is
  /// codec-independent — AreaBytes() stays N * (1 + 3M + 3V) — so a codec
  /// change never moves delta_off; byte codecs simply pack more appends into
  /// the same reserved bytes.
  uint8_t codec = 0;

  DeltaCodec delta_codec() const { return static_cast<DeltaCodec>(codec); }

  /// Size of one delta-record: control byte + 3 bytes per (value,offset)
  /// pair for body and metadata parts (Section 6.1: 1 + 3M + 3V).
  uint32_t RecordBytes() const { return 1 + 3u * m + 3u * v; }
  /// Total reserved delta-record area: N * (1 + 3M + 3V).
  uint32_t AreaBytes() const { return n * RecordBytes(); }
  bool enabled() const { return n > 0 && m > 0; }

  /// Space overhead as a fraction of the page.
  double SpaceOverhead(uint32_t page_size) const {
    return static_cast<double>(AreaBytes()) / static_cast<double>(page_size);
  }
};

}  // namespace ipa::storage
