// Delta-record encoding, application and page diffing (Sections 6.1, 6.2),
// extended with per-page delta codecs (docs/DELTA_COMPRESSION.md).
//
// Under DeltaCodec::kRaw (the paper's format) a delta-record is:
//
//   [ctrl 1B] [body pairs: M x (value 1B, offset 2B)] [meta pairs: V x ...]
//
// appended into the page's delta-record area. A pair with offset 0xFFFF is
// unused (its three bytes stay erased, 0xFF, so the record can be programmed
// with ISPP). The ctrl byte flags the record as present. Applying a record
// replays `page[offset] = value` for every used pair; records are applied in
// append (forward) order, so the last write of an offset wins — exactly the
// REDO semantics of the paper.
//
// Under the byte codecs (kDelta, kDeltaCompress) records are variable-length
// and packed back to back in the same reserved area:
//
//   [ctrl 1B = kCtrlPresent] [len u16 LE] [crc16 u16 LE] [payload `len` B]
//
// kDelta's payload is a sequence of (varint offset-gap, absolute value byte)
// pairs in strictly ascending offset order (gap = offset - prev - 1, first
// gap = offset); absolute values keep application idempotent. kDeltaCompress
// prefixes one method byte (0 = stored, 1 = LZ) and runs the kDelta payload
// through the deterministic LZ pass of delta_codec.h, falling back to stored
// when compression does not help. The crc16 is Crc16() of the payload; a
// record whose ctrl byte, header, checksum or payload structure is off is
// torn and quarantines the rest of the area — torn compressed records must
// never decode as garbage. The codec is read from the page header
// (kOffCodec), so areas of different codecs mount, scrub and replay side by
// side.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/page_format.h"

namespace ipa::storage {

/// Control-byte value marking a present delta-record (any value != 0xFF
/// works under ISPP; this one keeps half the bits erased).
constexpr uint8_t kCtrlPresent = 0x5A;

/// Byte-codec record header: ctrl + len u16 + crc16.
constexpr uint32_t kByteRecordHeader = 5;

/// One changed byte at an absolute page offset.
struct ByteChange {
  uint16_t offset;
  uint8_t value;
};

/// Outcome of diffing the buffered page against its base (flash) image.
struct PageDiff {
  std::vector<ByteChange> body;  ///< Changes to tuple data.
  std::vector<ByteChange> meta;  ///< Changes to header + slot array.
  bool overflow = false;         ///< Hit the caps; lists are truncated.

  bool Empty() const { return body.empty() && meta.empty() && !overflow; }
  uint32_t TotalBytes() const {
    return static_cast<uint32_t>(body.size() + meta.size());
  }
};

/// Placement of freshly encoded records, i.e. the write_delta payload.
struct AppendPlan {
  uint32_t write_offset = 0;  ///< Page offset of the first new record.
  uint32_t write_len = 0;     ///< Bytes to append (k * RecordBytes()).
  uint32_t records = 0;       ///< Number of new records (k).
};

/// Strict structural check of one delta record: the ctrl byte must equal
/// kCtrlPresent and every (value, offset) pair must be either fully erased
/// (all three bytes 0xFF) or carry an offset inside the page body
/// (< delta_off). This is what EncodeDeltaRecords produces; anything else is
/// a torn append. Unlike the acceptance check on the read path, this
/// predicate ignores fault-injection overrides — the differential checker's
/// AuditDeltaArea oracle is built on it.
bool RecordWellFormed(const uint8_t* rec, uint32_t delta_off, Scheme scheme);

/// Audit the delta area of a raw page image (checker oracle): present
/// records must form a contiguous prefix of well-formed records — [NxM]
/// slots or byte-codec records, per the page's codec byte — and every byte
/// after the last present record must still read as erased (0xFF). Returns
/// Corruption describing the first violation. Does not touch the torn
/// counters (it is the oracle, not the read path).
Status AuditDeltaArea(const uint8_t* page, uint32_t page_size);

/// Number of delta-records currently present on the page (scans ctrl bytes;
/// records are contiguous from the start of the delta area). This is the
/// paper's N_E. Codec-aware: counts raw slots or byte-codec records per the
/// page's codec byte.
uint32_t CountDeltaRecords(const uint8_t* page, uint32_t page_size);

/// Apply all present delta-records to the page in forward order. Returns the
/// number of records applied. Idempotent (byte-codec payloads carry absolute
/// values, not XOR diffs, for exactly this reason).
uint32_t ApplyDeltaRecords(uint8_t* page, uint32_t page_size);

/// Remaining append budget for the page, in *changed bytes the next appends
/// could still cover*. Raw codec: the paper's C_p = (N - N_E) * M body-byte
/// budget. Byte codecs: an optimistic cap derived from the remaining area
/// bytes ((rem - header) / 2 for kDelta, rem - header - 1 for
/// kDeltaCompress); EncodeDeltaRecords does the exact fit check.
uint32_t DeltaBudgetRemaining(const uint8_t* page, uint32_t page_size);

/// Byte-diff `cur` against `base` over [0, delta_off), classifying offsets
/// into body vs metadata using `cur`'s header. Collection stops (and
/// `overflow` is set) once body exceeds `body_cap` or meta exceeds
/// `meta_cap` changes — enough to know the [NxM] budget is blown without
/// materializing a page-sized diff.
PageDiff DiffPages(const uint8_t* base, const uint8_t* cur, uint32_t page_size,
                   uint32_t body_cap, uint32_t meta_cap);

/// Encode `diff` as new delta-records in `cur`'s delta area (mutates the
/// buffer). Raw codec: body pairs are distributed across ceil(|body|/M)
/// records and all metadata pairs go into the last record. Byte codecs: body
/// and meta changes merge into one variable-length record appended after the
/// existing ones. Fails with OutOfSpace when the diff does not fit the
/// remaining budget; the caller then writes the page out-of-place.
Result<AppendPlan> EncodeDeltaRecords(uint8_t* cur, uint32_t page_size,
                                      const PageDiff& diff);

}  // namespace ipa::storage
