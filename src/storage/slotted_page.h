// SlottedPage: a non-owning view over a page buffer implementing the NSM
// slotted-page format of page_format.h. All tuple and header mutations go
// through this class so the change footprint on the page stays exactly what
// the paper's byte-diff analysis assumes.

#pragma once

#include <cstdint>
#include <span>

#include "common/status.h"
#include "storage/page_format.h"

namespace ipa::storage {

using SlotId = uint16_t;

class SlottedPage {
 public:
  /// Wrap an existing buffer (does not take ownership, no validation).
  SlottedPage(uint8_t* data, uint32_t page_size)
      : data_(data), page_size_(page_size) {}

  /// Format a fresh page: header initialized, body zeroed, delta area erased
  /// (0xFF) so it can be ISPP-appended on flash.
  void Initialize(uint64_t page_id, uint32_t table_id, const Scheme& scheme);

  // -- Header accessors -------------------------------------------------------
  uint64_t page_lsn() const;
  void set_page_lsn(uint64_t lsn);
  uint64_t page_id() const;
  uint32_t table_id() const;
  uint16_t slot_count() const;
  uint16_t free_begin() const;
  uint16_t free_end() const;
  uint16_t delta_off() const;
  Scheme scheme() const;

  /// Contiguous free bytes available for a new tuple of `len` bytes
  /// (accounts for the slot entry).
  uint32_t FreeSpace() const;
  bool HasRoomFor(uint32_t tuple_len) const;

  // -- Tuple operations -------------------------------------------------------

  /// Insert a tuple; returns its slot id.
  Result<SlotId> Insert(std::span<const uint8_t> tuple);

  /// Read-only view of a live tuple.
  Result<std::span<const uint8_t>> Read(SlotId slot) const;

  /// Overwrite `len` bytes at `offset` within the tuple (fixed-length
  /// in-place update — the IPA-friendly case).
  Status UpdateInPlace(SlotId slot, uint32_t offset, std::span<const uint8_t> bytes);

  /// Replace the whole tuple, possibly changing its length (relocates within
  /// the page; may fail with OutOfSpace — callers may Compact and retry).
  Status UpdateResize(SlotId slot, std::span<const uint8_t> tuple);

  /// Mark-delete a tuple (slot survives; space reclaimed by Compact()).
  Status Delete(SlotId slot);

  /// Restore a dead slot with `tuple` (undo of a delete). Allocates fresh
  /// space in the page body (compacting if needed).
  Status Revive(SlotId slot, std::span<const uint8_t> tuple);

  bool IsLive(SlotId slot) const;

  /// Reclaim dead-tuple space by sliding live tuples together. Rewrites most
  /// of the body — callers should expect the next flush to go out-of-place.
  void Compact();

  // -- Delta area helpers -----------------------------------------------------

  /// Reset the delta-record area to erased (0xFF). Must precede every
  /// out-of-place write so the new physical page can absorb future appends.
  void ResetDeltaArea();

  /// Classify a page offset as metadata (header or slot array) per the
  /// paper's byte-level metadata tracking.
  bool IsMetadataOffset(uint32_t offset) const;

  uint8_t* raw() { return data_; }
  const uint8_t* raw() const { return data_; }
  uint32_t page_size() const { return page_size_; }

 private:
  uint32_t SlotEntryPos(SlotId slot) const;
  uint16_t SlotOffset(SlotId slot) const;
  uint16_t SlotLen(SlotId slot) const;
  void SetSlot(SlotId slot, uint16_t offset, uint16_t len);

  uint8_t* data_;
  uint32_t page_size_;
};

}  // namespace ipa::storage
