#include "storage/slotted_page.h"

#include <cstring>
#include <vector>

#include "common/bytes.h"

namespace ipa::storage {

void SlottedPage::Initialize(uint64_t page_id, uint32_t table_id,
                             const Scheme& scheme) {
  uint32_t delta = scheme.enabled() ? scheme.AreaBytes() : 0;
  uint32_t delta_off = page_size_ - delta;
  std::memset(data_, 0, delta_off);
  std::memset(data_ + delta_off, 0xFF, delta);
  EncodeU64(data_ + kOffPageLsn, 0);
  EncodeU64(data_ + kOffPageId, page_id);
  EncodeU16(data_ + kOffSlotCount, 0);
  EncodeU16(data_ + kOffFreeBegin, static_cast<uint16_t>(kPageHeaderSize));
  EncodeU16(data_ + kOffFreeEnd, static_cast<uint16_t>(delta_off));
  EncodeU16(data_ + kOffDeltaOff, static_cast<uint16_t>(delta_off));
  data_[kOffN] = scheme.n;
  data_[kOffM] = scheme.m;
  data_[kOffV] = scheme.v;
  data_[kOffFlags] = 0;
  EncodeU32(data_ + kOffTableId, table_id);
  data_[kOffCodec] = scheme.codec;
}

uint64_t SlottedPage::page_lsn() const { return DecodeU64(data_ + kOffPageLsn); }
void SlottedPage::set_page_lsn(uint64_t lsn) { EncodeU64(data_ + kOffPageLsn, lsn); }
uint64_t SlottedPage::page_id() const { return DecodeU64(data_ + kOffPageId); }
uint32_t SlottedPage::table_id() const { return DecodeU32(data_ + kOffTableId); }
uint16_t SlottedPage::slot_count() const { return DecodeU16(data_ + kOffSlotCount); }
uint16_t SlottedPage::free_begin() const { return DecodeU16(data_ + kOffFreeBegin); }
uint16_t SlottedPage::free_end() const { return DecodeU16(data_ + kOffFreeEnd); }
uint16_t SlottedPage::delta_off() const { return DecodeU16(data_ + kOffDeltaOff); }

Scheme SlottedPage::scheme() const {
  Scheme s;
  s.n = data_[kOffN];
  s.m = data_[kOffM];
  s.v = data_[kOffV];
  // Legacy pages carry 0 here (the header's reserved bytes were zeroed),
  // which is DeltaCodec::kRaw; out-of-range values degrade to raw too so a
  // corrupt codec byte can't select an undefined decode path.
  s.codec = data_[kOffCodec] <= 2 ? data_[kOffCodec] : 0;
  return s;
}

uint32_t SlottedPage::FreeSpace() const {
  uint16_t begin = free_begin();
  uint16_t end = free_end();
  return end > begin ? end - begin : 0;
}

bool SlottedPage::HasRoomFor(uint32_t tuple_len) const {
  return FreeSpace() >= tuple_len + kSlotEntrySize;
}

uint32_t SlottedPage::SlotEntryPos(SlotId slot) const {
  return delta_off() - kSlotEntrySize * (static_cast<uint32_t>(slot) + 1);
}

uint16_t SlottedPage::SlotOffset(SlotId slot) const {
  return DecodeU16(data_ + SlotEntryPos(slot));
}

uint16_t SlottedPage::SlotLen(SlotId slot) const {
  return DecodeU16(data_ + SlotEntryPos(slot) + 2);
}

void SlottedPage::SetSlot(SlotId slot, uint16_t offset, uint16_t len) {
  EncodeU16(data_ + SlotEntryPos(slot), offset);
  EncodeU16(data_ + SlotEntryPos(slot) + 2, len);
}

Result<SlotId> SlottedPage::Insert(std::span<const uint8_t> tuple) {
  if (tuple.size() >= kDeadSlotLen) {
    return Status::InvalidArgument("tuple too large");
  }
  if (!HasRoomFor(static_cast<uint32_t>(tuple.size()))) {
    return Status::OutOfSpace("page full");
  }
  uint16_t begin = free_begin();
  SlotId slot = slot_count();
  std::memcpy(data_ + begin, tuple.data(), tuple.size());
  EncodeU16(data_ + kOffSlotCount, static_cast<uint16_t>(slot + 1));
  EncodeU16(data_ + kOffFreeEnd, static_cast<uint16_t>(free_end() - kSlotEntrySize));
  SetSlot(slot, begin, static_cast<uint16_t>(tuple.size()));
  EncodeU16(data_ + kOffFreeBegin, static_cast<uint16_t>(begin + tuple.size()));
  return slot;
}

Result<std::span<const uint8_t>> SlottedPage::Read(SlotId slot) const {
  if (slot >= slot_count()) return Status::NotFound("no such slot");
  uint16_t len = SlotLen(slot);
  if (len == kDeadSlotLen) return Status::NotFound("tuple deleted");
  return std::span<const uint8_t>(data_ + SlotOffset(slot), len);
}

Status SlottedPage::UpdateInPlace(SlotId slot, uint32_t offset,
                                  std::span<const uint8_t> bytes) {
  if (slot >= slot_count()) return Status::NotFound("no such slot");
  uint16_t len = SlotLen(slot);
  if (len == kDeadSlotLen) return Status::NotFound("tuple deleted");
  if (offset + bytes.size() > len) {
    return Status::InvalidArgument("update exceeds tuple bounds");
  }
  std::memcpy(data_ + SlotOffset(slot) + offset, bytes.data(), bytes.size());
  return Status::OK();
}

Status SlottedPage::UpdateResize(SlotId slot, std::span<const uint8_t> tuple) {
  if (slot >= slot_count()) return Status::NotFound("no such slot");
  uint16_t old_len = SlotLen(slot);
  if (old_len == kDeadSlotLen) return Status::NotFound("tuple deleted");
  if (tuple.size() == old_len) {
    std::memcpy(data_ + SlotOffset(slot), tuple.data(), tuple.size());
    return Status::OK();
  }
  if (tuple.size() < old_len) {
    // Shrink in place: rewrite prefix, adjust slot length (old tail dead).
    std::memcpy(data_ + SlotOffset(slot), tuple.data(), tuple.size());
    SetSlot(slot, SlotOffset(slot), static_cast<uint16_t>(tuple.size()));
    return Status::OK();
  }
  if (FreeSpace() < tuple.size()) {
    // Reclaim dead space — including this tuple's own old bytes — before
    // giving up.
    std::vector<uint8_t> old(data_ + SlotOffset(slot),
                             data_ + SlotOffset(slot) + old_len);
    SetSlot(slot, SlotOffset(slot), kDeadSlotLen);
    Compact();
    if (FreeSpace() < tuple.size()) {
      // Restore the original tuple (space for it is guaranteed: compaction
      // freed at least its own bytes).
      Status s = Revive(slot, old);
      assert(s.ok());
      (void)s;
      return Status::OutOfSpace("no room to grow tuple");
    }
    return Revive(slot, tuple);
  }
  uint16_t begin = free_begin();
  std::memcpy(data_ + begin, tuple.data(), tuple.size());
  SetSlot(slot, begin, static_cast<uint16_t>(tuple.size()));
  EncodeU16(data_ + kOffFreeBegin, static_cast<uint16_t>(begin + tuple.size()));
  return Status::OK();
}

Status SlottedPage::Delete(SlotId slot) {
  if (slot >= slot_count()) return Status::NotFound("no such slot");
  if (SlotLen(slot) == kDeadSlotLen) return Status::NotFound("already deleted");
  SetSlot(slot, SlotOffset(slot), kDeadSlotLen);
  return Status::OK();
}

Status SlottedPage::Revive(SlotId slot, std::span<const uint8_t> tuple) {
  if (slot >= slot_count()) return Status::NotFound("no such slot");
  if (SlotLen(slot) != kDeadSlotLen) {
    return Status::InvalidArgument("slot is live");
  }
  if (FreeSpace() < tuple.size()) {
    Compact();
    if (FreeSpace() < tuple.size()) {
      return Status::OutOfSpace("no room to revive tuple");
    }
  }
  uint16_t begin = free_begin();
  std::memcpy(data_ + begin, tuple.data(), tuple.size());
  SetSlot(slot, begin, static_cast<uint16_t>(tuple.size()));
  EncodeU16(data_ + kOffFreeBegin, static_cast<uint16_t>(begin + tuple.size()));
  return Status::OK();
}

bool SlottedPage::IsLive(SlotId slot) const {
  return slot < slot_count() && SlotLen(slot) != kDeadSlotLen;
}

void SlottedPage::Compact() {
  uint16_t n = slot_count();
  std::vector<std::pair<SlotId, std::vector<uint8_t>>> live;
  live.reserve(n);
  for (SlotId s = 0; s < n; s++) {
    if (!IsLive(s)) continue;
    const uint8_t* p = data_ + SlotOffset(s);
    live.emplace_back(s, std::vector<uint8_t>(p, p + SlotLen(s)));
  }
  uint16_t cursor = kPageHeaderSize;
  for (auto& [slot, bytes] : live) {
    std::memcpy(data_ + cursor, bytes.data(), bytes.size());
    SetSlot(slot, cursor, static_cast<uint16_t>(bytes.size()));
    cursor = static_cast<uint16_t>(cursor + bytes.size());
  }
  EncodeU16(data_ + kOffFreeBegin, cursor);
}

void SlottedPage::ResetDeltaArea() {
  uint16_t off = delta_off();
  std::memset(data_ + off, 0xFF, page_size_ - off);
}

bool SlottedPage::IsMetadataOffset(uint32_t offset) const {
  if (offset < kPageHeaderSize) return true;
  return offset >= free_end() && offset < delta_off();
}

}  // namespace ipa::storage
