// The IPA write-path decision (Section 6.2, "The page is evicted and flushed
// to stable storage").
//
// When the buffer manager evicts a dirty page it consults PlanEviction with
// the page's *base image* (its content as it exists on flash, deltas applied)
// and the *current image*. The function byte-diffs the two, and either:
//
//   * kClean           — images identical, nothing to write;
//   * kInPlaceAppend   — the diff fits the remaining [NxM] budget: new
//                        delta-records are encoded into the current image's
//                        delta area and the returned AppendPlan describes the
//                        exact write_delta payload;
//   * kOutOfPlace      — budget exceeded (or no flash copy yet): the delta
//                        area of the current image is reset to erased so the
//                        fresh physical page can absorb future appends.

#pragma once

#include <cstdint>

#include "storage/delta_record.h"

namespace ipa::core {

enum class WritePath { kClean, kInPlaceAppend, kOutOfPlace };

const char* WritePathName(WritePath p);

struct EvictionDecision {
  WritePath path = WritePath::kClean;
  storage::AppendPlan plan;  ///< Valid when path == kInPlaceAppend.
  /// Diagnostics for update-size accounting: counts are exact only when
  /// PlanEviction ran with exact_diff (otherwise capped at the budget).
  uint32_t body_bytes_changed = 0;
  uint32_t meta_bytes_changed = 0;
};

/// Decide and prepare the flush of a dirty page.
///
/// `flash_copy_exists`       — false for newly allocated pages (IPA is never
///                             applicable to them).
/// `device_appends_allowed`  — whether the backing physical page can take one
///                             more write_delta (program budget, LSB/MSB,
///                             region mode); from NoFtl::DeltaWritePossible.
/// `exact_diff`              — compute the full diff even when it overflows
///                             the budget (needed when recording update-size
///                             distributions; slightly slower).
///
/// On kInPlaceAppend `cur`'s delta area gains the encoded records; on
/// kOutOfPlace `cur`'s delta area is reset to erased (0xFF).
EvictionDecision PlanEviction(const uint8_t* base, uint8_t* cur,
                              uint32_t page_size, bool flash_copy_exists,
                              bool device_appends_allowed,
                              bool exact_diff = false);

}  // namespace ipa::core
