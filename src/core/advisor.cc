#include "core/advisor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ipa::core {

const char* AdvisorGoalName(AdvisorGoal g) {
  switch (g) {
    case AdvisorGoal::kPerformance: return "performance";
    case AdvisorGoal::kLongevity: return "longevity";
    case AdvisorGoal::kSpace: return "space";
  }
  return "?";
}

double EstimateIpaFraction(double p, uint32_t n) {
  double appends = 0.0;
  double pj = 1.0;
  for (uint32_t j = 0; j < n; j++) {
    pj *= p;
    appends += pj;
  }
  return appends / (appends + 1.0);
}

double EstimateEffectiveAppends(const storage::Scheme& scheme,
                                storage::DeltaCodec codec,
                                double typical_change_bytes) {
  double n = scheme.n;
  if (codec == storage::DeltaCodec::kRaw || !scheme.enabled()) return n;
  double per_change =
      codec == storage::DeltaCodec::kDeltaCompress ? 1.4 : 2.0;
  double record = 5.0 + per_change * std::max(typical_change_bytes, 1.0);
  double fits = static_cast<double>(scheme.AreaBytes()) / record;
  return std::max(fits, n);
}

Advice Recommend(const ObjectProfile& profile, flash::CellType cell,
                 uint32_t page_size, AdvisorGoal goal,
                 storage::DeltaCodec codec) {
  Advice advice;
  const SampleDistribution& net = profile.net_update_sizes;
  const SampleDistribution& meta = profile.meta_update_sizes;

  if (net.total() == 0) {
    advice.rationale = "no update samples for '" + profile.name +
                       "': leaving IPA disabled";
    return advice;
  }

  // V: cover the vast majority of metadata footprints; the paper observes
  // V <= 12 for Shore-MT under OLTP.
  uint32_t v = meta.total() ? meta.ValueAtPercentile(95.0) : 12;
  v = std::clamp<uint32_t>(v, 4, 30);

  // M candidates from the update-size distribution.
  double target_pct;
  switch (goal) {
    case AdvisorGoal::kSpace: target_pct = 50.0; break;
    case AdvisorGoal::kPerformance: target_pct = 75.0; break;
    case AdvisorGoal::kLongevity: target_pct = 90.0; break;
    default: target_pct = 75.0; break;
  }
  uint32_t m = net.ValueAtPercentile(target_pct);
  m = std::clamp<uint32_t>(m, 1, 125);  // Section 6.1: realistically M <= 125

  // N: flash technology bounds the reprogram count (Section 8.4 (i)); the
  // goal then picks within the bound.
  uint32_t n_max = (cell == flash::CellType::kSlc) ? 4 : 3;
  uint32_t n;
  switch (goal) {
    case AdvisorGoal::kSpace: n = 1; break;
    case AdvisorGoal::kPerformance: n = std::min(2u, n_max); break;
    case AdvisorGoal::kLongevity: n = n_max; break;
    default: n = 2; break;
  }

  // Cap the delta area at ~15% of the page (the worst case the paper
  // tolerates across all experiments is 14%).
  storage::Scheme s;
  s.v = static_cast<uint8_t>(v);
  while (n >= 1) {
    s.n = static_cast<uint8_t>(n);
    s.m = static_cast<uint8_t>(m);
    if (s.SpaceOverhead(page_size) <= 0.15) break;
    if (n > 1) {
      n--;
    } else if (m > 8) {
      m = m / 2;
    } else {
      break;
    }
  }

  double p_fit = net.CdfAt(s.m);
  s.codec = static_cast<uint8_t>(codec);
  // Byte codecs pack more appends into the same reserved area; fold the
  // effective append count (floored, conservatively) into the renewal model
  // in place of the raw slot count N.
  double typical = net.ValueAtPercentile(50.0);
  uint32_t eff_n = static_cast<uint32_t>(
      EstimateEffectiveAppends(s, codec, typical));
  advice.scheme = s;
  advice.expected_ipa_fraction = EstimateIpaFraction(p_fit, eff_n);
  advice.space_overhead = s.SpaceOverhead(page_size);

  std::ostringstream os;
  os << "object '" << profile.name << "': p" << static_cast<int>(target_pct)
     << " net update size = " << net.ValueAtPercentile(target_pct)
     << "B -> M=" << static_cast<int>(s.m) << "; "
     << flash::CellTypeName(cell) << " flash bounds N<=" << n_max << " -> N="
     << static_cast<int>(s.n) << "; V=" << static_cast<int>(s.v)
     << " covers p95 of metadata changes; codec "
     << storage::DeltaCodecName(codec) << " sustains ~" << eff_n
     << " appends per area; expected IPA share "
     << static_cast<int>(100 * advice.expected_ipa_fraction) << "% at "
     << static_cast<int>(1000 * advice.space_overhead) / 10.0
     << "% space overhead";
  advice.rationale = os.str();
  return advice;
}

}  // namespace ipa::core
