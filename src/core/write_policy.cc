#include "core/write_policy.h"

#include <cstring>

#include "storage/slotted_page.h"

namespace ipa::core {

const char* WritePathName(WritePath p) {
  switch (p) {
    case WritePath::kClean: return "clean";
    case WritePath::kInPlaceAppend: return "in-place-append";
    case WritePath::kOutOfPlace: return "out-of-place";
  }
  return "?";
}

EvictionDecision PlanEviction(const uint8_t* base, uint8_t* cur,
                              uint32_t page_size, bool flash_copy_exists,
                              bool device_appends_allowed, bool exact_diff) {
  // Fast path: a byte-identical page needs no SlottedPage view and no diff.
  // Frames are often redundantly marked dirty (e.g. aborted updates, eager
  // cleaner passes); memcmp bails on the first differing word otherwise.
  if (std::memcmp(base, cur, page_size) == 0) {
    EvictionDecision clean;
    clean.path = WritePath::kClean;
    return clean;
  }

  storage::SlottedPage view(cur, page_size);
  storage::Scheme scheme = view.scheme();

  uint32_t body_cap, meta_cap;
  if (exact_diff) {
    body_cap = meta_cap = page_size;
  } else if (scheme.enabled() && flash_copy_exists && device_appends_allowed) {
    body_cap = storage::DeltaBudgetRemaining(cur, page_size) + 1;
    // Raw codec: metadata pairs have their own V slots. Byte codecs pack
    // body and meta changes into one shared budget, so meta gets the same
    // cap (EncodeDeltaRecords does the exact combined fit check).
    meta_cap = scheme.delta_codec() == storage::DeltaCodec::kRaw
                   ? scheme.v + 1u
                   : body_cap;
  } else {
    // The decision is forced to out-of-place; a one-byte diff proves "dirty".
    body_cap = meta_cap = 1;
  }

  storage::PageDiff diff = storage::DiffPages(base, cur, page_size, body_cap,
                                              meta_cap);
  EvictionDecision d;
  d.body_bytes_changed = static_cast<uint32_t>(diff.body.size());
  d.meta_bytes_changed = static_cast<uint32_t>(diff.meta.size());

  if (diff.Empty()) {
    d.path = WritePath::kClean;
    return d;
  }
  if (scheme.enabled() && flash_copy_exists && device_appends_allowed) {
    auto plan = storage::EncodeDeltaRecords(cur, page_size, diff);
    if (plan.ok() && plan.value().write_len > 0) {
      d.path = WritePath::kInPlaceAppend;
      d.plan = plan.value();
      return d;
    }
  }
  d.path = WritePath::kOutOfPlace;
  view.ResetDeltaArea();
  return d;
}

}  // namespace ipa::core
