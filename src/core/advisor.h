// The IPA advisor (Section 8.4): recommends an [NxM] scheme (and V) per
// database object from a profile of its observed update sizes, weighted by
// the DBA's optimization goal.
//
// The paper's advisor profiles the DB log at run time; ours consumes the
// same information in the form of per-object update-size distributions that
// the engine's trace recorder collects (the distributions behind Table 1 /
// Figures 7-10).

#pragma once

#include <string>

#include "common/stats.h"
#include "flash/geometry.h"
#include "storage/page_format.h"

namespace ipa::core {

/// What the DBA wants to optimize (Section 8.4).
enum class AdvisorGoal {
  kPerformance,  ///< Maximize transactional throughput (moderate N, M at ~p75).
  kLongevity,    ///< Minimize erases: larger [NxM] within flash limits.
  kSpace,        ///< Minimize delta-area overhead: small N, M at ~p50.
};

const char* AdvisorGoalName(AdvisorGoal g);

/// Observed write behaviour of one DB object (table or index).
struct ObjectProfile {
  std::string name;
  /// Net changed bytes (tuple data) per page flush.
  SampleDistribution net_update_sizes;
  /// Changed metadata bytes (header + slot array) per page flush.
  SampleDistribution meta_update_sizes;
};

/// Advisor output.
struct Advice {
  storage::Scheme scheme;
  /// Estimated fraction of update I/Os this scheme turns into in-place
  /// appends (renewal-model estimate, see Recommend()).
  double expected_ipa_fraction = 0.0;
  /// Delta-area overhead as a fraction of the page.
  double space_overhead = 0.0;
  std::string rationale;
};

/// Estimate the long-run fraction of page flushes served as in-place appends
/// for hit-probability `p` (diff fits one record) and `n` record slots:
/// after each out-of-place write, the j-th subsequent flush appends with
/// probability p^j (all previous must have fit too), so a cycle contains
/// A = sum_{j=1..n} p^j appends and one out-of-place write.
double EstimateIpaFraction(double p, uint32_t n);

/// Estimated number of appends the reserved area sustains under `codec`
/// before a write-back, for a scheme sized at [NxM(xV)] and an object whose
/// typical flush changes `typical_change_bytes` bytes. Raw: exactly N. Byte
/// codecs: area bytes / expected record size (5-byte header + ~2 bytes per
/// changed byte for kDelta, ~1.4 for kDeltaCompress), at least N — packing
/// never does worse than the fixed slots it replaces.
double EstimateEffectiveAppends(const storage::Scheme& scheme,
                                storage::DeltaCodec codec,
                                double typical_change_bytes);

/// Recommend a scheme for one object. `cell` bounds N (MLC tolerates fewer
/// reprograms than SLC); `page_size` bounds the delta-area share. `codec`
/// scales the expected-appends accounting: byte codecs fit more appends in
/// the same reserved area, raising the expected IPA share at an unchanged
/// space overhead. The recommended scheme carries the codec.
Advice Recommend(const ObjectProfile& profile, flash::CellType cell,
                 uint32_t page_size, AdvisorGoal goal,
                 storage::DeltaCodec codec = storage::DeltaCodec::kRaw);

}  // namespace ipa::core
