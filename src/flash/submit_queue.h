// Per-worker flash submission lanes (docs/SHARDING.md).
//
// A FlashLane is one worker's private view of the device: commands issued
// through a lane reserve chip/channel time against lane-local shadow state
// and a lane-local clock, and are queued as reservations instead of touching
// the shared timing arrays. FlashArray::DrainLanes() later merges all queued
// reservations in (issue tick, lane id, sequence) order and replays them
// against the shared chip/channel busy state — so the merged schedule is
// independent of the chronological order in which worker threads happened to
// call into the device, and service-time reservations from different workers
// overlap on the simulated clock.
//
// Thread-safety contract: each lane is owned by exactly one submitter at a
// time, lanes are bound to disjoint chip sets, error injection rates are
// zero, and no PowerLossPolicy is armed while more than one thread submits.
// DrainLanes() and lane creation/binding must run with submitters quiesced.

#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_clock.h"
#include "flash/flash_array.h"

namespace ipa::flash {

/// One worker's batched submission queue. Created and owned by a FlashArray
/// (FlashArray::CreateLane); workers advance the lane clock for CPU time and
/// read per-lane DeviceStats, the device fills in everything else.
class FlashLane {
 public:
  uint32_t id() const { return id_; }

  /// Lane-local simulated clock: the worker's notion of "now". Sync commands
  /// advance it to their (provisional) completion; DrainLanes() re-syncs it
  /// to the merged epoch time.
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }

  /// Operation counters for commands submitted through this lane. Not merged
  /// into FlashArray::stats(); see FlashArray::AggregateStats().
  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats{}; }

  /// Reservations queued since the last DrainLanes().
  size_t pending_ops() const { return pending_.size(); }

 private:
  friend class FlashArray;

  /// One queued command: everything DrainLanes() needs to replay its timing
  /// against the shared busy state.
  struct Reservation {
    SimTime issue = 0;   ///< Lane-clock tick at submission (merge key).
    uint64_t seq = 0;    ///< Per-lane submission sequence (merge tie-break).
    uint32_t chip = 0;
    uint64_t pre_bytes = 0;
    uint64_t op_us = 0;
    uint64_t post_bytes = 0;
    bool sync = false;
  };

  explicit FlashLane(uint32_t id) : id_(id) {}

  uint32_t id_;
  SimClock clock_;
  uint64_t next_seq_ = 0;
  std::vector<Reservation> pending_;
  /// Shadow busy state: this lane's private view of chip / channel
  /// availability, reseeded from the shared state at every drain.
  std::vector<SimTime> chip_busy_;
  std::vector<SimTime> channel_busy_;
  DeviceStats stats_;
};

}  // namespace ipa::flash
