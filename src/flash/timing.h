// Service-time model for flash operations.
//
// Latencies are simulated microseconds. A program on an MLC MSB page is much
// slower than on its LSB page (the reason pSLC mode also improves latency,
// Appendix C.2). write_delta programs only a few ISPP pulses worth of cells
// and transfers only the delta bytes, so it is cheaper than a full program.

#pragma once

#include <cstdint>

#include "flash/geometry.h"

namespace ipa::flash {

/// Latency constants (microseconds) plus bus speed.
struct TimingModel {
  uint64_t read_us = 25;          ///< Array sensing time (page read).
  uint64_t program_lsb_us = 200;  ///< Page program, SLC page or MLC LSB page.
  uint64_t program_msb_us = 800;  ///< Page program, MLC MSB page.
  uint64_t erase_us = 1500;       ///< Block erase.
  /// ISPP in-place append: verifying/boosting already-programmed cells plus
  /// a short pulse train for the appended cells.
  uint64_t program_delta_us = 60;
  /// Channel transfer speed in MB/s (data + OOB cross the bus).
  uint64_t channel_mb_per_s = 200;
  /// Per-command fixed bus/firmware overhead.
  uint64_t command_overhead_us = 5;
  /// Cap on how far ahead of the current simulated time background (async)
  /// operations may book a chip. Models bounded outstanding I/O: a cleaner
  /// or GC submitting past this horizon blocks until the backlog drains.
  uint64_t max_async_backlog_us = 10000;

  uint64_t TransferUs(uint64_t bytes) const {
    if (channel_mb_per_s == 0) return 0;
    return bytes / channel_mb_per_s;  // bytes / (MB/s) == microseconds
  }
};

/// SLC timing preset (datasheet-class numbers).
inline TimingModel SlcTiming() {
  TimingModel t;
  t.read_us = 25;
  t.program_lsb_us = 200;
  t.program_msb_us = 200;
  t.erase_us = 1500;
  t.program_delta_us = 60;
  return t;
}

/// MLC timing preset: slower reads, much slower MSB programs, slower erase.
inline TimingModel MlcTiming() {
  TimingModel t;
  t.read_us = 50;
  t.program_lsb_us = 220;
  t.program_msb_us = 900;
  t.erase_us = 2500;
  t.program_delta_us = 80;
  return t;
}

inline TimingModel TimingFor(CellType cell) {
  switch (cell) {
    case CellType::kSlc: return SlcTiming();
    case CellType::kMlc: return MlcTiming();
    case CellType::kTlc3d: return MlcTiming();
  }
  return SlcTiming();
}

}  // namespace ipa::flash
