#include "flash/ecc.h"

#include <bit>
#include <cstring>

namespace ipa::flash {

namespace {

inline uint8_t Parity8(uint8_t b) {
  return static_cast<uint8_t>(std::popcount(static_cast<unsigned>(b)) & 1);
}

}  // namespace

std::array<uint8_t, kEccBytesPerSegment> EccEncode(const uint8_t* data, size_t len) {
  // Classic SmartMedia 22-bit Hamming code: 16 line-parity bits over the byte
  // address, 6 column-parity bits over the bit position.
  uint16_t lp = 0;  // bit 2k = LP2k (address bit k == 0), bit 2k+1 = LP2k+1
  uint8_t cp = 0;   // bits 0..5 = CP0..CP5

  for (size_t i = 0; i < kEccSegment; i++) {
    uint8_t b = (i < len) ? data[i] : 0;
    if (Parity8(b)) {
      for (unsigned k = 0; k < 8; k++) {
        unsigned bit = ((i >> k) & 1) ? (2 * k + 1) : (2 * k);
        lp ^= static_cast<uint16_t>(1u << bit);
      }
    }
    cp ^= static_cast<uint8_t>(Parity8(b & 0x55) << 0);
    cp ^= static_cast<uint8_t>(Parity8(b & 0xAA) << 1);
    cp ^= static_cast<uint8_t>(Parity8(b & 0x33) << 2);
    cp ^= static_cast<uint8_t>(Parity8(b & 0xCC) << 3);
    cp ^= static_cast<uint8_t>(Parity8(b & 0x0F) << 4);
    cp ^= static_cast<uint8_t>(Parity8(b & 0xF0) << 5);
  }

  std::array<uint8_t, 3> ecc;
  ecc[0] = static_cast<uint8_t>(lp & 0xFF);
  ecc[1] = static_cast<uint8_t>(lp >> 8);
  ecc[2] = static_cast<uint8_t>(cp | 0xC0);  // top two bits fixed to 1
  return ecc;
}

EccResult EccCheckAndCorrect(uint8_t* data, size_t len,
                             const std::array<uint8_t, kEccBytesPerSegment>& stored) {
  auto computed = EccEncode(data, len);
  uint8_t d0 = static_cast<uint8_t>(stored[0] ^ computed[0]);
  uint8_t d1 = static_cast<uint8_t>(stored[1] ^ computed[1]);
  uint8_t d2 = static_cast<uint8_t>((stored[2] ^ computed[2]) & 0x3F);

  if ((d0 | d1 | d2) == 0) return EccResult::kClean;

  int total = std::popcount(static_cast<unsigned>(d0)) +
              std::popcount(static_cast<unsigned>(d1)) +
              std::popcount(static_cast<unsigned>(d2));

  // A single flipped data bit flips exactly one bit of every LP/CP pair:
  // 8 LP pairs + 3 CP pairs = 11 differing bits, one per pair.
  bool one_per_pair = (((d0 ^ (d0 >> 1)) & 0x55) == 0x55) &&
                      (((d1 ^ (d1 >> 1)) & 0x55) == 0x55) &&
                      (((d2 ^ (d2 >> 1)) & 0x15) == 0x15);
  if (total == 11 && one_per_pair) {
    unsigned byte_addr = ((d0 >> 1) & 1) << 0 | ((d0 >> 3) & 1) << 1 |
                         ((d0 >> 5) & 1) << 2 | ((d0 >> 7) & 1) << 3 |
                         ((d1 >> 1) & 1) << 4 | ((d1 >> 3) & 1) << 5 |
                         ((d1 >> 5) & 1) << 6 | ((d1 >> 7) & 1) << 7;
    unsigned bit_addr = ((d2 >> 1) & 1) << 0 | ((d2 >> 3) & 1) << 1 |
                        ((d2 >> 5) & 1) << 2;
    if (byte_addr < len) {
      data[byte_addr] ^= static_cast<uint8_t>(1u << bit_addr);
    }
    // An error in the zero-padding region cannot happen physically; if the
    // address points past `len` the stored ECC itself was damaged.
    return EccResult::kCorrected;
  }

  if (total == 1) {
    // Single-bit error in the ECC bytes themselves; the data is intact.
    return EccResult::kCorrected;
  }
  return EccResult::kUncorrectable;
}

size_t EccRegionBytes(size_t data_len) {
  size_t segments = (data_len + kEccSegment - 1) / kEccSegment;
  return segments * kEccBytesPerSegment;
}

std::vector<uint8_t> EccEncodeRegion(const uint8_t* data, size_t len) {
  std::vector<uint8_t> out;
  out.reserve(EccRegionBytes(len));
  for (size_t off = 0; off < len; off += kEccSegment) {
    size_t seg = std::min(kEccSegment, len - off);
    auto ecc = EccEncode(data + off, seg);
    out.insert(out.end(), ecc.begin(), ecc.end());
  }
  return out;
}

EccResult EccCheckRegion(uint8_t* data, size_t len, const uint8_t* stored_ecc,
                         size_t stored_len, uint64_t* corrected_bits) {
  EccResult worst = EccResult::kClean;
  size_t seg_idx = 0;
  for (size_t off = 0; off < len; off += kEccSegment, seg_idx++) {
    if ((seg_idx + 1) * kEccBytesPerSegment > stored_len) {
      return EccResult::kUncorrectable;
    }
    size_t seg = std::min(kEccSegment, len - off);
    std::array<uint8_t, 3> stored;
    std::memcpy(stored.data(), stored_ecc + seg_idx * kEccBytesPerSegment, 3);
    EccResult r = EccCheckAndCorrect(data + off, seg, stored);
    if (r == EccResult::kCorrected && corrected_bits) (*corrected_bits)++;
    if (static_cast<int>(r) > static_cast<int>(worst)) worst = r;
  }
  return worst;
}

}  // namespace ipa::flash
