#include "flash/flash_array.h"

#include <algorithm>
#include <cstring>

#include "common/metrics.h"
#include "flash/submit_queue.h"

namespace ipa::flash {

namespace {

/// Process-wide flash-layer counters (naming: docs/METRICS.md). These shadow
/// the per-device DeviceStats so observability sees every device in the
/// process; registration happens once, on first use.
struct FlashCounters {
  metrics::Counter page_reads{"flash.page_reads"};
  metrics::Counter bytes_read{"flash.bytes_read"};
  metrics::Counter page_programs_lsb{"flash.page_programs.lsb"};
  metrics::Counter page_programs_msb{"flash.page_programs.msb"};
  metrics::Counter bytes_programmed{"flash.bytes_programmed"};
  metrics::Counter delta_programs{"flash.delta_programs"};
  metrics::Counter delta_bytes{"flash.delta_bytes_programmed"};
  metrics::Counter block_erases{"flash.block_erases"};
  metrics::Counter page_refreshes{"flash.page_refreshes"};
  metrics::Counter ispp_rejections{"flash.ispp_rejections"};
  metrics::Counter retention_flips{"flash.bit_errors.retention"};
  metrics::Counter interference_flips{"flash.bit_errors.interference"};
  metrics::Counter power_loss_injections{"flash.power_loss_injections"};
};

FlashCounters& Fm() {
  static FlashCounters counters;
  return counters;
}

}  // namespace

FlashArray::FlashArray(const Geometry& geometry, const TimingModel& timing,
                       const ErrorModel& errors, SimClock* clock)
    : geo_(geometry),
      timing_(timing),
      errors_(errors),
      rng_(errors.seed) {
  if (clock) {
    clock_ = clock;
  } else {
    owned_clock_ = std::make_unique<SimClock>();
    clock_ = owned_clock_.get();
  }
  blocks_.resize(geo_.total_blocks());
  chips_.resize(geo_.total_chips());
  channel_busy_.assign(geo_.channels, 0);
}

FlashArray::~FlashArray() = default;

void AccumulateStats(DeviceStats& into, const DeviceStats& from) {
  into.page_reads += from.page_reads;
  into.page_programs += from.page_programs;
  into.delta_programs += from.delta_programs;
  into.block_erases += from.block_erases;
  into.bytes_read += from.bytes_read;
  into.bytes_programmed += from.bytes_programmed;
  into.delta_bytes_programmed += from.delta_bytes_programmed;
  into.ispp_rejections += from.ispp_rejections;
  into.interference_flips += from.interference_flips;
  into.retention_flips += from.retention_flips;
  into.page_refreshes += from.page_refreshes;
  into.power_loss_injections += from.power_loss_injections;
  into.torn_page_programs += from.torn_page_programs;
  into.torn_delta_programs += from.torn_delta_programs;
  into.torn_erases += from.torn_erases;
}

DeviceStats FlashArray::AggregateStats() const {
  DeviceStats total = stats_;
  for (const auto& lane : lanes_) AccumulateStats(total, lane->stats_);
  return total;
}

void FlashArray::ResetStats() {
  stats_ = DeviceStats{};
  for (auto& lane : lanes_) lane->stats_ = DeviceStats{};
}

FlashLane* FlashArray::CreateLane() {
  auto lane = std::unique_ptr<FlashLane>(
      new FlashLane(static_cast<uint32_t>(lanes_.size())));
  lane->clock_.AdvanceTo(clock_->Now());
  lane->chip_busy_.resize(chips_.size());
  for (size_t c = 0; c < chips_.size(); c++) {
    lane->chip_busy_[c] = chips_[c].busy_until;
  }
  lane->channel_busy_ = channel_busy_;
  lanes_.push_back(std::move(lane));
  return lanes_.back().get();
}

void FlashArray::BindLaneToChips(FlashLane* lane,
                                 const std::vector<uint32_t>& chips) {
  if (lane_of_chip_.empty()) lane_of_chip_.assign(geo_.total_chips(), nullptr);
  for (uint32_t chip : chips) lane_of_chip_[chip] = lane;
}

FlashLane* FlashArray::LaneOf(uint32_t chip) {
  return lane_of_chip_.empty() ? nullptr : lane_of_chip_[chip];
}

DeviceStats& FlashArray::StatsFor(uint32_t chip) {
  FlashLane* lane = LaneOf(chip);
  return lane ? lane->stats_ : stats_;
}

SimTime FlashArray::DrainLanes() {
  struct Item {
    SimTime issue;
    uint32_t lane;
    uint64_t seq;
    uint32_t chip;
    uint64_t pre_bytes, op_us, post_bytes;
    bool sync;
  };
  std::vector<Item> items;
  for (const auto& lane : lanes_) {
    for (const FlashLane::Reservation& r : lane->pending_) {
      items.push_back({r.issue, lane->id_, r.seq, r.chip, r.pre_bytes, r.op_us,
                       r.post_bytes, r.sync});
    }
  }
  // The merge key is built only from lane-local values (issue tick on the
  // lane clock, lane id, per-lane sequence), so the replayed schedule cannot
  // depend on the chronological order in which threads called the device.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.issue != b.issue) return a.issue < b.issue;
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.seq < b.seq;
  });

  std::vector<SimTime> lane_sync(lanes_.size(), 0);
  for (const Item& it : items) {
    // Same service-time model as Occupy(), with the lane-local issue tick
    // standing in for "now".
    uint32_t channel = it.chip / geo_.chips_per_channel;
    SimTime chan_free = std::max(channel_busy_[channel], it.issue);
    SimTime after_cmd = chan_free + timing_.command_overhead_us +
                        timing_.TransferUs(it.pre_bytes);
    SimTime chip_free = std::max(chips_[it.chip].busy_until, after_cmd);
    SimTime after_op = chip_free + it.op_us;
    SimTime chan_free2 = std::max(channel_busy_[channel], after_op);
    SimTime complete = chan_free2 + timing_.TransferUs(it.post_bytes);
    channel_busy_[channel] = std::max(after_cmd, complete);
    chips_[it.chip].busy_until = after_op;
    if (it.sync) lane_sync[it.lane] = std::max(lane_sync[it.lane], complete);
  }

  SimTime epoch = clock_->Now();
  for (const auto& lane : lanes_) {
    epoch = std::max({epoch, lane->clock_.Now(), lane_sync[lane->id_]});
  }
  clock_->AdvanceTo(epoch);
  for (auto& lane : lanes_) {
    lane->pending_.clear();
    lane->next_seq_ = 0;
    lane->clock_.AdvanceTo(epoch);
    for (size_t c = 0; c < chips_.size(); c++) {
      lane->chip_busy_[c] = chips_[c].busy_until;
    }
    lane->channel_busy_ = channel_busy_;
  }
  return epoch;
}

Status FlashArray::CheckPpn(Ppn ppn) const {
  if (ppn >= geo_.total_pages()) {
    return Status::InvalidArgument("ppn out of range");
  }
  return Status::OK();
}

FlashArray::BlockState& FlashArray::BlockRef(Pbn pbn) { return blocks_[pbn]; }
const FlashArray::BlockState& FlashArray::BlockRef(Pbn pbn) const {
  return blocks_[pbn];
}

PageState& FlashArray::PageRef(Ppn ppn) {
  BlockState& b = blocks_[BlockOf(geo_, ppn)];
  if (b.pages.empty()) b.pages.resize(geo_.pages_per_block);
  return b.pages[ppn % geo_.pages_per_block];
}

const PageState& FlashArray::page_state(Ppn ppn) const {
  static const PageState kErased{};
  const BlockState& b = blocks_[BlockOf(geo_, ppn)];
  if (b.pages.empty()) return kErased;
  return b.pages[ppn % geo_.pages_per_block];
}

uint32_t FlashArray::EraseCount(Pbn pbn) const { return blocks_[pbn].erase_count; }

uint32_t FlashArray::MaxEraseCount() const {
  uint32_t mx = 0;
  for (const auto& b : blocks_) mx = std::max(mx, b.erase_count);
  return mx;
}

bool FlashArray::IsWornOut(Pbn pbn) const {
  return blocks_[pbn].erase_count > geo_.pe_cycle_limit;
}

void FlashArray::Occupy(uint32_t chip, uint64_t pre_transfer_bytes, uint64_t op_us,
                        uint64_t post_transfer_bytes, bool sync, IoTiming* t) {
  if (FlashLane* lane = LaneOf(chip)) {
    OccupyLane(*lane, chip, pre_transfer_bytes, op_us, post_transfer_bytes,
               sync, t);
    return;
  }
  uint32_t channel = chip / geo_.chips_per_channel;
  SimTime now = clock_->Now();
  SimTime start = now;

  // Command + (for programs) data download over the channel.
  SimTime chan_free = std::max(channel_busy_[channel], now);
  SimTime after_cmd = chan_free + timing_.command_overhead_us +
                      timing_.TransferUs(pre_transfer_bytes);
  // Array operation on the chip.
  SimTime chip_free = std::max(chips_[chip].busy_until, after_cmd);
  SimTime after_op = chip_free + op_us;
  // (For reads) data upload over the channel.
  SimTime chan_free2 = std::max(channel_busy_[channel], after_op);
  SimTime complete = chan_free2 + timing_.TransferUs(post_transfer_bytes);

  channel_busy_[channel] = std::max(after_cmd, complete);
  chips_[chip].busy_until = after_op;

  if (t) {
    t->submitted = start;
    t->completed = complete;
  }
  if (sync) {
    clock_->AdvanceTo(complete);
  } else if (timing_.max_async_backlog_us > 0 &&
             complete > now + timing_.max_async_backlog_us) {
    // Bounded outstanding I/O: the background submitter stalls until its
    // request fits the backlog window.
    clock_->AdvanceTo(complete - timing_.max_async_backlog_us);
  }
}

void FlashArray::OccupyLane(FlashLane& lane, uint32_t chip,
                            uint64_t pre_transfer_bytes, uint64_t op_us,
                            uint64_t post_transfer_bytes, bool sync,
                            IoTiming* t) {
  // Occupy()'s service-time model against the lane's shadow state and clock.
  // The completion computed here is provisional — DrainLanes() replays the
  // reservation against the shared state for the authoritative schedule.
  uint32_t channel = chip / geo_.chips_per_channel;
  SimTime now = lane.clock_.Now();

  SimTime chan_free = std::max(lane.channel_busy_[channel], now);
  SimTime after_cmd = chan_free + timing_.command_overhead_us +
                      timing_.TransferUs(pre_transfer_bytes);
  SimTime chip_free = std::max(lane.chip_busy_[chip], after_cmd);
  SimTime after_op = chip_free + op_us;
  SimTime chan_free2 = std::max(lane.channel_busy_[channel], after_op);
  SimTime complete = chan_free2 + timing_.TransferUs(post_transfer_bytes);

  lane.channel_busy_[channel] = std::max(after_cmd, complete);
  lane.chip_busy_[chip] = after_op;
  lane.pending_.push_back({now, lane.next_seq_++, chip, pre_transfer_bytes,
                           op_us, post_transfer_bytes, sync});

  if (t) {
    t->submitted = now;
    t->completed = complete;
  }
  if (sync) {
    lane.clock_.AdvanceTo(complete);
  } else if (timing_.max_async_backlog_us > 0 &&
             complete > now + timing_.max_async_backlog_us) {
    lane.clock_.AdvanceTo(complete - timing_.max_async_backlog_us);
  }
}

void FlashArray::SetPowerLossPolicy(const PowerLossPolicy& policy) {
  power_policy_ = policy;
  power_rng_.Seed(policy.seed);
  mutation_ops_ = 0;
}

void FlashArray::PowerCycle() {
  powered_on_ = true;
  // Volatile controller state (queued commands) is gone; the media keeps
  // whatever torn state the loss left behind.
  SimTime now = clock_->Now();
  for (auto& chip : chips_) chip.busy_until = now;
  for (auto& chan : channel_busy_) chan = now;
  for (auto& lane : lanes_) {
    lane->pending_.clear();
    lane->next_seq_ = 0;
    lane->clock_.AdvanceTo(now);
    lane->chip_busy_.assign(chips_.size(), now);
    lane->channel_busy_.assign(channel_busy_.size(), now);
  }
}

bool FlashArray::DrawPowerLoss() {
  uint64_t op = mutation_ops_++;
  if (op == power_policy_.inject_at_op) return true;
  return power_policy_.per_op_probability > 0.0 &&
         power_rng_.Chance(power_policy_.per_op_probability);
}

void FlashArray::ApplyTornProgram(uint8_t* stored, const uint8_t* target,
                                  uint32_t len) {
  // A random prefix of the payload finished its ISPP pulses before the
  // supply collapsed.
  uint32_t tear = static_cast<uint32_t>(power_rng_.Uniform(len + 1));
  for (uint32_t i = 0; i < tear; i++) stored[i] &= target[i];
  // The 32-bit word in flight completed an arbitrary subset of its pending
  // 1 -> 0 transitions — ISPP only adds charge, so no bit can rise.
  uint32_t word_end = std::min(len, (tear & ~3u) + 4);
  for (uint32_t i = tear; i < word_end; i++) {
    uint8_t pending = static_cast<uint8_t>(stored[i] & ~target[i]);
    uint8_t cleared = static_cast<uint8_t>(pending & power_rng_.Next());
    stored[i] = static_cast<uint8_t>(stored[i] & ~cleared);
  }
}

void FlashArray::MergeOob(PageState& page, const uint8_t* oob, uint32_t oob_len) {
  if (!oob || oob_len == 0) return;
  if (page.oob.empty()) page.oob.assign(geo_.oob_size, 0xFF);
  for (uint32_t i = 0; i < oob_len; i++) page.oob[i] &= oob[i];
}

void FlashArray::MaybeInjectRetention(PageState& page) {
  if (errors_.retention_flip_per_read <= 0.0 || page.data.empty()) return;
  if (!rng_.Chance(errors_.retention_flip_per_read)) return;
  // Charge leakage: a programmed 0-bit drifts back to 1. Pick a random
  // position; if that bit is 0, flip it (persistently, in the array).
  size_t byte = rng_.Uniform(page.data.size());
  unsigned bit = static_cast<unsigned>(rng_.Uniform(8));
  if ((page.data[byte] & (1u << bit)) == 0) {
    page.data[byte] |= static_cast<uint8_t>(1u << bit);
    stats_.retention_flips++;
    Fm().retention_flips.Inc();
  }
}

void FlashArray::MaybeInjectInterference(Ppn lsb_ppn) {
  if (errors_.interference_flip_per_delta <= 0.0) return;
  if (geo_.cell_type != CellType::kMlc) return;  // negligible on SLC / 3D NAND
  PageAddress a = FromPpn(geo_, lsb_ppn);
  uint32_t w = WordlineOf(geo_, a.page);
  // Interference couples into the MSB pages of the adjacent wordlines
  // (Appendix C.2). Voltage shifts materialize as bit errors only where four
  // threshold levels must be distinguished *and* the cells are still erased
  // (the page's own delta area); fully programmed body cells are stable.
  for (int dw = -1; dw <= 1; dw += 2) {
    int64_t nw = static_cast<int64_t>(w) + dw;
    if (nw < 0) continue;
    uint32_t msb = static_cast<uint32_t>(2 * nw) + 3;
    if (msb >= geo_.pages_per_block) continue;
    Ppn npn = ToPpn(geo_, {a.chip, a.block, msb});
    PageState& neighbor = PageRef(npn);
    if (neighbor.IsErased() || neighbor.data.empty()) continue;
    if (!rng_.Chance(errors_.interference_flip_per_delta)) continue;
    // Flip one random *erased* (still-1) bit: the coupled cell picks up
    // charge, so a 1 drifts towards 0. Programmed (0) cells are already at a
    // high charge level and stay stable; sample until a 1-bit is found.
    for (int attempt = 0; attempt < 64; attempt++) {
      size_t byte = rng_.Uniform(neighbor.data.size());
      unsigned bit = static_cast<unsigned>(rng_.Uniform(8));
      if (neighbor.data[byte] & (1u << bit)) {
        neighbor.data[byte] &= static_cast<uint8_t>(~(1u << bit));
        stats_.interference_flips++;
        Fm().interference_flips.Inc();
        break;
      }
    }
  }
}

Status FlashArray::ReadPage(Ppn ppn, uint8_t* out, IoTiming* t, bool sync) {
  if (!powered_on_) return Status::Unavailable("flash device is powered off");
  IPA_RETURN_NOT_OK(CheckPpn(ppn));
  PageState& page = PageRef(ppn);
  MaybeInjectRetention(page);
  if (page.data.empty()) {
    std::memset(out, 0xFF, geo_.page_size);
  } else {
    std::memcpy(out, page.data.data(), geo_.page_size);
  }
  PageAddress a = FromPpn(geo_, ppn);
  uint32_t chip = a.chip;
  Occupy(chip, 0, timing_.read_us, geo_.page_size, sync, t);
  DeviceStats& st = StatsFor(chip);
  st.page_reads++;
  st.bytes_read += geo_.page_size;
  Fm().page_reads.Inc();
  Fm().bytes_read.Add(geo_.page_size);
  return Status::OK();
}

Status FlashArray::ProgramPage(Ppn ppn, const uint8_t* data, const uint8_t* oob,
                               uint32_t oob_len, IoTiming* t, bool sync) {
  if (!powered_on_) return Status::Unavailable("flash device is powered off");
  bool lose_power = DrawPowerLoss();
  IPA_RETURN_NOT_OK(CheckPpn(ppn));
  PageAddress a = FromPpn(geo_, ppn);
  BlockState& blk = BlockRef(BlockOf(geo_, ppn));
  if (blk.pages.empty()) blk.pages.resize(geo_.pages_per_block);
  PageState& page = blk.pages[a.page];

  // Validate fully before touching media: a rejected command never draws
  // program current, so it cannot tear (and stays atomic for the caller).
  if (page.program_count >= geo_.max_programs_per_page) {
    return Status::NotSupported("page program budget exhausted (NOP limit)");
  }
  bool initial = page.IsErased();
  if (initial) {
    // Initial program. MLC requires in-order programming within the block.
    if (geo_.cell_type != CellType::kSlc &&
        static_cast<int32_t>(a.page) <= blk.highest_programmed) {
      return Status::NotSupported("MLC requires in-order page programming");
    }
  } else {
    // ISPP re-program: every bit may only go 1 -> 0.
    for (uint32_t i = 0; i < geo_.page_size; i++) {
      if ((data[i] & page.data[i]) != data[i]) {
        StatsFor(a.chip).ispp_rejections++;
        Fm().ispp_rejections.Inc();
        return Status::NotSupported("re-program requires 0->1 transition (ISPP)");
      }
    }
  }
  uint32_t merged_oob = (oob && oob_len > 0) ? std::min(oob_len, geo_.oob_size) : 0;
  if (merged_oob > 0 && !page.oob.empty()) {
    for (uint32_t i = 0; i < merged_oob; i++) {
      if ((oob[i] & page.oob[i]) != oob[i]) {
        StatsFor(a.chip).ispp_rejections++;
        Fm().ispp_rejections.Inc();
        return Status::NotSupported("OOB re-program requires 0->1 transition");
      }
    }
  }

  if (initial) {
    page.data.assign(geo_.page_size, 0xFF);
    blk.highest_programmed =
        std::max(blk.highest_programmed, static_cast<int32_t>(a.page));
  }

  if (lose_power) {
    // The controller sequences OOB and data in either order; on a loss only
    // whatever already ran is on media.
    bool oob_first = merged_oob > 0 && power_rng_.Chance(0.5);
    if (oob_first) MergeOob(page, oob, merged_oob);
    ApplyTornProgram(page.data.data(), data, geo_.page_size);
    page.program_count++;
    powered_on_ = false;
    stats_.power_loss_injections++;
    stats_.torn_page_programs++;
    Fm().power_loss_injections.Inc();
    return Status::Unavailable("power loss during page program");
  }

  std::memcpy(page.data.data(), data, geo_.page_size);
  page.program_count++;
  MergeOob(page, oob, merged_oob);

  bool lsb = IsLsbPage(geo_, a.page);
  uint64_t prog_us = lsb ? timing_.program_lsb_us : timing_.program_msb_us;
  Occupy(a.chip, geo_.page_size, prog_us, 0, sync, t);
  DeviceStats& st = StatsFor(a.chip);
  st.page_programs++;
  st.bytes_programmed += geo_.page_size;
  (lsb ? Fm().page_programs_lsb : Fm().page_programs_msb).Inc();
  Fm().bytes_programmed.Add(geo_.page_size);
  return Status::OK();
}

Status FlashArray::ProgramDelta(Ppn ppn, uint32_t offset, const uint8_t* delta,
                                uint32_t len, IoTiming* t, bool sync) {
  if (!powered_on_) return Status::Unavailable("flash device is powered off");
  bool lose_power = DrawPowerLoss();
  IPA_RETURN_NOT_OK(CheckPpn(ppn));
  if (len == 0) return Status::InvalidArgument("empty delta");
  if (offset + len > geo_.page_size) {
    return Status::InvalidArgument("delta exceeds page bounds");
  }
  PageAddress a = FromPpn(geo_, ppn);
  if (geo_.cell_type == CellType::kMlc && !IsLsbPage(geo_, a.page)) {
    // Appendix C.2: MSB pages must always be written out-of-place.
    return Status::NotSupported("write_delta not allowed on MLC MSB pages");
  }
  PageState& page = PageRef(ppn);
  if (page.IsErased()) {
    return Status::InvalidArgument("write_delta targets an erased page");
  }
  if (page.program_count >= geo_.max_programs_per_page) {
    return Status::NotSupported("page program budget exhausted (NOP limit)");
  }
  for (uint32_t i = 0; i < len; i++) {
    if ((delta[i] & page.data[offset + i]) != delta[i]) {
      StatsFor(a.chip).ispp_rejections++;
      Fm().ispp_rejections.Inc();
      return Status::NotSupported("delta requires 0->1 transition (ISPP)");
    }
  }
  if (lose_power) {
    ApplyTornProgram(page.data.data() + offset, delta, len);
    page.program_count++;
    powered_on_ = false;
    stats_.power_loss_injections++;
    stats_.torn_delta_programs++;
    Fm().power_loss_injections.Inc();
    return Status::Unavailable("power loss during delta program");
  }
  std::memcpy(page.data.data() + offset, delta, len);
  page.program_count++;

  MaybeInjectInterference(ppn);

  Occupy(a.chip, len, timing_.program_delta_us, 0, sync, t);
  DeviceStats& st = StatsFor(a.chip);
  st.delta_programs++;
  st.delta_bytes_programmed += len;
  Fm().delta_programs.Inc();
  Fm().delta_bytes.Add(len);
  return Status::OK();
}

Status FlashArray::ProgramOob(Ppn ppn, uint32_t offset, const uint8_t* bytes,
                              uint32_t len) {
  if (!powered_on_) return Status::Unavailable("flash device is powered off");
  IPA_RETURN_NOT_OK(CheckPpn(ppn));
  if (offset + len > geo_.oob_size) {
    return Status::InvalidArgument("OOB write exceeds OOB size");
  }
  PageState& page = PageRef(ppn);
  if (page.oob.empty()) page.oob.assign(geo_.oob_size, 0xFF);
  for (uint32_t i = 0; i < len; i++) {
    if ((bytes[i] & page.oob[offset + i]) != bytes[i]) {
      StatsFor(ChipOf(ppn)).ispp_rejections++;
      Fm().ispp_rejections.Inc();
      return Status::NotSupported("OOB delta requires 0->1 transition (ISPP)");
    }
    page.oob[offset + i] = bytes[i];
  }
  return Status::OK();
}

Status FlashArray::ReadOob(Ppn ppn, uint8_t* out, uint32_t len) {
  if (!powered_on_) return Status::Unavailable("flash device is powered off");
  IPA_RETURN_NOT_OK(CheckPpn(ppn));
  if (len > geo_.oob_size) return Status::InvalidArgument("OOB read too long");
  const PageState& page = page_state(ppn);
  if (page.oob.empty()) {
    std::memset(out, 0xFF, len);
  } else {
    std::memcpy(out, page.oob.data(), len);
  }
  return Status::OK();
}

Status FlashArray::RefreshPage(Ppn ppn, const uint8_t* data, IoTiming* t,
                               bool sync) {
  if (!powered_on_) return Status::Unavailable("flash device is powered off");
  IPA_RETURN_NOT_OK(CheckPpn(ppn));
  PageState& page = PageRef(ppn);
  if (page.IsErased()) {
    return Status::InvalidArgument("refresh of an erased page");
  }
  for (uint32_t i = 0; i < geo_.page_size; i++) {
    if ((data[i] & page.data[i]) != data[i]) {
      StatsFor(ChipOf(ppn)).ispp_rejections++;
      Fm().ispp_rejections.Inc();
      return Status::NotSupported("refresh requires 0->1 transition (ISPP)");
    }
  }
  std::memcpy(page.data.data(), data, geo_.page_size);
  PageAddress a = FromPpn(geo_, ppn);
  bool lsb = IsLsbPage(geo_, a.page);
  Occupy(a.chip, geo_.page_size,
         lsb ? timing_.program_lsb_us : timing_.program_msb_us, 0, sync, t);
  StatsFor(a.chip).page_refreshes++;
  Fm().page_refreshes.Inc();
  return Status::OK();
}

Status FlashArray::AuditState() const {
  auto fail = [](Pbn pbn, uint32_t page, const char* what) {
    return Status::Corruption("flash audit: block " + std::to_string(pbn) +
                              " page " + std::to_string(page) + ": " + what);
  };
  for (Pbn pbn = 0; pbn < blocks_.size(); pbn++) {
    const BlockState& blk = blocks_[pbn];
    if (!blk.pages.empty() && blk.pages.size() != geo_.pages_per_block) {
      return fail(pbn, 0, "page vector does not match the geometry");
    }
    if (blk.highest_programmed >= static_cast<int32_t>(geo_.pages_per_block)) {
      return fail(pbn, 0, "in-order frontier beyond the block");
    }
    for (uint32_t p = 0; p < blk.pages.size(); p++) {
      const PageState& ps = blk.pages[p];
      if (ps.IsErased() != ps.data.empty()) {
        return fail(pbn, p, "program count disagrees with stored data");
      }
      if (!ps.data.empty() && ps.data.size() != geo_.page_size) {
        return fail(pbn, p, "stored data is not page-sized");
      }
      if (!ps.oob.empty() && ps.oob.size() != geo_.oob_size) {
        return fail(pbn, p, "stored OOB is not oob-sized");
      }
      if (ps.program_count > geo_.max_programs_per_page) {
        return fail(pbn, p, "program budget exceeded");
      }
      if (!ps.IsErased() &&
          static_cast<int32_t>(p) > blk.highest_programmed) {
        return fail(pbn, p, "programmed page above the in-order frontier");
      }
    }
  }
  return Status::OK();
}

Status FlashArray::EraseBlock(Pbn pbn, IoTiming* t, bool sync) {
  if (!powered_on_) return Status::Unavailable("flash device is powered off");
  bool lose_power = DrawPowerLoss();
  if (pbn >= geo_.total_blocks()) {
    return Status::InvalidArgument("pbn out of range");
  }
  BlockState& blk = blocks_[pbn];
  if (lose_power) {
    // Partial erase: charge drained from some cells but not others, so the
    // block reads as garbage biased towards 1 (erased). Program counters are
    // kept — the block was NOT erased and refuses initial programs until a
    // successful re-erase.
    for (auto& page : blk.pages) {
      for (auto& b : page.data) b |= static_cast<uint8_t>(power_rng_.Next());
      for (auto& b : page.oob) b |= static_cast<uint8_t>(power_rng_.Next());
    }
    blk.erase_count++;
    powered_on_ = false;
    stats_.power_loss_injections++;
    stats_.torn_erases++;
    Fm().power_loss_injections.Inc();
    return Status::Unavailable("power loss during block erase");
  }
  blk.pages.clear();
  blk.pages.shrink_to_fit();
  blk.erase_count++;
  blk.highest_programmed = -1;
  uint32_t chip = static_cast<uint32_t>(pbn / geo_.blocks_per_chip);
  Occupy(chip, 0, timing_.erase_us, 0, sync, t);
  StatsFor(chip).block_erases++;
  Fm().block_erases.Inc();
  return Status::OK();
}

}  // namespace ipa::flash
