// Single-bit-correcting / double-bit-detecting ECC over 256-byte segments
// (the classic SmartMedia/NAND Hamming code: 3 ECC bytes per 256 data bytes).
//
// IPA requires ECC to be computed *incrementally* (Section 6.2 "Flash ECC and
// Page OOB Area"): the page body is covered by ECC_initial and every appended
// delta-record gets its own ECC_delta, both stored in the page's OOB area and
// themselves appended via ISPP. The segment code here is that building block.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipa::flash {

/// Outcome of an ECC check over one segment.
enum class EccResult {
  kClean,          ///< No error.
  kCorrected,      ///< Single-bit error found and fixed in place.
  kUncorrectable,  ///< >=2 bit errors; data unreliable.
};

/// Number of data bytes covered by one ECC unit.
constexpr size_t kEccSegment = 256;
/// ECC bytes produced per segment.
constexpr size_t kEccBytesPerSegment = 3;

/// Compute the 3-byte Hamming ECC for a 256-byte segment. Shorter trailing
/// segments are treated as zero-padded to 256 bytes.
std::array<uint8_t, kEccBytesPerSegment> EccEncode(const uint8_t* data, size_t len);

/// Verify (and if possible repair) `data[0..len)` against a stored ECC.
/// On a single-bit error the data is fixed in place and kCorrected returned.
EccResult EccCheckAndCorrect(uint8_t* data, size_t len,
                             const std::array<uint8_t, kEccBytesPerSegment>& stored);

/// ECC for an arbitrary-length region: one 3-byte unit per 256-byte segment,
/// concatenated. `EccRegionBytes(len)` gives the output size.
size_t EccRegionBytes(size_t data_len);
std::vector<uint8_t> EccEncodeRegion(const uint8_t* data, size_t len);

/// Check/repair a whole region; returns the worst per-segment result and
/// counts corrections via `corrected_bits` (may be nullptr).
EccResult EccCheckRegion(uint8_t* data, size_t len, const uint8_t* stored_ecc,
                         size_t stored_len, uint64_t* corrected_bits);

}  // namespace ipa::flash
