#include "flash/geometry.h"

#include <sstream>

namespace ipa::flash {

const char* CellTypeName(CellType t) {
  switch (t) {
    case CellType::kSlc: return "SLC";
    case CellType::kMlc: return "MLC";
    case CellType::kTlc3d: return "3D-TLC";
  }
  return "?";
}

std::string Geometry::ToString() const {
  std::ostringstream os;
  os << CellTypeName(cell_type) << " flash: " << channels << " channels x "
     << chips_per_channel << " chips x " << blocks_per_chip << " blocks x "
     << pages_per_block << " pages x " << page_size << "B (+" << oob_size
     << "B OOB), " << capacity_bytes() / (1024 * 1024) << " MB";
  return os.str();
}

Geometry EmulatorSlcGeometry(uint64_t capacity_mb) {
  Geometry g;
  g.cell_type = CellType::kSlc;
  g.channels = 4;
  g.chips_per_channel = 4;  // 16 chips, as in the paper's emulator testbed
  g.pages_per_block = 64;
  g.page_size = 4096;
  g.oob_size = 128;
  g.max_programs_per_page = 8;
  g.pe_cycle_limit = 100000;
  uint64_t pages = capacity_mb * 1024 * 1024 / g.page_size;
  uint64_t blocks = pages / g.pages_per_block;
  g.blocks_per_chip = static_cast<uint32_t>(blocks / g.total_chips());
  if (g.blocks_per_chip == 0) g.blocks_per_chip = 1;
  return g;
}

Geometry OpenSsdMlcGeometry(uint64_t capacity_mb) {
  Geometry g;
  g.cell_type = CellType::kMlc;
  g.channels = 1;           // effective host-level parallelism of one request
  g.chips_per_channel = 1;  // (Appendix D: no NCQ on the Jasmine board)
  g.pages_per_block = 128;
  g.page_size = 4096;
  g.oob_size = 128;
  g.max_programs_per_page = 4;  // N<=3 on MLC plus the initial program
  g.pe_cycle_limit = 10000;
  uint64_t pages = capacity_mb * 1024 * 1024 / g.page_size;
  uint64_t blocks = pages / g.pages_per_block;
  g.blocks_per_chip = static_cast<uint32_t>(blocks / g.total_chips());
  if (g.blocks_per_chip == 0) g.blocks_per_chip = 1;
  return g;
}

}  // namespace ipa::flash
