// Physical geometry of the emulated NAND flash device.
//
// A device is organized as channels x chips x blocks x pages (Section 3 of
// the paper). Cells on one wordline form one page (SLC) or an LSB/MSB page
// pair (MLC). The erase unit is the block; the program/read unit is the
// page; ISPP can additionally program still-erased regions *within* an
// already programmed page (the property IPA builds on).

#pragma once

#include <cstdint>
#include <string>

namespace ipa::flash {

/// NAND cell technology. Determines LSB/MSB pairing, timing class and wear
/// limits (Section 8.4: ~100k P/E for SLC, ~10k for MLC, ~4k for TLC).
enum class CellType {
  kSlc,
  kMlc,
  kTlc3d,  ///< 3D NAND modeled with MLC-style pairing but negligible interference.
};

const char* CellTypeName(CellType t);

/// Static shape of one emulated flash device.
struct Geometry {
  uint32_t channels = 4;          ///< Independent data buses.
  uint32_t chips_per_channel = 4; ///< Dies per channel (interleaving units).
  uint32_t blocks_per_chip = 256; ///< Erase units per chip.
  uint32_t pages_per_block = 64;  ///< Flash pages per erase unit (32-256 typical).
  uint32_t page_size = 4096;      ///< Data bytes per flash page.
  uint32_t oob_size = 128;        ///< Out-of-band bytes per page (ECC, mapping tag).
  CellType cell_type = CellType::kSlc;
  /// Maximum program operations per page between erases (initial program +
  /// in-place appends). Mirrors the [NxM] scheme's N+1; the paper uses N=2..3
  /// on MLC and higher on SLC.
  uint32_t max_programs_per_page = 8;
  /// P/E cycle endurance per block (wear model).
  uint32_t pe_cycle_limit = 100000;

  uint32_t total_chips() const { return channels * chips_per_channel; }
  uint64_t pages_per_chip() const {
    return static_cast<uint64_t>(blocks_per_chip) * pages_per_block;
  }
  uint64_t total_blocks() const {
    return static_cast<uint64_t>(total_chips()) * blocks_per_chip;
  }
  uint64_t total_pages() const {
    return static_cast<uint64_t>(total_chips()) * pages_per_chip();
  }
  uint64_t capacity_bytes() const { return total_pages() * page_size; }

  std::string ToString() const;
};

/// Physical page address, decomposed. Flat physical page numbers (Ppn) are
/// chip-major: ppn = ((chip * blocks_per_chip) + block) * pages_per_block + page.
struct PageAddress {
  uint32_t chip = 0;
  uint32_t block = 0;   ///< Block index within the chip.
  uint32_t page = 0;    ///< Page index within the block (0-based).

  bool operator==(const PageAddress&) const = default;
};

/// Flat physical page number.
using Ppn = uint64_t;
/// Flat physical block number (chip-major).
using Pbn = uint64_t;

constexpr Ppn kInvalidPpn = ~0ull;

inline Ppn ToPpn(const Geometry& g, const PageAddress& a) {
  return (static_cast<Ppn>(a.chip) * g.blocks_per_chip + a.block) * g.pages_per_block +
         a.page;
}

inline PageAddress FromPpn(const Geometry& g, Ppn ppn) {
  PageAddress a;
  a.page = static_cast<uint32_t>(ppn % g.pages_per_block);
  Ppn rest = ppn / g.pages_per_block;
  a.block = static_cast<uint32_t>(rest % g.blocks_per_chip);
  a.chip = static_cast<uint32_t>(rest / g.blocks_per_chip);
  return a;
}

inline Pbn BlockOf(const Geometry& g, Ppn ppn) { return ppn / g.pages_per_block; }

/// MLC wordline pairing (paper Appendix C, 0-based form): within a block,
/// *even* page indices are LSB pages and *odd* indices are MSB pages; the
/// LSB page on wordline w is page 2w, its MSB partner is page 2w+3 (the
/// staggered assignment that keeps program order interference bounded).
/// On SLC every page is its own wordline and counts as "LSB".
inline bool IsLsbPage(const Geometry& g, uint32_t page_in_block) {
  if (g.cell_type == CellType::kSlc) return true;
  return (page_in_block % 2) == 0;
}

/// Wordline index of a page within its block.
inline uint32_t WordlineOf(const Geometry& g, uint32_t page_in_block) {
  if (g.cell_type == CellType::kSlc) return page_in_block;
  return IsLsbPage(g, page_in_block) ? page_in_block / 2
                                     : (page_in_block >= 3 ? (page_in_block - 3) / 2
                                                           : 0);
}

/// The MSB partner of an LSB page (may exceed the block for the last
/// wordlines; callers must range-check). Returns page_in_block for SLC.
inline uint32_t MsbPartnerOf(const Geometry& g, uint32_t lsb_page_in_block) {
  if (g.cell_type == CellType::kSlc) return lsb_page_in_block;
  return lsb_page_in_block + 3;
}

/// Preset: geometry used for the paper's 16-chip SLC flash emulator runs.
Geometry EmulatorSlcGeometry(uint64_t capacity_mb);

/// Preset: geometry approximating the OpenSSD Jasmine board (MLC, limited
/// parallelism is configured in the timing model, not here).
Geometry OpenSsdMlcGeometry(uint64_t capacity_mb);

}  // namespace ipa::flash
