// The emulated NAND flash device.
//
// FlashArray models a multi-channel, multi-chip raw NAND device with:
//  * ISPP program semantics — programming can only increase cell charge,
//    i.e. data bits can only transition 1 -> 0. An erased page is all 0xFF.
//    A program that would require any 0 -> 1 transition is rejected.
//  * program_delta — the paper's write_delta primitive (Section 7): program a
//    byte sub-range of an already-programmed page. Legal iff the ISPP rule
//    holds for that range and, on MLC, only on LSB pages (Appendix C.2).
//  * per-block erase with wear accounting; in-order initial programming of
//    pages within an MLC block (manufacturer requirement, Appendix C.2);
//  * bit-error injection: retention leakage (0 -> 1 in stored data, visible
//    on later reads) and MLC program interference from delta appends, which
//    lands only in the still-erased regions of neighboring-wordline pages;
//  * a deterministic service-time model: per-chip and per-channel queueing
//    against a simulated clock, distinguishing LSB/MSB program latency and
//    cheap delta programs.
//
// FlashArray knows nothing about databases: it stores bytes and enforces
// flash physics. The NoFTL layer (src/ftl) builds mapping/GC on top.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "flash/geometry.h"
#include "flash/timing.h"

namespace ipa::flash {

class FlashLane;  // submit_queue.h

/// Bit-error injection configuration. All rates are per-operation
/// probabilities; 0 disables the mechanism.
struct ErrorModel {
  /// Probability that one stored 0-bit leaks to 1 during a page read
  /// (retention error; persists in the array until rewritten).
  double retention_flip_per_read = 0.0;
  /// Probability, per neighboring-wordline page, that a delta append on an
  /// MLC LSB page flips one bit in that neighbor's still-erased region
  /// (program interference, Appendix C.2).
  double interference_flip_per_delta = 0.0;
  uint64_t seed = 0x5EED;
};

/// Power-loss fault injection (crash testing, docs/CRASH_TESTING.md). When
/// armed, the policy picks one mutating operation (ProgramPage /
/// ProgramDelta / EraseBlock) and cuts power *mid-way through it*, leaving
/// realistic torn state behind; the device then fails every command with
/// Status::Unavailable until PowerCycle().
struct PowerLossPolicy {
  static constexpr uint64_t kNever = ~0ull;
  /// Cut power during the mutating op with this 0-based index, counted from
  /// the moment the policy was set. The index is consumed even when the op
  /// is rejected by validation (a refused command draws no program current,
  /// so nothing tears); kNever disables deterministic injection.
  uint64_t inject_at_op = kNever;
  /// Independently, each valid mutating op loses power with this probability.
  double per_op_probability = 0.0;
  /// Seeds the torn-state shape (tear offset, in-flight word bits, OOB
  /// ordering) and the probabilistic trigger.
  uint64_t seed = 0x70FF;
};

/// Raw operation counters maintained by the device.
struct DeviceStats {
  uint64_t page_reads = 0;
  uint64_t page_programs = 0;
  uint64_t delta_programs = 0;
  uint64_t block_erases = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_programmed = 0;        ///< Full-page program payloads.
  uint64_t delta_bytes_programmed = 0;  ///< write_delta payloads only.
  uint64_t ispp_rejections = 0;         ///< Programs rejected for 0->1 transitions.
  uint64_t interference_flips = 0;
  uint64_t retention_flips = 0;
  uint64_t page_refreshes = 0;  ///< Correct-and-Refresh reprograms.
  uint64_t power_loss_injections = 0;  ///< Ops torn by the PowerLossPolicy.
  uint64_t torn_page_programs = 0;
  uint64_t torn_delta_programs = 0;
  uint64_t torn_erases = 0;
};

/// Completion report of one device operation under the timing model.
struct IoTiming {
  SimTime submitted = 0;
  SimTime completed = 0;
  uint64_t LatencyUs() const { return completed - submitted; }
};

/// State of one physical flash page (exposed for tests / introspection).
struct PageState {
  std::vector<uint8_t> data;  ///< Empty vector == erased (reads as 0xFF).
  std::vector<uint8_t> oob;   ///< Empty == erased OOB.
  uint8_t program_count = 0;  ///< Program operations since the last erase.

  bool IsErased() const { return program_count == 0; }
};

/// Field-wise sum of device counters (lane aggregation).
void AccumulateStats(DeviceStats& into, const DeviceStats& from);

class FlashArray {
 public:
  /// If `clock` is null the device owns a private clock.
  FlashArray(const Geometry& geometry, const TimingModel& timing,
             const ErrorModel& errors = {}, SimClock* clock = nullptr);
  ~FlashArray();

  const Geometry& geometry() const { return geo_; }
  const TimingModel& timing() const { return timing_; }
  SimClock& clock() { return *clock_; }
  /// Counters for commands issued outside any lane. With lanes bound, each
  /// lane keeps its own DeviceStats until aggregated — see AggregateStats().
  const DeviceStats& stats() const { return stats_; }
  /// stats() plus every lane's counters (live totals for sharded stacks).
  DeviceStats AggregateStats() const;
  /// Zero the device counters and every lane's counters.
  void ResetStats();

  // -- Batched submission lanes (submit_queue.h, docs/SHARDING.md) ----------

  /// Create a lane owned by this device. Its clock and shadow busy state are
  /// seeded from the shared state at the time of the call.
  FlashLane* CreateLane();

  /// Route every command that targets one of `chips` through `lane`: timing
  /// is reserved against the lane's shadow state and queued for DrainLanes()
  /// instead of the shared clock. A chip can be bound to at most one lane.
  void BindLaneToChips(FlashLane* lane, const std::vector<uint32_t>& chips);

  /// Epoch barrier: merge all queued reservations in (issue tick, lane id,
  /// sequence) order — independent of cross-lane submission order — replay
  /// them against the shared chip/channel busy state, then advance the shared
  /// clock and every lane clock to the common epoch time, which is returned.
  /// Callers must quiesce lane submitters first.
  SimTime DrainLanes();

  // -- Data path ------------------------------------------------------------
  // Every command optionally reports its timing. `sync` operations advance
  // the shared clock to their completion (the caller blocks on the I/O);
  // async operations only reserve chip/channel time, so later operations
  // queue behind them — used for background GC / cleaner writes.

  /// Read a full page into `out` (geometry().page_size bytes).
  Status ReadPage(Ppn ppn, uint8_t* out, IoTiming* t = nullptr, bool sync = true);

  /// Initial (or ISPP-compatible re-)program of a full page, optionally with
  /// OOB content. The page's program budget (max_programs_per_page) is
  /// consumed. MLC blocks require initial programs in increasing page order.
  Status ProgramPage(Ppn ppn, const uint8_t* data, const uint8_t* oob = nullptr,
                     uint32_t oob_len = 0, IoTiming* t = nullptr, bool sync = true);

  /// write_delta (Section 7): append `len` bytes at `offset` of an already
  /// programmed page using ISPP. Rejected on MLC MSB pages, on exhausted
  /// program budgets, and on any 0->1 bit transition.
  Status ProgramDelta(Ppn ppn, uint32_t offset, const uint8_t* delta, uint32_t len,
                      IoTiming* t = nullptr, bool sync = true);

  /// Append bytes into the OOB area under the same ISPP rules. Coalesced
  /// with the data-path operation it accompanies: no extra simulated time.
  Status ProgramOob(Ppn ppn, uint32_t offset, const uint8_t* bytes, uint32_t len);

  /// Read the OOB area (transferred together with the page; free).
  Status ReadOob(Ppn ppn, uint8_t* out, uint32_t len);

  /// Erase a block: all pages become 0xFF, wear counter increments.
  Status EraseBlock(Pbn pbn, IoTiming* t = nullptr, bool sync = true);

  /// Correct-and-Refresh (Cai et al., discussed in the paper's Section 2.3):
  /// re-program a page *in place* with `data`, restoring charge levels that
  /// leaked over time. Legal only when every bit transition is 1 -> 0 (the
  /// ISPP rule) — which holds for retention errors, since those flip 0 -> 1.
  /// Does not consume the page's append budget (maintenance operation).
  Status RefreshPage(Ppn ppn, const uint8_t* data, IoTiming* t = nullptr,
                     bool sync = true);

  // -- Power-loss fault injection --------------------------------------------

  /// Arm (or, with a default-constructed policy, disarm) power-loss
  /// injection. Resets the policy RNG and the mutating-op counter, so
  /// `inject_at_op` indices are relative to this call.
  void SetPowerLossPolicy(const PowerLossPolicy& policy);

  /// Restore power after an injected loss. Torn on-media state persists —
  /// only volatile device state (chip/channel queues) resets. Idempotent.
  void PowerCycle();

  bool powered_on() const { return powered_on_; }

  /// Mutating ops (ProgramPage / ProgramDelta / EraseBlock) attempted since
  /// the policy was last set — the crash sweep's injection-index space.
  uint64_t mutation_ops() const { return mutation_ops_; }

  // -- Introspection ----------------------------------------------------------

  /// Structural audit of the device state (differential-checker oracle):
  /// per-page storage invariants that must hold across every program, erase
  /// and torn power-loss path — data allocated iff the page was programmed,
  /// buffer sizes match the geometry, program budgets respected, and no
  /// programmed page sits above its block's in-order frontier. Returns
  /// Corruption describing the first violation.
  Status AuditState() const;

  const PageState& page_state(Ppn ppn) const;
  uint32_t EraseCount(Pbn pbn) const;
  uint64_t TotalEraseOps() const { return stats_.block_erases; }
  /// Highest erase count across all blocks (wear skew indicator).
  uint32_t MaxEraseCount() const;
  /// True once the block exceeded its rated P/E limit.
  bool IsWornOut(Pbn pbn) const;

 private:
  struct BlockState {
    std::vector<PageState> pages;
    uint32_t erase_count = 0;
    /// Highest page index that received its initial program since the last
    /// erase; -1 if none. Enforces in-order programming on MLC.
    int32_t highest_programmed = -1;
  };

  struct ChipState {
    SimTime busy_until = 0;
  };

  Status CheckPpn(Ppn ppn) const;
  BlockState& BlockRef(Pbn pbn);
  const BlockState& BlockRef(Pbn pbn) const;
  PageState& PageRef(Ppn ppn);

  /// Lane the chip is bound to, or null for the shared (legacy) path.
  FlashLane* LaneOf(uint32_t chip);
  /// Counter sink for a command on `chip`: its lane's stats, or stats_.
  DeviceStats& StatsFor(uint32_t chip);
  uint32_t ChipOf(Ppn ppn) const {
    return static_cast<uint32_t>(ppn / geo_.pages_per_chip());
  }

  /// Reserve chip+channel time for an operation; fills `t`. Routed to the
  /// chip's lane when one is bound (reservation queued for DrainLanes()).
  void Occupy(uint32_t chip, uint64_t pre_transfer_bytes, uint64_t op_us,
              uint64_t post_transfer_bytes, bool sync, IoTiming* t);
  void OccupyLane(FlashLane& lane, uint32_t chip, uint64_t pre_transfer_bytes,
                  uint64_t op_us, uint64_t post_transfer_bytes, bool sync,
                  IoTiming* t);

  void MaybeInjectRetention(PageState& page);
  void MaybeInjectInterference(Ppn lsb_ppn);

  /// Consume the next mutating-op index; true if power is lost during it.
  bool DrawPowerLoss();
  /// Program a torn image of target[0..len) into stored[0..len): a random
  /// prefix lands completely, the in-flight 32-bit word gets a random subset
  /// of its pending 1->0 transitions, the rest stays untouched.
  void ApplyTornProgram(uint8_t* stored, const uint8_t* target, uint32_t len);
  /// ISPP-merge an OOB image (bits can only clear) — torn programs that
  /// sequence OOB before data commit it fully before power dies.
  void MergeOob(PageState& page, const uint8_t* oob, uint32_t oob_len);

  Geometry geo_;
  TimingModel timing_;
  ErrorModel errors_;
  std::unique_ptr<SimClock> owned_clock_;
  SimClock* clock_;
  Rng rng_;
  DeviceStats stats_;
  std::vector<BlockState> blocks_;       // flat, chip-major
  std::vector<ChipState> chips_;
  std::vector<SimTime> channel_busy_;    // per channel

  std::vector<std::unique_ptr<FlashLane>> lanes_;
  std::vector<FlashLane*> lane_of_chip_;  // empty until a lane is bound

  PowerLossPolicy power_policy_;
  Rng power_rng_{0x70FF};
  // Atomic so concurrent lane submitters can check power / count mutating
  // ops without racing (relaxed: ordering carried by the lane protocol).
  std::atomic<bool> powered_on_{true};
  std::atomic<uint64_t> mutation_ops_{0};
};

}  // namespace ipa::flash
