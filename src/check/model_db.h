// Pure in-memory reference model of the engine's tuple store.
//
// ModelDb mirrors every Database mutation at the level the paper's storage
// contract is stated: a map from record id to tuple bytes. It knows nothing
// about pages, deltas or flash — which is the point: the differential checker
// (src/check/fuzzer.h) replays every operation against both the real engine
// and this model and fails on the first divergence.
//
// Transaction semantics mirror the engine's single-open-transaction harness:
// mutations land in the working view immediately (the engine's Scan is
// non-transactional and sees staged changes the same way), Commit promotes
// the view to the committed state, Abort and Crash roll the view back to it.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace ipa::check {

class ModelDb {
 public:
  /// Tuple store keyed by Rid::Pack() (unique across tables of one engine).
  using Map = std::map<uint64_t, std::vector<uint8_t>>;

  // -- Mutations (call only after the engine op succeeded) -------------------

  void Insert(uint64_t key, std::vector<uint8_t> tuple) {
    view_[key] = std::move(tuple);
  }
  void Update(uint64_t key, uint32_t offset, const uint8_t* bytes,
              uint32_t len) {
    auto& t = view_[key];
    for (uint32_t i = 0; i < len; i++) t[offset + i] = bytes[i];
  }
  void Replace(uint64_t key, std::vector<uint8_t> tuple) {
    view_[key] = std::move(tuple);
  }
  void Erase(uint64_t key) { view_.erase(key); }

  // -- Transaction boundaries ------------------------------------------------

  void CommitTxn() { committed_ = view_; }
  void AbortTxn() { view_ = committed_; }
  /// Power loss: every staged (uncommitted) change is gone.
  void Crash() { view_ = committed_; }

  // -- Queries ---------------------------------------------------------------

  size_t LiveCount() const { return view_.size(); }
  /// idx-th live key in ascending key order; idx < LiveCount().
  uint64_t KeyAt(size_t idx) const {
    auto it = view_.begin();
    std::advance(it, static_cast<ptrdiff_t>(idx));
    return it->first;
  }
  const std::vector<uint8_t>* Lookup(uint64_t key) const {
    auto it = view_.find(key);
    return it == view_.end() ? nullptr : &it->second;
  }

  /// What a non-transactional engine scan must return right now.
  const Map& view() const { return view_; }
  /// What the engine must serve after crash recovery.
  const Map& committed() const { return committed_; }

 private:
  Map view_;
  Map committed_;
};

}  // namespace ipa::check
