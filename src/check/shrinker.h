// Greedy delta-debugging trace shrinker.
//
// Given a failing trace, produce a (locally) minimal subsequence that still
// fails. Because ops carry raw operands interpreted against the current model
// state (check/fuzzer.h), any subsequence of a valid trace is itself a valid
// trace — removal never creates dangling references, it only changes which
// live keys the surviving ops resolve to. The shrinker therefore hunts for
// any failure, not necessarily the original one; what it returns is the
// smallest misbehaving trace it could isolate, which is what a human wants
// to debug first.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/fuzzer.h"

namespace ipa::check {

struct ShrinkResult {
  std::vector<Op> trace;  ///< The minimized failing trace.
  FuzzResult failure;     ///< Result of replaying the minimized trace.
  uint64_t replays = 0;   ///< Replay budget consumed.
};

/// ddmin-style shrink: truncate past the failing op, then repeatedly try
/// dropping chunks (halving down to single ops) while the trace still fails.
/// `config` supplies the schedule and check cadence. Replays are capped at
/// `max_replays`; the best trace found so far is returned either way.
ShrinkResult ShrinkTrace(const FuzzConfig& config, const std::vector<Op>& trace,
                         uint64_t max_replays = 2000);

/// Multi-line dump of a trace (one FormatOp line per op), for repro files.
std::string FormatTrace(const std::vector<Op>& trace);

}  // namespace ipa::check
