// Invariant oracles for the differential checker.
//
// Three oracle families, each independent of the code paths it audits:
//  * FlashShadow — ISPP monotonicity: between two observations of the same
//    physical page with no intervening erase, stored bits may only go 1 -> 0
//    (an out-of-band copy of the media catches any 0 -> 1 flip the device's
//    own validation missed). Valid only with ErrorModel rates at 0 — the
//    retention injector legitimately flips 0 -> 1.
//  * CheckCounterConservation — the PR-3 metric counters must balance across
//    layers: every device page program is attributable to exactly one FTL
//    cause, every buffer-pool delta flush is a host write_delta, and so on.
//  * AuditMappedDeltaAreas — the raw media image of every mapped page must
//    hold a well-formed contiguous prefix of delta records with an erased
//    tail (storage::AuditDeltaArea), i.e. no torn append survives recovery.
//
// The structural audits FlashArray::AuditState() and NoFtl::AuditRegion()
// complete the set; DeepAudit bundles all of them.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/buffer_pool.h"
#include "flash/flash_array.h"
#include "ftl/noftl.h"

namespace ipa::check {

/// Out-of-band media shadow enforcing ISPP monotonicity across observations.
class FlashShadow {
 public:
  /// Compare the device's current media against the last observation and
  /// update the shadow. Pages whose block was erased in between are
  /// re-captured without comparison. Returns Corruption on any 0 -> 1
  /// transition in stored data or OOB bytes.
  Status ObserveAndCheck(const flash::FlashArray& dev);

 private:
  struct PageShadow {
    uint32_t erase_count = 0;
    std::vector<uint8_t> data;
    std::vector<uint8_t> oob;
  };
  std::unordered_map<uint64_t, PageShadow> pages_;
};

/// Cross-layer counter conservation for one engine stack driving one NoFTL
/// region exclusively (the checker's testbed shape). All counters are
/// per-instance (DeviceStats / RegionStats / BufferStats), so the check is
/// valid under parallel fuzz runs sharing the process-global metric registry.
Status CheckCounterConservation(const flash::DeviceStats& dev,
                                const ftl::RegionStats& reg,
                                const engine::BufferStats& pool);

/// Same conservation family for an engine stack driving one PageFtl
/// exclusively. A page-mapping FTL issues no delta programs, no refreshes
/// and no wear-level swaps, so every device page program is a host write or
/// a GC migration and every erase is GC's (including the lazy re-erases of
/// crash-surviving free blocks, which PageFtl books under gc_erases).
Status CheckPageFtlCounterConservation(const flash::DeviceStats& dev,
                                       const ftl::RegionStats& ftl,
                                       const engine::BufferStats& pool);

/// Audit the raw media delta area of every mapped page of `region`.
/// Only meaningful when no torn write is pending recovery (after a completed
/// RecoverAfterPowerLoss, or during normal operation).
Status AuditMappedDeltaAreas(const flash::FlashArray& dev,
                             const ftl::NoFtl& noftl, ftl::RegionId region);

}  // namespace ipa::check
