#include "check/shrinker.h"

#include <algorithm>
#include <cstddef>

namespace ipa::check {

namespace {

/// Replay `trace` and, on failure, truncate it just past the failing op —
/// everything after the first divergence is noise.
bool FailsAndTruncate(const FuzzConfig& cfg, std::vector<Op>& trace,
                      FuzzResult* failure, uint64_t* replays) {
  (*replays)++;
  FuzzResult r = ReplayTrace(cfg, trace);
  if (r.ok) return false;
  *failure = r;
  if (r.failed_op + 1 < trace.size()) {
    trace.resize(r.failed_op + 1);
  }
  return true;
}

}  // namespace

ShrinkResult ShrinkTrace(const FuzzConfig& config, const std::vector<Op>& trace,
                         uint64_t max_replays) {
  ShrinkResult out;
  out.trace = trace;
  if (!FailsAndTruncate(config, out.trace, &out.failure, &out.replays)) {
    // The input does not fail — nothing to shrink.
    out.trace.clear();
    return out;
  }

  // ddmin: try removing chunks of size n/2, n/4, ..., 1; restart from large
  // chunks whenever a removal succeeds (the trace changed shape).
  bool progress = true;
  while (progress && out.replays < max_replays) {
    progress = false;
    for (size_t chunk = std::max<size_t>(out.trace.size() / 2, 1); chunk >= 1;
         chunk /= 2) {
      size_t start = 0;
      while (start < out.trace.size() && out.replays < max_replays) {
        size_t len = std::min(chunk, out.trace.size() - start);
        std::vector<Op> candidate;
        candidate.reserve(out.trace.size() - len);
        candidate.insert(candidate.end(), out.trace.begin(),
                         out.trace.begin() + static_cast<ptrdiff_t>(start));
        candidate.insert(
            candidate.end(),
            out.trace.begin() + static_cast<ptrdiff_t>(start + len),
            out.trace.end());
        FuzzResult failure;
        if (!candidate.empty() &&
            FailsAndTruncate(config, candidate, &failure, &out.replays)) {
          out.trace = std::move(candidate);
          out.failure = failure;
          progress = true;
          // keep the same start: the next chunk slid into place
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  return out;
}

std::string FormatTrace(const std::vector<Op>& trace) {
  std::string out;
  for (size_t i = 0; i < trace.size(); i++) {
    out += std::to_string(i) + ": " + FormatOp(trace[i]) + "\n";
  }
  return out;
}

}  // namespace ipa::check
