#include "check/invariants.h"

#include <string>

#include "storage/delta_record.h"

namespace ipa::check {

Status FlashShadow::ObserveAndCheck(const flash::FlashArray& dev) {
  const auto& g = dev.geometry();
  uint64_t blocks = static_cast<uint64_t>(g.channels) * g.chips_per_channel *
                    g.blocks_per_chip;
  for (flash::Pbn pbn = 0; pbn < blocks; pbn++) {
    uint32_t erases = dev.EraseCount(pbn);
    for (uint32_t p = 0; p < g.pages_per_block; p++) {
      flash::Ppn ppn = pbn * g.pages_per_block + p;
      const flash::PageState& ps = dev.page_state(ppn);
      PageShadow& sh = pages_[ppn];
      bool comparable = sh.erase_count == erases;
      if (comparable) {
        // No erase since the last look: every stored bit may only have
        // dropped. A byte position absent before (erased, 0xFF) can take any
        // value; a byte present before must be a bit-subset now.
        for (size_t i = 0; i < sh.data.size() && i < ps.data.size(); i++) {
          if (ps.data[i] & static_cast<uint8_t>(~sh.data[i])) {
            return Status::Corruption(
                "ISPP violation: data bit 0->1 at block " +
                std::to_string(pbn) + " page " + std::to_string(p) +
                " byte " + std::to_string(i));
          }
        }
        for (size_t i = 0; i < sh.oob.size() && i < ps.oob.size(); i++) {
          if (ps.oob[i] & static_cast<uint8_t>(~sh.oob[i])) {
            return Status::Corruption(
                "ISPP violation: OOB bit 0->1 at block " + std::to_string(pbn) +
                " page " + std::to_string(p) + " byte " + std::to_string(i));
          }
        }
        if (!sh.data.empty() && ps.data.empty()) {
          return Status::Corruption("page lost its data without an erase: block " +
                                    std::to_string(pbn) + " page " +
                                    std::to_string(p));
        }
      }
      sh.erase_count = erases;
      sh.data = ps.data;
      sh.oob = ps.oob;
    }
  }
  return Status::OK();
}

namespace {

Status Mismatch(const char* what, uint64_t lhs, uint64_t rhs) {
  return Status::Corruption("counter conservation: " + std::string(what) +
                            " (" + std::to_string(lhs) +
                            " != " + std::to_string(rhs) + ")");
}

}  // namespace

Status CheckCounterConservation(const flash::DeviceStats& dev,
                                const ftl::RegionStats& reg,
                                const engine::BufferStats& pool) {
  // Every device page program has exactly one FTL-level cause.
  uint64_t causes = reg.host_page_writes + reg.gc_page_migrations +
                    reg.wear_level_migrations + reg.torn_pages_quarantined;
  if (dev.page_programs != causes) {
    return Mismatch("page programs vs host+gc+wear+quarantine causes",
                    dev.page_programs, causes);
  }
  if (dev.delta_programs != reg.host_delta_writes) {
    return Mismatch("delta programs vs host delta writes", dev.delta_programs,
                    reg.host_delta_writes);
  }
  if (dev.delta_bytes_programmed != reg.delta_bytes_written) {
    return Mismatch("delta bytes programmed vs written",
                    dev.delta_bytes_programmed, reg.delta_bytes_written);
  }
  uint64_t erase_causes = reg.gc_erases + reg.wear_level_swaps;
  if (dev.block_erases != erase_causes) {
    return Mismatch("block erases vs gc+wear causes", dev.block_erases,
                    erase_causes);
  }
  if (dev.page_refreshes != reg.scrub_refreshes) {
    return Mismatch("page refreshes vs scrub refreshes", dev.page_refreshes,
                    reg.scrub_refreshes);
  }
  // Every buffer-pool writeback is a host command of the matching kind.
  if (pool.ipa_flushes != reg.host_delta_writes) {
    return Mismatch("pool delta flushes vs host delta writes",
                    pool.ipa_flushes, reg.host_delta_writes);
  }
  if (pool.oop_flushes != reg.host_page_writes) {
    return Mismatch("pool page flushes vs host page writes", pool.oop_flushes,
                    reg.host_page_writes);
  }
  // Attempted flushes bound the completed ones (torn flushes complete no
  // write; clean-diff flushes touch no device).
  if (pool.flushes < pool.clean_diff_skips + pool.ipa_flushes + pool.oop_flushes) {
    return Mismatch("flush attempts vs completed flushes", pool.flushes,
                    pool.clean_diff_skips + pool.ipa_flushes + pool.oop_flushes);
  }
  return Status::OK();
}

Status CheckPageFtlCounterConservation(const flash::DeviceStats& dev,
                                       const ftl::RegionStats& ftl,
                                       const engine::BufferStats& pool) {
  // A page-mapping FTL programs pages for exactly two reasons: host
  // out-of-place writes and GC migrations. Torn programs complete no write
  // on either side of the equation.
  uint64_t causes = ftl.host_page_writes + ftl.gc_page_migrations;
  if (dev.page_programs != causes) {
    return Mismatch("page programs vs host+gc causes", dev.page_programs,
                    causes);
  }
  // write_delta is structurally impossible behind a cooked device.
  if (dev.delta_programs != 0 || ftl.host_delta_writes != 0) {
    return Mismatch("page-mapping FTL issued delta programs",
                    dev.delta_programs, ftl.host_delta_writes);
  }
  // Every erase is GC's: on-demand victim erases plus the lazy re-erases of
  // free blocks whose physical state a crash left unknown.
  if (dev.block_erases != ftl.gc_erases) {
    return Mismatch("block erases vs gc erases", dev.block_erases,
                    ftl.gc_erases);
  }
  if (dev.page_refreshes != 0) {
    return Mismatch("page-mapping FTL issued refreshes", dev.page_refreshes, 0);
  }
  // Every buffer-pool writeback falls back to a full-page host write.
  if (pool.ipa_flushes != 0) {
    return Mismatch("pool delta flushes behind a cooked device",
                    pool.ipa_flushes, 0);
  }
  if (pool.oop_flushes != ftl.host_page_writes) {
    return Mismatch("pool page flushes vs host page writes", pool.oop_flushes,
                    ftl.host_page_writes);
  }
  if (pool.flushes < pool.clean_diff_skips + pool.oop_flushes) {
    return Mismatch("flush attempts vs completed flushes", pool.flushes,
                    pool.clean_diff_skips + pool.oop_flushes);
  }
  return Status::OK();
}

Status AuditMappedDeltaAreas(const flash::FlashArray& dev,
                             const ftl::NoFtl& noftl, ftl::RegionId region) {
  const auto& g = dev.geometry();
  uint64_t logical = noftl.region_config(region).logical_pages;
  for (ftl::Lba lba = 0; lba < logical; lba++) {
    if (!noftl.IsMapped(region, lba)) continue;
    flash::Ppn ppn = noftl.PhysicalOf(region, lba);
    const flash::PageState& ps = dev.page_state(ppn);
    if (ps.data.empty()) continue;  // caught by NoFtl::AuditRegion
    Status s = storage::AuditDeltaArea(ps.data.data(), g.page_size);
    if (!s.ok()) {
      return Status::Corruption("lba " + std::to_string(lba) + " (ppn " +
                                std::to_string(ppn) + "): " + s.message());
    }
  }
  return Status::OK();
}

}  // namespace ipa::check
