// Deterministic differential fuzz harness.
//
// A run is fully determined by (seed, op count, schedule): the op trace is
// generated up front from the seed, then replayed against a private simulated
// stack (FlashArray -> NoFTL -> Database) and the pure reference model
// (check/model_db.h) in lock-step. After every step the cheap oracles run
// (counter conservation); every deep_check_every steps — and after every
// recovery — the deep oracles run too (scan equivalence, flash/region
// structural audits, media delta-area audit, ISPP shadow).
//
// Power loss is part of the op mix: a kPowerCut op arms the device's
// PowerLossPolicy, some later flash mutation tears mid-way, every engine call
// starts failing Unavailable, and the harness runs the full crash protocol
// (SimulateCrash -> PowerCycle -> RecoverAfterPowerLoss, with optional re-cut
// *during* recovery for double-crash coverage) before verifying the surviving
// state against the model's committed view.
//
// Ops carry raw operands interpreted against the current model state (key
// selection by rank among live keys), so a shrunk subsequence of a trace is
// still a meaningful trace — the property the shrinker (check/shrinker.h)
// relies on.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ipa::check {

/// Testbed flavors of the seed matrix (paper-relevant IPA deployments).
enum class Schedule : uint8_t {
  kSlc,          ///< SLC region, managed ECC, eager cleaning (the default).
  kSlcNonEager,  ///< Same, with Shore-MT "non-eager" thresholds.
  kPSlc,         ///< MLC device driven in pSLC mode (LSB pages only).
  kOddMlc,       ///< MLC device, appends on LSB pages, fallback on MSB.
  kSlcNoEcc,     ///< No managed ECC: crash consistency is not promised
                 ///< (Section 6.2), so this schedule runs without power cuts.
  kPageFtl,      ///< Conventional page-mapping FTL (cost-benefit GC) instead
                 ///< of a NoFTL region: no write_delta, OOB reverse-map
                 ///< mounts, GC/mount ops torn by power cuts.
  kSharded,      ///< Two-partition shared-nothing engine (ShardedDatabase,
                 ///< sequential driver): fast-path single-partition txns,
                 ///< cross-partition txns on the locking path, power cuts,
                 ///< per-partition WAL recovery. Oracles run against the
                 ///< union of both partitions (stats summed per layer).
  kStreamFtl,    ///< Stream-aware page-mapping FTL (per-stream frontiers,
                 ///< warm/cold GC): tagged writes, OOB reverse-map mounts
                 ///< carrying the stream byte, GC/mount ops torn by power
                 ///< cuts, counter conservation across all frontiers.
  kRepl,         ///< Primary + replica pair bridged by the delta-changeset
                 ///< stream (src/repl): DML runs on the primary, kShip ops
                 ///< deliver frames to the replica, power cuts hit EITHER
                 ///< node (with optional re-cut during that node's
                 ///< recovery), chain gaps heal via snapshot catch-up, and
                 ///< kReplSync drains the stream and demands byte-identical
                 ///< logical convergence with the model's committed view.
  kDeltaCodec,   ///< Mixed-codec delta areas (docs/DELTA_COMPRESSION.md):
                 ///< ONE engine over TWO NoFTL regions/tablespaces, t0 in
                 ///< one codec and t1 in the other (kDelta vs
                 ///< kDeltaCompress, swapped by seed parity), managed ECC,
                 ///< power cuts on — torn compressed records must
                 ///< quarantine, never decode as garbage. Scrub/wear-level
                 ///< ops alternate regions; oracles sum both regions and
                 ///< deep-audit each delta area.
};
constexpr int kNumSchedules = 10;

const char* ScheduleName(Schedule s);
bool ParseSchedule(const std::string& name, Schedule* out);

/// One generated operation. Operands a/b/c and the payload seed are raw
/// 64-bit draws; their interpretation (key rank, sizes, offsets) happens at
/// execution time against the current model state.
struct Op {
  enum class Kind : uint8_t {
    kInsert,
    kUpdate,        ///< Fixed-size in-place byte patch (the IPA-friendly op).
    kUpdateResize,  ///< Whole-tuple replacement, possibly relocating.
    kDelete,
    kRead,          ///< Point lookup, verified against the model inline.
    kCommit,
    kAbort,
    kScanCheck,     ///< Full-table scan equivalence against the model view.
    kCheckpoint,
    kScrub,         ///< Correct-and-Refresh maintenance pass.
    kWearLevel,     ///< Static wear-leveling swap attempt.
    kPowerCut,      ///< Arm the device power-loss policy (kRepl: either node).
    kShip,          ///< kRepl only: deliver the oldest in-flight frame.
    kReplSync,      ///< kRepl only: drain the stream, check convergence.
  };
  Kind kind = Kind::kInsert;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t seed = 0;  ///< Payload RNG seed for this op.
};

struct FuzzConfig {
  uint64_t seed = 1;
  uint64_t ops = 200;
  Schedule schedule = Schedule::kSlc;
  /// Run the deep oracles every this many ops (and always after recovery
  /// and at the end of the run).
  uint32_t deep_check_every = 25;
  /// End every run with an unannounced crash + recovery + committed-state
  /// verification, so recovery is exercised even on cut-free traces.
  bool final_crash = true;
};

struct FuzzResult {
  bool ok = true;
  std::string error;       ///< First divergence / invariant violation.
  size_t failed_op = 0;    ///< Trace index of the failing op (when !ok).
  uint64_t commits = 0;
  uint64_t crashes = 0;    ///< Power losses survived (incl. double-crashes).
  uint64_t torn_bytes = 0;       ///< Torn delta bytes dropped by recovery.
  uint64_t quarantined = 0;      ///< Pages quarantined by mount scans.
  uint32_t fingerprint = 0;      ///< CRC over final committed state + stats.
};

/// Generate the full op trace for a config (pure function of seed/ops/schedule).
std::vector<Op> GenerateOps(const FuzzConfig& config);

/// Replay an explicit trace (the shrinker's entry point). `config` supplies
/// the schedule and check cadence; its seed/ops fields are ignored.
FuzzResult ReplayTrace(const FuzzConfig& config, const std::vector<Op>& trace);

/// GenerateOps + ReplayTrace.
FuzzResult RunFuzz(const FuzzConfig& config);

/// Human/parse-friendly one-liners.
std::string FormatOp(const Op& op);
/// The repro line printed on failure, e.g.
///   ipa_fuzz --schedule slc --seed 42 --ops 200 --deep-check 25
std::string ReproLine(const FuzzConfig& config);

}  // namespace ipa::check
