#include "check/fuzzer.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <sstream>

#include "check/invariants.h"
#include "check/model_db.h"
#include "common/crc32.h"
#include "common/metrics.h"
#include "common/random.h"
#include "engine/database.h"
#include "engine/sharded_database.h"
#include "flash/flash_array.h"
#include "flash/timing.h"
#include "ftl/noftl.h"
#include "ftl/page_ftl.h"
#include "ftl/stream_ftl.h"
#include "repl/node.h"
#include "storage/page_format.h"

namespace ipa::check {

namespace {

constexpr const char* kScheduleNames[kNumSchedules] = {
    "slc",       "slc-noneager", "pslc",    "oddmlc",
    "slc-noecc", "pageftl",      "sharded", "streamftl",
    "replication", "deltacodec"};

constexpr const char* kKindNames[] = {
    "insert", "update",     "resize",     "delete", "read",      "commit",
    "abort",  "scancheck",  "checkpoint", "scrub",  "wearlevel", "powercut",
    "ship",   "replsync"};

/// Deterministic payload bytes for one op.
std::vector<uint8_t> Payload(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
  return v;
}

/// One fully private simulated stack (same shape as the crash sweep's).
struct Testbed {
  flash::FlashArray dev;
  ftl::NoFtl noftl;                       // cooked-FTL schedules leave it idle
  std::unique_ptr<ftl::PageFtl> pageftl;  // kPageFtl schedules only
  std::unique_ptr<ftl::StreamFtl> streamftl;  // kStreamFtl schedules only
  /// The stack's FTL backend, whichever flavor is active.
  ftl::FtlBackend* backend = nullptr;
  std::unique_ptr<engine::Database> db;
  ftl::RegionId region = 0;
  engine::TablespaceId ts = 0;
  engine::TableId tables[2] = {0, 0};

  /// kDeltaCodec only: the second region/tablespace (t1 lives there, encoded
  /// with the OTHER byte codec than t0's).
  ftl::RegionId region2 = 0;
  engine::TablespaceId ts2 = 0;

  /// kSharded only: one shared-nothing partition per chip pair.
  struct ShardPart {
    std::unique_ptr<engine::Database> db;
    ftl::RegionId region = 0;
    engine::TablespaceId ts = 0;
    engine::TableId tables[2] = {0, 0};
  };
  std::vector<ShardPart> parts;
  std::unique_ptr<engine::ShardedDatabase> sharded;

  /// kRepl only: a second fully private stack (the replica) plus the two
  /// replication endpoints. Declared after the engines they attach to, so
  /// the nodes detach their hooks before the Databases die.
  std::unique_ptr<Testbed> replica;
  std::unique_ptr<repl::ReplNode> repl_primary;
  std::unique_ptr<repl::ReplNode> repl_replica;

  Testbed(const flash::Geometry& g, const flash::TimingModel& t)
      : dev(g, t), noftl(&dev) {}
};

flash::Geometry GeoFor(Schedule s) {
  flash::Geometry g;
  g.channels = 2;
  g.chips_per_channel = 2;
  g.blocks_per_chip = 48;
  g.pages_per_block = 16;
  g.page_size = 2048;
  if (s == Schedule::kPSlc || s == Schedule::kOddMlc) {
    g.cell_type = flash::CellType::kMlc;
  }
  return g;
}

/// `seed` matters only to kDeltaCodec: its parity decides which of the two
/// tablespaces carries kDelta vs kDeltaCompress, so both placements get
/// fuzzed across a seed sweep while any single seed stays reproducible.
Result<std::unique_ptr<Testbed>> MakeTestbed(Schedule s, uint64_t seed = 0) {
  flash::Geometry g = GeoFor(s);
  auto tb = std::make_unique<Testbed>(g, flash::TimingFor(g.cell_type));

  engine::EngineConfig pec;
  if (s == Schedule::kPageFtl || s == Schedule::kStreamFtl) {
    // Cooked-device stack: page-mapping FTL instead of a NoFTL region, no
    // scheme (write_delta is structurally impossible behind it). The
    // stream-aware flavor takes the same stack; the Database's buffer pool
    // tags its writebacks (heap vs index) and GC relocations segregate
    // below the block interface.
    if (s == Schedule::kStreamFtl) {
      ftl::StreamFtlConfig sc;
      sc.name = ScheduleName(s);
      sc.logical_pages = 256;
      IPA_ASSIGN_OR_RETURN(tb->streamftl,
                           ftl::StreamFtl::Create(&tb->dev, sc));
      tb->backend = tb->streamftl.get();
    } else {
      ftl::PageFtlConfig pc;
      pc.name = ScheduleName(s);
      pc.logical_pages = 256;
      pc.gc_policy = ftl::GcPolicy::kCostBenefit;
      IPA_ASSIGN_OR_RETURN(tb->pageftl, ftl::PageFtl::Create(&tb->dev, pc));
      tb->backend = tb->pageftl.get();
    }
    pec.page_size = g.page_size;
    pec.buffer_pages = 12;
    pec.log_capacity_bytes = 1 << 20;
    pec.log_reclaim_threshold = 0.375;
    tb->db = std::make_unique<engine::Database>(nullptr, pec, &tb->dev.clock());
    IPA_ASSIGN_OR_RETURN(
        tb->ts, tb->db->CreateTablespaceOn("fuzz", tb->backend, {}));
    IPA_ASSIGN_OR_RETURN(tb->tables[0], tb->db->CreateTable("t0", tb->ts));
    IPA_ASSIGN_OR_RETURN(tb->tables[1], tb->db->CreateTable("t1", tb->ts));
    return tb;
  }

  if (s == Schedule::kSharded) {
    // Two shared-nothing partitions, one channel (2 chips) each, composed
    // behind a ShardedDatabase. Sequential driver: power-loss injection
    // needs deterministic crash points (docs/SHARDING.md), and the oracles
    // compare against one global model.
    storage::Scheme scheme{.n = 2, .m = 4, .v = 12};
    std::vector<engine::ShardedDatabase::Partition> sparts;
    tb->parts.resize(2);
    for (uint32_t p = 0; p < 2; p++) {
      Testbed::ShardPart& part = tb->parts[p];
      ftl::RegionConfig rc;
      rc.name = std::string("sharded") + static_cast<char>('0' + p);
      rc.logical_pages = 128;
      rc.ipa_mode = ftl::IpaMode::kSlc;
      rc.delta_area_offset = g.page_size - scheme.AreaBytes();
      rc.manage_ecc = true;  // mount scans must scrub torn appends (6.2)
      rc.chips = {2 * p, 2 * p + 1};
      IPA_ASSIGN_OR_RETURN(part.region, tb->noftl.CreateRegion(rc));
      engine::EngineConfig ec;
      ec.page_size = g.page_size;
      ec.buffer_pages = 12;
      ec.log_capacity_bytes = 1 << 20;
      ec.log_reclaim_threshold = 0.375;
      part.db = std::make_unique<engine::Database>(&tb->noftl, ec);
      IPA_ASSIGN_OR_RETURN(
          part.ts, part.db->CreateTablespace("fuzz", part.region, scheme));
      IPA_ASSIGN_OR_RETURN(part.tables[0],
                           part.db->CreateTable("t0", part.ts));
      IPA_ASSIGN_OR_RETURN(part.tables[1],
                           part.db->CreateTable("t1", part.ts));
      sparts.push_back({part.db.get(), nullptr});
    }
    tb->sharded = std::make_unique<engine::ShardedDatabase>(
        std::move(sparts), &tb->dev, engine::ShardedDatabase::Config{});
    return tb;
  }

  storage::Scheme scheme{.n = 2, .m = 4, .v = 12};
  const bool mixed = s == Schedule::kDeltaCodec;
  if (mixed) {
    // Mixed-codec pair: t0's tablespace gets one byte codec, t1's the other,
    // swapped by seed parity so both placements are covered across a sweep.
    scheme.codec = static_cast<uint8_t>((seed & 1) != 0
                                            ? storage::DeltaCodec::kDeltaCompress
                                            : storage::DeltaCodec::kDelta);
  }
  ftl::RegionConfig rc;
  rc.name = ScheduleName(s);
  rc.logical_pages = mixed ? 128 : 256;  // two regions share the device
  rc.ipa_mode = s == Schedule::kPSlc     ? ftl::IpaMode::kPSlc
                : s == Schedule::kOddMlc ? ftl::IpaMode::kOddMlc
                                         : ftl::IpaMode::kSlc;
  rc.delta_area_offset = g.page_size - scheme.AreaBytes();
  rc.manage_ecc = s != Schedule::kSlcNoEcc;
  IPA_ASSIGN_OR_RETURN(tb->region, tb->noftl.CreateRegion(rc));

  engine::EngineConfig ec;
  ec.page_size = g.page_size;
  ec.buffer_pages = 12;  // tiny pool: constant steal under the workload
  ec.log_capacity_bytes = 1 << 20;
  ec.log_reclaim_threshold = 0.375;
  if (s == Schedule::kSlcNonEager) {
    ec.dirty_flush_threshold = 0.75;
    ec.log_reclaim_threshold = 0.9;
  }
  tb->db = std::make_unique<engine::Database>(&tb->noftl, ec);
  IPA_ASSIGN_OR_RETURN(tb->ts, tb->db->CreateTablespace("fuzz", tb->region, scheme));
  tb->backend = tb->noftl.region_device(tb->region);

  if (mixed) {
    storage::Scheme scheme2 = scheme;
    scheme2.codec = static_cast<uint8_t>(
        scheme.delta_codec() == storage::DeltaCodec::kDelta
            ? storage::DeltaCodec::kDeltaCompress
            : storage::DeltaCodec::kDelta);
    ftl::RegionConfig rc2 = rc;
    rc2.name = "deltacodec2";  // AreaBytes() is codec-independent: same offset
    IPA_ASSIGN_OR_RETURN(tb->region2, tb->noftl.CreateRegion(rc2));
    IPA_ASSIGN_OR_RETURN(
        tb->ts2, tb->db->CreateTablespace("fuzz2", tb->region2, scheme2));
    IPA_ASSIGN_OR_RETURN(tb->tables[0], tb->db->CreateTable("t0", tb->ts));
    IPA_ASSIGN_OR_RETURN(tb->tables[1], tb->db->CreateTable("t1", tb->ts2));
    return tb;
  }

  IPA_ASSIGN_OR_RETURN(tb->tables[0], tb->db->CreateTable("t0", tb->ts));
  IPA_ASSIGN_OR_RETURN(tb->tables[1], tb->db->CreateTable("t1", tb->ts));

  if (s == Schedule::kRepl) {
    // Replica: a second private stack of the same shape (its own device, its
    // own WAL), bridged only by the changeset stream the runner ships.
    auto rep = MakeTestbed(Schedule::kSlc);
    if (!rep.ok()) return rep.status();
    tb->replica = std::move(rep.value());
    IPA_ASSIGN_OR_RETURN(
        tb->repl_primary,
        repl::ReplNode::Attach(tb->db.get(), tb->ts,
                               {tb->tables[0], tb->tables[1]},
                               repl::ReplConfig{.writer = 1, .writable = true}));
    IPA_ASSIGN_OR_RETURN(
        tb->repl_replica,
        repl::ReplNode::Attach(tb->replica->db.get(), tb->replica->ts,
                               {tb->replica->tables[0], tb->replica->tables[1]},
                               repl::ReplConfig{.writer = 2}));
  }
  return tb;
}

/// Replays one trace against a fresh testbed and the reference model.
class Runner {
 public:
  explicit Runner(const FuzzConfig& cfg) : cfg_(cfg) {}

  FuzzResult Run(const std::vector<Op>& trace) {
    auto tb = MakeTestbed(cfg_.schedule, cfg_.seed);
    if (!tb.ok()) {
      return Fail(0, Status::Internal("testbed: " + tb.status().ToString()));
    }
    tb_ = std::move(tb.value());

    for (size_t i = 0; i < trace.size(); i++) {
      Status s = Execute(trace[i]);
      if (s.IsUnavailable()) s = HandleCrash();
      if (s.ok()) s = CheapCheck();
      if (s.ok() && cfg_.deep_check_every > 0 &&
          (i + 1) % cfg_.deep_check_every == 0) {
        s = DeepCheck(model_.view());
        if (s.IsUnavailable()) s = HandleCrash();
      }
      if (!s.ok()) return Fail(i, s, &trace[i]);
    }

    // Wrap up: commit the open transaction, then crash once more so every
    // trace exercises recovery, then the final deep verification.
    size_t end = trace.size();
    if (txn_ != engine::kInvalidTxn || s_open_) {
      Op commit;
      commit.kind = Op::Kind::kCommit;
      Status s = Execute(commit);
      if (s.IsUnavailable()) s = HandleCrash();
      if (!s.ok()) return Fail(end, s);
    }
    if (cfg_.final_crash) {
      model_.Crash();
      txn_ = engine::kInvalidTxn;
      s_open_ = false;
      CrashEngine();
      tb_->dev.PowerCycle();
      Status s = RecoverLoop();
      if (s.ok() && Repl()) s = RecoverPrimaryRepl();
      if (s.ok()) s = DeepCheck(model_.committed());
      if (!s.ok()) return Fail(end, s);
    }
    Status s = DeepCheck(model_.view());
    if (!s.ok()) return Fail(end, s);

    if (Repl()) {
      // The headline oracle: after the final crash + recovery + catch-up the
      // replica must converge to the model's committed view, byte for byte.
      Status c = ReplSync();
      if (c.IsUnavailable()) {
        c = HandleCrash();
        if (c.ok()) c = ReplSync();
      }
      if (!c.ok()) return Fail(end, c);
    }

    const ftl::RegionStats rs = BackendStats();
    res_.torn_bytes = rs.torn_delta_bytes_dropped;
    res_.quarantined = rs.torn_pages_quarantined;
    res_.fingerprint = Fingerprint();
    return res_;
  }

 private:
  FuzzResult Fail(size_t op_index, const Status& s, const Op* op = nullptr) {
    res_.ok = false;
    res_.failed_op = op_index;
    res_.error = s.ToString();
    if (op != nullptr) {
      res_.error += " [op " + std::to_string(op_index) + ": " + FormatOp(*op) + "]";
    }
    return res_;
  }

  void EnsureTxn() {
    if (txn_ == engine::kInvalidTxn) txn_ = tb_->db->Begin();
  }

  Status ScanAll(ModelDb::Map* got) {
    if (Sharded()) {
      // Model keys are global keys: the partition-local rid tagged with its
      // partition (ShardedDatabase::PackGlobal), so the union of the
      // per-partition scans is directly comparable to the model view.
      for (uint32_t p = 0; p < tb_->parts.size(); p++) {
        for (engine::TableId t : tb_->parts[p].tables) {
          IPA_RETURN_NOT_OK(tb_->parts[p].db->Scan(
              t, [&](engine::Rid rid, std::span<const uint8_t> bytes) {
                (*got)[engine::ShardedDatabase::PackGlobal(p, rid)] =
                    std::vector<uint8_t>(bytes.begin(), bytes.end());
                return true;
              }));
        }
      }
      return Status::OK();
    }
    for (engine::TableId t : tb_->tables) {
      IPA_RETURN_NOT_OK(tb_->db->Scan(
          t, [&](engine::Rid rid, std::span<const uint8_t> bytes) {
            (*got)[rid.Pack()] =
                std::vector<uint8_t>(bytes.begin(), bytes.end());
            return true;
          }));
    }
    return Status::OK();
  }

  Status CheckEquivalence(const ModelDb::Map& want) {
    ModelDb::Map got;
    IPA_RETURN_NOT_OK(ScanAll(&got));
    if (got == want) return Status::OK();
    for (const auto& [k, v] : want) {
      auto it = got.find(k);
      if (it == got.end()) {
        return Status::Corruption("equivalence: tuple " + std::to_string(k) +
                                  " missing from the engine");
      }
      if (it->second != v) {
        size_t d = 0;
        while (d < v.size() && d < it->second.size() && it->second[d] == v[d]) d++;
        return Status::Corruption(
            "equivalence: tuple " + std::to_string(k) + " diverges at byte " +
            std::to_string(d) + " (engine size " +
            std::to_string(it->second.size()) + ", model size " +
            std::to_string(v.size()) + ")");
      }
    }
    for (const auto& [k, v] : got) {
      if (want.find(k) == want.end()) {
        return Status::Corruption("equivalence: phantom tuple " +
                                  std::to_string(k) + " in the engine");
      }
    }
    return Status::Corruption("equivalence: scans diverge");
  }

  bool Sharded() const { return cfg_.schedule == Schedule::kSharded; }
  bool Repl() const { return cfg_.schedule == Schedule::kRepl; }
  bool MixedCodec() const { return cfg_.schedule == Schedule::kDeltaCodec; }

  static void AccumulateRegionStats(ftl::RegionStats* sum,
                                    const ftl::RegionStats& rs) {
    sum->host_reads += rs.host_reads;
    sum->host_page_writes += rs.host_page_writes;
    sum->host_delta_writes += rs.host_delta_writes;
    sum->delta_bytes_written += rs.delta_bytes_written;
    sum->delta_fallbacks += rs.delta_fallbacks;
    sum->gc_page_migrations += rs.gc_page_migrations;
    sum->gc_erases += rs.gc_erases;
    sum->ecc_corrected_bits += rs.ecc_corrected_bits;
    sum->ecc_uncorrectable += rs.ecc_uncorrectable;
    sum->torn_delta_bytes_dropped += rs.torn_delta_bytes_dropped;
    sum->torn_pages_quarantined += rs.torn_pages_quarantined;
    sum->scrub_refreshes += rs.scrub_refreshes;
    sum->wear_level_migrations += rs.wear_level_migrations;
    sum->wear_level_swaps += rs.wear_level_swaps;
  }

  /// kSharded: one device serves both partitions' regions, so the
  /// conservation oracle compares device counters against the per-layer sums.
  ftl::RegionStats SumRegionStats() const {
    ftl::RegionStats sum;
    for (const auto& part : tb_->parts) {
      AccumulateRegionStats(&sum, tb_->noftl.region_stats(part.region));
    }
    return sum;
  }

  /// kDeltaCodec: both mixed-codec regions share the device, so the oracles
  /// compare device counters against the two-region sum.
  ftl::RegionStats SumCodecRegionStats() const {
    ftl::RegionStats sum;
    AccumulateRegionStats(&sum, tb_->noftl.region_stats(tb_->region));
    AccumulateRegionStats(&sum, tb_->noftl.region_stats(tb_->region2));
    return sum;
  }

  engine::BufferStats SumBufferStats() const {
    engine::BufferStats sum;
    for (const auto& part : tb_->parts) {
      const engine::BufferStats& bs = part.db->buffer_pool().stats();
      sum.fetches += bs.fetches;
      sum.hits += bs.hits;
      sum.misses += bs.misses;
      sum.evictions += bs.evictions;
      sum.flushes += bs.flushes;
      sum.clean_diff_skips += bs.clean_diff_skips;
      sum.ipa_flushes += bs.ipa_flushes;
      sum.oop_flushes += bs.oop_flushes;
      sum.ipa_fallbacks += bs.ipa_fallbacks;
      sum.cleaner_runs += bs.cleaner_runs;
      sum.delta_records_written += bs.delta_records_written;
    }
    return sum;
  }

  /// Backend stats for reporting/fingerprinting: the single region's, or the
  /// per-partition sum under kSharded.
  ftl::RegionStats BackendStats() const {
    if (Sharded()) return SumRegionStats();
    if (MixedCodec()) return SumCodecRegionStats();
    return tb_->backend->stats();
  }

  /// Satellite of the torn-record handling (docs/DELTA_COMPRESSION.md):
  /// every torn byte-codec record the read path rejects quarantines exactly
  /// one tail, so the two process-wide counters must stay equal forever.
  Status CheckTornCounterConservation() const {
    metrics::Snapshot snap = metrics::Registry::Instance().TakeSnapshot();
    uint64_t rejected = snap.Counter("storage.delta.rejected_torn");
    uint64_t quarantined = snap.Counter("storage.delta.quarantined_tails");
    if (rejected != quarantined) {
      return Status::Corruption(
          "torn-counter conservation: rejected_torn=" +
          std::to_string(rejected) + " != quarantined_tails=" +
          std::to_string(quarantined));
    }
    return Status::OK();
  }

  /// Cheap per-op oracles.
  Status CheapCheck() {
    if (!tb_->dev.powered_on()) {
      return Status::Internal("device left powered off after op handling");
    }
    if (cfg_.schedule == Schedule::kPageFtl ||
        cfg_.schedule == Schedule::kStreamFtl) {
      // Both cooked FTLs honor the same conservation contract: every device
      // program is a host write or a GC migration, every erase is a GC
      // erase, and no deltas exist below the block interface.
      return CheckPageFtlCounterConservation(tb_->dev.stats(),
                                             tb_->backend->stats(),
                                             tb_->db->buffer_pool().stats());
    }
    if (Sharded()) {
      return CheckCounterConservation(tb_->dev.stats(), SumRegionStats(),
                                      SumBufferStats());
    }
    if (MixedCodec()) {
      return CheckCounterConservation(tb_->dev.stats(), SumCodecRegionStats(),
                                      tb_->db->buffer_pool().stats());
    }
    if (Repl()) {
      if (!tb_->replica->dev.powered_on()) {
        return Status::Internal("replica left powered off after op handling");
      }
      IPA_RETURN_NOT_OK(CheckCounterConservation(
          tb_->replica->dev.stats(),
          tb_->replica->noftl.region_stats(tb_->replica->region),
          tb_->replica->db->buffer_pool().stats()));
      // Stream conservation: the replica never applies frames the primary
      // did not emit (counters are monotone across both nodes' crashes).
      const repl::ReplStats& ps = tb_->repl_primary->stats();
      const repl::ReplStats& as = tb_->repl_replica->stats();
      if (as.frames_applied > ps.frames_emitted) {
        return Status::Corruption(
            "replication conservation: more frames applied than emitted");
      }
    }
    return CheckCounterConservation(tb_->dev.stats(),
                                    tb_->noftl.region_stats(tb_->region),
                                    tb_->db->buffer_pool().stats());
  }

  /// Full oracle battery against `want` (the model view or committed state).
  Status DeepCheck(const ModelDb::Map& want) {
    IPA_RETURN_NOT_OK(CheckEquivalence(want));
    IPA_RETURN_NOT_OK(tb_->dev.AuditState());
    if (Sharded()) {
      for (const auto& part : tb_->parts) {
        IPA_RETURN_NOT_OK(tb_->noftl.region_device(part.region)->Audit());
        IPA_RETURN_NOT_OK(
            AuditMappedDeltaAreas(tb_->dev, tb_->noftl, part.region));
      }
      return shadow_.ObserveAndCheck(tb_->dev);
    }
    if (MixedCodec()) {
      // Both regions audit independently: the strict scan in AuditDeltaArea
      // decodes every byte-codec record, so a torn compressed record that
      // slipped past quarantine fails loudly here.
      for (ftl::RegionId r : {tb_->region, tb_->region2}) {
        IPA_RETURN_NOT_OK(tb_->noftl.region_device(r)->Audit());
        IPA_RETURN_NOT_OK(AuditMappedDeltaAreas(tb_->dev, tb_->noftl, r));
      }
      IPA_RETURN_NOT_OK(CheckTornCounterConservation());
      return shadow_.ObserveAndCheck(tb_->dev);
    }
    IPA_RETURN_NOT_OK(tb_->backend->Audit());
    if (cfg_.schedule != Schedule::kPageFtl &&
        cfg_.schedule != Schedule::kStreamFtl) {
      // Delta areas only exist on NoFTL regions; behind a page-mapping FTL
      // every page body is an opaque host image.
      IPA_RETURN_NOT_OK(AuditMappedDeltaAreas(tb_->dev, tb_->noftl, tb_->region));
    }
    IPA_RETURN_NOT_OK(CheckTornCounterConservation());
    IPA_RETURN_NOT_OK(shadow_.ObserveAndCheck(tb_->dev));
    if (Repl()) return ReplicaDeepCheck();
    return Status::OK();
  }

  /// An op returned OutOfSpace after possibly mutating state (log reclaim
  /// runs piggy-backed on DML): the engine may hold either the before- or
  /// the after-image. Scan and adopt whichever matches; anything else is a
  /// real divergence.
  Status Reconcile(const std::function<void(ModelDb&)>& apply) {
    ModelDb applied = model_;
    apply(applied);
    ModelDb::Map got;
    IPA_RETURN_NOT_OK(ScanAll(&got));
    if (got == model_.view()) return Status::OK();
    if (got == applied.view()) {
      model_ = std::move(applied);
      return Status::OK();
    }
    return Status::Corruption(
        "out-of-space op left state matching neither the applied nor the "
        "unapplied outcome");
  }

  void CrashEngine() {
    if (Sharded()) {
      tb_->sharded->SimulateCrash();
    } else {
      tb_->db->SimulateCrash();
    }
  }

  Status RecoverEngine() {
    return Sharded() ? tb_->sharded->RecoverAfterPowerLoss()
                     : tb_->db->RecoverAfterPowerLoss();
  }

  /// The crash protocol: discard staged state on both sides, then power-cycle
  /// and recover (possibly several times — a re-armed policy cuts power again
  /// *during* recovery), then verify the committed state deeply.
  Status HandleCrash() {
    model_.Crash();
    txn_ = engine::kInvalidTxn;
    s_open_ = false;
    res_.crashes++;
    CrashEngine();
    tb_->dev.PowerCycle();
    IPA_RETURN_NOT_OK(RecoverLoop());
    if (Repl()) IPA_RETURN_NOT_OK(RecoverPrimaryRepl());
    return DeepCheck(model_.committed());
  }

  /// kRepl, after the primary recovered: rebuild its shipping state. The
  /// wire died with it — frames still in flight are dropped, and the next
  /// emitted frame (prev_lsn = kUnknownLsn) pushes the replica into
  /// catch-up, so force the snapshot path eagerly.
  Status RecoverPrimaryRepl() {
    IPA_RETURN_NOT_OK(tb_->repl_primary->RecoverReplState());
    net_.clear();
    force_catchup_ = true;
    return Status::OK();
  }

  Status RecoverLoop() {
    bool rearmed = false;
    for (int attempt = 0; attempt < 8; attempt++) {
      if (!rearmed && rearm_delta_ > 0) {
        flash::PowerLossPolicy p;
        p.inject_at_op = rearm_delta_ - 1;
        p.seed = rearm_seed_;
        tb_->dev.SetPowerLossPolicy(p);
        rearmed = true;
        rearm_delta_ = 0;
      } else {
        tb_->dev.SetPowerLossPolicy(flash::PowerLossPolicy{});
      }
      Status s = RecoverEngine();
      if (s.ok()) {
        tb_->dev.SetPowerLossPolicy(flash::PowerLossPolicy{});
        return Status::OK();
      }
      if (!s.IsUnavailable()) return s;
      res_.crashes++;  // double crash: power died during recovery
      CrashEngine();
      tb_->dev.PowerCycle();
    }
    return Status::Internal("recovery did not converge after 8 power cycles");
  }

  // -- kRepl shipping ---------------------------------------------------------
  //
  // The runner plays the network: PumpOutbound moves emitted frames onto the
  // in-flight queue, kShip delivers the oldest one, kReplSync drains the
  // stream (snapshot catch-up included) and runs the convergence oracle.
  // Either node can lose power mid-stream; the primary's crash protocol is
  // the usual HandleCrash (plus RecoverPrimaryRepl), the replica's is
  // HandleReplicaCrash — the model is NOT crashed for a replica-only cut.

  void PumpOutbound() {
    while (tb_->repl_primary->outbound_frames() > 0) {
      net_.push_back(tb_->repl_primary->PopOutbound());
    }
  }

  /// Deliver the oldest in-flight frame. Frames stay queued across replica
  /// crashes and transient OutOfSpace rollbacks (re-apply is idempotent); a
  /// chain gap switches to snapshot catch-up.
  Status ShipOne() {
    if (force_catchup_) return RunCatchup();
    if (net_.empty()) return Status::OK();
    auto r = tb_->repl_replica->ApplyFrame(net_.front());
    if (!r.ok()) {
      if (r.status().IsUnavailable()) return HandleReplicaCrash();
      if (r.status().IsOutOfSpace()) {
        // The apply rolled back whole; free replica log space, retry later.
        Status cs = tb_->replica->db->Checkpoint();
        if (cs.IsUnavailable()) return HandleReplicaCrash();
        return Status::OK();
      }
      return r.status();
    }
    switch (r.value()) {
      case repl::ReplNode::Apply::kApplied:
      case repl::ReplNode::Apply::kDuplicate:
      case repl::ReplNode::Apply::kEcho:
        net_.pop_front();
        return Status::OK();
      case repl::ReplNode::Apply::kNeedCatchup:
        return RunCatchup();
      case repl::ReplNode::Apply::kRejectedTorn:
        return Status::Corruption("replica rejected an untorn frame as torn");
    }
    return Status::Internal("unknown apply outcome");
  }

  /// Snapshot-ship catch-up: quiesce the primary (commit the open txn),
  /// build a full-state snapshot, apply it on the replica. Pre-snapshot
  /// frames still in flight drain as duplicates afterwards.
  Status RunCatchup() {
    if (txn_ != engine::kInvalidTxn) {
      Op commit;
      commit.kind = Op::Kind::kCommit;
      IPA_RETURN_NOT_OK(Execute(commit));  // Unavailable: primary crash path
      PumpOutbound();
    }
    auto snap = tb_->repl_primary->BuildSnapshot();
    if (!snap.ok()) return snap.status();
    Status s = tb_->repl_replica->ApplySnapshot(snap.value());
    if (s.IsUnavailable()) return HandleReplicaCrash();  // retried: flag stays
    if (s.IsOutOfSpace()) {
      Status cs = tb_->replica->db->Checkpoint();
      if (cs.IsUnavailable()) return HandleReplicaCrash();
      return Status::OK();  // rolled back whole; retried on the next ship
    }
    IPA_RETURN_NOT_OK(s);
    force_catchup_ = false;
    return Status::OK();
  }

  /// Replica-side crash protocol. The primary and the model are unaffected;
  /// the replica recovers from its own WAL (a half-applied frame rolls back)
  /// and rebuilds its repl state from the meta/map tables.
  Status HandleReplicaCrash() {
    res_.crashes++;
    tb_->replica->db->SimulateCrash();
    tb_->replica->dev.PowerCycle();
    IPA_RETURN_NOT_OK(ReplicaRecoverLoop());
    IPA_RETURN_NOT_OK(tb_->repl_replica->RecoverReplState());
    return ReplicaDeepCheck();
  }

  Status ReplicaRecoverLoop() {
    bool rearmed = false;
    for (int attempt = 0; attempt < 8; attempt++) {
      if (!rearmed && r_rearm_delta_ > 0) {
        flash::PowerLossPolicy p;
        p.inject_at_op = r_rearm_delta_ - 1;
        p.seed = r_rearm_seed_;
        tb_->replica->dev.SetPowerLossPolicy(p);
        rearmed = true;
        r_rearm_delta_ = 0;
      } else {
        tb_->replica->dev.SetPowerLossPolicy(flash::PowerLossPolicy{});
      }
      Status s = tb_->replica->db->RecoverAfterPowerLoss();
      if (s.ok()) {
        tb_->replica->dev.SetPowerLossPolicy(flash::PowerLossPolicy{});
        return Status::OK();
      }
      if (!s.IsUnavailable()) return s;
      res_.crashes++;  // double crash: power died during replica recovery
      tb_->replica->db->SimulateCrash();
      tb_->replica->dev.PowerCycle();
    }
    return Status::Internal(
        "replica recovery did not converge after 8 power cycles");
  }

  /// Structural audits on the replica stack. (The logical oracle is
  /// CheckReplicaConvergence, which needs a drained stream.)
  Status ReplicaDeepCheck() {
    IPA_RETURN_NOT_OK(tb_->replica->dev.AuditState());
    IPA_RETURN_NOT_OK(tb_->replica->backend->Audit());
    IPA_RETURN_NOT_OK(AuditMappedDeltaAreas(tb_->replica->dev,
                                            tb_->replica->noftl,
                                            tb_->replica->region));
    return rshadow_.ObserveAndCheck(tb_->replica->dev);
  }

  /// Drain the stream end-to-end (catch-up included), then require the
  /// replica's logical content to match the model's committed view byte for
  /// byte. Replica cuts during the drain are recovered and the drain resumes.
  Status ReplSync() {
    if (txn_ != engine::kInvalidTxn) {
      Op commit;
      commit.kind = Op::Kind::kCommit;
      IPA_RETURN_NOT_OK(Execute(commit));
    }
    PumpOutbound();
    for (int guard = 0; guard < 4096; guard++) {
      if (!force_catchup_ && net_.empty()) {
        Status s = CheckReplicaConvergence();
        if (s.IsUnavailable() && !tb_->replica->dev.powered_on()) {
          IPA_RETURN_NOT_OK(HandleReplicaCrash());
          continue;  // replica recovered; scan again
        }
        return s;
      }
      IPA_RETURN_NOT_OK(ShipOne());
      PumpOutbound();
    }
    return Status::Internal("replication stream did not drain");
  }

  /// The replication oracle: the replica stores origin identities, and every
  /// tuple originated on the primary (writer 1) under its primary rid — so
  /// the replica's logical map, re-keyed by rid, must equal the model's
  /// committed view exactly.
  Status CheckReplicaConvergence() {
    repl::ReplNode::LogicalMap lm;
    IPA_RETURN_NOT_OK(tb_->repl_replica->ScanLogical(&lm));
    ModelDb::Map got;
    for (auto& [key, bytes] : lm) {
      if (key.first != 1) {
        return Status::Corruption("replica holds a foreign-origin tuple");
      }
      got[key.second] = std::move(bytes);
    }
    const ModelDb::Map& want = model_.committed();
    if (got == want) return Status::OK();
    for (const auto& [k, v] : want) {
      auto it = got.find(k);
      if (it == got.end()) {
        return Status::Corruption("replica convergence: tuple " +
                                  std::to_string(k) +
                                  " missing from the replica");
      }
      if (it->second != v) {
        size_t d = 0;
        while (d < v.size() && d < it->second.size() && it->second[d] == v[d]) {
          d++;
        }
        return Status::Corruption(
            "replica convergence: tuple " + std::to_string(k) +
            " diverges at byte " + std::to_string(d));
      }
    }
    return Status::Corruption(
        "replica convergence: phantom tuples on the replica");
  }

  /// Maintenance-op region selection: kDeltaCodec alternates between the two
  /// mixed-codec regions by the op's `b` draw; everyone else has one region.
  ftl::RegionId MaintRegion(uint64_t draw) const {
    return MixedCodec() && draw % 2 == 1 ? tb_->region2 : tb_->region;
  }

  Status Execute(const Op& op) {
    if (Sharded()) return ExecuteSharded(op);
    switch (op.kind) {
      case Op::Kind::kInsert: {
        EnsureTxn();
        engine::TableId table = tb_->tables[op.a % 2];
        std::vector<uint8_t> t = Payload(op.seed, 16 + op.b % 97);
        auto r = tb_->db->Insert(txn_, table, t);
        if (r.ok()) {
          model_.Insert(r.value().Pack(), std::move(t));
          return Status::OK();
        }
        if (r.status().IsOutOfSpace()) return ReconcileInsert(t);
        return r.status();
      }
      case Op::Kind::kUpdate: {
        if (model_.LiveCount() == 0) return Status::OK();
        EnsureTxn();
        uint64_t key = model_.KeyAt(op.a % model_.LiveCount());
        const auto* tuple = model_.Lookup(key);
        uint32_t len32 = static_cast<uint32_t>(tuple->size());
        uint32_t offset = static_cast<uint32_t>(op.b % len32);
        uint32_t maxlen = std::min<uint32_t>(8, len32 - offset);
        uint32_t len = 1 + static_cast<uint32_t>(op.c % maxlen);
        std::vector<uint8_t> bytes = Payload(op.seed, len);
        Status s = tb_->db->Update(txn_, engine::Rid::Unpack(key), offset, bytes);
        if (s.ok()) {
          model_.Update(key, offset, bytes.data(), len);
          return Status::OK();
        }
        if (s.IsOutOfSpace()) {
          return Reconcile([&](ModelDb& m) {
            m.Update(key, offset, bytes.data(), len);
          });
        }
        return s;
      }
      case Op::Kind::kUpdateResize: {
        if (model_.LiveCount() == 0) return Status::OK();
        EnsureTxn();
        uint64_t key = model_.KeyAt(op.a % model_.LiveCount());
        std::vector<uint8_t> t = Payload(op.seed, 16 + op.b % 97);
        Status s = tb_->db->UpdateResize(txn_, engine::Rid::Unpack(key), t);
        if (s.ok()) {
          model_.Replace(key, std::move(t));
          return Status::OK();
        }
        if (s.IsOutOfSpace()) {
          // A resize that no longer fits its page legitimately fails and
          // leaves the tuple unchanged; reclaim-triggered failures may have
          // applied it. Accept either.
          return Reconcile([&](ModelDb& m) { m.Replace(key, t); });
        }
        return s;
      }
      case Op::Kind::kDelete: {
        if (model_.LiveCount() == 0) return Status::OK();
        EnsureTxn();
        uint64_t key = model_.KeyAt(op.a % model_.LiveCount());
        Status s = tb_->db->Delete(txn_, engine::Rid::Unpack(key));
        if (s.ok()) {
          model_.Erase(key);
          return Status::OK();
        }
        if (s.IsOutOfSpace()) {
          return Reconcile([&](ModelDb& m) { m.Erase(key); });
        }
        return s;
      }
      case Op::Kind::kRead: {
        if (model_.LiveCount() == 0) return Status::OK();
        EnsureTxn();
        uint64_t key = model_.KeyAt(op.a % model_.LiveCount());
        auto r = tb_->db->Read(txn_, engine::Rid::Unpack(key));
        if (!r.ok()) {
          if (r.status().IsOutOfSpace()) return Status::OK();
          return r.status();
        }
        const auto* want = model_.Lookup(key);
        if (r.value() != *want) {
          return Status::Corruption("read divergence at tuple " +
                                    std::to_string(key));
        }
        return Status::OK();
      }
      case Op::Kind::kCommit: {
        if (txn_ == engine::kInvalidTxn) return Status::OK();
        Status s = tb_->db->Commit(txn_);
        // The commit record is forced to the log before Commit issues any
        // cleaner/reclaim flash I/O, so the transaction is durable whatever
        // Commit returns afterwards.
        model_.CommitTxn();
        res_.commits++;
        txn_ = engine::kInvalidTxn;
        if (s.IsOutOfSpace()) return Status::OK();
        return s;
      }
      case Op::Kind::kAbort: {
        if (txn_ == engine::kInvalidTxn) return Status::OK();
        Status s;
        for (int i = 0; i < 4; i++) {
          s = tb_->db->Abort(txn_);
          if (!s.IsOutOfSpace()) break;  // CLR-protected: rollback restartable
        }
        if (s.ok()) {
          model_.AbortTxn();
          txn_ = engine::kInvalidTxn;
        }
        return s;
      }
      case Op::Kind::kScanCheck: {
        Status s = CheckEquivalence(model_.view());
        if (s.IsOutOfSpace()) return Status::OK();
        return s;
      }
      case Op::Kind::kCheckpoint: {
        Status s = tb_->db->Checkpoint();
        if (s.IsOutOfSpace()) return Status::OK();
        return s;
      }
      case Op::Kind::kScrub: {
        // A black-box FTL exposes no scrub hook; the closest background
        // maintenance it runs on its own is a GC pass.
        Status s = cfg_.schedule == Schedule::kPageFtl
                       ? tb_->pageftl->CollectOnce()
                   : cfg_.schedule == Schedule::kStreamFtl
                       ? tb_->streamftl->CollectOnce()
                       : tb_->noftl.ScrubRegion(MaintRegion(op.b), op.a % 4 == 0);
        if (s.IsOutOfSpace()) return Status::OK();
        return s;
      }
      case Op::Kind::kWearLevel: {
        if (cfg_.schedule == Schedule::kPageFtl ||
            cfg_.schedule == Schedule::kStreamFtl) {
          return Status::OK();  // cooked FTLs wear-level internally via GC
        }
        uint32_t spread = 2 + static_cast<uint32_t>(op.a % 6);
        Status s = tb_->noftl.WearLevelRegion(MaintRegion(op.b), spread);
        if (s.IsOutOfSpace()) return Status::OK();
        return s;
      }
      case Op::Kind::kPowerCut: {
        flash::PowerLossPolicy p;
        p.inject_at_op = op.a % 24;
        p.seed = op.seed;
        if (Repl() && (op.a >> 32) % 2 == 1) {
          // Cut the REPLICA: some later apply-side flash mutation tears.
          tb_->replica->dev.SetPowerLossPolicy(p);
          r_rearm_delta_ = (op.b % 4 == 0) ? 1 + op.c % 6 : 0;
          r_rearm_seed_ = op.seed ^ 0xD1B54A32D192ED03ull;
          return Status::OK();
        }
        tb_->dev.SetPowerLossPolicy(p);
        rearm_delta_ = (op.b % 4 == 0) ? 1 + op.c % 6 : 0;
        rearm_seed_ = op.seed ^ 0xD1B54A32D192ED03ull;
        return Status::OK();
      }
      case Op::Kind::kShip: {
        if (!Repl()) return Status::OK();
        PumpOutbound();
        return ShipOne();
      }
      case Op::Kind::kReplSync: {
        if (!Repl()) return Status::OK();
        return ReplSync();
      }
    }
    return Status::Internal("unknown op kind");
  }

  // -- kSharded session ------------------------------------------------------
  //
  // At most one transaction is open at a time: either a fast-path
  // single-partition txn (3 in 4 sessions) or a cross-partition txn on the
  // locking path. Fast sessions are homed on one partition and only touch its
  // keys; cross sessions see the whole key space and open branches lazily.

  void EnsureShardedTxn(const Op& op) {
    if (s_open_) return;
    s_open_ = true;
    s_cross_ = (op.seed % 4) == 0;
    if (s_cross_) {
      s_cross_txn_ = tb_->sharded->BeginCross();
    } else {
      s_fast_ = tb_->sharded->Begin(static_cast<uint32_t>(op.seed >> 32) % 2);
    }
  }

  engine::TxnId ShardedTxnFor(uint32_t p) {
    return s_cross_ ? tb_->sharded->Branch(s_cross_txn_, p) : s_fast_.id;
  }

  /// Pick a live key eligible for the current session by rank: cross sessions
  /// draw from every key, fast sessions only from their home partition's.
  bool PickShardedKey(uint64_t draw, uint64_t* key) {
    if (s_cross_) {
      if (model_.LiveCount() == 0) return false;
      *key = model_.KeyAt(draw % model_.LiveCount());
      return true;
    }
    std::vector<uint64_t> keys;
    for (const auto& [k, v] : model_.view()) {
      if (engine::ShardedDatabase::PartitionOfGlobal(k) == s_fast_.part) {
        keys.push_back(k);
      }
    }
    if (keys.empty()) return false;
    *key = keys[draw % keys.size()];
    return true;
  }

  Status ShardedCommit() {
    if (!s_open_) return Status::OK();
    Status s = s_cross_ ? tb_->sharded->CommitCross(s_cross_txn_)
                        : tb_->sharded->Commit(s_fast_);
    // All commit records (every branch, in partition order, with no flash
    // I/O in between) are forced before any maintenance runs, so the
    // transaction is durable whatever Commit returns afterwards.
    model_.CommitTxn();
    res_.commits++;
    s_open_ = false;
    if (s.IsOutOfSpace()) return Status::OK();
    return s;
  }

  Status ShardedAbort() {
    if (!s_open_) return Status::OK();
    Status s;
    for (int i = 0; i < 4; i++) {
      s = s_cross_ ? tb_->sharded->AbortCross(s_cross_txn_)
                   : tb_->sharded->Abort(s_fast_);
      if (!s.IsOutOfSpace()) break;  // CLR-protected: rollback restartable
    }
    if (s.ok()) {
      model_.AbortTxn();
      s_open_ = false;
    }
    return s;
  }

  Status ExecuteSharded(const Op& op) {
    switch (op.kind) {
      case Op::Kind::kInsert: {
        EnsureShardedTxn(op);
        uint32_t p = s_cross_ ? static_cast<uint32_t>((op.a >> 32) % 2)
                              : s_fast_.part;
        engine::TableId table = tb_->parts[p].tables[op.a % 2];
        std::vector<uint8_t> t = Payload(op.seed, 16 + op.b % 97);
        auto r = tb_->parts[p].db->Insert(ShardedTxnFor(p), table, t);
        if (r.ok()) {
          model_.Insert(engine::ShardedDatabase::PackGlobal(p, r.value()),
                        std::move(t));
          return Status::OK();
        }
        if (r.status().IsOutOfSpace()) return ReconcileInsert(t);
        return r.status();
      }
      case Op::Kind::kUpdate: {
        EnsureShardedTxn(op);
        uint64_t key;
        if (!PickShardedKey(op.a, &key)) return Status::OK();
        const auto* tuple = model_.Lookup(key);
        uint32_t len32 = static_cast<uint32_t>(tuple->size());
        uint32_t offset = static_cast<uint32_t>(op.b % len32);
        uint32_t maxlen = std::min<uint32_t>(8, len32 - offset);
        uint32_t len = 1 + static_cast<uint32_t>(op.c % maxlen);
        std::vector<uint8_t> bytes = Payload(op.seed, len);
        uint32_t p = engine::ShardedDatabase::PartitionOfGlobal(key);
        Status s = tb_->parts[p].db->Update(
            ShardedTxnFor(p), engine::ShardedDatabase::RidOfGlobal(key),
            offset, bytes);
        if (s.ok()) {
          model_.Update(key, offset, bytes.data(), len);
          return Status::OK();
        }
        if (s.IsOutOfSpace()) {
          return Reconcile(
              [&](ModelDb& m) { m.Update(key, offset, bytes.data(), len); });
        }
        return s;
      }
      case Op::Kind::kUpdateResize: {
        EnsureShardedTxn(op);
        uint64_t key;
        if (!PickShardedKey(op.a, &key)) return Status::OK();
        std::vector<uint8_t> t = Payload(op.seed, 16 + op.b % 97);
        uint32_t p = engine::ShardedDatabase::PartitionOfGlobal(key);
        Status s = tb_->parts[p].db->UpdateResize(
            ShardedTxnFor(p), engine::ShardedDatabase::RidOfGlobal(key), t);
        if (s.ok()) {
          model_.Replace(key, std::move(t));
          return Status::OK();
        }
        if (s.IsOutOfSpace()) {
          return Reconcile([&](ModelDb& m) { m.Replace(key, t); });
        }
        return s;
      }
      case Op::Kind::kDelete: {
        EnsureShardedTxn(op);
        uint64_t key;
        if (!PickShardedKey(op.a, &key)) return Status::OK();
        uint32_t p = engine::ShardedDatabase::PartitionOfGlobal(key);
        Status s = tb_->parts[p].db->Delete(
            ShardedTxnFor(p), engine::ShardedDatabase::RidOfGlobal(key));
        if (s.ok()) {
          model_.Erase(key);
          return Status::OK();
        }
        if (s.IsOutOfSpace()) {
          return Reconcile([&](ModelDb& m) { m.Erase(key); });
        }
        return s;
      }
      case Op::Kind::kRead: {
        EnsureShardedTxn(op);
        uint64_t key;
        if (!PickShardedKey(op.a, &key)) return Status::OK();
        uint32_t p = engine::ShardedDatabase::PartitionOfGlobal(key);
        auto r = tb_->parts[p].db->Read(
            ShardedTxnFor(p), engine::ShardedDatabase::RidOfGlobal(key));
        if (!r.ok()) {
          if (r.status().IsOutOfSpace()) return Status::OK();
          return r.status();
        }
        const auto* want = model_.Lookup(key);
        if (r.value() != *want) {
          return Status::Corruption("read divergence at tuple " +
                                    std::to_string(key));
        }
        return Status::OK();
      }
      case Op::Kind::kCommit:
        return ShardedCommit();
      case Op::Kind::kAbort:
        return ShardedAbort();
      case Op::Kind::kScanCheck: {
        Status s = CheckEquivalence(model_.view());
        if (s.IsOutOfSpace()) return Status::OK();
        return s;
      }
      case Op::Kind::kCheckpoint: {
        Status s = tb_->sharded->Checkpoint();
        if (s.IsOutOfSpace()) return Status::OK();
        return s;
      }
      case Op::Kind::kScrub: {
        Status s = tb_->noftl.ScrubRegion(tb_->parts[op.b % 2].region,
                                          op.a % 4 == 0);
        if (s.IsOutOfSpace()) return Status::OK();
        return s;
      }
      case Op::Kind::kWearLevel: {
        uint32_t spread = 2 + static_cast<uint32_t>(op.a % 6);
        Status s =
            tb_->noftl.WearLevelRegion(tb_->parts[op.b % 2].region, spread);
        if (s.IsOutOfSpace()) return Status::OK();
        return s;
      }
      case Op::Kind::kPowerCut: {
        flash::PowerLossPolicy p;
        p.inject_at_op = op.a % 24;
        p.seed = op.seed;
        tb_->dev.SetPowerLossPolicy(p);
        rearm_delta_ = (op.b % 4 == 0) ? 1 + op.c % 6 : 0;
        rearm_seed_ = op.seed ^ 0xD1B54A32D192ED03ull;
        return Status::OK();
      }
      case Op::Kind::kShip:
      case Op::Kind::kReplSync:
        return Status::OK();  // kRepl-only ops; no-op on other schedules
    }
    return Status::Internal("unknown op kind");
  }

  /// Insert returned OutOfSpace: the rid is unknown, so reconcile by scan
  /// diff — the engine either holds exactly the model view, or the view plus
  /// one new tuple with our payload.
  Status ReconcileInsert(const std::vector<uint8_t>& t) {
    ModelDb::Map got;
    IPA_RETURN_NOT_OK(ScanAll(&got));
    if (got == model_.view()) return Status::OK();
    if (got.size() == model_.view().size() + 1) {
      uint64_t extra = 0;
      size_t extras = 0;
      for (const auto& [k, v] : got) {
        if (model_.view().find(k) == model_.view().end()) {
          extra = k;
          extras++;
        }
      }
      if (extras == 1 && got[extra] == t &&
          std::all_of(model_.view().begin(), model_.view().end(),
                      [&](const auto& kv) {
                        auto it = got.find(kv.first);
                        return it != got.end() && it->second == kv.second;
                      })) {
        model_.Insert(extra, t);
        return Status::OK();
      }
    }
    return Status::Corruption(
        "out-of-space insert left state matching neither outcome");
  }

  uint32_t Fingerprint() const {
    uint32_t crc = 0;
    auto add64 = [&](uint64_t v) {
      uint8_t b[8];
      std::memcpy(b, &v, 8);
      crc = Crc32c(b, 8, crc);
    };
    for (const auto& [k, v] : model_.committed()) {
      add64(k);
      add64(v.size());
      crc = Crc32c(v.data(), v.size(), crc);
    }
    const auto& ds = tb_->dev.stats();
    const ftl::RegionStats rs = BackendStats();
    for (uint64_t v :
         {res_.commits, res_.crashes, ds.page_programs, ds.delta_programs,
          ds.block_erases, ds.page_refreshes, rs.host_page_writes,
          rs.host_delta_writes, rs.gc_page_migrations,
          rs.torn_pages_quarantined}) {
      add64(v);
    }
    if (Repl()) {
      // Replica-side physical activity and the stream counters are part of
      // the run's identity too.
      const flash::DeviceStats& rds = tb_->replica->dev.stats();
      const ftl::RegionStats rrs = tb_->replica->backend->stats();
      const repl::ReplStats& ps = tb_->repl_primary->stats();
      const repl::ReplStats& as = tb_->repl_replica->stats();
      for (uint64_t v :
           {rds.page_programs, rds.delta_programs, rds.block_erases,
            rrs.host_page_writes, rrs.host_delta_writes, ps.frames_emitted,
            ps.delta_ops, ps.full_ops, ps.foldbacks, as.frames_applied,
            as.duplicates, as.gap_rejected, as.snapshots_applied,
            as.lww_skips}) {
        add64(v);
      }
    }
    return crc;
  }

  FuzzConfig cfg_;
  std::unique_ptr<Testbed> tb_;
  ModelDb model_;
  FlashShadow shadow_;
  FuzzResult res_;
  engine::TxnId txn_ = engine::kInvalidTxn;
  uint64_t rearm_delta_ = 0;
  uint64_t rearm_seed_ = 0;

  // kRepl state: the simulated wire, the catch-up latch, the replica's own
  // re-cut arming and its ISPP shadow.
  std::deque<std::vector<uint8_t>> net_;
  bool force_catchup_ = false;
  uint64_t r_rearm_delta_ = 0;
  uint64_t r_rearm_seed_ = 0;
  FlashShadow rshadow_;

  // kSharded session state (see the "kSharded session" block above).
  bool s_open_ = false;
  bool s_cross_ = false;
  engine::ShardedDatabase::Txn s_fast_;
  engine::ShardedDatabase::CrossTxn s_cross_txn_;
};

}  // namespace

const char* ScheduleName(Schedule s) {
  return kScheduleNames[static_cast<int>(s)];
}

bool ParseSchedule(const std::string& name, Schedule* out) {
  for (int i = 0; i < kNumSchedules; i++) {
    if (name == kScheduleNames[i]) {
      *out = static_cast<Schedule>(i);
      return true;
    }
  }
  return false;
}

std::vector<Op> GenerateOps(const FuzzConfig& cfg) {
  struct Weighted {
    Op::Kind kind;
    uint32_t weight;
  };
  // Insert-heavy warmup populates the store before the main mix takes over.
  static constexpr Weighted kWarmup[] = {
      {Op::Kind::kInsert, 70}, {Op::Kind::kUpdate, 20}, {Op::Kind::kCommit, 10}};
  std::vector<Weighted> main = {
      {Op::Kind::kInsert, 14},     {Op::Kind::kUpdate, 34},
      {Op::Kind::kUpdateResize, 6}, {Op::Kind::kDelete, 6},
      {Op::Kind::kRead, 10},       {Op::Kind::kCommit, 12},
      {Op::Kind::kAbort, 2},       {Op::Kind::kScanCheck, 4},
      {Op::Kind::kCheckpoint, 3},  {Op::Kind::kScrub, 2},
      {Op::Kind::kWearLevel, 2},   {Op::Kind::kPowerCut, 5}};
  if (cfg.schedule == Schedule::kSlcNoEcc) {
    // Without managed ECC the paper promises no crash consistency for torn
    // appends (Section 6.2) — run this schedule cut-free.
    for (auto& w : main) {
      if (w.kind == Op::Kind::kPowerCut) w.weight = 0;
      if (w.kind == Op::Kind::kUpdate) w.weight += 5;
    }
  }
  if (cfg.schedule == Schedule::kRepl) {
    // Interleave shipping with the DML so the replica applies mid-workload
    // (and power cuts land on either node's flash activity); the periodic
    // sync barrier drains the stream and runs the convergence oracle. The
    // appended entries leave every other schedule's draw sequence untouched.
    main.push_back({Op::Kind::kShip, 20});
    main.push_back({Op::Kind::kReplSync, 3});
  }

  Rng rng(cfg.seed ^
          (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(cfg.schedule) + 1)));
  uint64_t warmup = std::min<uint64_t>(cfg.ops / 8, 24);
  std::vector<Op> ops;
  ops.reserve(cfg.ops);
  for (uint64_t i = 0; i < cfg.ops; i++) {
    const Weighted* table = i < warmup ? kWarmup : main.data();
    size_t entries = i < warmup ? std::size(kWarmup) : main.size();
    uint32_t total = 0;
    for (size_t k = 0; k < entries; k++) total += table[k].weight;
    uint64_t draw = rng.Uniform(total);
    Op op;
    for (size_t k = 0; k < entries; k++) {
      if (draw < table[k].weight) {
        op.kind = table[k].kind;
        break;
      }
      draw -= table[k].weight;
    }
    op.a = rng.Next();
    op.b = rng.Next();
    op.c = rng.Next();
    op.seed = rng.Next();
    ops.push_back(op);
  }
  return ops;
}

FuzzResult ReplayTrace(const FuzzConfig& config, const std::vector<Op>& trace) {
  Runner runner(config);
  return runner.Run(trace);
}

FuzzResult RunFuzz(const FuzzConfig& config) {
  return ReplayTrace(config, GenerateOps(config));
}

std::string FormatOp(const Op& op) {
  std::ostringstream os;
  os << kKindNames[static_cast<int>(op.kind)] << std::hex << " a=" << op.a
     << " b=" << op.b << " c=" << op.c << " seed=" << op.seed;
  return os.str();
}

std::string ReproLine(const FuzzConfig& config) {
  std::ostringstream os;
  os << "ipa_fuzz --schedule " << ScheduleName(config.schedule) << " --seed "
     << config.seed << " --ops " << config.ops << " --deep-check "
     << config.deep_check_every;
  return os.str();
}

}  // namespace ipa::check
