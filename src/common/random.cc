#include "common/random.h"

#include <cmath>

namespace ipa {

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  // Cap the harmonic-sum precomputation; for very large n the tail
  // contribution is small and the distribution shape is preserved.
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

NuRand::NuRand(uint64_t seed) {
  Rng rng(seed ^ 0xC0FFEEull);
  c_255_ = static_cast<int64_t>(rng.Uniform(256));
  c_1023_ = static_cast<int64_t>(rng.Uniform(1024));
  c_8191_ = static_cast<int64_t>(rng.Uniform(8192));
}

int64_t NuRand::CFor(int64_t a) const {
  switch (a) {
    case 255: return c_255_;
    case 1023: return c_1023_;
    case 8191: return c_8191_;
    default: return c_255_;
  }
}

int64_t NuRand::Gen(Rng& rng, int64_t a, int64_t x, int64_t y) const {
  int64_t r1 = rng.UniformRange(0, a);
  int64_t r2 = rng.UniformRange(x, y);
  return (((r1 | r2) + CFor(a)) % (y - x + 1)) + x;
}

uint32_t DiscreteCdf::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  for (const auto& [value, cum] : points_) {
    if (u <= cum) return value;
  }
  return points_.empty() ? 0 : points_.back().first;
}

}  // namespace ipa
