// Deterministic random number generation and workload-skew distributions.
//
// All simulation randomness in the repository flows through Rng so that runs
// are reproducible bit-for-bit given a seed. Zipfian and TPC-C NURand
// generators implement the access skew used by the LinkBench and TPC-C
// workloads respectively.

#pragma once

#include <cstdint>
#include <vector>

namespace ipa {

/// xorshift64* generator: fast, decent quality, fully deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial: true with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Re-seed the generator.
  void Seed(uint64_t seed) { state_ = seed ? seed : 0x9E3779B97F4A7C15ull; }

 private:
  uint64_t state_;
};

/// Zipfian distribution over [0, n) with parameter theta (0 < theta < 1),
/// computed with the Gray et al. method (same as YCSB). Used for LinkBench
/// node/edge access skew.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  /// Draw the next zipf-distributed item id in [0, n).
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// TPC-C NURand(A, x, y) non-uniform generator (clause 2.1.6).
/// C is fixed per run (we derive it from the seed at construction).
class NuRand {
 public:
  explicit NuRand(uint64_t seed);

  /// NURand(A, x, y) per the TPC-C specification.
  int64_t Gen(Rng& rng, int64_t a, int64_t x, int64_t y) const;

 private:
  int64_t c_255_;
  int64_t c_1023_;
  int64_t c_8191_;
  int64_t CFor(int64_t a) const;
};

/// Draws from a discrete CDF given as (value, cumulative_probability) pairs.
/// Used for LinkBench payload-size distributions.
class DiscreteCdf {
 public:
  /// `points` must be sorted by cumulative probability, ending at 1.0.
  explicit DiscreteCdf(std::vector<std::pair<uint32_t, double>> points)
      : points_(std::move(points)) {}

  uint32_t Sample(Rng& rng) const;

 private:
  std::vector<std::pair<uint32_t, double>> points_;
};

}  // namespace ipa
