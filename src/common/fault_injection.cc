#include "common/fault_injection.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace ipa::fault {

namespace {

std::atomic<bool> g_points[static_cast<size_t>(Point::kNumPoints)] = {};

const char* PointName(Point p) {
  switch (p) {
    case Point::kSkipDeltaRecordValidation:
      return "skip_delta_record_validation";
    case Point::kSkipTornByteScrub:
      return "skip_torn_byte_scrub";
    case Point::kNumPoints:
      break;
  }
  return nullptr;
}

/// Parse IPA_FAULTS exactly once, before the first Enabled()/TestOnlySet()
/// observation, so an explicit TestOnlySet is never overwritten by the
/// (lazily parsed) environment.
void LoadEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("IPA_FAULTS");
    if (spec != nullptr && *spec != '\0') ParseSpec(spec);
  });
}

}  // namespace

bool Enabled(Point p) {
  LoadEnvOnce();
  return g_points[static_cast<size_t>(p)].load(std::memory_order_relaxed);
}

void TestOnlySet(Point p, bool enabled) {
  LoadEnvOnce();
  g_points[static_cast<size_t>(p)].store(enabled, std::memory_order_relaxed);
}

bool ParseSpec(const std::string& spec, std::string* error) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string name = spec.substr(start, comma - start);
    start = comma + 1;
    if (name.empty()) continue;
    bool known = false;
    for (uint32_t i = 0; i < static_cast<uint32_t>(Point::kNumPoints); i++) {
      Point p = static_cast<Point>(i);
      if (name == PointName(p)) {
        g_points[i].store(true, std::memory_order_relaxed);
        known = true;
        break;
      }
    }
    if (!known) {
      if (error) *error = "unknown fault point '" + name + "'";
      return false;
    }
  }
  return true;
}

}  // namespace ipa::fault
