// Deliberate fault injection for the differential checker (docs/TESTING.md).
//
// Each Point gates one on-media safety check. All faults are off by default;
// they can be enabled per-process through the IPA_FAULTS environment variable
// (a comma-separated list of point names) or from test code via TestOnlySet.
// The checker in src/check/ uses these to prove it catches real bugs: with a
// fault armed, a seeded fuzz run must fail and the shrinker must reduce the
// trace to a handful of ops (tests/differential_test.cc).
//
// Fault points must never change behavior on clean (non-torn) state, so an
// armed fault is invisible until a power loss actually tears a write.

#pragma once

#include <string>

namespace ipa::fault {

enum class Point : uint32_t {
  /// storage/delta_record.cc ValidRecord: accept any record whose ctrl byte
  /// is not erased, skipping the pair-offset well-formedness check that
  /// rejects torn (partially programmed) delta records.
  /// IPA_FAULTS name: skip_delta_record_validation
  kSkipDeltaRecordValidation = 0,
  /// ftl/noftl.cc ScrubUncoveredDeltaBytes: serve delta-area bytes not
  /// covered by any OOB ECC slot instead of scrubbing them to 0xFF, so torn
  /// append remnants reach the engine (and MountScan never quarantines them).
  /// IPA_FAULTS name: skip_torn_byte_scrub
  kSkipTornByteScrub = 1,
  kNumPoints
};

/// True when the fault at `p` is enabled (IPA_FAULTS or TestOnlySet).
bool Enabled(Point p);

/// Force a fault on/off from test code. Overrides the environment.
void TestOnlySet(Point p, bool enabled);

/// Enable every point named in `spec` ("skip_torn_byte_scrub,..."). Returns
/// false (and sets `error` if non-null) on an unknown name.
bool ParseSpec(const std::string& spec, std::string* error = nullptr);

/// RAII guard for tests: enables `p` now, restores "off" on destruction.
class ScopedFault {
 public:
  explicit ScopedFault(Point p) : p_(p) { TestOnlySet(p_, true); }
  ~ScopedFault() { TestOnlySet(p_, false); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  Point p_;
};

}  // namespace ipa::fault
