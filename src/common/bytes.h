// Little-endian byte encoding helpers for on-page structures.
//
// All on-media integers in this codebase are little-endian, encoded and
// decoded through these helpers so page layouts stay portable and
// alignment-safe (pages are raw byte arrays; direct pointer casts would be UB).

#pragma once

#include <cstdint>
#include <cstring>

namespace ipa {

inline void EncodeU16(uint8_t* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeU16(const uint8_t* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeU32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeU64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace ipa
