// Status / Result error-handling primitives used across the IPA codebase.
//
// Follows the RocksDB/Arrow idiom: fallible functions return ipa::Status (or
// ipa::Result<T> when they produce a value). Exceptions are not used on I/O
// paths.

#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ipa {

/// Error categories surfaced by the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller violated an API precondition.
  kNotFound,          ///< Lookup target does not exist.
  kOutOfSpace,        ///< No free flash space / delta-area overflow.
  kIoError,           ///< Device-level failure (uncorrectable ECC, ...).
  kNotSupported,      ///< Operation not legal in this mode (e.g. delta on MSB page).
  kCorruption,        ///< On-media invariant violated.
  kBusy,              ///< Resource (lock, latch) unavailable.
  kAborted,           ///< Transaction aborted (deadlock victim, user abort).
  kInternal,          ///< Bug: internal invariant violated.
  kUnavailable,       ///< Device is powered off (power loss until PowerCycle).
};

/// Lightweight status object: a code plus an optional message.
/// `Status::OK()` carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfSpace(std::string msg) {
    return Status(StatusCode::kOutOfSpace, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfSpace() const { return code_ == StatusCode::kOutOfSpace; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// Human-readable rendering, e.g. "IoError: uncorrectable ECC".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error container. Access to `value()` on an error Result is a
/// programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(v_) : fallback;
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace ipa

/// Propagate a non-OK Status from the current function.
#define IPA_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::ipa::Status _s = (expr);                   \
    if (!_s.ok()) return _s;                     \
  } while (0)

/// Assign the value of a Result<T> expression or propagate its error.
#define IPA_ASSIGN_OR_RETURN(lhs, expr)          \
  auto IPA_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!IPA_CONCAT_(_res_, __LINE__).ok())        \
    return IPA_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(IPA_CONCAT_(_res_, __LINE__)).value()

#define IPA_CONCAT_IMPL_(a, b) a##b
#define IPA_CONCAT_(a, b) IPA_CONCAT_IMPL_(a, b)
