// Deterministic simulated clock.
//
// All device timing in the flash emulator is expressed against this clock:
// an I/O computes its completion time from per-operation latency constants
// and resource (chip/channel) availability, then advances the clock. Wall
// time never enters the simulation, so results are reproducible.

#pragma once

#include <algorithm>
#include <cstdint>

namespace ipa {

/// Simulated time in microseconds since simulation start.
using SimTime = uint64_t;

/// A monotonically advancing simulated clock shared by one simulation run.
class SimClock {
 public:
  SimTime Now() const { return now_; }

  /// Advance to `t` if it is in the future (no-op otherwise).
  void AdvanceTo(SimTime t) { now_ = std::max(now_, t); }

  /// Advance by a delta.
  void Advance(SimTime delta) { now_ += delta; }

  void Reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace ipa
