#include "common/status.h"

namespace ipa {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kOutOfSpace: return "OutOfSpace";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kBusy: return "Busy";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ipa
