// Unified observability layer: a process-wide registry of named counters,
// gauges and latency histograms, plus scoped trace spans that attribute
// *simulated* time to a subsystem tree.
//
// Design constraints (see docs/METRICS.md):
//  * Cheap hot path. A metric name is interned exactly once (at handle
//    construction); every update is an index into a per-thread shard — no
//    map lookup, no lock, no shared cache line between writer threads.
//  * Deterministic snapshots. Counter and histogram cells are merged by
//    unordered summation, so a snapshot is bit-identical however many
//    worker threads (IPA_JOBS) produced the increments — matching the
//    parallel-runner determinism contract from bench/parallel_runner.h.
//  * Concurrent-safe. Cells are relaxed atomics written by exactly one
//    thread; snapshots may race with writers without UB (they observe a
//    slightly stale but consistent-per-cell view; quiesced snapshots, as
//    taken at process exit, are exact).
//
// Export: any binary linking this library writes a metrics JSON file at
// process exit when IPA_METRICS_JSON is set; bench/tool binaries also accept
// --metrics-json PATH (metrics::InitFromArgs). An unwritable path is a loud
// startup error, never a silent skip. tools/bench_compare diffs two such
// files (counters exactly, histograms within a tolerance) — the building
// block of the CI perf-regression gate.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"

namespace ipa::metrics {

enum class Type : uint8_t { kCounter, kGauge, kHistogram };

const char* TypeName(Type t);

/// Merged histogram cells: power-of-two buckets (bucket 0 holds value 0,
/// bucket i holds values in [2^(i-1), 2^i)), plus count/sum/max. Values are
/// simulated microseconds on every latency metric.
struct HistogramValue {
  static constexpr size_t kBuckets = 65;  // bit_width(uint64) in [0, 64]

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound (exclusive) of the bucket holding the p-th percentile
  /// sample, p in [0,100]; 0 when empty.
  uint64_t PercentileUpperBound(double p) const;
  void Merge(const HistogramValue& other);
};

/// One metric in a snapshot. Exactly one of `value` (counter), `gauge` or
/// `hist` is meaningful, selected by `type`.
struct MetricValue {
  std::string name;
  Type type = Type::kCounter;
  uint64_t value = 0;  ///< Counter.
  int64_t gauge = 0;   ///< Gauge.
  HistogramValue hist;
};

/// A point-in-time merged view of every registered metric, sorted by name
/// (the serialization order is part of the stable JSON schema).
struct Snapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* Find(std::string_view name) const;
  /// Counter value by name; 0 when absent (or not a counter).
  uint64_t Counter(std::string_view name) const;

  /// Serialize to the stable ipa-metrics-v1 JSON document.
  std::string ToJson() const;
};

/// The process-wide registry. Use the typed handles below instead of calling
/// Intern directly; TakeSnapshot() for reporting.
class Registry {
 public:
  // Capacity of the interned id spaces. Registration past a limit is a loud
  // stderr warning and the overflowing metric routes to a dead cell.
  static constexpr uint32_t kMaxCounters = 1024;
  static constexpr uint32_t kMaxGauges = 256;
  static constexpr uint32_t kMaxHistograms = 256;

  /// The singleton (leaked so atexit exporters can always reach it).
  static Registry& Instance();

  /// Intern `name` with `type`; idempotent. Returns the type-specific index.
  uint32_t Intern(std::string_view name, Type type);

  Snapshot TakeSnapshot();

  /// Zero every live cell, retired accumulator and gauge. Test-only: must
  /// not race with concurrent writers.
  void ResetForTest();

  // -- internal (used by the typed handles; not part of the public API) -----
  std::atomic<uint64_t>* CounterCell(uint32_t id);
  void SetGauge(uint32_t id, int64_t v);
  void RecordHistogram(uint32_t id, uint64_t v);

 private:
  friend struct ThreadShard;
  Registry();
  struct Impl;
  Impl* impl_;
};

/// Monotonic event count.
class Counter {
 public:
  explicit Counter(std::string_view name)
      : id_(Registry::Instance().Intern(name, Type::kCounter)) {}
  void Add(uint64_t delta) {
    Registry::Instance().CounterCell(id_)->fetch_add(delta, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

 private:
  uint32_t id_;
};

/// Last-write-wins scalar (e.g. a fingerprint or a configured size).
class Gauge {
 public:
  explicit Gauge(std::string_view name)
      : id_(Registry::Instance().Intern(name, Type::kGauge)) {}
  void Set(int64_t v) { Registry::Instance().SetGauge(id_, v); }

 private:
  uint32_t id_;
};

/// Log-bucketed value distribution (latencies in simulated microseconds).
class Histogram {
 public:
  explicit Histogram(std::string_view name)
      : id_(Registry::Instance().Intern(name, Type::kHistogram)) {}
  void Record(uint64_t v) { Registry::Instance().RecordHistogram(id_, v); }

 private:
  uint32_t id_;
};

// ---------------------------------------------------------------------------
// Trace spans: attribute simulated time to a subsystem tree
// ---------------------------------------------------------------------------

/// Interns the three metrics of one span site: `trace.<name>.calls`,
/// `trace.<name>.sim_us` (inclusive simulated time) and
/// `trace.<name>.self_us` (minus time spent in nested spans). Declared
/// `static` at the instrumentation site via IPA_TRACE_SPAN.
class SpanSite {
 public:
  explicit SpanSite(const char* name);

  Counter calls;
  Counter sim_us;
  Counter self_us;
};

/// RAII span. With a null clock only `calls` is counted. Nesting is tracked
/// per thread so `self_us` excludes child-span time.
class ScopedSpan {
 public:
  ScopedSpan(SpanSite& site, const SimClock* clock);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanSite& site_;
  const SimClock* clock_;
  SimTime t0_ = 0;
  uint64_t child_us_ = 0;
  ScopedSpan* parent_;
};

// IPA_TRACE_SPAN("ftl.gc", &clock) — or IPA_TRACE_SPAN("ftl.gc") to count
// calls without time attribution. Use at block scope; the span closes when
// the enclosing scope exits.
#define IPA_METRICS_CONCAT2(a, b) a##b
#define IPA_METRICS_CONCAT(a, b) IPA_METRICS_CONCAT2(a, b)
#define IPA_TRACE_SPAN_2(name, clock)                                         \
  static ::ipa::metrics::SpanSite IPA_METRICS_CONCAT(ipa_span_site_,          \
                                                     __LINE__)(name);         \
  ::ipa::metrics::ScopedSpan IPA_METRICS_CONCAT(ipa_span_, __LINE__)(         \
      IPA_METRICS_CONCAT(ipa_span_site_, __LINE__), (clock))
#define IPA_TRACE_SPAN_1(name) IPA_TRACE_SPAN_2(name, nullptr)
#define IPA_TRACE_SPAN_GET(_1, _2, macro, ...) macro
#define IPA_TRACE_SPAN(...)                                                   \
  IPA_TRACE_SPAN_GET(__VA_ARGS__, IPA_TRACE_SPAN_2, IPA_TRACE_SPAN_1)         \
  (__VA_ARGS__)

// ---------------------------------------------------------------------------
// Export / import / compare
// ---------------------------------------------------------------------------

/// Consume `--metrics-json PATH` (or `--metrics-json=PATH`) from argv and
/// arrange for a metrics JSON dump at process exit; overrides the
/// IPA_METRICS_JSON environment variable. The path is probed immediately —
/// an unwritable path terminates the process with a loud error (exit 2).
void InitFromArgs(int argc, char** argv);

/// Set the export path directly (same probing/atexit semantics).
void SetExportPath(const std::string& path);

/// Write `snap` as ipa-metrics-v1 JSON. False on I/O failure.
bool WriteSnapshotJson(const Snapshot& snap, const std::string& path);

/// Parse an ipa-metrics-v1 JSON document produced by ToJson().
Status ParseSnapshotJson(std::string_view json, Snapshot* out);

struct CompareOptions {
  /// Relative tolerance for histogram count/mean/max drift.
  double histogram_tolerance = 0.05;
  /// Metric-name prefixes excluded from comparison.
  std::vector<std::string> ignore_prefixes;
};

struct CompareReport {
  std::vector<std::string> diffs;  ///< Failures: one readable line each.
  std::vector<std::string> notes;  ///< Non-fatal observations (new metrics).
  bool ok() const { return diffs.empty(); }
};

/// Compare deterministic metrics exactly (counters, gauges) and histograms
/// within `options.histogram_tolerance`. A metric present in `baseline` but
/// missing from `current` is a failure; a new metric in `current` is a note.
CompareReport CompareSnapshots(const Snapshot& baseline, const Snapshot& current,
                               const CompareOptions& options = {});

}  // namespace ipa::metrics
