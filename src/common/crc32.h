// CRC32 (Castagnoli polynomial, software table implementation).
// Used for page-image checksums in tests and the WAL record integrity check.

#pragma once

#include <cstddef>
#include <cstdint>

namespace ipa {

/// Compute CRC32-C over `data[0..len)`, chained from `seed` (0 to start).
uint32_t Crc32c(const uint8_t* data, size_t len, uint32_t seed = 0);

}  // namespace ipa
