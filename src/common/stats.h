// Statistics primitives: counters, latency accumulators and percentile
// trackers used to produce the paper's tables (host I/O counts, GC activity,
// response times, update-size CDFs).

#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ipa {

/// Accumulates latency samples (simulated microseconds) and reports mean and
/// selected percentiles. Stores a bounded histogram with 1us buckets below
/// 1ms and logarithmic buckets above, so memory stays constant.
class LatencyStats {
 public:
  void Add(uint64_t micros);
  void Merge(const LatencyStats& other);
  void Reset();

  uint64_t count() const { return count_; }
  double MeanMicros() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  double MeanMillis() const { return MeanMicros() / 1000.0; }
  uint64_t MaxMicros() const { return max_; }

  /// p in [0,100]; approximate via the internal histogram.
  uint64_t PercentileMicros(double p) const;

 private:
  static constexpr size_t kLinearBuckets = 1000;   // 0..999us, 1us each
  static constexpr size_t kLogBuckets = 64;        // >=1ms, power-of-two
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  std::vector<uint64_t> linear_ = std::vector<uint64_t>(kLinearBuckets, 0);
  std::vector<uint64_t> log_ = std::vector<uint64_t>(kLogBuckets, 0);
};

/// Records integer samples (e.g. changed bytes per flushed page) and answers
/// CDF / percentile queries exactly. Intended for update-size analyses
/// (Table 1, Table 11, Figures 7-10); sample counts there are modest.
class SampleDistribution {
 public:
  void Add(uint32_t value) {
    counts_[value]++;
    total_++;
  }
  void Merge(const SampleDistribution& other);

  uint64_t total() const { return total_; }

  /// Fraction of samples <= value, in [0,1].
  double CdfAt(uint32_t value) const;

  /// The percentile rank of `value`: 100 * CdfAt(value).
  double PercentileOf(uint32_t value) const { return 100.0 * CdfAt(value); }

  /// Smallest value v such that CdfAt(v) >= p/100.
  uint32_t ValueAtPercentile(double p) const;

  double Mean() const;

  /// Distinct (value, count) pairs in ascending value order.
  std::vector<std::pair<uint32_t, uint64_t>> Points() const;

 private:
  std::map<uint32_t, uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Simple named counter set with formatted reporting; used for per-run I/O
/// accounting where a fixed struct would be too rigid (tests, examples).
class CounterSet {
 public:
  void Inc(const std::string& name, uint64_t delta = 1) { counters_[name] += delta; }
  uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, uint64_t>& All() const { return counters_; }

 private:
  std::map<std::string, uint64_t> counters_;
};

/// Pretty-print helper: 1234567 -> "1 234 567" (matching the paper's tables).
std::string FormatThousands(uint64_t v);

/// Relative change in percent: 100*(now-base)/base; returns 0 for base==0.
double RelPercent(double base, double now);

}  // namespace ipa
