#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace ipa::metrics {

const char* TypeName(Type t) {
  switch (t) {
    case Type::kCounter: return "counter";
    case Type::kGauge: return "gauge";
    case Type::kHistogram: return "histogram";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// HistogramValue
// ---------------------------------------------------------------------------

uint64_t HistogramValue::PercentileUpperBound(double p) const {
  if (count == 0) return 0;
  uint64_t target =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count)));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; i++) {
    seen += buckets[i];
    // Bucket i holds values with bit_width == i, i.e. [2^(i-1), 2^i - 1];
    // bucket 64 is unbounded above (shifting by 64 would be UB anyway).
    if (seen >= target) {
      if (i == 0) return 0;
      return i >= 64 ? UINT64_MAX : (1ull << i) - 1;
    }
  }
  return max;
}

void HistogramValue::Merge(const HistogramValue& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (size_t i = 0; i < kBuckets; i++) buckets[i] += other.buckets[i];
}

// ---------------------------------------------------------------------------
// Registry: per-thread shards of relaxed-atomic cells
// ---------------------------------------------------------------------------

namespace {

struct HistCells {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> max{0};
  std::atomic<uint64_t> buckets[HistogramValue::kBuckets] = {};
};

}  // namespace

/// One thread's private cells. All arrays are allocated at full registry
/// capacity up front so a snapshot never races a container resize; a cell is
/// written by its owning thread only and read (relaxed) by snapshotters.
struct ThreadShard {
  std::unique_ptr<std::atomic<uint64_t>[]> counters;
  std::unique_ptr<HistCells[]> hists;
  Registry::Impl* impl = nullptr;

  ThreadShard()
      : counters(new std::atomic<uint64_t>[Registry::kMaxCounters]),
        hists(new HistCells[Registry::kMaxHistograms]) {
    for (uint32_t i = 0; i < Registry::kMaxCounters; i++) {
      counters[i].store(0, std::memory_order_relaxed);
    }
  }

  /// Folds this shard into the registry's retired accumulator and deletes it.
  void RetireSelf();
};

struct Registry::Impl {
  std::mutex mu;
  struct Def {
    std::string name;
    Type type;
    uint32_t index;
  };
  std::map<std::string, Def, std::less<>> defs;  // name -> definition
  uint32_t next_counter = 0;
  uint32_t next_gauge = 0;
  uint32_t next_hist = 0;
  bool overflow_warned = false;
  bool type_mismatch_warned = false;

  std::vector<ThreadShard*> live_shards;
  /// Accumulated cells of exited threads (plain integers; merged under mu).
  std::vector<uint64_t> retired_counters = std::vector<uint64_t>(kMaxCounters, 0);
  std::vector<HistogramValue> retired_hists =
      std::vector<HistogramValue>(kMaxHistograms);

  std::unique_ptr<std::atomic<int64_t>[]> gauges{
      new std::atomic<int64_t>[kMaxGauges]};

  Impl() {
    for (uint32_t i = 0; i < kMaxGauges; i++) {
      gauges[i].store(0, std::memory_order_relaxed);
    }
  }

  void Retire(ThreadShard* shard) {
    std::lock_guard<std::mutex> lock(mu);
    for (uint32_t i = 0; i < kMaxCounters; i++) {
      retired_counters[i] += shard->counters[i].load(std::memory_order_relaxed);
    }
    for (uint32_t i = 0; i < kMaxHistograms; i++) {
      const HistCells& c = shard->hists[i];
      HistogramValue& r = retired_hists[i];
      r.count += c.count.load(std::memory_order_relaxed);
      r.sum += c.sum.load(std::memory_order_relaxed);
      r.max = std::max(r.max, c.max.load(std::memory_order_relaxed));
      for (size_t b = 0; b < HistogramValue::kBuckets; b++) {
        r.buckets[b] += c.buckets[b].load(std::memory_order_relaxed);
      }
    }
    live_shards.erase(
        std::remove(live_shards.begin(), live_shards.end(), shard),
        live_shards.end());
    delete shard;
  }
};

void ThreadShard::RetireSelf() { impl->Retire(this); }

namespace {

/// Owns a thread's shard; the destructor folds it into the retired
/// accumulator so increments survive worker-thread exit (RunMany pools).
struct ShardTls {
  ThreadShard* shard = nullptr;
  ~ShardTls() {
    if (shard) shard->RetireSelf();
  }
};

thread_local ShardTls g_shard_tls;

// ---------------------------------------------------------------------------
// Export hook (IPA_METRICS_JSON / --metrics-json)
// ---------------------------------------------------------------------------

std::mutex g_export_mu;
std::string& ExportPath() {
  // Leaked: read by the atexit writer after static destruction begins.
  static auto* path = new std::string();
  return *path;
}

void WriteMetricsAtExit() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_export_mu);
    path = ExportPath();
  }
  if (path.empty()) return;
  Snapshot snap = Registry::Instance().TakeSnapshot();
  if (!WriteSnapshotJson(snap, path)) {
    std::fprintf(stderr, "ERROR: metrics export failed: cannot write %s\n",
                 path.c_str());
  }
}

void RegisterExportAtExit() {
  static std::once_flag once;
  std::call_once(once, [] { std::atexit(WriteMetricsAtExit); });
}

/// Fail fast on an unwritable export path: a perf gate that silently loses
/// its metrics file would pass vacuously.
void ProbeWritableOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f) {
    std::fprintf(stderr,
                 "ERROR: metrics export path is not writable: %s "
                 "(IPA_METRICS_JSON / --metrics-json)\n",
                 path.c_str());
    std::exit(2);
  }
  std::fclose(f);
}

/// Adopt IPA_METRICS_JSON the first time any metric is interned, so every
/// instrumented binary exports without explicit setup.
void AdoptEnvExportPath() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("IPA_METRICS_JSON");
    if (!env || !*env) return;
    ProbeWritableOrDie(env);
    {
      std::lock_guard<std::mutex> lock(g_export_mu);
      if (ExportPath().empty()) ExportPath() = env;
    }
    RegisterExportAtExit();
  });
}

}  // namespace

Registry::Registry() : impl_(new Impl()) {}

Registry& Registry::Instance() {
  // Leaked: handles and atexit exporters may outlive static destruction.
  static auto* registry = new Registry();
  return *registry;
}

uint32_t Registry::Intern(std::string_view name, Type type) {
  AdoptEnvExportPath();
  std::lock_guard<std::mutex> lock(impl_->mu);
  uint32_t limit = type == Type::kCounter   ? kMaxCounters
                   : type == Type::kGauge   ? kMaxGauges
                                            : kMaxHistograms;
  auto it = impl_->defs.find(name);
  if (it != impl_->defs.end()) {
    if (it->second.type == type) return it->second.index;
    // A name interned under one type must never hand its index to another
    // type's accessor (the id spaces have different capacities, so a counter
    // index can be out of bounds for the histogram shard arrays). Route the
    // mismatched registration to the requested type's dead cell instead.
    if (!impl_->type_mismatch_warned) {
      impl_->type_mismatch_warned = true;
      std::fprintf(stderr,
                   "WARNING: metric '%.*s' already registered as %s; %s "
                   "registration with the same name is dropped\n",
                   static_cast<int>(name.size()), name.data(),
                   TypeName(it->second.type), TypeName(type));
    }
    return limit - 1;
  }
  uint32_t& next = type == Type::kCounter   ? impl_->next_counter
                   : type == Type::kGauge   ? impl_->next_gauge
                                            : impl_->next_hist;
  // The last index of each id space is a shared dead cell for overflow; its
  // value is garbage, so overflowing metrics are not reported.
  if (next + 1 >= limit) {
    if (!impl_->overflow_warned) {
      impl_->overflow_warned = true;
      std::fprintf(stderr,
                   "WARNING: metric registry full; '%.*s' and later %s "
                   "registrations are dropped\n",
                   static_cast<int>(name.size()), name.data(), TypeName(type));
    }
    return limit - 1;
  }
  uint32_t index = next++;
  impl_->defs.emplace(std::string(name),
                      Impl::Def{std::string(name), type, index});
  return index;
}

std::atomic<uint64_t>* Registry::CounterCell(uint32_t id) {
  ShardTls& tls = g_shard_tls;
  if (!tls.shard) {
    tls.shard = new ThreadShard();
    tls.shard->impl = impl_;
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->live_shards.push_back(tls.shard);
  }
  return &tls.shard->counters[id];
}

void Registry::SetGauge(uint32_t id, int64_t v) {
  impl_->gauges[id].store(v, std::memory_order_relaxed);
}

void Registry::RecordHistogram(uint32_t id, uint64_t v) {
  ShardTls& tls = g_shard_tls;
  if (!tls.shard) {
    tls.shard = new ThreadShard();
    tls.shard->impl = impl_;
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->live_shards.push_back(tls.shard);
  }
  HistCells& c = tls.shard->hists[id];
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(v, std::memory_order_relaxed);
  // Single writer per shard: a plain read-check-store max is race-free.
  if (v > c.max.load(std::memory_order_relaxed)) {
    c.max.store(v, std::memory_order_relaxed);
  }
  c.buckets[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
}

Snapshot Registry::TakeSnapshot() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Snapshot snap;
  snap.metrics.reserve(impl_->defs.size());
  for (const auto& [name, def] : impl_->defs) {
    MetricValue m;
    m.name = def.name;
    m.type = def.type;
    switch (def.type) {
      case Type::kCounter: {
        uint64_t v = impl_->retired_counters[def.index];
        for (ThreadShard* s : impl_->live_shards) {
          v += s->counters[def.index].load(std::memory_order_relaxed);
        }
        m.value = v;
        break;
      }
      case Type::kGauge:
        m.gauge = impl_->gauges[def.index].load(std::memory_order_relaxed);
        break;
      case Type::kHistogram: {
        HistogramValue h = impl_->retired_hists[def.index];
        for (ThreadShard* s : impl_->live_shards) {
          const HistCells& c = s->hists[def.index];
          h.count += c.count.load(std::memory_order_relaxed);
          h.sum += c.sum.load(std::memory_order_relaxed);
          h.max = std::max(h.max, c.max.load(std::memory_order_relaxed));
          for (size_t b = 0; b < HistogramValue::kBuckets; b++) {
            h.buckets[b] += c.buckets[b].load(std::memory_order_relaxed);
          }
        }
        m.hist = h;
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  // defs is an ordered map, so the snapshot is already name-sorted; keep the
  // invariant explicit regardless of the container choice.
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return snap;
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::fill(impl_->retired_counters.begin(), impl_->retired_counters.end(), 0);
  std::fill(impl_->retired_hists.begin(), impl_->retired_hists.end(),
            HistogramValue{});
  for (uint32_t i = 0; i < kMaxGauges; i++) {
    impl_->gauges[i].store(0, std::memory_order_relaxed);
  }
  for (ThreadShard* s : impl_->live_shards) {
    for (uint32_t i = 0; i < kMaxCounters; i++) {
      s->counters[i].store(0, std::memory_order_relaxed);
    }
    for (uint32_t i = 0; i < kMaxHistograms; i++) {
      HistCells& c = s->hists[i];
      c.count.store(0, std::memory_order_relaxed);
      c.sum.store(0, std::memory_order_relaxed);
      c.max.store(0, std::memory_order_relaxed);
      for (size_t b = 0; b < HistogramValue::kBuckets; b++) {
        c.buckets[b].store(0, std::memory_order_relaxed);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

const MetricValue* Snapshot::Find(std::string_view name) const {
  auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const MetricValue& m, std::string_view n) { return m.name < n; });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

uint64_t Snapshot::Counter(std::string_view name) const {
  const MetricValue* m = Find(name);
  return m && m->type == Type::kCounter ? m->value : 0;
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

namespace {
thread_local ScopedSpan* g_current_span = nullptr;
}  // namespace

SpanSite::SpanSite(const char* name)
    : calls(std::string("trace.") + name + ".calls"),
      sim_us(std::string("trace.") + name + ".sim_us"),
      self_us(std::string("trace.") + name + ".self_us") {}

ScopedSpan::ScopedSpan(SpanSite& site, const SimClock* clock)
    : site_(site), clock_(clock), parent_(g_current_span) {
  if (clock_) t0_ = clock_->Now();
  g_current_span = this;
}

ScopedSpan::~ScopedSpan() {
  g_current_span = parent_;
  site_.calls.Inc();
  if (!clock_) return;
  uint64_t total = clock_->Now() - t0_;
  site_.sim_us.Add(total);
  site_.self_us.Add(total >= child_us_ ? total - child_us_ : 0);
  if (parent_) parent_->child_us_ += total;
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

std::string Snapshot::ToJson() const {
  std::string out;
  out.reserve(256 + metrics.size() * 64);
  out += "{\n  \"schema\": \"ipa-metrics-v1\",\n  \"metrics\": [\n";
  char buf[96];
  for (size_t i = 0; i < metrics.size(); i++) {
    const MetricValue& m = metrics[i];
    out += "    {\"name\": \"";
    out += m.name;  // metric names are [a-z0-9._]: no JSON escaping needed
    out += "\", \"type\": \"";
    out += TypeName(m.type);
    out += "\"";
    switch (m.type) {
      case Type::kCounter:
        std::snprintf(buf, sizeof(buf), ", \"value\": %llu",
                      static_cast<unsigned long long>(m.value));
        out += buf;
        break;
      case Type::kGauge:
        std::snprintf(buf, sizeof(buf), ", \"value\": %lld",
                      static_cast<long long>(m.gauge));
        out += buf;
        break;
      case Type::kHistogram: {
        std::snprintf(buf, sizeof(buf),
                      ", \"count\": %llu, \"sum\": %llu, \"max\": %llu",
                      static_cast<unsigned long long>(m.hist.count),
                      static_cast<unsigned long long>(m.hist.sum),
                      static_cast<unsigned long long>(m.hist.max));
        out += buf;
        out += ", \"buckets\": [";
        bool first = true;
        for (size_t b = 0; b < HistogramValue::kBuckets; b++) {
          if (m.hist.buckets[b] == 0) continue;
          std::snprintf(buf, sizeof(buf), "%s[%zu, %llu]", first ? "" : ", ", b,
                        static_cast<unsigned long long>(m.hist.buckets[b]));
          out += buf;
          first = false;
        }
        out += "]";
        break;
      }
    }
    out += i + 1 < metrics.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool WriteSnapshotJson(const Snapshot& snap, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::string json = snap.ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

void SetExportPath(const std::string& path) {
  ProbeWritableOrDie(path);
  {
    std::lock_guard<std::mutex> lock(g_export_mu);
    ExportPath() = path;
  }
  RegisterExportAtExit();
}

void InitFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    std::string_view arg(argv[i]);
    if (arg == "--metrics-json" && i + 1 < argc) {
      SetExportPath(argv[i + 1]);
      return;
    }
    constexpr std::string_view kPrefix = "--metrics-json=";
    if (arg.substr(0, kPrefix.size()) == kPrefix) {
      SetExportPath(std::string(arg.substr(kPrefix.size())));
      return;
    }
  }
  // No flag: fall back to the environment variable (probed so a bad path
  // fails at startup even for binaries that register no metric early).
  AdoptEnvExportPath();
}

// ---------------------------------------------------------------------------
// JSON import (minimal parser for the ipa-metrics-v1 schema)
// ---------------------------------------------------------------------------

namespace {

struct Cursor {
  std::string_view s;
  size_t pos = 0;

  void SkipWs() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) pos++;
  }
  bool Eat(char c) {
    SkipWs();
    if (pos < s.size() && s[pos] == c) {
      pos++;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return pos < s.size() && s[pos] == c;
  }
};

Status ParseError(const char* what) {
  return Status::Corruption(std::string("metrics JSON: ") + what);
}

Status ParseString(Cursor& c, std::string* out) {
  if (!c.Eat('"')) return ParseError("expected string");
  out->clear();
  while (c.pos < c.s.size() && c.s[c.pos] != '"') {
    char ch = c.s[c.pos++];
    if (ch == '\\') {
      if (c.pos >= c.s.size()) return ParseError("bad escape");
      out->push_back(c.s[c.pos++]);
    } else {
      out->push_back(ch);
    }
  }
  if (c.pos >= c.s.size()) return ParseError("unterminated string");
  c.pos++;  // closing quote
  return Status::OK();
}

Status ParseInt(Cursor& c, int64_t* out) {
  c.SkipWs();
  size_t start = c.pos;
  if (c.pos < c.s.size() && c.s[c.pos] == '-') c.pos++;
  while (c.pos < c.s.size() && std::isdigit(static_cast<unsigned char>(c.s[c.pos]))) {
    c.pos++;
  }
  if (c.pos == start) return ParseError("expected number");
  *out = std::strtoll(std::string(c.s.substr(start, c.pos - start)).c_str(),
                      nullptr, 10);
  return Status::OK();
}

Status ParseU64(Cursor& c, uint64_t* out) {
  c.SkipWs();
  size_t start = c.pos;
  while (c.pos < c.s.size() && std::isdigit(static_cast<unsigned char>(c.s[c.pos]))) {
    c.pos++;
  }
  if (c.pos == start) return ParseError("expected unsigned number");
  *out = std::strtoull(std::string(c.s.substr(start, c.pos - start)).c_str(),
                       nullptr, 10);
  return Status::OK();
}

Status ParseBuckets(Cursor& c, HistogramValue* h) {
  if (!c.Eat('[')) return ParseError("expected bucket array");
  if (c.Eat(']')) return Status::OK();
  do {
    if (!c.Eat('[')) return ParseError("expected bucket pair");
    uint64_t index = 0, count = 0;
    IPA_RETURN_NOT_OK(ParseU64(c, &index));
    if (!c.Eat(',')) return ParseError("expected ',' in bucket pair");
    IPA_RETURN_NOT_OK(ParseU64(c, &count));
    if (!c.Eat(']')) return ParseError("expected ']' after bucket pair");
    if (index >= HistogramValue::kBuckets) return ParseError("bucket out of range");
    h->buckets[index] = count;
  } while (c.Eat(','));
  if (!c.Eat(']')) return ParseError("expected ']' after buckets");
  return Status::OK();
}

Status ParseMetric(Cursor& c, MetricValue* m) {
  if (!c.Eat('{')) return ParseError("expected metric object");
  std::string type_name;
  int64_t signed_value = 0;
  uint64_t unsigned_value = 0;
  do {
    std::string key;
    IPA_RETURN_NOT_OK(ParseString(c, &key));
    if (!c.Eat(':')) return ParseError("expected ':'");
    if (key == "name") {
      IPA_RETURN_NOT_OK(ParseString(c, &m->name));
    } else if (key == "type") {
      IPA_RETURN_NOT_OK(ParseString(c, &type_name));
    } else if (key == "value") {
      IPA_RETURN_NOT_OK(ParseInt(c, &signed_value));
      unsigned_value = static_cast<uint64_t>(signed_value);
    } else if (key == "count") {
      IPA_RETURN_NOT_OK(ParseU64(c, &m->hist.count));
    } else if (key == "sum") {
      IPA_RETURN_NOT_OK(ParseU64(c, &m->hist.sum));
    } else if (key == "max") {
      IPA_RETURN_NOT_OK(ParseU64(c, &m->hist.max));
    } else if (key == "buckets") {
      IPA_RETURN_NOT_OK(ParseBuckets(c, &m->hist));
    } else {
      return ParseError("unknown metric key");
    }
  } while (c.Eat(','));
  if (!c.Eat('}')) return ParseError("expected '}' after metric");

  if (type_name == "counter") {
    m->type = Type::kCounter;
    m->value = unsigned_value;
  } else if (type_name == "gauge") {
    m->type = Type::kGauge;
    m->gauge = signed_value;
  } else if (type_name == "histogram") {
    m->type = Type::kHistogram;
  } else {
    return ParseError("unknown metric type");
  }
  return Status::OK();
}

}  // namespace

Status ParseSnapshotJson(std::string_view json, Snapshot* out) {
  out->metrics.clear();
  Cursor c{json};
  if (!c.Eat('{')) return ParseError("expected top-level object");
  bool saw_schema = false;
  do {
    std::string key;
    IPA_RETURN_NOT_OK(ParseString(c, &key));
    if (!c.Eat(':')) return ParseError("expected ':'");
    if (key == "schema") {
      std::string schema;
      IPA_RETURN_NOT_OK(ParseString(c, &schema));
      if (schema != "ipa-metrics-v1") return ParseError("unsupported schema");
      saw_schema = true;
    } else if (key == "metrics") {
      if (!c.Eat('[')) return ParseError("expected metrics array");
      if (!c.Peek(']')) {
        do {
          MetricValue m;
          IPA_RETURN_NOT_OK(ParseMetric(c, &m));
          out->metrics.push_back(std::move(m));
        } while (c.Eat(','));
      }
      if (!c.Eat(']')) return ParseError("expected ']' after metrics");
    } else {
      return ParseError("unknown top-level key");
    }
  } while (c.Eat(','));
  if (!c.Eat('}')) return ParseError("expected final '}'");
  if (!saw_schema) return ParseError("missing schema marker");
  std::sort(out->metrics.begin(), out->metrics.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Compare
// ---------------------------------------------------------------------------

namespace {

bool Ignored(const std::string& name, const CompareOptions& options) {
  for (const std::string& prefix : options.ignore_prefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

double RelDiff(double base, double now) {
  if (base == 0.0) return now == 0.0 ? 0.0 : 1.0;
  return std::fabs(now - base) / std::fabs(base);
}

std::string DiffLine(const std::string& name, const char* what, double base,
                     double now) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s: %s %.6g -> %.6g (%+.2f%%)", name.c_str(),
                what, base, now, base == 0.0 ? 0.0 : 100.0 * (now - base) / base);
  return buf;
}

}  // namespace

CompareReport CompareSnapshots(const Snapshot& baseline, const Snapshot& current,
                               const CompareOptions& options) {
  CompareReport report;
  for (const MetricValue& b : baseline.metrics) {
    if (Ignored(b.name, options)) continue;
    const MetricValue* cur = current.Find(b.name);
    if (!cur) {
      report.diffs.push_back(b.name + ": missing from current run");
      continue;
    }
    if (cur->type != b.type) {
      report.diffs.push_back(b.name + ": type changed (" +
                             std::string(TypeName(b.type)) + " -> " +
                             TypeName(cur->type) + ")");
      continue;
    }
    switch (b.type) {
      case Type::kCounter:
        if (cur->value != b.value) {
          report.diffs.push_back(
              DiffLine(b.name, "counter", static_cast<double>(b.value),
                       static_cast<double>(cur->value)));
        }
        break;
      case Type::kGauge:
        if (cur->gauge != b.gauge) {
          report.diffs.push_back(DiffLine(b.name, "gauge",
                                          static_cast<double>(b.gauge),
                                          static_cast<double>(cur->gauge)));
        }
        break;
      case Type::kHistogram: {
        double tol = options.histogram_tolerance;
        if (RelDiff(static_cast<double>(b.hist.count),
                    static_cast<double>(cur->hist.count)) > tol) {
          report.diffs.push_back(DiffLine(b.name, "histogram count",
                                          static_cast<double>(b.hist.count),
                                          static_cast<double>(cur->hist.count)));
        } else if (RelDiff(b.hist.Mean(), cur->hist.Mean()) > tol) {
          report.diffs.push_back(
              DiffLine(b.name, "histogram mean", b.hist.Mean(), cur->hist.Mean()));
        } else if (RelDiff(static_cast<double>(b.hist.max),
                           static_cast<double>(cur->hist.max)) > tol) {
          report.diffs.push_back(DiffLine(b.name, "histogram max",
                                          static_cast<double>(b.hist.max),
                                          static_cast<double>(cur->hist.max)));
        }
        break;
      }
    }
  }
  for (const MetricValue& c : current.metrics) {
    if (Ignored(c.name, options)) continue;
    if (!baseline.Find(c.name)) {
      report.notes.push_back(c.name + ": new metric (absent from baseline)");
    }
  }
  return report;
}

}  // namespace ipa::metrics
