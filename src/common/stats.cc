#include "common/stats.h"

#include <bit>
#include <cmath>

namespace ipa {

void LatencyStats::Add(uint64_t micros) {
  count_++;
  sum_ += micros;
  max_ = std::max(max_, micros);
  if (micros < kLinearBuckets) {
    linear_[micros]++;
  } else {
    // Bucket i holds [2^i ms, 2^(i+1) ms) measured from 1ms upward.
    uint64_t ms = micros / 1000;
    size_t idx = std::min<size_t>(kLogBuckets - 1, std::bit_width(ms) - 1);
    log_[idx]++;
  }
}

void LatencyStats::Merge(const LatencyStats& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  for (size_t i = 0; i < kLinearBuckets; i++) linear_[i] += other.linear_[i];
  for (size_t i = 0; i < kLogBuckets; i++) log_[i] += other.log_[i];
}

void LatencyStats::Reset() {
  count_ = sum_ = max_ = 0;
  std::fill(linear_.begin(), linear_.end(), 0);
  std::fill(log_.begin(), log_.end(), 0);
}

uint64_t LatencyStats::PercentileMicros(double p) const {
  if (count_ == 0) return 0;
  uint64_t target = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kLinearBuckets; i++) {
    seen += linear_[i];
    if (seen >= target) return i;
  }
  for (size_t i = 0; i < kLogBuckets; i++) {
    seen += log_[i];
    if (seen >= target) return (1ull << i) * 1000;
  }
  return max_;
}

void SampleDistribution::Merge(const SampleDistribution& other) {
  for (const auto& [v, c] : other.counts_) counts_[v] += c;
  total_ += other.total_;
}

double SampleDistribution::CdfAt(uint32_t value) const {
  if (total_ == 0) return 0.0;
  uint64_t below = 0;
  for (const auto& [v, c] : counts_) {
    if (v > value) break;
    below += c;
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

uint32_t SampleDistribution::ValueAtPercentile(double p) const {
  if (total_ == 0) return 0;
  uint64_t target = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(total_)));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (const auto& [v, c] : counts_) {
    seen += c;
    if (seen >= target) return v;
  }
  return counts_.rbegin()->first;
}

double SampleDistribution::Mean() const {
  if (total_ == 0) return 0.0;
  double sum = 0;
  for (const auto& [v, c] : counts_) sum += static_cast<double>(v) * static_cast<double>(c);
  return sum / static_cast<double>(total_);
}

std::vector<std::pair<uint32_t, uint64_t>> SampleDistribution::Points() const {
  return {counts_.begin(), counts_.end()};
}

std::string FormatThousands(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int since = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since == 3) {
      out.push_back(' ');
      since = 0;
    }
    out.push_back(*it);
    since++;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

double RelPercent(double base, double now) {
  if (base == 0.0) return 0.0;
  return 100.0 * (now - base) / base;
}

}  // namespace ipa
