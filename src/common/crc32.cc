#include "common/crc32.h"

#include <array>

namespace ipa {

namespace {
constexpr uint32_t kPoly = 0x82F63B78u;  // CRC32-C reflected polynomial

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int k = 0; k < 8; k++) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256> kTable = MakeTable();
}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t len, uint32_t seed) {
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; i++) {
    crc = kTable[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ipa
