#include "workload/tpcb.h"

#include "common/bytes.h"
#include "common/metrics.h"

namespace ipa::workload {

namespace {

std::vector<uint8_t> MakeTuple(uint32_t size, uint64_t id, int32_t balance) {
  std::vector<uint8_t> t(size, 0x20);  // filler: spaces, like CHAR padding
  EncodeU64(t.data(), id);
  EncodeU32(t.data() + 8, 0);
  EncodeU32(t.data() + Tpcb::kBalanceOffset, static_cast<uint32_t>(balance));
  return t;
}

}  // namespace

Tpcb::Tpcb(engine::Database* db, TpcbConfig config, TablespaceMap ts_of)
    : db_(db), config_(config), ts_of_(std::move(ts_of)), rng_(config.seed) {}

uint64_t Tpcb::EstimatedPages(uint32_t page_size) const {
  uint64_t per_page_accounts = page_size / (kAccountTupleSize + 8);
  uint64_t accounts =
      static_cast<uint64_t>(config_.branches) * config_.accounts_per_branch;
  uint64_t pages = accounts / per_page_accounts + 16;
  pages += pages / 8;  // index pages (16B entries, high fanout) + slack
  return pages;
}

Status Tpcb::Load() {
  IPA_ASSIGN_OR_RETURN(branch_, db_->CreateTable("BRANCH", ts_of_("BRANCH")));
  IPA_ASSIGN_OR_RETURN(teller_, db_->CreateTable("TELLER", ts_of_("TELLER")));
  IPA_ASSIGN_OR_RETURN(account_, db_->CreateTable("ACCOUNT", ts_of_("ACCOUNT")));
  IPA_ASSIGN_OR_RETURN(history_, db_->CreateTable("HISTORY", ts_of_("HISTORY")));
  IPA_ASSIGN_OR_RETURN(
      engine::Btree tree,
      engine::Btree::Create(db_, "ACCOUNT_IDX", ts_of_("ACCOUNT_IDX")));
  account_index_ = std::make_unique<engine::Btree>(std::move(tree));

  for (uint32_t b = 0; b < config_.branches; b++) {
    engine::TxnId txn = db_->Begin();
    IPA_ASSIGN_OR_RETURN(engine::Rid rid,
                         db_->Insert(txn, branch_, MakeTuple(kBranchTupleSize, b, 0)));
    branch_rids_.push_back(rid);
    for (uint32_t t = 0; t < config_.tellers_per_branch; t++) {
      IPA_ASSIGN_OR_RETURN(
          engine::Rid trd,
          db_->Insert(txn, teller_,
                      MakeTuple(kTellerTupleSize,
                                static_cast<uint64_t>(b) * config_.tellers_per_branch + t, 0)));
      teller_rids_.push_back(trd);
    }
    IPA_RETURN_NOT_OK(db_->Commit(txn));

    // Accounts in batches.
    uint64_t base = static_cast<uint64_t>(b) * config_.accounts_per_branch;
    uint32_t batch = 0;
    engine::TxnId load = db_->Begin();
    for (uint32_t a = 0; a < config_.accounts_per_branch; a++) {
      IPA_ASSIGN_OR_RETURN(
          engine::Rid rid,
          db_->Insert(load, account_, MakeTuple(kAccountTupleSize, base + a, 0)));
      IPA_RETURN_NOT_OK(account_index_->Insert(base + a, rid.Pack()));
      if (++batch == 2000) {
        IPA_RETURN_NOT_OK(db_->Commit(load));
        load = db_->Begin();
        batch = 0;
      }
    }
    IPA_RETURN_NOT_OK(db_->Commit(load));
  }
  return Status::OK();
}

Status Tpcb::RebuildIndexes() {
  // A fresh index (the old non-logged index pages are orphaned in the
  // tablespace; a production system would recycle them via Trim).
  IPA_ASSIGN_OR_RETURN(
      engine::Btree tree,
      engine::Btree::Create(db_, "ACCOUNT_IDX_R", ts_of_("ACCOUNT_IDX")));
  account_index_ = std::make_unique<engine::Btree>(std::move(tree));
  Status index_status = Status::OK();
  IPA_RETURN_NOT_OK(db_->Scan(
      account_, [&](engine::Rid rid, std::span<const uint8_t> tuple) {
        uint64_t aid = DecodeU64(tuple.data());
        index_status = account_index_->Insert(aid, rid.Pack());
        return index_status.ok();
      }));
  IPA_RETURN_NOT_OK(index_status);

  branch_rids_.clear();
  IPA_RETURN_NOT_OK(db_->Scan(branch_, [&](engine::Rid rid,
                                           std::span<const uint8_t>) {
    branch_rids_.push_back(rid);
    return true;
  }));
  teller_rids_.clear();
  IPA_RETURN_NOT_OK(db_->Scan(teller_, [&](engine::Rid rid,
                                           std::span<const uint8_t>) {
    teller_rids_.push_back(rid);
    return true;
  }));
  return Status::OK();
}

Result<bool> Tpcb::RunTransaction() {
  static metrics::Counter account_update("workload.tpcb.account_update");
  account_update.Inc();
  // Account_Update: the only TPC-B transaction.
  uint64_t accounts =
      static_cast<uint64_t>(config_.branches) * config_.accounts_per_branch;
  uint64_t aid = rng_.Uniform(accounts);
  uint32_t branch = static_cast<uint32_t>(aid / config_.accounts_per_branch);
  uint32_t teller = branch * config_.tellers_per_branch +
                    static_cast<uint32_t>(rng_.Uniform(config_.tellers_per_branch));
  int32_t delta = static_cast<int32_t>(rng_.UniformRange(-99999, 99999));

  engine::TxnId txn = db_->Begin();
  auto fail = [&](Status s) -> Result<bool> {
    (void)db_->Abort(txn);
    return s;
  };

  // Account: balance += delta (4-byte numeric; typically only the least
  // significant bytes actually change on the page).
  auto packed = account_index_->Lookup(aid);
  if (!packed.ok()) return fail(packed.status());
  engine::Rid arid = engine::Rid::Unpack(packed.value());
  auto tuple = db_->Read(txn, arid, /*for_update=*/true);
  if (!tuple.ok()) return fail(tuple.status());
  int32_t bal = static_cast<int32_t>(DecodeU32(tuple.value().data() + kBalanceOffset));
  uint8_t newbal[4];
  EncodeU32(newbal, static_cast<uint32_t>(bal + delta));
  Status s = db_->Update(txn, arid, kBalanceOffset, newbal);
  if (!s.ok()) return fail(s);

  // Teller and branch balances.
  for (engine::Rid rid : {teller_rids_[teller], branch_rids_[branch]}) {
    auto row = db_->Read(txn, rid, /*for_update=*/true);
    if (!row.ok()) return fail(row.status());
    int32_t rb = static_cast<int32_t>(DecodeU32(row.value().data() + kBalanceOffset));
    uint8_t nb[4];
    EncodeU32(nb, static_cast<uint32_t>(rb + delta));
    s = db_->Update(txn, rid, kBalanceOffset, nb);
    if (!s.ok()) return fail(s);
  }

  // History append (~20 bytes of net payload in the spec; 50B row here).
  std::vector<uint8_t> hist(kHistoryTupleSize, 0);
  EncodeU64(hist.data(), aid);
  EncodeU32(hist.data() + 8, teller);
  EncodeU32(hist.data() + 12, branch);
  EncodeU32(hist.data() + 16, static_cast<uint32_t>(delta));
  auto hr = db_->Insert(txn, history_, hist);
  if (!hr.ok()) return fail(hr.status());

  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Status RunTransactions(Workload& w, uint64_t n) {
  static metrics::Counter txns("workload.txns");
  static metrics::Counter rollbacks("workload.rollbacks");
  for (uint64_t i = 0; i < n; i++) {
    auto r = w.RunTransaction();
    IPA_RETURN_NOT_OK(r.status());
    txns.Inc();
    if (!r.value()) rollbacks.Inc();  // spec-mandated rollback, not an error
  }
  return Status::OK();
}

}  // namespace ipa::workload
