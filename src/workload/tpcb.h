// TPC-B: the Account_Update transaction (Appendix A.0.1).
//
// Schema: BRANCH (1 per scale unit), TELLER (10 per branch), ACCOUNT
// (accounts_per_branch per branch; 100 000 in the spec, scaled down here),
// HISTORY (append-only). The single transaction adds a random delta to one
// account, its teller and its branch balance, and appends a history row —
// three 4-byte-net page updates plus one ~20-byte append, exactly the
// profile behind Figure 7.

#pragma once

#include <vector>

#include "engine/btree.h"
#include "workload/workload.h"

namespace ipa::workload {

struct TpcbConfig {
  uint32_t branches = 1;
  uint32_t tellers_per_branch = 10;
  uint32_t accounts_per_branch = 100000;
  uint64_t seed = 7;
};

class Tpcb : public Workload {
 public:
  /// `index_ts` may differ from the data tablespace (e.g. to give index
  /// pages their own region); pass the same id to co-locate.
  Tpcb(engine::Database* db, TpcbConfig config, TablespaceMap ts_of);

  Status Load() override;
  Result<bool> RunTransaction() override;
  std::string name() const override { return "TPC-B"; }
  uint64_t EstimatedPages(uint32_t page_size) const override;

  /// After crash recovery: rebuild the account B+tree and the branch/teller
  /// rid caches from heap scans (the heap is the recovered source of truth).
  Status RebuildIndexes() override;

  engine::TableId account_table() const { return account_; }

  /// Tuple layouts (offsets used by the transaction's byte-level updates).
  static constexpr uint32_t kBalanceOffset = 12;  // i32, little-endian
  static constexpr uint32_t kAccountTupleSize = 100;
  static constexpr uint32_t kBranchTupleSize = 100;
  static constexpr uint32_t kTellerTupleSize = 100;
  static constexpr uint32_t kHistoryTupleSize = 50;

 private:
  engine::Database* db_;
  TpcbConfig config_;
  TablespaceMap ts_of_;
  Rng rng_;

  engine::TableId branch_ = 0, teller_ = 0, account_ = 0, history_ = 0;
  std::vector<engine::Rid> branch_rids_;
  std::vector<engine::Rid> teller_rids_;
  std::unique_ptr<engine::Btree> account_index_;
};

}  // namespace ipa::workload
