// TPC-H-lite: a scan/analytics mix interleaved with OLTP writers, modeled on
// KVell's workload-scan.c / workload-tpch.c (PAPERS.md). One LINEITEM-style
// fact table takes range scans with aggregation (Q1/Q6-lite) while writer
// transactions keep mutating quantities and prices and appending fresh rows
// — so scans run against pages whose delta areas are live, and under a
// larger-than-RAM dataset the mix exercises eviction, scrub and GC instead
// of the fits-in-RAM regime.
//
// Determinism: every decision draws from the seeded Rng, and each analytics
// query folds its aggregate into `agg_fingerprint()` — the cross-IPA_JOBS
// determinism oracle (tests/delta_codec_test.cc).

#pragma once

#include <memory>
#include <vector>

#include "engine/btree.h"
#include "workload/workload.h"

namespace ipa::workload {

struct TpchLiteConfig {
  /// Rows in the LINEITEM fact table.
  uint64_t rows = 40000;
  /// Rows visited by one range scan.
  uint32_t scan_span = 512;
  /// One analytics transaction every `scan_every` transactions; the rest
  /// are OLTP writers.
  uint32_t scan_every = 8;
  /// One writer in `insert_every` appends a fresh row instead of updating.
  uint32_t insert_every = 16;
  uint32_t seed = 11;
};

class TpchLite : public Workload {
 public:
  static constexpr uint32_t kLineTupleSize = 120;
  static constexpr uint32_t kQtyOffset = 8;
  static constexpr uint32_t kPriceOffset = 12;
  static constexpr uint32_t kDiscountOffset = 16;
  static constexpr uint32_t kShipDateOffset = 20;

  TpchLite(engine::Database* db, TpchLiteConfig config, TablespaceMap ts_of);

  Status Load() override;
  Result<bool> RunTransaction() override;
  std::string name() const override { return "tpch-lite"; }
  Status RebuildIndexes() override;
  uint64_t EstimatedPages(uint32_t page_size) const override;

  /// Order-sensitive digest of every aggregate any analytics query computed
  /// so far. Two runs with the same seed and transaction count must agree
  /// byte for byte, whatever IPA_JOBS or the codec in use.
  uint64_t agg_fingerprint() const { return agg_fingerprint_; }
  uint64_t scans_run() const { return scans_run_; }

 private:
  Result<bool> RunAnalytics();
  Result<bool> RunWriter();

  engine::Database* db_;
  TpchLiteConfig config_;
  TablespaceMap ts_of_;
  Rng rng_;

  engine::TableId lineitem_ = 0;
  std::unique_ptr<engine::Btree> line_index_;
  uint64_t next_row_ = 0;  ///< Next fresh row key for inserts.
  uint64_t txn_counter_ = 0;
  uint64_t agg_fingerprint_ = 0;
  uint64_t scans_run_ = 0;
};

}  // namespace ipa::workload
