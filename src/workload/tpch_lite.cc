#include "workload/tpch_lite.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/metrics.h"

namespace ipa::workload {

namespace {

/// 64-bit mix (splitmix64 finalizer) for the aggregate fingerprint: cheap,
/// deterministic, and order-sensitive when chained.
uint64_t Mix(uint64_t h, uint64_t v) {
  uint64_t x = h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

std::vector<uint8_t> MakeRow(uint64_t key, Rng& rng) {
  std::vector<uint8_t> t(TpchLite::kLineTupleSize, 0x20);
  EncodeU64(t.data(), key);
  EncodeU32(t.data() + TpchLite::kQtyOffset,
            static_cast<uint32_t>(1 + rng.Uniform(50)));
  EncodeU32(t.data() + TpchLite::kPriceOffset,
            static_cast<uint32_t>(100 + rng.Uniform(100000)));
  EncodeU32(t.data() + TpchLite::kDiscountOffset,
            static_cast<uint32_t>(rng.Uniform(11)));
  EncodeU32(t.data() + TpchLite::kShipDateOffset,
            static_cast<uint32_t>(rng.Uniform(2466)));
  t[24] = static_cast<uint8_t>('A' + rng.Uniform(3));  // returnflag
  return t;
}

}  // namespace

TpchLite::TpchLite(engine::Database* db, TpchLiteConfig config,
                   TablespaceMap ts_of)
    : db_(db), config_(config), ts_of_(std::move(ts_of)), rng_(config.seed) {}

uint64_t TpchLite::EstimatedPages(uint32_t page_size) const {
  uint64_t per_page = page_size / (kLineTupleSize + 8);
  uint64_t pages = config_.rows / per_page + 16;
  pages += pages / 8;  // index pages + slack
  return pages;
}

Status TpchLite::Load() {
  IPA_ASSIGN_OR_RETURN(lineitem_,
                       db_->CreateTable("LINEITEM", ts_of_("LINEITEM")));
  IPA_ASSIGN_OR_RETURN(
      engine::Btree tree,
      engine::Btree::Create(db_, "LINEITEM_IDX", ts_of_("LINEITEM_IDX")));
  line_index_ = std::make_unique<engine::Btree>(std::move(tree));

  uint32_t batch = 0;
  engine::TxnId load = db_->Begin();
  for (uint64_t i = 0; i < config_.rows; i++) {
    IPA_ASSIGN_OR_RETURN(engine::Rid rid,
                         db_->Insert(load, lineitem_, MakeRow(i, rng_)));
    IPA_RETURN_NOT_OK(line_index_->Insert(i, rid.Pack()));
    if (++batch == 2000) {
      IPA_RETURN_NOT_OK(db_->Commit(load));
      load = db_->Begin();
      batch = 0;
    }
  }
  IPA_RETURN_NOT_OK(db_->Commit(load));
  next_row_ = config_.rows;
  return Status::OK();
}

Status TpchLite::RebuildIndexes() {
  IPA_ASSIGN_OR_RETURN(
      engine::Btree tree,
      engine::Btree::Create(db_, "LINEITEM_IDX_R", ts_of_("LINEITEM_IDX")));
  line_index_ = std::make_unique<engine::Btree>(std::move(tree));
  Status index_status = Status::OK();
  uint64_t max_key = 0;
  IPA_RETURN_NOT_OK(db_->Scan(
      lineitem_, [&](engine::Rid rid, std::span<const uint8_t> tuple) {
        uint64_t key = DecodeU64(tuple.data());
        max_key = std::max(max_key, key);
        index_status = line_index_->Insert(key, rid.Pack());
        return index_status.ok();
      }));
  IPA_RETURN_NOT_OK(index_status);
  next_row_ = max_key + 1;
  return Status::OK();
}

Result<bool> TpchLite::RunTransaction() {
  txn_counter_++;
  if (config_.scan_every > 0 && txn_counter_ % config_.scan_every == 0) {
    return RunAnalytics();
  }
  return RunWriter();
}

Result<bool> TpchLite::RunAnalytics() {
  static metrics::Counter scans("workload.tpch_lite.scans");
  static metrics::Counter scan_rows("workload.tpch_lite.scan_rows");
  scans.Inc();

  if (next_row_ == 0) return true;  // nothing loaded yet
  // Q1-lite (even draws): sum qty and discounted price over a key range.
  // Q6-lite (odd draws): the same range, but only rows inside a shipdate
  // window and below a quantity threshold contribute.
  uint64_t span = std::min<uint64_t>(config_.scan_span, next_row_);
  uint64_t start = rng_.Uniform(next_row_ - span + 1);
  bool filtered = rng_.Uniform(2) == 1;
  uint32_t date_lo = static_cast<uint32_t>(rng_.Uniform(2000));
  uint32_t date_hi = date_lo + 365;

  engine::TxnId txn = db_->Begin();
  auto fail = [&](Status s) -> Result<bool> {
    (void)db_->Abort(txn);
    return s;
  };

  uint64_t sum_qty = 0, sum_price = 0, rows = 0;
  Status read_status = Status::OK();
  Status s = line_index_->Scan(
      start, start + span - 1, [&](uint64_t, uint64_t packed) {
        auto tuple = db_->Read(txn, engine::Rid::Unpack(packed),
                               /*for_update=*/false);
        if (!tuple.ok()) {
          read_status = tuple.status();
          return false;
        }
        const uint8_t* t = tuple.value().data();
        uint32_t qty = DecodeU32(t + kQtyOffset);
        uint32_t price = DecodeU32(t + kPriceOffset);
        uint32_t discount = DecodeU32(t + kDiscountOffset);
        uint32_t shipdate = DecodeU32(t + kShipDateOffset);
        if (filtered && (shipdate < date_lo || shipdate >= date_hi || qty >= 25)) {
          return true;
        }
        sum_qty += qty;
        sum_price += static_cast<uint64_t>(price) * (100 - 10 * discount) / 100;
        rows++;
        return true;
      });
  if (!s.ok()) return fail(s);
  if (!read_status.ok()) return fail(read_status);
  IPA_RETURN_NOT_OK(db_->Commit(txn));

  agg_fingerprint_ = Mix(agg_fingerprint_, sum_qty);
  agg_fingerprint_ = Mix(agg_fingerprint_, sum_price);
  agg_fingerprint_ = Mix(agg_fingerprint_, rows);
  scans_run_++;
  scan_rows.Add(rows);
  return true;
}

Result<bool> TpchLite::RunWriter() {
  static metrics::Counter writes("workload.tpch_lite.writer_txns");
  writes.Inc();

  engine::TxnId txn = db_->Begin();
  auto fail = [&](Status s) -> Result<bool> {
    (void)db_->Abort(txn);
    return s;
  };

  if (config_.insert_every > 0 && txn_counter_ % config_.insert_every == 0) {
    // Fresh row append (the fact table grows throughout the run).
    uint64_t key = next_row_;
    auto rid = db_->Insert(txn, lineitem_, MakeRow(key, rng_));
    if (!rid.ok()) return fail(rid.status());
    Status s = line_index_->Insert(key, rid.value().Pack());
    if (!s.ok()) return fail(s);
    IPA_RETURN_NOT_OK(db_->Commit(txn));
    next_row_ = key + 1;
    return true;
  }

  // Price/quantity touch-up on one random row: two 4-byte in-place updates,
  // the IPA-friendly footprint.
  uint64_t key = rng_.Uniform(next_row_);
  int32_t dq = static_cast<int32_t>(rng_.UniformRange(-3, 3));
  int32_t dp = static_cast<int32_t>(rng_.UniformRange(-500, 500));
  auto packed = line_index_->Lookup(key);
  if (!packed.ok()) return fail(packed.status());
  engine::Rid rid = engine::Rid::Unpack(packed.value());
  auto tuple = db_->Read(txn, rid, /*for_update=*/true);
  if (!tuple.ok()) return fail(tuple.status());
  uint32_t qty = DecodeU32(tuple.value().data() + kQtyOffset);
  uint32_t price = DecodeU32(tuple.value().data() + kPriceOffset);
  uint8_t nq[4], np[4];
  EncodeU32(nq, static_cast<uint32_t>(
                    std::max<int64_t>(1, static_cast<int64_t>(qty) + dq)));
  EncodeU32(np, static_cast<uint32_t>(
                    std::max<int64_t>(100, static_cast<int64_t>(price) + dp)));
  Status s = db_->Update(txn, rid, kQtyOffset, nq);
  if (!s.ok()) return fail(s);
  s = db_->Update(txn, rid, kPriceOffset, np);
  if (!s.ok()) return fail(s);
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

}  // namespace ipa::workload
