#include "workload/linkbench.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/metrics.h"

namespace ipa::workload {

Linkbench::Linkbench(engine::Database* db, LinkbenchConfig config,
                     TablespaceMap ts_of)
    : db_(db),
      config_(config),
      ts_of_(std::move(ts_of)),
      rng_(config.seed),
      // Node payload sizes: average a bit under 90B (LinkBench paper).
      node_payload_cdf_({{0, 0.02},
                         {32, 0.20},
                         {64, 0.45},
                         {90, 0.65},
                         {128, 0.80},
                         {256, 0.92},
                         {512, 0.98},
                         {1024, 1.0}}),
      // Link payloads: almost half empty, rest tiny (< 12B average).
      link_payload_cdf_({{0, 0.45}, {4, 0.6}, {8, 0.8}, {12, 0.95}, {16, 1.0}}) {
  zipf_ = std::make_unique<ZipfianGenerator>(config.nodes, config.zipf_theta);
}

uint64_t Linkbench::EstimatedPages(uint32_t page_size) const {
  uint64_t node_bytes = config_.nodes * (kNodeHeader + 100 + 8);
  uint64_t links = static_cast<uint64_t>(
      static_cast<double>(config_.nodes) * config_.links_per_node);
  uint64_t link_bytes = links * (kLinkHeader + 8 + 8);
  uint64_t count_bytes = config_.nodes * (kCountSize + 8);
  uint64_t pages = (node_bytes + link_bytes + count_bytes) / (page_size * 9 / 10);
  pages += pages / 5 + 8;  // index + growth slack
  return pages;
}

uint64_t Linkbench::ZipfNode() { return zipf_->Next(rng_) % config_.nodes; }

uint32_t Linkbench::SampleNodePayload() { return node_payload_cdf_.Sample(rng_); }
uint32_t Linkbench::SampleLinkPayload() { return link_payload_cdf_.Sample(rng_); }

std::vector<uint8_t> Linkbench::MakeNodeTuple(uint64_t id, uint32_t payload_len) {
  std::vector<uint8_t> t(kNodeHeader + payload_len, 0x6E);
  EncodeU64(t.data(), id);
  EncodeU32(t.data() + 8, 0);
  EncodeU64(t.data() + kNodeVersionOff, 0);
  EncodeU32(t.data() + kNodeTimeOff, 1000);
  return t;
}

std::vector<uint8_t> Linkbench::MakeLinkTuple(uint64_t id1, uint64_t id2,
                                              uint32_t payload_len) {
  std::vector<uint8_t> t(kLinkHeader + payload_len, 0x6C);
  EncodeU64(t.data(), id1);
  EncodeU32(t.data() + 8, 0);
  EncodeU64(t.data() + 12, id2);
  t[20] = 1;  // visibility
  EncodeU32(t.data() + kLinkVersionOff, 0);
  EncodeU32(t.data() + kLinkTimeOff, 1000);
  return t;
}

Status Linkbench::Load() {
  IPA_ASSIGN_OR_RETURN(node_, db_->CreateTable("NODE", ts_of_("NODE")));
  IPA_ASSIGN_OR_RETURN(link_, db_->CreateTable("LINK", ts_of_("LINK")));
  IPA_ASSIGN_OR_RETURN(count_, db_->CreateTable("COUNT", ts_of_("COUNT")));
  IPA_ASSIGN_OR_RETURN(engine::Btree idx,
                       engine::Btree::Create(db_, "NODE_IDX", ts_of_("NODE_IDX")));
  node_index_ = std::make_unique<engine::Btree>(std::move(idx));
  IPA_ASSIGN_OR_RETURN(engine::Btree li, engine::Btree::Create(
                                             db_, "LINK_IDX", ts_of_("LINK_IDX")));
  link_index_ = std::make_unique<engine::Btree>(std::move(li));
  IPA_ASSIGN_OR_RETURN(engine::Btree ci, engine::Btree::Create(
                                             db_, "COUNT_IDX", ts_of_("COUNT_IDX")));
  count_index_ = std::make_unique<engine::Btree>(std::move(ci));

  engine::TxnId txn = db_->Begin();
  uint32_t batch = 0;
  for (uint64_t id = 0; id < config_.nodes; id++) {
    IPA_ASSIGN_OR_RETURN(engine::Rid rid,
                         db_->Insert(txn, node_, MakeNodeTuple(id, SampleNodePayload())));
    IPA_RETURN_NOT_OK(node_index_->Insert(id, rid.Pack()));

    std::vector<uint8_t> ct(kCountSize, 0);
    EncodeU64(ct.data(), id);
    IPA_ASSIGN_OR_RETURN(engine::Rid crid, db_->Insert(txn, count_, ct));
    IPA_RETURN_NOT_OK(count_index_->Insert(id, crid.Pack()));
    if (++batch == 1000) {
      IPA_RETURN_NOT_OK(db_->Commit(txn));
      txn = db_->Begin();
      batch = 0;
    }
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  next_node_id_ = config_.nodes;

  // Initial links: zipf-skewed sources, uniform targets.
  uint64_t total_links = static_cast<uint64_t>(
      static_cast<double>(config_.nodes) * config_.links_per_node);
  txn = db_->Begin();
  batch = 0;
  for (uint64_t l = 0; l < total_links; l++) {
    uint64_t id1 = ZipfNode();
    uint64_t id2 = rng_.Uniform(config_.nodes);
    IPA_ASSIGN_OR_RETURN(
        engine::Rid rid,
        db_->Insert(txn, link_, MakeLinkTuple(id1, id2, SampleLinkPayload())));
    IPA_RETURN_NOT_OK(
        link_index_->Insert(LinkKey(id1, next_link_seq_[id1]++), rid.Pack()));
    IPA_RETURN_NOT_OK(BumpCount(txn, id1, 1));
    if (++batch == 1000) {
      IPA_RETURN_NOT_OK(db_->Commit(txn));
      txn = db_->Begin();
      batch = 0;
    }
  }
  return db_->Commit(txn);
}

Status Linkbench::BumpCount(engine::TxnId txn, uint64_t id, int64_t delta) {
  auto packed = count_index_->Lookup(id);
  if (!packed.ok()) return Status::OK();
  engine::Rid crid = engine::Rid::Unpack(packed.value());
  auto row = db_->Read(txn, crid, /*for_update=*/true);
  IPA_RETURN_NOT_OK(row.status());
  int64_t v = static_cast<int64_t>(DecodeU64(row.value().data() + kCountValueOff));
  uint8_t nb[8];
  EncodeU64(nb, static_cast<uint64_t>(v + delta));
  IPA_RETURN_NOT_OK(db_->Update(txn, crid, kCountValueOff, nb));
  uint8_t tb[4];
  EncodeU32(tb, static_cast<uint32_t>(rng_.Uniform(1u << 24)));
  return db_->Update(txn, crid, kCountTimeOff, tb);
}

Status Linkbench::RebuildIndexes() {
  auto fresh = [&](const char* name,
                   std::unique_ptr<engine::Btree>* out) -> Status {
    IPA_ASSIGN_OR_RETURN(engine::Btree t,
                         engine::Btree::Create(db_, name, ts_of_(name)));
    *out = std::make_unique<engine::Btree>(std::move(t));
    return Status::OK();
  };
  IPA_RETURN_NOT_OK(fresh("NODE_IDX_R", &node_index_));
  IPA_RETURN_NOT_OK(fresh("LINK_IDX_R", &link_index_));
  IPA_RETURN_NOT_OK(fresh("COUNT_IDX_R", &count_index_));
  next_link_seq_.clear();
  next_node_id_ = 0;

  Status st = Status::OK();
  auto scan = [&](engine::TableId table, auto fn) -> Status {
    IPA_RETURN_NOT_OK(db_->Scan(
        table, [&](engine::Rid rid, std::span<const uint8_t> t) {
          st = fn(rid, t);
          return st.ok();
        }));
    return st;
  };
  IPA_RETURN_NOT_OK(scan(node_, [&](engine::Rid rid,
                                    std::span<const uint8_t> t) {
    uint64_t id = DecodeU64(t.data());
    next_node_id_ = std::max(next_node_id_, id + 1);
    return node_index_->Insert(id, rid.Pack());
  }));
  IPA_RETURN_NOT_OK(scan(count_, [&](engine::Rid rid,
                                     std::span<const uint8_t> t) {
    return count_index_->Insert(DecodeU64(t.data()), rid.Pack());
  }));
  IPA_RETURN_NOT_OK(scan(link_, [&](engine::Rid rid,
                                    std::span<const uint8_t> t) {
    uint64_t id1 = DecodeU64(t.data());
    return link_index_->Insert(LinkKey(id1, next_link_seq_[id1]++), rid.Pack());
  }));
  return Status::OK();
}

Result<bool> Linkbench::GetNode() {
  uint64_t id = ZipfNode();
  engine::TxnId txn = db_->Begin();
  auto packed = node_index_->Lookup(id);
  if (packed.ok()) {
    (void)db_->Read(txn, engine::Rid::Unpack(packed.value()));
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Linkbench::AddNode() {
  uint64_t id = next_node_id_++;
  engine::TxnId txn = db_->Begin();
  auto rid = db_->Insert(txn, node_, MakeNodeTuple(id, SampleNodePayload()));
  if (!rid.ok()) {
    (void)db_->Abort(txn);
    return rid.status();
  }
  Status s = node_index_->Insert(id, rid.value().Pack());
  if (!s.ok()) {
    (void)db_->Abort(txn);
    return s;
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Linkbench::UpdateNode() {
  uint64_t id = ZipfNode();
  engine::TxnId txn = db_->Begin();
  auto fail = [&](Status s) -> Result<bool> {
    (void)db_->Abort(txn);
    return s;
  };
  auto packed = node_index_->Lookup(id);
  if (!packed.ok()) {
    IPA_RETURN_NOT_OK(db_->Commit(txn));
    return false;
  }
  engine::Rid rid = engine::Rid::Unpack(packed.value());
  auto row = db_->Read(txn, rid, /*for_update=*/true);
  if (!row.ok()) return fail(row.status());

  // Over a third of node updates change only numeric fields (version/time);
  // the rest rewrite the payload with a (usually similar) new size.
  if (rng_.Chance(0.35)) {
    uint64_t version = DecodeU64(row.value().data() + kNodeVersionOff) + 1;
    uint8_t vb[8];
    EncodeU64(vb, version);
    Status s = db_->Update(txn, rid, kNodeVersionOff, vb);
    if (!s.ok()) return fail(s);
    uint8_t tb[4];
    EncodeU32(tb, static_cast<uint32_t>(rng_.Uniform(1u << 20)));
    s = db_->Update(txn, rid, kNodeTimeOff, tb);
    if (!s.ok()) return fail(s);
  } else {
    uint32_t old_payload = static_cast<uint32_t>(row.value().size()) - kNodeHeader;
    // New size near the old one: +-25%.
    int64_t delta = rng_.UniformRange(-static_cast<int64_t>(old_payload) / 4,
                                      static_cast<int64_t>(old_payload) / 4 + 4);
    uint32_t new_payload = static_cast<uint32_t>(
        std::max<int64_t>(0, static_cast<int64_t>(old_payload) + delta));
    auto t = MakeNodeTuple(id, new_payload);
    EncodeU64(t.data() + kNodeVersionOff,
              DecodeU64(row.value().data() + kNodeVersionOff) + 1);
    for (uint32_t i = 0; i < new_payload; i++) {
      t[kNodeHeader + i] = static_cast<uint8_t>(rng_.Next());
    }
    Status s = db_->UpdateResize(txn, rid, t);
    if (s.IsOutOfSpace()) {
      auto moved = db_->Move(txn, rid, t);
      if (!moved.ok()) return fail(moved.status());
      s = node_index_->Insert(id, moved.value().Pack());
    }
    if (!s.ok()) return fail(s);
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Linkbench::DeleteNode() {
  uint64_t id = ZipfNode();
  engine::TxnId txn = db_->Begin();
  auto packed = node_index_->Lookup(id);
  if (!packed.ok()) {
    IPA_RETURN_NOT_OK(db_->Commit(txn));
    return false;
  }
  Status s = db_->Delete(txn, engine::Rid::Unpack(packed.value()));
  if (!s.ok()) {
    (void)db_->Abort(txn);
    return s;
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  (void)node_index_->Remove(id);
  return true;
}

Result<bool> Linkbench::GetLink() {
  uint64_t id = ZipfNode();
  engine::TxnId txn = db_->Begin();
  // A random existing link of id1, found through the adjacency index.
  std::vector<uint64_t> rids;
  IPA_RETURN_NOT_OK(link_index_->Scan(LinkKey(id, 0), LinkKey(id + 1, 0) - 1,
                                      [&](uint64_t, uint64_t v) {
                                        rids.push_back(v);
                                        return rids.size() < 32;
                                      }));
  if (!rids.empty()) {
    (void)db_->Read(txn, engine::Rid::Unpack(rids[rng_.Uniform(rids.size())]));
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Linkbench::AddLink() {
  uint64_t id1 = ZipfNode();
  uint64_t id2 = rng_.Uniform(config_.nodes);
  engine::TxnId txn = db_->Begin();
  auto rid = db_->Insert(txn, link_, MakeLinkTuple(id1, id2, SampleLinkPayload()));
  if (!rid.ok()) {
    (void)db_->Abort(txn);
    return rid.status();
  }
  Status s = BumpCount(txn, id1, 1);
  if (!s.ok()) {
    (void)db_->Abort(txn);
    return s;
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  IPA_RETURN_NOT_OK(
      link_index_->Insert(LinkKey(id1, next_link_seq_[id1]++), rid.value().Pack()));
  return true;
}

Result<bool> Linkbench::DeleteLink() {
  uint64_t id = ZipfNode();
  // Newest link of id1 via the adjacency index.
  uint64_t key = 0, packed = 0;
  bool found = false;
  IPA_RETURN_NOT_OK(link_index_->Scan(LinkKey(id, 0), LinkKey(id + 1, 0) - 1,
                                      [&](uint64_t k, uint64_t v) {
                                        key = k;
                                        packed = v;
                                        found = true;
                                        return true;  // keep last
                                      }));
  if (!found) return false;
  engine::TxnId txn = db_->Begin();
  Status s = db_->Delete(txn, engine::Rid::Unpack(packed));
  if (!s.ok()) {
    (void)db_->Abort(txn);
    return s;
  }
  s = BumpCount(txn, id, -1);
  if (!s.ok()) {
    (void)db_->Abort(txn);
    return s;
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  (void)link_index_->Remove(key);
  return true;
}

Result<bool> Linkbench::UpdateLink() {
  uint64_t id = ZipfNode();
  std::vector<uint64_t> rids;
  IPA_RETURN_NOT_OK(link_index_->Scan(LinkKey(id, 0), LinkKey(id + 1, 0) - 1,
                                      [&](uint64_t, uint64_t v) {
                                        rids.push_back(v);
                                        return rids.size() < 32;
                                      }));
  if (rids.empty()) return false;
  engine::Rid rid = engine::Rid::Unpack(rids[rng_.Uniform(rids.size())]);
  engine::TxnId txn = db_->Begin();
  auto fail = [&](Status s) -> Result<bool> {
    (void)db_->Abort(txn);
    return s;
  };
  auto row = db_->Read(txn, rid, /*for_update=*/true);
  if (!row.ok()) return fail(row.status());
  // Most link updates bump version/time; some rewrite the (tiny) payload.
  uint8_t vb[4];
  EncodeU32(vb, DecodeU32(row.value().data() + kLinkVersionOff) + 1);
  Status s = db_->Update(txn, rid, kLinkVersionOff, vb);
  if (!s.ok()) return fail(s);
  uint8_t tb[4];
  EncodeU32(tb, static_cast<uint32_t>(rng_.Uniform(1u << 20)));
  s = db_->Update(txn, rid, kLinkTimeOff, tb);
  if (!s.ok()) return fail(s);
  if (rng_.Chance(0.4) && row.value().size() > kLinkHeader) {
    uint32_t payload = static_cast<uint32_t>(row.value().size()) - kLinkHeader;
    std::vector<uint8_t> pb(payload);
    for (auto& b : pb) b = static_cast<uint8_t>(rng_.Next());
    s = db_->Update(txn, rid, kLinkHeader, pb);
    if (!s.ok()) return fail(s);
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Linkbench::CountLink() {
  uint64_t id = ZipfNode();
  engine::TxnId txn = db_->Begin();
  auto packed = count_index_->Lookup(id);
  if (packed.ok()) (void)db_->Read(txn, engine::Rid::Unpack(packed.value()));
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Linkbench::GetLinkList() {
  uint64_t id = ZipfNode();
  engine::TxnId txn = db_->Begin();
  // The newest 10 links of id1 (the index scan is ascending; keep the tail).
  std::vector<uint64_t> rids;
  IPA_RETURN_NOT_OK(link_index_->Scan(LinkKey(id, 0), LinkKey(id + 1, 0) - 1,
                                      [&](uint64_t, uint64_t v) {
                                        rids.push_back(v);
                                        return true;
                                      }));
  size_t n = std::min<size_t>(rids.size(), 10);
  for (size_t i = 0; i < n; i++) {
    (void)db_->Read(txn, engine::Rid::Unpack(rids[rids.size() - 1 - i]));
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Linkbench::RunTransaction() {
  struct Mix {
    metrics::Counter get_node{"workload.linkbench.get_node"};
    metrics::Counter add_node{"workload.linkbench.add_node"};
    metrics::Counter update_node{"workload.linkbench.update_node"};
    metrics::Counter delete_node{"workload.linkbench.delete_node"};
    metrics::Counter get_link{"workload.linkbench.get_link"};
    metrics::Counter add_link{"workload.linkbench.add_link"};
    metrics::Counter delete_link{"workload.linkbench.delete_link"};
    metrics::Counter update_link{"workload.linkbench.update_link"};
    metrics::Counter count_link{"workload.linkbench.count_link"};
    metrics::Counter get_link_list{"workload.linkbench.get_link_list"};
  };
  static Mix mix;
  // LinkBench paper operation mix.
  double p = rng_.NextDouble();
  if (p < 0.129) { mix.get_node.Inc(); return GetNode(); }
  if (p < 0.155) { mix.add_node.Inc(); return AddNode(); }
  if (p < 0.229) { mix.update_node.Inc(); return UpdateNode(); }
  if (p < 0.239) { mix.delete_node.Inc(); return DeleteNode(); }
  if (p < 0.249) { mix.get_link.Inc(); return GetLink(); }  // GET_LINK + MULTIGET
  if (p < 0.339) { mix.add_link.Inc(); return AddLink(); }
  if (p < 0.369) { mix.delete_link.Inc(); return DeleteLink(); }
  if (p < 0.449) { mix.update_link.Inc(); return UpdateLink(); }
  if (p < 0.498) { mix.count_link.Inc(); return CountLink(); }
  mix.get_link_list.Inc();
  return GetLinkList();
}

}  // namespace ipa::workload
