// Workload framework: TPC-B, TPC-C, TATP and LinkBench drivers over the
// engine (Section 8.2 analyses, Sections 8.3/8.4 evaluations).
//
// All workloads run at reduced scale; the schemas, transaction profiles and
// attribute layouts follow the respective specifications so the *update-size
// distributions* — the property the paper's analysis rests on — are
// faithful. Each driver documents its deviations.
//
// Secondary access paths that a full system would keep in auxiliary
// structures (e.g. "oldest undelivered order per district") are held in
// process memory where noted; primary data and indexes live in the engine
// and generate real page I/O.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/random.h"
#include "common/status.h"
#include "engine/database.h"

namespace ipa::workload {

/// Assigns tables to tablespaces; returning the same id for every table puts
/// the whole database in one region (the default). Selective-IPA experiments
/// map write-hot tables to an IPA region and the rest elsewhere (Section 5).
using TablespaceMap =
    std::function<engine::TablespaceId(const std::string& table_name)>;

inline TablespaceMap SingleTablespace(engine::TablespaceId ts) {
  return [ts](const std::string&) { return ts; };
}

class Workload {
 public:
  virtual ~Workload() = default;

  /// Create tables/indexes and populate the initial database.
  virtual Status Load() = 0;

  /// Execute one transaction of the mix. Returns true if it committed
  /// (some mixes contain spec-mandated rollbacks).
  virtual Result<bool> RunTransaction() = 0;

  virtual std::string name() const = 0;

  /// Rebuild secondary access structures (B+tree indexes, rid caches) from
  /// heap scans after crash recovery — indexes are not WAL-logged
  /// (engine/btree.h), so ARIES restores heap content only. Default: not
  /// implemented for this workload.
  virtual Status RebuildIndexes() {
    return Status::NotSupported("index rebuild not implemented");
  }

  /// Rough number of data pages the loaded database occupies — used to size
  /// regions and express buffer sizes as a fraction of the DB.
  virtual uint64_t EstimatedPages(uint32_t page_size) const = 0;
};

/// Run `n` transactions, aborting the run on hard errors.
Status RunTransactions(Workload& w, uint64_t n);

}  // namespace ipa::workload
