#include "workload/testbed.h"

#include <algorithm>
#include <cstdlib>

namespace ipa::workload {

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kNoFtl: return "noftl";
    case Backend::kPageFtlGreedy: return "pageftl-greedy";
    case Backend::kPageFtlCostBenefit: return "pageftl-cb";
    case Backend::kStreamFtl: return "streamftl";
  }
  return "?";
}

Result<std::unique_ptr<Testbed>> MakeTestbed(const TestbedConfig& config) {
  if (config.db_pages == 0) {
    return Status::InvalidArgument("TestbedConfig.db_pages must be set");
  }
  bool openssd = config.profile != Profile::kEmulatorSlc;
  bool page_ftl = config.backend != Backend::kNoFtl;

  uint64_t logical_pages = static_cast<uint64_t>(
      static_cast<double>(config.db_pages) * config.growth_headroom);

  flash::Geometry g;
  g.page_size = config.page_size;
  g.oob_size = 128;
  if (openssd) {
    g.cell_type = flash::CellType::kMlc;
    g.channels = 1;            // Appendix D: effective parallelism of 1
    g.chips_per_channel = 1;
    g.pages_per_block = 128;
    g.max_programs_per_page = 4;  // MLC: initial + up to 3 appends
    g.pe_cycle_limit = 10000;
  } else {
    g.cell_type = flash::CellType::kSlc;
    g.channels = 4;            // 16 SLC chips, as in the paper's emulator
    g.chips_per_channel = 4;
    g.pages_per_block = 64;
    g.max_programs_per_page = 8;
    g.pe_cycle_limit = 100000;
  }
  // Physical blocks: logical capacity + over-provisioning + GC headroom,
  // doubled again for pSLC (only LSB pages usable).
  // pSLC uses only LSB pages (x2 raw flash per usable page) and gets the
  // unused MSB half as extra spare area (see the RegionConfig note below).
  double pslc_factor = config.profile == Profile::kOpenSsdPSlc ? 2.0 : 1.0;
  double op = config.over_provisioning +
              (config.profile == Profile::kOpenSsdPSlc ? 0.5 : 0.0);
  uint64_t physical_pages = static_cast<uint64_t>(
      static_cast<double>(logical_pages) * (1.0 + op) * pslc_factor * 1.10);
  uint64_t blocks = physical_pages / g.pages_per_block + 8 * g.total_chips();
  g.blocks_per_chip =
      static_cast<uint32_t>(blocks / g.total_chips() + 1);

  auto bed = std::make_unique<Testbed>();
  bed->dev = std::make_unique<flash::FlashArray>(g, flash::TimingFor(g.cell_type));

  engine::EngineConfig ec;
  ec.page_size = config.page_size;
  uint64_t buffer_pages = static_cast<uint64_t>(
      static_cast<double>(config.db_pages) * config.buffer_fraction);
  buffer_pages = std::max(buffer_pages, config.min_buffer_pages);
  ec.buffer_pages = static_cast<uint32_t>(buffer_pages);
  bed->buffer_pages = buffer_pages;
  ec.dirty_flush_threshold = config.dirty_flush_threshold;
  ec.log_reclaim_threshold = config.log_reclaim_threshold;
  ec.log_capacity_bytes = config.log_capacity_bytes;
  ec.record_update_sizes = config.record_update_sizes;
  ec.record_io_trace = config.record_io_trace;

  if (page_ftl) {
    // Cooked-device stack: the engine sees a plain logical block space with
    // no write_delta, so the [NxM] scheme is forced off — that asymmetry is
    // exactly what bench_table12_backend_compare measures.
    if (config.backend == Backend::kStreamFtl) {
      ftl::StreamFtlConfig sc;
      sc.name = "db";
      sc.logical_pages = logical_pages;
      sc.over_provisioning = config.over_provisioning;
      IPA_ASSIGN_OR_RETURN(bed->streamftl,
                           ftl::StreamFtl::Create(bed->dev.get(), sc));
      bed->backend = bed->streamftl.get();
    } else {
      ftl::PageFtlConfig pc;
      pc.name = "db";
      pc.logical_pages = logical_pages;
      pc.over_provisioning = config.over_provisioning;
      pc.gc_policy = config.backend == Backend::kPageFtlGreedy
                         ? ftl::GcPolicy::kGreedy
                         : ftl::GcPolicy::kCostBenefit;
      IPA_ASSIGN_OR_RETURN(bed->pageftl,
                           ftl::PageFtl::Create(bed->dev.get(), pc));
      bed->backend = bed->pageftl.get();
    }
    bed->db = std::make_unique<engine::Database>(nullptr, ec,
                                                 &bed->dev->clock());
    auto ts = bed->db->CreateTablespaceOn("db", bed->backend, {});
    IPA_RETURN_NOT_OK(ts.status());
    bed->ts = ts.value();
    return bed;
  }

  bed->noftl = std::make_unique<ftl::NoFtl>(bed->dev.get());

  ftl::RegionConfig rc;
  rc.name = "db";
  rc.logical_pages = logical_pages;
  rc.over_provisioning = config.over_provisioning;
  // pSLC mode claims the whole flash but exposes only LSB pages; the unused
  // MSB half becomes generous spare area (on the Jasmine board the pSLC
  // experiments ran with far more headroom than the 10% baseline OP), which
  // is where much of pSLC's GC advantage in Tables 6/8 comes from.
  if (config.profile == Profile::kOpenSsdPSlc) {
    rc.over_provisioning = config.over_provisioning + 0.5;
  }
  switch (config.profile) {
    case Profile::kEmulatorSlc:
      rc.ipa_mode = config.scheme.enabled() ? ftl::IpaMode::kSlc
                                            : ftl::IpaMode::kOff;
      break;
    case Profile::kOpenSsdPSlc:
      rc.ipa_mode = ftl::IpaMode::kPSlc;
      break;
    case Profile::kOpenSsdOddMlc:
      rc.ipa_mode = ftl::IpaMode::kOddMlc;
      break;
    case Profile::kOpenSsdNoIpa:
      rc.ipa_mode = ftl::IpaMode::kOff;
      break;
  }
  if (!config.scheme.enabled()) rc.ipa_mode = ftl::IpaMode::kOff;
  rc.delta_area_offset = rc.ipa_mode == ftl::IpaMode::kOff
                             ? 0
                             : config.page_size - config.scheme.AreaBytes();
  auto region = bed->noftl->CreateRegion(rc);
  IPA_RETURN_NOT_OK(region.status());
  bed->region = region.value();
  bed->backend = bed->noftl->region_device(bed->region);
  bed->db = std::make_unique<engine::Database>(bed->noftl.get(), ec);

  auto ts = bed->db->CreateTablespace("db", bed->region, config.scheme);
  IPA_RETURN_NOT_OK(ts.status());
  bed->ts = ts.value();
  return bed;
}

Result<std::unique_ptr<ShardedTestbed>> MakeShardedTestbed(
    const ShardedTestbedConfig& config) {
  const TestbedConfig& base = config.base;
  if (base.db_pages == 0) {
    return Status::InvalidArgument("ShardedTestbedConfig.base.db_pages must be set");
  }
  if (base.profile != Profile::kEmulatorSlc || base.backend != Backend::kNoFtl) {
    return Status::InvalidArgument(
        "sharding requires the emulator profile on the NoFTL backend");
  }

  flash::Geometry g;
  g.page_size = base.page_size;
  g.oob_size = 128;
  g.cell_type = flash::CellType::kSlc;
  g.channels = 4;
  g.chips_per_channel = 4;
  g.pages_per_block = 64;
  g.max_programs_per_page = 8;
  g.pe_cycle_limit = 100000;

  uint32_t workers = config.workers;
  if (workers == 0 || g.total_chips() % workers != 0) {
    return Status::InvalidArgument("workers must divide the 16 emulator chips");
  }
  uint32_t chips_per_part = g.total_chips() / workers;

  uint64_t logical_pages = static_cast<uint64_t>(
      static_cast<double>(base.db_pages) * base.growth_headroom);
  uint64_t physical_pages = static_cast<uint64_t>(
      static_cast<double>(logical_pages) * (1.0 + base.over_provisioning) * 1.10);
  uint64_t blocks = physical_pages / g.pages_per_block + 8 * g.total_chips();
  g.blocks_per_chip = static_cast<uint32_t>(blocks / g.total_chips() + 1);

  auto bed = std::make_unique<ShardedTestbed>();
  bed->dev = std::make_unique<flash::FlashArray>(g, flash::TimingFor(g.cell_type));
  bed->noftl = std::make_unique<ftl::NoFtl>(bed->dev.get());

  engine::EngineConfig ec;
  ec.page_size = base.page_size;
  uint64_t part_pages = base.db_pages / workers;
  uint64_t buffer_pages = static_cast<uint64_t>(
      static_cast<double>(part_pages) * base.buffer_fraction);
  buffer_pages = std::max(buffer_pages, base.min_buffer_pages);
  ec.buffer_pages = static_cast<uint32_t>(buffer_pages);
  bed->buffer_pages_per_part = buffer_pages;
  ec.dirty_flush_threshold = base.dirty_flush_threshold;
  ec.log_reclaim_threshold = base.log_reclaim_threshold;
  ec.log_capacity_bytes = base.log_capacity_bytes;
  ec.record_update_sizes = base.record_update_sizes;
  ec.record_io_trace = base.record_io_trace;
  ec.group_commit_ops = config.group_commit_ops;
  ec.group_commit_window_us = config.group_commit_window_us;
  ec.log_force_us = config.log_force_us;

  std::vector<engine::ShardedDatabase::Partition> sparts;
  for (uint32_t p = 0; p < workers; ++p) {
    // Contiguous chip range: with chips numbered channel-major, whole
    // channels land in one partition whenever workers <= channels.
    std::vector<uint32_t> chips;
    for (uint32_t c = 0; c < chips_per_part; ++c) {
      chips.push_back(p * chips_per_part + c);
    }
    flash::FlashLane* lane = bed->dev->CreateLane();
    bed->dev->BindLaneToChips(lane, chips);

    ftl::RegionConfig rc;
    rc.name = "db" + std::to_string(p);
    rc.logical_pages = logical_pages / workers;
    rc.over_provisioning = base.over_provisioning;
    rc.ipa_mode = base.scheme.enabled() ? ftl::IpaMode::kSlc : ftl::IpaMode::kOff;
    rc.delta_area_offset = rc.ipa_mode == ftl::IpaMode::kOff
                               ? 0
                               : base.page_size - base.scheme.AreaBytes();
    rc.chips = chips;
    auto region = bed->noftl->CreateRegion(rc);
    IPA_RETURN_NOT_OK(region.status());

    ShardedTestbed::Part part;
    part.lane = lane;
    part.region = region.value();
    // Each partition's Database measures time on its lane's clock, so
    // worker-local work advances only worker-local time between barriers.
    part.db = std::make_unique<engine::Database>(bed->noftl.get(), ec,
                                                 &lane->clock());
    auto ts = part.db->CreateTablespace("db", part.region, base.scheme);
    IPA_RETURN_NOT_OK(ts.status());
    part.ts = ts.value();
    bed->parts.push_back(std::move(part));
    sparts.push_back({bed->parts.back().db.get(), lane});
  }

  engine::ShardedDatabase::Config sc;
  sc.threaded = config.threaded;
  bed->sharded = std::make_unique<engine::ShardedDatabase>(
      std::move(sparts), bed->dev.get(), sc);
  return bed;
}

double BenchScale() {
  const char* s = std::getenv("IPA_SCALE");
  if (!s) return 1.0;
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

double DatasetScale() {
  const char* s = std::getenv("IPA_DATASET");
  if (!s) return 1.0;
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

}  // namespace ipa::workload
