#include "workload/tatp.h"

#include "common/bytes.h"
#include "common/metrics.h"

namespace ipa::workload {

Tatp::Tatp(engine::Database* db, TatpConfig config, TablespaceMap ts_of)
    : db_(db), config_(config), ts_of_(std::move(ts_of)), rng_(config.seed) {}

uint64_t Tatp::EstimatedPages(uint32_t page_size) const {
  uint64_t sub_pages =
      config_.subscribers / (page_size / (kSubscriberSize + 8)) + 2;
  // Child rows per subscriber: ~2.5 ACCESS_INFO + ~2.5 SPECIAL_FACILITY +
  // ~3.75 CALL_FORWARDING (1.5 per facility on average).
  uint64_t aux_rows = static_cast<uint64_t>(config_.subscribers) * 9;
  uint64_t aux_pages = aux_rows / (page_size / (kAccessInfoSize + 8)) + 2;
  // Four B+tree indexes: one 16B entry per row plus node slack.
  uint64_t index_entries = static_cast<uint64_t>(config_.subscribers) * 10;
  uint64_t index_pages = index_entries * 20 / page_size + 4;
  uint64_t pages = sub_pages + aux_pages + index_pages;
  pages += pages / 8;  // slack
  return pages;
}

uint32_t Tatp::RandomSubscriber() {
  // TATP non-uniform subscriber selection: (A | rand) style, like NURand.
  uint64_t a = 65535;
  while (a >= config_.subscribers) a /= 2;
  uint64_t r1 = rng_.Uniform(a + 1);
  uint64_t r2 = rng_.Uniform(config_.subscribers);
  return static_cast<uint32_t>((r1 | r2) % config_.subscribers);
}

Status Tatp::Load() {
  IPA_ASSIGN_OR_RETURN(subscriber_,
                       db_->CreateTable("SUBSCRIBER", ts_of_("SUBSCRIBER")));
  IPA_ASSIGN_OR_RETURN(access_info_,
                       db_->CreateTable("ACCESS_INFO", ts_of_("ACCESS_INFO")));
  IPA_ASSIGN_OR_RETURN(
      special_facility_,
      db_->CreateTable("SPECIAL_FACILITY", ts_of_("SPECIAL_FACILITY")));
  IPA_ASSIGN_OR_RETURN(
      call_forwarding_,
      db_->CreateTable("CALL_FORWARDING", ts_of_("CALL_FORWARDING")));
  IPA_ASSIGN_OR_RETURN(
      engine::Btree idx,
      engine::Btree::Create(db_, "SUBSCRIBER_IDX", ts_of_("SUBSCRIBER_IDX")));
  subscriber_index_ = std::make_unique<engine::Btree>(std::move(idx));
  IPA_ASSIGN_OR_RETURN(engine::Btree ai, engine::Btree::Create(
                                             db_, "AI_IDX", ts_of_("AI_IDX")));
  ai_index_ = std::make_unique<engine::Btree>(std::move(ai));
  IPA_ASSIGN_OR_RETURN(engine::Btree sf, engine::Btree::Create(
                                             db_, "SF_IDX", ts_of_("SF_IDX")));
  sf_index_ = std::make_unique<engine::Btree>(std::move(sf));
  IPA_ASSIGN_OR_RETURN(engine::Btree cf, engine::Btree::Create(
                                             db_, "CF_IDX", ts_of_("CF_IDX")));
  cf_index_ = std::make_unique<engine::Btree>(std::move(cf));

  engine::TxnId txn = db_->Begin();
  uint32_t batch = 0;
  for (uint32_t s = 0; s < config_.subscribers; s++) {
    std::vector<uint8_t> t(kSubscriberSize, 0x30);
    EncodeU64(t.data(), s);
    EncodeU32(t.data() + kVlrLocationOff, static_cast<uint32_t>(rng_.Next()));
    IPA_ASSIGN_OR_RETURN(engine::Rid rid, db_->Insert(txn, subscriber_, t));
    IPA_RETURN_NOT_OK(subscriber_index_->Insert(s, rid.Pack()));

    uint32_t n_ai = 1 + static_cast<uint32_t>(rng_.Uniform(4));
    for (uint32_t i = 0; i < n_ai; i++) {
      std::vector<uint8_t> ai(kAccessInfoSize, 0x41);
      EncodeU64(ai.data(), s);
      ai[8] = static_cast<uint8_t>(i);
      IPA_ASSIGN_OR_RETURN(engine::Rid arid, db_->Insert(txn, access_info_, ai));
      IPA_RETURN_NOT_OK(
          ai_index_->Insert(static_cast<uint64_t>(s) * 4 + i, arid.Pack()));
    }
    uint32_t n_sf = 1 + static_cast<uint32_t>(rng_.Uniform(4));
    for (uint32_t i = 0; i < n_sf; i++) {
      std::vector<uint8_t> sf(kSpecialFacilitySize, 0x42);
      EncodeU64(sf.data(), s);
      sf[8] = static_cast<uint8_t>(i);
      sf[9] = rng_.Chance(0.85) ? 1 : 0;  // is_active
      IPA_ASSIGN_OR_RETURN(engine::Rid srid,
                           db_->Insert(txn, special_facility_, sf));
      IPA_RETURN_NOT_OK(
          sf_index_->Insert(static_cast<uint64_t>(s) * 4 + i, srid.Pack()));
      // 0-3 call forwarding rows.
      uint32_t n_cf = static_cast<uint32_t>(rng_.Uniform(4));
      for (uint32_t cf = 0; cf < n_cf; cf++) {
        std::vector<uint8_t> cft(kCallForwardingSize, 0x43);
        EncodeU64(cft.data(), s);
        cft[8] = static_cast<uint8_t>(i);
        cft[9] = static_cast<uint8_t>(cf * 8);  // start_time
        IPA_ASSIGN_OR_RETURN(engine::Rid crid,
                             db_->Insert(txn, call_forwarding_, cft));
        IPA_RETURN_NOT_OK(cf_index_->Insert(
            (static_cast<uint64_t>(s) * 4 + i) * 8 + cf, crid.Pack()));
      }
    }
    if (++batch == 1000) {
      IPA_RETURN_NOT_OK(db_->Commit(txn));
      txn = db_->Begin();
      batch = 0;
    }
  }
  return db_->Commit(txn);
}

Status Tatp::RebuildIndexes() {
  auto fresh = [&](const char* name,
                   std::unique_ptr<engine::Btree>* out) -> Status {
    IPA_ASSIGN_OR_RETURN(engine::Btree t,
                         engine::Btree::Create(db_, name, ts_of_(name)));
    *out = std::make_unique<engine::Btree>(std::move(t));
    return Status::OK();
  };
  IPA_RETURN_NOT_OK(fresh("SUBSCRIBER_IDX_R", &subscriber_index_));
  IPA_RETURN_NOT_OK(fresh("AI_IDX_R", &ai_index_));
  IPA_RETURN_NOT_OK(fresh("SF_IDX_R", &sf_index_));
  IPA_RETURN_NOT_OK(fresh("CF_IDX_R", &cf_index_));

  Status st = Status::OK();
  auto scan = [&](engine::TableId table, auto fn) -> Status {
    IPA_RETURN_NOT_OK(db_->Scan(
        table, [&](engine::Rid rid, std::span<const uint8_t> t) {
          st = fn(rid, t);
          return st.ok();
        }));
    return st;
  };
  IPA_RETURN_NOT_OK(scan(subscriber_, [&](engine::Rid rid,
                                          std::span<const uint8_t> t) {
    return subscriber_index_->Insert(DecodeU64(t.data()), rid.Pack());
  }));
  IPA_RETURN_NOT_OK(scan(access_info_, [&](engine::Rid rid,
                                           std::span<const uint8_t> t) {
    return ai_index_->Insert(DecodeU64(t.data()) * 4 + t[8], rid.Pack());
  }));
  IPA_RETURN_NOT_OK(scan(special_facility_, [&](engine::Rid rid,
                                                std::span<const uint8_t> t) {
    return sf_index_->Insert(DecodeU64(t.data()) * 4 + t[8], rid.Pack());
  }));
  IPA_RETURN_NOT_OK(scan(call_forwarding_, [&](engine::Rid rid,
                                               std::span<const uint8_t> t) {
    uint64_t key = (DecodeU64(t.data()) * 4 + t[8]) * 8 + t[9] / 8;
    return cf_index_->Insert(key, rid.Pack());
  }));
  return Status::OK();
}

Result<bool> Tatp::GetSubscriberData() {
  uint32_t s = RandomSubscriber();
  engine::TxnId txn = db_->Begin();
  auto packed = subscriber_index_->Lookup(s);
  if (!packed.ok()) {
    (void)db_->Abort(txn);
    return packed.status();
  }
  auto row = db_->Read(txn, engine::Rid::Unpack(packed.value()));
  if (!row.ok()) {
    (void)db_->Abort(txn);
    return row.status();
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Tatp::GetNewDestination() {
  uint32_t s = RandomSubscriber();
  uint32_t sf = static_cast<uint32_t>(rng_.Uniform(4));
  engine::TxnId txn = db_->Begin();
  auto srid = sf_index_->Lookup(static_cast<uint64_t>(s) * 4 + sf);
  if (srid.ok()) {
    auto row = db_->Read(txn, engine::Rid::Unpack(srid.value()));
    if (row.ok()) {
      for (uint32_t slot = 0; slot < 3; slot++) {
        auto crid =
            cf_index_->Lookup((static_cast<uint64_t>(s) * 4 + sf) * 8 + slot);
        if (crid.ok()) (void)db_->Read(txn, engine::Rid::Unpack(crid.value()));
      }
    }
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Tatp::GetAccessData() {
  uint32_t s = RandomSubscriber();
  engine::TxnId txn = db_->Begin();
  uint32_t ai = static_cast<uint32_t>(rng_.Uniform(4));
  auto arid = ai_index_->Lookup(static_cast<uint64_t>(s) * 4 + ai);
  if (arid.ok()) {
    (void)db_->Read(txn, engine::Rid::Unpack(arid.value()));
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Tatp::UpdateSubscriberData() {
  uint32_t s = RandomSubscriber();
  engine::TxnId txn = db_->Begin();
  auto fail = [&](Status st) -> Result<bool> {
    (void)db_->Abort(txn);
    return st;
  };
  auto packed = subscriber_index_->Lookup(s);
  if (!packed.ok()) return fail(packed.status());
  uint8_t bit = rng_.Chance(0.5) ? 1 : 0;
  Status st =
      db_->Update(txn, engine::Rid::Unpack(packed.value()), kBit1Off, {&bit, 1});
  if (!st.ok()) return fail(st);
  auto srid = sf_index_->Lookup(static_cast<uint64_t>(s) * 4 + 0);
  if (srid.ok()) {
    uint8_t data_a = static_cast<uint8_t>(rng_.Uniform(256));
    st = db_->Update(txn, engine::Rid::Unpack(srid.value()), kSfDataAOff,
                     {&data_a, 1});
    if (!st.ok()) return fail(st);
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Tatp::UpdateLocation() {
  uint32_t s = RandomSubscriber();
  engine::TxnId txn = db_->Begin();
  auto packed = subscriber_index_->Lookup(s);
  if (!packed.ok()) {
    (void)db_->Abort(txn);
    return packed.status();
  }
  uint8_t loc[4];
  EncodeU32(loc, static_cast<uint32_t>(rng_.Next()));
  Status st = db_->Update(txn, engine::Rid::Unpack(packed.value()),
                          kVlrLocationOff, loc);
  if (!st.ok()) {
    (void)db_->Abort(txn);
    return st;
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Tatp::InsertCallForwarding() {
  uint32_t s = RandomSubscriber();
  uint32_t sf = static_cast<uint32_t>(rng_.Uniform(4));
  engine::TxnId txn = db_->Begin();
  if (!sf_index_->Lookup(static_cast<uint64_t>(s) * 4 + sf).ok()) {
    IPA_RETURN_NOT_OK(db_->Commit(txn));
    return false;  // facility absent: the spec counts this as a failed txn
  }
  uint32_t slot = 0;
  while (slot < 3 &&
         cf_index_->Lookup((static_cast<uint64_t>(s) * 4 + sf) * 8 + slot).ok()) {
    slot++;
  }
  if (slot == 3) {
    IPA_RETURN_NOT_OK(db_->Commit(txn));
    return false;  // all slots taken -> primary key violation in the spec
  }
  std::vector<uint8_t> cft(kCallForwardingSize, 0x43);
  EncodeU64(cft.data(), s);
  cft[8] = static_cast<uint8_t>(sf);
  cft[9] = static_cast<uint8_t>(slot * 8);
  auto rid = db_->Insert(txn, call_forwarding_, cft);
  if (!rid.ok()) {
    (void)db_->Abort(txn);
    return rid.status();
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  IPA_RETURN_NOT_OK(cf_index_->Insert(
      (static_cast<uint64_t>(s) * 4 + sf) * 8 + slot, rid.value().Pack()));
  return true;
}

Result<bool> Tatp::DeleteCallForwarding() {
  uint32_t s = RandomSubscriber();
  uint32_t sf = static_cast<uint32_t>(rng_.Uniform(4));
  engine::TxnId txn = db_->Begin();
  uint64_t key = 0;
  engine::Rid crid;
  bool found = false;
  for (uint32_t slot = 0; slot < 3 && !found; slot++) {
    key = (static_cast<uint64_t>(s) * 4 + sf) * 8 + slot;
    auto r = cf_index_->Lookup(key);
    if (r.ok()) {
      crid = engine::Rid::Unpack(r.value());
      found = true;
    }
  }
  if (!found) {
    IPA_RETURN_NOT_OK(db_->Commit(txn));
    return false;
  }
  Status st = db_->Delete(txn, crid);
  if (!st.ok()) {
    (void)db_->Abort(txn);
    return st;
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  (void)cf_index_->Remove(key);
  return true;
}

Result<bool> Tatp::RunTransaction() {
  struct Mix {
    metrics::Counter get_subscriber{"workload.tatp.get_subscriber_data"};
    metrics::Counter get_new_dest{"workload.tatp.get_new_destination"};
    metrics::Counter get_access{"workload.tatp.get_access_data"};
    metrics::Counter upd_subscriber{"workload.tatp.update_subscriber_data"};
    metrics::Counter upd_location{"workload.tatp.update_location"};
    metrics::Counter ins_call_fwd{"workload.tatp.insert_call_forwarding"};
    metrics::Counter del_call_fwd{"workload.tatp.delete_call_forwarding"};
  };
  static Mix mix;
  // Standard TATP mix.
  double p = rng_.NextDouble();
  if (p < 0.35) { mix.get_subscriber.Inc(); return GetSubscriberData(); }
  if (p < 0.45) { mix.get_new_dest.Inc(); return GetNewDestination(); }
  if (p < 0.80) { mix.get_access.Inc(); return GetAccessData(); }
  if (p < 0.82) { mix.upd_subscriber.Inc(); return UpdateSubscriberData(); }
  if (p < 0.96) { mix.upd_location.Inc(); return UpdateLocation(); }
  if (p < 0.98) { mix.ins_call_fwd.Inc(); return InsertCallForwarding(); }
  mix.del_call_fwd.Inc();
  return DeleteCallForwarding();
}

}  // namespace ipa::workload
