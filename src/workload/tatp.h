// TATP (Telecom Application Transaction Processing) workload.
//
// Schema: SUBSCRIBER (S rows), ACCESS_INFO (1-4 per subscriber),
// SPECIAL_FACILITY (1-4 per subscriber), CALL_FORWARDING (0-3 per facility).
// The standard mix is 80% reads / 16% updates / 4% insert+delete; the
// signature write is UpdateLocation: a 4-byte VLR_LOCATION change — one of
// the smallest updates in any OLTP benchmark, which is why the paper uses
// TATP in the IPL comparison (Table 2).

#pragma once

#include <vector>

#include "engine/btree.h"
#include "workload/workload.h"

namespace ipa::workload {

struct TatpConfig {
  uint32_t subscribers = 50000;
  uint64_t seed = 13;
};

class Tatp : public Workload {
 public:
  Tatp(engine::Database* db, TatpConfig config, TablespaceMap ts_of);

  Status Load() override;
  Result<bool> RunTransaction() override;
  std::string name() const override { return "TATP"; }
  uint64_t EstimatedPages(uint32_t page_size) const override;

  /// Rebuild the four indexes from heap scans after crash recovery (keys are
  /// reconstructed from the rows' own id/type fields).
  Status RebuildIndexes() override;

  static constexpr uint32_t kSubscriberSize = 120;
  static constexpr uint32_t kVlrLocationOff = 100;  // u32
  static constexpr uint32_t kBit1Off = 40;          // u8
  static constexpr uint32_t kAccessInfoSize = 40;
  static constexpr uint32_t kSpecialFacilitySize = 40;
  static constexpr uint32_t kSfDataAOff = 12;  // u8
  static constexpr uint32_t kCallForwardingSize = 40;

 private:
  uint32_t RandomSubscriber();

  Result<bool> GetSubscriberData();
  Result<bool> GetNewDestination();
  Result<bool> GetAccessData();
  Result<bool> UpdateSubscriberData();
  Result<bool> UpdateLocation();
  Result<bool> InsertCallForwarding();
  Result<bool> DeleteCallForwarding();

  engine::Database* db_;
  TatpConfig config_;
  TablespaceMap ts_of_;
  Rng rng_;

  engine::TableId subscriber_ = 0, access_info_ = 0, special_facility_ = 0,
                  call_forwarding_ = 0;
  std::unique_ptr<engine::Btree> subscriber_index_;
  /// Storage-resident child-table indexes (keys below); index traffic takes
  /// real page I/O like the TATP spec's primary-key accesses.
  std::unique_ptr<engine::Btree> ai_index_;  ///< s*4 + ai_type -> rid
  std::unique_ptr<engine::Btree> sf_index_;  ///< s*4 + sf_type -> rid
  std::unique_ptr<engine::Btree> cf_index_;  ///< (s*4 + sf)*8 + slot -> rid
};

}  // namespace ipa::workload
