// Testbed assembly: builds the device + NoFTL + engine stacks used across
// benchmarks, examples and integration tests (Section 8.1).
//
// Two hardware profiles are modeled:
//  * kEmulatorSlc  — the paper's real-time flash emulator: 16 SLC chips on 4
//    channels, 10% over-provisioning, page-level mapping;
//  * kOpenSsdPSlc / kOpenSsdOddMlc — the OpenSSD Jasmine board: MLC flash,
//    effective host parallelism of one request (no NCQ), small DB buffer;
//    IPA in pSLC or odd-MLC mode (Appendix D).

#pragma once

#include <memory>

#include "engine/database.h"
#include "engine/sharded_database.h"
#include "flash/submit_queue.h"
#include "ftl/page_ftl.h"
#include "ftl/stream_ftl.h"
#include "workload/workload.h"

namespace ipa::workload {

enum class Profile {
  kEmulatorSlc,
  kOpenSsdPSlc,
  kOpenSsdOddMlc,
  kOpenSsdNoIpa,  ///< OpenSSD baseline [0x0] (MLC, no IPA).
};

/// Which FTL stack backs the tablespace (docs/FTL_BACKENDS.md).
enum class Backend {
  kNoFtl,              ///< DBMS-managed region; IPA per the profile/scheme.
  kPageFtlGreedy,      ///< Conventional page-mapping FTL, greedy GC.
  kPageFtlCostBenefit, ///< Conventional page-mapping FTL, cost-benefit GC.
  kStreamFtl,          ///< Stream-aware page-mapping FTL, warm/cold GC.
};

const char* BackendName(Backend b);

struct TestbedConfig {
  Profile profile = Profile::kEmulatorSlc;
  /// Page-FTL backends force scheme = {} (a cooked device cannot take
  /// in-place appends) and ignore IPA-specific profile settings.
  Backend backend = Backend::kNoFtl;
  uint32_t page_size = 4096;
  /// The [NxM] scheme; {} ([0x0]) disables IPA.
  storage::Scheme scheme = {};
  /// Number of data pages the workload's initial database occupies
  /// (Workload::EstimatedPages); sizes the region and the buffer.
  uint64_t db_pages = 0;
  /// Buffer pool size as a fraction of db_pages (the paper's "Buffer X%").
  double buffer_fraction = 0.5;
  /// Extra logical capacity for growth (append-heavy tables).
  double growth_headroom = 2.0;
  double over_provisioning = 0.10;
  /// Shore-MT policies: eager (0.125 / 0.375) vs non-eager (0.75 / 1.0).
  double dirty_flush_threshold = 0.125;
  double log_reclaim_threshold = 0.375;
  bool record_update_sizes = false;
  bool record_io_trace = false;
  uint64_t min_buffer_pages = 64;
  uint64_t log_capacity_bytes = 24ull << 20;
};

struct Testbed {
  std::unique_ptr<flash::FlashArray> dev;
  std::unique_ptr<ftl::NoFtl> noftl;      ///< Backend::kNoFtl stacks only.
  std::unique_ptr<ftl::PageFtl> pageftl;  ///< Page-FTL stacks only.
  std::unique_ptr<ftl::StreamFtl> streamftl;  ///< Backend::kStreamFtl only.
  /// The tablespace's backend, whichever stack is active.
  ftl::FtlBackend* backend = nullptr;
  std::unique_ptr<engine::Database> db;
  engine::TablespaceId ts = 0;
  ftl::RegionId region = 0;
  uint64_t buffer_pages = 0;

  TablespaceMap ts_map() const { return SingleTablespace(ts); }
  SimClock& clock() { return dev->clock(); }
  const ftl::RegionStats& backend_stats() const { return backend->stats(); }
  void ResetBackendStats() { backend->ResetStats(); }
  /// Backward-compatible alias for NoFtl-era callers.
  const ftl::RegionStats& region_stats() const { return backend->stats(); }
};

Result<std::unique_ptr<Testbed>> MakeTestbed(const TestbedConfig& config);

/// Shared-nothing testbed (docs/SHARDING.md): ONE emulator-profile flash
/// array whose 16 chips are split into `workers` contiguous ranges, each
/// backing its own NoFTL region, FlashLane and Database (private WAL, buffer
/// pool, lock manager), composed behind an engine::ShardedDatabase.
/// workers=1 reproduces the unsharded testbed's behavior bit for bit.
struct ShardedTestbedConfig {
  /// Partition / worker count; must divide the emulator's 16 chips.
  uint32_t workers = 1;
  /// Drive partitions from real threads (engine::ShardedDatabase::Config).
  /// Requires error injection off and no armed PowerLossPolicy.
  bool threaded = false;
  /// Base stack parameters. Only Profile::kEmulatorSlc with Backend::kNoFtl
  /// is shardable (the OpenSSD profiles model a host parallelism of one).
  /// db_pages counts the WHOLE database; each partition gets 1/workers.
  TestbedConfig base;
  /// Per-partition group commit (EngineConfig fields of the same names).
  uint32_t group_commit_ops = 1;
  uint64_t group_commit_window_us = 0;
  uint64_t log_force_us = 0;
};

struct ShardedTestbed {
  struct Part {
    flash::FlashLane* lane = nullptr;  ///< Owned by `dev`.
    std::unique_ptr<engine::Database> db;
    engine::TablespaceId ts = 0;
    ftl::RegionId region = 0;
  };

  std::unique_ptr<flash::FlashArray> dev;
  std::unique_ptr<ftl::NoFtl> noftl;
  std::vector<Part> parts;
  std::unique_ptr<engine::ShardedDatabase> sharded;
  uint64_t buffer_pages_per_part = 0;

  uint32_t workers() const { return static_cast<uint32_t>(parts.size()); }
  /// The device-wide clock (authoritative only at epoch barriers).
  SimClock& device_clock() { return dev->clock(); }
  const ftl::RegionStats& region_stats(uint32_t p) const {
    return noftl->region_stats(parts[p].region);
  }
};

Result<std::unique_ptr<ShardedTestbed>> MakeShardedTestbed(
    const ShardedTestbedConfig& config);

/// Scale factor for benchmark sizes: the IPA_SCALE environment variable
/// (default 1.0) multiplies workload row counts and transaction counts.
double BenchScale();

/// Dataset multiplier, independent of IPA_SCALE: the IPA_DATASET environment
/// variable (default 1.0) multiplies workload *dataset* sizes only, while
/// the buffer pool stays sized for the unmultiplied dataset — IPA_DATASET=8
/// makes the heap ~8x the buffer pool, the larger-than-RAM regime where
/// eviction, scrub and GC run under memory pressure. Composes with
/// RunConfig::dataset_multiplier in the bench harness.
double DatasetScale();

}  // namespace ipa::workload
