// Testbed assembly: builds the device + NoFTL + engine stacks used across
// benchmarks, examples and integration tests (Section 8.1).
//
// Two hardware profiles are modeled:
//  * kEmulatorSlc  — the paper's real-time flash emulator: 16 SLC chips on 4
//    channels, 10% over-provisioning, page-level mapping;
//  * kOpenSsdPSlc / kOpenSsdOddMlc — the OpenSSD Jasmine board: MLC flash,
//    effective host parallelism of one request (no NCQ), small DB buffer;
//    IPA in pSLC or odd-MLC mode (Appendix D).

#pragma once

#include <memory>

#include "engine/database.h"
#include "ftl/page_ftl.h"
#include "workload/workload.h"

namespace ipa::workload {

enum class Profile {
  kEmulatorSlc,
  kOpenSsdPSlc,
  kOpenSsdOddMlc,
  kOpenSsdNoIpa,  ///< OpenSSD baseline [0x0] (MLC, no IPA).
};

/// Which FTL stack backs the tablespace (docs/FTL_BACKENDS.md).
enum class Backend {
  kNoFtl,              ///< DBMS-managed region; IPA per the profile/scheme.
  kPageFtlGreedy,      ///< Conventional page-mapping FTL, greedy GC.
  kPageFtlCostBenefit, ///< Conventional page-mapping FTL, cost-benefit GC.
};

const char* BackendName(Backend b);

struct TestbedConfig {
  Profile profile = Profile::kEmulatorSlc;
  /// Page-FTL backends force scheme = {} (a cooked device cannot take
  /// in-place appends) and ignore IPA-specific profile settings.
  Backend backend = Backend::kNoFtl;
  uint32_t page_size = 4096;
  /// The [NxM] scheme; {} ([0x0]) disables IPA.
  storage::Scheme scheme = {};
  /// Number of data pages the workload's initial database occupies
  /// (Workload::EstimatedPages); sizes the region and the buffer.
  uint64_t db_pages = 0;
  /// Buffer pool size as a fraction of db_pages (the paper's "Buffer X%").
  double buffer_fraction = 0.5;
  /// Extra logical capacity for growth (append-heavy tables).
  double growth_headroom = 2.0;
  double over_provisioning = 0.10;
  /// Shore-MT policies: eager (0.125 / 0.375) vs non-eager (0.75 / 1.0).
  double dirty_flush_threshold = 0.125;
  double log_reclaim_threshold = 0.375;
  bool record_update_sizes = false;
  bool record_io_trace = false;
  uint64_t min_buffer_pages = 64;
  uint64_t log_capacity_bytes = 24ull << 20;
};

struct Testbed {
  std::unique_ptr<flash::FlashArray> dev;
  std::unique_ptr<ftl::NoFtl> noftl;      ///< Backend::kNoFtl stacks only.
  std::unique_ptr<ftl::PageFtl> pageftl;  ///< Page-FTL stacks only.
  /// The tablespace's backend, whichever stack is active.
  ftl::FtlBackend* backend = nullptr;
  std::unique_ptr<engine::Database> db;
  engine::TablespaceId ts = 0;
  ftl::RegionId region = 0;
  uint64_t buffer_pages = 0;

  TablespaceMap ts_map() const { return SingleTablespace(ts); }
  SimClock& clock() { return dev->clock(); }
  const ftl::RegionStats& backend_stats() const { return backend->stats(); }
  void ResetBackendStats() { backend->ResetStats(); }
  /// Backward-compatible alias for NoFtl-era callers.
  const ftl::RegionStats& region_stats() const { return backend->stats(); }
};

Result<std::unique_ptr<Testbed>> MakeTestbed(const TestbedConfig& config);

/// Scale factor for benchmark sizes: the IPA_SCALE environment variable
/// (default 1.0) multiplies workload row counts and transaction counts.
double BenchScale();

}  // namespace ipa::workload
