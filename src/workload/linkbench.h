// LinkBench: Facebook's social-graph benchmark (Appendix A.0.3).
//
// Schema: NODE (objects), LINK (directed edges), COUNT (per-node edge
// counters). The operation mix and payload-size behaviour follow the
// LinkBench paper: reads dominate (GET_LINK_LIST alone is ~51%), node
// payloads average under 90 bytes, link payloads under 12 bytes (half
// empty), and over a third of updates change only numeric fields
// (version/time) — which is why LinkBench updates fit IPA's larger
// [N x 100..125] schemes (Figure 10, Tables 3/5).
//
// Access skew is Zipfian over node ids. Adjacency (id1 -> link rids) and
// count-row locations are kept in process memory as the secondary access
// path; rows live in the engine.

#pragma once

#include <unordered_map>
#include <vector>

#include "engine/btree.h"
#include "workload/workload.h"

namespace ipa::workload {

struct LinkbenchConfig {
  uint64_t nodes = 40000;
  double links_per_node = 2.0;
  double zipf_theta = 0.8;
  uint64_t seed = 17;
};

class Linkbench : public Workload {
 public:
  Linkbench(engine::Database* db, LinkbenchConfig config, TablespaceMap ts_of);

  Status Load() override;
  Result<bool> RunTransaction() override;
  std::string name() const override { return "LinkBench"; }
  uint64_t EstimatedPages(uint32_t page_size) const override;

  /// Rebuild node/count/link indexes from heap scans after crash recovery.
  /// Adjacency seq numbers are reassigned in scan order (links carry no
  /// ordering key of their own; "newest links" become approximate after a
  /// restart, which LinkBench tolerates).
  Status RebuildIndexes() override;

  engine::TableId node_table() const { return node_; }

  // NODE: id u64 | type u32 | version u64 | time u32 | payload[var]
  static constexpr uint32_t kNodeHeader = 24;
  static constexpr uint32_t kNodeVersionOff = 12;  // u64
  static constexpr uint32_t kNodeTimeOff = 20;     // u32
  // LINK: id1 u64 | type u32 | id2 u64 | vis u8 | version u32 | time u32 | payload
  static constexpr uint32_t kLinkHeader = 29;
  static constexpr uint32_t kLinkVersionOff = 21;  // u32
  static constexpr uint32_t kLinkTimeOff = 25;     // u32
  // COUNT: id u64 | type u32 | count u64 | time u32 | version u64
  static constexpr uint32_t kCountSize = 32;
  static constexpr uint32_t kCountValueOff = 12;   // u64
  static constexpr uint32_t kCountTimeOff = 20;    // u32

 private:
  uint64_t ZipfNode();
  std::vector<uint8_t> MakeNodeTuple(uint64_t id, uint32_t payload_len);
  std::vector<uint8_t> MakeLinkTuple(uint64_t id1, uint64_t id2,
                                     uint32_t payload_len);
  uint32_t SampleNodePayload();
  uint32_t SampleLinkPayload();

  Result<bool> GetNode();
  Result<bool> AddNode();
  Result<bool> UpdateNode();
  Result<bool> DeleteNode();
  Result<bool> GetLink();
  Result<bool> AddLink();
  Result<bool> DeleteLink();
  Result<bool> UpdateLink();
  Result<bool> CountLink();
  Result<bool> GetLinkList();

  Status BumpCount(engine::TxnId txn, uint64_t id, int64_t delta);
  static uint64_t LinkKey(uint64_t id1, uint32_t seq) {
    return (id1 << 20) | seq;
  }

  engine::Database* db_;
  LinkbenchConfig config_;
  TablespaceMap ts_of_;
  Rng rng_;
  std::unique_ptr<ZipfianGenerator> zipf_;
  DiscreteCdf node_payload_cdf_;
  DiscreteCdf link_payload_cdf_;

  engine::TableId node_ = 0, link_ = 0, count_ = 0;
  std::unique_ptr<engine::Btree> node_index_;   ///< node id -> rid
  /// Adjacency as a storage-resident index: (id1 << 20 | seq) -> link rid.
  /// `seq` slots are allocated by the in-memory counter below (an allocation
  /// cache, not an access path — lookups go through the index).
  std::unique_ptr<engine::Btree> link_index_;
  std::unique_ptr<engine::Btree> count_index_;  ///< node id -> COUNT rid
  std::unordered_map<uint64_t, uint32_t> next_link_seq_;
  uint64_t next_node_id_ = 0;
};

}  // namespace ipa::workload
