#include "workload/tpcc.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/metrics.h"

namespace ipa::workload {

namespace {

std::vector<uint8_t> Filler(uint32_t size, uint8_t fill = 0x20) {
  return std::vector<uint8_t>(size, fill);
}

}  // namespace

Tpcc::Tpcc(engine::Database* db, TpccConfig config, TablespaceMap ts_of)
    : db_(db),
      config_(config),
      ts_of_(std::move(ts_of)),
      rng_(config.seed),
      nurand_(config.seed) {}

uint64_t Tpcc::EstimatedPages(uint32_t page_size) const {
  auto pages_for = [&](uint64_t rows, uint32_t size) {
    uint64_t per_page = page_size / (size + 8);
    return rows / std::max<uint64_t>(per_page, 1) + 2;
  };
  uint64_t w = config_.warehouses;
  uint64_t d = w * config_.districts_per_warehouse;
  uint64_t c = d * config_.customers_per_district;
  uint64_t pages = pages_for(w, kWarehouseSize) + pages_for(d, kDistrictSize) +
                   pages_for(c, kCustomerSize) +
                   pages_for(static_cast<uint64_t>(w) * config_.items, kStockSize) +
                   pages_for(config_.items, kItemSize);
  pages += pages / 6;  // index pages + slack
  return pages;
}

Status Tpcc::Load() {
  IPA_ASSIGN_OR_RETURN(warehouse_, db_->CreateTable("WAREHOUSE", ts_of_("WAREHOUSE")));
  IPA_ASSIGN_OR_RETURN(district_, db_->CreateTable("DISTRICT", ts_of_("DISTRICT")));
  IPA_ASSIGN_OR_RETURN(customer_, db_->CreateTable("CUSTOMER", ts_of_("CUSTOMER")));
  IPA_ASSIGN_OR_RETURN(history_, db_->CreateTable("HISTORY", ts_of_("HISTORY")));
  IPA_ASSIGN_OR_RETURN(order_, db_->CreateTable("ORDER", ts_of_("ORDER")));
  IPA_ASSIGN_OR_RETURN(new_order_, db_->CreateTable("NEW_ORDER", ts_of_("NEW_ORDER")));
  IPA_ASSIGN_OR_RETURN(order_line_, db_->CreateTable("ORDER_LINE", ts_of_("ORDER_LINE")));
  IPA_ASSIGN_OR_RETURN(item_, db_->CreateTable("ITEM", ts_of_("ITEM")));
  IPA_ASSIGN_OR_RETURN(stock_, db_->CreateTable("STOCK", ts_of_("STOCK")));
  IPA_ASSIGN_OR_RETURN(
      engine::Btree ci,
      engine::Btree::Create(db_, "CUSTOMER_IDX", ts_of_("CUSTOMER_IDX")));
  customer_index_ = std::make_unique<engine::Btree>(std::move(ci));
  IPA_ASSIGN_OR_RETURN(engine::Btree si, engine::Btree::Create(
                                             db_, "STOCK_IDX", ts_of_("STOCK_IDX")));
  stock_index_ = std::make_unique<engine::Btree>(std::move(si));
  IPA_ASSIGN_OR_RETURN(engine::Btree oi, engine::Btree::Create(
                                             db_, "ORDER_IDX", ts_of_("ORDER_IDX")));
  order_index_ = std::make_unique<engine::Btree>(std::move(oi));
  IPA_ASSIGN_OR_RETURN(engine::Btree li, engine::Btree::Create(
                                             db_, "LINE_IDX", ts_of_("LINE_IDX")));
  line_index_ = std::make_unique<engine::Btree>(std::move(li));
  IPA_ASSIGN_OR_RETURN(
      engine::Btree ni,
      engine::Btree::Create(db_, "NEW_ORDER_IDX", ts_of_("NEW_ORDER_IDX")));
  new_order_index_ = std::make_unique<engine::Btree>(std::move(ni));
  IPA_ASSIGN_OR_RETURN(
      engine::Btree lo,
      engine::Btree::Create(db_, "LAST_ORDER_IDX", ts_of_("LAST_ORDER_IDX")));
  last_order_index_ = std::make_unique<engine::Btree>(std::move(lo));

  uint32_t g_districts =
      config_.warehouses * config_.districts_per_warehouse;
  next_o_id_.assign(g_districts, 1);

  // Items (shared catalog).
  {
    engine::TxnId txn = db_->Begin();
    uint32_t batch = 0;
    for (uint32_t i = 0; i < config_.items; i++) {
      auto t = Filler(kItemSize);
      EncodeU32(t.data(), i);
      EncodeU32(t.data() + 8, 100 + static_cast<uint32_t>(rng_.Uniform(9900)));
      IPA_ASSIGN_OR_RETURN(engine::Rid rid, db_->Insert(txn, item_, t));
      item_rids_.push_back(rid);
      if (++batch == 2000) {
        IPA_RETURN_NOT_OK(db_->Commit(txn));
        txn = db_->Begin();
        batch = 0;
      }
    }
    IPA_RETURN_NOT_OK(db_->Commit(txn));
  }

  for (uint32_t w = 0; w < config_.warehouses; w++) {
    engine::TxnId txn = db_->Begin();
    auto wt = Filler(kWarehouseSize);
    EncodeU32(wt.data(), w);
    IPA_ASSIGN_OR_RETURN(engine::Rid wrid, db_->Insert(txn, warehouse_, wt));
    warehouse_rids_.push_back(wrid);
    for (uint32_t d = 0; d < config_.districts_per_warehouse; d++) {
      auto dt = Filler(kDistrictSize);
      EncodeU32(dt.data(), d);
      EncodeU32(dt.data() + 4, w);
      EncodeU32(dt.data() + kDistNextOidOff, 1);
      IPA_ASSIGN_OR_RETURN(engine::Rid drid, db_->Insert(txn, district_, dt));
      district_rids_.push_back(drid);
    }
    IPA_RETURN_NOT_OK(db_->Commit(txn));

    // Customers.
    engine::TxnId ctxn = db_->Begin();
    uint32_t batch = 0;
    for (uint32_t d = 0; d < config_.districts_per_warehouse; d++) {
      for (uint32_t c = 0; c < config_.customers_per_district; c++) {
        auto t = Filler(kCustomerSize);
        EncodeU32(t.data(), c);
        EncodeU32(t.data() + 4, d);
        EncodeU32(t.data() + 8, w);
        EncodeU64(t.data() + kCustBalanceOff, static_cast<uint64_t>(-1000));
        IPA_ASSIGN_OR_RETURN(engine::Rid rid, db_->Insert(ctxn, customer_, t));
        IPA_RETURN_NOT_OK(
            customer_index_->Insert(GlobalCustomer(w, d, c), rid.Pack()));
        if (++batch == 1000) {
          IPA_RETURN_NOT_OK(db_->Commit(ctxn));
          ctxn = db_->Begin();
          batch = 0;
        }
      }
    }
    IPA_RETURN_NOT_OK(db_->Commit(ctxn));

    // Stock.
    engine::TxnId stxn = db_->Begin();
    batch = 0;
    for (uint32_t i = 0; i < config_.items; i++) {
      auto t = Filler(kStockSize);
      EncodeU32(t.data(), i);
      EncodeU32(t.data() + 4, w);
      EncodeU32(t.data() + kStockQuantityOff,
                10 + static_cast<uint32_t>(rng_.Uniform(91)));
      IPA_ASSIGN_OR_RETURN(engine::Rid rid, db_->Insert(stxn, stock_, t));
      IPA_RETURN_NOT_OK(stock_index_->Insert(
          static_cast<uint64_t>(w) * config_.items + i, rid.Pack()));
      if (++batch == 1000) {
        IPA_RETURN_NOT_OK(db_->Commit(stxn));
        stxn = db_->Begin();
        batch = 0;
      }
    }
    IPA_RETURN_NOT_OK(db_->Commit(stxn));
  }
  return Status::OK();
}

Status Tpcc::AddToField32(engine::TxnId txn, engine::Rid rid, uint32_t off,
                          int32_t delta) {
  auto tuple = db_->Read(txn, rid, /*for_update=*/true);
  IPA_RETURN_NOT_OK(tuple.status());
  int32_t v = static_cast<int32_t>(DecodeU32(tuple.value().data() + off));
  uint8_t nb[4];
  EncodeU32(nb, static_cast<uint32_t>(v + delta));
  return db_->Update(txn, rid, off, nb);
}

Status Tpcc::AddToField64(engine::TxnId txn, engine::Rid rid, uint32_t off,
                          int64_t delta) {
  auto tuple = db_->Read(txn, rid, /*for_update=*/true);
  IPA_RETURN_NOT_OK(tuple.status());
  int64_t v = static_cast<int64_t>(DecodeU64(tuple.value().data() + off));
  uint8_t nb[8];
  EncodeU64(nb, static_cast<uint64_t>(v + delta));
  return db_->Update(txn, rid, off, nb);
}

Result<bool> Tpcc::NewOrder() {
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(config_.warehouses));
  uint32_t d = static_cast<uint32_t>(rng_.Uniform(config_.districts_per_warehouse));
  uint32_t c = static_cast<uint32_t>(
      nurand_.Gen(rng_, 1023, 0, config_.customers_per_district - 1));
  uint32_t gd = GlobalDistrict(w, d);
  uint32_t ol_cnt = 5 + static_cast<uint32_t>(rng_.Uniform(11));
  bool rollback = rng_.Chance(0.01);  // spec: 1% of NewOrders abort

  engine::TxnId txn = db_->Begin();
  auto fail = [&](Status s) -> Result<bool> {
    (void)db_->Abort(txn);
    return s;
  };

  // District: O_ID allocation (D_NEXT_O_ID += 1; 4-byte numeric update).
  Status s = AddToField32(txn, district_rids_[gd], kDistNextOidOff, 1);
  if (!s.ok()) return fail(s);
  uint64_t o_id = next_o_id_[gd];

  PendingOrder pending;
  pending.o_id = o_id;
  pending.customer = GlobalCustomer(w, d, c);
  pending.total_amount = 0;

  // Order row.
  auto ot = Filler(kOrderSize, 0);
  EncodeU64(ot.data(), o_id);
  EncodeU32(ot.data() + 8, c);
  EncodeU32(ot.data() + 12, d);
  EncodeU32(ot.data() + 20, ol_cnt);
  EncodeU32(ot.data() + kOrderGdOff, gd);
  auto orid = db_->Insert(txn, order_, ot);
  if (!orid.ok()) return fail(orid.status());
  pending.order_rid = orid.value();

  // New-order row.
  auto nt = Filler(kNewOrderSize, 0);
  EncodeU64(nt.data(), o_id);
  EncodeU32(nt.data() + 8, gd);
  auto nrid = db_->Insert(txn, new_order_, nt);
  if (!nrid.ok()) return fail(nrid.status());
  pending.new_order_rid = nrid.value();

  for (uint32_t ol = 0; ol < ol_cnt; ol++) {
    uint32_t item = static_cast<uint32_t>(
        nurand_.Gen(rng_, 8191, 0, config_.items - 1));
    uint32_t supply_w = w;
    bool remote = config_.warehouses > 1 && rng_.Chance(0.01);
    if (remote) {
      supply_w = static_cast<uint32_t>(rng_.Uniform(config_.warehouses));
    }
    uint32_t qty = 1 + static_cast<uint32_t>(rng_.Uniform(10));

    if (rollback && ol == ol_cnt - 1) {
      // Spec: unused item number detected on the last line -> rollback.
      (void)db_->Abort(txn);
      return false;
    }

    // Item price (read-only).
    auto it = db_->Read(txn, item_rids_[item]);
    if (!it.ok()) return fail(it.status());
    uint32_t price = DecodeU32(it.value().data() + 8);
    uint32_t amount = price * qty;
    pending.total_amount += amount;

    // Stock: the write hot spot. Three numeric fields change; the deltas are
    // small, so typically only least-significant bytes differ on the page.
    auto packed = stock_index_->Lookup(
        static_cast<uint64_t>(supply_w) * config_.items + item);
    if (!packed.ok()) return fail(packed.status());
    engine::Rid srid = engine::Rid::Unpack(packed.value());
    auto st = db_->Read(txn, srid, /*for_update=*/true);
    if (!st.ok()) return fail(st.status());
    int32_t quantity =
        static_cast<int32_t>(DecodeU32(st.value().data() + kStockQuantityOff));
    int32_t new_q = quantity >= static_cast<int32_t>(qty) + 10
                        ? quantity - static_cast<int32_t>(qty)
                        : quantity - static_cast<int32_t>(qty) + 91;
    uint8_t nb[4];
    EncodeU32(nb, static_cast<uint32_t>(new_q));
    s = db_->Update(txn, srid, kStockQuantityOff, nb);
    if (!s.ok()) return fail(s);
    s = AddToField32(txn, srid, kStockYtdOff, static_cast<int32_t>(qty));
    if (!s.ok()) return fail(s);
    s = AddToField32(txn, srid,
                     remote ? kStockRemoteCntOff : kStockOrderCntOff, 1);
    if (!s.ok()) return fail(s);

    // Order line.
    auto lt = Filler(kOrderLineSize, 0);
    EncodeU64(lt.data(), o_id);
    EncodeU32(lt.data() + 8, ol);
    EncodeU32(lt.data() + 12, item);
    EncodeU32(lt.data() + 16, supply_w);
    EncodeU32(lt.data() + 24, qty);
    EncodeU32(lt.data() + 28, amount);
    EncodeU32(lt.data() + kOlGdOff, gd);
    auto lrid = db_->Insert(txn, order_line_, lt);
    if (!lrid.ok()) return fail(lrid.status());
    pending.lines.push_back(lrid.value());
  }

  IPA_RETURN_NOT_OK(db_->Commit(txn));
  next_o_id_[gd]++;
  // Secondary-index maintenance (post-commit: indexes are non-transactional
  // and rebuilt on restart; maintaining them after commit keeps them
  // consistent with committed state under the spec's 1% rollbacks).
  IPA_RETURN_NOT_OK(
      order_index_->Insert(OrderKey(gd, o_id), pending.order_rid.Pack()));
  IPA_RETURN_NOT_OK(new_order_index_->Insert(OrderKey(gd, o_id),
                                             pending.new_order_rid.Pack()));
  for (uint32_t i = 0; i < pending.lines.size(); i++) {
    IPA_RETURN_NOT_OK(
        line_index_->Insert(LineKey(gd, o_id, i), pending.lines[i].Pack()));
  }
  IPA_RETURN_NOT_OK(
      last_order_index_->Insert(pending.customer, OrderKey(gd, o_id)));
  return true;
}

Result<bool> Tpcc::Payment() {
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(config_.warehouses));
  uint32_t d = static_cast<uint32_t>(rng_.Uniform(config_.districts_per_warehouse));
  uint32_t c = static_cast<uint32_t>(
      nurand_.Gen(rng_, 1023, 0, config_.customers_per_district - 1));
  int64_t amount = 100 + static_cast<int64_t>(rng_.Uniform(499901));  // cents

  engine::TxnId txn = db_->Begin();
  auto fail = [&](Status s) -> Result<bool> {
    (void)db_->Abort(txn);
    return s;
  };

  Status s = AddToField64(txn, warehouse_rids_[w], kWhYtdOff, amount);
  if (!s.ok()) return fail(s);
  s = AddToField64(txn, district_rids_[GlobalDistrict(w, d)], kDistYtdOff, amount);
  if (!s.ok()) return fail(s);

  auto packed = customer_index_->Lookup(GlobalCustomer(w, d, c));
  if (!packed.ok()) return fail(packed.status());
  engine::Rid crid = engine::Rid::Unpack(packed.value());
  s = AddToField64(txn, crid, kCustBalanceOff, -amount);
  if (!s.ok()) return fail(s);
  s = AddToField64(txn, crid, kCustYtdOff, amount);
  if (!s.ok()) return fail(s);
  s = AddToField32(txn, crid, kCustPaymentCntOff, 1);
  if (!s.ok()) return fail(s);

  if (rng_.Chance(0.10)) {
    // Bad credit: rewrite the front of C_DATA (a large update; such pages go
    // out-of-place — matching the paper's remark on the 10% of Customers).
    std::vector<uint8_t> cdata(200);
    for (size_t i = 0; i < cdata.size(); i++) {
      cdata[i] = static_cast<uint8_t>(rng_.Next());
    }
    s = db_->Update(txn, crid, kCustDataOff, cdata);
    if (!s.ok()) return fail(s);
  }

  auto ht = Filler(kHistorySize, 0);
  EncodeU32(ht.data(), GlobalCustomer(w, d, c));
  EncodeU64(ht.data() + 4, static_cast<uint64_t>(amount));
  auto hr = db_->Insert(txn, history_, ht);
  if (!hr.ok()) return fail(hr.status());

  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Tpcc::OrderStatus() {
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(config_.warehouses));
  uint32_t d = static_cast<uint32_t>(rng_.Uniform(config_.districts_per_warehouse));
  uint32_t c = static_cast<uint32_t>(
      nurand_.Gen(rng_, 1023, 0, config_.customers_per_district - 1));
  uint32_t gc = GlobalCustomer(w, d, c);

  engine::TxnId txn = db_->Begin();
  auto fail = [&](Status s) -> Result<bool> {
    (void)db_->Abort(txn);
    return s;
  };
  auto packed = customer_index_->Lookup(gc);
  if (!packed.ok()) return fail(packed.status());
  auto cust = db_->Read(txn, engine::Rid::Unpack(packed.value()));
  if (!cust.ok()) return fail(cust.status());

  // The customer's most recent order, via the last-order index.
  auto okey = last_order_index_->Lookup(gc);
  if (okey.ok()) {
    uint32_t gd = static_cast<uint32_t>(okey.value() >> 40);
    uint64_t o_id = okey.value() & 0xFFFFFFFFFFull;
    auto orid = order_index_->Lookup(okey.value());
    if (orid.ok()) {
      auto ord = db_->Read(txn, engine::Rid::Unpack(orid.value()));
      if (ord.ok()) {
        uint32_t ol_cnt = DecodeU32(ord.value().data() + 20);
        for (uint32_t i = 0; i < ol_cnt; i++) {
          auto lrid = line_index_->Lookup(LineKey(gd, o_id, i));
          if (!lrid.ok()) break;
          (void)db_->Read(txn, engine::Rid::Unpack(lrid.value()));
        }
      }
    }
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Result<bool> Tpcc::Delivery() {
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(config_.warehouses));
  uint32_t carrier = 1 + static_cast<uint32_t>(rng_.Uniform(10));

  engine::TxnId txn = db_->Begin();
  auto fail = [&](Status s) -> Result<bool> {
    (void)db_->Abort(txn);
    return s;
  };
  std::vector<uint64_t> delivered_keys;
  for (uint32_t d = 0; d < config_.districts_per_warehouse; d++) {
    uint32_t gd = GlobalDistrict(w, d);
    // Oldest undelivered order: min key in the district's range of the
    // NEW_ORDER index.
    uint64_t okey = 0;
    uint64_t no_rid_packed = 0;
    bool found = false;
    IPA_RETURN_NOT_OK(new_order_index_->Scan(
        OrderKey(gd, 0), OrderKey(gd + 1, 0) - 1,
        [&](uint64_t k, uint64_t v) {
          okey = k;
          no_rid_packed = v;
          found = true;
          return false;  // first == oldest
        }));
    if (!found) continue;
    uint64_t o_id = okey & 0xFFFFFFFFFFull;

    Status s = db_->Delete(txn, engine::Rid::Unpack(no_rid_packed));
    if (!s.ok()) return fail(s);

    auto orid = order_index_->Lookup(okey);
    if (!orid.ok()) return fail(orid.status());
    engine::Rid order_rid = engine::Rid::Unpack(orid.value());
    auto ord = db_->Read(txn, order_rid, /*for_update=*/true);
    if (!ord.ok()) return fail(ord.status());
    uint32_t cust = DecodeU32(ord.value().data() + 8);
    uint32_t ol_cnt = DecodeU32(ord.value().data() + 20);

    uint8_t cb[4];
    EncodeU32(cb, carrier);
    s = db_->Update(txn, order_rid, kOrderCarrierOff, cb);
    if (!s.ok()) return fail(s);

    uint8_t date[4];
    EncodeU32(date, 20170514);
    uint64_t amount = 0;
    for (uint32_t i = 0; i < ol_cnt; i++) {
      auto lrid = line_index_->Lookup(LineKey(gd, o_id, i));
      if (!lrid.ok()) return fail(lrid.status());
      engine::Rid line_rid = engine::Rid::Unpack(lrid.value());
      auto line = db_->Read(txn, line_rid, /*for_update=*/true);
      if (!line.ok()) return fail(line.status());
      amount += DecodeU32(line.value().data() + 28);
      s = db_->Update(txn, line_rid, kOlDeliveryDateOff, date);
      if (!s.ok()) return fail(s);
    }

    auto packed = customer_index_->Lookup(GlobalCustomer(w, d, cust));
    if (!packed.ok()) return fail(packed.status());
    engine::Rid crid = engine::Rid::Unpack(packed.value());
    s = AddToField64(txn, crid, kCustBalanceOff, static_cast<int64_t>(amount));
    if (!s.ok()) return fail(s);
    s = AddToField32(txn, crid, kCustDeliveryCntOff, 1);
    if (!s.ok()) return fail(s);
    delivered_keys.push_back(okey);
  }
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  for (uint64_t okey : delivered_keys) {
    (void)new_order_index_->Remove(okey);
  }
  return true;
}

Result<bool> Tpcc::StockLevel() {
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(config_.warehouses));
  uint32_t d = static_cast<uint32_t>(rng_.Uniform(config_.districts_per_warehouse));
  uint32_t gd = GlobalDistrict(w, d);
  uint32_t threshold = 10 + static_cast<uint32_t>(rng_.Uniform(11));

  engine::TxnId txn = db_->Begin();
  auto fail = [&](Status s) -> Result<bool> {
    (void)db_->Abort(txn);
    return s;
  };
  auto dist = db_->Read(txn, district_rids_[gd]);
  if (!dist.ok()) return fail(dist.status());
  uint64_t next = DecodeU32(dist.value().data() + kDistNextOidOff);
  uint64_t lo_oid = next > 20 ? next - 20 : 1;

  // Order-line rows of the last ~20 orders, via the order-line index.
  std::vector<engine::Rid> line_rids;
  IPA_RETURN_NOT_OK(line_index_->Scan(
      LineKey(gd, lo_oid, 0), LineKey(gd, next, 0),
      [&](uint64_t, uint64_t v) {
        line_rids.push_back(engine::Rid::Unpack(v));
        return line_rids.size() < 220;
      }));
  uint32_t low = 0;
  for (engine::Rid lrid : line_rids) {
    auto line = db_->Read(txn, lrid);
    if (!line.ok()) {
      if (line.status().IsBusy()) return fail(line.status());
      continue;
    }
    uint32_t item = DecodeU32(line.value().data() + 12);
    auto packed = stock_index_->Lookup(
        static_cast<uint64_t>(w) * config_.items + item);
    if (!packed.ok()) continue;
    auto st = db_->Read(txn, engine::Rid::Unpack(packed.value()));
    if (st.ok() &&
        DecodeU32(st.value().data() + kStockQuantityOff) < threshold) {
      low++;
    }
  }
  (void)low;
  IPA_RETURN_NOT_OK(db_->Commit(txn));
  return true;
}

Status Tpcc::RebuildIndexes() {
  auto fresh = [&](const char* name,
                   std::unique_ptr<engine::Btree>* out) -> Status {
    IPA_ASSIGN_OR_RETURN(engine::Btree t,
                         engine::Btree::Create(db_, name, ts_of_(name)));
    *out = std::make_unique<engine::Btree>(std::move(t));
    return Status::OK();
  };
  IPA_RETURN_NOT_OK(fresh("CUSTOMER_IDX_R", &customer_index_));
  IPA_RETURN_NOT_OK(fresh("STOCK_IDX_R", &stock_index_));
  IPA_RETURN_NOT_OK(fresh("ORDER_IDX_R", &order_index_));
  IPA_RETURN_NOT_OK(fresh("LINE_IDX_R", &line_index_));
  IPA_RETURN_NOT_OK(fresh("NEW_ORDER_IDX_R", &new_order_index_));
  IPA_RETURN_NOT_OK(fresh("LAST_ORDER_IDX_R", &last_order_index_));

  Status st = Status::OK();
  auto scan = [&](engine::TableId table, auto fn) -> Status {
    IPA_RETURN_NOT_OK(db_->Scan(
        table, [&](engine::Rid rid, std::span<const uint8_t> t) {
          st = fn(rid, t);
          return st.ok();
        }));
    return st;
  };

  IPA_RETURN_NOT_OK(scan(customer_, [&](engine::Rid rid,
                                        std::span<const uint8_t> t) {
    uint32_t c = DecodeU32(t.data());
    uint32_t d = DecodeU32(t.data() + 4);
    uint32_t w = DecodeU32(t.data() + 8);
    return customer_index_->Insert(GlobalCustomer(w, d, c), rid.Pack());
  }));
  IPA_RETURN_NOT_OK(scan(stock_, [&](engine::Rid rid,
                                     std::span<const uint8_t> t) {
    uint32_t i = DecodeU32(t.data());
    uint32_t w = DecodeU32(t.data() + 4);
    return stock_index_->Insert(static_cast<uint64_t>(w) * config_.items + i,
                                rid.Pack());
  }));
  IPA_RETURN_NOT_OK(scan(order_, [&](engine::Rid rid,
                                     std::span<const uint8_t> t) {
    uint64_t o_id = DecodeU64(t.data());
    uint32_t gd = DecodeU32(t.data() + kOrderGdOff);
    uint32_t c = DecodeU32(t.data() + 8);
    IPA_RETURN_NOT_OK(order_index_->Insert(OrderKey(gd, o_id), rid.Pack()));
    // Customer's latest order: keep the max OrderKey per customer.
    uint32_t gc = gd * config_.customers_per_district + c;
    auto prev = last_order_index_->Lookup(gc);
    if (!prev.ok() || prev.value() < OrderKey(gd, o_id)) {
      IPA_RETURN_NOT_OK(last_order_index_->Insert(gc, OrderKey(gd, o_id)));
    }
    return Status::OK();
  }));
  IPA_RETURN_NOT_OK(scan(order_line_, [&](engine::Rid rid,
                                          std::span<const uint8_t> t) {
    uint64_t o_id = DecodeU64(t.data());
    uint32_t line = DecodeU32(t.data() + 8);
    uint32_t gd = DecodeU32(t.data() + kOlGdOff);
    return line_index_->Insert(LineKey(gd, o_id, line), rid.Pack());
  }));
  IPA_RETURN_NOT_OK(scan(new_order_, [&](engine::Rid rid,
                                         std::span<const uint8_t> t) {
    uint64_t o_id = DecodeU64(t.data());
    uint32_t gd = DecodeU32(t.data() + 8);
    return new_order_index_->Insert(OrderKey(gd, o_id), rid.Pack());
  }));

  // D_NEXT_O_ID caches from the recovered DISTRICT rows.
  uint32_t g_districts = config_.warehouses * config_.districts_per_warehouse;
  next_o_id_.assign(g_districts, 1);
  district_rids_.clear();
  IPA_RETURN_NOT_OK(scan(district_, [&](engine::Rid rid,
                                        std::span<const uint8_t> t) {
    uint32_t d = DecodeU32(t.data());
    uint32_t w = DecodeU32(t.data() + 4);
    district_rids_.resize(g_districts);
    district_rids_[GlobalDistrict(w, d)] = rid;
    next_o_id_[GlobalDistrict(w, d)] = DecodeU32(t.data() + kDistNextOidOff);
    return Status::OK();
  }));
  warehouse_rids_.clear();
  IPA_RETURN_NOT_OK(scan(warehouse_, [&](engine::Rid rid,
                                         std::span<const uint8_t>) {
    warehouse_rids_.push_back(rid);
    return Status::OK();
  }));
  item_rids_.clear();
  IPA_RETURN_NOT_OK(scan(item_, [&](engine::Rid rid, std::span<const uint8_t>) {
    item_rids_.push_back(rid);
    return Status::OK();
  }));
  return Status::OK();
}

Result<bool> Tpcc::RunTransaction() {
  struct Mix {
    metrics::Counter new_order{"workload.tpcc.new_order"};
    metrics::Counter payment{"workload.tpcc.payment"};
    metrics::Counter order_status{"workload.tpcc.order_status"};
    metrics::Counter delivery{"workload.tpcc.delivery"};
    metrics::Counter stock_level{"workload.tpcc.stock_level"};
  };
  static Mix mix;
  double p = rng_.NextDouble();
  if (p < 0.45) { mix.new_order.Inc(); return NewOrder(); }
  if (p < 0.88) { mix.payment.Inc(); return Payment(); }
  if (p < 0.92) { mix.order_status.Inc(); return OrderStatus(); }
  if (p < 0.96) { mix.delivery.Inc(); return Delivery(); }
  mix.stock_level.Inc();
  return StockLevel();
}

}  // namespace ipa::workload
