// TPC-C order-entry workload (Appendix A.0.2), scaled down.
//
// All five transactions are implemented with their spec mix (NewOrder 45%,
// Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%), NURand access
// skew, and the spec's 1% NewOrder rollbacks. Attribute layouts keep the
// numeric fields the transactions touch at fixed offsets, so the on-page
// byte-change footprint matches the paper's analysis: a NewOrder changes
// three numeric STOCK fields per item (~3 net bytes since the deltas are
// small), Payment changes YTD/balance fields (and rewrites C_DATA for 10%
// of customers), Delivery stamps carrier/delivery dates.
//
// Scale-downs vs. the spec (documented deviations): items/stock default to
// 10 000 (spec 100 000), customers per district to 300 (spec 3 000), and
// C_DATA is a fixed 400 B (spec 300-500 B). All secondary access paths
// (oldest undelivered order, a customer's last order, order-line lookup)
// are storage-resident B+trees, so index traffic takes real page I/O; index
// maintenance happens post-commit (indexes are non-logged, engine/btree.h).

#pragma once

#include <vector>

#include "engine/btree.h"
#include "workload/workload.h"

namespace ipa::workload {

struct TpccConfig {
  uint32_t warehouses = 1;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 300;
  uint32_t items = 10000;  // == stock rows per warehouse
  uint64_t seed = 11;
};

class Tpcc : public Workload {
 public:
  Tpcc(engine::Database* db, TpccConfig config, TablespaceMap ts_of);

  Status Load() override;
  Result<bool> RunTransaction() override;
  std::string name() const override { return "TPC-C"; }
  uint64_t EstimatedPages(uint32_t page_size) const override;

  /// Rebuild all six secondary indexes and the rid/counter caches from heap
  /// scans after crash recovery.
  Status RebuildIndexes() override;

  engine::TableId stock_table() const { return stock_; }
  engine::TableId customer_table() const { return customer_; }

  // Tuple sizes / field offsets (little-endian numerics).
  static constexpr uint32_t kStockSize = 310;
  static constexpr uint32_t kStockQuantityOff = 12;   // i32
  static constexpr uint32_t kStockYtdOff = 16;        // u32
  static constexpr uint32_t kStockOrderCntOff = 20;   // u32
  static constexpr uint32_t kStockRemoteCntOff = 24;  // u32

  static constexpr uint32_t kCustomerSize = 560;
  static constexpr uint32_t kCustBalanceOff = 12;     // i64
  static constexpr uint32_t kCustYtdOff = 20;         // i64
  static constexpr uint32_t kCustPaymentCntOff = 28;  // u32
  static constexpr uint32_t kCustDeliveryCntOff = 32; // u32
  static constexpr uint32_t kCustDataOff = 160;       // 400 B C_DATA

  static constexpr uint32_t kDistrictSize = 100;
  static constexpr uint32_t kDistNextOidOff = 8;      // u32
  static constexpr uint32_t kDistYtdOff = 12;         // i64

  static constexpr uint32_t kWarehouseSize = 90;
  static constexpr uint32_t kWhYtdOff = 8;            // i64

  static constexpr uint32_t kOrderSize = 32;
  static constexpr uint32_t kOrderCarrierOff = 16;    // u32
  static constexpr uint32_t kOrderGdOff = 24;         // u32 global district

  static constexpr uint32_t kOrderLineSize = 56;
  static constexpr uint32_t kOlDeliveryDateOff = 20;  // u32
  static constexpr uint32_t kOlGdOff = 32;            // u32 global district

  static constexpr uint32_t kNewOrderSize = 16;
  static constexpr uint32_t kItemSize = 82;
  static constexpr uint32_t kHistorySize = 46;

 private:
  struct PendingOrder {
    uint64_t o_id;
    engine::Rid order_rid;
    engine::Rid new_order_rid;
    uint32_t customer;  // global customer index
    std::vector<engine::Rid> lines;
    uint32_t total_amount;
  };

  uint32_t GlobalDistrict(uint32_t w, uint32_t d) const {
    return w * config_.districts_per_warehouse + d;
  }
  uint32_t GlobalCustomer(uint32_t w, uint32_t d, uint32_t c) const {
    return GlobalDistrict(w, d) * config_.customers_per_district + c;
  }

  // Secondary-index key layouts (storage-resident B+trees).
  static uint64_t OrderKey(uint32_t gd, uint64_t o_id) {
    return (static_cast<uint64_t>(gd) << 40) | o_id;
  }
  static uint64_t LineKey(uint32_t gd, uint64_t o_id, uint32_t line) {
    return (static_cast<uint64_t>(gd) << 40) | (o_id << 8) | line;
  }

  Result<bool> NewOrder();
  Result<bool> Payment();
  Result<bool> OrderStatus();
  Result<bool> Delivery();
  Result<bool> StockLevel();

  /// Read a little-endian numeric at `off`, add `delta`, write it back
  /// through a byte-level Update (the IPA-friendly small write).
  Status AddToField32(engine::TxnId txn, engine::Rid rid, uint32_t off,
                      int32_t delta);
  Status AddToField64(engine::TxnId txn, engine::Rid rid, uint32_t off,
                      int64_t delta);

  engine::Database* db_;
  TpccConfig config_;
  TablespaceMap ts_of_;
  Rng rng_;
  NuRand nurand_;

  engine::TableId warehouse_ = 0, district_ = 0, customer_ = 0, history_ = 0,
                  order_ = 0, new_order_ = 0, order_line_ = 0, item_ = 0,
                  stock_ = 0;
  std::vector<engine::Rid> warehouse_rids_;
  std::vector<engine::Rid> district_rids_;
  std::unique_ptr<engine::Btree> customer_index_;
  std::unique_ptr<engine::Btree> stock_index_;
  std::vector<engine::Rid> item_rids_;

  // Storage-resident secondary indexes (maintained post-commit, rebuilt on
  // restart like all non-logged indexes — engine/btree.h):
  std::unique_ptr<engine::Btree> order_index_;      ///< OrderKey -> order rid
  std::unique_ptr<engine::Btree> line_index_;       ///< LineKey -> line rid
  std::unique_ptr<engine::Btree> new_order_index_;  ///< OrderKey -> NEW_ORDER rid
  std::unique_ptr<engine::Btree> last_order_index_; ///< customer -> OrderKey

  std::vector<uint64_t> next_o_id_;  ///< per global district (D_NEXT_O_ID cache)
};

}  // namespace ipa::workload
