// Replication node: change capture (shipper) + idempotent crash-atomic apply
// (applier) over one engine::Database. See docs/REPLICATION.md.
//
// A ReplNode attaches to a Database and a set of replicated tables. On a
// *writable* node (a primary, or a replica after Promote) the engine's commit
// hook turns every durable commit into an outbound changeset frame; abort
// records ship as boundary marks so the per-writer LSN chain stays contiguous.
// On any node, ApplyFrame() ingests a frame with exactly-once effect:
//
//   - Tuples are identified by origin identity (origin writer, origin rid).
//     The applier keeps a durable origin→local rid map plus a per-key LWW
//     (version, writer) pair, and a version vector of the highest LSN applied
//     per writer.
//   - Each frame applies as ONE local transaction that also rewrites the
//     node's meta row (version vector) and the affected map rows. The
//     replica's own WAL makes the apply crash-atomic: a power loss mid-apply
//     rolls the whole frame back at recovery, and re-shipping it is safe.
//   - Duplicates (frame LSN <= vv entry) are skipped; a gap in the LSN chain
//     (or a shipper that restarted and lost its chain) reports kNeedCatchup,
//     answered with BuildSnapshot()/ApplySnapshot() + tail replay.
//
// Volatile state (outbound queue, in-memory maps) is rebuilt after a crash by
// RecoverReplState(), which scans the meta/map tables the apply transactions
// maintain — nothing about replication needs its own recovery protocol.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "repl/changeset.h"

namespace ipa::repl {

struct ReplConfig {
  WriterId writer = 1;
  /// Writable nodes capture their commits as outbound frames. A replica
  /// starts read-only and becomes writable via Promote().
  bool writable = false;
  /// Multi-writer mode (the two-primary drill): ship every update as a full
  /// tuple image so concurrent LWW merge never has to apply a byte patch
  /// against a tuple another writer deleted. Single-writer streams keep the
  /// compact delta encoding.
  bool full_images = false;
  /// LZ-compress op bytes on the wire (changeset.h). Off by default: the
  /// replication fuzz fingerprints and bench baselines are byte-exact over
  /// the uncompressed stream; bench_delta_compression measures the
  /// compressed one. Receivers accept either form regardless.
  bool compress_wire = false;
};

/// Per-instance counters (process-global metrics mirror these under repl.*).
struct ReplStats {
  uint64_t frames_emitted = 0;
  uint64_t bytes_emitted = 0;
  uint64_t delta_ops = 0;       ///< Ops shipped as IPA-budget byte patches.
  uint64_t full_ops = 0;        ///< Ops shipped as full tuple images.
  uint64_t foldbacks = 0;       ///< Updates exceeding the budget, folded back.
  uint64_t abort_marks = 0;
  uint64_t frames_applied = 0;
  uint64_t ops_applied = 0;
  uint64_t duplicates = 0;      ///< Frames skipped by the version vector.
  uint64_t torn_rejected = 0;   ///< CRC-bad shipments rejected, state unchanged.
  uint64_t gap_rejected = 0;    ///< Frames needing catch-up.
  uint64_t lww_skips = 0;       ///< Ops losing the (version, writer) race.
  uint64_t missing_skips = 0;   ///< Patches for tuples no longer present.
  uint64_t snapshots_built = 0;
  uint64_t snapshots_applied = 0;
  uint64_t snapshot_items = 0;
  uint64_t promotions = 0;
};

class ReplNode {
 public:
  /// A tuple's origin identity: (origin writer, rid on that writer).
  using LogicalKey = std::pair<WriterId, uint64_t>;
  using LogicalMap = std::map<LogicalKey, std::vector<uint8_t>>;

  /// Attach to `db`, replicating `tables` (all in tablespace `ts`). Creates
  /// the node's __repl_meta / __repl_map tables in `ts` and durably writes
  /// the initial meta row. Installs the commit/abort hooks; the node must
  /// outlive neither — destroy it before the Database.
  static Result<std::unique_ptr<ReplNode>> Attach(
      engine::Database* db, engine::TablespaceId ts,
      std::vector<engine::TableId> tables, ReplConfig cfg);
  ~ReplNode();

  ReplNode(const ReplNode&) = delete;
  ReplNode& operator=(const ReplNode&) = delete;

  // -- Shipper side -----------------------------------------------------------

  size_t outbound_frames() const { return outbound_.size(); }
  /// Pop the oldest outbound frame (encoded). Empty vector when none.
  std::vector<uint8_t> PopOutbound();

  /// Full-state catch-up stream for a replica: kSnapshotBegin, one
  /// kSnapshotItem per live tuple, kSnapshotEnd (with this node's version
  /// vector). Requires a quiescent engine (no open transactions).
  Result<std::vector<std::vector<uint8_t>>> BuildSnapshot();

  // -- Applier side -----------------------------------------------------------

  enum class Apply {
    kApplied,       ///< Frame applied (or applied as all-LWW-skips).
    kDuplicate,     ///< Already covered by the version vector; no-op.
    kEcho,          ///< Own frame looped back; no-op.
    kNeedCatchup,   ///< LSN-chain gap or restarted shipper; run catch-up.
    kRejectedTorn,  ///< CRC/parse failure; no state change.
  };

  /// Ingest one changeset/abort frame. Crash-atomic and idempotent. Engine
  /// errors (e.g. Unavailable on power loss) roll the frame back and
  /// propagate; the same frame can be re-applied after recovery.
  Result<Apply> ApplyFrame(std::span<const uint8_t> wire);

  /// Ingest a BuildSnapshot() stream as one transaction: LWW-upsert every
  /// item, delete local tuples the snapshot no longer contains (unless a
  /// newer-than-snapshot op produced them), merge the version vector.
  /// Not allowed on a writable node.
  Status ApplySnapshot(const std::vector<std::vector<uint8_t>>& frames);

  /// Failover: apply the queued frames that are still contiguous (a gap
  /// means those transactions died with the primary), then serve writes.
  /// Future commits version above everything seen so far.
  Status Promote(const std::vector<std::vector<uint8_t>>& pending);

  // -- Crash protocol ---------------------------------------------------------

  /// Rebuild all volatile replication state from the meta/map tables after
  /// the Database recovered (RecoverAfterPowerLoss/Recover). Clears the
  /// outbound queue and forgets the emit chain (the next frame ships with
  /// prev_lsn = kUnknownLsn, pushing receivers into catch-up).
  Status RecoverReplState();

  // -- Introspection ----------------------------------------------------------

  /// Logical content: origin identity -> tuple bytes, across all replicated
  /// tables. Two converged nodes have byte-identical logical maps.
  Status ScanLogical(LogicalMap* out) const;

  const VersionVector& version_vector() const { return vv_; }
  const ReplStats& stats() const { return stats_; }
  WriterId writer() const { return cfg_.writer; }
  bool writable() const { return cfg_.writable; }
  uint64_t last_emitted_lsn() const { return last_emitted_; }

 private:
  ReplNode(engine::Database* db, engine::TablespaceId ts,
           std::vector<engine::TableId> tables, ReplConfig cfg)
      : db_(db), ts_(ts), tables_(std::move(tables)), cfg_(cfg) {}

  static constexpr uint64_t kNoRid = ~0ull;

  /// Per-logical-key applier state. `local_rid == kNoRid` is a tombstone.
  struct Entry {
    uint64_t local_rid = kNoRid;
    uint64_t version = 0;
    WriterId vwriter = 0;
    uint64_t map_rid = kNoRid;  ///< Rid of the persisted map row.
  };
  using Staged = std::map<LogicalKey, Entry>;

  Status Bootstrap();  ///< Create meta/map tables + initial meta row.
  void OnCommit(const engine::Database::CommitEvent& ev);
  void OnAbort(engine::TxnId txn, engine::Lsn abort_lsn);

  LogicalKey KeyOfLocal(uint64_t local_rid) const;
  const Entry* Find(const Staged& staged, const LogicalKey& key) const;
  /// True iff `op` loses the (version, writer) LWW race against `e`.
  static bool LwwSkips(const Entry& e, const ChangeOp& op);

  /// Apply one op inside `txn`, staging the entry change. Engine errors
  /// propagate (the caller aborts the transaction).
  Status ApplyOp(engine::TxnId txn, const ChangeOp& op, Staged* staged);
  /// Write-through of one staged entry's map row inside `txn`.
  Status PersistMapRow(engine::TxnId txn, const LogicalKey& key, Entry* e);
  /// Rewrite the meta row (version vector) inside `txn`.
  Status PersistMeta(engine::TxnId txn, const VersionVector& vv);
  /// Commit the apply transaction; treats OutOfSpace as success (the commit
  /// record is durable before maintenance runs). On success merges `staged`
  /// and adopts `vv`.
  Status CommitApply(engine::TxnId txn, Staged&& staged, VersionVector&& vv);
  /// Best-effort rollback of a failed apply transaction.
  Status AbortApply(engine::TxnId txn, const Status& cause);
  void MergeStaged(Staged&& staged);

  std::vector<uint8_t> EncodeMetaRow(const VersionVector& vv) const;

  engine::Database* db_;
  engine::TablespaceId ts_;
  std::vector<engine::TableId> tables_;
  ReplConfig cfg_;
  uint32_t ipa_budget_ = 0;  ///< Max patch bytes shipped as kDelta.

  engine::TableId meta_table_ = 0;
  engine::TableId map_table_ = 0;
  uint64_t meta_rid_ = kNoRid;

  VersionVector vv_;
  std::map<LogicalKey, Entry> entries_;
  std::unordered_map<uint64_t, LogicalKey> local_to_key_;  ///< Non-identity only.

  std::vector<std::vector<uint8_t>> outbound_;
  uint64_t last_emitted_ = 0;          ///< kUnknownLsn after a restart.
  uint64_t version_floor_ = 0;         ///< Promote(): Lamport bump for versions.
  bool suppress_capture_ = false;      ///< Set during apply/internal txns.

  ReplStats stats_;
};

}  // namespace ipa::repl
