#include "repl/changeset.h"

#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"
#include "storage/delta_codec.h"

namespace ipa::repl {

namespace {

constexpr uint32_t kMagic = 0x46525049;  // "IPRF" little-endian
constexpr size_t kHeaderBytes = 12;      // magic + payload_len + crc

/// Op-kind flag bit: the op's bytes field is LZ-compressed on the wire as
/// [u32 raw_len][LZ data] (storage::LzCompress — the same deterministic pass
/// the delta+compress page codec uses). Senders set it per op, and only when
/// compression actually shrinks the bytes; receivers always accept both
/// forms, so compressing and plain peers interoperate.
constexpr uint8_t kOpCompressed = 0x80;

void Put8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }
void Put16(std::vector<uint8_t>& out, uint16_t v) {
  size_t at = out.size();
  out.resize(at + 2);
  EncodeU16(out.data() + at, v);
}
void Put32(std::vector<uint8_t>& out, uint32_t v) {
  size_t at = out.size();
  out.resize(at + 4);
  EncodeU32(out.data() + at, v);
}
void Put64(std::vector<uint8_t>& out, uint64_t v) {
  size_t at = out.size();
  out.resize(at + 8);
  EncodeU64(out.data() + at, v);
}

/// Bounds-checked reader over the frame payload.
struct Cursor {
  const uint8_t* p;
  size_t left;
  bool ok = true;

  bool Take(size_t n, const uint8_t** at) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    *at = p;
    p += n;
    left -= n;
    return true;
  }
  uint8_t U8() {
    const uint8_t* at;
    return Take(1, &at) ? at[0] : 0;
  }
  uint16_t U16() {
    const uint8_t* at;
    return Take(2, &at) ? DecodeU16(at) : 0;
  }
  uint32_t U32() {
    const uint8_t* at;
    return Take(4, &at) ? DecodeU32(at) : 0;
  }
  uint64_t U64() {
    const uint8_t* at;
    return Take(8, &at) ? DecodeU64(at) : 0;
  }
};

}  // namespace

std::vector<uint8_t> EncodeFrame(const Frame& f, bool compress_wire) {
  std::vector<uint8_t> payload;
  Put8(payload, static_cast<uint8_t>(f.kind));
  Put32(payload, f.writer);
  Put64(payload, f.lsn);
  Put64(payload, f.prev_lsn);
  Put32(payload, static_cast<uint32_t>(f.vv.applied.size()));
  for (const auto& [w, lsn] : f.vv.applied) {
    Put32(payload, w);
    Put64(payload, lsn);
  }
  Put32(payload, static_cast<uint32_t>(f.ops.size()));
  for (const ChangeOp& op : f.ops) {
    std::vector<uint8_t> lz;
    bool compressed = false;
    if (compress_wire && op.bytes.size() > 8) {
      lz = storage::LzCompress(op.bytes.data(), op.bytes.size());
      compressed = lz.size() + 4 < op.bytes.size();
    }
    Put8(payload, static_cast<uint8_t>(op.kind) |
                      (compressed ? kOpCompressed : 0));
    Put32(payload, op.origin);
    Put64(payload, op.rid);
    Put32(payload, op.table);
    Put16(payload, op.offset);
    Put64(payload, op.version);
    Put32(payload, op.vwriter);
    if (compressed) {
      Put32(payload, static_cast<uint32_t>(lz.size() + 4));
      Put32(payload, static_cast<uint32_t>(op.bytes.size()));
      payload.insert(payload.end(), lz.begin(), lz.end());
    } else {
      Put32(payload, static_cast<uint32_t>(op.bytes.size()));
      payload.insert(payload.end(), op.bytes.begin(), op.bytes.end());
    }
  }

  std::vector<uint8_t> wire(kHeaderBytes);
  EncodeU32(wire.data(), kMagic);
  EncodeU32(wire.data() + 4, static_cast<uint32_t>(payload.size()));
  EncodeU32(wire.data() + 8, Crc32c(payload.data(), payload.size()));
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

Result<Frame> DecodeFrame(std::span<const uint8_t> wire) {
  if (wire.size() < kHeaderBytes) {
    return Status::Corruption("repl frame shorter than its header");
  }
  if (DecodeU32(wire.data()) != kMagic) {
    return Status::Corruption("repl frame magic mismatch");
  }
  uint32_t len = DecodeU32(wire.data() + 4);
  if (wire.size() != kHeaderBytes + len) {
    return Status::Corruption("repl frame length mismatch (torn shipment)");
  }
  uint32_t want_crc = DecodeU32(wire.data() + 8);
  const uint8_t* payload = wire.data() + kHeaderBytes;
  if (Crc32c(payload, len) != want_crc) {
    return Status::Corruption("repl frame CRC mismatch (torn shipment)");
  }

  Cursor c{payload, len};
  Frame f;
  uint8_t kind = c.U8();
  if (kind < static_cast<uint8_t>(FrameKind::kChangeset) ||
      kind > static_cast<uint8_t>(FrameKind::kSnapshotEnd)) {
    return Status::Corruption("repl frame kind out of range");
  }
  f.kind = static_cast<FrameKind>(kind);
  f.writer = c.U32();
  f.lsn = c.U64();
  f.prev_lsn = c.U64();
  uint32_t vv_count = c.U32();
  if (!c.ok || vv_count > c.left) {
    return Status::Corruption("repl frame version-vector overruns payload");
  }
  for (uint32_t i = 0; i < vv_count; i++) {
    WriterId w = c.U32();
    uint64_t lsn = c.U64();
    if (c.ok) f.vv.applied[w] = lsn;
  }
  uint32_t op_count = c.U32();
  if (!c.ok || op_count > c.left) {
    return Status::Corruption("repl frame op list overruns payload");
  }
  f.ops.reserve(op_count);
  for (uint32_t i = 0; i < op_count; i++) {
    ChangeOp op;
    uint8_t op_kind = c.U8();
    bool compressed = (op_kind & kOpCompressed) != 0;
    op_kind &= static_cast<uint8_t>(~kOpCompressed);
    if (op_kind < static_cast<uint8_t>(ChangeKind::kDelta) ||
        op_kind > static_cast<uint8_t>(ChangeKind::kDelete)) {
      return Status::Corruption("repl op kind out of range");
    }
    op.kind = static_cast<ChangeKind>(op_kind);
    op.origin = c.U32();
    op.rid = c.U64();
    op.table = c.U32();
    op.offset = c.U16();
    op.version = c.U64();
    op.vwriter = c.U32();
    uint32_t blen = c.U32();
    const uint8_t* at;
    if (!c.Take(blen, &at)) {
      return Status::Corruption("repl op bytes overrun payload");
    }
    if (compressed) {
      if (blen < 4) {
        return Status::Corruption("repl compressed op shorter than raw_len");
      }
      uint32_t raw_len = DecodeU32(at);
      op.bytes.reserve(raw_len);
      if (!storage::LzDecompress(at + 4, blen - 4, raw_len, op.bytes) ||
          op.bytes.size() != raw_len) {
        return Status::Corruption("repl compressed op fails to decompress");
      }
    } else {
      op.bytes.assign(at, at + blen);
    }
    f.ops.push_back(std::move(op));
  }
  if (!c.ok || c.left != 0) {
    return Status::Corruption("repl frame payload has trailing bytes");
  }
  return f;
}

}  // namespace ipa::repl
