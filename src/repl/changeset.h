// Replication changeset wire format (docs/REPLICATION.md).
//
// A primary exports its committed transactions as a stream of CRC-framed
// *changesets*: WAL-ordered logical ops versioned by the primary's commit
// LSN. Byte-range updates that fit the page's IPA budget travel as
// delta-style (offset, bytes) patches — the same page differentials the
// paper appends in place — while inserts, whole-tuple replacements and
// budget-exceeding updates fold back to full tuple images, mirroring the
// engine's own delta-vs-out-of-place flush decision. Abort records ship as
// empty boundary frames so the per-writer LSN chain stays contiguous across
// rolled-back transactions.
//
// Versioning follows the cr-sqlite changeset/version-vector model: every op
// carries a (version, writer) pair — the originating writer's commit LSN —
// and an applier keeps a version vector of the highest LSN applied per
// writer. Frames are self-delimiting and CRC32C-protected; a torn shipment
// decodes to Corruption and must be rejected without any state change.

#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/status.h"

namespace ipa::repl {

/// Globally unique id of a writing node (a primary, or a promoted replica).
using WriterId = uint32_t;

/// "No LSN known": a shipper that lost its volatile stream state (restart)
/// stamps this as prev_lsn, forcing the receiver into catch-up.
constexpr uint64_t kUnknownLsn = ~0ull;

struct VersionVector {
  /// Highest origin-LSN applied, per writer. Absent writer = 0.
  std::map<WriterId, uint64_t> applied;

  uint64_t Of(WriterId w) const {
    auto it = applied.find(w);
    return it == applied.end() ? 0 : it->second;
  }
  void Advance(WriterId w, uint64_t lsn) {
    uint64_t& cur = applied[w];
    if (lsn > cur) cur = lsn;
  }
  void MergeMax(const VersionVector& o) {
    for (const auto& [w, lsn] : o.applied) Advance(w, lsn);
  }
  bool operator==(const VersionVector&) const = default;
};

enum class ChangeKind : uint8_t {
  kDelta = 1,   ///< Byte patch at `offset` (fit the IPA budget on the primary).
  kFull = 2,    ///< Full tuple image: insert-or-replace (foldback / snapshot).
  kDelete = 3,  ///< Tuple deletion (tombstone on the applier).
};

/// One logical change. Tuples are identified by their *origin* identity —
/// (origin writer, rid the tuple was created under on that writer) — which is
/// stable across nodes; appliers translate it to a local rid (repl/node.h).
struct ChangeOp {
  ChangeKind kind = ChangeKind::kFull;
  WriterId origin = 0;
  uint64_t rid = 0;       ///< engine::Rid::Pack() on the origin writer.
  uint32_t table = 0;     ///< Index into the replicated table set.
  uint16_t offset = 0;    ///< kDelta: byte offset within the tuple.
  uint64_t version = 0;   ///< LWW version: originating commit LSN.
  WriterId vwriter = 0;   ///< LWW tie-break: writer that produced `version`.
  std::vector<uint8_t> bytes;  ///< Patch bytes / tuple image (empty: delete).

  bool operator==(const ChangeOp&) const = default;
};

enum class FrameKind : uint8_t {
  kChangeset = 1,      ///< One committed transaction's ops.
  kAbortMark = 2,      ///< Abort boundary (no ops; advances the LSN chain).
  kSnapshotBegin = 3,  ///< Catch-up: start of a full-state ship at `lsn`.
                       ///< prev_lsn carries the snapshot's LWW version basis
                       ///< (shipper's version_floor + snap LSN).
  kSnapshotItem = 4,   ///< Catch-up: one tuple (single kFull/kDelete op).
  kSnapshotEnd = 5,    ///< Catch-up: end marker, carries the shipper's vv.
};

struct Frame {
  FrameKind kind = FrameKind::kChangeset;
  WriterId writer = 0;     ///< Shipping node.
  uint64_t lsn = 0;        ///< Commit/abort LSN; snapshot LSN for snapshots.
  uint64_t prev_lsn = 0;   ///< LSN of the previous frame this writer shipped
                           ///< (kUnknownLsn after a shipper restart).
  VersionVector vv;        ///< kSnapshotEnd: shipper's version vector.
  std::vector<ChangeOp> ops;

  bool operator==(const Frame&) const = default;
};

/// Encode with the self-delimiting CRC frame header
/// [magic u32 | payload_len u32 | crc32c u32 | payload]. With
/// `compress_wire`, each op's bytes ship LZ-compressed (flag bit on the
/// op-kind byte, then [u32 raw_len][LZ data]) whenever that is smaller —
/// the same deterministic pass as the delta+compress page codec. Decoders
/// accept both forms regardless of the sender's setting.
std::vector<uint8_t> EncodeFrame(const Frame& f, bool compress_wire = false);

/// Decode and verify one frame. Returns Corruption for anything torn: short
/// buffer, bad magic, length mismatch, CRC mismatch, or a payload that does
/// not parse exactly (including compressed op bytes that fail to
/// decompress to their declared length).
Result<Frame> DecodeFrame(std::span<const uint8_t> wire);

}  // namespace ipa::repl
