#include "repl/node.h"

#include <algorithm>
#include <set>

#include "common/bytes.h"
#include "common/metrics.h"

namespace ipa::repl {

namespace {

/// Process-wide replication counters (common/metrics.h); per-instance
/// equivalents live in ReplStats.
struct ReplMetrics {
  metrics::Counter ship_frames{"repl.ship.frames"};
  metrics::Counter ship_bytes{"repl.ship.bytes"};
  metrics::Counter ship_delta_ops{"repl.ship.delta_ops"};
  metrics::Counter ship_full_ops{"repl.ship.full_ops"};
  metrics::Counter ship_foldbacks{"repl.ship.foldbacks"};
  metrics::Counter ship_abort_marks{"repl.ship.abort_marks"};
  metrics::Counter apply_frames{"repl.apply.frames"};
  metrics::Counter apply_ops{"repl.apply.ops"};
  metrics::Counter apply_duplicates{"repl.apply.duplicates"};
  metrics::Counter apply_rejected_torn{"repl.apply.rejected_torn"};
  metrics::Counter apply_gaps{"repl.apply.gaps"};
  metrics::Counter apply_lww_skips{"repl.apply.lww_skips"};
  metrics::Counter snapshots_built{"repl.snapshot.built"};
  metrics::Counter snapshots_applied{"repl.snapshot.applied"};
  metrics::Counter snapshot_items{"repl.snapshot.items"};
  metrics::Counter promotions{"repl.promotions"};
};

ReplMetrics& Rm() {
  static ReplMetrics m;
  return m;
}

constexpr uint32_t kMetaMagic = 0x4D4C5052;  // "RPLM"
constexpr uint32_t kMetaVvCap = 8;
constexpr size_t kMetaRowBytes = 16 + kMetaVvCap * 16;
constexpr size_t kMapRowBytes = 32;

/// RAII: suppress change capture while the node itself drives the engine
/// (apply transactions, meta bookkeeping) — applied frames must not be
/// re-shipped as if they were local writes.
class SuppressCapture {
 public:
  explicit SuppressCapture(bool* flag) : flag_(flag) { *flag_ = true; }
  ~SuppressCapture() { *flag_ = false; }

 private:
  bool* flag_;
};

}  // namespace

Result<std::unique_ptr<ReplNode>> ReplNode::Attach(
    engine::Database* db, engine::TablespaceId ts,
    std::vector<engine::TableId> tables, ReplConfig cfg) {
  std::unique_ptr<ReplNode> node(
      new ReplNode(db, ts, std::move(tables), cfg));
  IPA_RETURN_NOT_OK(node->Bootstrap());
  ReplNode* n = node.get();
  db->SetCommitHook(
      [n](const engine::Database::CommitEvent& ev) { n->OnCommit(ev); });
  db->SetAbortHook(
      [n](engine::TxnId txn, engine::Lsn lsn) { n->OnAbort(txn, lsn); });
  return node;
}

ReplNode::~ReplNode() {
  db_->SetCommitHook({});
  db_->SetAbortHook({});
}

Status ReplNode::Bootstrap() {
  storage::Scheme scheme = db_->scheme_of(ts_);
  ipa_budget_ = scheme.enabled()
                    ? static_cast<uint32_t>(scheme.n) * scheme.m
                    : 0;
  IPA_ASSIGN_OR_RETURN(meta_table_, db_->CreateTable("__repl_meta", ts_));
  IPA_ASSIGN_OR_RETURN(map_table_, db_->CreateTable("__repl_map", ts_));

  SuppressCapture guard(&suppress_capture_);
  engine::TxnId txn = db_->Begin();
  auto rid = db_->Insert(txn, meta_table_, EncodeMetaRow(vv_));
  if (!rid.ok()) return AbortApply(txn, rid.status());
  meta_rid_ = rid.value().Pack();
  Status s = db_->Commit(txn);
  if (s.IsOutOfSpace()) s = Status::OK();  // commit record already durable
  return s;
}

std::vector<uint8_t> ReplNode::PopOutbound() {
  if (outbound_.empty()) return {};
  std::vector<uint8_t> f = std::move(outbound_.front());
  outbound_.erase(outbound_.begin());
  return f;
}

// ---------------------------------------------------------------------------
// Shipper: change capture
// ---------------------------------------------------------------------------

ReplNode::LogicalKey ReplNode::KeyOfLocal(uint64_t local_rid) const {
  auto it = local_to_key_.find(local_rid);
  if (it != local_to_key_.end()) return it->second;
  return {cfg_.writer, local_rid};
}

void ReplNode::OnCommit(const engine::Database::CommitEvent& ev) {
  if (!cfg_.writable || suppress_capture_) return;
  Frame f;
  f.kind = FrameKind::kChangeset;
  f.writer = cfg_.writer;
  f.lsn = ev.commit_lsn;
  f.prev_lsn = last_emitted_;
  uint64_t version = version_floor_ + ev.commit_lsn;

  for (const engine::LogRecord& rec : ev.records) {
    auto table = db_->TableOfPage(rec.page);
    if (!table.ok()) continue;  // page no table owns (dropped mid-run)
    size_t idx = tables_.size();
    for (size_t t = 0; t < tables_.size(); t++) {
      if (tables_[t] == table.value()) idx = t;
    }
    if (idx == tables_.size()) continue;  // non-replicated table (meta/map)

    engine::Rid rid{rec.page, rec.slot};
    uint64_t local = rid.Pack();
    LogicalKey key = KeyOfLocal(local);
    ChangeOp op;
    op.origin = key.first;
    op.rid = key.second;
    op.table = static_cast<uint32_t>(idx);
    op.version = version;
    op.vwriter = cfg_.writer;

    switch (rec.type) {
      case engine::LogType::kInsert:
      case engine::LogType::kResize:
        op.kind = ChangeKind::kFull;
        op.bytes = rec.after;
        stats_.full_ops++;
        Rm().ship_full_ops.Inc();
        break;
      case engine::LogType::kUpdate:
        if (!cfg_.full_images && rec.after.size() <= ipa_budget_) {
          // The mutation fit the page's [NxM] IPA budget on the primary, so
          // it ships in delta-record form: an (offset, bytes) patch.
          op.kind = ChangeKind::kDelta;
          op.offset = rec.offset;
          op.bytes = rec.after;
          stats_.delta_ops++;
          Rm().ship_delta_ops.Inc();
        } else {
          // Foldback: ship the full image, like the out-of-place page write
          // the engine falls back to when a diff exceeds the budget.
          auto img = db_->ReadTuple(rid);
          if (!img.ok()) continue;  // deleted later in the txn; kDelete governs
          op.kind = ChangeKind::kFull;
          op.bytes = std::move(img.value());
          stats_.full_ops++;
          Rm().ship_full_ops.Inc();
          if (!cfg_.full_images) {
            stats_.foldbacks++;
            Rm().ship_foldbacks.Inc();
          }
        }
        break;
      case engine::LogType::kDelete:
        op.kind = ChangeKind::kDelete;
        break;
      default:
        continue;
    }

    // Own bookkeeping (in-memory): per-key versions feed snapshots and the
    // multi-writer LWW merge. Not persisted for local writes — after a crash
    // these keys recover with version 0 (conservative: remote ops win).
    Entry e;
    if (auto it = entries_.find(key); it != entries_.end()) e = it->second;
    bool was_live = e.local_rid != kNoRid;
    switch (op.kind) {
      case ChangeKind::kDelete:
        if (was_live && local_to_key_.count(e.local_rid)) {
          local_to_key_.erase(e.local_rid);
        }
        e.local_rid = kNoRid;
        break;
      default:
        e.local_rid = local;
        break;
    }
    e.version = version;
    e.vwriter = cfg_.writer;
    entries_[key] = e;

    f.ops.push_back(std::move(op));
  }

  last_emitted_ = ev.commit_lsn;
  std::vector<uint8_t> wire = EncodeFrame(f, cfg_.compress_wire);
  stats_.frames_emitted++;
  stats_.bytes_emitted += wire.size();
  Rm().ship_frames.Inc();
  Rm().ship_bytes.Add(wire.size());
  outbound_.push_back(std::move(wire));
}

void ReplNode::OnAbort(engine::TxnId /*txn*/, engine::Lsn abort_lsn) {
  if (!cfg_.writable || suppress_capture_) return;
  Frame f;
  f.kind = FrameKind::kAbortMark;
  f.writer = cfg_.writer;
  f.lsn = abort_lsn;
  f.prev_lsn = last_emitted_;
  last_emitted_ = abort_lsn;
  std::vector<uint8_t> wire = EncodeFrame(f, cfg_.compress_wire);
  stats_.frames_emitted++;
  stats_.abort_marks++;
  stats_.bytes_emitted += wire.size();
  Rm().ship_frames.Inc();
  Rm().ship_abort_marks.Inc();
  Rm().ship_bytes.Add(wire.size());
  outbound_.push_back(std::move(wire));
}

Result<std::vector<std::vector<uint8_t>>> ReplNode::BuildSnapshot() {
  if (db_->active_txns() != 0) {
    return Status::Busy("snapshot requires a quiescent engine");
  }
  uint64_t snap = db_->wal().end_lsn();
  // The snapshot's LWW version. Every op this writer ever emitted carried
  // version_floor_ + commit_lsn with commit_lsn < end_lsn (LSNs are monotone,
  // even across crashes), so snap_version strictly dominates them all — a
  // replica holding any older state accepts every item — while tail frames
  // committed after the snapshot still dominate the items.
  uint64_t snap_version = version_floor_ + snap;
  std::vector<std::vector<uint8_t>> out;

  Frame begin;
  begin.kind = FrameKind::kSnapshotBegin;
  begin.writer = cfg_.writer;
  begin.lsn = snap;
  begin.prev_lsn = snap_version;  // version basis for the applier
  out.push_back(EncodeFrame(begin));

  for (size_t ti = 0; ti < tables_.size(); ti++) {
    IPA_RETURN_NOT_OK(db_->Scan(
        tables_[ti],
        [&](engine::Rid rid, std::span<const uint8_t> bytes) {
          LogicalKey key = KeyOfLocal(rid.Pack());
          const Entry* e = nullptr;
          if (auto it = entries_.find(key); it != entries_.end()) {
            e = &it->second;
          }
          Frame item;
          item.kind = FrameKind::kSnapshotItem;
          item.writer = cfg_.writer;
          item.lsn = snap;
          item.prev_lsn = kUnknownLsn;
          ChangeOp op;
          op.kind = ChangeKind::kFull;
          op.origin = key.first;
          op.rid = key.second;
          op.table = static_cast<uint32_t>(ti);
          if (e != nullptr && e->vwriter != cfg_.writer) {
            // Foreign-origin tuple: preserve the (version, writer) pair the
            // tuple arrived with, so cross-writer LWW stays order-free.
            op.version = e->version;
            op.vwriter = e->vwriter;
          } else {
            // Own tuple: stamp the snapshot version. The in-memory per-key
            // version may have been lost in a crash (it recovers as 0), but
            // snap_version dominates anything this writer emitted before.
            op.version = snap_version;
            op.vwriter = cfg_.writer;
          }
          op.bytes.assign(bytes.begin(), bytes.end());
          item.ops.push_back(std::move(op));
          out.push_back(EncodeFrame(item, cfg_.compress_wire));
          stats_.snapshot_items++;
          Rm().snapshot_items.Inc();
          return true;
        }));
  }

  Frame end;
  end.kind = FrameKind::kSnapshotEnd;
  end.writer = cfg_.writer;
  end.lsn = snap;
  end.prev_lsn = snap_version;
  end.vv = vv_;
  end.vv.Advance(cfg_.writer, snap);
  out.push_back(EncodeFrame(end));
  stats_.snapshots_built++;
  Rm().snapshots_built.Inc();
  return out;
}

// ---------------------------------------------------------------------------
// Applier
// ---------------------------------------------------------------------------

bool ReplNode::LwwSkips(const Entry& e, const ChangeOp& op) {
  // Strictly-newer local state wins; equal (version, writer) pairs apply in
  // arrival order (that is how multiple ops of one transaction on the same
  // key stay sequential).
  return e.version > op.version ||
         (e.version == op.version && e.vwriter > op.vwriter);
}

const ReplNode::Entry* ReplNode::Find(const Staged& staged,
                                      const LogicalKey& key) const {
  if (auto it = staged.find(key); it != staged.end()) return &it->second;
  if (auto it = entries_.find(key); it != entries_.end()) return &it->second;
  return nullptr;
}

Status ReplNode::ApplyOp(engine::TxnId txn, const ChangeOp& op,
                         Staged* staged) {
  if (op.table >= tables_.size()) {
    return Status::Corruption("repl op references unknown table index");
  }
  LogicalKey key{op.origin, op.rid};
  const Entry* cur = Find(*staged, key);
  if (cur != nullptr && LwwSkips(*cur, op)) {
    stats_.lww_skips++;
    Rm().apply_lww_skips.Inc();
    return Status::OK();
  }

  Entry next = cur != nullptr ? *cur : Entry{};
  switch (op.kind) {
    case ChangeKind::kDelta: {
      if (cur == nullptr || cur->local_rid == kNoRid) {
        stats_.missing_skips++;
        return Status::OK();
      }
      IPA_RETURN_NOT_OK(db_->Update(txn, engine::Rid::Unpack(cur->local_rid),
                                    op.offset, op.bytes));
      break;
    }
    case ChangeKind::kFull: {
      if (cur != nullptr && cur->local_rid != kNoRid) {
        engine::Rid local = engine::Rid::Unpack(cur->local_rid);
        Status s = db_->UpdateResize(txn, local, op.bytes);
        if (s.IsOutOfSpace()) {
          // The grown image no longer fits its page: relocate.
          auto moved = db_->Move(txn, local, op.bytes);
          if (!moved.ok()) return moved.status();
          next.local_rid = moved.value().Pack();
        } else {
          IPA_RETURN_NOT_OK(s);
        }
      } else {
        auto rid = db_->Insert(txn, tables_[op.table], op.bytes);
        if (!rid.ok()) return rid.status();
        next.local_rid = rid.value().Pack();
      }
      break;
    }
    case ChangeKind::kDelete: {
      if (cur != nullptr && cur->local_rid != kNoRid) {
        IPA_RETURN_NOT_OK(
            db_->Delete(txn, engine::Rid::Unpack(cur->local_rid)));
      }
      next.local_rid = kNoRid;
      break;
    }
  }
  next.version = op.version;
  next.vwriter = op.vwriter;
  (*staged)[key] = next;
  IPA_RETURN_NOT_OK(PersistMapRow(txn, key, &(*staged)[key]));
  stats_.ops_applied++;
  Rm().apply_ops.Inc();
  return Status::OK();
}

Status ReplNode::PersistMapRow(engine::TxnId txn, const LogicalKey& key,
                               Entry* e) {
  uint8_t row[kMapRowBytes];
  EncodeU32(row, key.first);
  EncodeU32(row + 4, e->vwriter);
  EncodeU64(row + 8, key.second);
  EncodeU64(row + 16, e->local_rid);
  EncodeU64(row + 24, e->version);
  if (e->map_rid == kNoRid) {
    auto rid = db_->Insert(txn, map_table_, row);
    if (!rid.ok()) return rid.status();
    e->map_rid = rid.value().Pack();
    return Status::OK();
  }
  return db_->Update(txn, engine::Rid::Unpack(e->map_rid), 0, row);
}

std::vector<uint8_t> ReplNode::EncodeMetaRow(const VersionVector& vv) const {
  std::vector<uint8_t> row(kMetaRowBytes, 0);
  EncodeU32(row.data(), kMetaMagic);
  EncodeU32(row.data() + 4, cfg_.writer);
  EncodeU32(row.data() + 8,
            static_cast<uint32_t>(std::min<size_t>(vv.applied.size(),
                                                   kMetaVvCap)));
  size_t i = 0;
  for (const auto& [w, lsn] : vv.applied) {
    if (i >= kMetaVvCap) break;
    EncodeU32(row.data() + 16 + i * 16, w);
    EncodeU64(row.data() + 16 + i * 16 + 8, lsn);
    i++;
  }
  return row;
}

Status ReplNode::PersistMeta(engine::TxnId txn, const VersionVector& vv) {
  if (meta_rid_ == kNoRid) {
    return Status::Internal("repl meta row was never bootstrapped");
  }
  if (vv.applied.size() > kMetaVvCap) {
    return Status::OutOfSpace("version vector exceeds the meta row capacity");
  }
  return db_->Update(txn, engine::Rid::Unpack(meta_rid_), 0,
                     EncodeMetaRow(vv));
}

void ReplNode::MergeStaged(Staged&& staged) {
  for (auto& [key, e] : staged) {
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.local_rid != kNoRid &&
        it->second.local_rid != e.local_rid) {
      local_to_key_.erase(it->second.local_rid);
    }
    if (e.local_rid != kNoRid) local_to_key_[e.local_rid] = key;
    entries_[key] = e;
  }
}

Status ReplNode::CommitApply(engine::TxnId txn, Staged&& staged,
                             VersionVector&& vv) {
  Status s = db_->Commit(txn);
  // The commit record is forced before Commit runs any maintenance, so the
  // transaction is durable whatever Commit returns afterwards — adopt the
  // staged state unconditionally. (After an Unavailable the caller runs the
  // crash protocol and RecoverReplState rebuilds the same state durably.)
  MergeStaged(std::move(staged));
  vv_ = std::move(vv);
  if (s.IsOutOfSpace()) return Status::OK();
  return s;
}

Status ReplNode::AbortApply(engine::TxnId txn, const Status& cause) {
  Status s;
  for (int i = 0; i < 4; i++) {
    s = db_->Abort(txn);
    if (!s.IsOutOfSpace()) break;  // CLR-protected: rollback restartable
  }
  if (!s.ok()) return s;  // Unavailable: the crash protocol takes over
  return cause;
}

Result<ReplNode::Apply> ReplNode::ApplyFrame(std::span<const uint8_t> wire) {
  auto decoded = DecodeFrame(wire);
  if (!decoded.ok()) {
    stats_.torn_rejected++;
    Rm().apply_rejected_torn.Inc();
    return Apply::kRejectedTorn;
  }
  Frame f = std::move(decoded.value());
  if (f.kind != FrameKind::kChangeset && f.kind != FrameKind::kAbortMark) {
    return Status::InvalidArgument(
        "snapshot frames must go through ApplySnapshot");
  }
  if (f.writer == cfg_.writer) return Apply::kEcho;
  uint64_t have = vv_.Of(f.writer);
  if (f.lsn <= have) {
    stats_.duplicates++;
    Rm().apply_duplicates.Inc();
    return Apply::kDuplicate;
  }
  if (f.prev_lsn == kUnknownLsn || f.prev_lsn > have) {
    // Either the shipper restarted (unknown chain) or frames are missing in
    // between: refuse and let the caller run catch-up. prev_lsn < have is
    // fine — it means the predecessor frame is already covered (e.g. by a
    // snapshot whose LSN lands between two frames of the tail).
    stats_.gap_rejected++;
    Rm().apply_gaps.Inc();
    return Apply::kNeedCatchup;
  }

  SuppressCapture guard(&suppress_capture_);
  engine::TxnId txn = db_->Begin();
  Staged staged;
  Status s = Status::OK();
  for (const ChangeOp& op : f.ops) {
    s = ApplyOp(txn, op, &staged);
    if (!s.ok()) break;
  }
  VersionVector vv = vv_;
  vv.Advance(f.writer, f.lsn);
  if (s.ok()) s = PersistMeta(txn, vv);
  if (!s.ok()) {
    IPA_RETURN_NOT_OK(AbortApply(txn, s));
    return s;  // unreachable: AbortApply returns `cause`; kept for clarity
  }
  IPA_RETURN_NOT_OK(CommitApply(txn, std::move(staged), std::move(vv)));
  stats_.frames_applied++;
  Rm().apply_frames.Inc();
  return Apply::kApplied;
}

Status ReplNode::ApplySnapshot(
    const std::vector<std::vector<uint8_t>>& frames) {
  if (cfg_.writable) {
    return Status::InvalidArgument("a writable node does not catch up");
  }
  // Decode everything first: a torn snapshot must change nothing.
  std::vector<Frame> fs;
  fs.reserve(frames.size());
  for (const auto& wire : frames) {
    auto d = DecodeFrame(wire);
    if (!d.ok()) {
      stats_.torn_rejected++;
      Rm().apply_rejected_torn.Inc();
      return d.status();
    }
    fs.push_back(std::move(d.value()));
  }
  if (fs.size() < 2 || fs.front().kind != FrameKind::kSnapshotBegin ||
      fs.back().kind != FrameKind::kSnapshotEnd) {
    return Status::Corruption("snapshot stream lacks begin/end framing");
  }
  const Frame& begin = fs.front();
  const Frame& end = fs.back();
  if (begin.writer != end.writer || begin.lsn != end.lsn) {
    return Status::Corruption("snapshot begin/end frames disagree");
  }
  if (begin.writer == cfg_.writer) {
    return Status::InvalidArgument("snapshot from self");
  }
  uint64_t snap = begin.lsn;
  // LWW version the shipper stamped on its items (version_floor + snap LSN);
  // carried in begin.prev_lsn. Local entries at or above it were produced by
  // something newer than this snapshot.
  uint64_t snap_version = begin.prev_lsn;
  if (snap <= vv_.Of(begin.writer)) {
    stats_.duplicates++;
    Rm().apply_duplicates.Inc();
    return Status::OK();  // already caught up past this snapshot
  }

  SuppressCapture guard(&suppress_capture_);
  engine::TxnId txn = db_->Begin();
  Staged staged;
  std::set<LogicalKey> seen;
  Status s = Status::OK();
  for (size_t i = 1; i + 1 < fs.size() && s.ok(); i++) {
    if (fs[i].kind != FrameKind::kSnapshotItem || fs[i].ops.size() != 1) {
      s = Status::Corruption("snapshot stream has a non-item frame inside");
      break;
    }
    const ChangeOp& op = fs[i].ops[0];
    seen.insert({op.origin, op.rid});
    s = ApplyOp(txn, op, &staged);
  }

  if (s.ok()) {
    // Delete-unseen: tuples the snapshot no longer contains were deleted on
    // the shipper before `snap`; drop them unless something newer than the
    // snapshot (a tail frame already applied) produced the local state.
    for (const auto& [key, e] : entries_) {
      const Entry* cur = Find(staged, key);
      if (cur->local_rid == kNoRid) continue;
      if (cur->version >= snap_version) continue;
      if (seen.count(key)) continue;
      s = db_->Delete(txn, engine::Rid::Unpack(cur->local_rid));
      if (!s.ok()) break;
      Entry ne = *cur;
      ne.local_rid = kNoRid;
      ne.version = snap_version;
      ne.vwriter = begin.writer;
      staged[key] = ne;
      s = PersistMapRow(txn, key, &staged[key]);
      if (!s.ok()) break;
    }
  }

  VersionVector vv = vv_;
  vv.MergeMax(end.vv);
  vv.Advance(begin.writer, snap);
  if (s.ok()) s = PersistMeta(txn, vv);
  if (!s.ok()) return AbortApply(txn, s);
  IPA_RETURN_NOT_OK(CommitApply(txn, std::move(staged), std::move(vv)));
  stats_.snapshots_applied++;
  Rm().snapshots_applied.Inc();
  return Status::OK();
}

Status ReplNode::Promote(const std::vector<std::vector<uint8_t>>& pending) {
  for (const auto& wire : pending) {
    auto r = ApplyFrame(wire);
    if (!r.ok()) return r.status();
    if (r.value() == Apply::kNeedCatchup) {
      // A gap in the queue: the missing transactions died with the primary
      // (committed-but-unshipped is lost by contract). Everything after the
      // gap is unanchored; drop it.
      break;
    }
  }
  cfg_.writable = true;
  // Version future commits above everything ever seen, so post-failover
  // writes beat stale pre-failover changes in the LWW merge even though this
  // node's WAL starts at lower LSNs than the old primary's.
  for (const auto& [key, e] : entries_) {
    version_floor_ = std::max(version_floor_, e.version);
  }
  stats_.promotions++;
  Rm().promotions.Inc();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Crash protocol / introspection
// ---------------------------------------------------------------------------

Status ReplNode::RecoverReplState() {
  outbound_.clear();
  last_emitted_ = kUnknownLsn;  // receivers will demand catch-up
  entries_.clear();
  local_to_key_.clear();
  vv_ = VersionVector{};
  meta_rid_ = kNoRid;

  IPA_RETURN_NOT_OK(db_->Scan(
      meta_table_, [&](engine::Rid rid, std::span<const uint8_t> b) {
        if (b.size() == kMetaRowBytes && DecodeU32(b.data()) == kMetaMagic) {
          meta_rid_ = rid.Pack();
          uint32_t count = DecodeU32(b.data() + 8);
          for (uint32_t i = 0; i < count && i < kMetaVvCap; i++) {
            WriterId w = DecodeU32(b.data() + 16 + i * 16);
            uint64_t lsn = DecodeU64(b.data() + 16 + i * 16 + 8);
            vv_.applied[w] = lsn;
          }
        }
        return true;
      }));
  if (meta_rid_ == kNoRid) {
    return Status::Corruption("repl meta row missing after recovery");
  }

  IPA_RETURN_NOT_OK(db_->Scan(
      map_table_, [&](engine::Rid rid, std::span<const uint8_t> b) {
        if (b.size() != kMapRowBytes) return true;
        LogicalKey key{DecodeU32(b.data()), DecodeU64(b.data() + 8)};
        Entry e;
        e.vwriter = DecodeU32(b.data() + 4);
        e.local_rid = DecodeU64(b.data() + 16);
        e.version = DecodeU64(b.data() + 24);
        e.map_rid = rid.Pack();
        if (e.local_rid != kNoRid) local_to_key_[e.local_rid] = key;
        entries_[key] = e;
        return true;
      }));

  // Tuples no map row claims are this node's own writes (identity keys).
  // Their LWW versions died with the process; recover them conservatively.
  for (engine::TableId t : tables_) {
    IPA_RETURN_NOT_OK(db_->Scan(
        t, [&](engine::Rid rid, std::span<const uint8_t>) {
          uint64_t local = rid.Pack();
          if (local_to_key_.count(local)) return true;
          LogicalKey key{cfg_.writer, local};
          if (!entries_.count(key)) {
            entries_[key] = Entry{local, 0, cfg_.writer, kNoRid};
          }
          return true;
        }));
  }
  return Status::OK();
}

Status ReplNode::ScanLogical(LogicalMap* out) const {
  for (engine::TableId t : tables_) {
    IPA_RETURN_NOT_OK(db_->Scan(
        t, [&](engine::Rid rid, std::span<const uint8_t> bytes) {
          (*out)[KeyOfLocal(rid.Pack())] =
              std::vector<uint8_t>(bytes.begin(), bytes.end());
          return true;
        }));
  }
  return Status::OK();
}

}  // namespace ipa::repl
