// B+tree index over the buffer pool.
//
// Fixed-size u64 keys map to u64 values (packed Rids). Index nodes are
// ordinary database pages, so they take the same IPA write path as heap
// pages when flushed — the paper notes that indexes dominated by small
// updates are natural IPA candidates.
//
// Index pages are not WAL-logged (their format records reformat them on
// restart); after a crash indexes are rebuilt from a heap scan, a common
// research-engine simplification. Deletion is lazy (no rebalancing).

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "engine/database.h"

namespace ipa::engine {

class Btree {
 public:
  /// Create a new (empty) index whose pages live in tablespace `ts`.
  /// A catalog table entry named `name` tracks its pages.
  static Result<Btree> Create(Database* db, const std::string& name,
                              TablespaceId ts);

  /// Insert or overwrite.
  Status Insert(uint64_t key, uint64_t value);

  Result<uint64_t> Lookup(uint64_t key);

  /// Remove a key; NotFound if absent.
  Status Remove(uint64_t key);

  /// In-order scan over keys in [lo, hi]; `fn` returns false to stop.
  Status Scan(uint64_t lo, uint64_t hi,
              const std::function<bool(uint64_t, uint64_t)>& fn);

  TableId table() const { return table_; }
  uint64_t height() const { return height_; }

 private:
  Btree(Database* db, TableId table) : db_(db), table_(table) {}

  struct SplitResult {
    bool split = false;
    uint64_t sep_key = 0;
    PageId right;
  };

  Result<PageId> NewNode(bool leaf);
  Status InsertRec(PageId node, uint64_t key, uint64_t value, SplitResult* out);

  Database* db_;
  TableId table_;
  PageId root_;
  uint64_t height_ = 1;
};

}  // namespace ipa::engine
