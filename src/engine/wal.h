// Write-ahead log (ARIES-style, Shore-MT flavored).
//
// The log is a byte-addressed append-only stream; an LSN is a byte offset.
// Records carry per-transaction backward chains (prev), physical
// before/after images for undo/redo, and CLRs for partial rollback. The log
// "device" is modeled in memory and is separate from the flash data device
// (as in the paper's testbed, where the log lives on its own volume and the
// evaluation concerns data-page I/O).
//
// Log-space reclamation: Shore-MT eagerly reclaims log space once 25-50% of
// the configured capacity is consumed, forcing checkpoints and dirty-page
// flushes (Section 8.4 discusses how this policy shapes host writes at large
// buffer sizes). The engine polls UsedFraction() and triggers checkpoints
// accordingly; TruncateTo() releases the prefix.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/types.h"
#include "ftl/page_device.h"

namespace ipa::engine {

enum class LogType : uint8_t {
  kBegin = 1,
  kCommit,
  kAbort,       ///< Rollback completed.
  kUpdate,      ///< Byte-range update within a tuple (before/after images).
  kInsert,      ///< Tuple insert (after image).
  kDelete,      ///< Tuple delete (before image).
  kResize,      ///< Whole-tuple replacement (before + after images).
  kFormat,      ///< Page formatted (aux64 = table id, low 32 bits).
  kClr,         ///< Compensation record (aux64 = undo-next LSN).
  kCheckpoint,  ///< Sharp checkpoint (all dirty pages flushed before emit).
};

struct LogRecord {
  LogType type = LogType::kBegin;
  TxnId txn = kInvalidTxn;
  Lsn prev = kInvalidLsn;  ///< Previous record of the same transaction.
  PageId page;             ///< Affected page (update/insert/delete/format).
  uint16_t slot = 0;
  uint16_t offset = 0;     ///< Byte offset within the tuple for kUpdate.
  uint64_t aux64 = 0;      ///< Type-specific (see LogType).
  std::vector<uint8_t> before;
  std::vector<uint8_t> after;
};

class Wal {
 public:
  explicit Wal(uint64_t capacity_bytes = 64ull << 20)
      : capacity_(capacity_bytes) {}

  /// Append a record; returns its LSN. The record is not durable until
  /// FlushTo()/FlushAll() covers it.
  Lsn Append(const LogRecord& rec);

  /// Ensure everything up to and including `lsn` is durable (WAL rule).
  void FlushTo(Lsn lsn);
  void FlushAll();
  Lsn durable_lsn() const { return durable_; }

  /// Mirror newly-durable log bytes onto a flash-backed PageDevice as
  /// ftl::StreamTag::kWal-tagged page writes (a ring of `capacity_pages`
  /// pages starting at `base_lba`). Off by default — the log normally lives
  /// on its own in-memory volume, exactly as before — and best-effort: a
  /// failed mirror write never fails the log force. This is how the WAL
  /// stream reaches a stream-aware FTL; pass nullptr to unbind.
  void BindLogDevice(ftl::PageDevice* device, ftl::Lba base_lba,
                     uint64_t capacity_pages);
  Lsn end_lsn() const { return end_lsn_; }
  Lsn base_lsn() const { return base_; }

  /// Read the record at `lsn` (must be a valid, untruncated LSN).
  Result<LogRecord> Read(Lsn lsn) const;

  /// LSN of the record following `lsn`, or end_lsn() if none.
  Result<Lsn> NextLsn(Lsn lsn) const;

  /// Drop the log prefix before `lsn` (checkpoint-driven reclamation).
  Status TruncateTo(Lsn lsn);

  uint64_t UsedBytes() const { return end_lsn_ - base_; }
  double UsedFraction() const {
    return static_cast<double>(UsedBytes()) / static_cast<double>(capacity_);
  }
  uint64_t capacity() const { return capacity_; }

  /// Crash simulation: discard all records beyond the durable LSN, as a real
  /// crash would. The surviving prefix is what restart recovery sees.
  ///
  /// Crash contract: the log device is modeled as write-atomic at record
  /// granularity, so the durable prefix survives a power loss intact. Data
  /// pages have no such guarantee — a loss mid-append leaves torn flash state
  /// that the NoFTL mount scan must discard before redo runs (see
  /// Database::RecoverAfterPowerLoss and docs/CRASH_TESTING.md).
  void DiscardUnflushed();

  /// Total bytes ever appended (for write-volume accounting).
  uint64_t TotalAppended() const { return end_lsn_; }

 private:
  /// Mirror pages covering [mirrored_, durable_) to the bound log device.
  void MirrorDurable();

  uint64_t capacity_;
  std::vector<uint8_t> buf_;   // holds [base_, end_lsn_)
  Lsn base_ = 0;
  Lsn end_lsn_ = 0;
  Lsn durable_ = 0;

  /// Optional flash mirror of the durable log (BindLogDevice).
  ftl::PageDevice* log_dev_ = nullptr;
  ftl::Lba log_base_lba_ = 0;
  uint64_t log_capacity_pages_ = 0;
  Lsn mirrored_ = 0;  ///< Durable bytes already mirrored to the device.
};

}  // namespace ipa::engine
