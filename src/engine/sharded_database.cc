#include "engine/sharded_database.h"

namespace ipa::engine {

ShardedDatabase::ShardedDatabase(std::vector<Partition> parts,
                                 flash::FlashArray* dev, Config cfg)
    : parts_(std::move(parts)), dev_(dev), cfg_(cfg) {
  if (cfg_.threaded) {
    workers_.reserve(parts_.size());
    for (size_t i = 0; i < parts_.size(); ++i) {
      workers_.push_back(std::make_unique<Worker>());
      Worker& w = *workers_.back();
      w.thread = std::thread([this, &w] { WorkerLoop(w); });
    }
  }
}

ShardedDatabase::~ShardedDatabase() {
  if (!cfg_.threaded) return;
  Barrier();
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lk(w->mu);
      w->stop = true;
    }
    w->cv.notify_one();
  }
  for (auto& w : workers_) w->thread.join();
}

uint32_t ShardedDatabase::PartitionOfKey(uint64_t key) const {
  // SplitMix64 finalizer: sequential application keys scatter uniformly, so
  // contiguous ranges (account ids, node ids) stripe across partitions.
  uint64_t h = key;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return static_cast<uint32_t>(h % parts_.size());
}

ShardedDatabase::Txn ShardedDatabase::Begin(uint32_t part) {
  // The fast path skips the lock manager; while any cross-partition
  // transaction is open, new transactions take locks so the two families
  // conflict-check against each other.
  bool use_locks = active_cross_ != 0;
  return Txn{part, parts_[part].db->Begin(use_locks)};
}

ShardedDatabase::CrossTxn ShardedDatabase::BeginCross() {
  active_cross_++;
  CrossTxn t;
  t.branch.assign(parts_.size(), kInvalidTxn);
  return t;
}

TxnId ShardedDatabase::Branch(CrossTxn& t, uint32_t part) {
  if (t.branch[part] == kInvalidTxn) {
    t.branch[part] = parts_[part].db->Begin(/*use_locks=*/true);
  }
  return t.branch[part];
}

Status ShardedDatabase::CommitCross(CrossTxn& t) {
  // Phase 1: append + force every branch's commit record. CommitRecord does
  // no flash I/O (the WAL force is modeled off-device), so no injected power
  // cut can land between branch commits — the cross transaction is all-or-
  // nothing with respect to crashes.
  for (uint32_t p = 0; p < parts_.size(); ++p) {
    if (t.branch[p] == kInvalidTxn) continue;
    IPA_RETURN_NOT_OK(parts_[p].db->CommitRecord(t.branch[p]));
  }
  // Phase 2: the deferred cleaner / log-reclaim maintenance, every touched
  // partition even if one fails — the transaction is already durable, and
  // maintenance errors must not leave the cross-transaction accounting (and
  // with it the fast path's lock bypass) pinned.
  Status first = Status::OK();
  for (uint32_t p = 0; p < parts_.size(); ++p) {
    if (t.branch[p] == kInvalidTxn) continue;
    t.branch[p] = kInvalidTxn;
    Status s = parts_[p].db->RunCommitMaintenance();
    if (first.ok() && !s.ok()) first = s;
  }
  t.done = true;
  active_cross_--;
  return first;
}

Status ShardedDatabase::AbortCross(CrossTxn& t) {
  // Per-branch rollback is CLR-protected and restartable: a branch whose
  // Abort fails (e.g. OutOfSpace from piggy-backed log reclaim) keeps its
  // TxnId, so a caller retry resumes exactly where rollback stopped.
  for (uint32_t p = 0; p < parts_.size(); ++p) {
    if (t.branch[p] == kInvalidTxn) continue;
    IPA_RETURN_NOT_OK(parts_[p].db->Abort(t.branch[p]));
    t.branch[p] = kInvalidTxn;
  }
  t.done = true;
  active_cross_--;
  return Status::OK();
}

void ShardedDatabase::Submit(uint32_t p, std::function<void()> fn) {
  if (!cfg_.threaded) {
    fn();
    return;
  }
  Worker& w = *workers_[p];
  inflight_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(w.mu);
    w.queue.push_back(std::move(fn));
  }
  w.cv.notify_one();
}

void ShardedDatabase::Barrier() {
  if (!cfg_.threaded) return;
  std::unique_lock<std::mutex> lk(done_mu_);
  done_cv_.wait(lk, [this] {
    return inflight_.load(std::memory_order_seq_cst) == 0;
  });
}

void ShardedDatabase::WorkerLoop(Worker& w) {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lk(w.mu);
      w.cv.wait(lk, [&w] { return w.stop || !w.queue.empty(); });
      if (w.queue.empty()) return;  // stop requested and drained
      fn = std::move(w.queue.front());
      w.queue.pop_front();
    }
    fn();
    // Decrement-then-notify under done_mu_ so Barrier's predicate check and
    // wakeup can't interleave badly (classic lost-wakeup guard).
    if (inflight_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
      std::lock_guard<std::mutex> lk(done_mu_);
      done_cv_.notify_all();
    }
  }
}

SimTime ShardedDatabase::EpochBarrier() {
  Barrier();
  // Close each partition's group-commit batch before the lane merge: the
  // forces advance partition clocks, which feed the epoch computation.
  for (auto& part : parts_) part.db->ForceLog();
  if (dev_ != nullptr) return dev_->DrainLanes();
  // No lanes: the epoch is the max partition clock; drag the others up so
  // every partition resumes from common time.
  SimTime epoch = 0;
  for (auto& part : parts_) {
    epoch = std::max(epoch, part.db->sim_clock().Now());
  }
  for (auto& part : parts_) part.db->sim_clock().AdvanceTo(epoch);
  return epoch;
}

Status ShardedDatabase::Checkpoint() {
  Barrier();
  for (auto& part : parts_) IPA_RETURN_NOT_OK(part.db->Checkpoint());
  return Status::OK();
}

void ShardedDatabase::SimulateCrash() {
  Barrier();
  // A crash kills every in-flight transaction, cross-partition ones
  // included; the lock-bypass accounting starts over with the restart.
  active_cross_ = 0;
  for (auto& part : parts_) part.db->SimulateCrash();
}

Status ShardedDatabase::Recover() {
  for (auto& part : parts_) IPA_RETURN_NOT_OK(part.db->Recover());
  return Status::OK();
}

Status ShardedDatabase::RecoverAfterPowerLoss() {
  for (auto& part : parts_) {
    IPA_RETURN_NOT_OK(part.db->RecoverAfterPowerLoss());
  }
  return Status::OK();
}

}  // namespace ipa::engine
