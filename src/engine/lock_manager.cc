#include "engine/lock_manager.h"

namespace ipa::engine {

Status LockManager::Acquire(TxnId txn, uint64_t key, LockMode mode) {
  acquires_++;
  Entry& e = locks_[key];
  if (mode == LockMode::kShared) {
    if (e.xholder != kInvalidTxn && e.xholder != txn) {
      return Status::Busy("X-locked by another transaction");
    }
    if (e.xholder == txn) return Status::OK();  // X covers S
    auto [it, inserted] = e.sharers.insert(txn);
    if (inserted) held_[txn].push_back(key);
    return Status::OK();
  }
  // Exclusive.
  if (e.xholder == txn) return Status::OK();
  if (e.xholder != kInvalidTxn) {
    return Status::Busy("X-locked by another transaction");
  }
  if (!e.sharers.empty() &&
      !(e.sharers.size() == 1 && e.sharers.count(txn) == 1)) {
    return Status::Busy("S-locked by other transactions");
  }
  bool had_s = e.sharers.erase(txn) > 0;
  e.xholder = txn;
  if (!had_s) held_[txn].push_back(key);
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (uint64_t key : it->second) {
    auto le = locks_.find(key);
    if (le == locks_.end()) continue;
    if (le->second.xholder == txn) le->second.xholder = kInvalidTxn;
    le->second.sharers.erase(txn);
    if (le->second.xholder == kInvalidTxn && le->second.sharers.empty()) {
      locks_.erase(le);
    }
  }
  held_.erase(it);
}

size_t LockManager::held_count(TxnId txn) const {
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

}  // namespace ipa::engine
