// Database: the engine facade tying together WAL, buffer pool, lock manager,
// heap storage and recovery over NoFTL regions — a compact ARIES-style
// storage engine reproducing the Shore-MT policies the paper's evaluation
// depends on (steal/no-force, eager page cleaning, eager log reclamation).
//
// DDL model (Figure 3): the caller creates NoFTL regions on the device,
// binds them to tablespaces (each with its page [NxM] scheme), and creates
// tables inside tablespaces. IPA thereby applies selectively per DB object.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "engine/buffer_pool.h"
#include "engine/lock_manager.h"
#include "engine/types.h"
#include "engine/wal.h"
#include "ftl/noftl.h"
#include "storage/page_format.h"
#include "storage/slotted_page.h"

namespace ipa::engine {

struct EngineConfig {
  uint32_t page_size = 4096;
  uint32_t buffer_pages = 1024;
  /// Dirty-page fraction that triggers the background cleaner
  /// (Shore-MT default 12.5%; the paper's "non-eager" runs use 75%).
  double dirty_flush_threshold = 0.125;
  /// Log-space fraction that triggers a checkpoint + truncation
  /// (Shore-MT reclaims at 25-50% consumption; "non-eager" runs use ~1.0).
  double log_reclaim_threshold = 0.375;
  uint64_t log_capacity_bytes = 16ull << 20;
  bool cleaner_async = true;
  /// Record per-table update-size distributions (Table 1 / Figures 7-10).
  bool record_update_sizes = false;
  /// Record the logical I/O event trace (fetch/update/evict) consumed by the
  /// IPL-vs-IPA comparison (Section 8.3).
  bool record_io_trace = false;
  /// Group commit (docs/SHARDING.md): defer the commit-time log force until
  /// this many commits are pending, or until the oldest pending commit is
  /// older than `group_commit_window_us` on the simulated clock. The
  /// defaults force every commit — today's behavior, bit for bit. Deferred
  /// commits are lost by a crash until the next force runs (real group
  /// commit semantics; ForceLog() closes the batch).
  uint32_t group_commit_ops = 1;
  uint64_t group_commit_window_us = 0;
  /// Simulated latency of one log force. The historical model forces for
  /// free (the log lives on its own fast volume); a non-zero value gives
  /// group commit something to amortize.
  uint64_t log_force_us = 0;
};

struct TxnStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  LatencyStats txn_latency;  ///< Simulated txn duration begin->commit.
};

class Database {
 public:
  /// `ftl` may be null when every tablespace is bound through
  /// CreateTablespaceOn (e.g. conventional-SSD deployments); `clock` then
  /// provides simulated time for transaction latencies (owned if null).
  Database(ftl::NoFtl* ftl, EngineConfig config, SimClock* clock = nullptr);

  // -- DDL --------------------------------------------------------------------

  /// Bind an existing NoFTL region to a new tablespace. Pages in this
  /// tablespace carry `scheme` (use a default Scheme{} for no IPA).
  Result<TablespaceId> CreateTablespace(const std::string& name,
                                        ftl::RegionId region,
                                        storage::Scheme scheme);

  /// Bind an arbitrary PageDevice (e.g. a conventional SSD with the
  /// write_delta extension) to a new tablespace.
  Result<TablespaceId> CreateTablespaceOn(const std::string& name,
                                          ftl::PageDevice* device,
                                          storage::Scheme scheme);

  Result<TableId> CreateTable(const std::string& name, TablespaceId ts);

  // -- Transactions -----------------------------------------------------------

  /// `use_locks = false` opens a transaction on the shared-nothing fast
  /// path: DML skips the lock manager entirely. Only safe when the caller
  /// guarantees partition-exclusive access (sharded_database.h); the default
  /// preserves two-phase locking.
  TxnId Begin(bool use_locks = true);
  Status Commit(TxnId txn);
  /// Roll back through the log (CLR-protected) and release locks.
  Status Abort(TxnId txn);

  /// Commit split for cross-partition transactions (sharded_database.h):
  /// CommitRecord appends + (group-)forces the commit record and releases
  /// locks; RunCommitMaintenance runs the cleaner / log-reclaim work that
  /// Commit() would piggyback. Commit(txn) == CommitRecord + maintenance.
  Status CommitRecord(TxnId txn);
  Status RunCommitMaintenance();

  /// Force the WAL through its last record, charging config.log_force_us
  /// once if anything was pending, and close the group-commit batch.
  void ForceLog();
  /// Commits whose log force is still deferred by group commit.
  uint32_t pending_commit_forces() const { return pending_commit_forces_; }

  // -- DML (all byte-span based; schemas live in src/workload) ----------------

  Result<Rid> Insert(TxnId txn, TableId table, std::span<const uint8_t> tuple);
  Result<std::vector<uint8_t>> Read(TxnId txn, Rid rid, bool for_update = false);
  /// Fixed-length in-place update of `bytes` at `offset` within the tuple —
  /// the IPA-friendly small update.
  Status Update(TxnId txn, Rid rid, uint32_t offset, std::span<const uint8_t> bytes);
  /// Whole-tuple replacement; may relocate within the page.
  Status UpdateResize(TxnId txn, Rid rid, std::span<const uint8_t> tuple);
  Status Delete(TxnId txn, Rid rid);
  /// Delete + reinsert (possibly on another page) when a grown tuple no
  /// longer fits its page. Returns the new Rid.
  Result<Rid> Move(TxnId txn, Rid rid, std::span<const uint8_t> tuple);

  /// Sequential scan; `fn` returns false to stop. Not transactional (used by
  /// loaders and index rebuilds).
  Status Scan(TableId table,
              const std::function<bool(Rid, std::span<const uint8_t>)>& fn);

  /// Drop a table: TRIM every page it owned (freeing the flash space) and
  /// detach it from the catalog. Irreversible; not transactional (like most
  /// systems, DDL here is not covered by transaction rollback).
  Status DropTable(TableId table);

  /// Allocate and format a fresh page for index structures (format record is
  /// redo-only; index content itself is not WAL-logged — see engine/btree.h).
  /// The page is remembered as index-class so its writebacks carry
  /// ftl::StreamTag::kIndex on stream-aware devices.
  Result<PageId> AllocateIndexPage(TableId table) {
    PageId id;
    IPA_RETURN_NOT_OK(AllocatePage(table, &id, kInvalidTxn));
    index_pages_.insert(id.raw);
    return id;
  }

  // -- Change capture (src/repl) ----------------------------------------------

  /// Everything one committed transaction logged, in forward LSN order
  /// (kInsert/kUpdate/kDelete/kResize records only — kBegin/kCommit and
  /// non-transactional records are omitted). Delivered to the commit hook
  /// once the commit record is durable, so a subscriber never sees a
  /// transaction a crash could still un-commit.
  struct CommitEvent {
    TxnId txn = kInvalidTxn;
    Lsn commit_lsn = kInvalidLsn;
    std::vector<LogRecord> records;
  };
  using CommitHook = std::function<void(const CommitEvent&)>;
  using AbortHook = std::function<void(TxnId, Lsn abort_lsn)>;

  /// Subscribe to durable commits (replication shipper). The hook runs
  /// synchronously once the commit record's log force completes — immediately
  /// under the default group_commit_ops=1, at the closing force otherwise.
  /// Pass nullptr to unsubscribe. With no hook set the commit path is
  /// bit-identical to the unhooked engine.
  void SetCommitHook(CommitHook hook) { commit_hook_ = std::move(hook); }
  /// Subscribe to workload aborts (abort boundaries in the change stream).
  /// Recovery rollbacks are not delivered.
  void SetAbortHook(AbortHook hook) { abort_hook_ = std::move(hook); }

  /// Non-transactional point read of one tuple (no locks, no maintenance
  /// piggy-backing — safe to call from a commit hook).
  Result<std::vector<uint8_t>> ReadTuple(Rid rid);

  /// Owning table of a page, or NotFound for pages no table owns (e.g.
  /// dropped tables). Linear in the catalog; meant for change capture, not
  /// hot paths.
  Result<TableId> TableOfPage(PageId id) const;

  storage::Scheme scheme_of(TablespaceId ts) const {
    return tablespaces_[ts].scheme;
  }

  // -- Maintenance / recovery --------------------------------------------------

  /// Sharp checkpoint: flush all dirty pages, emit a checkpoint record,
  /// truncate the log (bounded by the oldest active transaction).
  Status Checkpoint();

  /// Crash simulation: throw away buffer contents and unflushed log.
  void SimulateCrash();

  /// ARIES restart: analysis / redo / undo over the surviving log.
  Status Recover();

  /// Restart after a device power loss (the caller must PowerCycle() the
  /// flash array first): run the NoFTL mount-time torn-write scan on every
  /// NoFTL-backed tablespace's region — so a torn in-place append reads as
  /// never written — then the ARIES restart, which replays the lost tail
  /// from the WAL.
  Status RecoverAfterPowerLoss();

  // -- Introspection ------------------------------------------------------------

  BufferPool& buffer_pool() { return *pool_; }
  Wal& wal() { return wal_; }
  const LockManager& lock_manager() const { return locks_; }
  ftl::NoFtl& ftl() { return *ftl_; }
  const TxnStats& txn_stats() const { return txn_stats_; }
  void ResetTxnStats() { txn_stats_ = TxnStats{}; }
  const EngineConfig& config() const { return config_; }
  ftl::RegionId region_of(TablespaceId ts) const {
    return tablespaces_[ts].region;
  }
  uint64_t table_page_count(TableId t) const {
    return tables_[t].pages.size();
  }
  const std::string& table_name(TableId t) const { return tables_[t].name; }
  size_t table_count() const { return tables_.size(); }
  size_t tablespace_count() const { return tablespaces_.size(); }
  TablespaceId tablespace_of(TableId t) const { return tables_[t].ts; }
  bool table_dropped(TableId t) const { return tables_[t].dropped; }
  uint64_t checkpoints_taken() const { return checkpoints_; }

  /// Number of active (open) transactions.
  size_t active_txns() const { return txns_.size(); }

  /// The recorded I/O trace (empty unless config.record_io_trace).
  const std::vector<IoEvent>& io_trace() const { return io_trace_; }
  void ClearIoTrace() { io_trace_.clear(); }

  /// The simulated clock transaction latencies are measured against.
  SimClock& sim_clock() { return *clock_; }

 private:
  struct Tablespace {
    std::string name;
    ftl::PageDevice* device = nullptr;
    ftl::RegionId region = 0;  ///< Valid only for NoFTL-backed tablespaces.
    storage::Scheme scheme;
    uint64_t next_lba = 0;
    uint64_t capacity_pages = 0;
  };

  struct Table {
    std::string name;
    TablespaceId ts;
    std::vector<PageId> pages;
    /// Insertion hint: index of the page last observed to have room.
    size_t insert_hint = 0;
    bool dropped = false;
  };

  struct TxnState {
    Lsn first_lsn = kInvalidLsn;
    Lsn last_lsn = kInvalidLsn;
    bool use_locks = true;
  };

  Lsn Log(LogRecord rec, TxnId txn);
  /// Lock-table acquire, skipped for shared-nothing fast-path transactions.
  Status AcquireLock(TxnId txn, uint64_t key, LockMode mode);
  /// WAL-rule force up to `lsn` (buffer-pool flush callback), charging
  /// config.log_force_us when it actually has to advance the durable LSN.
  void ForceLogTo(Lsn lsn);
  void TraceUpdate(PageId page, uint32_t log_bytes);
  Status AllocatePage(TableId table, PageId* out, TxnId txn);
  /// Fix the page of `rid` and run `fn` on it; handles unfix + dirty marking.
  Status WithPage(PageId id,
                  const std::function<Status(storage::SlottedPage&, bool* dirtied,
                                             Lsn* rec_lsn)>& fn);
  Status MaybeReclaimLog();
  Status UndoRecord(TxnId txn, const LogRecord& rec, Lsn rec_lsn);
  Status RedoRecord(const LogRecord& rec, Lsn lsn);
  Status ApplyToPage(const LogRecord& rec, Lsn lsn, bool undo);

  ftl::NoFtl* ftl_;
  SimClock* clock_;
  std::unique_ptr<SimClock> owned_clock_;
  EngineConfig config_;
  Wal wal_;
  std::unique_ptr<BufferPool> pool_;
  LockManager locks_;
  std::vector<Tablespace> tablespaces_;
  std::vector<Table> tables_;
  /// PageId.raw of pages allocated for index structures (stream classifier).
  std::unordered_set<uint64_t> index_pages_;
  std::unordered_map<TxnId, TxnState> txns_;
  TxnId next_txn_ = 1;
  TxnStats txn_stats_;
  std::unordered_map<TxnId, SimTime> txn_begin_time_;
  uint64_t checkpoints_ = 0;
  bool in_recovery_ = false;
  std::vector<IoEvent> io_trace_;
  /// Group-commit batch state: commits whose force is deferred and the
  /// simulated time the oldest of them committed at.
  uint32_t pending_commit_forces_ = 0;
  SimTime oldest_pending_commit_ = 0;

  /// Change-capture subscribers (SetCommitHook/SetAbortHook). Commit events
  /// queue until their commit record is durable; SimulateCrash discards the
  /// queue (an undelivered event's transaction is still durable — a restarted
  /// subscriber recovers it via catch-up, not the hook).
  CommitHook commit_hook_;
  AbortHook abort_hook_;
  std::vector<CommitEvent> pending_commit_events_;
  bool delivering_events_ = false;
  void DeliverCommitEvents();
};

}  // namespace ipa::engine
