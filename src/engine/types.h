// Engine-wide identifier types.

#pragma once

#include <cstdint>
#include <functional>

namespace ipa::engine {

/// Log sequence number: byte offset into the (conceptually infinite) log.
using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = ~0ull;

using TxnId = uint64_t;
constexpr TxnId kInvalidTxn = 0;

using TableId = uint32_t;
using TablespaceId = uint16_t;

/// Global page id: tablespace in the top 16 bits, the page's LBA within the
/// tablespace's region in the low 48 bits.
struct PageId {
  uint64_t raw = ~0ull;

  PageId() = default;
  PageId(TablespaceId ts, uint64_t lba)
      : raw((static_cast<uint64_t>(ts) << 48) | (lba & 0xFFFFFFFFFFFFull)) {}

  TablespaceId tablespace() const { return static_cast<TablespaceId>(raw >> 48); }
  uint64_t lba() const { return raw & 0xFFFFFFFFFFFFull; }
  bool valid() const { return raw != ~0ull; }

  bool operator==(const PageId&) const = default;
};

/// Record id: page + slot.
struct Rid {
  PageId page;
  uint16_t slot = 0;

  bool valid() const { return page.valid(); }
  bool operator==(const Rid&) const = default;

  /// Pack into 64 bits for index values: ts(16) | slot(16) | lba(32).
  /// Requires the LBA to fit 32 bits (256 TB of 4KB pages per tablespace).
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page.tablespace()) << 48) |
           (static_cast<uint64_t>(slot) << 32) | (page.lba() & 0xFFFFFFFFull);
  }
  static Rid Unpack(uint64_t v) {
    Rid r;
    r.page = PageId(static_cast<TablespaceId>(v >> 48), v & 0xFFFFFFFFull);
    r.slot = static_cast<uint16_t>(v >> 32);
    return r;
  }
};

/// One event of the logical I/O trace: the input format for the IPL-vs-IPA
/// comparison (Section 8.3) and for offline trace analyses. Updates are
/// recorded at DML time (they feed IPL's in-memory log sectors); fetches and
/// evictions at the buffer-pool boundary.
struct IoEvent {
  enum class Type : uint8_t {
    kFetch,     ///< Page read from storage into the pool.
    kUpdate,    ///< One logical update; bytes = redo-log-entry payload.
    kEvictIpa,  ///< Dirty flush served as write_delta; bytes = delta length.
    kEvictOop,  ///< Dirty flush as out-of-place page write; bytes = page size.
  };
  Type type;
  uint64_t page;   ///< PageId::raw.
  uint32_t bytes;
};

}  // namespace ipa::engine

template <>
struct std::hash<ipa::engine::PageId> {
  size_t operator()(const ipa::engine::PageId& p) const noexcept {
    return std::hash<uint64_t>{}(p.raw);
  }
};
