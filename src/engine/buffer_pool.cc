#include "engine/buffer_pool.h"

#include <cstring>

#include "common/metrics.h"
#include "storage/delta_record.h"
#include "storage/slotted_page.h"

namespace ipa::engine {

namespace {
/// Process-wide buffer-manager counters, summed over every pool instance.
struct PoolCounters {
  metrics::Counter fetches{"bufferpool.fetches"};
  metrics::Counter hits{"bufferpool.hits"};
  metrics::Counter misses{"bufferpool.misses"};
  metrics::Counter evictions{"bufferpool.evictions"};
  metrics::Counter flushes{"bufferpool.flushes"};
  metrics::Counter clean_diff_skips{"bufferpool.clean_diff_skips"};
  metrics::Counter ipa_flushes{"bufferpool.writebacks.delta"};
  metrics::Counter oop_flushes{"bufferpool.writebacks.full"};
  metrics::Counter ipa_fallbacks{"bufferpool.writebacks.delta_fallbacks"};
  metrics::Counter delta_records{"bufferpool.delta_records_written"};
  metrics::Counter cleaner_runs{"bufferpool.cleaner_runs"};
};

PoolCounters& Pm() {
  static PoolCounters counters;
  return counters;
}
}  // namespace

BufferPool::BufferPool(BufferConfig config,
                       std::function<ftl::PageDevice*(TablespaceId)> device_of,
                       std::function<void(Lsn)> ensure_log_durable)
    : config_(config),
      device_of_(std::move(device_of)),
      ensure_log_durable_(std::move(ensure_log_durable)) {
  frames_.resize(config_.frames);
  for (auto& f : frames_) {
    f.cur.resize(config_.page_size);
    f.base.resize(config_.page_size);
  }
  table_.reserve(config_.frames * 2);
}

Result<BufferPool::Frame*> BufferPool::Fix(PageId id, bool for_format) {
  stats_.fetches++;
  Pm().fetches.Inc();
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    f.pins++;
    f.ref = true;
    stats_.hits++;
    Pm().hits.Inc();
    return &f;
  }
  stats_.misses++;
  Pm().misses.Inc();
  IPA_ASSIGN_OR_RETURN(Frame * victim, GetVictim());
  IPA_RETURN_NOT_OK(LoadFrame(victim, id, for_format));
  victim->pins = 1;
  victim->ref = true;
  table_[id] = static_cast<uint32_t>(victim - frames_.data());
  return victim;
}

void BufferPool::Unfix(Frame* frame, bool dirtied, Lsn rec_lsn) {
  if (frame->pins > 0) frame->pins--;
  if (dirtied) {
    if (!frame->dirty) {
      frame->dirty = true;
      dirty_count_++;
      frame->rec_lsn = rec_lsn;
      TrackRecLsn(rec_lsn);
    } else if (frame->rec_lsn == kInvalidLsn) {
      frame->rec_lsn = rec_lsn;
      TrackRecLsn(rec_lsn);
    }
  }
}

void BufferPool::TrackRecLsn(Lsn lsn) {
  if (lsn != kInvalidLsn) dirty_rec_lsns_[lsn]++;
}

void BufferPool::UntrackRecLsn(Lsn lsn) {
  if (lsn == kInvalidLsn) return;
  auto it = dirty_rec_lsns_.find(lsn);
  if (it != dirty_rec_lsns_.end() && --it->second == 0) {
    dirty_rec_lsns_.erase(it);
  }
}

Result<BufferPool::Frame*> BufferPool::GetVictim() {
  // Clock (second chance) over all frames; 2 full sweeps max.
  for (uint32_t step = 0; step < 2 * config_.frames; step++) {
    Frame& f = frames_[clock_hand_];
    clock_hand_ = (clock_hand_ + 1) % config_.frames;
    if (f.pins > 0) continue;
    if (!f.valid) return &f;
    if (f.ref) {
      f.ref = false;
      continue;
    }
    if (f.dirty) {
      IPA_RETURN_NOT_OK(FlushFrame(&f, /*async=*/false));
    }
    table_.erase(f.id);
    f.valid = false;
    stats_.evictions++;
    Pm().evictions.Inc();
    return &f;
  }
  return Status::Busy("all buffer frames pinned");
}

Status BufferPool::LoadFrame(Frame* frame, PageId id, bool for_format) {
  frame->id = id;
  frame->valid = true;
  frame->dirty = false;
  frame->rec_lsn = kInvalidLsn;
  if (for_format) {
    std::memset(frame->cur.data(), 0, config_.page_size);
    std::memset(frame->base.data(), 0, config_.page_size);
    return Status::OK();
  }
  ftl::PageDevice* dev = device_of_(id.tablespace());
  IPA_RETURN_NOT_OK(dev->ReadPage(id.lba(), frame->cur.data()));
  if (config_.io_trace) {
    config_.io_trace->push_back(
        {IoEvent::Type::kFetch, id.raw, config_.page_size});
  }
  // Re-create the up-to-date version: apply any delta-records found on the
  // physical page (Section 6.2). The base image is the post-apply state, so
  // a later flush diffs only the changes made since this fetch.
  storage::ApplyDeltaRecords(frame->cur.data(), config_.page_size);
  std::memcpy(frame->base.data(), frame->cur.data(), config_.page_size);
  return Status::OK();
}

Status BufferPool::FlushFrame(Frame* frame, bool async) {
  if (!frame->dirty) return Status::OK();
  stats_.flushes++;
  Pm().flushes.Inc();

  ftl::PageDevice* dev = device_of_(frame->id.tablespace());
  ftl::Lba lba = frame->id.lba();
  bool flash_exists = dev->IsMapped(lba);
  bool dev_ok = flash_exists && dev->DeltaWritePossible(lba);

  core::EvictionDecision d = core::PlanEviction(
      frame->base.data(), frame->cur.data(), config_.page_size, flash_exists,
      dev_ok, config_.record_update_sizes);
  if (config_.record_update_sizes && flash_exists) RecordTrace(*frame, d);

  // Stream classification for stream-aware devices; kUntagged without a
  // classifier keeps the legacy WritePage behavior bit-identical.
  ftl::StreamTag tag =
      config_.stream_of ? config_.stream_of(frame->id) : ftl::StreamTag::kUntagged;

  switch (d.path) {
    case core::WritePath::kClean:
      stats_.clean_diff_skips++;
      Pm().clean_diff_skips.Inc();
      break;
    case core::WritePath::kInPlaceAppend: {
      storage::SlottedPage view(frame->cur.data(), config_.page_size);
      ensure_log_durable_(view.page_lsn());
      Status s = dev->WriteDelta(lba, d.plan.write_offset,
                                 frame->cur.data() + d.plan.write_offset,
                                 d.plan.write_len, !async);
      if (s.IsNotSupported()) {
        // Device-level rejection (program budget, ISPP...): fall back to a
        // full out-of-place write with a reset delta area.
        stats_.ipa_fallbacks++;
        Pm().ipa_fallbacks.Inc();
        view.ResetDeltaArea();
        // A page that accumulated small deltas and is now folded back: the
        // delta-writeback stream, regardless of object classification.
        IPA_RETURN_NOT_OK(dev->WriteTagged(lba, frame->cur.data(), !async,
                                           ftl::StreamTag::kDeltaWriteback));
        stats_.oop_flushes++;
        Pm().oop_flushes.Inc();
        if (config_.io_trace) {
          config_.io_trace->push_back(
              {IoEvent::Type::kEvictOop, frame->id.raw, config_.page_size});
        }
      } else {
        IPA_RETURN_NOT_OK(s);
        stats_.ipa_flushes++;
        stats_.delta_records_written += d.plan.records;
        Pm().ipa_flushes.Inc();
        Pm().delta_records.Add(d.plan.records);
        if (config_.io_trace) {
          config_.io_trace->push_back(
              {IoEvent::Type::kEvictIpa, frame->id.raw, d.plan.write_len});
        }
      }
      break;
    }
    case core::WritePath::kOutOfPlace: {
      storage::SlottedPage view(frame->cur.data(), config_.page_size);
      ensure_log_durable_(view.page_lsn());
      IPA_RETURN_NOT_OK(dev->WriteTagged(lba, frame->cur.data(), !async, tag));
      stats_.oop_flushes++;
      Pm().oop_flushes.Inc();
      if (config_.io_trace) {
        config_.io_trace->push_back(
            {IoEvent::Type::kEvictOop, frame->id.raw, config_.page_size});
      }
      break;
    }
  }

  std::memcpy(frame->base.data(), frame->cur.data(), config_.page_size);
  frame->dirty = false;
  UntrackRecLsn(frame->rec_lsn);
  frame->rec_lsn = kInvalidLsn;
  if (dirty_count_ > 0) dirty_count_--;
  return Status::OK();
}

void BufferPool::RecordTrace(const Frame& frame, const core::EvictionDecision& d) {
  storage::SlottedPage view(const_cast<uint8_t*>(frame.cur.data()),
                            config_.page_size);
  UpdateSizeTrace& t = traces_[view.table_id()];
  t.net.Add(d.body_bytes_changed);
  t.meta.Add(d.meta_bytes_changed);
  t.gross.Add(d.body_bytes_changed + d.meta_bytes_changed);
}

Status BufferPool::FlushAll(bool async) {
  for (auto& f : frames_) {
    if (f.valid && f.dirty) {
      IPA_RETURN_NOT_OK(FlushFrame(&f, async));
    }
  }
  return Status::OK();
}

Status BufferPool::MaybeRunCleaner() {
  double dirty_frac =
      static_cast<double>(dirty_count_) / static_cast<double>(config_.frames);
  if (dirty_frac < config_.dirty_flush_threshold) return Status::OK();
  stats_.cleaner_runs++;
  Pm().cleaner_runs.Inc();
  // Clean (but do not evict) the next dirty unpinned frames in clock order —
  // an approximation of Shore-MT's background cleaner picking cold pages.
  uint32_t cleaned = 0;
  uint32_t hand = clock_hand_;
  for (uint32_t step = 0; step < config_.frames && cleaned < config_.cleaner_batch;
       step++) {
    Frame& f = frames_[hand];
    hand = (hand + 1) % config_.frames;
    if (!f.valid || !f.dirty || f.pins > 0) continue;
    IPA_RETURN_NOT_OK(FlushFrame(&f, config_.cleaner_async));
    cleaned++;
  }
  return Status::OK();
}

void BufferPool::DropAllNoFlush() {
  table_.clear();
  for (auto& f : frames_) {
    f.valid = false;
    f.dirty = false;
    f.pins = 0;
    f.rec_lsn = kInvalidLsn;
  }
  dirty_count_ = 0;
  dirty_rec_lsns_.clear();
  // The update-size traces feed the IPA advisor's N×M accounting. Frames
  // dirtied by in-flight appends die with the crash, so their sampled sizes
  // must too — a restarted instance profiles from scratch.
  traces_.clear();
}

void BufferPool::DropPageNoFlush(PageId id) {
  auto it = table_.find(id);
  if (it == table_.end()) return;
  Frame& f = frames_[it->second];
  if (f.dirty && dirty_count_ > 0) dirty_count_--;
  if (f.dirty) UntrackRecLsn(f.rec_lsn);
  f.valid = false;
  f.dirty = false;
  f.pins = 0;
  f.rec_lsn = kInvalidLsn;
  table_.erase(it);
}

Lsn BufferPool::MinRecLsn() const {
  return dirty_rec_lsns_.empty() ? kInvalidLsn : dirty_rec_lsns_.begin()->first;
}

}  // namespace ipa::engine
