#include "engine/btree.h"

#include <vector>

#include "common/bytes.h"
#include "storage/slotted_page.h"

namespace ipa::engine {

namespace {

// Node body layout, starting at kPageHeaderSize within the page:
//   u8  is_leaf | u8 pad | u16 count | u32 pad | u64 link | entries...
// `link` is the next-leaf pointer on leaves and the leftmost child on
// internal nodes. Entries are 16-byte (u64, u64) pairs: (key, value) on
// leaves, (key, child-for-keys>=key) on internal nodes, sorted by key.
constexpr uint32_t kNodeBase = storage::kPageHeaderSize;
constexpr uint32_t kOffIsLeaf = kNodeBase + 0;
constexpr uint32_t kOffCount = kNodeBase + 2;
constexpr uint32_t kOffLink = kNodeBase + 8;
constexpr uint32_t kEntriesBase = kNodeBase + 16;
constexpr uint32_t kEntrySize = 16;

struct NodeView {
  uint8_t* p;
  uint32_t capacity;

  NodeView(uint8_t* page, uint32_t page_size) : p(page) {
    storage::SlottedPage view(page, page_size);
    capacity = (view.delta_off() - kEntriesBase) / kEntrySize;
  }

  bool is_leaf() const { return p[kOffIsLeaf] != 0; }
  void set_leaf(bool v) { p[kOffIsLeaf] = v ? 1 : 0; }
  uint16_t count() const { return DecodeU16(p + kOffCount); }
  void set_count(uint16_t c) { EncodeU16(p + kOffCount, c); }
  uint64_t link() const { return DecodeU64(p + kOffLink); }
  void set_link(uint64_t v) { EncodeU64(p + kOffLink, v); }

  uint64_t key(uint16_t i) const {
    return DecodeU64(p + kEntriesBase + i * kEntrySize);
  }
  uint64_t val(uint16_t i) const {
    return DecodeU64(p + kEntriesBase + i * kEntrySize + 8);
  }
  void set(uint16_t i, uint64_t k, uint64_t v) {
    EncodeU64(p + kEntriesBase + i * kEntrySize, k);
    EncodeU64(p + kEntriesBase + i * kEntrySize + 8, v);
  }

  /// First index i with key(i) >= k (lower bound).
  uint16_t LowerBound(uint64_t k) const {
    uint16_t lo = 0, hi = count();
    while (lo < hi) {
      uint16_t mid = (lo + hi) / 2;
      if (key(mid) < k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Child page for key `k` on an internal node.
  uint64_t ChildFor(uint64_t k) const {
    uint16_t i = LowerBound(k + 1);  // last separator <= k
    return i == 0 ? link() : val(i - 1);
  }

  void InsertAt(uint16_t i, uint64_t k, uint64_t v) {
    uint16_t c = count();
    std::memmove(p + kEntriesBase + (i + 1) * kEntrySize,
                 p + kEntriesBase + i * kEntrySize,
                 static_cast<size_t>(c - i) * kEntrySize);
    set(i, k, v);
    set_count(static_cast<uint16_t>(c + 1));
  }

  void RemoveAt(uint16_t i) {
    uint16_t c = count();
    std::memmove(p + kEntriesBase + i * kEntrySize,
                 p + kEntriesBase + (i + 1) * kEntrySize,
                 static_cast<size_t>(c - i - 1) * kEntrySize);
    set_count(static_cast<uint16_t>(c - 1));
  }
};

}  // namespace

Result<PageId> Btree::NewNode(bool leaf) {
  IPA_ASSIGN_OR_RETURN(PageId id, db_->AllocateIndexPage(table_));
  IPA_ASSIGN_OR_RETURN(BufferPool::Frame * frame, db_->buffer_pool().Fix(id));
  NodeView node(frame->cur.data(), db_->config().page_size);
  node.set_leaf(leaf);
  node.set_count(0);
  node.set_link(PageId().raw);
  db_->buffer_pool().Unfix(frame, true);
  return id;
}

Result<Btree> Btree::Create(Database* db, const std::string& name,
                            TablespaceId ts) {
  IPA_ASSIGN_OR_RETURN(TableId table, db->CreateTable(name, ts));
  Btree tree(db, table);
  IPA_ASSIGN_OR_RETURN(tree.root_, tree.NewNode(/*leaf=*/true));
  return tree;
}

Status Btree::InsertRec(PageId node_id, uint64_t key, uint64_t value,
                        SplitResult* out) {
  out->split = false;
  IPA_ASSIGN_OR_RETURN(BufferPool::Frame * frame, db_->buffer_pool().Fix(node_id));
  NodeView node(frame->cur.data(), db_->config().page_size);

  if (!node.is_leaf()) {
    PageId child;
    child.raw = node.ChildFor(key);
    db_->buffer_pool().Unfix(frame, false);

    SplitResult child_split;
    IPA_RETURN_NOT_OK(InsertRec(child, key, value, &child_split));
    if (!child_split.split) return Status::OK();

    // Re-fix: insert the new separator.
    IPA_ASSIGN_OR_RETURN(frame, db_->buffer_pool().Fix(node_id));
    NodeView parent(frame->cur.data(), db_->config().page_size);
    uint16_t pos = parent.LowerBound(child_split.sep_key);
    parent.InsertAt(pos, child_split.sep_key, child_split.right.raw);

    if (parent.count() < parent.capacity) {
      db_->buffer_pool().Unfix(frame, true);
      return Status::OK();
    }
    // Split the internal node: middle key moves up.
    auto right_id = NewNode(/*leaf=*/false);
    if (!right_id.ok()) {
      db_->buffer_pool().Unfix(frame, true);
      return right_id.status();
    }
    auto rf = db_->buffer_pool().Fix(right_id.value());
    if (!rf.ok()) {
      db_->buffer_pool().Unfix(frame, true);
      return rf.status();
    }
    NodeView right(rf.value()->cur.data(), db_->config().page_size);
    uint16_t total = parent.count();
    uint16_t mid = total / 2;
    uint64_t up_key = parent.key(mid);
    right.set_link(parent.val(mid));  // child for keys >= up_key
    uint16_t moved = 0;
    for (uint16_t i = mid + 1; i < total; i++, moved++) {
      right.set(moved, parent.key(i), parent.val(i));
    }
    right.set_count(moved);
    parent.set_count(mid);
    db_->buffer_pool().Unfix(rf.value(), true);
    db_->buffer_pool().Unfix(frame, true);
    out->split = true;
    out->sep_key = up_key;
    out->right = right_id.value();
    return Status::OK();
  }

  // Leaf.
  uint16_t pos = node.LowerBound(key);
  if (pos < node.count() && node.key(pos) == key) {
    node.set(pos, key, value);  // overwrite
    db_->buffer_pool().Unfix(frame, true);
    return Status::OK();
  }
  node.InsertAt(pos, key, value);
  if (node.count() < node.capacity) {
    db_->buffer_pool().Unfix(frame, true);
    return Status::OK();
  }
  // Split the leaf.
  auto right_id = NewNode(/*leaf=*/true);
  if (!right_id.ok()) {
    db_->buffer_pool().Unfix(frame, true);
    return right_id.status();
  }
  auto rf = db_->buffer_pool().Fix(right_id.value());
  if (!rf.ok()) {
    db_->buffer_pool().Unfix(frame, true);
    return rf.status();
  }
  NodeView right(rf.value()->cur.data(), db_->config().page_size);
  uint16_t total = node.count();
  uint16_t mid = total / 2;
  uint16_t moved = 0;
  for (uint16_t i = mid; i < total; i++, moved++) {
    right.set(moved, node.key(i), node.val(i));
  }
  right.set_count(moved);
  right.set_link(node.link());
  node.set_count(mid);
  node.set_link(right_id.value().raw);
  out->split = true;
  out->sep_key = right.key(0);
  out->right = right_id.value();
  db_->buffer_pool().Unfix(rf.value(), true);
  db_->buffer_pool().Unfix(frame, true);
  return Status::OK();
}

Status Btree::Insert(uint64_t key, uint64_t value) {
  SplitResult split;
  IPA_RETURN_NOT_OK(InsertRec(root_, key, value, &split));
  if (!split.split) return Status::OK();
  // Grow a new root.
  IPA_ASSIGN_OR_RETURN(PageId new_root, NewNode(/*leaf=*/false));
  IPA_ASSIGN_OR_RETURN(BufferPool::Frame * frame,
                       db_->buffer_pool().Fix(new_root));
  NodeView root(frame->cur.data(), db_->config().page_size);
  root.set_link(root_.raw);
  root.InsertAt(0, split.sep_key, split.right.raw);
  db_->buffer_pool().Unfix(frame, true);
  root_ = new_root;
  height_++;
  return Status::OK();
}

Result<uint64_t> Btree::Lookup(uint64_t key) {
  PageId cur = root_;
  for (;;) {
    IPA_ASSIGN_OR_RETURN(BufferPool::Frame * frame, db_->buffer_pool().Fix(cur));
    NodeView node(frame->cur.data(), db_->config().page_size);
    if (!node.is_leaf()) {
      cur.raw = node.ChildFor(key);
      db_->buffer_pool().Unfix(frame, false);
      continue;
    }
    uint16_t pos = node.LowerBound(key);
    bool hit = pos < node.count() && node.key(pos) == key;
    uint64_t value = hit ? node.val(pos) : 0;
    db_->buffer_pool().Unfix(frame, false);
    if (!hit) return Status::NotFound("key not in index");
    return value;
  }
}

Status Btree::Remove(uint64_t key) {
  PageId cur = root_;
  for (;;) {
    IPA_ASSIGN_OR_RETURN(BufferPool::Frame * frame, db_->buffer_pool().Fix(cur));
    NodeView node(frame->cur.data(), db_->config().page_size);
    if (!node.is_leaf()) {
      cur.raw = node.ChildFor(key);
      db_->buffer_pool().Unfix(frame, false);
      continue;
    }
    uint16_t pos = node.LowerBound(key);
    if (pos >= node.count() || node.key(pos) != key) {
      db_->buffer_pool().Unfix(frame, false);
      return Status::NotFound("key not in index");
    }
    node.RemoveAt(pos);
    db_->buffer_pool().Unfix(frame, true);
    return Status::OK();
  }
}

Status Btree::Scan(uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t, uint64_t)>& fn) {
  // Descend to the leaf containing `lo`.
  PageId cur = root_;
  for (;;) {
    IPA_ASSIGN_OR_RETURN(BufferPool::Frame * frame, db_->buffer_pool().Fix(cur));
    NodeView node(frame->cur.data(), db_->config().page_size);
    if (!node.is_leaf()) {
      cur.raw = node.ChildFor(lo);
      db_->buffer_pool().Unfix(frame, false);
      continue;
    }
    db_->buffer_pool().Unfix(frame, false);
    break;
  }
  // Walk the leaf chain.
  while (cur.valid()) {
    IPA_ASSIGN_OR_RETURN(BufferPool::Frame * frame, db_->buffer_pool().Fix(cur));
    NodeView node(frame->cur.data(), db_->config().page_size);
    for (uint16_t i = node.LowerBound(lo); i < node.count(); i++) {
      if (node.key(i) > hi) {
        db_->buffer_pool().Unfix(frame, false);
        return Status::OK();
      }
      if (!fn(node.key(i), node.val(i))) {
        db_->buffer_pool().Unfix(frame, false);
        return Status::OK();
      }
    }
    PageId next;
    next.raw = node.link();
    db_->buffer_pool().Unfix(frame, false);
    cur = next;
  }
  return Status::OK();
}

}  // namespace ipa::engine
