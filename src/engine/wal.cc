#include "engine/wal.h"

#include <algorithm>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/metrics.h"

namespace ipa::engine {

namespace {
// Serialized record:
//   u32 total_len | u8 type | u64 txn | u64 prev | u64 page | u16 slot |
//   u16 offset | u64 aux64 | u16 before_len | u16 after_len |
//   before bytes | after bytes | u32 crc (over everything before it)
constexpr size_t kFixedHeader = 4 + 1 + 8 + 8 + 8 + 2 + 2 + 8 + 2 + 2;

struct WalCounters {
  metrics::Counter appends{"wal.appends"};
  metrics::Counter bytes_appended{"wal.bytes_appended"};
  metrics::Counter bytes_truncated{"wal.bytes_truncated"};
};

WalCounters& Wm() {
  static WalCounters counters;
  return counters;
}
}  // namespace

Lsn Wal::Append(const LogRecord& rec) {
  size_t total = kFixedHeader + rec.before.size() + rec.after.size() + 4;
  std::vector<uint8_t> out(total);
  uint8_t* p = out.data();
  EncodeU32(p, static_cast<uint32_t>(total));
  p += 4;
  *p++ = static_cast<uint8_t>(rec.type);
  EncodeU64(p, rec.txn); p += 8;
  EncodeU64(p, rec.prev); p += 8;
  EncodeU64(p, rec.page.raw); p += 8;
  EncodeU16(p, rec.slot); p += 2;
  EncodeU16(p, rec.offset); p += 2;
  EncodeU64(p, rec.aux64); p += 8;
  EncodeU16(p, static_cast<uint16_t>(rec.before.size())); p += 2;
  EncodeU16(p, static_cast<uint16_t>(rec.after.size())); p += 2;
  // Empty payloads have a null data(); memcpy forbids that even for n=0.
  if (!rec.before.empty()) {
    std::memcpy(p, rec.before.data(), rec.before.size());
    p += rec.before.size();
  }
  if (!rec.after.empty()) {
    std::memcpy(p, rec.after.data(), rec.after.size());
    p += rec.after.size();
  }
  uint32_t crc = Crc32c(out.data(), total - 4);
  EncodeU32(p, crc);

  Lsn lsn = end_lsn_;
  buf_.insert(buf_.end(), out.begin(), out.end());
  end_lsn_ += total;
  Wm().appends.Inc();
  Wm().bytes_appended.Add(total);
  return lsn;
}

void Wal::FlushTo(Lsn lsn) {
  if (lsn == kInvalidLsn) return;
  // Find the end of the record containing/starting at `lsn`.
  if (lsn >= end_lsn_) {
    durable_ = end_lsn_;
    MirrorDurable();
    return;
  }
  if (lsn < base_) return;  // already truncated => long durable
  uint32_t len = DecodeU32(&buf_[lsn - base_]);
  Lsn rec_end = lsn + len;
  if (rec_end > durable_) durable_ = rec_end;
  MirrorDurable();
}

void Wal::FlushAll() {
  durable_ = end_lsn_;
  MirrorDurable();
}

void Wal::BindLogDevice(ftl::PageDevice* device, ftl::Lba base_lba,
                        uint64_t capacity_pages) {
  log_dev_ = device;
  log_base_lba_ = base_lba;
  log_capacity_pages_ = capacity_pages;
  mirrored_ = durable_;
}

void Wal::MirrorDurable() {
  if (log_dev_ == nullptr || log_capacity_pages_ == 0 || durable_ <= mirrored_) {
    return;
  }
  const uint32_t ps = log_dev_->page_size();
  uint64_t first = mirrored_ / ps;
  uint64_t last = (durable_ - 1) / ps;
  std::vector<uint8_t> page(ps, 0);
  for (uint64_t p = first; p <= last; p++) {
    std::fill(page.begin(), page.end(), 0);
    Lsn pstart = static_cast<Lsn>(p) * ps;
    // Only durable bytes are mirrored; bytes below base_ were truncated
    // away (the ring has long overwritten them) and read as zero.
    Lsn from = std::max<Lsn>(pstart, base_);
    Lsn to = std::min<Lsn>(pstart + ps, durable_);
    if (to > from) {
      std::memcpy(page.data() + (from - pstart), &buf_[from - base_],
                  to - from);
    }
    // Best-effort: a failed mirror write must not fail the log force (the
    // in-memory log is the durability source of truth).
    (void)log_dev_->WriteTagged(log_base_lba_ + (p % log_capacity_pages_),
                                page.data(), /*sync=*/true,
                                ftl::StreamTag::kWal);
  }
  mirrored_ = durable_;
}

Result<LogRecord> Wal::Read(Lsn lsn) const {
  if (lsn < base_ || lsn >= end_lsn_) {
    return Status::InvalidArgument("LSN outside log window");
  }
  const uint8_t* p = &buf_[lsn - base_];
  uint32_t total = DecodeU32(p);
  if (total < kFixedHeader + 4 || lsn + total > end_lsn_) {
    return Status::Corruption("bad log record length");
  }
  uint32_t stored_crc = DecodeU32(p + total - 4);
  if (Crc32c(p, total - 4) != stored_crc) {
    return Status::Corruption("log record CRC mismatch");
  }
  LogRecord rec;
  const uint8_t* q = p + 4;
  rec.type = static_cast<LogType>(*q++);
  rec.txn = DecodeU64(q); q += 8;
  rec.prev = DecodeU64(q); q += 8;
  rec.page.raw = DecodeU64(q); q += 8;
  rec.slot = DecodeU16(q); q += 2;
  rec.offset = DecodeU16(q); q += 2;
  rec.aux64 = DecodeU64(q); q += 8;
  uint16_t blen = DecodeU16(q); q += 2;
  uint16_t alen = DecodeU16(q); q += 2;
  rec.before.assign(q, q + blen); q += blen;
  rec.after.assign(q, q + alen);
  return rec;
}

Result<Lsn> Wal::NextLsn(Lsn lsn) const {
  if (lsn < base_ || lsn >= end_lsn_) {
    return Status::InvalidArgument("LSN outside log window");
  }
  uint32_t total = DecodeU32(&buf_[lsn - base_]);
  return lsn + total;
}

Status Wal::TruncateTo(Lsn lsn) {
  if (lsn < base_) return Status::OK();
  if (lsn > durable_) {
    return Status::InvalidArgument("cannot truncate past the durable LSN");
  }
  Wm().bytes_truncated.Add(lsn - base_);
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(lsn - base_));
  base_ = lsn;
  return Status::OK();
}

void Wal::DiscardUnflushed() {
  if (durable_ >= end_lsn_) return;
  buf_.resize(durable_ - base_);
  end_lsn_ = durable_;
}

}  // namespace ipa::engine
