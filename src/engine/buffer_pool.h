// Buffer pool with the IPA write path.
//
// Shore-MT policies reproduced here (Section 8.4):
//  * steal/no-force: dirty pages may be flushed before commit; commits do not
//    force data pages;
//  * eager page cleaning: once the dirty fraction crosses a threshold
//    (12.5% hardcoded in Shore-MT) a background cleaner flushes dirty pages
//    without evicting them (async device writes);
//  * the WAL rule: a dirty page flush first forces the log up to the PageLSN.
//
// On every dirty-page flush the pool consults core::PlanEviction, which
// byte-diffs the page against its base (flash) image and picks in-place
// append vs out-of-place write. On fetch, delta-records found on the page
// are applied before the page is handed out (Section 6.2 "The page is
// fetched into the DB buffer").

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/write_policy.h"
#include "engine/types.h"
#include "ftl/page_device.h"

namespace ipa::engine {

struct BufferConfig {
  uint32_t page_size = 4096;
  uint32_t frames = 1024;
  /// Dirty fraction that triggers the background cleaner (Shore-MT: 12.5%).
  /// Set to ~0.75 for the paper's "non-eager" eviction experiments.
  double dirty_flush_threshold = 0.125;
  /// Dirty pages flushed per cleaner activation.
  uint32_t cleaner_batch = 32;
  /// Cleaner writes are asynchronous device requests (they occupy chips but
  /// do not block the simulated host).
  bool cleaner_async = true;
  /// Record per-table update-size distributions at flush time (costs an
  /// exact page diff per flush; needed for Table 1 / Figures 7-10).
  bool record_update_sizes = false;
  /// When set, fetch/evict events are appended here (see engine::IoEvent).
  std::vector<IoEvent>* io_trace = nullptr;
  /// Classifies a page into its write stream (heap vs index) for
  /// stream-aware devices (ftl::StreamFtl). Full-page writebacks carry the
  /// classifier's tag; the write_delta-rejected fallback always carries
  /// kDeltaWriteback (a hot small-update page folded back). When unset every
  /// write is kUntagged — byte-identical to the pre-stream write path on
  /// every backend, since WriteTagged defaults to WritePage.
  std::function<ftl::StreamTag(PageId)> stream_of;
};

struct BufferStats {
  uint64_t fetches = 0;       ///< Fix() calls.
  uint64_t hits = 0;          ///< Served from the pool.
  uint64_t misses = 0;        ///< Required a device read.
  uint64_t evictions = 0;
  uint64_t flushes = 0;          ///< Dirty flushes attempted.
  uint64_t clean_diff_skips = 0; ///< Dirty flag set but zero byte diff.
  uint64_t ipa_flushes = 0;      ///< Served by write_delta.
  uint64_t oop_flushes = 0;      ///< Full out-of-place page writes.
  uint64_t ipa_fallbacks = 0;    ///< write_delta rejected at device level.
  uint64_t cleaner_runs = 0;
  uint64_t delta_records_written = 0;
};

/// Per-table update-size traces (net = tuple bytes, meta = header+slots,
/// gross = net+meta), sampled at each flush of a previously-written page.
struct UpdateSizeTrace {
  SampleDistribution net;
  SampleDistribution meta;
  SampleDistribution gross;
};

class BufferPool {
 public:
  struct Frame {
    PageId id;
    bool valid = false;
    bool dirty = false;
    uint32_t pins = 0;
    bool ref = false;           ///< Clock reference bit.
    Lsn rec_lsn = kInvalidLsn;  ///< LSN that first dirtied the frame.
    std::vector<uint8_t> cur;   ///< Working image.
    std::vector<uint8_t> base;  ///< Image as it exists on flash (deltas applied).
  };

  /// `device_of` maps a tablespace id to the PageDevice backing it (a NoFTL
  /// region or a conventional SSD with the write_delta extension).
  BufferPool(BufferConfig config,
             std::function<ftl::PageDevice*(TablespaceId)> device_of,
             std::function<void(Lsn)> ensure_log_durable);

  /// Fix a page into the pool. With `for_format` the device read is skipped
  /// and the frame content starts undefined (caller formats it).
  Result<Frame*> Fix(PageId id, bool for_format = false);

  /// Release a fix. `dirtied` marks the frame dirty; `rec_lsn` is the log
  /// record that dirtied it (ignored unless dirtied).
  void Unfix(Frame* frame, bool dirtied, Lsn rec_lsn = kInvalidLsn);

  /// Flush one frame (IPA decision path). Clears dirty on success.
  Status FlushFrame(Frame* frame, bool async);

  /// Flush every dirty frame. With `async` the writes are background
  /// device requests (checkpointer/cleaner semantics: they occupy chips but
  /// do not block the simulated host).
  Status FlushAll(bool async = false);

  /// Run the eager cleaner if the dirty fraction crossed the threshold.
  Status MaybeRunCleaner();

  /// Drop every frame without flushing (crash simulation).
  void DropAllNoFlush();

  /// Drop one page's frame without flushing (table drop). No-op if absent.
  void DropPageNoFlush(PageId id);

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats{}; }
  const std::map<TableId, UpdateSizeTrace>& update_traces() const {
    return traces_;
  }
  std::map<TableId, UpdateSizeTrace>& mutable_update_traces() { return traces_; }

  uint32_t frame_count() const { return config_.frames; }
  uint32_t dirty_count() const { return dirty_count_; }
  const BufferConfig& config() const { return config_; }

  /// Lowest rec_lsn across dirty frames (log-truncation bound), or
  /// kInvalidLsn when no frame is dirty. O(1): served from the incrementally
  /// maintained dirty-frame LSN index instead of scanning all frames.
  Lsn MinRecLsn() const;

 private:
  Result<Frame*> GetVictim();
  Status LoadFrame(Frame* frame, PageId id, bool for_format);
  void RecordTrace(const Frame& frame, const core::EvictionDecision& d);
  void TrackRecLsn(Lsn lsn);
  void UntrackRecLsn(Lsn lsn);

  BufferConfig config_;
  std::function<ftl::PageDevice*(TablespaceId)> device_of_;
  std::function<void(Lsn)> ensure_log_durable_;

  std::vector<Frame> frames_;
  std::unordered_map<PageId, uint32_t> table_;  // page -> frame index
  uint32_t clock_hand_ = 0;
  uint32_t dirty_count_ = 0;
  /// rec_lsn -> number of dirty frames first dirtied at that LSN; the lowest
  /// key is MinRecLsn(). Maintained on every dirty/clean transition so the
  /// log-truncation bound never costs an O(frames) scan.
  std::map<Lsn, uint32_t> dirty_rec_lsns_;
  BufferStats stats_;
  std::map<TableId, UpdateSizeTrace> traces_;
};

}  // namespace ipa::engine
