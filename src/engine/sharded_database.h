// Shared-nothing sharded engine (docs/SHARDING.md).
//
// ShardedDatabase composes N per-partition Database instances — each with
// its own WAL, buffer pool, lock manager, B+-tree indexes and heap pages on
// a disjoint chip set of one FlashArray — behind a key-hash partition map.
// Single-partition transactions run on the shared-nothing fast path and
// never touch a lock manager; cross-partition transactions fall back to the
// locking path with lazily-opened per-partition branches. In threaded mode
// every partition is driven by its own worker thread whose flash commands go
// through a FlashLane (flash/submit_queue.h), so chip/channel reservations
// from different workers overlap on the simulated clock; EpochBarrier()
// quiesces the workers, closes each partition's group-commit batch and
// merges the lanes deterministically.
//
// Determinism contract: for a fixed partition count and seed, results are
// bit-identical across runs and across sequential vs. threaded execution —
// each partition's command stream is deterministic, and the lane merge keys
// on lane-local (issue, lane, seq) only. Threaded mode additionally requires
// error injection off and no PowerLossPolicy armed.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "flash/flash_array.h"
#include "flash/submit_queue.h"

namespace ipa::engine {

class ShardedDatabase {
 public:
  struct Partition {
    Database* db = nullptr;
    flash::FlashLane* lane = nullptr;  ///< Null: partition on the shared path.
  };
  struct Config {
    /// Drive each partition from its own worker thread. Sequential mode
    /// (false) runs submitted work inline, in submission order — required
    /// for power-loss injection (crash points must be deterministic).
    bool threaded = false;
  };

  /// `dev` may be null when no partition uses lanes. Databases and lanes are
  /// borrowed, not owned.
  ShardedDatabase(std::vector<Partition> parts, flash::FlashArray* dev,
                  Config cfg);
  ~ShardedDatabase();

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  uint32_t partitions() const { return static_cast<uint32_t>(parts_.size()); }
  Database& db(uint32_t p) { return *parts_[p].db; }
  flash::FlashLane* lane(uint32_t p) { return parts_[p].lane; }
  bool threaded() const { return cfg_.threaded; }

  // -- Partition map ---------------------------------------------------------

  /// Home partition of an application key (SplitMix64 finalizer mod N, so
  /// contiguous key ranges stripe evenly across partitions).
  uint32_t PartitionOfKey(uint64_t key) const;

  /// Global record keys: a partition-local Rid tagged with its partition in
  /// the top 16 bits (partition-local tablespaces all use ts = 0, so
  /// Rid::Pack() leaves those bits free).
  static uint64_t PackGlobal(uint32_t partition, Rid rid) {
    return rid.Pack() | (static_cast<uint64_t>(partition) << 48);
  }
  static uint32_t PartitionOfGlobal(uint64_t global_key) {
    return static_cast<uint32_t>(global_key >> 48);
  }
  static Rid RidOfGlobal(uint64_t global_key) {
    return Rid::Unpack(global_key & 0x0000FFFFFFFFFFFFull);
  }

  // -- Single-partition transactions (shared-nothing fast path) --------------

  struct Txn {
    uint32_t part = 0;
    TxnId id = kInvalidTxn;
  };

  /// Open a transaction homed on `part`. It skips the lock manager unless a
  /// cross-partition transaction is currently active (the fallback that
  /// keeps the two path families compatible).
  Txn Begin(uint32_t part);
  Status Commit(const Txn& t) { return parts_[t.part].db->Commit(t.id); }
  Status Abort(const Txn& t) { return parts_[t.part].db->Abort(t.id); }

  // -- Cross-partition transactions (locking path) ---------------------------

  /// A transaction spanning partitions: one lazily-opened branch per touched
  /// partition, every branch on the locking path. Commit appends and forces
  /// ALL branches' commit records (in partition order) before any branch
  /// runs cleaner / log-reclaim maintenance, so no flash I/O — and hence no
  /// injected power cut — can intervene between the branch commits.
  struct CrossTxn {
    std::vector<TxnId> branch;  ///< kInvalidTxn until the partition is touched.
    bool done = false;
  };

  CrossTxn BeginCross();
  /// The branch TxnId for `part`, opening it on first use.
  TxnId Branch(CrossTxn& t, uint32_t part);
  Status CommitCross(CrossTxn& t);
  Status AbortCross(CrossTxn& t);
  uint64_t active_cross_txns() const { return active_cross_; }

  // -- Worker pool / epochs --------------------------------------------------

  /// Run `fn` on partition `p`'s worker (threaded) or inline (sequential).
  /// All work for one partition executes in submission order on one thread.
  /// Threaded callers must confine each partition's Database and lane to the
  /// closures submitted for that partition.
  void Submit(uint32_t p, std::function<void()> fn);

  /// Wait until every submitted closure has finished. No device effects.
  void Barrier();

  /// Barrier + close every partition's group-commit batch + merge the flash
  /// lanes (FlashArray::DrainLanes). Returns the common epoch time all
  /// partition clocks are advanced to.
  SimTime EpochBarrier();

  // -- Maintenance / recovery (partitions processed in order) ----------------

  Status Checkpoint();
  void SimulateCrash();
  /// ARIES restart per partition. Each per-worker WAL replays independently
  /// in its own LSN order; partitions are mounted/recovered in partition
  /// order so the sequence is deterministic.
  Status Recover();
  Status RecoverAfterPowerLoss();

 private:
  struct Worker {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    bool stop = false;
  };

  void WorkerLoop(Worker& w);

  std::vector<Partition> parts_;
  flash::FlashArray* dev_;
  Config cfg_;
  uint64_t active_cross_ = 0;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> inflight_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

}  // namespace ipa::engine
