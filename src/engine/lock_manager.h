// Record-granularity two-phase locking.
//
// The engine executes transactions on one thread (the simulation is
// single-threaded and deterministic), but transactions may interleave
// logically; the lock manager enforces S/X conflicts between open
// transactions and returns Busy on conflict (no blocking — the caller
// aborts or retries, a timeout-free deadlock policy).

#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "engine/types.h"

namespace ipa::engine {

enum class LockMode : uint8_t { kShared, kExclusive };

class LockManager {
 public:
  /// Acquire (or upgrade) a lock on `key` for `txn`. Re-entrant. Returns
  /// Busy when another transaction holds a conflicting mode.
  Status Acquire(TxnId txn, uint64_t key, LockMode mode);

  /// Release every lock held by `txn` (commit/abort).
  void ReleaseAll(TxnId txn);

  size_t held_count(TxnId txn) const;

  /// Total Acquire() calls that reached the lock table — the sharded
  /// engine's "no lock-manager traffic on single-partition transactions"
  /// claim is asserted against this (docs/SHARDING.md).
  uint64_t acquires() const { return acquires_; }

 private:
  struct Entry {
    std::unordered_set<TxnId> sharers;
    TxnId xholder = kInvalidTxn;
  };
  std::unordered_map<uint64_t, Entry> locks_;
  std::unordered_map<TxnId, std::vector<uint64_t>> held_;
  uint64_t acquires_ = 0;
};

}  // namespace ipa::engine
